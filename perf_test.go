package guoq

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"github.com/guoq-dev/guoq/internal/experiments"
)

// TestPerfTrajectory is the CI perf gate: it re-measures the hot-loop
// benchmarks and fails if they regress past the pinned snapshot in
// BENCH_hotloop.json plus the documented noise tolerance. It is opt-in —
// benchmarks are meaningless under `go test ./...` parallelism — and runs
// as its own serial CI step:
//
//	GUOQ_PERF_CHECK=1  go test -run TestPerfTrajectory -count=1 .   # gate
//	GUOQ_PERF_UPDATE=1 go test -run TestPerfTrajectory -count=1 .   # refresh snapshot
//
// Three gates, strictest first:
//
//   - allocs/op is machine-independent and near-deterministic, so it gets
//     the tight tolerance (AllocsFrac) plus a hard absolute ceiling
//     (MaxAllocs) that holds even if someone refreshes the snapshot past it.
//   - the engine-vs-stateless speedup ratio is measured in-process, so it
//     cancels out machine speed; it must not fall below the snapshot ratio
//     by more than RatioFrac, and never below MinSpeedup.
//   - raw ns/op is machine-dependent; it is gated loosely (NsFrac) to catch
//     order-of-magnitude slips, and snapshots must be refreshed on the CI
//     runner class (see BENCH_hotloop.json's note).
type perfSnapshot struct {
	Note       string               `json:"note"`
	Updated    string               `json:"updated"`
	Tolerance  perfTolerance        `json:"tolerance"`
	MaxAllocs  float64              `json:"max_allocs_engine_full_pass"`
	MinSpeedup float64              `json:"min_speedup_engine_vs_stateless"`
	Benchmarks map[string]perfEntry `json:"benchmarks"`
}

type perfTolerance struct {
	AllocsFrac float64 `json:"allocs_frac"`
	NsFrac     float64 `json:"ns_frac"`
	RatioFrac  float64 `json:"ratio_frac"`
}

type perfEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

const perfSnapshotPath = "BENCH_hotloop.json"

func TestPerfTrajectory(t *testing.T) {
	update := os.Getenv("GUOQ_PERF_UPDATE") != ""
	if os.Getenv("GUOQ_PERF_CHECK") == "" && !update {
		t.Skip("perf gate is opt-in: set GUOQ_PERF_CHECK=1 (gate) or GUOQ_PERF_UPDATE=1 (refresh)")
	}
	run := func(f func(*testing.B)) perfEntry {
		r := testing.Benchmark(f)
		return perfEntry{NsPerOp: float64(r.NsPerOp()), AllocsPerOp: float64(r.AllocsPerOp())}
	}
	got := map[string]perfEntry{
		"EngineFullPass": run(BenchmarkEngineFullPass),
		"RuleFullPass":   run(BenchmarkRuleFullPass),
	}
	for name, e := range got {
		t.Logf("%-16s %10.0f ns/op %6.0f allocs/op", name, e.NsPerOp, e.AllocsPerOp)
	}

	if update {
		snap := perfSnapshot{
			Note: "Hot-loop perf snapshot for the CI perf gate (TestPerfTrajectory). " +
				"Refresh on the CI runner class with GUOQ_PERF_UPDATE=1; ns/op from " +
				"other machines makes the loose ns gate meaningless.",
			Updated: time.Now().UTC().Format("2006-01-02"),
			Tolerance: perfTolerance{
				AllocsFrac: 0.10, // allocs/op are near-deterministic
				NsFrac:     0.60, // shared-runner noise; catches big slips only
				RatioFrac:  0.25, // machine-independent speedup ratio
			},
			MaxAllocs:  84,  // acceptance floor for the zero-allocation hot loop work
			MinSpeedup: 1.2, // engine must beat the stateless pipeline by ≥ this
			Benchmarks: got,
		}
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(perfSnapshotPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", perfSnapshotPath)
		return
	}

	data, err := os.ReadFile(perfSnapshotPath)
	if err != nil {
		t.Fatalf("no perf snapshot (run with GUOQ_PERF_UPDATE=1 to create): %v", err)
	}
	var snap perfSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("corrupt %s: %v", perfSnapshotPath, err)
	}

	var failures []string
	for name, want := range snap.Benchmarks {
		have, ok := got[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: pinned in snapshot but no longer measured", name))
			continue
		}
		if limit := want.AllocsPerOp*(1+snap.Tolerance.AllocsFrac) + 0.5; have.AllocsPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op, snapshot %.0f (+%d%% tolerance = %.1f)",
				name, have.AllocsPerOp, want.AllocsPerOp, int(snap.Tolerance.AllocsFrac*100), limit))
		}
		if limit := want.NsPerOp * (1 + snap.Tolerance.NsFrac); have.NsPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op, snapshot %.0f (+%d%% tolerance = %.0f)",
				name, have.NsPerOp, want.NsPerOp, int(snap.Tolerance.NsFrac*100), limit))
		}
	}
	if have := got["EngineFullPass"].AllocsPerOp; snap.MaxAllocs > 0 && have > snap.MaxAllocs {
		failures = append(failures, fmt.Sprintf("EngineFullPass: %.0f allocs/op breaches the hard ceiling %.0f", have, snap.MaxAllocs))
	}
	ratio := got["RuleFullPass"].NsPerOp / got["EngineFullPass"].NsPerOp
	t.Logf("engine vs stateless speedup: %.2fx", ratio)
	if se, sr := snap.Benchmarks["EngineFullPass"], snap.Benchmarks["RuleFullPass"]; se.NsPerOp > 0 {
		snapRatio := sr.NsPerOp / se.NsPerOp
		if floor := snapRatio * (1 - snap.Tolerance.RatioFrac); ratio < floor {
			failures = append(failures, fmt.Sprintf("speedup ratio %.2fx below snapshot %.2fx - %d%% = %.2fx",
				ratio, snapRatio, int(snap.Tolerance.RatioFrac*100), floor))
		}
	}
	if snap.MinSpeedup > 0 && ratio < snap.MinSpeedup {
		failures = append(failures, fmt.Sprintf("speedup ratio %.2fx below the hard floor %.2fx", ratio, snap.MinSpeedup))
	}
	for _, f := range failures {
		t.Error(f)
	}
}

const fixpointSnapshotPath = "BENCH_fixpoint.json"

// Reduction-quality tolerances for the fixpoint gate. Gate counts after a
// time-budgeted anytime search are machine-dependent (a slower runner does
// fewer iterations), so the gate is on the achieved reduction FRACTION
// relative to the snapshot's, not on absolute gate counts: a runner must
// deliver at least these shares of the pinned reduction or something
// structural broke (a rule regression, a scheduler bug, a broken window
// search) rather than the machine being slow.
const (
	fixpointTotalReductionShare = 0.75 // of snapshot's total-gate reduction
	fixpoint2QReductionShare    = 0.50 // of snapshot's two-qubit reduction
)

// TestPerfTrajectoryFixpoint gates the parallel local-fixpoint optimizer
// (the huge-circuit path) the same way TestPerfTrajectory gates the hot
// loop: opt-in via GUOQ_PERF_CHECK, snapshot refresh via GUOQ_PERF_UPDATE,
// pinned input in BENCH_fixpoint.json. The -run TestPerfTrajectory regex
// CI uses matches this test too, so both gates share one serial CI step.
func TestPerfTrajectoryFixpoint(t *testing.T) {
	update := os.Getenv("GUOQ_PERF_UPDATE") != ""
	if os.Getenv("GUOQ_PERF_CHECK") == "" && !update {
		t.Skip("perf gate is opt-in: set GUOQ_PERF_CHECK=1 (gate) or GUOQ_PERF_UPDATE=1 (refresh)")
	}
	data, err := os.ReadFile(fixpointSnapshotPath)
	if err != nil {
		t.Fatalf("no fixpoint snapshot (guoqbench -fixpoint writes one): %v", err)
	}
	var snap experiments.FixpointReport
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("corrupt %s: %v", fixpointSnapshotPath, err)
	}

	// Re-run the pinned experiment: same seed, same circuit size, same
	// per-tool budget.
	rep, err := experiments.Fixpoint(experiments.Config{
		Budget:  time.Duration(snap.BudgetMS) * time.Millisecond,
		Seed:    snap.Seed,
		Epsilon: 1e-8,
		Out:     io.Discard,
	}, snap.Workers, snap.Qubits, snap.InputGates, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.InputGates != snap.InputGates || rep.InputTwoQubit != snap.InputTwoQubit {
		t.Fatalf("generated input drifted: %d gates / %d 2q, snapshot %d / %d (seeded generation must be stable)",
			rep.InputGates, rep.InputTwoQubit, snap.InputGates, snap.InputTwoQubit)
	}

	rows := func(r *experiments.FixpointReport) map[string]experiments.FixpointRow {
		m := map[string]experiments.FixpointRow{}
		for _, row := range r.Rows {
			m[row.Tool] = row
		}
		return m
	}
	have, want := rows(rep), rows(&snap)
	for tool, w := range want {
		h, ok := have[tool]
		if !ok {
			t.Errorf("%s: pinned in snapshot but no longer measured", tool)
			continue
		}
		t.Logf("%-10s %5d -> %5d gates (%5d -> %5d 2q), snapshot reached %d gates", tool, rep.InputGates, h.Gates, rep.InputTwoQubit, h.TwoQubit, w.Gates)
		if h.Error > 1e-8 {
			t.Errorf("%s: error %g exceeds the ε budget", tool, h.Error)
		}
		snapTotal := rep.InputGates - w.Gates
		if got, floor := rep.InputGates-h.Gates, int(float64(snapTotal)*fixpointTotalReductionShare); got < floor {
			t.Errorf("%s: removed %d gates, below %d (%d%% of snapshot's %d)",
				tool, got, floor, int(fixpointTotalReductionShare*100), snapTotal)
		}
		snap2Q := rep.InputTwoQubit - w.TwoQubit
		if got, floor := rep.InputTwoQubit-h.TwoQubit, int(float64(snap2Q)*fixpoint2QReductionShare); got < floor {
			t.Errorf("%s: removed %d two-qubit gates, below %d (%d%% of snapshot's %d)",
				tool, got, floor, int(fixpoint2QReductionShare*100), snap2Q)
		}
	}

	if update {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fixpointSnapshotPath, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", fixpointSnapshotPath)
	}
}
