// Package guoq is a quantum-circuit optimizer that unifies fast rewrite
// rules and slow unitary resynthesis behind a single randomized search, a
// from-scratch Go reproduction of "Optimizing Quantum Circuits, Fast and
// Slow" (ASPLOS 2025).
//
// Quick start:
//
//	c, _ := guoq.ParseQASM(src)
//	out, res, _ := guoq.Optimize(c, guoq.Options{
//		GateSet: "ibm-eagle",
//		Budget:  2 * time.Second,
//	})
//	fmt.Println(res.TwoQubitBefore, "->", out.TwoQubitCount())
//
// The optimizer guarantees the result is ε-equivalent to the input under
// the Hilbert–Schmidt distance (Thm 5.3 of the paper): rewrite rules are
// exact, resynthesis consumes an explicitly tracked error budget.
//
// GUOQ is an anytime algorithm, and the Session API exposes that: Start
// returns immediately with a handle whose Best gives a valid snapshot at
// any moment, Events streams progress, and cancelling the context (or
// calling Stop) ends the search gracefully with the best solution found
// so far:
//
//	sess, _ := guoq.Start(ctx, c, guoq.Options{GateSet: "ibm-eagle"})
//	for ev := range sess.Events() {
//		fmt.Printf("iter %d best cost %.1f\n", ev.Iters, ev.BestCost)
//	}
//	out, res, _ := sess.Wait() // best-so-far, even if ctx was cancelled
package guoq

import (
	"context"
	"fmt"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/linalg"
	"github.com/guoq-dev/guoq/internal/obs"
	"github.com/guoq-dev/guoq/internal/opt"
)

// MetricsRegistry is a set of named metric series — counters, gauges, and
// latency histograms — that an optimization run reports into: iterations,
// per-transformation accept/reject attribution, rewrite-engine cache
// statistics, resynthesis queue depth, proposal and synthesis latency.
// Registries are safe for concurrent use and cheap to scrape; one registry
// may be shared by many runs (series accumulate) or created per run.
// WritePrometheus emits the standard text exposition format, so the same
// registry that feeds Session.Metrics can back an HTTP /metrics endpoint.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry for Options.Metrics.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Circuit is an ordered list of gate applications on a fixed number of
// qubits. Build one with NewCircuit and the gate constructors, or parse
// OpenQASM 2.0 with ParseQASM.
type Circuit = circuit.Circuit

// Gate is a single gate application.
type Gate = gate.Gate

// NewCircuit returns an empty circuit on n qubits.
func NewCircuit(n int) *Circuit { return circuit.New(n) }

// ParseQASM parses an OpenQASM 2.0 (subset) program.
func ParseQASM(src string) (*Circuit, error) { return circuit.ParseQASM(src) }

// Gate constructors (controls first, then targets).
var (
	H    = gate.NewH
	X    = gate.NewX
	Y    = gate.NewY
	Z    = gate.NewZ
	S    = gate.NewS
	Sdg  = gate.NewSdg
	T    = gate.NewT
	Tdg  = gate.NewTdg
	SX   = gate.NewSX
	Rx   = gate.NewRx
	Ry   = gate.NewRy
	Rz   = gate.NewRz
	U1   = gate.NewU1
	U2   = gate.NewU2
	U3   = gate.NewU3
	CX   = gate.NewCX
	CZ   = gate.NewCZ
	Swap = gate.NewSwap
	Rxx  = gate.NewRxx
	Rzz  = gate.NewRzz
	CP   = gate.NewCP
	CCX  = gate.NewCCX
	CCZ  = gate.NewCCZ
)

// GateSets lists every addressable target gate set: the paper's five
// ("ibmq20", "ibm-eagle", "ionq", "nam", "cliffordt", Table 2) followed by
// the sets added with RegisterGateSet, sorted by name.
func GateSets() []string {
	return gateset.Names()
}

// Translate decomposes a circuit into a target gate set, preserving the
// unitary up to global phase.
func Translate(c *Circuit, gateSet string) (*Circuit, error) {
	gs, err := gateset.ByName(gateSet)
	if err != nil {
		return nil, err
	}
	return gateset.Translate(c, gs)
}

// Objective selects the optimization cost function.
type Objective string

// DefaultObjective returns the objective Optimize uses when Options leaves
// it empty: MinimizeT for the cliffordt gate set, MinimizeTwoQubit for
// everything else. Exported so callers that need the resolved objective
// before optimizing (cmd/guoq derives the distributed session id from it)
// cannot drift from the library's defaulting.
func DefaultObjective(gateSet string) Objective {
	if gateSet == "cliffordt" {
		return MinimizeT
	}
	return MinimizeTwoQubit
}

// Available objectives.
const (
	// MinimizeTwoQubit minimizes two-qubit gate count (NISQ default).
	MinimizeTwoQubit Objective = "2q"
	// MinimizeT minimizes 2·T + CX (the FTQC objective of Example 5.1).
	MinimizeT Objective = "t"
	// MaximizeFidelity maximizes estimated success probability under the
	// gate set's device model.
	MaximizeFidelity Objective = "fidelity"
	// MinimizeGates minimizes total gate count.
	MinimizeGates Objective = "gates"
)

// Options configures Optimize and Start.
type Options struct {
	// GateSet is the target gate set name — built-in or registered via
	// RegisterGateSet; the input must already be native to it (use
	// Translate first). Required unless Target is set.
	GateSet string
	// Target selects the target gate set as either a registered name
	// (string) or a *GateSet value directly — the latter needs no
	// registration, so ad-hoc targets stay run-local. Mutually exclusive
	// with GateSet.
	Target any
	// Objective defaults to MinimizeTwoQubit (MinimizeT for cliffordt).
	// Mutually exclusive with Cost.
	Objective Objective
	// Cost, when set, supplies a custom optimization objective in place of
	// the built-in Objective enum: the search minimizes Cost.Cost and the
	// never-worse guarantee is stated against it. Wrap a plain function
	// with CostFunc. The function must be pure (same circuit, same value)
	// and safe for concurrent use — parallel modes score candidates from
	// several goroutines. Result.Objective reports "custom".
	Cost Cost
	// Epsilon is the global approximation budget ε_f (default 1e-8;
	// 0 disables approximate resynthesis entirely).
	Epsilon float64
	// Budget is sugar for a context deadline: Start derives its run context
	// via context.WithTimeout(ctx, Budget), so cancellation and deadline
	// are one mechanism. For Optimize, 0 keeps the historical 1 s default;
	// for Start, 0 means no deadline — the session runs until the caller's
	// ctx cancels or Stop is called (the anytime mode). Prefer passing a
	// ctx with a deadline to Start; Budget remains for compatibility.
	Budget time.Duration
	// Seed makes runs reproducible (synchronous mode).
	Seed int64
	// MaxIters bounds search iterations (0 = unlimited). A synchronous
	// single-worker run bounded by MaxIters (with a budget generous enough
	// not to fire first) is bit-for-bit reproducible for equal seeds.
	MaxIters int
	// Async runs resynthesis asynchronously alongside rewriting (§5.3).
	Async bool
	// Parallelism is the number of concurrent search workers. 0 or 1 runs
	// the classic single-threaded loop; larger values launch a portfolio of
	// GUOQ workers with diversified seeds and temperatures that periodically
	// exchange the best-so-far solution. Parallel runs are not bit-for-bit
	// reproducible; the ε guarantee is unchanged.
	Parallelism int
	// PartitionParallel additionally splits large circuits into disjoint
	// time windows optimized concurrently, dividing Epsilon across windows
	// (the summed window errors stay within the global budget, Thm 4.2).
	// Circuits too small to window fall back to the portfolio. Requires
	// Parallelism ≥ 2.
	PartitionParallel bool
	// AdaptivePortfolio replaces the portfolio's static temperature ladder
	// with a feedback controller: each worker's temperature retargets from
	// its live acceptance rate, and workers whose searches stall are parked
	// (throttled) until the global best improves, releasing their CPU to
	// productive workers. Requires Parallelism ≥ 2 to have any effect;
	// seeded single-worker runs are byte-identical with it on or off.
	// Parallel runs are not reproducible across runs either way.
	AdaptivePortfolio bool
	// Fixpoint selects parallel local fixpoint optimization — the strategy
	// for circuits too large for one global search: each round splits the
	// circuit into sliding windows, optimizes every window concurrently
	// with a bounded search, stitches improved windows back in one
	// transaction, and alternates window offsets so seams re-optimize;
	// rounds repeat until none improves. Epsilon composes across windows
	// and rounds (Thm 4.2), so the returned Error stays within budget.
	// Parallelism bounds the concurrent window searches (0 = one per CPU).
	// Circuits too small to window fall back to the portfolio. Mutually
	// exclusive with PartitionParallel.
	Fixpoint bool
	// Exchanger, when set, connects this run to an external best-so-far
	// store so several processes (or machines) optimize one circuit as a
	// single search: the run publishes its best solution with its
	// accumulated error bound and adopts strictly better remote solutions.
	// Use internal/dist's client via cmd/guoq -coordinator, or implement
	// the interface to bridge your own transport. The ε guarantee is
	// preserved across migration — adopted solutions carry their own
	// bounds, which the search keeps charging against Epsilon.
	Exchanger Exchanger
	// Transformations extends this run's portfolio with caller-supplied
	// transformations — rules built with NewRule, synthesizers wrapped
	// with UseSynthesizer — sampled by the search exactly like the
	// built-in ones (process-wide registration: RegisterTransformation).
	// Extensions compose with the default portfolio; they never replace
	// it. Empty leaves the portfolio exactly as in previous releases.
	Transformations []Transformation
	// Metrics, when set, is the registry this run reports its metric
	// series into — share one registry across runs to aggregate, or expose
	// it over HTTP with WritePrometheus. Nil gives the session a private
	// registry (Session.Metrics still works); the search loop itself stays
	// free of instrumentation cost beyond a pointer check either way, and
	// instrumented runs remain bit-identical to uninstrumented ones for
	// equal seeds (metrics consume no randomness).
	Metrics *MetricsRegistry
}

// Exchanger is a shared best-so-far store connecting concurrent searches;
// see Options.Exchanger. Implementations must be safe for concurrent use
// and must never mutate a circuit after returning it.
type Exchanger = opt.Exchanger

// Cost is a custom optimization objective: any pure function scoring a
// circuit, which the search minimizes. Implementations must be safe for
// concurrent use (parallel modes score from several goroutines) and fast —
// the cost runs on the search's hot path, once per candidate.
type Cost interface {
	Cost(c *Circuit) float64
}

// CostFunc adapts a plain function to the Cost interface:
//
//	opts.Cost = guoq.CostFunc(func(c *guoq.Circuit) float64 {
//		return float64(c.Depth())
//	})
type CostFunc func(c *Circuit) float64

// Cost implements the Cost interface.
func (f CostFunc) Cost(c *Circuit) float64 { return f(c) }

// ObjectiveCustom is what Result.Objective reports when Options.Cost
// supplied a caller-defined objective.
const ObjectiveCustom Objective = "custom"

// Result reports optimization statistics. Every field is valid for
// cancelled runs too: a session stopped mid-search reports the true
// before/after counts, accumulated Error, and iteration statistics of the
// best-so-far circuit actually returned (the anytime contract).
type Result struct {
	GateSet        string
	Objective      Objective
	Before, After  int // total gate counts
	TwoQubitBefore int
	TwoQubitAfter  int
	TCountBefore   int
	TCountAfter    int
	DepthBefore    int
	DepthAfter     int
	FidelityBefore float64
	FidelityAfter  float64
	// Error is the accumulated ε upper bound of the returned circuit
	// relative to the input (≤ Options.Epsilon; 0 when only exact
	// transformations were applied).
	Error float64
	// Iters and Accepted are the cumulative search-loop counters (summed
	// across workers in parallel modes).
	Iters    int
	Accepted int
	// Migrations counts how many times the search adopted a better
	// solution from Options.Exchanger (0 without one).
	Migrations int
	Elapsed    time.Duration
	// Rules is the per-transformation attribution table: how often each
	// transformation in the portfolio was attempted, accepted, and
	// rejected, sorted by accepts (ties by name). Only the final Result of
	// a finished run carries it; mid-run Best snapshots leave it nil.
	Rules []RuleStat
}

// RuleStat is one row of Result.Rules: the attempt/accept/reject counts of
// a single named transformation (rewrite rules as "rule:<name>",
// resynthesis as "resynth:<name>").
type RuleStat struct {
	Name     string
	Attempts int
	Accepted int
	Rejected int
}

// Validate reports the first configuration error in o, with the silently
// ignored combinations of older releases now rejected explicitly:
// PartitionParallel without Parallelism ≥ 2, an Objective set alongside a
// custom Cost, negative budgets, unknown gate-set or objective names, and
// a Target that is neither a known name nor a valid *GateSet. Start and
// Optimize call it after applying defaults; call it directly to fail fast
// on configuration assembled from user input.
func (o Options) Validate() error {
	if _, err := resolveTarget(o); err != nil {
		return err
	}
	if o.Cost != nil && o.Objective != "" && o.Objective != ObjectiveCustom {
		return fmt.Errorf("guoq: Options.Cost and Options.Objective %q are mutually exclusive (set one)", o.Objective)
	}
	if o.Cost == nil && o.Objective != "" {
		switch o.Objective {
		case MinimizeTwoQubit, MinimizeT, MaximizeFidelity, MinimizeGates:
		default:
			return fmt.Errorf("guoq: unknown objective %q", o.Objective)
		}
	}
	if o.Epsilon < 0 {
		return fmt.Errorf("guoq: Options.Epsilon must be ≥ 0, got %g", o.Epsilon)
	}
	if o.Budget < 0 {
		return fmt.Errorf("guoq: Options.Budget must be ≥ 0, got %v", o.Budget)
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("guoq: Options.Parallelism must be ≥ 0, got %d", o.Parallelism)
	}
	if o.MaxIters < 0 {
		return fmt.Errorf("guoq: Options.MaxIters must be ≥ 0, got %d", o.MaxIters)
	}
	if o.PartitionParallel && o.Parallelism < 2 {
		return fmt.Errorf("guoq: Options.PartitionParallel requires Parallelism ≥ 2, got %d", o.Parallelism)
	}
	if o.Fixpoint && o.PartitionParallel {
		return fmt.Errorf("guoq: Options.Fixpoint and Options.PartitionParallel are mutually exclusive (set one)")
	}
	return nil
}

// resolveCost maps the configured objective (enum or custom Cost) to the
// internal cost function and the label Result.Objective reports.
func resolveCost(o Options, gs *gateset.GateSet) (opt.Cost, Objective, error) {
	if o.Cost != nil {
		cc := o.Cost
		return func(c *circuit.Circuit) float64 { return cc.Cost(c) }, ObjectiveCustom, nil
	}
	model := gateset.ModelFor(gs)
	switch o.Objective {
	case MinimizeTwoQubit:
		return opt.TwoQubitCost(), o.Objective, nil
	case MinimizeT:
		return opt.TCost(), o.Objective, nil
	case MaximizeFidelity:
		return opt.FidelityCost(model), o.Objective, nil
	case MinimizeGates:
		return opt.GateCountCost(), o.Objective, nil
	default:
		return nil, "", fmt.Errorf("guoq: unknown objective %q", o.Objective)
	}
}

// Optimize runs the GUOQ algorithm on a circuit already expressed in the
// target gate set and returns the optimized circuit with statistics. The
// result is always at least as good as the input under the chosen
// objective, and ε-equivalent to it.
//
// Optimize is a thin synchronous wrapper over Start + Wait: seeded
// synchronous runs produce bit-identical output through either entry
// point. Use Start directly when you need cancellation, live progress, or
// mid-run snapshots.
func Optimize(c *Circuit, o Options) (*Circuit, *Result, error) {
	if o.Budget == 0 {
		o.Budget = time.Second
	}
	s, err := Start(context.Background(), c, o)
	if err != nil {
		return nil, nil, err
	}
	return s.Wait()
}

// Distance returns the Hilbert–Schmidt distance (Def. 3.2) between two
// circuits' unitaries — the metric of the ε guarantee, and the one the
// framework uses to verify Synthesizer proposals. A Synthesizer
// implementation reports Distance(sub, replacement) as its consumed ε.
// Both circuits must act on the same number of qubits; the cost is
// exponential in it (fine for the ≤ 3-qubit subcircuits synthesizers see).
func Distance(a, b *Circuit) float64 {
	return linalg.HSDistance(a.Unitary(), b.Unitary())
}

// EstimateFidelity returns the estimated success probability of a circuit
// under the device model the paper pairs with the gate set.
func EstimateFidelity(c *Circuit, gateSet string) (float64, error) {
	gs, err := gateset.ByName(gateSet)
	if err != nil {
		return 0, err
	}
	return gateset.ModelFor(gs).CircuitFidelity(c), nil
}
