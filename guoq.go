// Package guoq is a quantum-circuit optimizer that unifies fast rewrite
// rules and slow unitary resynthesis behind a single randomized search, a
// from-scratch Go reproduction of "Optimizing Quantum Circuits, Fast and
// Slow" (ASPLOS 2025).
//
// Quick start:
//
//	c, _ := guoq.ParseQASM(src)
//	out, res, _ := guoq.Optimize(c, guoq.Options{
//		GateSet: "ibm-eagle",
//		Budget:  2 * time.Second,
//	})
//	fmt.Println(res.TwoQubitBefore, "->", out.TwoQubitCount())
//
// The optimizer guarantees the result is ε-equivalent to the input under
// the Hilbert–Schmidt distance (Thm 5.3 of the paper): rewrite rules are
// exact, resynthesis consumes an explicitly tracked error budget.
package guoq

import (
	"fmt"
	"time"

	"github.com/guoq-dev/guoq/internal/baselines"
	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/opt"
)

// Circuit is an ordered list of gate applications on a fixed number of
// qubits. Build one with NewCircuit and the gate constructors, or parse
// OpenQASM 2.0 with ParseQASM.
type Circuit = circuit.Circuit

// Gate is a single gate application.
type Gate = gate.Gate

// NewCircuit returns an empty circuit on n qubits.
func NewCircuit(n int) *Circuit { return circuit.New(n) }

// ParseQASM parses an OpenQASM 2.0 (subset) program.
func ParseQASM(src string) (*Circuit, error) { return circuit.ParseQASM(src) }

// Gate constructors (controls first, then targets).
var (
	H    = gate.NewH
	X    = gate.NewX
	Y    = gate.NewY
	Z    = gate.NewZ
	S    = gate.NewS
	Sdg  = gate.NewSdg
	T    = gate.NewT
	Tdg  = gate.NewTdg
	SX   = gate.NewSX
	Rx   = gate.NewRx
	Ry   = gate.NewRy
	Rz   = gate.NewRz
	U1   = gate.NewU1
	U2   = gate.NewU2
	U3   = gate.NewU3
	CX   = gate.NewCX
	CZ   = gate.NewCZ
	Swap = gate.NewSwap
	Rxx  = gate.NewRxx
	Rzz  = gate.NewRzz
	CP   = gate.NewCP
	CCX  = gate.NewCCX
	CCZ  = gate.NewCCZ
)

// GateSets lists the supported target gate sets (Table 2 of the paper):
// "ibmq20", "ibm-eagle", "ionq", "nam", "cliffordt".
func GateSets() []string {
	var out []string
	for _, gs := range gateset.All() {
		out = append(out, gs.Name)
	}
	return out
}

// Translate decomposes a circuit into a target gate set, preserving the
// unitary up to global phase.
func Translate(c *Circuit, gateSet string) (*Circuit, error) {
	gs, err := gateset.ByName(gateSet)
	if err != nil {
		return nil, err
	}
	return gateset.Translate(c, gs)
}

// Objective selects the optimization cost function.
type Objective string

// DefaultObjective returns the objective Optimize uses when Options leaves
// it empty: MinimizeT for the cliffordt gate set, MinimizeTwoQubit for
// everything else. Exported so callers that need the resolved objective
// before optimizing (cmd/guoq derives the distributed session id from it)
// cannot drift from the library's defaulting.
func DefaultObjective(gateSet string) Objective {
	if gateSet == "cliffordt" {
		return MinimizeT
	}
	return MinimizeTwoQubit
}

// Available objectives.
const (
	// MinimizeTwoQubit minimizes two-qubit gate count (NISQ default).
	MinimizeTwoQubit Objective = "2q"
	// MinimizeT minimizes 2·T + CX (the FTQC objective of Example 5.1).
	MinimizeT Objective = "t"
	// MaximizeFidelity maximizes estimated success probability under the
	// gate set's device model.
	MaximizeFidelity Objective = "fidelity"
	// MinimizeGates minimizes total gate count.
	MinimizeGates Objective = "gates"
)

// Options configures Optimize.
type Options struct {
	// GateSet is the target gate set name; the input must already be
	// native to it (use Translate first). Required.
	GateSet string
	// Objective defaults to MinimizeTwoQubit (MinimizeT for cliffordt).
	Objective Objective
	// Epsilon is the global approximation budget ε_f (default 1e-8;
	// 0 disables approximate resynthesis entirely).
	Epsilon float64
	// Budget is the wall-clock search budget (default 1 s).
	Budget time.Duration
	// Seed makes runs reproducible (synchronous mode).
	Seed int64
	// Async runs resynthesis asynchronously alongside rewriting (§5.3).
	Async bool
	// Parallelism is the number of concurrent search workers. 0 or 1 runs
	// the classic single-threaded loop; larger values launch a portfolio of
	// GUOQ workers with diversified seeds and temperatures that periodically
	// exchange the best-so-far solution. Parallel runs are not bit-for-bit
	// reproducible; the ε guarantee is unchanged.
	Parallelism int
	// PartitionParallel additionally splits large circuits into disjoint
	// time windows optimized concurrently, dividing Epsilon across windows
	// (the summed window errors stay within the global budget, Thm 4.2).
	// Circuits too small to window fall back to the portfolio. Requires
	// Parallelism ≥ 2.
	PartitionParallel bool
	// Exchanger, when set, connects this run to an external best-so-far
	// store so several processes (or machines) optimize one circuit as a
	// single search: the run publishes its best solution with its
	// accumulated error bound and adopts strictly better remote solutions.
	// Use internal/dist's client via cmd/guoq -coordinator, or implement
	// the interface to bridge your own transport. The ε guarantee is
	// preserved across migration — adopted solutions carry their own
	// bounds, which the search keeps charging against Epsilon.
	Exchanger Exchanger
}

// Exchanger is a shared best-so-far store connecting concurrent searches;
// see Options.Exchanger. Implementations must be safe for concurrent use
// and must never mutate a circuit after returning it.
type Exchanger = opt.Exchanger

// Result reports optimization statistics.
type Result struct {
	GateSet        string
	Objective      Objective
	Before, After  int // total gate counts
	TwoQubitBefore int
	TwoQubitAfter  int
	TCountBefore   int
	TCountAfter    int
	DepthBefore    int
	DepthAfter     int
	FidelityBefore float64
	FidelityAfter  float64
	// Error is the accumulated ε upper bound of the returned circuit
	// relative to the input (≤ Options.Epsilon; 0 when only exact
	// transformations were applied).
	Error float64
	// Migrations counts how many times the search adopted a better
	// solution from Options.Exchanger (0 without one).
	Migrations int
	Elapsed    time.Duration
}

// Optimize runs the GUOQ algorithm on a circuit already expressed in the
// target gate set and returns the optimized circuit with statistics. The
// result is always at least as good as the input under the chosen
// objective, and ε-equivalent to it.
func Optimize(c *Circuit, o Options) (*Circuit, *Result, error) {
	gs, err := gateset.ByName(o.GateSet)
	if err != nil {
		return nil, nil, err
	}
	if !gs.IsNative(c) {
		return nil, nil, fmt.Errorf("guoq: input circuit is not native to %s (use Translate first)", o.GateSet)
	}
	if o.Objective == "" {
		o.Objective = DefaultObjective(gs.Name)
	}
	if o.Epsilon == 0 {
		o.Epsilon = 1e-8
	}
	if o.Budget == 0 {
		o.Budget = time.Second
	}
	var cost opt.Cost
	model := gateset.ModelFor(gs)
	switch o.Objective {
	case MinimizeTwoQubit:
		cost = opt.TwoQubitCost()
	case MinimizeT:
		cost = opt.TCost()
	case MaximizeFidelity:
		cost = opt.FidelityCost(model)
	case MinimizeGates:
		cost = opt.GateCountCost()
	default:
		return nil, nil, fmt.Errorf("guoq: unknown objective %q", o.Objective)
	}

	runner := baselines.NewGUOQ(o.Epsilon)
	runner.Async = o.Async
	runner.Parallelism = o.Parallelism
	runner.Partition = o.PartitionParallel
	runner.Exchanger = o.Exchanger
	start := time.Now()
	out, stats := runner.OptimizeStats(c, gs, cost, o.Budget, o.Seed)
	res := &Result{
		GateSet:        o.GateSet,
		Objective:      o.Objective,
		Before:         c.Len(),
		After:          out.Len(),
		TwoQubitBefore: c.TwoQubitCount(),
		TwoQubitAfter:  out.TwoQubitCount(),
		TCountBefore:   c.TCount(),
		TCountAfter:    out.TCount(),
		DepthBefore:    c.Depth(),
		DepthAfter:     out.Depth(),
		FidelityBefore: model.CircuitFidelity(c),
		FidelityAfter:  model.CircuitFidelity(out),
		Error:          stats.BestError,
		Migrations:     stats.Migrations,
		Elapsed:        time.Since(start),
	}
	return out, res, nil
}

// EstimateFidelity returns the estimated success probability of a circuit
// under the device model the paper pairs with the gate set.
func EstimateFidelity(c *Circuit, gateSet string) (float64, error) {
	gs, err := gateset.ByName(gateSet)
	if err != nil {
		return 0, err
	}
	return gateset.ModelFor(gs).CircuitFidelity(c), nil
}
