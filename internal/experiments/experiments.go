// Package experiments contains the drivers that regenerate every table and
// figure of the paper's evaluation (§6): the tool-versus-GUOQ comparisons
// (Figs. 1, 8, 9, 12), the ablations (Figs. 10, 11, 13, 14), the time
// series of Fig. 7, and the suite summary of Fig. 15. Each driver prints
// the same rows/series the paper reports; EXPERIMENTS.md records the
// measured shapes against the paper's.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"github.com/guoq-dev/guoq/internal/baselines"
	"github.com/guoq-dev/guoq/internal/benchmarks"
	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/opt"
)

// Config scales an experiment. The paper runs 1 h × 247 benchmarks per
// tool on a server; the defaults here compress both axes proportionally so
// a full figure regenerates in minutes on a laptop (see DESIGN.md §3).
type Config struct {
	// Budget is the wall-clock optimization budget per tool per circuit.
	Budget time.Duration
	// Trials is the number of seeded GUOQ runs per benchmark (10 in the
	// paper) used for the mean and 95% confidence interval.
	Trials int
	// SuiteLimit truncates the 247-circuit suite by even subsampling
	// (0 = full suite).
	SuiteLimit int
	// Shard and Shards statically split the (subsampled) suite across
	// cooperating guoqbench processes: a run with Shard=i, Shards=n works
	// on every n-th circuit starting at i, so n machines sweeping the same
	// configuration cover the suite exactly once with no coordinator.
	// Shards ≤ 1 disables sharding. For dynamic (lease-based) distribution
	// see Bench with a JobSource.
	Shard, Shards int
	// Epsilon is the approximation budget for approximate tools (10⁻⁸).
	Epsilon float64
	// Seed is the base random seed.
	Seed int64
	// Out receives the report (defaults to io.Discard if nil).
	Out io.Writer
}

// QuickConfig is the compressed configuration used by the bench harness.
func QuickConfig() Config {
	return Config{
		Budget:     120 * time.Millisecond,
		Trials:     3,
		SuiteLimit: 24,
		Epsilon:    1e-8,
		Seed:       1,
	}
}

func (cfg *Config) normalize() {
	if cfg.Budget == 0 {
		cfg.Budget = 120 * time.Millisecond
	}
	if cfg.Trials == 0 {
		cfg.Trials = 3
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 1e-8
	}
	if cfg.Out == nil {
		cfg.Out = io.Discard
	}
}

// Subsample picks limit evenly spaced circuits (0 = all). Exported so the
// guoqd daemon seeds its work queue with exactly the circuits a local
// guoqbench run at the same -limit would sweep.
func Subsample(suite []benchmarks.Named, limit int) []benchmarks.Named {
	if limit <= 0 || limit >= len(suite) {
		return suite
	}
	out := make([]benchmarks.Named, 0, limit)
	for i := 0; i < limit; i++ {
		out = append(out, suite[i*len(suite)/limit])
	}
	return out
}

// selectSuite applies the Config's suite selection: even subsampling to
// SuiteLimit, then the static Shard/Shards split. Sharding happens after
// subsampling so shards of the same configuration partition the same
// subsampled suite.
func (cfg Config) selectSuite(suite []benchmarks.Named) []benchmarks.Named {
	suite = Subsample(suite, cfg.SuiteLimit)
	if cfg.Shards <= 1 {
		return suite
	}
	shard := cfg.Shard % cfg.Shards
	if shard < 0 {
		shard += cfg.Shards
	}
	var out []benchmarks.Named
	for i := shard; i < len(suite); i += cfg.Shards {
		out = append(out, suite[i])
	}
	return out
}

// Metric computes a scalar from an optimized circuit given its original.
type Metric struct {
	Name string
	// Higher is better for all metrics used in the paper (reductions and
	// fidelity).
	Eval func(orig, opt *circuit.Circuit) float64
}

// TwoQubitReduction is 1 − optimized/original two-qubit count.
func TwoQubitReduction() Metric {
	return Metric{Name: "2q reduction", Eval: func(orig, opt *circuit.Circuit) float64 {
		o := orig.TwoQubitCount()
		if o == 0 {
			return 0
		}
		return 1 - float64(opt.TwoQubitCount())/float64(o)
	}}
}

// TReduction is 1 − optimized/original T count.
func TReduction() Metric {
	return Metric{Name: "T reduction", Eval: func(orig, opt *circuit.Circuit) float64 {
		o := orig.TCount()
		if o == 0 {
			return 0
		}
		return 1 - float64(opt.TCount())/float64(o)
	}}
}

// Fidelity is the estimated success probability under the device model.
func Fidelity(m gateset.FidelityModel) Metric {
	return Metric{Name: "fidelity", Eval: func(_, opt *circuit.Circuit) float64 {
		return m.CircuitFidelity(opt)
	}}
}

// Stats summarizes trials.
type Stats struct {
	Mean float64
	CI95 float64 // half-width of the 95% confidence interval
	N    int
}

// Summarize computes the mean and normal-approximation 95% CI.
func Summarize(values []float64) Stats {
	n := len(values)
	if n == 0 {
		return Stats{}
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	mean := sum / float64(n)
	if n == 1 {
		return Stats{Mean: mean, N: 1}
	}
	var ss float64
	for _, v := range values {
		ss += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(ss / float64(n-1))
	return Stats{Mean: mean, CI95: 1.96 * sd / math.Sqrt(float64(n)), N: n}
}

// Verdict compares GUOQ's mean metric to a tool's per benchmark.
type Verdict int

// Verdict values.
const (
	Better Verdict = iota
	Match
	Worse
)

// Compare classifies with a small tolerance (metrics are ratios in [0,1]).
func Compare(guoq, tool float64) Verdict {
	const tol = 1e-9
	switch {
	case guoq > tool+tol:
		return Better
	case guoq < tool-tol:
		return Worse
	default:
		return Match
	}
}

// BenchResult is one benchmark's outcome for one tool and one metric.
type BenchResult struct {
	Bench string
	GUOQ  Stats
	Tool  Stats
}

// Tally counts better/match/worse over a result set.
func Tally(rs []BenchResult) (better, match, worse int) {
	for _, r := range rs {
		switch Compare(r.GUOQ.Mean, r.Tool.Mean) {
		case Better:
			better++
		case Match:
			match++
		case Worse:
			worse++
		}
	}
	return
}

// runTool executes an optimizer over trials and returns metric values.
func runTool(tool baselines.Optimizer, b benchmarks.Named, gs *gateset.GateSet,
	cost opt.Cost, m Metric, cfg Config, trials int) []float64 {
	vals := make([]float64, 0, trials)
	for t := 0; t < trials; t++ {
		out := tool.Optimize(b.Circuit, gs, cost, cfg.Budget, cfg.Seed+int64(t)*7919)
		vals = append(vals, m.Eval(b.Circuit, out))
	}
	return vals
}

// Comparison runs GUOQ against one tool over a suite for one metric. The
// tool runs once per benchmark if deterministic-ish (trials=1 keeps cost
// fair — every tool gets the same per-run budget as the paper).
func Comparison(guoq, tool baselines.Optimizer, suite []benchmarks.Named,
	gs *gateset.GateSet, cost opt.Cost, m Metric, cfg Config) []BenchResult {
	out := make([]BenchResult, 0, len(suite))
	for _, b := range suite {
		g := Summarize(runTool(guoq, b, gs, cost, m, cfg, cfg.Trials))
		tl := Summarize(runTool(tool, b, gs, cost, m, cfg, 1))
		out = append(out, BenchResult{Bench: b.Name, GUOQ: g, Tool: tl})
	}
	// Present sorted by GUOQ's metric, as in the paper's scatter plots.
	sort.Slice(out, func(i, j int) bool { return out[i].GUOQ.Mean < out[j].GUOQ.Mean })
	return out
}

// PrintComparison renders a paper-style block: the per-benchmark series and
// the better/match/worse bar.
func PrintComparison(w io.Writer, title string, m Metric, rs []BenchResult) {
	b, ma, wo := Tally(rs)
	fmt.Fprintf(w, "== %s — %s ==\n", title, m.Name)
	fmt.Fprintf(w, "GUOQ better on %d, match on %d, worse on %d (of %d)\n",
		b, ma, wo, len(rs))
	fmt.Fprintf(w, "%-24s %12s %12s\n", "benchmark", "guoq", "tool")
	for _, r := range rs {
		fmt.Fprintf(w, "%-24s %6.3f±%.3f %6.3f±%.3f\n",
			r.Bench, r.GUOQ.Mean, r.GUOQ.CI95, r.Tool.Mean, r.Tool.CI95)
	}
	fmt.Fprintln(w)
}
