package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/guoq-dev/guoq/internal/baselines"
	"github.com/guoq-dev/guoq/internal/benchmarks"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/obs"
	"github.com/guoq-dev/guoq/internal/opt"
)

// CircuitResult is the machine-readable outcome of optimizing one
// benchmark circuit — the per-circuit record behind guoqbench -json, and
// the payload a sharded worker reports back to the guoqd work queue.
type CircuitResult struct {
	Name    string `json:"name"`
	Family  string `json:"family"`
	GateSet string `json:"gateset"`
	Qubits  int    `json:"qubits"`

	GatesBefore    int `json:"gates_before"`
	GatesAfter     int `json:"gates_after"`
	TwoQubitBefore int `json:"twoq_before"`
	TwoQubitAfter  int `json:"twoq_after"`
	TBefore        int `json:"t_before"`
	TAfter         int `json:"t_after"`

	// Err is the accumulated ε upper bound of the returned circuit.
	Err float64 `json:"err"`
	// WallMillis is the measured optimization wall time.
	WallMillis float64 `json:"wall_ms"`
	Iters      int     `json:"iters"`
	Migrations int     `json:"migrations,omitempty"`
	Worker     string  `json:"worker,omitempty"`

	// AllocsPerIter is the heap allocations per search iteration across
	// this circuit's run (BenchOptions.Metrics only) — the cheapest
	// regression signal for hot-loop allocation creep.
	AllocsPerIter float64 `json:"allocs_per_iter,omitempty"`
	// Metrics is the circuit's full metric snapshot (BenchOptions.Metrics
	// only): each circuit runs against a fresh registry, so counters such
	// as guoq_engine_cache_hits_total and per-rule accept series are
	// per-circuit, letting a reader chart cache-hit trajectories across
	// the suite.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// JobSource leases benchmark names from a remote work queue (a guoqd
// coordinator). LeaseNext blocks while other workers hold leases and
// returns ok=false once the queue is drained; CompleteJob reports one
// finished circuit's JSON record. internal/dist.JobSource implements it.
type JobSource interface {
	LeaseNext() (id string, ok bool, err error)
	CompleteJob(id string, result json.RawMessage) error
}

// BenchOptions configures a Bench sweep.
type BenchOptions struct {
	// GateSet is the target gate set (default "ibmq20"). The objective is
	// the gate set's natural one: T-count for cliffordt, two-qubit count
	// otherwise.
	GateSet string
	// Workers is the per-circuit portfolio size (≤ 1 = single worker).
	Workers int
	// Source, when set, switches from the static Config.Shard split to
	// dynamic lease-based sharding: circuits are pulled from the remote
	// queue until it drains, and every result is reported back.
	Source JobSource
	// Worker names this process in reported results.
	Worker string
	// JSON, when set, receives the per-circuit results as an indented JSON
	// array, streamed one element per finished circuit (the array is valid
	// JSON once the sweep ends — including a cancelled sweep). Writing to a
	// terminal therefore shows live per-circuit progress in -json mode.
	JSON io.Writer
	// Context, when set, cancels the sweep: the loop stops between
	// circuits, the in-flight circuit's search returns its best-so-far
	// (recorded like any other result), and Bench returns everything
	// completed so far without error — cancellation is a normal anytime
	// outcome, not a failure. Nil means context.Background().
	Context context.Context
	// Metrics adds a per-circuit observability snapshot to every result:
	// AllocsPerIter (heap allocations per search iteration) and the full
	// metric registry of that circuit's run. Each circuit gets a fresh
	// registry, so the series are per-circuit, not cumulative.
	Metrics bool
}

// jsonArrayStream incrementally writes a JSON array, one element per emit,
// so a consumer tailing the output sees records as they complete and a
// cancelled sweep still ends with valid JSON.
type jsonArrayStream struct {
	w io.Writer
	n int
}

func (s *jsonArrayStream) emit(v any) error {
	raw, err := json.MarshalIndent(v, "  ", "  ")
	if err != nil {
		return err
	}
	sep := "[\n  "
	if s.n > 0 {
		sep = ",\n  "
	}
	s.n++
	_, err = fmt.Fprintf(s.w, "%s%s", sep, raw)
	return err
}

func (s *jsonArrayStream) close() error {
	if s.n == 0 {
		_, err := io.WriteString(s.w, "[]\n")
		return err
	}
	_, err := io.WriteString(s.w, "\n]\n")
	return err
}

// Bench sweeps benchmark circuits through GUOQ once each and records
// per-circuit results: gate counts before/after, the accumulated ε bound,
// and wall time. In static mode the sweep covers the Config's suite
// selection (subsample, then shard); with a JobSource it instead leases
// circuit names from a guoqd queue until the queue drains, so N workers
// dynamically shard one suite with dead-worker retry handled server-side.
func Bench(cfg Config, bo BenchOptions) ([]CircuitResult, error) {
	cfg.normalize()
	if bo.GateSet == "" {
		bo.GateSet = "ibmq20"
	}
	ctx := bo.Context
	if ctx == nil {
		ctx = context.Background()
	}
	gs, err := gateset.ByName(bo.GateSet)
	if err != nil {
		return nil, err
	}
	suite, err := benchmarks.SuiteFor(gs)
	if err != nil {
		return nil, err
	}
	cost := opt.TwoQubitCost()
	if gs.Name == "cliffordt" {
		cost = opt.TCost()
	}
	var runner *baselines.GUOQ
	if bo.Workers > 1 {
		runner = baselines.NewPortfolio(cfg.Epsilon, bo.Workers)
	} else {
		runner = baselines.NewGUOQ(cfg.Epsilon)
	}

	var stream *jsonArrayStream
	if bo.JSON != nil {
		stream = &jsonArrayStream{w: bo.JSON}
	}

	runOne := func(b benchmarks.Named) CircuitResult {
		// Fresh registry per circuit (the sweep is sequential, so swapping
		// the runner's bundle between circuits is race-free): each result
		// carries its own counters instead of a running total.
		var reg *obs.Registry
		var ms0 runtime.MemStats
		if bo.Metrics {
			reg = obs.NewRegistry()
			runner.Metrics = opt.NewMetrics(reg)
			runtime.ReadMemStats(&ms0)
		}
		start := time.Now()
		out, stats := runner.OptimizeStatsContext(ctx, b.Circuit, gs, cost, cfg.Budget, cfg.Seed)
		wall := time.Since(start)
		r := CircuitResult{
			Name:           b.Name,
			Family:         b.Family,
			GateSet:        gs.Name,
			Qubits:         b.Circuit.NumQubits,
			GatesBefore:    b.Circuit.Len(),
			GatesAfter:     out.Len(),
			TwoQubitBefore: b.Circuit.TwoQubitCount(),
			TwoQubitAfter:  out.TwoQubitCount(),
			TBefore:        b.Circuit.TCount(),
			TAfter:         out.TCount(),
			Err:            stats.BestError,
			WallMillis:     float64(wall.Microseconds()) / 1e3,
			Iters:          stats.Iters,
			Migrations:     stats.Migrations,
			Worker:         bo.Worker,
		}
		if bo.Metrics {
			var ms1 runtime.MemStats
			runtime.ReadMemStats(&ms1)
			if stats.Iters > 0 {
				r.AllocsPerIter = float64(ms1.Mallocs-ms0.Mallocs) / float64(stats.Iters)
			}
			r.Metrics = reg.Snapshot()
		}
		fmt.Fprintf(cfg.Out, "%-24s gates %5d -> %5d  2q %5d -> %5d  ε=%.3g  %7.1fms\n",
			r.Name, r.GatesBefore, r.GatesAfter, r.TwoQubitBefore, r.TwoQubitAfter, r.Err, r.WallMillis)
		return r
	}

	var results []CircuitResult
	record := func(r CircuitResult) error {
		results = append(results, r)
		if stream != nil {
			return stream.emit(r)
		}
		return nil
	}

	if bo.Source == nil {
		for _, b := range cfg.selectSuite(suite) {
			if ctx.Err() != nil {
				break // cancelled: return what completed, valid JSON and all
			}
			if err := record(runOne(b)); err != nil {
				return finish(results, stream, err)
			}
		}
	} else {
		byName := make(map[string]benchmarks.Named, len(suite))
		for _, b := range suite {
			byName[b.Name] = b
		}
		for ctx.Err() == nil {
			id, ok, err := bo.Source.LeaseNext()
			if err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					break // the poll loop observed our cancellation
				}
				return finish(results, stream, fmt.Errorf("experiments: lease: %w", err))
			}
			if !ok {
				break
			}
			b, known := byName[id]
			if !known {
				// A job this build does not know (version skew between the
				// seeder and the worker): report it so the queue does not
				// retry it forever on a worker that can never run it.
				msg, _ := json.Marshal(map[string]string{"error": "unknown circuit " + id})
				if err := bo.Source.CompleteJob(id, msg); err != nil {
					return finish(results, stream, fmt.Errorf("experiments: complete %s: %w", id, err))
				}
				continue
			}
			r := runOne(b)
			raw, err := json.Marshal(r)
			if err != nil {
				return finish(results, stream, err)
			}
			if err := bo.Source.CompleteJob(id, raw); err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					// Interrupted while reporting: the completion HTTP call
					// ran on the already-cancelled client context. Keep the
					// finished circuit locally (JSON stream + return value)
					// and stop gracefully; the coordinator re-issues the
					// unacknowledged lease after its TTL.
					if rerr := record(r); rerr != nil {
						return finish(results, stream, rerr)
					}
					break
				}
				return finish(results, stream, fmt.Errorf("experiments: complete %s: %w", id, err))
			}
			if err := record(r); err != nil {
				return finish(results, stream, err)
			}
		}
	}
	return finish(results, stream, nil)
}

// finish closes the JSON stream (keeping the first error) and returns.
func finish(results []CircuitResult, stream *jsonArrayStream, err error) ([]CircuitResult, error) {
	if stream != nil {
		if cerr := stream.close(); err == nil {
			err = cerr
		}
	}
	return results, err
}
