package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/guoq-dev/guoq/internal/baselines"
	"github.com/guoq-dev/guoq/internal/benchmarks"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/opt"
)

// CircuitResult is the machine-readable outcome of optimizing one
// benchmark circuit — the per-circuit record behind guoqbench -json, and
// the payload a sharded worker reports back to the guoqd work queue.
type CircuitResult struct {
	Name    string `json:"name"`
	Family  string `json:"family"`
	GateSet string `json:"gateset"`
	Qubits  int    `json:"qubits"`

	GatesBefore    int `json:"gates_before"`
	GatesAfter     int `json:"gates_after"`
	TwoQubitBefore int `json:"twoq_before"`
	TwoQubitAfter  int `json:"twoq_after"`
	TBefore        int `json:"t_before"`
	TAfter         int `json:"t_after"`

	// Err is the accumulated ε upper bound of the returned circuit.
	Err float64 `json:"err"`
	// WallMillis is the measured optimization wall time.
	WallMillis float64 `json:"wall_ms"`
	Iters      int     `json:"iters"`
	Migrations int     `json:"migrations,omitempty"`
	Worker     string  `json:"worker,omitempty"`
}

// JobSource leases benchmark names from a remote work queue (a guoqd
// coordinator). LeaseNext blocks while other workers hold leases and
// returns ok=false once the queue is drained; CompleteJob reports one
// finished circuit's JSON record. internal/dist.JobSource implements it.
type JobSource interface {
	LeaseNext() (id string, ok bool, err error)
	CompleteJob(id string, result json.RawMessage) error
}

// BenchOptions configures a Bench sweep.
type BenchOptions struct {
	// GateSet is the target gate set (default "ibmq20"). The objective is
	// the gate set's natural one: T-count for cliffordt, two-qubit count
	// otherwise.
	GateSet string
	// Workers is the per-circuit portfolio size (≤ 1 = single worker).
	Workers int
	// Source, when set, switches from the static Config.Shard split to
	// dynamic lease-based sharding: circuits are pulled from the remote
	// queue until it drains, and every result is reported back.
	Source JobSource
	// Worker names this process in reported results.
	Worker string
	// JSON, when set, receives the per-circuit results as an indented
	// JSON array once the sweep finishes.
	JSON io.Writer
}

// Bench sweeps benchmark circuits through GUOQ once each and records
// per-circuit results: gate counts before/after, the accumulated ε bound,
// and wall time. In static mode the sweep covers the Config's suite
// selection (subsample, then shard); with a JobSource it instead leases
// circuit names from a guoqd queue until the queue drains, so N workers
// dynamically shard one suite with dead-worker retry handled server-side.
func Bench(cfg Config, bo BenchOptions) ([]CircuitResult, error) {
	cfg.normalize()
	if bo.GateSet == "" {
		bo.GateSet = "ibmq20"
	}
	gs, err := gateset.ByName(bo.GateSet)
	if err != nil {
		return nil, err
	}
	suite, err := benchmarks.SuiteFor(gs)
	if err != nil {
		return nil, err
	}
	cost := opt.TwoQubitCost()
	if gs.Name == "cliffordt" {
		cost = opt.TCost()
	}
	var runner *baselines.GUOQ
	if bo.Workers > 1 {
		runner = baselines.NewPortfolio(cfg.Epsilon, bo.Workers)
	} else {
		runner = baselines.NewGUOQ(cfg.Epsilon)
	}

	runOne := func(b benchmarks.Named) CircuitResult {
		start := time.Now()
		out, stats := runner.OptimizeStats(b.Circuit, gs, cost, cfg.Budget, cfg.Seed)
		wall := time.Since(start)
		r := CircuitResult{
			Name:           b.Name,
			Family:         b.Family,
			GateSet:        gs.Name,
			Qubits:         b.Circuit.NumQubits,
			GatesBefore:    b.Circuit.Len(),
			GatesAfter:     out.Len(),
			TwoQubitBefore: b.Circuit.TwoQubitCount(),
			TwoQubitAfter:  out.TwoQubitCount(),
			TBefore:        b.Circuit.TCount(),
			TAfter:         out.TCount(),
			Err:            stats.BestError,
			WallMillis:     float64(wall.Microseconds()) / 1e3,
			Iters:          stats.Iters,
			Migrations:     stats.Migrations,
			Worker:         bo.Worker,
		}
		fmt.Fprintf(cfg.Out, "%-24s gates %5d -> %5d  2q %5d -> %5d  ε=%.3g  %7.1fms\n",
			r.Name, r.GatesBefore, r.GatesAfter, r.TwoQubitBefore, r.TwoQubitAfter, r.Err, r.WallMillis)
		return r
	}

	var results []CircuitResult
	if bo.Source == nil {
		for _, b := range cfg.selectSuite(suite) {
			results = append(results, runOne(b))
		}
	} else {
		byName := make(map[string]benchmarks.Named, len(suite))
		for _, b := range suite {
			byName[b.Name] = b
		}
		for {
			id, ok, err := bo.Source.LeaseNext()
			if err != nil {
				return results, fmt.Errorf("experiments: lease: %w", err)
			}
			if !ok {
				break
			}
			b, known := byName[id]
			if !known {
				// A job this build does not know (version skew between the
				// seeder and the worker): report it so the queue does not
				// retry it forever on a worker that can never run it.
				msg, _ := json.Marshal(map[string]string{"error": "unknown circuit " + id})
				if err := bo.Source.CompleteJob(id, msg); err != nil {
					return results, fmt.Errorf("experiments: complete %s: %w", id, err)
				}
				continue
			}
			r := runOne(b)
			raw, err := json.Marshal(r)
			if err != nil {
				return results, err
			}
			if err := bo.Source.CompleteJob(id, raw); err != nil {
				return results, fmt.Errorf("experiments: complete %s: %w", id, err)
			}
			results = append(results, r)
		}
	}

	if bo.JSON != nil {
		enc := json.NewEncoder(bo.JSON)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			return results, err
		}
	}
	return results, nil
}
