package experiments

import (
	"fmt"

	"github.com/guoq-dev/guoq/internal/baselines"
	"github.com/guoq-dev/guoq/internal/benchmarks"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/opt"
)

// Parallel compares the parallel engine against the single-threaded loop
// at equal wall-clock budget: the portfolio runner (4 diversified workers
// exchanging the best solution) and the partition-parallel runner (disjoint
// time windows optimized concurrently) versus stock GUOQ on ibmq20,
// two-qubit reduction. In each returned Summary, GUOQMean is the parallel
// runner's suite-mean reduction and ToolMean the single-worker one — the
// scaling headline is GUOQMean ≥ ToolMean on multi-core hardware.
func Parallel(cfg Config) ([]Summary, error) {
	cfg.normalize()
	gs := gateset.IBMQ20
	suite, err := benchmarks.SuiteFor(gs)
	if err != nil {
		return nil, err
	}
	suite = cfg.selectSuite(suite)
	single := baselines.NewGUOQ(cfg.Epsilon)
	m := TwoQubitReduction()
	var out []Summary
	for _, par := range []baselines.Optimizer{
		baselines.NewPortfolio(cfg.Epsilon, 4),
		baselines.NewPartitionParallel(cfg.Epsilon, 4),
	} {
		rs := Comparison(par, single, suite, gs, opt.TwoQubitCost(), m, cfg)
		PrintComparison(cfg.Out,
			fmt.Sprintf("%s (4 workers) vs single-worker guoq on %s", par.Name(), gs.Name), m, rs)
		out = append(out, summarize(par.Name()+"-vs-1w", m, rs))
	}
	return out, nil
}
