package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
)

// tinyConfig keeps experiment tests fast: a handful of circuits, tiny
// budgets. Shape assertions stay loose at this scale — the full-budget runs
// live in bench_test.go and EXPERIMENTS.md.
func tinyConfig() Config {
	return Config{
		Budget:     40 * time.Millisecond,
		Trials:     1,
		SuiteLimit: 6,
		Epsilon:    1e-8,
		Seed:       1,
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if math.Abs(s.Mean-2) > 1e-12 || s.N != 3 {
		t.Fatalf("Summarize mean = %v", s)
	}
	if s.CI95 <= 0 {
		t.Fatal("CI should be positive for spread data")
	}
	if s := Summarize([]float64{5}); s.CI95 != 0 || s.Mean != 5 {
		t.Fatal("single-sample stats wrong")
	}
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty stats wrong")
	}
}

func TestCompareVerdicts(t *testing.T) {
	if Compare(0.5, 0.3) != Better || Compare(0.3, 0.5) != Worse || Compare(0.4, 0.4) != Match {
		t.Fatal("Compare verdicts wrong")
	}
}

func TestMetrics(t *testing.T) {
	orig := circuit.New(2)
	orig.Append(gate.NewCX(0, 1), gate.NewCX(0, 1), gate.NewT(0), gate.NewT(0))
	opt1 := circuit.New(2)
	opt1.Append(gate.NewCX(0, 1), gate.NewT(0))
	if v := TwoQubitReduction().Eval(orig, opt1); math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("2q reduction = %g", v)
	}
	if v := TReduction().Eval(orig, opt1); math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("T reduction = %g", v)
	}
	// Zero-count originals yield 0, not NaN.
	empty := circuit.New(1)
	if v := TwoQubitReduction().Eval(empty, empty); v != 0 {
		t.Fatal("empty reduction should be 0")
	}
}

func TestFig10SmallRun(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig()
	cfg.Out = &buf
	sums, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("Fig10 returned %d summaries", len(sums))
	}
	for _, s := range sums {
		if s.Better+s.Match+s.Worse != 6 {
			t.Fatalf("tally doesn't cover the suite: %+v", s)
		}
	}
	if !strings.Contains(buf.String(), "GUOQ better on") {
		t.Fatal("report missing summary line")
	}
}

func TestFig15FullSuite(t *testing.T) {
	hs, err := Fig15(Config{Out: nil})
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 5 {
		t.Fatalf("Fig15 covered %d gate sets", len(hs))
	}
	for _, h := range hs {
		total := 0
		for _, n := range h.Buckets {
			total += n
		}
		if total != 247 {
			t.Fatalf("%s histogram covers %d benchmarks", h.GateSet, total)
		}
	}
}

func TestFig7ProducesSeries(t *testing.T) {
	cfg := tinyConfig()
	cfg.Budget = 30 * time.Millisecond
	series, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 { // 2 benchmarks × 3 approaches
		t.Fatalf("Fig7 returned %d series", len(series))
	}
	for _, s := range series {
		// Counts must be non-increasing (best-so-far).
		for i := 1; i < len(s.Counts); i++ {
			if s.Counts[i] > s.Counts[i-1] {
				t.Fatalf("%s/%s: best-so-far series increased", s.Bench, s.Approach)
			}
		}
	}
}

func TestTables(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(Config{Out: &buf}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ibmq20", "ibm-eagle", "ionq", "nam", "cliffordt"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Table2 missing %s", want)
		}
	}
	buf.Reset()
	if err := Table3(Config{Out: &buf}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "quarl") {
		t.Fatal("Table3 missing quarl")
	}
}

func TestSubsampleEven(t *testing.T) {
	cfg := tinyConfig()
	_ = cfg
	var suite []int
	for i := 0; i < 247; i++ {
		suite = append(suite, i)
	}
	// Subsample via the generic helper on the real type is covered by
	// Fig10; here check bounds logic inline for documentation purposes.
	if got := 247 * 5 / 6; got >= 247 {
		t.Fatal("subsample index out of range")
	}
}
