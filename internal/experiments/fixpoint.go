package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"github.com/guoq-dev/guoq/internal/baselines"
	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/opt"
)

// FixpointRow is one tool's outcome on the huge-circuit benchmark.
type FixpointRow struct {
	Tool      string  `json:"tool"`
	Gates     int     `json:"gates"`
	TwoQubit  int     `json:"two_qubit"`
	Error     float64 `json:"error"`
	Iters     int     `json:"iters"`
	ElapsedMS int64   `json:"elapsed_ms"`
}

// FixpointReport is the JSON snapshot written by the fixpoint experiment.
type FixpointReport struct {
	GateSet       string        `json:"gateset"`
	Qubits        int           `json:"qubits"`
	InputGates    int           `json:"input_gates"`
	InputTwoQubit int           `json:"input_two_qubit"`
	BudgetMS      int64         `json:"budget_ms"`
	Workers       int           `json:"workers"`
	Seed          int64         `json:"seed"`
	Rows          []FixpointRow `json:"rows"`
}

// Fixpoint benchmarks the parallel local-fixpoint optimizer against the
// global annealer on a circuit far past the practical size for a single
// global search. The suite's real benchmarks top out around a thousand
// gates, so the huge input is generated: a seeded random ibmq20-native
// circuit (redundancy-rich, like the QFT/adder family at scale). All tools
// get the same wall-clock budget; the headline is the fixpoint runner
// matching or beating the global annealer's cost at equal time, because
// bounded window searches keep making progress where one annealer's moves
// drown in a 10k-gate state.
func Fixpoint(cfg Config, workers, qubits, gates int, jsonOut io.Writer) (*FixpointReport, error) {
	cfg.normalize()
	if workers <= 0 {
		workers = 4
	}
	if qubits <= 0 {
		qubits = 20
	}
	if gates <= 0 {
		gates = 10000
	}
	gs := gateset.IBMQ20
	in := circuit.Random(qubits, gates, gs.Gates, rand.New(rand.NewSource(cfg.Seed)))
	rep := &FixpointReport{
		GateSet:       gs.Name,
		Qubits:        qubits,
		InputGates:    in.Len(),
		InputTwoQubit: in.TwoQubitCount(),
		BudgetMS:      cfg.Budget.Milliseconds(),
		Workers:       workers,
		Seed:          cfg.Seed,
	}
	fmt.Fprintf(cfg.Out, "fixpoint benchmark: %s, %d qubits, %d gates (%d two-qubit), budget %s\n",
		gs.Name, qubits, rep.InputGates, rep.InputTwoQubit, cfg.Budget)
	for _, tool := range []*baselines.GUOQ{
		baselines.NewGUOQ(cfg.Epsilon),
		baselines.NewPortfolio(cfg.Epsilon, workers),
		baselines.NewFixpoint(cfg.Epsilon, workers),
	} {
		start := time.Now()
		out, res := tool.OptimizeStats(in, gs, opt.TwoQubitCost(), cfg.Budget, cfg.Seed)
		row := FixpointRow{
			Tool:      tool.Name(),
			Gates:     out.Len(),
			TwoQubit:  out.TwoQubitCount(),
			Error:     res.BestError,
			Iters:     res.Iters,
			ElapsedMS: time.Since(start).Milliseconds(),
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Fprintf(cfg.Out, "  %-12s gates %6d  two-qubit %6d  eps %.2e  iters %8d  %6dms\n",
			row.Tool, row.Gates, row.TwoQubit, row.Error, row.Iters, row.ElapsedMS)
	}
	if jsonOut != nil {
		enc := json.NewEncoder(jsonOut)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return nil, err
		}
	}
	return rep, nil
}
