package experiments

import (
	"fmt"
	"time"

	"github.com/guoq-dev/guoq/internal/baselines"
	"github.com/guoq-dev/guoq/internal/benchmarks"
	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/opt"
)

// Summary is the better/match/worse tally for one (tool, metric) pair.
type Summary struct {
	Tool   string
	Metric string
	Better int
	Match  int
	Worse  int
	// GUOQMean and ToolMean are suite-average metric values (the "28% vs
	// 18% average reduction" numbers of Q1).
	GUOQMean float64
	ToolMean float64
}

func summarize(tool string, m Metric, rs []BenchResult) Summary {
	b, ma, wo := Tally(rs)
	s := Summary{Tool: tool, Metric: m.Name, Better: b, Match: ma, Worse: wo}
	for _, r := range rs {
		s.GUOQMean += r.GUOQ.Mean
		s.ToolMean += r.Tool.Mean
	}
	if len(rs) > 0 {
		s.GUOQMean /= float64(len(rs))
		s.ToolMean /= float64(len(rs))
	}
	return s
}

// compareMany runs GUOQ against each named tool on a gate set and prints
// one comparison block per (tool, metric).
func compareMany(cfg Config, gs *gateset.GateSet, toolNames []string,
	cost opt.Cost, metrics []Metric) ([]Summary, error) {
	cfg.normalize()
	suite, err := benchmarks.SuiteFor(gs)
	if err != nil {
		return nil, err
	}
	suite = cfg.selectSuite(suite)
	guoq := baselines.NewGUOQ(cfg.Epsilon)
	var out []Summary
	for _, tn := range toolNames {
		tool, err := baselines.ByName(tn, cfg.Epsilon)
		if err != nil {
			return nil, err
		}
		for _, m := range metrics {
			rs := Comparison(guoq, tool, suite, gs, cost, m, cfg)
			PrintComparison(cfg.Out, fmt.Sprintf("GUOQ vs %s on %s", tool.Name(), gs.Name), m, rs)
			out = append(out, summarize(tool.Name(), m, rs))
		}
	}
	return out, nil
}

// Fig1 regenerates the headline summary: % benchmarks GUOQ
// better/match/worse against the seven tools on ibmq20, two-qubit gate
// reduction, ε = 10⁻⁸.
func Fig1(cfg Config) ([]Summary, error) {
	tools := []string{"qiskit", "tket", "voqc", "bqskit", "queso", "quartz", "quarl"}
	return compareMany(cfg, gateset.IBMQ20, tools,
		opt.TwoQubitCost(), []Metric{TwoQubitReduction()})
}

// Fig7Series is one best-so-far time series.
type Fig7Series struct {
	Bench    string
	Approach string
	// Times and Counts trace the best two-qubit count over the search.
	Times  []time.Duration
	Counts []int
}

// Fig7 regenerates the barenco_tof_10 / qft_20 time-series comparison of
// rewrite-only vs resynth-only vs combined search on ibmq20.
func Fig7(cfg Config) ([]Fig7Series, error) {
	cfg.normalize()
	suite, err := benchmarks.SuiteFor(gateset.IBMQ20)
	if err != nil {
		return nil, err
	}
	var out []Fig7Series
	for _, benchName := range []string{"barenco_tof_10", "qft_20"} {
		b, ok := benchmarks.ByName(suite, benchName)
		if !ok {
			return nil, fmt.Errorf("experiments: benchmark %s missing", benchName)
		}
		for _, approach := range []struct {
			name string
			mode baselines.GUOQMode
		}{
			{"combined", baselines.ModeFull},
			{"rewrite only", baselines.ModeRewrite},
			{"resynth only", baselines.ModeResynth},
		} {
			ts, err := opt.Instantiate(gateset.IBMQ20, opt.InstantiateOptions{
				EpsilonF:  cfg.Epsilon,
				SynthTime: cfg.Budget / 4,
			})
			if err != nil {
				return nil, err
			}
			var set []opt.Transformation
			switch approach.mode {
			case baselines.ModeRewrite:
				set = opt.FilterFast(ts)
			case baselines.ModeResynth:
				set = opt.FilterSlow(ts)
			default:
				set = ts
			}
			series := Fig7Series{Bench: benchName, Approach: approach.name}
			opts := opt.DefaultOptions()
			opts.Epsilon = cfg.Epsilon
			opts.Cost = opt.TwoQubitCost()
			opts.TimeBudget = cfg.Budget * 4 // the long-horizon experiment
			opts.Seed = cfg.Seed
			opts.OnImprove = func(elapsed time.Duration, best *circuit.Circuit) {
				series.Times = append(series.Times, elapsed)
				series.Counts = append(series.Counts, best.TwoQubitCount())
			}
			opt.GUOQ(b.Circuit, set, opts)
			out = append(out, series)
			fmt.Fprintf(cfg.Out, "== Fig7 %s / %s ==\n", benchName, approach.name)
			fmt.Fprintf(cfg.Out, "start: %d 2q gates\n", b.Circuit.TwoQubitCount())
			for i := range series.Times {
				fmt.Fprintf(cfg.Out, "  %8.2fms  %d\n",
					float64(series.Times[i].Microseconds())/1000, series.Counts[i])
			}
		}
	}
	return out, nil
}

// Fig8 regenerates the ibm-eagle comparison: 2q reduction and fidelity
// against Qiskit, TKET, BQSKit, Quartz, Quarl.
func Fig8(cfg Config) ([]Summary, error) {
	tools := []string{"qiskit", "tket", "bqskit", "quartz", "quarl"}
	model := gateset.ModelFor(gateset.IBMEagle)
	return compareMany(cfg, gateset.IBMEagle, tools,
		opt.FidelityCost(model), []Metric{TwoQubitReduction(), Fidelity(model)})
}

// Fig9 regenerates the ionq comparison against Qiskit, BQSKit, QUESO.
func Fig9(cfg Config) ([]Summary, error) {
	tools := []string{"qiskit", "bqskit", "queso"}
	model := gateset.ModelFor(gateset.IonQ)
	return compareMany(cfg, gateset.IonQ, tools,
		opt.FidelityCost(model), []Metric{TwoQubitReduction(), Fidelity(model)})
}

// Fig10 regenerates the Q2 ablation on ibmq20: GUOQ vs rewrite-only vs
// resynth-only.
func Fig10(cfg Config) ([]Summary, error) {
	tools := []string{"guoq-rewrite", "guoq-resynth"}
	return compareMany(cfg, gateset.IBMQ20, tools,
		opt.TwoQubitCost(), []Metric{TwoQubitReduction()})
}

// Fig11 regenerates the Q3 search-strategy comparison on ibmq20: GUOQ vs
// the two sequential orderings and the beam instantiation.
func Fig11(cfg Config) ([]Summary, error) {
	tools := []string{"guoq-seq-rewrite-resynth", "guoq-seq-resynth-rewrite", "guoq-beam"}
	return compareMany(cfg, gateset.IBMQ20, tools,
		opt.TwoQubitCost(), []Metric{TwoQubitReduction()})
}

// Fig12 regenerates the Clifford+T comparison: T reduction and 2q reduction
// against Qiskit, BQSKit(Synthetiq), Synthetiq, QUESO, PyZX.
func Fig12(cfg Config) ([]Summary, error) {
	tools := []string{"qiskit", "bqskit", "synthetiq", "queso", "pyzx"}
	return compareMany(cfg, gateset.CliffordT, tools,
		opt.TCost(), []Metric{TReduction(), TwoQubitReduction()})
}

// Fig13 regenerates the Q2 ablation for Clifford+T (T reduction).
func Fig13(cfg Config) ([]Summary, error) {
	tools := []string{"guoq-rewrite", "guoq-resynth"}
	return compareMany(cfg, gateset.CliffordT, tools,
		opt.TCost(), []Metric{TReduction()})
}

// Fig14 regenerates the PyZX-pipeline experiment: run GUOQ on PyZX's
// output; report T and CX reduction of GUOQ∘PyZX relative to PyZX alone.
func Fig14(cfg Config) ([]Summary, error) {
	cfg.normalize()
	gs := gateset.CliffordT
	suite, err := benchmarks.SuiteFor(gs)
	if err != nil {
		return nil, err
	}
	suite = cfg.selectSuite(suite)
	pyzx, _ := baselines.ByName("pyzx", cfg.Epsilon)
	guoq := baselines.NewGUOQ(cfg.Epsilon)
	// Strict FTQC cost: never trade a T gate for CX gates.
	strict := func(c *circuit.Circuit) float64 {
		return 1e6*float64(c.TCount()) + float64(c.TwoQubitCount()) + 1e-3*float64(c.Len())
	}

	var tRed, cxRed []BenchResult
	for _, b := range suite {
		base := pyzx.Optimize(b.Circuit, gs, opt.TCost(), cfg.Budget, cfg.Seed)
		var tVals, cxVals []float64
		for trial := 0; trial < cfg.Trials; trial++ {
			out := guoq.Optimize(base, gs, strict, cfg.Budget, cfg.Seed+int64(trial)*7919)
			tVals = append(tVals, TReduction().Eval(base, out))
			cxVals = append(cxVals, TwoQubitReduction().Eval(base, out))
		}
		zero := Summarize([]float64{0})
		tRed = append(tRed, BenchResult{Bench: b.Name, GUOQ: Summarize(tVals), Tool: zero})
		cxRed = append(cxRed, BenchResult{Bench: b.Name, GUOQ: Summarize(cxVals), Tool: zero})
	}
	PrintComparison(cfg.Out, "GUOQ on PyZX output (vs PyZX alone)", TReduction(), tRed)
	PrintComparison(cfg.Out, "GUOQ on PyZX output (vs PyZX alone)", TwoQubitReduction(), cxRed)
	return []Summary{
		summarize("pyzx+guoq", TReduction(), tRed),
		summarize("pyzx+guoq", TwoQubitReduction(), cxRed),
	}, nil
}

// Fig15Histogram is one gate set's total-gate-count histogram.
type Fig15Histogram struct {
	GateSet string
	// Buckets counts benchmarks with total gates in [10^k, 10^(k+1)).
	Buckets map[int]int
}

// Fig15 regenerates the benchmark-suite summary: log-scale histograms of
// original total gate counts per gate set.
func Fig15(cfg Config) ([]Fig15Histogram, error) {
	cfg.normalize()
	var out []Fig15Histogram
	for _, gs := range gateset.All() {
		suite, err := benchmarks.SuiteFor(gs)
		if err != nil {
			return nil, err
		}
		h := Fig15Histogram{GateSet: gs.Name, Buckets: map[int]int{}}
		for _, b := range suite {
			n := b.Circuit.Len()
			k := 0
			for p := 1; p*10 <= n; p *= 10 {
				k++
			}
			h.Buckets[k]++
		}
		out = append(out, h)
		fmt.Fprintf(cfg.Out, "== Fig15 %s (total %d benchmarks) ==\n", gs.Name, len(suite))
		for k := 0; k <= 6; k++ {
			if h.Buckets[k] > 0 {
				fmt.Fprintf(cfg.Out, "  [10^%d, 10^%d): %d\n", k, k+1, h.Buckets[k])
			}
		}
	}
	return out, nil
}

// Table2 prints the gate-set inventory.
func Table2(cfg Config) error {
	cfg.normalize()
	fmt.Fprintf(cfg.Out, "== Table 2: gate sets ==\n")
	for _, gs := range gateset.All() {
		fmt.Fprintf(cfg.Out, "%-10s %-14s %v\n", gs.Name, gs.Architecture, gs.Gates)
	}
	return nil
}

// Table3 prints the comparator inventory.
func Table3(cfg Config) error {
	cfg.normalize()
	fmt.Fprintf(cfg.Out, "== Table 3: optimizers ==\n")
	rows := [][2]string{
		{"qiskit", "fixed sequence of passes"},
		{"tket", "fixed sequence of passes"},
		{"voqc", "fixed sequence of passes"},
		{"bqskit", "partition + resynthesize"},
		{"queso", "beam search + rewrite rules"},
		{"quartz", "beam search + rewrite rules"},
		{"quarl", "guided (lookahead) rule search"},
		{"pyzx", "phase-polynomial T reduction"},
		{"guoq", "randomized rules + resynthesis (this paper)"},
	}
	for _, r := range rows {
		fmt.Fprintf(cfg.Out, "%-10s %s\n", r[0], r[1])
	}
	return nil
}
