package circuit

import (
	"math"
	"math/rand"

	"github.com/guoq-dev/guoq/internal/gate"
)

// Random generates a random circuit of the given size drawing gates from
// vocab. Parameterized gates get uniform angles in (−π, π]; qubits are drawn
// uniformly without replacement. Used by tests, property checks, and the
// fuzz-style equivalence suites.
func Random(n, gates int, vocab []gate.Name, rng *rand.Rand) *Circuit {
	c := New(n)
	for len(c.Gates) < gates {
		name := vocab[rng.Intn(len(vocab))]
		spec, ok := gate.SpecOf(name)
		if !ok || spec.Qubits > n {
			continue
		}
		qs := randQubits(n, spec.Qubits, rng)
		ps := make([]float64, spec.Params)
		for i := range ps {
			ps[i] = rng.Float64()*2*math.Pi - math.Pi
		}
		c.Append(gate.New(name, qs, ps))
	}
	return c
}

// randQubits draws k distinct qubits from [0, n).
func randQubits(n, k int, rng *rand.Rand) []int {
	if k == 1 {
		return []int{rng.Intn(n)}
	}
	perm := rng.Perm(n)
	out := make([]int, k)
	copy(out, perm[:k])
	return out
}

// DefaultTestVocab is a mixed vocabulary exercising 1-, 2-, and 3-qubit
// gates with and without parameters.
var DefaultTestVocab = []gate.Name{
	gate.H, gate.X, gate.T, gate.Tdg, gate.S, gate.Rz, gate.Rx,
	gate.CX, gate.CZ, gate.Rzz,
}
