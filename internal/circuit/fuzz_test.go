package circuit

import (
	"strings"
	"testing"
)

// FuzzQASMRoundTrip asserts the parser/writer pair is safe and stable on
// arbitrary input: ParseQASM never panics, and any program it accepts
// emits QASM that reparses to the same circuit (the second emit is
// byte-identical — emission is a fixpoint of parse∘emit).
func FuzzQASMRoundTrip(f *testing.F) {
	seeds := []string{
		"",
		"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n",
		"qreg q[3];\nrz(pi/4) q[0];\nt q[1];\ntdg q[2];\ncx q[2],q[0];\n",
		"qreg a[2];\nqreg b[1];\ncreg c[2];\nu3(pi/2,0,pi) a[0];\ncx a[1],b[0];\nmeasure a[0] -> c[0];\n",
		"qreg q[2];\n// comment\nx q[0]; barrier q[0]; cnot q[0],q[1];\n",
		"qreg q[1];\nrz(-3*pi/2+0.5) q[0];\nu1(1e-9) q[0];\n",
		"qreg q[2];\nrxx(pi/2) q[0],q[1];\n",
		"qreg q[1];\nrz(1e308*10) q[0];\n",       // overflow to +Inf must be rejected
		"qreg q[2];\nh q[5];\n",                  // out-of-range index must error, not panic
		"qreg q[2];\nh q[-1];\n",                 // negative index must error
		"qreg q[2];\ncx q[0],q[0];\n",            // repeated qubit arg must error
		"qreg q[1];\nrz((pi)/(0)) q[0];\n",       // division by zero must error
		"qreg q[1];\nqreg q[1];\nh q[0];\n",      // duplicate register must error
		"h q[0];\nqreg q[1];\n",                  // qreg after gates must error
		"qreg q[1];\nbogus q[0];\n",              // unknown gate must error
		"qreg q[2];\ns q[0];sdg q[1];sx q[0];\n", // ; separated on one line
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseQASM(src)
		if err != nil {
			return
		}
		// Everything the parser accepts must be a well-formed circuit:
		// in-range distinct qubits, finite params. BuildDAG exercises the
		// wire structures that out-of-range gates would corrupt.
		for _, g := range c.Gates {
			for _, q := range g.Qubits {
				if q < 0 || q >= c.NumQubits {
					t.Fatalf("accepted out-of-range qubit %d (n=%d) in %q", q, c.NumQubits, src)
				}
			}
		}
		BuildDAG(c)
		q1 := c.WriteQASM()
		c2, err := ParseQASM(q1)
		if err != nil {
			t.Fatalf("emitted QASM does not reparse: %v\ninput: %q\nemitted:\n%s", err, src, q1)
		}
		if q2 := c2.WriteQASM(); q2 != q1 {
			t.Fatalf("emit is not a parse fixpoint\nfirst:\n%s\nsecond:\n%s", q1, q2)
		}
		if c2.NumQubits != c.NumQubits || len(c2.Gates) != len(c.Gates) {
			t.Fatalf("reparse changed shape: %d/%d qubits, %d/%d gates",
				c.NumQubits, c2.NumQubits, len(c.Gates), len(c2.Gates))
		}
	})
}

// FuzzParseQASMNoPanic hammers the statement splitter and expression
// parser with raw fragments wrapped in a valid prologue, probing paths a
// whole-program fuzzer reaches rarely.
func FuzzParseQASMNoPanic(f *testing.F) {
	frags := []string{
		"rz(((pi))) q[0]",
		"u3(1,2,3) q[0]",
		"rz(1e) q[0]",
		"rz(--+-pi) q[0]",
		"rz(pi pi) q[0]",
		"cx q [ 0 ] , q [ 1 ]",
		"rz() q[0]",
		"h q[0x1]",
		"h q[0",
	}
	for _, s := range frags {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, frag string) {
		if strings.ContainsAny(frag, ";") {
			frag = strings.ReplaceAll(frag, ";", "\n")
		}
		_, _ = ParseQASM("qreg q[4];\n" + frag + ";\n")
	})
}
