package circuit

import (
	"fmt"

	"github.com/guoq-dev/guoq/internal/gate"
)

// DAG view of a circuit (§3): nodes are gate indices, and for each qubit the
// gates touching it form a totally ordered wire. An edge runs from each gate
// to the next gate on each of its wires.
//
// The DAG supports two maintenance modes. BuildDAG constructs a fresh view
// in one O(gates · arity) pass — the throwaway mode used by the pure
// FindMatches/FullPass API, which allocates link rows per gate. A
// long-lived DAG (the rewrite.Engine's) is instead kept current across
// mutations with Splice/MultiSplice, which replace gate windows in place:
// the gate list is spliced, and the wire lists and link rows are recomputed
// into the existing storage (freed rows are pooled), so steady-state
// maintenance allocates nothing no matter how many windows a pass rewrites.
type DAG struct {
	c *Circuit
	// wires[q] lists the gate indices acting on qubit q, in circuit order.
	wires [][]int
	// next[i] / prev[i] give, per gate qubit position, the following and
	// preceding gate index on that wire, or -1.
	next [][]int
	prev [][]int

	// pool recycles freed link rows by capacity class (arity 1..3). Rows
	// with larger capacity are rare and simply dropped.
	pool [4][][]int
	// last is the per-qubit rebuild scratch; gateScratch assembles spliced
	// gate lists, ping-ponging with the circuit's own slice.
	last        []int
	gateScratch []gate.Gate
}

// SpliceWindow is one window replacement of a MultiSplice: gates [Lo, Hi]
// are replaced by Repl. Hi == Lo-1 denotes a pure insertion before Lo.
type SpliceWindow struct {
	Lo, Hi int
	Repl   []gate.Gate
}

// BuildDAG constructs the DAG view for c.
func BuildDAG(c *Circuit) *DAG {
	d := &DAG{c: c}
	d.Rebuild()
	return d
}

// Rebuild reconstructs the full DAG from the underlying circuit in place,
// reusing wire storage and pooled link rows from the previous state: the
// single O(gates · arity) pass of BuildDAG, minus its allocations.
func (d *DAG) Rebuild() {
	c := d.c
	n := len(c.Gates)
	if cap(d.wires) < c.NumQubits {
		d.wires = make([][]int, c.NumQubits)
	}
	d.wires = d.wires[:c.NumQubits]
	for q := range d.wires {
		d.wires[q] = d.wires[q][:0]
	}
	// Free surplus link rows before shrinking, and nil the entries so a
	// later grow cannot resurrect a pooled row.
	for i := n; i < len(d.next); i++ {
		d.freeRow(d.next[i])
		d.freeRow(d.prev[i])
		d.next[i], d.prev[i] = nil, nil
	}
	d.next = growRows(d.next, n)
	d.prev = growRows(d.prev, n)
	if cap(d.last) < c.NumQubits {
		d.last = make([]int, c.NumQubits)
	}
	last := d.last[:c.NumQubits]
	for q := range last {
		last[q] = -1
	}
	for i, g := range c.Gates {
		k := len(g.Qubits)
		nr := d.row(d.next[i], k)
		pr := d.row(d.prev[i], k)
		d.next[i], d.prev[i] = nr, pr
		for k, q := range g.Qubits {
			d.wires[q] = append(d.wires[q], i)
			pr[k] = last[q]
			nr[k] = -1
			if p := last[q]; p >= 0 {
				pg := c.Gates[p]
				for pk, pq := range pg.Qubits {
					if pq == q {
						d.next[p][pk] = i
					}
				}
			}
			last[q] = i
		}
	}
}

// growRows resizes a row table to n entries, preserving existing rows.
func growRows(rows [][]int, n int) [][]int {
	if cap(rows) < n {
		nr := make([][]int, n, n+n/2+8)
		copy(nr, rows)
		return nr
	}
	return rows[:n]
}

// row returns a link row of length k, reusing old's storage or a pooled row.
func (d *DAG) row(old []int, k int) []int {
	if cap(old) >= k {
		return old[:k]
	}
	d.freeRow(old)
	return d.newRow(k)
}

func (d *DAG) newRow(k int) []int {
	if k < len(d.pool) {
		if p := d.pool[k]; len(p) > 0 {
			r := p[len(p)-1]
			d.pool[k] = p[:len(p)-1]
			return r[:k]
		}
	}
	return make([]int, k)
}

func (d *DAG) freeRow(r []int) {
	if c := cap(r); c > 0 && c < len(d.pool) {
		d.pool[c] = append(d.pool[c], r[:c])
	}
}

// MultiSplice replaces every window of ws — ascending, non-overlapping —
// with its replacement, in one pass: the new gate list is assembled into a
// reused scratch buffer (swapped with the circuit's slice) and the link
// structure rebuilt in place. This is how an engine applies a full pass's
// disjoint matches: one O(gates) sweep regardless of how many windows the
// pass rewrote, with no allocation in steady state.
func (d *DAG) MultiSplice(ws []SpliceWindow) {
	c := d.c
	prevHi := -1
	for _, w := range ws {
		if w.Lo <= prevHi || w.Hi >= len(c.Gates) || w.Hi < w.Lo-1 {
			panic(fmt.Sprintf("circuit: MultiSplice window [%d,%d] invalid (%d gates, previous hi %d)",
				w.Lo, w.Hi, len(c.Gates), prevHi))
		}
		prevHi = w.Hi
		if w.Lo > w.Hi {
			prevHi = w.Lo - 1
		}
	}
	out := d.gateScratch[:0]
	i := 0
	for _, w := range ws {
		out = append(out, c.Gates[i:w.Lo]...)
		out = append(out, w.Repl...)
		i = w.Hi + 1
	}
	out = append(out, c.Gates[i:]...)
	// Ping-pong the buffers: the old gate slice becomes the next scratch.
	d.gateScratch = c.Gates[:0]
	c.Gates = out
	d.Rebuild()
}

// Splice replaces the single gate window [lo, hi] with repl; see
// MultiSplice.
func (d *DAG) Splice(lo, hi int, repl []gate.Gate) {
	d.MultiSplice([]SpliceWindow{{Lo: lo, Hi: hi, Repl: repl}})
}

// Circuit returns the underlying circuit.
func (d *DAG) Circuit() *Circuit { return d.c }

// Wire returns the ordered gate indices on qubit q.
func (d *DAG) Wire(q int) []int { return d.wires[q] }

// Links returns the raw per-qubit-position next and prev gate links of gate
// i. The slices alias the DAG's internal state and must not be modified;
// they are positionally aligned with the gate's Qubits.
func (d *DAG) Links(i int) (next, prev []int) { return d.next[i], d.prev[i] }

// NextOnWire returns the gate index following gate i on qubit q, or -1.
// Gate i must act on q.
func (d *DAG) NextOnWire(i, q int) int {
	for k, gq := range d.c.Gates[i].Qubits {
		if gq == q {
			return d.next[i][k]
		}
	}
	return -1
}

// PrevOnWire returns the gate index preceding gate i on qubit q, or -1.
func (d *DAG) PrevOnWire(i, q int) int {
	for k, gq := range d.c.Gates[i].Qubits {
		if gq == q {
			return d.prev[i][k]
		}
	}
	return -1
}

// Successors returns the distinct gate indices immediately following gate i
// on any of its wires.
func (d *DAG) Successors(i int) []int {
	var out []int
	for _, n := range d.next[i] {
		if n >= 0 && !containsInt(out, n) {
			out = append(out, n)
		}
	}
	return out
}

// Predecessors returns the distinct gate indices immediately preceding gate
// i on any of its wires.
func (d *DAG) Predecessors(i int) []int {
	var out []int
	for _, p := range d.prev[i] {
		if p >= 0 && !containsInt(out, p) {
			out = append(out, p)
		}
	}
	return out
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
