package circuit

// DAG view of a circuit (§3): nodes are gate indices, and for each qubit the
// gates touching it form a totally ordered wire. An edge runs from each gate
// to the next gate on each of its wires. The DAG is rebuilt on demand; it is
// a cheap O(gates · arity) pass.
type DAG struct {
	c *Circuit
	// wires[q] lists the gate indices acting on qubit q, in circuit order.
	wires [][]int
	// next[i] / prev[i] give, per gate qubit position, the following and
	// preceding gate index on that wire, or -1.
	next [][]int
	prev [][]int
}

// BuildDAG constructs the DAG view for c.
func BuildDAG(c *Circuit) *DAG {
	d := &DAG{
		c:     c,
		wires: make([][]int, c.NumQubits),
		next:  make([][]int, len(c.Gates)),
		prev:  make([][]int, len(c.Gates)),
	}
	last := make([]int, c.NumQubits)
	for q := range last {
		last[q] = -1
	}
	for i, g := range c.Gates {
		d.next[i] = make([]int, len(g.Qubits))
		d.prev[i] = make([]int, len(g.Qubits))
		for k, q := range g.Qubits {
			d.wires[q] = append(d.wires[q], i)
			d.prev[i][k] = last[q]
			d.next[i][k] = -1
			if last[q] >= 0 {
				pg := c.Gates[last[q]]
				for pk, pq := range pg.Qubits {
					if pq == q {
						d.next[last[q]][pk] = i
					}
				}
			}
			last[q] = i
		}
	}
	return d
}

// Circuit returns the underlying circuit.
func (d *DAG) Circuit() *Circuit { return d.c }

// Wire returns the ordered gate indices on qubit q.
func (d *DAG) Wire(q int) []int { return d.wires[q] }

// NextOnWire returns the gate index following gate i on qubit q, or -1.
// Gate i must act on q.
func (d *DAG) NextOnWire(i, q int) int {
	for k, gq := range d.c.Gates[i].Qubits {
		if gq == q {
			return d.next[i][k]
		}
	}
	return -1
}

// PrevOnWire returns the gate index preceding gate i on qubit q, or -1.
func (d *DAG) PrevOnWire(i, q int) int {
	for k, gq := range d.c.Gates[i].Qubits {
		if gq == q {
			return d.prev[i][k]
		}
	}
	return -1
}

// Successors returns the distinct gate indices immediately following gate i
// on any of its wires.
func (d *DAG) Successors(i int) []int {
	var out []int
	for _, n := range d.next[i] {
		if n >= 0 && !containsInt(out, n) {
			out = append(out, n)
		}
	}
	return out
}

// Predecessors returns the distinct gate indices immediately preceding gate
// i on any of its wires.
func (d *DAG) Predecessors(i int) []int {
	var out []int
	for _, p := range d.prev[i] {
		if p >= 0 && !containsInt(out, p) {
			out = append(out, p)
		}
	}
	return out
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
