package circuit

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/guoq-dev/guoq/internal/gate"
)

// OpenQASM 2.0 subset I/O. The reader accepts the dialect produced by the
// writer plus the common constructs found in benchmark files: multiple
// quantum registers (flattened in declaration order), creg/measure/barrier
// (ignored), comments, and constant angle expressions over pi with
// + − * / and parentheses.

// ParseQASM parses an OpenQASM 2.0 (subset) program into a circuit.
func ParseQASM(src string) (*Circuit, error) {
	regs := map[string]qasmReg{} // register name -> flattened range
	total := 0
	var c *Circuit

	// Statements are ';'-separated; strip comments line by line first.
	var clean strings.Builder
	for _, line := range strings.Split(src, "\n") {
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		clean.WriteString(line)
		clean.WriteByte('\n')
	}
	stmts := strings.Split(clean.String(), ";")
	for sn, raw := range stmts {
		st := strings.TrimSpace(raw)
		if st == "" {
			continue
		}
		low := strings.ToLower(st)
		switch {
		case strings.HasPrefix(low, "openqasm"), strings.HasPrefix(low, "include"),
			strings.HasPrefix(low, "creg"), strings.HasPrefix(low, "barrier"),
			strings.HasPrefix(low, "measure"), strings.HasPrefix(low, "reset"):
			continue
		case strings.HasPrefix(low, "qreg"):
			name, size, err := parseReg(st[4:])
			if err != nil {
				return nil, fmt.Errorf("qasm: statement %d: %v", sn, err)
			}
			if _, dup := regs[name]; dup {
				return nil, fmt.Errorf("qasm: duplicate register %q", name)
			}
			if c != nil {
				return nil, fmt.Errorf("qasm: qreg %q declared after gate statements", name)
			}
			regs[name] = qasmReg{base: total, size: size}
			total += size
		default:
			if c == nil {
				c = New(total)
			}
			g, err := parseGateStmt(st, regs)
			if err != nil {
				return nil, fmt.Errorf("qasm: statement %d (%q): %v", sn, st, err)
			}
			c.Append(g)
		}
	}
	if c == nil {
		c = New(total)
	}
	return c, nil
}

// qasmReg is one declared quantum register's slice of the flattened
// qubit space.
type qasmReg struct{ base, size int }

func parseReg(s string) (string, int, error) {
	s = strings.TrimSpace(s)
	lb := strings.Index(s, "[")
	rb := strings.Index(s, "]")
	if lb < 0 || rb < lb {
		return "", 0, fmt.Errorf("malformed register declaration %q", s)
	}
	name := strings.TrimSpace(s[:lb])
	size, err := strconv.Atoi(strings.TrimSpace(s[lb+1 : rb]))
	if err != nil || size <= 0 {
		return "", 0, fmt.Errorf("bad register size in %q", s)
	}
	return name, size, nil
}

func parseGateStmt(st string, regs map[string]qasmReg) (gate.Gate, error) {
	// Forms: "name arg, arg" or "name(expr, expr) arg, arg".
	var name, paramStr, argStr string
	if i := strings.Index(st, "("); i >= 0 && i < strings.IndexAny(st+"[", "[") {
		j := matchParen(st, i)
		if j < 0 {
			return gate.Gate{}, fmt.Errorf("unbalanced parens")
		}
		name = strings.TrimSpace(st[:i])
		paramStr = st[i+1 : j]
		argStr = strings.TrimSpace(st[j+1:])
	} else {
		fields := strings.Fields(st)
		if len(fields) < 2 {
			return gate.Gate{}, fmt.Errorf("malformed gate statement")
		}
		name = fields[0]
		argStr = strings.TrimSpace(st[len(fields[0]):])
	}
	gname := gate.Name(strings.ToLower(name))
	// Common aliases.
	switch gname {
	case "u", "u_3":
		gname = gate.U3
	case "cnot":
		gname = gate.CX
	case "p", "phase":
		gname = gate.U1
	case "cu1", "cphase":
		gname = gate.CP
	case "toffoli":
		gname = gate.CCX
	}
	spec, ok := gate.SpecOf(gname)
	if !ok {
		return gate.Gate{}, fmt.Errorf("unknown gate %q", name)
	}

	var params []float64
	if paramStr != "" {
		for _, p := range splitTopLevel(paramStr) {
			v, err := evalExpr(p)
			if err != nil {
				return gate.Gate{}, err
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return gate.Gate{}, fmt.Errorf("non-finite angle %q", strings.TrimSpace(p))
			}
			params = append(params, v)
		}
	}
	if len(params) != spec.Params {
		return gate.Gate{}, fmt.Errorf("gate %s wants %d params, got %d", gname, spec.Params, len(params))
	}

	var qubits []int
	for _, a := range splitTopLevel(argStr) {
		a = strings.TrimSpace(a)
		lb := strings.Index(a, "[")
		rb := strings.Index(a, "]")
		if lb < 0 || rb < lb {
			return gate.Gate{}, fmt.Errorf("malformed qubit arg %q (whole-register args unsupported)", a)
		}
		rname := strings.TrimSpace(a[:lb])
		reg, ok := regs[rname]
		if !ok {
			return gate.Gate{}, fmt.Errorf("unknown register %q", rname)
		}
		idx, err := strconv.Atoi(strings.TrimSpace(a[lb+1 : rb]))
		if err != nil {
			return gate.Gate{}, fmt.Errorf("bad qubit index in %q", a)
		}
		if idx < 0 || idx >= reg.size {
			return gate.Gate{}, fmt.Errorf("qubit index %d out of range for %s[%d]", idx, rname, reg.size)
		}
		qubits = append(qubits, reg.base+idx)
	}
	if len(qubits) != spec.Qubits {
		return gate.Gate{}, fmt.Errorf("gate %s wants %d qubits, got %d", gname, spec.Qubits, len(qubits))
	}
	for i, q := range qubits {
		for _, p := range qubits[:i] {
			if p == q {
				return gate.Gate{}, fmt.Errorf("gate %s repeats a qubit argument", gname)
			}
		}
	}
	return gate.New(gname, qubits, params), nil
}

func matchParen(s string, open int) int {
	depth := 0
	for i := open; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

// splitTopLevel splits on commas not nested inside parentheses.
func splitTopLevel(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if strings.TrimSpace(s[start:]) != "" {
		out = append(out, s[start:])
	}
	return out
}

// evalExpr evaluates a constant angle expression: numbers, pi, + − * /,
// unary minus, parentheses.
func evalExpr(s string) (float64, error) {
	p := &exprParser{src: strings.TrimSpace(s)}
	v, err := p.parseSum()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return 0, fmt.Errorf("trailing input in expression %q", s)
	}
	return v, nil
}

type exprParser struct {
	src string
	pos int
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *exprParser) parseSum() (float64, error) {
	v, err := p.parseProduct()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return v, nil
		}
		switch p.src[p.pos] {
		case '+':
			p.pos++
			w, err := p.parseProduct()
			if err != nil {
				return 0, err
			}
			v += w
		case '-':
			p.pos++
			w, err := p.parseProduct()
			if err != nil {
				return 0, err
			}
			v -= w
		default:
			return v, nil
		}
	}
}

func (p *exprParser) parseProduct() (float64, error) {
	v, err := p.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return v, nil
		}
		switch p.src[p.pos] {
		case '*':
			p.pos++
			w, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			v *= w
		case '/':
			p.pos++
			w, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			if w == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			v /= w
		default:
			return v, nil
		}
	}
}

func (p *exprParser) parseUnary() (float64, error) {
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '-' {
		p.pos++
		v, err := p.parseUnary()
		return -v, err
	}
	if p.pos < len(p.src) && p.src[p.pos] == '+' {
		p.pos++
		return p.parseUnary()
	}
	return p.parseAtom()
}

func (p *exprParser) parseAtom() (float64, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0, fmt.Errorf("unexpected end of expression")
	}
	if p.src[p.pos] == '(' {
		p.pos++
		v, err := p.parseSum()
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return 0, fmt.Errorf("missing closing paren")
		}
		p.pos++
		return v, nil
	}
	if strings.HasPrefix(p.src[p.pos:], "pi") {
		p.pos += 2
		return math.Pi, nil
	}
	start := p.pos
	for p.pos < len(p.src) {
		ch := p.src[p.pos]
		if (ch >= '0' && ch <= '9') || ch == '.' || ch == 'e' || ch == 'E' ||
			((ch == '+' || ch == '-') && p.pos > start && (p.src[p.pos-1] == 'e' || p.src[p.pos-1] == 'E')) {
			p.pos++
			continue
		}
		break
	}
	if start == p.pos {
		return 0, fmt.Errorf("unexpected character %q in expression", p.src[p.pos])
	}
	return strconv.ParseFloat(p.src[start:p.pos], 64)
}

// WriteQASM renders the circuit as an OpenQASM 2.0 program with a single
// register q[n].
func (c *Circuit) WriteQASM() string {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\n")
	b.WriteString("include \"qelib1.inc\";\n")
	if c.NumQubits > 0 {
		// qreg sizes must be positive; a 0-qubit circuit is just the prologue.
		fmt.Fprintf(&b, "qreg q[%d];\n", c.NumQubits)
	}
	for _, g := range c.Gates {
		b.WriteString(string(g.Name))
		if len(g.Params) > 0 {
			b.WriteByte('(')
			for i, p := range g.Params {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%.17g", p)
			}
			b.WriteByte(')')
		}
		b.WriteByte(' ')
		for i, q := range g.Qubits {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "q[%d]", q)
		}
		b.WriteString(";\n")
	}
	return b.String()
}
