package circuit_test

// Wire-fidelity tests: the distributed coordinator (internal/dist) moves
// circuits between machines as QASM text, so WriteQASM → ParseQASM must
// reproduce every gate the optimizer can emit bit-for-bit — gate kinds,
// qubit bindings, and angle parameters down to the last float64 bit.

import (
	"math"
	"math/rand"
	"testing"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/rewrite"
)

// gatesEqual compares gate lists by value, with params exact to the bit
// (nil and empty param slices are both "no params").
func gatesEqual(t *testing.T, want, got []gate.Gate) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("gate count %d -> %d after round trip", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Name != g.Name {
			t.Fatalf("gate %d: name %q -> %q", i, w.Name, g.Name)
		}
		if len(w.Qubits) != len(g.Qubits) {
			t.Fatalf("gate %d (%s): qubit count %d -> %d", i, w.Name, len(w.Qubits), len(g.Qubits))
		}
		for j := range w.Qubits {
			if w.Qubits[j] != g.Qubits[j] {
				t.Fatalf("gate %d (%s): qubit %d: %d -> %d", i, w.Name, j, w.Qubits[j], g.Qubits[j])
			}
		}
		if len(w.Params) != len(g.Params) {
			t.Fatalf("gate %d (%s): param count %d -> %d", i, w.Name, len(w.Params), len(g.Params))
		}
		for j := range w.Params {
			if math.Float64bits(w.Params[j]) != math.Float64bits(g.Params[j]) {
				t.Fatalf("gate %d (%s): param %d not bit-identical: %.17g -> %.17g",
					i, w.Name, j, w.Params[j], g.Params[j])
			}
		}
	}
}

func roundTrip(t *testing.T, c *circuit.Circuit) {
	t.Helper()
	q1 := c.WriteQASM()
	back, err := circuit.ParseQASM(q1)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, q1)
	}
	if back.NumQubits != c.NumQubits {
		t.Fatalf("qubit count %d -> %d", c.NumQubits, back.NumQubits)
	}
	gatesEqual(t, c.Gates, back.Gates)
	if q2 := back.WriteQASM(); q2 != q1 {
		t.Fatalf("write not stable after one round trip:\n%s\nvs\n%s", q1, q2)
	}
}

// Every gate kind in the vocabulary round-trips with adversarial angles:
// irrationals, negatives, subnormal-adjacent magnitudes, and values whose
// shortest decimal rendering needs all 17 significant digits.
func TestQASMRoundTripAllGateKinds(t *testing.T) {
	angles := []float64{
		math.Pi / 3, -math.Pi / 7, 2 * math.Pi, 1.0 / 3,
		6.123233995736766e-17, -2.220446049250313e-16,
		0.1 + 0.2, // 0.30000000000000004
		1e300, 5e-324,
	}
	for _, n := range gate.Names() {
		spec, _ := gate.SpecOf(n)
		for ai, base := range angles {
			c := circuit.New(spec.Qubits)
			qs := make([]int, spec.Qubits)
			for i := range qs {
				qs[i] = spec.Qubits - 1 - i // non-trivial qubit order
			}
			ps := make([]float64, spec.Params)
			for i := range ps {
				ps[i] = base * float64(i+1)
			}
			c.Append(gate.New(n, qs, ps))
			if len(ps) == 0 && ai > 0 {
				break // parameterless gates need one pass only
			}
			roundTrip(t, c)
		}
	}
}

// Every gate the rewrite rules can emit (replacement sides) or consume
// (pattern sides), instantiated at irrational bindings, survives the wire.
// This is the load-bearing guarantee for distributed exchange: a rewrite
// step's output published to the coordinator must reach other machines
// unchanged.
func TestQASMRoundTripRewriteEmissions(t *testing.T) {
	for lib, rules := range rewrite.AllLibraries() {
		for _, r := range rules {
			binding := make([]float64, r.NumVars)
			for i := range binding {
				binding[i] = math.Pi/7 + float64(i)*math.E/3
			}
			for _, gates := range [][]gate.Gate{
				r.ReplacementCircuitAt(binding),
				r.PatternCircuitAt(binding),
			} {
				if len(gates) == 0 {
					continue
				}
				c := circuit.New(r.NumQubits)
				c.Append(gates...)
				t.Run(lib+"/"+r.Name, func(t *testing.T) { roundTrip(t, c) })
			}
		}
	}
}

// Random native circuits in every evaluation gate set round-trip whole.
func TestQASMRoundTripRandomNative(t *testing.T) {
	for _, gs := range gateset.All() {
		rng := rand.New(rand.NewSource(42))
		for trial := 0; trial < 3; trial++ {
			c := circuit.Random(5, 80, gs.Gates, rng)
			roundTrip(t, c)
		}
	}
}

// Envelope carries a circuit and its accumulated error bound through the
// wire form without loss.
func TestEnvelopeSealOpen(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := circuit.Random(4, 40, gateset.IBMEagle.Gates, rng)
	env := circuit.Seal(c, 2.5e-9)
	back, errBound, err := env.Open()
	if err != nil {
		t.Fatal(err)
	}
	if errBound != 2.5e-9 {
		t.Fatalf("error bound %g -> %g", 2.5e-9, errBound)
	}
	gatesEqual(t, c.Gates, back.Gates)

	if _, _, err := (circuit.Envelope{QASM: "qreg q[2]; notagate q[0];"}).Open(); err == nil {
		t.Fatal("malformed envelope opened without error")
	}
}
