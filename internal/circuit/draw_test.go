package circuit

import (
	"strings"
	"testing"

	"github.com/guoq-dev/guoq/internal/gate"
)

func TestDrawBell(t *testing.T) {
	c := New(2)
	c.Append(gate.NewH(0), gate.NewCX(0, 1))
	out := c.Draw()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("Draw produced %d lines, want 2:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "H") || !strings.Contains(lines[0], "●") {
		t.Errorf("q0 row missing H or control: %q", lines[0])
	}
	if !strings.Contains(lines[1], "X") {
		t.Errorf("q1 row missing X: %q", lines[1])
	}
}

func TestDrawColumnsParallel(t *testing.T) {
	// Two gates on disjoint qubits must share a column; a following gate on
	// both qubits starts a new one.
	c := New(2)
	c.Append(gate.NewT(0), gate.NewH(1), gate.NewCX(0, 1))
	out := c.Draw()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Column sharing means both rows have equal rendered width.
	if len([]rune(lines[0])) != len([]rune(lines[1])) {
		t.Fatalf("rows have different widths:\n%s", out)
	}
	// T and H appear before the control/X.
	if strings.Index(lines[0], "T") > strings.Index(lines[0], "●") {
		t.Errorf("T should precede the control: %q", lines[0])
	}
}

func TestDrawSpansIntermediateWires(t *testing.T) {
	c := New(3)
	c.Append(gate.NewCX(0, 2))
	out := c.Draw()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[1], "┼") {
		t.Errorf("intermediate wire missing connector: %q", lines[1])
	}
}

func TestDrawParams(t *testing.T) {
	c := New(1)
	c.Append(gate.NewRz(1.5, 0))
	if out := c.Draw(); !strings.Contains(out, "RZ(1.5)") {
		t.Errorf("parameterized label missing: %s", out)
	}
}

func TestDrawEmpty(t *testing.T) {
	c := New(2)
	out := c.Draw()
	if !strings.Contains(out, "q0") || !strings.Contains(out, "q1") {
		t.Fatalf("empty circuit should still render wires:\n%s", out)
	}
}

func TestDrawTruncatesWide(t *testing.T) {
	c := New(1)
	for i := 0; i < 200; i++ {
		c.Append(gate.NewT(0))
	}
	out := c.Draw()
	if !strings.Contains(out, "…") {
		t.Error("wide circuit should truncate with ellipsis")
	}
}
