package circuit

import (
	"fmt"

	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/linalg"
)

// MaxUnitaryQubits bounds whole-circuit unitary evaluation. A 2^14 matrix is
// 2.1 GB of complex128; anything larger indicates a logic error — the
// optimizer itself only ever evaluates unitaries of ≤3-qubit subcircuits.
const MaxUnitaryQubits = 14

// Unitary computes the 2^n × 2^n unitary of the circuit by left-multiplying
// each gate's expanded operator: U = U_gk ··· U_g1 (Example 3.1).
func (c *Circuit) Unitary() linalg.Matrix {
	if c.NumQubits > MaxUnitaryQubits {
		panic(fmt.Sprintf("circuit: Unitary on %d qubits exceeds limit %d", c.NumQubits, MaxUnitaryQubits))
	}
	u := linalg.Identity(1 << c.NumQubits)
	for _, g := range c.Gates {
		linalg.ApplyGateLeft(gate.Matrix(g), g.Qubits, c.NumQubits, u)
	}
	return u
}

// Apply left-multiplies the circuit's unitary onto a state vector in place.
func (c *Circuit) Apply(state []complex128) {
	if len(state) != 1<<c.NumQubits {
		panic("circuit: Apply: state dimension mismatch")
	}
	for _, g := range c.Gates {
		linalg.ApplyGateVec(gate.Matrix(g), g.Qubits, c.NumQubits, state)
	}
}

// Distance returns the Hilbert–Schmidt distance Δ(U_a, U_b) between two
// circuits on the same number of qubits (Def. 3.2). Both circuits must be
// small enough for unitary evaluation.
func Distance(a, b *Circuit) float64 {
	if a.NumQubits != b.NumQubits {
		return 1
	}
	return linalg.HSDistance(a.Unitary(), b.Unitary())
}

// EquivalentUpToPhase reports whether two circuits are ε-equivalent per
// Def. 3.3: Δ(U_a, U_b) ≤ eps.
func EquivalentUpToPhase(a, b *Circuit, eps float64) bool {
	return a.NumQubits == b.NumQubits && Distance(a, b) <= eps
}
