package circuit

import (
	"math"
	"math/rand"
	"testing"

	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/linalg"
)

const tol = 1e-9

func bell() *Circuit {
	c := New(2)
	c.Append(gate.NewH(0), gate.NewCX(0, 1))
	return c
}

func TestCounts(t *testing.T) {
	c := New(3)
	c.Append(gate.NewH(0), gate.NewT(1), gate.NewTdg(2), gate.NewCX(0, 1),
		gate.NewCZ(1, 2), gate.NewRz(0.5, 0))
	if got := c.Len(); got != 6 {
		t.Errorf("Len = %d, want 6", got)
	}
	if got := c.TwoQubitCount(); got != 2 {
		t.Errorf("TwoQubitCount = %d, want 2", got)
	}
	if got := c.TCount(); got != 2 {
		t.Errorf("TCount = %d, want 2", got)
	}
	if got := c.CountOf(gate.H); got != 1 {
		t.Errorf("CountOf(h) = %d, want 1", got)
	}
}

func TestDepth(t *testing.T) {
	c := New(3)
	if c.Depth() != 0 {
		t.Fatal("empty circuit depth should be 0")
	}
	c.Append(gate.NewH(0), gate.NewH(1), gate.NewH(2))
	if c.Depth() != 1 {
		t.Fatalf("parallel H depth = %d, want 1", c.Depth())
	}
	c.Append(gate.NewCX(0, 1), gate.NewCX(1, 2))
	if c.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", c.Depth())
	}
}

func TestBellUnitary(t *testing.T) {
	u := bell().Unitary()
	s := complex(1/math.Sqrt2, 0)
	// Column j is C|j>: |00>→(|00>+|11>)/√2, |01>→(|01>+|10>)/√2,
	// |10>→(|00>−|11>)/√2, |11>→(|01>−|10>)/√2.
	want := linalg.FromRows([][]complex128{
		{s, 0, s, 0},
		{0, s, 0, s},
		{0, s, 0, -s},
		{s, 0, -s, 0},
	})
	if !linalg.Equal(u, want, tol) {
		t.Fatalf("bell unitary wrong:\n%v", u)
	}
}

func TestInverseCancels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		c := Random(3, 15, DefaultTestVocab, rng)
		inv := c.Inverse()
		full := c.Clone()
		full.Append(inv.Gates...)
		if !linalg.EqualUpToPhase(full.Unitary(), linalg.Identity(8), tol) {
			t.Fatalf("trial %d: C·C† != I", trial)
		}
	}
}

func TestApplyMatchesUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := Random(3, 12, DefaultTestVocab, rng)
	u := c.Unitary()
	// Column j of U is C|j>.
	for j := 0; j < 8; j++ {
		state := make([]complex128, 8)
		state[j] = 1
		c.Apply(state)
		for i := 0; i < 8; i++ {
			if d := state[i] - u.At(i, j); real(d)*real(d)+imag(d)*imag(d) > tol {
				t.Fatalf("Apply mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	c := bell()
	cl := c.Clone()
	cl.Gates[0] = gate.NewX(0)
	cl.Append(gate.NewH(1))
	if c.Gates[0].Name != gate.H || c.Len() != 2 {
		t.Fatal("Clone shares storage")
	}
}

func TestEqual(t *testing.T) {
	a, b := bell(), bell()
	if !Equal(a, b) {
		t.Fatal("identical circuits not Equal")
	}
	b.Gates[1] = gate.NewCX(1, 0)
	if Equal(a, b) {
		t.Fatal("different circuits Equal")
	}
	c := New(3)
	c.Append(gate.NewH(0), gate.NewCX(0, 1))
	if Equal(a, c) {
		t.Fatal("different qubit counts Equal")
	}
}

func TestMapQubits(t *testing.T) {
	c := bell()
	m := c.MapQubits([]int{2, 0}, 3)
	if m.NumQubits != 3 || m.Gates[0].Qubits[0] != 2 || m.Gates[1].Qubits[1] != 0 {
		t.Fatalf("MapQubits wrong: %v", m)
	}
}

func TestDAGWires(t *testing.T) {
	c := New(3)
	c.Append(gate.NewH(0), gate.NewCX(0, 1), gate.NewT(1), gate.NewCX(1, 2))
	d := BuildDAG(c)
	if w := d.Wire(1); len(w) != 3 || w[0] != 1 || w[1] != 2 || w[2] != 3 {
		t.Fatalf("wire(1) = %v", w)
	}
	if n := d.NextOnWire(0, 0); n != 1 {
		t.Fatalf("next after h on q0 = %d, want 1", n)
	}
	if p := d.PrevOnWire(3, 1); p != 2 {
		t.Fatalf("prev before cx(1,2) on q1 = %d, want 2", p)
	}
	if s := d.Successors(1); len(s) != 1 || s[0] != 2 {
		t.Fatalf("successors of cx(0,1) = %v", s)
	}
	if p := d.Predecessors(1); len(p) != 1 || p[0] != 0 {
		t.Fatalf("predecessors of cx(0,1) = %v", p)
	}
}

func TestGrowConvexSimple(t *testing.T) {
	// h q0; cx q0,q1; t q1 — growing from t with 2 qubits should absorb all.
	c := New(2)
	c.Append(gate.NewH(0), gate.NewCX(0, 1), gate.NewT(1))
	r := GrowConvex(c, 2, 2, 0, nil)
	if r == nil || len(r.Indices) != 3 {
		t.Fatalf("region = %+v, want all 3 gates", r)
	}
	if len(r.Qubits) != 2 {
		t.Fatalf("region qubits = %v", r.Qubits)
	}
}

func TestGrowConvexQubitLimit(t *testing.T) {
	// Growing from a 1q gate with limit 1 must not cross the cx.
	c := New(2)
	c.Append(gate.NewT(0), gate.NewT(0), gate.NewCX(0, 1), gate.NewT(0))
	r := GrowConvex(c, 0, 1, 0, nil)
	if len(r.Indices) != 2 || r.Indices[0] != 0 || r.Indices[1] != 1 {
		t.Fatalf("region indices = %v, want [0 1]", r.Indices)
	}
}

func TestGrowConvexSkipsDisjoint(t *testing.T) {
	// Gates on unrelated qubits inside the window are skipped, not selected.
	c := New(3)
	c.Append(gate.NewT(0), gate.NewH(2), gate.NewT(0))
	r := GrowConvex(c, 0, 1, 0, nil)
	if len(r.Indices) != 2 {
		t.Fatalf("indices = %v, want the two t gates", r.Indices)
	}
	for _, i := range r.Indices {
		if i == 1 {
			t.Fatal("selected the h on q2")
		}
	}
}

// TestRegionReplaceSemantics is the key invariant: replacing a convex region
// with an equivalent subcircuit preserves the whole-circuit unitary.
func TestRegionReplaceSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		c := Random(4, 20, DefaultTestVocab, rng)
		orig := c.Unitary()
		r := RandomRegion(c, 3, 0, rng)
		if r == nil {
			continue
		}
		sub := r.Extract(c)
		// Identity replacement: re-insert the extracted subcircuit.
		c2 := r.Replace(c, sub)
		if !linalg.EqualUpToPhase(c2.Unitary(), orig, tol) {
			t.Fatalf("trial %d: identity replacement changed semantics\nregion %+v", trial, r)
		}
		if c2.Len() != c.Len() {
			t.Fatalf("trial %d: gate count changed %d -> %d", trial, c.Len(), c2.Len())
		}
	}
}

// TestRegionReplaceWithInversePair replaces a region with sub + sub†·sub,
// a different but equivalent circuit, and checks semantics again.
func TestRegionReplaceWithInversePair(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		c := Random(4, 16, DefaultTestVocab, rng)
		orig := c.Unitary()
		r := RandomRegion(c, 2, 0, rng)
		if r == nil {
			continue
		}
		sub := r.Extract(c)
		padded := sub.Clone()
		padded.Append(sub.Inverse().Gates...)
		padded.Append(sub.Gates...)
		c2 := r.Replace(c, padded)
		if !linalg.EqualUpToPhase(c2.Unitary(), orig, 1e-8) {
			t.Fatalf("trial %d: padded replacement changed semantics", trial)
		}
	}
}

func TestRegionConvexity(t *testing.T) {
	// Every gate in the window that shares a qubit with the region must be
	// selected — the representation invariant that implies convexity.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		c := Random(5, 25, DefaultTestVocab, rng)
		r := RandomRegion(c, 3, 0, rng)
		if r == nil {
			continue
		}
		inQ := map[int]bool{}
		for _, q := range r.Qubits {
			inQ[q] = true
		}
		sel := map[int]bool{}
		for _, i := range r.Indices {
			sel[i] = true
		}
		for i := r.Lo; i <= r.Hi; i++ {
			touches := false
			inside := true
			for _, q := range c.Gates[i].Qubits {
				if inQ[q] {
					touches = true
				} else {
					inside = false
				}
			}
			if touches && !inside {
				t.Fatalf("trial %d: window gate %d straddles region boundary", trial, i)
			}
			if touches != sel[i] {
				t.Fatalf("trial %d: gate %d touches=%v selected=%v", trial, i, touches, sel[i])
			}
		}
	}
}

func TestGrowConvexMaxGates(t *testing.T) {
	c := New(1)
	for i := 0; i < 10; i++ {
		c.Append(gate.NewT(0))
	}
	r := GrowConvex(c, 5, 1, 4, nil)
	if len(r.Indices) > 4 {
		t.Fatalf("selected %d gates, cap was 4", len(r.Indices))
	}
}

func TestQASMRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		c := Random(4, 15, DefaultTestVocab, rng)
		src := c.WriteQASM()
		parsed, err := ParseQASM(src)
		if err != nil {
			t.Fatalf("trial %d: parse error: %v\n%s", trial, err, src)
		}
		if !Equal(c, parsed) {
			t.Fatalf("trial %d: roundtrip mismatch", trial)
		}
	}
}

func TestQASMParseDialect(t *testing.T) {
	src := `
OPENQASM 2.0;
include "qelib1.inc";
// a comment
qreg q[2];
qreg anc[1];
creg c[2];
h q[0];
CX q[0], q[1];
rz(pi/4) anc[0];
u3(pi/2, -pi/4, 0.5e-1) q[1];
cp(2*pi/8) q[0], anc[0];
barrier q[0];
measure q[0] -> c[0];
`
	c, err := ParseQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 3 {
		t.Fatalf("NumQubits = %d, want 3", c.NumQubits)
	}
	if c.Len() != 5 {
		t.Fatalf("Len = %d, want 5 (barrier/measure ignored)", c.Len())
	}
	if c.Gates[2].Qubits[0] != 2 {
		t.Fatalf("anc[0] should flatten to qubit 2, got %d", c.Gates[2].Qubits[0])
	}
	if math.Abs(c.Gates[2].Params[0]-math.Pi/4) > tol {
		t.Fatalf("rz angle = %g, want pi/4", c.Gates[2].Params[0])
	}
	if math.Abs(c.Gates[4].Params[0]-math.Pi/4) > tol {
		t.Fatalf("cp angle = %g, want pi/4", c.Gates[4].Params[0])
	}
}

func TestQASMErrors(t *testing.T) {
	cases := []string{
		"qreg q[2]; bogus q[0];",
		"qreg q[2]; cx q[0];",
		"qreg q[2]; rz q[0];",
		"qreg q[2]; rz(pi q[0];",
		"qreg q[2]; h r[0];",
		"qreg q[0];",
		"qreg q[2]; rz(1/0) q[0];",
		"qreg q[2]; h q[0]; qreg r[2];",
	}
	for _, src := range cases {
		if _, err := ParseQASM(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestExprEval(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"pi", math.Pi},
		{"-pi/2", -math.Pi / 2},
		{"3*pi/4", 3 * math.Pi / 4},
		{"(1+2)*3", 9},
		{"2e-3", 0.002},
		{"1 - 2 - 3", -4},
		{"--1", 1},
		{"pi*pi", math.Pi * math.Pi},
	}
	for _, c := range cases {
		got, err := evalExpr(c.in)
		if err != nil {
			t.Errorf("evalExpr(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > tol {
			t.Errorf("evalExpr(%q) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestDistanceAndEquivalence(t *testing.T) {
	a := bell()
	b := bell()
	if d := Distance(a, b); d > tol {
		t.Fatalf("Distance of identical circuits = %g", d)
	}
	if !EquivalentUpToPhase(a, b, 1e-10) {
		t.Fatal("identical circuits not equivalent")
	}
	c := New(2)
	c.Append(gate.NewH(0))
	if EquivalentUpToPhase(a, c, 0.1) {
		t.Fatal("bell equivalent to h?")
	}
}
