// Package circuit provides the quantum circuit intermediate representation:
// an ordered gate list with an on-demand DAG view, convex subcircuit
// extraction and replacement (§3 and §5.3 of the paper), gate-count metrics,
// unitary evaluation, and OpenQASM 2.0 (subset) input/output.
package circuit

import (
	"fmt"
	"strings"

	"github.com/guoq-dev/guoq/internal/gate"
)

// Circuit is an ordered sequence of gate applications on NumQubits qubits.
// The list order is an execution order: gate i is applied before gate j for
// i < j. Two gates on disjoint qubits may commute, which the DAG view makes
// explicit.
type Circuit struct {
	NumQubits int
	Gates     []gate.Gate
}

// New returns an empty circuit on n qubits.
func New(n int) *Circuit {
	if n < 0 {
		panic("circuit: negative qubit count")
	}
	return &Circuit{NumQubits: n}
}

// Append adds gate applications to the end of the circuit, validating qubit
// bounds.
func (c *Circuit) Append(gs ...gate.Gate) {
	for _, g := range gs {
		for _, q := range g.Qubits {
			if q >= c.NumQubits {
				panic(fmt.Sprintf("circuit: gate %v exceeds %d qubits", g, c.NumQubits))
			}
		}
		c.Gates = append(c.Gates, g)
	}
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{NumQubits: c.NumQubits, Gates: make([]gate.Gate, len(c.Gates))}
	for i, g := range c.Gates {
		out.Gates[i] = g.Clone()
	}
	return out
}

// Len returns the total gate count.
func (c *Circuit) Len() int { return len(c.Gates) }

// TwoQubitCount returns the number of two-qubit gates — the primary NISQ
// cost metric (§6, Metrics).
func (c *Circuit) TwoQubitCount() int {
	n := 0
	for _, g := range c.Gates {
		if g.IsTwoQubit() {
			n++
		}
	}
	return n
}

// TCount returns the number of T and T† gates — the primary FTQC cost
// metric (Q4).
func (c *Circuit) TCount() int {
	n := 0
	for _, g := range c.Gates {
		if g.IsTGate() {
			n++
		}
	}
	return n
}

// CountByName returns a histogram of gate kinds.
func (c *Circuit) CountByName() map[gate.Name]int {
	m := make(map[gate.Name]int)
	for _, g := range c.Gates {
		m[g.Name]++
	}
	return m
}

// CountOf returns the number of gates with the given name.
func (c *Circuit) CountOf(n gate.Name) int {
	k := 0
	for _, g := range c.Gates {
		if g.Name == n {
			k++
		}
	}
	return k
}

// Depth returns the circuit depth: the length of the longest chain of gates
// that share qubits, i.e. the number of parallel layers.
func (c *Circuit) Depth() int {
	front := make([]int, c.NumQubits)
	depth := 0
	for _, g := range c.Gates {
		layer := 0
		for _, q := range g.Qubits {
			if front[q] > layer {
				layer = front[q]
			}
		}
		layer++
		for _, q := range g.Qubits {
			front[q] = layer
		}
		if layer > depth {
			depth = layer
		}
	}
	return depth
}

// UsedQubits returns the sorted qubits touched by at least one gate.
func (c *Circuit) UsedQubits() []int {
	seen := make([]bool, c.NumQubits)
	for _, g := range c.Gates {
		for _, q := range g.Qubits {
			seen[q] = true
		}
	}
	var out []int
	for q, s := range seen {
		if s {
			out = append(out, q)
		}
	}
	return out
}

// Equal reports structural equality: same qubit count and identical gate
// sequences (names, qubits, and parameters bitwise-equal).
func Equal(a, b *Circuit) bool {
	if a.NumQubits != b.NumQubits || len(a.Gates) != len(b.Gates) {
		return false
	}
	for i := range a.Gates {
		if !a.Gates[i].Equal(b.Gates[i]) {
			return false
		}
	}
	return true
}

// MapQubits returns a copy of the circuit with every qubit q replaced by
// mapping[q], on numQubits total qubits.
func (c *Circuit) MapQubits(mapping []int, numQubits int) *Circuit {
	out := New(numQubits)
	for _, g := range c.Gates {
		qs := make([]int, len(g.Qubits))
		for i, q := range g.Qubits {
			qs[i] = mapping[q]
		}
		ng := g.Clone()
		ng.Qubits = qs
		out.Append(ng)
	}
	return out
}

// Inverse returns the adjoint circuit: gates reversed and individually
// inverted.
func (c *Circuit) Inverse() *Circuit {
	out := New(c.NumQubits)
	for i := len(c.Gates) - 1; i >= 0; i-- {
		out.Append(gate.Inverse(c.Gates[i]))
	}
	return out
}

// String renders the circuit one gate per line.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit(%d qubits, %d gates)\n", c.NumQubits, len(c.Gates))
	for _, g := range c.Gates {
		b.WriteString("  ")
		b.WriteString(g.String())
		b.WriteByte('\n')
	}
	return b.String()
}
