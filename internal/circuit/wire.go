package circuit

import "fmt"

// Envelope is the wire form of a circuit together with the approximation
// error it has accumulated against its original — the unit of best-so-far
// exchange in the distributed optimizer (internal/dist). The circuit is
// carried as OpenQASM 2.0 text: WriteQASM renders parameters with %.17g, so
// Seal followed by Open reproduces the gate list bit-for-bit (see
// TestQASMWireRoundTrip), which makes the ε bookkeeping of Thm 4.2 exact
// across process boundaries.
type Envelope struct {
	// QASM is the circuit in the writer's OpenQASM 2.0 dialect.
	QASM string `json:"qasm"`
	// Err is the accumulated ε upper bound of the circuit relative to the
	// search's original input (0 for an exact solution).
	Err float64 `json:"err"`
}

// Seal packs a circuit and its accumulated error bound for the wire.
func Seal(c *Circuit, err float64) Envelope {
	return Envelope{QASM: c.WriteQASM(), Err: err}
}

// Open parses the enveloped circuit back, returning the circuit and its
// accumulated error bound.
func (e Envelope) Open() (*Circuit, float64, error) {
	c, err := ParseQASM(e.QASM)
	if err != nil {
		return nil, 0, fmt.Errorf("circuit: bad envelope: %w", err)
	}
	return c, e.Err, nil
}
