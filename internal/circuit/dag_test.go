package circuit

import (
	"math/rand"
	"testing"

	"github.com/guoq-dev/guoq/internal/gate"
)

// equalDAG asserts that two DAG views over equal circuits agree on every
// wire list and every per-wire link.
func equalDAG(t *testing.T, got, want *DAG) {
	t.Helper()
	if !Equal(got.Circuit(), want.Circuit()) {
		t.Fatalf("underlying circuits differ:\n%s\nvs\n%s", got.Circuit(), want.Circuit())
	}
	c := want.Circuit()
	for q := 0; q < c.NumQubits; q++ {
		gw, ww := got.Wire(q), want.Wire(q)
		if len(gw) != len(ww) {
			t.Fatalf("wire %d length %d, want %d", q, len(gw), len(ww))
		}
		for i := range gw {
			if gw[i] != ww[i] {
				t.Fatalf("wire %d entry %d = %d, want %d", q, i, gw[i], ww[i])
			}
		}
	}
	for i, g := range c.Gates {
		for _, q := range g.Qubits {
			if gn, wn := got.NextOnWire(i, q), want.NextOnWire(i, q); gn != wn {
				t.Fatalf("gate %d next on wire %d = %d, want %d", i, q, gn, wn)
			}
			if gp, wp := got.PrevOnWire(i, q), want.PrevOnWire(i, q); gp != wp {
				t.Fatalf("gate %d prev on wire %d = %d, want %d", i, q, gp, wp)
			}
		}
	}
}

// randomGates draws k random gates over n qubits from the default vocab.
func randomGates(n, k int, rng *rand.Rand) []gate.Gate {
	c := Random(n, k, DefaultTestVocab, rng)
	return c.Gates
}

// TestDAGSpliceMatchesRebuild drives a long chain of random window splices
// (shrinking, growing, pure insertion, pure deletion) through one persistent
// DAG and checks after every step that it is indistinguishable from a
// from-scratch BuildDAG of the same circuit.
func TestDAGSpliceMatchesRebuild(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		c := Random(6, 40, DefaultTestVocab, rng)
		d := BuildDAG(c)
		for step := 0; step < 200; step++ {
			n := len(c.Gates)
			var lo, hi int
			if n == 0 || rng.Intn(8) == 0 {
				// Pure insertion.
				lo = 0
				if n > 0 {
					lo = rng.Intn(n + 1)
				}
				hi = lo - 1
			} else {
				lo = rng.Intn(n)
				hi = lo + rng.Intn(min(n-lo, 6))
			}
			var repl []gate.Gate
			if k := rng.Intn(5); k > 0 && rng.Intn(6) != 0 {
				repl = randomGates(c.NumQubits, k, rng)
			}
			d.Splice(lo, hi, repl)
			ref := BuildDAG(d.Circuit())
			equalDAG(t, d, ref)
		}
	}
}

// TestDAGRebuildReuse exercises Rebuild after swapping the gate list
// wholesale, including a qubit-count change.
func TestDAGRebuildReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := Random(5, 30, DefaultTestVocab, rng)
	d := BuildDAG(c)
	for step := 0; step < 20; step++ {
		nq := 2 + rng.Intn(6)
		nc := Random(nq, rng.Intn(50), DefaultTestVocab, rng)
		c.NumQubits = nc.NumQubits
		c.Gates = nc.Gates
		d.Rebuild()
		equalDAG(t, d, BuildDAG(c))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
