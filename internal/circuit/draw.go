package circuit

import (
	"fmt"
	"strings"

	"github.com/guoq-dev/guoq/internal/gate"
)

// Draw renders the circuit as ASCII art, one row per qubit, gates placed in
// greedy left-to-right columns (gates sharing no qubits share a column):
//
//	q0: ─ H ──●───────
//	q1: ──────X── T ──
//
// Multi-qubit gates draw a control dot (●) on control qubits and a box on
// the target; vertical bars mark the spanned wires. Intended for small
// circuits in docs, examples, and debugging — wide circuits truncate at
// maxDrawColumns.
func (c *Circuit) Draw() string {
	const maxDrawColumns = 60
	type cell struct {
		label string
		span  bool // vertical connector only
	}
	// Column assignment: greedy per-qubit frontier.
	var columns [][]cell
	front := make([]int, c.NumQubits)
	newCol := func() []cell { return make([]cell, c.NumQubits) }

	for _, g := range c.Gates {
		col := 0
		for _, q := range g.Qubits {
			if front[q] > col {
				col = front[q]
			}
		}
		for len(columns) <= col {
			columns = append(columns, newCol())
		}
		lo, hi := g.Qubits[0], g.Qubits[0]
		for _, q := range g.Qubits {
			if q < lo {
				lo = q
			}
			if q > hi {
				hi = q
			}
		}
		labels := gateLabels(g)
		for i, q := range g.Qubits {
			columns[col][q] = cell{label: labels[i]}
		}
		for q := lo + 1; q < hi; q++ {
			if columns[col][q].label == "" {
				columns[col][q] = cell{span: true}
			}
		}
		for q := lo; q <= hi; q++ {
			front[q] = col + 1
		}
		if len(columns) >= maxDrawColumns {
			break
		}
	}

	// Column widths.
	widths := make([]int, len(columns))
	for ci, col := range columns {
		w := 1
		for _, cl := range col {
			if len([]rune(cl.label)) > w {
				w = len([]rune(cl.label))
			}
		}
		widths[ci] = w
	}

	var b strings.Builder
	for q := 0; q < c.NumQubits; q++ {
		fmt.Fprintf(&b, "q%-2d: ", q)
		for ci, col := range columns {
			cl := col[q]
			w := widths[ci]
			switch {
			case cl.label != "":
				pad := w - len([]rune(cl.label))
				left := pad / 2
				b.WriteString("─")
				b.WriteString(strings.Repeat("─", left))
				b.WriteString(cl.label)
				b.WriteString(strings.Repeat("─", pad-left))
				b.WriteString("─")
			case cl.span:
				pad := w - 1
				left := pad / 2
				b.WriteString("─")
				b.WriteString(strings.Repeat("─", left))
				b.WriteString("┼")
				b.WriteString(strings.Repeat("─", pad-left))
				b.WriteString("─")
			default:
				b.WriteString(strings.Repeat("─", w+2))
			}
		}
		if len(c.Gates) > 0 && len(columns) >= 60 {
			b.WriteString("…")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// gateLabels returns the per-qubit display labels of a gate application, in
// the gate's qubit order (controls get ●).
func gateLabels(g gate.Gate) []string {
	base := strings.ToUpper(string(g.Name))
	if len(g.Params) == 1 {
		base = fmt.Sprintf("%s(%.3g)", strings.ToUpper(string(g.Name)), g.Params[0])
	} else if len(g.Params) > 1 {
		base = fmt.Sprintf("%s(…)", strings.ToUpper(string(g.Name)))
	}
	switch g.Name {
	case gate.CX:
		return []string{"●", "X"}
	case gate.CZ:
		return []string{"●", "Z"}
	case gate.CP:
		return []string{"●", fmt.Sprintf("P(%.3g)", g.Params[0])}
	case gate.CCX:
		return []string{"●", "●", "X"}
	case gate.CCZ:
		return []string{"●", "●", "Z"}
	case gate.Swap:
		return []string{"╳", "╳"}
	case gate.Rxx, gate.Rzz:
		half := fmt.Sprintf("%s(%.3g)", strings.ToUpper(string(g.Name)), g.Params[0])
		return []string{half, half}
	}
	out := make([]string, len(g.Qubits))
	for i := range out {
		out[i] = base
	}
	return out
}
