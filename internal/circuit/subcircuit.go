package circuit

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/guoq-dev/guoq/internal/gate"
)

// Region is a convex subcircuit (§3): a set of gate indices such that every
// DAG path between two selected gates stays inside the selection. Regions
// are produced by GrowConvex and consumed by transformations that replace
// the subcircuit with an equivalent one.
//
// Representation invariant: Indices is exactly the set of gates in the
// window [Lo, Hi] whose qubits are all in Qubits, and every other gate in
// the window acts on qubits disjoint from Qubits. This guarantees convexity:
// any path between selected gates runs through window gates that share
// qubits with the selection, and all such gates are themselves selected.
type Region struct {
	Lo, Hi  int   // window bounds in gate-index order, inclusive
	Qubits  []int // sorted global qubits spanned by the selection
	Indices []int // selected gate indices, ascending
}

// GrowConvex grows a convex region around the anchor gate index, spanning at
// most maxQubits qubits and selecting at most maxGates gates (0 = unlimited).
// This implements the random-subcircuit selection of §5.3: start at a node,
// greedily absorb neighbours until the qubit limit would be exceeded.
//
// rng, when non-nil, randomizes which frontier gate's qubits are absorbed
// when several are eligible; with a nil rng growth is deterministic.
func GrowConvex(c *Circuit, anchor, maxQubits, maxGates int, rng *rand.Rand) *Region {
	if anchor < 0 || anchor >= len(c.Gates) {
		return nil
	}
	if len(c.Gates[anchor].Qubits) > maxQubits {
		return nil
	}
	inQ := make(map[int]bool)
	for _, q := range c.Gates[anchor].Qubits {
		inQ[q] = true
	}

	intersects := func(g gate.Gate) bool {
		for _, q := range g.Qubits {
			if inQ[q] {
				return true
			}
		}
		return false
	}
	subset := func(g gate.Gate) bool {
		for _, q := range g.Qubits {
			if !inQ[q] {
				return false
			}
		}
		return true
	}

	var lo, hi int
	for {
		// Compute the maximal window around the anchor for the current
		// qubit set: extend past gates that either avoid Q entirely or act
		// wholly inside Q; stop at gates straddling the boundary.
		lo, hi = anchor, anchor
		selected := 1
		for lo-1 >= 0 {
			g := c.Gates[lo-1]
			if intersects(g) && !subset(g) {
				break
			}
			if subset(g) {
				if maxGates > 0 && selected >= maxGates {
					break
				}
				selected++
			}
			lo--
		}
		for hi+1 < len(c.Gates) {
			g := c.Gates[hi+1]
			if intersects(g) && !subset(g) {
				break
			}
			if subset(g) {
				if maxGates > 0 && selected >= maxGates {
					break
				}
				selected++
			}
			hi++
		}
		// Try to absorb a straddling frontier gate's qubits.
		var candidates []int
		for _, i := range []int{lo - 1, hi + 1} {
			if i < 0 || i >= len(c.Gates) {
				continue
			}
			g := c.Gates[i]
			if !intersects(g) || subset(g) {
				continue
			}
			extra := 0
			for _, q := range g.Qubits {
				if !inQ[q] {
					extra++
				}
			}
			if len(inQ)+extra <= maxQubits {
				candidates = append(candidates, i)
			}
		}
		if len(candidates) == 0 {
			break
		}
		pick := candidates[0]
		if rng != nil && len(candidates) > 1 {
			pick = candidates[rng.Intn(len(candidates))]
		}
		for _, q := range c.Gates[pick].Qubits {
			inQ[q] = true
		}
	}

	qs := make([]int, 0, len(inQ))
	for q := range inQ {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	r := &Region{Lo: lo, Hi: hi, Qubits: qs}
	selected := 0
	for i := lo; i <= hi; i++ {
		if subset(c.Gates[i]) {
			if maxGates > 0 && selected >= maxGates {
				// Trim the window at the cap so the invariant holds.
				r.Hi = i - 1
				break
			}
			r.Indices = append(r.Indices, i)
			selected++
		}
	}
	return r
}

// RandomRegion grows a convex region from a uniformly random anchor gate.
// Returns nil for an empty circuit.
func RandomRegion(c *Circuit, maxQubits, maxGates int, rng *rand.Rand) *Region {
	if len(c.Gates) == 0 {
		return nil
	}
	// Retry a few times in case the anchor itself is too wide (e.g. a ccx
	// anchor with maxQubits=2).
	for attempt := 0; attempt < 8; attempt++ {
		r := GrowConvex(c, rng.Intn(len(c.Gates)), maxQubits, maxGates, rng)
		if r != nil && len(r.Indices) > 0 {
			return r
		}
	}
	return nil
}

// Extract returns the region as a standalone circuit on len(Qubits) local
// qubits (global qubit Qubits[k] ↦ local qubit k).
func (r *Region) Extract(c *Circuit) *Circuit {
	local := make(map[int]int, len(r.Qubits))
	for k, q := range r.Qubits {
		local[q] = k
	}
	out := New(len(r.Qubits))
	for _, i := range r.Indices {
		g := c.Gates[i].Clone()
		for k, q := range g.Qubits {
			g.Qubits[k] = local[q]
		}
		out.Append(g)
	}
	return out
}

// Replace returns a new circuit with the region's selected gates replaced by
// the replacement circuit (on len(Qubits) local qubits, mapped back to the
// region's global qubits). Window gates that were not selected act on
// disjoint qubits and are preserved, placed before the replacement.
func (r *Region) Replace(c *Circuit, replacement *Circuit) *Circuit {
	if replacement.NumQubits != len(r.Qubits) {
		panic(fmt.Sprintf("circuit: Replace: replacement has %d qubits, region spans %d",
			replacement.NumQubits, len(r.Qubits)))
	}
	sel := make(map[int]bool, len(r.Indices))
	for _, i := range r.Indices {
		sel[i] = true
	}
	out := New(c.NumQubits)
	out.Gates = make([]gate.Gate, 0, len(c.Gates)-len(r.Indices)+len(replacement.Gates))
	for i := 0; i < r.Lo; i++ {
		out.Gates = append(out.Gates, c.Gates[i])
	}
	for i := r.Lo; i <= r.Hi; i++ {
		if !sel[i] {
			out.Gates = append(out.Gates, c.Gates[i])
		}
	}
	for _, g := range replacement.Gates {
		ng := g.Clone()
		for k, q := range ng.Qubits {
			ng.Qubits[k] = r.Qubits[q]
		}
		out.Gates = append(out.Gates, ng)
	}
	for i := r.Hi + 1; i < len(c.Gates); i++ {
		out.Gates = append(out.Gates, c.Gates[i])
	}
	return out
}
