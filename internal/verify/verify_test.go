package verify

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/guoq-dev/guoq/internal/baselines"
	"github.com/guoq-dev/guoq/internal/benchmarks"
	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/opt"
)

func TestEquivalentIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := circuit.Random(10, 80, circuit.DefaultTestVocab, rng)
	res, err := Equivalent(c, c.Clone(), Options{Seed: 1})
	if err != nil || !res.Equivalent {
		t.Fatalf("identical circuits reported different: %+v, %v", res, err)
	}
	if res.WorstOverlap < 1-1e-10 {
		t.Fatalf("overlap %g for identical circuits", res.WorstOverlap)
	}
}

func TestEquivalentModPhase(t *testing.T) {
	// rz(2π) is −I, a pure global phase: circuits must compare equal.
	a := circuit.New(2)
	a.Append(gate.NewH(0), gate.NewCX(0, 1))
	b := a.Clone()
	b.Append(gate.NewRz(2*math.Pi, 0))
	res, err := Equivalent(a, b, Options{Seed: 2})
	if err != nil || !res.Equivalent {
		t.Fatalf("global phase not ignored: %+v, %v", res, err)
	}
}

func TestInequivalentDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		a := circuit.Random(6, 30, circuit.DefaultTestVocab, rng)
		b := a.Clone()
		// Tamper with one gate.
		i := rng.Intn(b.Len())
		b.Gates[i] = gate.NewRy(1.234, b.Gates[i].Qubits[0])
		res, err := Equivalent(a, b, Options{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Equivalent {
			// Tampering could accidentally be equivalent only if the
			// replaced gate equals ry(1.234) — astronomically unlikely.
			t.Fatalf("trial %d: tampered circuit passed", trial)
		}
	}
}

func TestMismatchedShapes(t *testing.T) {
	a := circuit.New(2)
	b := circuit.New(3)
	if _, err := Equivalent(a, b, Options{}); err == nil {
		t.Fatal("qubit mismatch should error")
	}
	wide := circuit.New(MaxStateQubits + 1)
	if _, err := Equivalent(wide, wide, Options{}); err == nil {
		t.Fatal("too-wide circuit should error")
	}
}

// TestOptimizerOnWideBenchmark is the integration check this package exists
// for: run the full GUOQ baseline on a 15-qubit benchmark (beyond
// unitary evaluation) and verify equivalence by sampling.
func TestOptimizerOnWideBenchmark(t *testing.T) {
	gs := gateset.IBMEagle
	suite, err := benchmarks.SuiteFor(gs)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := benchmarks.ByName(suite, "barenco_tof_8")
	if !ok {
		t.Fatal("missing barenco_tof_8")
	}
	if b.Circuit.NumQubits < 14 {
		t.Fatalf("expected a wide benchmark, got %d qubits", b.Circuit.NumQubits)
	}
	tool := baselines.NewGUOQ(1e-8)
	out := tool.Optimize(b.Circuit, gs, opt.TwoQubitCost(), 500*time.Millisecond, 7)
	if err := MustBeEquivalent(b.Circuit, out, 1e-6, 11); err != nil {
		t.Fatal(err)
	}
	if out.TwoQubitCount() > b.Circuit.TwoQubitCount() {
		t.Fatal("optimizer worsened the benchmark")
	}
}

func TestRandomProductStateNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	state := make([]complex128, 1<<6)
	writeRandomProductState(state, 6, rng)
	var norm float64
	for _, v := range state {
		norm += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(norm-1) > 1e-10 {
		t.Fatalf("product state norm = %g", norm)
	}
}
