// Package verify provides equivalence checking between circuits that are
// too wide for full unitary evaluation: it propagates random product states
// through both circuits with the state-vector simulator and compares output
// overlaps. A single random product state distinguishes inequivalent
// unitaries with overwhelming probability; several independent states drive
// the error probability to negligible.
//
// This is the testing substrate for whole-benchmark optimizer runs (up to
// ~20 qubits at full amplitude fidelity) — the paper's own evaluation leans
// on the same inability to simulate classically (§7), so exact checks stay
// confined to ≤ MaxUnitaryQubits circuits while this sampler covers the
// rest.
package verify

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"github.com/guoq-dev/guoq/internal/circuit"
)

// MaxStateQubits bounds state-vector simulation (2^24 amplitudes ≈ 256 MB).
const MaxStateQubits = 24

// Options tunes an equivalence check.
type Options struct {
	// Samples is the number of random product states (default 4).
	Samples int
	// Tolerance is the allowed deviation of |<ψ_a|ψ_b>| from 1
	// (default 1e-7; use the ε_f budget for approximate optimizations).
	Tolerance float64
	// Seed drives the random input states.
	Seed int64
}

// Result reports a check.
type Result struct {
	Equivalent bool
	// WorstOverlap is the smallest |<ψ_a|ψ_b>| observed across samples
	// (1 means identical up to global phase on that input).
	WorstOverlap float64
	Samples      int
}

// Equivalent checks a ≡ b (mod global phase, within tolerance) on random
// product states. It returns an error for mismatched shapes or circuits too
// wide to simulate.
func Equivalent(a, b *circuit.Circuit, o Options) (Result, error) {
	if a.NumQubits != b.NumQubits {
		return Result{}, fmt.Errorf("verify: qubit counts differ: %d vs %d", a.NumQubits, b.NumQubits)
	}
	if a.NumQubits > MaxStateQubits {
		return Result{}, fmt.Errorf("verify: %d qubits exceeds simulation limit %d", a.NumQubits, MaxStateQubits)
	}
	if o.Samples <= 0 {
		o.Samples = 4
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-7
	}
	rng := rand.New(rand.NewSource(o.Seed))

	res := Result{Equivalent: true, WorstOverlap: 1, Samples: o.Samples}
	n := a.NumQubits
	dim := 1 << n
	sa := make([]complex128, dim)
	sb := make([]complex128, dim)
	for s := 0; s < o.Samples; s++ {
		writeRandomProductState(sa, n, rng)
		copy(sb, sa)
		a.Apply(sa)
		b.Apply(sb)
		ov := overlap(sa, sb)
		if ov < res.WorstOverlap {
			res.WorstOverlap = ov
		}
		if 1-ov > o.Tolerance {
			res.Equivalent = false
			return res, nil
		}
	}
	return res, nil
}

// MustBeEquivalent is a test helper contract: it returns nil when the
// circuits pass the sampled check and a descriptive error otherwise.
func MustBeEquivalent(a, b *circuit.Circuit, tol float64, seed int64) error {
	res, err := Equivalent(a, b, Options{Tolerance: tol, Seed: seed})
	if err != nil {
		return err
	}
	if !res.Equivalent {
		return fmt.Errorf("verify: circuits differ (worst overlap %.12f, tolerance %g)",
			res.WorstOverlap, tol)
	}
	return nil
}

// writeRandomProductState fills state with ⊗_q (cos α_q |0> + e^{iφ_q} sin α_q |1>).
func writeRandomProductState(state []complex128, n int, rng *rand.Rand) {
	type amp struct{ a0, a1 complex128 }
	qs := make([]amp, n)
	for q := range qs {
		alpha := rng.Float64() * math.Pi / 2
		phi := rng.Float64() * 2 * math.Pi
		qs[q] = amp{
			a0: complex(math.Cos(alpha), 0),
			a1: cmplx.Exp(complex(0, phi)) * complex(math.Sin(alpha), 0),
		}
	}
	for idx := range state {
		v := complex(1, 0)
		for q := 0; q < n; q++ {
			if idx&(1<<uint(n-1-q)) != 0 {
				v *= qs[q].a1
			} else {
				v *= qs[q].a0
			}
		}
		state[idx] = v
	}
}

// overlap returns |<a|b>|.
func overlap(a, b []complex128) float64 {
	var acc complex128
	for i := range a {
		acc += cmplx.Conj(a[i]) * b[i]
	}
	return cmplx.Abs(acc)
}
