package opt

import (
	"fmt"

	"github.com/guoq-dev/guoq/internal/gateset"
)

// Provider constructs transformations for a target gate set. The paper's
// instantiation (Instantiate) is the canonical provider; user extensions —
// custom rules, external synthesizers — are additional providers appended
// to a Registry.
type Provider func(gs *gateset.GateSet, io InstantiateOptions) ([]Transformation, error)

// Static adapts a fixed transformation slice to a Provider (pre-compiled
// user transformations whose construction already happened upstream).
func Static(ts ...Transformation) Provider {
	return func(*gateset.GateSet, InstantiateOptions) ([]Transformation, error) {
		out := make([]Transformation, len(ts))
		copy(out, ts)
		return out, nil
	}
}

// Registry is an ordered collection of transformation providers: the
// portfolio the GUOQ search samples from is whatever the registry builds,
// making the search transformation-agnostic end to end (the τ_ε framing of
// §4 — rules and resynthesis are just entries, not special cases). Build
// order is provider order, which matters for seeded reproducibility: the
// loop indexes transformations by rng draws, so two runs agree bit-for-bit
// only when their registries build identical sequences.
//
// A Registry is immutable after construction from the search's point of
// view: With returns extended copies, so a registry shared across
// concurrent runs is safe without locks.
type Registry struct {
	providers []Provider
}

// NewRegistry builds a registry from providers, in order.
func NewRegistry(ps ...Provider) *Registry {
	r := &Registry{providers: make([]Provider, len(ps))}
	copy(r.providers, ps)
	return r
}

// DefaultRegistry returns the registry of the paper's instantiation: the
// curated rule library, cleanup/fusion/phase-folding τ_0 passes, and the
// built-in resynthesis τ_ε ladder. Building from it reproduces the
// pre-registry Instantiate output exactly (same transformations, same
// order), so seeded runs are bit-identical across the refactor.
func DefaultRegistry() *Registry {
	return NewRegistry(Instantiate)
}

// With returns a new registry with the providers appended after the
// receiver's; the receiver is unchanged.
func (r *Registry) With(ps ...Provider) *Registry {
	out := &Registry{providers: make([]Provider, 0, len(r.providers)+len(ps))}
	out.providers = append(out.providers, r.providers...)
	out.providers = append(out.providers, ps...)
	return out
}

// Build constructs the transformation set for a gate set by running every
// provider in order and concatenating the results.
func (r *Registry) Build(gs *gateset.GateSet, io InstantiateOptions) ([]Transformation, error) {
	var out []Transformation
	for i, p := range r.providers {
		ts, err := p(gs, io)
		if err != nil {
			return nil, fmt.Errorf("opt: registry provider %d: %w", i, err)
		}
		out = append(out, ts...)
	}
	return out, nil
}
