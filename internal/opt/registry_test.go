package opt

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/linalg"
	"github.com/guoq-dev/guoq/internal/synth"
)

// TestDefaultRegistryMatchesInstantiate pins the refactoring invariant: the
// default registry builds exactly the transformation sequence the
// historical hardcoded construction built — same entries, same order —
// for every built-in gate set. Order matters: the search loop indexes
// transformations with rng draws, so reordering would silently change
// every seeded run.
func TestDefaultRegistryMatchesInstantiate(t *testing.T) {
	for _, gs := range gateset.All() {
		io := InstantiateOptions{EpsilonF: 1e-8, SynthTime: 10 * time.Millisecond, WithPhaseFold: true}
		want, err := Instantiate(gs, io)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DefaultRegistry().Build(gs, io)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: registry built %d transformations, instantiate %d", gs.Name, len(got), len(want))
		}
		for i := range got {
			if got[i].Name() != want[i].Name() || got[i].Slow() != want[i].Slow() || got[i].Epsilon() != want[i].Epsilon() {
				t.Fatalf("%s: transformation %d differs: registry %s, instantiate %s", gs.Name, i, got[i].Name(), want[i].Name())
			}
		}
	}
}

// TestRegistryDefaultBitIdentical runs the same seeded synchronous search
// through the direct instantiation and through the default registry: the
// outputs must be bit-for-bit equal (the "registry refactor changed
// nothing" guarantee for default runs).
func TestRegistryDefaultBitIdentical(t *testing.T) {
	gs := gateset.Nam
	io := InstantiateOptions{EpsilonF: 1e-8, SynthTime: 10 * time.Millisecond, WithPhaseFold: true}
	c := circuit.Random(4, 40, gs.Gates, rand.New(rand.NewSource(3)))

	run := func(ts []Transformation) *circuit.Circuit {
		opts := DefaultOptions()
		opts.Cost = TwoQubitCost()
		opts.TimeBudget = 10 * time.Second // generous: MaxIters ends the run
		opts.MaxIters = 400
		opts.Seed = 11
		opts.WarmStart = true
		return GUOQ(c, ts, opts).Best
	}
	direct, err := Instantiate(gs, io)
	if err != nil {
		t.Fatal(err)
	}
	viaRegistry, err := DefaultRegistry().Build(gs, io)
	if err != nil {
		t.Fatal(err)
	}
	a, b := run(direct), run(viaRegistry)
	if !circuit.Equal(a, b) {
		t.Fatalf("seeded outputs diverge between direct instantiation (%d gates) and registry build (%d gates)", a.Len(), b.Len())
	}
}

// TestRegistryWithAppends checks provider composition order and that With
// does not mutate the receiver.
func TestRegistryWithAppends(t *testing.T) {
	gs := gateset.Nam
	marker := &CleanupTransformation{GateSetName: "marker"}
	base := NewRegistry(Static(&CleanupTransformation{GateSetName: "a"}))
	ext := base.With(Static(marker))
	ts, err := ext.Build(gs, InstantiateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts[1] != Transformation(marker) {
		t.Fatalf("extended registry built %d transformations, want marker last", len(ts))
	}
	if ts0, _ := base.Build(gs, InstantiateOptions{}); len(ts0) != 1 {
		t.Fatalf("With mutated the receiver: base now builds %d transformations", len(ts0))
	}
}

// ---------------------------------------------------------------------------

// dropTinyRz is a user-style circuit synthesizer: it removes near-identity
// rz gates from the subcircuit, reporting the measured Hilbert–Schmidt
// distance as its consumed ε. Proposals strictly reduce gate count, so the
// greedy acceptance rule always takes them — which makes the run's total
// BestError exactly the sum of the consumed values of applied proposals.
type dropTinyRz struct {
	threshold float64
	calls     atomic.Int64
	proposals atomic.Int64
	overClaim float64 // when > 0, claim this instead of the measured ε
}

func (d *dropTinyRz) Name() string { return "drop-tiny-rz" }

func (d *dropTinyRz) Synthesize(_ context.Context, sub *circuit.Circuit, eps float64) (*circuit.Circuit, float64, error) {
	d.calls.Add(1)
	out := circuit.New(sub.NumQubits)
	dropped := false
	for _, g := range sub.Gates {
		if g.Name == gate.Rz && g.Params[0] != 0 && g.Params[0] < d.threshold && g.Params[0] > 0 {
			dropped = true
			continue
		}
		out.Gates = append(out.Gates, g.Clone())
	}
	if !dropped {
		return nil, 0, synth.ErrNoSolution
	}
	consumed := linalg.HSDistance(sub.Unitary(), out.Unitary())
	if consumed > eps {
		return nil, 0, synth.ErrNoSolution
	}
	if d.overClaim > 0 {
		consumed = d.overClaim
	}
	d.proposals.Add(1)
	return out, consumed, nil
}

// plantedCircuit builds a nam-native circuit with tiny rz gates planted
// between entangling layers — removable only approximately.
func plantedCircuit(tiny float64, n int) *circuit.Circuit {
	c := circuit.New(3)
	for i := 0; i < n; i++ {
		q := i % 3
		c.Append(gate.NewCX(q, (q+1)%3))
		c.Append(gate.NewRz(tiny, q))
		c.Append(gate.NewH((q + 2) % 3))
	}
	return c
}

// TestCircuitSynthesizerDebitsBudget verifies the ε accounting of a
// user-supplied synthesizer end to end at the search-loop level: with the
// custom synthesizer as the only transformation, the run's BestError is
// positive, is bounded by the budget, and the output is equivalent to the
// input within it.
func TestCircuitSynthesizerDebitsBudget(t *testing.T) {
	const epsF = 1e-2
	c := plantedCircuit(1e-3, 6)
	syn := &dropTinyRz{threshold: 1e-2}
	ts := []Transformation{&CircuitResynthTransformation{
		Synth:       syn,
		MaxQubits:   3,
		DeclaredEps: epsF,
		GateSet:     gateset.Nam,
	}}
	opts := DefaultOptions()
	opts.Epsilon = epsF
	opts.Cost = TwoQubitCost()
	opts.TimeBudget = 10 * time.Second
	opts.MaxIters = 300
	opts.Seed = 5
	res := GUOQ(c, ts, opts)

	if syn.calls.Load() == 0 {
		t.Fatal("custom synthesizer was never invoked")
	}
	if syn.proposals.Load() == 0 {
		t.Fatal("custom synthesizer never proposed a replacement")
	}
	if res.BestError <= 0 {
		t.Fatalf("BestError = %g: consumed ε was not debited", res.BestError)
	}
	if res.BestError > epsF {
		t.Fatalf("BestError %g exceeds the budget %g", res.BestError, epsF)
	}
	if res.Best.Len() >= c.Len() {
		t.Fatalf("no reduction: %d -> %d gates", c.Len(), res.Best.Len())
	}
	if d := linalg.HSDistance(c.Unitary(), res.Best.Unitary()); d > res.BestError+1e-9 {
		t.Fatalf("true distance %g exceeds the accounted bound %g", d, res.BestError)
	}
}

// TestOverReportingSynthesizerRejected pins the admission rule: a
// synthesizer claiming more ε than the allowance is rejected outright — no
// replacement is adopted and nothing is debited.
func TestOverReportingSynthesizerRejected(t *testing.T) {
	const epsF = 1e-2
	c := plantedCircuit(1e-3, 6)
	syn := &dropTinyRz{threshold: 1e-2, overClaim: 2 * epsF}
	ts := []Transformation{&CircuitResynthTransformation{
		Synth:       syn,
		MaxQubits:   3,
		DeclaredEps: epsF,
		GateSet:     gateset.Nam,
	}}
	opts := DefaultOptions()
	opts.Epsilon = epsF
	opts.Cost = TwoQubitCost()
	opts.TimeBudget = 10 * time.Second
	opts.MaxIters = 200
	opts.Seed = 5
	res := GUOQ(c, ts, opts)

	if syn.proposals.Load() == 0 {
		t.Fatal("synthesizer never proposed (test exercised nothing)")
	}
	if res.Accepted != 0 {
		t.Fatalf("%d over-reporting proposals were accepted", res.Accepted)
	}
	if res.BestError != 0 {
		t.Fatalf("BestError = %g, want 0: over-reported ε must not be debited", res.BestError)
	}
	if !circuit.Equal(res.Best, c) {
		t.Fatal("over-reporting synthesizer modified the circuit")
	}
}

// TestCircuitSynthesizerNonNativeRejected: replacements outside the target
// set are discarded even when exact.
func TestCircuitSynthesizerNonNativeRejected(t *testing.T) {
	c := plantedCircuit(1e-3, 6)
	swapIn := synthFunc{
		name: "alien",
		fn: func(_ context.Context, sub *circuit.Circuit, _ float64) (*circuit.Circuit, float64, error) {
			out := circuit.New(sub.NumQubits)
			for _, g := range sub.Gates {
				out.Gates = append(out.Gates, g.Clone())
			}
			// An exact rewrite, but through a gate foreign to nam.
			out.Append(gate.NewCZ(0, 1), gate.NewCZ(0, 1))
			return out, 0, nil
		},
	}
	ts := []Transformation{&CircuitResynthTransformation{
		Synth: swapIn, MaxQubits: 3, DeclaredEps: 1e-2, GateSet: gateset.Nam,
	}}
	opts := DefaultOptions()
	opts.Epsilon = 1e-2
	opts.Cost = TwoQubitCost()
	opts.TimeBudget = 10 * time.Second
	opts.MaxIters = 50
	opts.Seed = 7
	res := GUOQ(c, ts, opts)
	if res.Accepted != 0 {
		t.Fatalf("%d non-native replacements accepted", res.Accepted)
	}
	if !gateset.Nam.IsNative(res.Best) {
		t.Fatal("output left the target gate set")
	}
}

type synthFunc struct {
	name string
	fn   func(ctx context.Context, sub *circuit.Circuit, eps float64) (*circuit.Circuit, float64, error)
}

func (s synthFunc) Name() string { return s.name }
func (s synthFunc) Synthesize(ctx context.Context, sub *circuit.Circuit, eps float64) (*circuit.Circuit, float64, error) {
	return s.fn(ctx, sub, eps)
}

// TestInstantiateCustomSets: custom sets without rule libraries
// instantiate (τ_0 passes + resynthesis), and finite custom sets whose
// basis cannot carry the Clifford+T synthesizer's output skip built-in
// resynthesis instead of splicing non-native gates.
func TestInstantiateCustomSets(t *testing.T) {
	cont, err := gateset.New("reg-test-cont", "superconducting", gate.Rz, gate.SX, gate.X, gate.CZ)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := Instantiate(cont, InstantiateOptions{EpsilonF: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	slow := 0
	for _, tr := range ts {
		if tr.Slow() {
			slow++
		}
	}
	if slow == 0 {
		t.Fatal("continuous custom set got no resynthesis")
	}

	fin, err := gateset.New("reg-test-fin", "fault tolerant", gate.H, gate.S, gate.Sdg, gate.T, gate.Tdg, gate.CZ)
	if err != nil {
		t.Fatal(err)
	}
	ts, err = Instantiate(fin, InstantiateOptions{EpsilonF: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range ts {
		if tr.Slow() {
			t.Fatalf("finite custom set without the Clifford+T vocabulary got resynthesis %s", tr.Name())
		}
	}
}

// TestRegistryProviderFilter: a provider can filter by gate set, extending
// the build for its target and leaving every other set untouched.
func TestRegistryProviderFilter(t *testing.T) {
	marker := &CleanupTransformation{GateSetName: "filter-marker"}
	reg := DefaultRegistry().With(func(gs *gateset.GateSet, _ InstantiateOptions) ([]Transformation, error) {
		if gs.Name != "reg-test-filter" {
			return nil, nil
		}
		return []Transformation{marker}, nil
	})
	other, err := reg.Build(gateset.Nam, InstantiateOptions{EpsilonF: 1e-8, SynthTime: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range other {
		if tr == Transformation(marker) {
			t.Fatal("filtered provider leaked into another gate set")
		}
	}
	gs, err := gateset.New("reg-test-filter", "", gate.Rz, gate.H, gate.X, gate.CX)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := reg.Build(gs, InstantiateOptions{EpsilonF: 1e-8, SynthTime: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if ts[len(ts)-1] != Transformation(marker) {
		t.Fatal("provider's transformation is not last in the build")
	}
}

// TestResynthContextCancelPrompt: a cancelled context makes the built-in
// resynthesis transformation return promptly even when the synthesizer's
// own deadline is far away — the satellite fix for cancellation draining
// a full synth deadline.
func TestResynthContextCancelPrompt(t *testing.T) {
	gs := gateset.IBMQ20
	ts, err := Instantiate(gs, InstantiateOptions{EpsilonF: 1e-8, SynthTime: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var resynth ContextApplier
	for _, tr := range ts {
		if tr.Slow() {
			resynth = tr.(ContextApplier)
			break
		}
	}
	c := circuit.Random(3, 30, gs.Gates, rand.New(rand.NewSource(9)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, _, ok := resynth.ApplyContext(ctx, c, 1e-8, rand.New(rand.NewSource(1)))
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled resynthesis took %v (synth deadline drained)", elapsed)
	}
	if ok {
		t.Log("note: cancelled application still returned a result (allowed if it finished before noticing)")
	}
}
