package opt

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/verify"
)

// The metamorphic harness: optimizing a random circuit — under any gate
// set, seed, or parallelism mode — must yield a circuit that is
// ε-equivalent to the input and never worse under the objective. These are
// the properties Thm 5.3 promises for every run, so they must hold on
// arbitrary inputs, not just the benchmark suite.

type runMode struct {
	name string
	run  func(c *circuit.Circuit, ts []Transformation, opts Options) *Result
}

func runModes() []runMode {
	return []runMode{
		{"serial", func(c *circuit.Circuit, ts []Transformation, opts Options) *Result {
			return GUOQ(c, ts, opts)
		}},
		{"portfolio4", func(c *circuit.Circuit, ts []Transformation, opts Options) *Result {
			return Portfolio(c, ts, opts, 4)
		}},
		{"partition4", func(c *circuit.Circuit, ts []Transformation, opts Options) *Result {
			return PartitionParallel(c, ts, opts, 4)
		}},
	}
}

func TestMetamorphicEquivalence(t *testing.T) {
	const eps = 1e-8
	gateSets := []*gateset.GateSet{gateset.IBMQ20, gateset.Nam, gateset.CliffordT}
	for _, gs := range gateSets {
		ts, err := Instantiate(gs, InstantiateOptions{
			EpsilonF:  eps,
			SynthTime: 25 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range []int64{1, 42} {
			// 6 qubits × 60 gates: wide enough for TimeWindows to engage
			// (2 × minWindowGates) while staying fast to simulate.
			c := circuit.Random(6, 60, gs.Gates, rand.New(rand.NewSource(seed)))
			inputCost := TwoQubitCost()(c)
			for _, mode := range runModes() {
				mode := mode
				t.Run(fmt.Sprintf("%s/seed%d/%s", gs.Name, seed, mode.name), func(t *testing.T) {
					t.Parallel()
					opts := DefaultOptions()
					opts.Epsilon = eps
					opts.Cost = TwoQubitCost()
					opts.TimeBudget = 120 * time.Millisecond
					opts.Seed = seed
					res := mode.run(c, ts, opts)

					if res.Best.NumQubits != c.NumQubits {
						t.Fatalf("qubit count changed: %d -> %d", c.NumQubits, res.Best.NumQubits)
					}
					if res.BestError > opts.Epsilon {
						t.Fatalf("BestError %g exceeds budget %g", res.BestError, opts.Epsilon)
					}
					if got := opts.Cost(res.Best); got > inputCost {
						t.Fatalf("cost regressed: %g -> %g", inputCost, got)
					}
					// ε = 1e-8 plus simulation round-off sits far below the
					// 1e-6 overlap tolerance; an inequivalent circuit fails
					// by orders of magnitude.
					if err := verify.MustBeEquivalent(c, res.Best, 1e-6, seed); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestMetamorphicAcrossParallelism pins the cross-mode metamorphic
// relation directly: for a fixed input, every parallelism level must agree
// on the input's unitary (they may differ on gate counts, never on
// semantics).
func TestMetamorphicAcrossParallelism(t *testing.T) {
	const eps = 1e-8
	gs := gateset.IBMEagle
	ts, err := Instantiate(gs, InstantiateOptions{EpsilonF: eps, SynthTime: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.Random(5, 48, gs.Gates, rand.New(rand.NewSource(7)))
	opts := DefaultOptions()
	opts.Epsilon = eps
	opts.Cost = TwoQubitCost()
	opts.TimeBudget = 100 * time.Millisecond
	opts.Seed = 7
	var outs []*circuit.Circuit
	for _, workers := range []int{1, 2, 4} {
		res := Portfolio(c, ts, opts, workers)
		if err := verify.MustBeEquivalent(c, res.Best, 1e-6, 7); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		outs = append(outs, res.Best)
	}
	for i, out := range outs[1:] {
		if err := verify.MustBeEquivalent(outs[0], out, 1e-6, 11); err != nil {
			t.Fatalf("outputs at parallelism 1 and %d diverge: %v", []int{2, 4}[i], err)
		}
	}
}
