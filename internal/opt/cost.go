package opt

import (
	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gateset"
)

// Cost is the optimization objective (§5.1): any function of circuits to
// minimize. The framework is objective-agnostic; these are the objectives
// used in the paper's evaluation.
type Cost func(c *circuit.Circuit) float64

// TwoQubitCost is the NISQ objective: two-qubit gate count dominates, with
// a small total-gate tiebreak so pure single-qubit cleanups are still
// rewarded.
func TwoQubitCost() Cost {
	return func(c *circuit.Circuit) float64 {
		return float64(c.TwoQubitCount()) + 1e-3*float64(c.Len())
	}
}

// TCost is the FTQC objective of Example 5.1: primarily T gates, secondarily
// two-qubit gates, with a total-count tiebreak.
func TCost() Cost {
	return func(c *circuit.Circuit) float64 {
		return 2*float64(c.TCount()) + float64(c.TwoQubitCount()) + 1e-3*float64(c.Len())
	}
}

// FidelityCost is the negated log-fidelity under a device model; minimizing
// it maximizes estimated success probability (the paper's GUOQ
// instantiation for NISQ maximizes fidelity).
func FidelityCost(m gateset.FidelityModel) Cost {
	return func(c *circuit.Circuit) float64 {
		return -m.LogFidelity(c) + 1e-9*float64(c.Len())
	}
}

// GateCountCost minimizes total gate count.
func GateCountCost() Cost {
	return func(c *circuit.Circuit) float64 { return float64(c.Len()) }
}
