package opt

import (
	"math/rand"
	"sort"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
)

// Q2/Q3 search-strategy variants. All consume the same transformation sets
// and cost functions as GUOQ so the comparisons isolate the search strategy.

// GUOQSeq runs the coarse interleaving of Q3: the first half of the time
// budget with one transformation class only, then the second half with the
// other, starting from the first phase's best.
func GUOQSeq(c *circuit.Circuit, ts []Transformation, opts Options, rewriteFirst bool) *Result {
	first, second := FilterFast(ts), FilterSlow(ts)
	if !rewriteFirst {
		first, second = second, first
	}
	half := opts.TimeBudget / 2
	o1 := opts
	o1.TimeBudget = half
	r1 := GUOQ(c, first, o1)
	o2 := opts
	o2.TimeBudget = half
	o2.Seed = opts.Seed + 1
	// The second phase inherits the first phase's accumulated error.
	o2.Epsilon = opts.Epsilon - r1.BestError
	r2 := GUOQ(r1.Best, second, o2)
	r2.BestError += r1.BestError
	r2.Iters += r1.Iters
	r2.Accepted += r1.Accepted
	r2.Elapsed += r1.Elapsed
	return r2
}

// Beam is the MaxBeam-style instantiation of the framework (GUOQ-BEAM in
// Q3, after QUESO's search): a bounded priority queue of candidates; each
// step dequeues the best and enqueues the result of applying every
// transformation. As §6 discusses, the queue saturates with near-identical
// candidates and large circuits make it memory-heavy — which is the point
// of the comparison.
func Beam(c *circuit.Circuit, ts []Transformation, opts Options, width int) *Result {
	if opts.Cost == nil {
		opts.Cost = TwoQubitCost()
	}
	if width <= 0 {
		width = 32
	}
	start := time.Now()
	deadline := start.Add(opts.TimeBudget)

	type cand struct {
		c    *circuit.Circuit
		err  float64
		cost float64
	}
	res := &Result{}
	seen := map[uint64]bool{}
	root := cand{c: c.Clone(), err: 0, cost: opts.Cost(c)}
	seen[fingerprint(c)] = true
	queue := []cand{root}
	best := root

	done := opts.searchDone()
	rngSeed := opts.Seed
	for len(queue) > 0 {
		if opts.TimeBudget > 0 && time.Now().After(deadline) {
			break
		}
		if opts.MaxIters > 0 && res.Iters >= opts.MaxIters {
			break
		}
		select {
		case <-done:
			res.Best = best.c
			res.BestError = best.err
			res.Elapsed = time.Since(start)
			return res
		default:
		}
		cur := queue[0]
		queue = queue[1:]
		res.Iters++
		for _, t := range ts {
			if cur.err+t.Epsilon() > opts.Epsilon {
				continue
			}
			rngSeed++
			out, eps, ok := t.Apply(cur.c, opts.Epsilon-cur.err, newRng(rngSeed))
			if !ok {
				continue
			}
			fp := fingerprint(out)
			if seen[fp] {
				continue
			}
			seen[fp] = true
			nc := cand{c: out, err: cur.err + eps, cost: opts.Cost(out)}
			res.Accepted++
			if nc.cost < best.cost {
				best = nc
				if opts.OnImprove != nil {
					opts.OnImprove(time.Since(start), best.c)
				}
			}
			queue = append(queue, nc)
			if opts.TimeBudget > 0 && time.Now().After(deadline) {
				break
			}
		}
		sort.Slice(queue, func(i, j int) bool { return queue[i].cost < queue[j].cost })
		if len(queue) > width {
			queue = queue[:width]
		}
	}
	res.Best = best.c
	res.BestError = best.err
	res.Elapsed = time.Since(start)
	return res
}

// fingerprint hashes a circuit's structure for beam-search deduplication.
func fingerprint(c *circuit.Circuit) uint64 {
	var h uint64 = 14695981039346656037
	mix := func(v uint64) {
		h = (h ^ v) * 1099511628211
	}
	mix(uint64(c.NumQubits))
	for _, g := range c.Gates {
		for _, b := range []byte(g.Name) {
			mix(uint64(b))
		}
		for _, q := range g.Qubits {
			mix(uint64(q + 1))
		}
		for _, p := range g.Params {
			mix(uint64(int64(p * 1e9)))
		}
	}
	return h
}

// newRng hands each transformation application an independent deterministic
// stream.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
