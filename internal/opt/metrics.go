package opt

import (
	"github.com/guoq-dev/guoq/internal/obs"
	"github.com/guoq-dev/guoq/internal/rewrite"
)

// Metrics is the optimizer's bundle of pre-resolved instrument handles.
// Resolving registry names once here — instead of per observation on the
// hot path — keeps the loop's per-iteration cost at a nil check plus an
// atomic. A nil *Metrics disables instrumentation entirely (every handle
// method is a no-op on nil), so Options.Metrics composes with zero
// overhead when unset.
//
// One Metrics may back any number of concurrent searches (portfolio
// members, partition windows, fixpoint rounds): counters sum and gauges
// show the latest writer, which is the fleet-level view a scrape wants.
type Metrics struct {
	// Search loop.
	Iterations      *obs.Counter
	Accepts         *obs.CounterVec // by transformation name
	Rejects         *obs.CounterVec // by transformation name
	ProposalSeconds *obs.Histogram  // fast (rewrite-class) application latency
	SynthSeconds    *obs.Histogram  // slow (resynthesis-class) application latency
	EpsilonSpent    *obs.Gauge
	BestCost        *obs.Gauge
	Migrations      *obs.Counter

	// rewrite.Engine activity, flushed once per finished run (the engine
	// keeps its own cheap int counters; moving them here per splice would
	// put atomics inside FullPass).
	EngineCacheHits    *obs.Counter
	EngineCacheMisses  *obs.Counter
	EnginePositiveHits *obs.Counter
	EngineReinstalls   *obs.Counter
	EngineSplices      *obs.Counter
	EngineInvalidated  *obs.Counter
	EngineHaloGates    *obs.Counter
	EngineHaloDepth    *obs.Gauge
	EngineCommits      *obs.Counter
	EngineRollbacks    *obs.Counter
	EngineResets       *obs.Counter

	// Shared resynthesis pool (wired through NewResynthPoolMetrics).
	PoolQueueDepth  *obs.Gauge
	PoolTasks       *obs.Counter
	PoolSteals      *obs.Counter
	PoolTaskSeconds *obs.Histogram

	// popt.Fixpoint rounds.
	FixpointWindows   *obs.Counter
	FixpointAdopted   *obs.Counter
	FixpointDryRounds *obs.Counter
}

// NewMetrics registers the optimizer's metric families on reg and returns
// the resolved handles. A nil registry returns nil, which every consumer
// accepts as "no instrumentation".
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Iterations:      reg.Counter("guoq_iterations_total", "Search loop iterations."),
		Accepts:         reg.CounterVec("guoq_accepts_total", "Accepted applications per transformation.", "transformation"),
		Rejects:         reg.CounterVec("guoq_rejects_total", "Rejected candidate applications per transformation.", "transformation"),
		ProposalSeconds: reg.Histogram("guoq_proposal_seconds", "Latency of fast (rewrite-class) applications.", nil),
		SynthSeconds:    reg.Histogram("guoq_synth_seconds", "Latency of slow (resynthesis-class) applications.", nil),
		EpsilonSpent:    reg.Gauge("guoq_epsilon_spent", "Accumulated error bound of the current search point."),
		BestCost:        reg.Gauge("guoq_best_cost", "Cost of the best solution found so far."),
		Migrations:      reg.Counter("guoq_migrations_total", "Exchange adoptions across all searches."),

		EngineCacheHits:    reg.Counter("guoq_engine_cache_hits_total", "Anchors skipped via a cached no-match verdict."),
		EngineCacheMisses:  reg.Counter("guoq_engine_cache_misses_total", "Match attempts the cache could not answer."),
		EnginePositiveHits: reg.Counter("guoq_engine_positive_hits_total", "Anchors served by replaying a cached match instead of rematching."),
		EngineReinstalls:   reg.Counter("guoq_engine_reinstalls_total", "Positive cache entries restored by transaction rollbacks."),
		EngineSplices:      reg.Counter("guoq_engine_splices_total", "Window replacements applied (including rollbacks)."),
		EngineInvalidated:  reg.Counter("guoq_engine_invalidated_total", "Cache entries cleared by halo invalidation."),
		EngineHaloGates:    reg.Counter("guoq_engine_halo_gates_total", "Gates swept by halo invalidation BFS passes."),
		EngineHaloDepth:    reg.Gauge("guoq_engine_halo_depth", "Deepest per-rule (per-wire extent) halo radius in use."),
		EngineCommits:      reg.Counter("guoq_engine_commits_total", "Accepted transactions."),
		EngineRollbacks:    reg.Counter("guoq_engine_rollbacks_total", "Rejected (reverted) transactions."),
		EngineResets:       reg.Counter("guoq_engine_resets_total", "Full cache invalidations (SetCircuit/Reset)."),

		PoolQueueDepth:  reg.Gauge("guoq_resynth_queue_depth", "Resynthesis jobs waiting for a pool worker."),
		PoolTasks:       reg.Counter("guoq_resynth_tasks_total", "Resynthesis jobs executed by the shared pool."),
		PoolSteals:      reg.Counter("guoq_resynth_steals_total", "Jobs queued while every pool worker was busy (picked up by whichever frees first)."),
		PoolTaskSeconds: reg.Histogram("guoq_resynth_task_seconds", "Resynthesis job execution latency on the shared pool.", nil),

		FixpointWindows:   reg.Counter("guoq_fixpoint_windows_searched_total", "Fixpoint windows searched."),
		FixpointAdopted:   reg.Counter("guoq_fixpoint_windows_adopted_total", "Fixpoint windows whose improvement was stitched in."),
		FixpointDryRounds: reg.Counter("guoq_fixpoint_dry_rounds_total", "Fixpoint rounds that improved nothing."),
	}
}

// AddEngineStats folds one finished engine's cumulative counters into the
// shared metrics. Safe on nil.
func (m *Metrics) AddEngineStats(st rewrite.EngineStats) {
	if m == nil {
		return
	}
	m.EngineCacheHits.Add(int64(st.CacheSkips))
	m.EngineCacheMisses.Add(int64(st.MatchCalls))
	m.EnginePositiveHits.Add(int64(st.PositiveHits))
	m.EngineReinstalls.Add(int64(st.Reinstalls))
	m.EngineSplices.Add(int64(st.Splices))
	m.EngineInvalidated.Add(int64(st.Invalidated))
	m.EngineHaloGates.Add(int64(st.HaloGates))
	if st.HaloDepth > 0 {
		m.EngineHaloDepth.Set(float64(st.HaloDepth))
	}
	m.EngineCommits.Add(int64(st.Commits))
	m.EngineRollbacks.Add(int64(st.Rollbacks))
	m.EngineResets.Add(int64(st.Resets))
}

// RuleStats is one transformation's attribution line in a Result: how
// often it was attempted (selected and run), and how its candidates fared.
// Attempts that produced no candidate (no match site, synthesis failure)
// count in Attempts only.
type RuleStats struct {
	Attempts int
	Accepted int
	Rejected int
}

// MergeRules folds src's per-rule attribution into r (parallel modes sum
// their workers' tables).
func (r *Result) MergeRules(src *Result) {
	if len(src.Rules) == 0 {
		return
	}
	if r.Rules == nil {
		r.Rules = make(map[string]*RuleStats, len(src.Rules))
	}
	for name, s := range src.Rules {
		d := r.Rules[name]
		if d == nil {
			d = &RuleStats{}
			r.Rules[name] = d
		}
		d.Attempts += s.Attempts
		d.Accepted += s.Accepted
		d.Rejected += s.Rejected
	}
}

// ruleTally is the loop-local attribution slot for one transformation:
// the Result's stats line plus the pre-resolved labeled counters (nil
// without metrics). Transformations sharing a Name — the resynthesis ε
// classes — share one slot.
type ruleTally struct {
	stats   *RuleStats
	accepts *obs.Counter
	rejects *obs.Counter
}

// newTally resolves one attribution slot per distinct transformation name.
func newTally(ts []Transformation, m *Metrics) (map[Transformation]*ruleTally, map[string]*ruleTally) {
	byT := make(map[Transformation]*ruleTally, len(ts))
	byName := make(map[string]*ruleTally, len(ts))
	for _, t := range ts {
		name := t.Name()
		e := byName[name]
		if e == nil {
			e = &ruleTally{stats: &RuleStats{}}
			if m != nil {
				e.accepts = m.Accepts.With(name)
				e.rejects = m.Rejects.With(name)
			}
			byName[name] = e
		}
		byT[t] = e
	}
	return byT, byName
}

func (e *ruleTally) attempt() {
	if e != nil {
		e.stats.Attempts++
	}
}

func (e *ruleTally) accept() {
	if e != nil {
		e.stats.Accepted++
		e.accepts.Inc()
	}
}

func (e *ruleTally) reject() {
	if e != nil {
		e.stats.Rejected++
		e.rejects.Inc()
	}
}
