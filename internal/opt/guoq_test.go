package opt

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/linalg"
)

// redundantCircuit builds a native nam circuit with obvious redundancy.
func redundantCircuit() *circuit.Circuit {
	c := circuit.New(3)
	c.Append(
		gate.NewH(0), gate.NewH(0),
		gate.NewCX(0, 1), gate.NewCX(0, 1),
		gate.NewRz(0.3, 2), gate.NewRz(-0.3, 2),
		gate.NewCX(1, 2),
		gate.NewX(2), gate.NewX(2),
		gate.NewCX(1, 2),
		gate.NewRz(0.5, 0),
		gate.NewCX(0, 1),
		gate.NewRz(-0.5, 0),
	)
	return c
}

func namTransformations(t *testing.T) []Transformation {
	t.Helper()
	ts, err := Instantiate(gateset.Nam, InstantiateOptions{
		EpsilonF:  1e-8,
		SynthTime: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestGUOQReducesRedundancy(t *testing.T) {
	c := redundantCircuit()
	orig := c.Unitary()
	opts := DefaultOptions()
	opts.Cost = TwoQubitCost()
	opts.MaxIters = 3000
	opts.TimeBudget = 5 * time.Second
	opts.Seed = 7
	res := GUOQ(c, FilterFast(namTransformations(t)), opts)
	if res.Best.TwoQubitCount() >= c.TwoQubitCount() {
		t.Fatalf("2q count %d -> %d: no reduction", c.TwoQubitCount(), res.Best.TwoQubitCount())
	}
	if !linalg.EqualUpToPhase(res.Best.Unitary(), orig, 1e-8) {
		t.Fatal("GUOQ broke semantics")
	}
	// The obvious cancellations leave just cx(0,1) and possibly the rz pair.
	if res.Best.TwoQubitCount() > 1 {
		t.Fatalf("expected ≤1 two-qubit gates, got %d:\n%v",
			res.Best.TwoQubitCount(), res.Best)
	}
}

// TestGUOQCorrectnessTheorem53 is the Thm 5.3 property: the result of
// guoq(C, ε_f, T) is always ε_f-equivalent to C, for random circuits and
// with resynthesis enabled.
func TestGUOQCorrectnessTheorem53(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ts := namTransformations(t)
	for trial := 0; trial < 4; trial++ {
		c := circuit.Random(4, 24, gateset.Nam.Gates, rng)
		orig := c.Unitary()
		opts := DefaultOptions()
		opts.Epsilon = 1e-8
		opts.MaxIters = 120
		opts.TimeBudget = 10 * time.Second
		opts.ResynthProb = 0.2 // exercise resynthesis heavily
		opts.Seed = int64(trial)
		res := GUOQ(c, ts, opts)
		if res.BestError > opts.Epsilon {
			t.Fatalf("trial %d: accumulated error %g exceeds budget", trial, res.BestError)
		}
		if d := linalg.HSDistance(res.Best.Unitary(), orig); d > opts.Epsilon+1e-9 {
			t.Fatalf("trial %d: final distance %g exceeds ε_f (Thm 5.3 violated)", trial, d)
		}
	}
}

func TestGUOQNeverWorseThanInput(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ts := namTransformations(t)
	for trial := 0; trial < 5; trial++ {
		c := circuit.Random(4, 30, gateset.Nam.Gates, rng)
		opts := DefaultOptions()
		opts.MaxIters = 150
		opts.Seed = int64(trial)
		res := GUOQ(c, ts, opts)
		if res.Best.TwoQubitCount() > c.TwoQubitCount() {
			t.Fatalf("trial %d: 2q count increased %d -> %d",
				trial, c.TwoQubitCount(), res.Best.TwoQubitCount())
		}
	}
}

func TestGUOQDeterministicWithSeed(t *testing.T) {
	c := redundantCircuit()
	ts := FilterFast(namTransformations(t))
	opts := DefaultOptions()
	opts.MaxIters = 500
	opts.TimeBudget = 10 * time.Second
	opts.Seed = 99
	a := GUOQ(c, ts, opts)
	b := GUOQ(c, ts, opts)
	if !circuit.Equal(a.Best, b.Best) {
		t.Fatal("synchronous GUOQ is not deterministic for equal seeds")
	}
}

func TestGUOQAsyncSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ts := namTransformations(t)
	c := circuit.Random(4, 24, gateset.Nam.Gates, rng)
	orig := c.Unitary()
	opts := DefaultOptions()
	opts.Async = true
	opts.TimeBudget = 250 * time.Millisecond
	opts.ResynthProb = 0.3
	opts.Seed = 5
	res := GUOQ(c, ts, opts)
	if d := linalg.HSDistance(res.Best.Unitary(), orig); d > opts.Epsilon+1e-9 {
		t.Fatalf("async run broke the error budget: %g", d)
	}
}

func TestGUOQZeroEpsilonBlocksResynthOnly(t *testing.T) {
	// With ε_f = 0, resynthesis with a nonzero declared ε must never run;
	// rules still apply.
	c := redundantCircuit()
	orig := c.Unitary()
	ts := namTransformations(t)
	opts := DefaultOptions()
	opts.Epsilon = 0
	opts.MaxIters = 800
	opts.TimeBudget = 10 * time.Second
	opts.Seed = 3
	res := GUOQ(c, ts, opts)
	if res.BestError != 0 {
		t.Fatalf("ε_f=0 run accumulated error %g", res.BestError)
	}
	if !linalg.EqualUpToPhase(res.Best.Unitary(), orig, 1e-9) {
		t.Fatal("ε_f=0 run must be exactly equivalent")
	}
}

func TestGUOQTimeBudgetHonored(t *testing.T) {
	c := redundantCircuit()
	ts := namTransformations(t)
	opts := DefaultOptions()
	opts.TimeBudget = 50 * time.Millisecond
	start := time.Now()
	GUOQ(c, ts, opts)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("run took %v with a 50ms budget", elapsed)
	}
}

func TestGUOQOnImproveMonotone(t *testing.T) {
	c := redundantCircuit()
	ts := FilterFast(namTransformations(t))
	opts := DefaultOptions()
	opts.MaxIters = 1000
	opts.TimeBudget = 10 * time.Second
	opts.Seed = 1
	var costs []float64
	opts.OnImprove = func(_ time.Duration, best *circuit.Circuit) {
		costs = append(costs, opts.Cost(best))
	}
	opts.Cost = TwoQubitCost()
	GUOQ(c, ts, opts)
	for i := 1; i < len(costs); i++ {
		if costs[i] >= costs[i-1] {
			t.Fatalf("OnImprove not strictly improving: %v", costs)
		}
	}
	if len(costs) == 0 {
		t.Fatal("OnImprove never fired on a redundant circuit")
	}
}

func TestCosts(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.NewT(0), gate.NewCX(0, 1))
	if got := TCost()(c); math.Abs(got-(2+1+0.002)) > 1e-9 {
		t.Errorf("TCost = %g", got)
	}
	if got := TwoQubitCost()(c); math.Abs(got-(1+0.002)) > 1e-9 {
		t.Errorf("TwoQubitCost = %g", got)
	}
	if got := GateCountCost()(c); got != 2 {
		t.Errorf("GateCountCost = %g", got)
	}
	f := FidelityCost(gateset.IBMWashington)
	if f(c) <= 0 {
		t.Error("FidelityCost should be positive for a nonempty circuit")
	}
}

func TestSeqVariants(t *testing.T) {
	c := redundantCircuit()
	orig := c.Unitary()
	ts := namTransformations(t)
	for _, rewriteFirst := range []bool{true, false} {
		opts := DefaultOptions()
		opts.TimeBudget = 200 * time.Millisecond
		opts.Seed = 2
		res := GUOQSeq(c, ts, opts, rewriteFirst)
		if d := linalg.HSDistance(res.Best.Unitary(), orig); d > 1e-8+1e-9 {
			t.Fatalf("seq(rewriteFirst=%v) broke the budget: %g", rewriteFirst, d)
		}
		if res.Best.TwoQubitCount() > c.TwoQubitCount() {
			t.Fatalf("seq made the circuit worse")
		}
	}
}

func TestBeamVariant(t *testing.T) {
	c := redundantCircuit()
	orig := c.Unitary()
	ts := FilterFast(namTransformations(t))
	opts := DefaultOptions()
	opts.TimeBudget = 300 * time.Millisecond
	opts.Seed = 4
	res := Beam(c, ts, opts, 16)
	if !linalg.EqualUpToPhase(res.Best.Unitary(), orig, 1e-8) {
		t.Fatal("beam broke semantics")
	}
	if res.Best.TwoQubitCount() > c.TwoQubitCount() {
		t.Fatal("beam made the circuit worse")
	}
}

func TestInstantiatePerGateSet(t *testing.T) {
	for _, gs := range gateset.All() {
		ts, err := Instantiate(gs, InstantiateOptions{EpsilonF: 1e-8})
		if err != nil {
			t.Fatalf("%s: %v", gs.Name, err)
		}
		var fast, slow int
		for _, tr := range ts {
			if tr.Slow() {
				slow++
			} else {
				fast++
			}
		}
		if fast < 3 || slow != 3 {
			t.Fatalf("%s: fast=%d slow=%d", gs.Name, fast, slow)
		}
	}
}

func TestFilterPartition(t *testing.T) {
	ts := namTransformations(t)
	if len(FilterFast(ts))+len(FilterSlow(ts)) != len(ts) {
		t.Fatal("filters do not partition the set")
	}
}
