package opt

import (
	"math"
	"sync/atomic"
	"time"
)

// Adaptive portfolio control (Options.AdaptivePortfolio): instead of the
// static temperature rungs, a controller consumes each worker's event
// stream — the acceptance-rate signal already carried by Event — and
// steers the portfolio while it runs:
//
//   - Temperature retargeting. Each worker's effective temperature is its
//     configured rung times a per-worker scale. A worker whose windowed
//     acceptance rate falls below adaptiveLowRate is rejecting everything —
//     its effective temperature is too high for the local landscape — so
//     the scale halves (hotter, more uphill moves); above adaptiveHighRate
//     it is random-walking, so the scale doubles (colder, stricter). The
//     scale is clamped to [1/adaptiveScaleMax, adaptiveScaleMax].
//   - Parking. A worker (never worker 0, which holds the caller's
//     configuration) that goes adaptiveStallWindows consecutive heartbeat
//     windows with zero accepts and no best-cost improvement is parked:
//     each iteration then sleeps up to adaptiveParkSlice before
//     proceeding, releasing its CPU to productive workers. Any global
//     improvement wakes every parked worker (fresh migration targets make
//     stalled searches worth re-running); a parked worker also self-wakes
//     after one slice and re-earns its parking, so no worker is ever
//     starved and the run's termination conditions are checked at least
//     once per slice.
//
// The controller reads only the event stream and steers only through the
// unexported Options hooks (tempScale, parkPoint), so with
// AdaptivePortfolio off nothing is wired and seeded runs are bit-identical
// to the static ladder. Portfolio runs are not reproducible across runs
// either way (exchange points depend on wall-clock interleaving), which is
// why steering from wall-clock-paced heartbeats is admissible there and
// deliberately unavailable in the deterministic single-worker mode.
const (
	adaptiveLowRate      = 1.0 / 64
	adaptiveHighRate     = 0.25
	adaptiveScaleMax     = 16.0
	adaptiveStallWindows = 4
	adaptiveParkSlice    = 20 * time.Millisecond
)

// adaptiveWorker is one worker's controller slot. The heartbeat bookkeeping
// fields are touched only from the owning worker's goroutine (events are
// emitted synchronously from the search loop); parked and wake are the
// cross-worker wake channel and are therefore atomic.
type adaptiveWorker struct {
	scaleBits atomic.Uint64 // float64 bits of the temperature multiplier
	parked    atomic.Bool
	wake      chan struct{}

	lastIters    int
	lastAccepted int
	lastBest     float64
	stalled      int
}

// adaptiveController steers one Portfolio run; see the package comment
// above for the policy. All methods are safe for concurrent use by the
// portfolio's workers.
type adaptiveController struct {
	workers []adaptiveWorker
	// bestBits is the cost of the best improvement seen on any worker's
	// stream, as float64 bits, for cross-worker improvement detection.
	bestBits atomic.Uint64
}

func newAdaptiveController(workers int) *adaptiveController {
	c := &adaptiveController{workers: make([]adaptiveWorker, workers)}
	c.bestBits.Store(math.Float64bits(math.Inf(1)))
	for i := range c.workers {
		c.workers[i].scaleBits.Store(math.Float64bits(1))
		c.workers[i].lastBest = math.Inf(1)
		c.workers[i].wake = make(chan struct{}, 1)
	}
	return c
}

// scale returns worker w's current temperature multiplier (the tempScale
// hook).
func (c *adaptiveController) scale(w int) float64 {
	return math.Float64frombits(c.workers[w].scaleBits.Load())
}

// parkPoint is worker w's per-iteration throttle hook: a parked worker
// sleeps up to one slice (woken early by any global improvement), then
// unparks itself — it runs at full speed again until the stall detector
// re-parks it, so parking degrades a stalled worker to duty-cycling
// instead of stopping it.
func (c *adaptiveController) parkPoint(w int) {
	aw := &c.workers[w]
	if !aw.parked.Load() {
		return
	}
	t := time.NewTimer(adaptiveParkSlice)
	select {
	case <-aw.wake:
	case <-t.C:
	}
	t.Stop()
	aw.parked.Store(false)
}

// observe consumes one event from worker e.Worker's stream (called from
// that worker's goroutine). Improvement events update the global best and
// wake parked workers; heartbeats drive the acceptance-band steering and
// the stall detector.
func (c *adaptiveController) observe(e Event) {
	aw := &c.workers[e.Worker]
	if e.Best != nil {
		// A new worker-local best. If it beats the best any worker has
		// reported, parked searches get fresh migration targets: wake them.
		for {
			old := c.bestBits.Load()
			if e.BestCost >= math.Float64frombits(old) {
				break
			}
			if c.bestBits.CompareAndSwap(old, math.Float64bits(e.BestCost)) {
				c.wakeAll()
				break
			}
		}
		return
	}
	dIters := e.Iters - aw.lastIters
	if dIters <= 0 {
		return
	}
	dAccepted := e.Accepted - aw.lastAccepted
	rate := float64(dAccepted) / float64(dIters)
	s := math.Float64frombits(aw.scaleBits.Load())
	switch {
	case rate < adaptiveLowRate && s > 1/adaptiveScaleMax:
		aw.scaleBits.Store(math.Float64bits(s / 2))
	case rate > adaptiveHighRate && s < adaptiveScaleMax:
		aw.scaleBits.Store(math.Float64bits(s * 2))
	}
	if dAccepted == 0 && e.BestCost >= aw.lastBest {
		aw.stalled++
		if aw.stalled >= adaptiveStallWindows && e.Worker != 0 {
			aw.parked.Store(true)
		}
	} else {
		aw.stalled = 0
	}
	aw.lastIters, aw.lastAccepted, aw.lastBest = e.Iters, e.Accepted, e.BestCost
}

// wakeAll releases every parked worker (non-blocking: a worker already
// signalled keeps exactly one pending wake).
func (c *adaptiveController) wakeAll() {
	for i := range c.workers {
		aw := &c.workers[i]
		if aw.parked.Load() {
			aw.parked.Store(false)
			select {
			case aw.wake <- struct{}{}:
			default:
			}
		}
	}
}

// tempRung returns worker w's temperature multiplier: worker 0 keeps the
// caller's configuration, odd workers explore (2^-1, 2^-2, …: accepting
// more uphill moves), even workers exploit (2^1, 2^2, …: stricter). The
// first seven rungs reproduce the historical fixed ladder exactly; beyond
// that the progression continues instead of wrapping — the old table's
// trailing rung silently repeated worker 0's multiplier for the eighth
// worker and then cycled, so large portfolios ran duplicate
// configurations.
func tempRung(w int) float64 {
	if w <= 0 {
		return 1
	}
	if w%2 == 1 {
		return math.Exp2(-float64((w + 1) / 2))
	}
	return math.Exp2(float64(w / 2))
}
