package opt

import (
	"fmt"
	"time"

	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/phasepoly"
	"github.com/guoq-dev/guoq/internal/rewrite"
	"github.com/guoq-dev/guoq/internal/synth"
	"github.com/guoq-dev/guoq/internal/synth/finite"
	"github.com/guoq-dev/guoq/internal/synth/numeric"
)

// InstantiateOptions tunes the construction of a transformation set.
type InstantiateOptions struct {
	// EpsilonF is the global error budget; the resynthesis transformation's
	// declared per-application ε is EpsilonF/100 (admission classes; the
	// loop accumulates achieved error, which is usually far smaller).
	EpsilonF float64
	// MaxQubits limits resynthesis subcircuit width (3 in the paper).
	MaxQubits int
	// SynthTime bounds one synthesis call.
	SynthTime time.Duration
	// WithPhaseFold includes the global phase-folding τ_0 (used in the
	// FTQC instantiation; the NISQ one relies on rules + fusion).
	WithPhaseFold bool
}

// Instantiate builds the paper's GUOQ transformation set for a gate set
// (§6, "Instantiation of guoq"): the QUESO-style rule library, the cleanup
// and 1q-fusion τ_0 passes, and a resynthesis τ_ε — numeric (BQSKit-style)
// for continuous sets, finite-set search (Synthetiq-style) for Clifford+T.
func Instantiate(gs *gateset.GateSet, io InstantiateOptions) ([]Transformation, error) {
	if io.EpsilonF <= 0 {
		io.EpsilonF = 1e-8
	}
	if io.MaxQubits == 0 {
		io.MaxQubits = 3
	}
	rules, err := rewrite.RulesFor(gs.Name)
	if err != nil {
		return nil, fmt.Errorf("opt: instantiate: %w", err)
	}
	ts := []Transformation{&CleanupTransformation{GateSetName: gs.Name}}
	for _, r := range rules {
		ts = append(ts, &RuleTransformation{Rule: r})
	}
	var syn synth.Synthesizer
	if gs.Continuous() {
		ts = append(ts, &FuseTransformation{GateSet: gs})
		ns := numeric.New(gs)
		if io.SynthTime > 0 {
			ns.MaxTime = io.SynthTime
		}
		syn = ns
	} else {
		fs := finite.New()
		if io.SynthTime > 0 {
			fs.MaxTime = io.SynthTime
		}
		syn = fs
	}
	if io.WithPhaseFold {
		ts = append(ts, &PhaseFoldTransformation{GateSetName: gs.Name, Fold: phasepoly.FoldChanged})
	}
	// Resynthesis at three declared ε classes (§4: a set of τ_ε with
	// different ε). The coarse class admits aggressive approximations while
	// budget remains; the fine classes keep resynthesis usable as the
	// accumulated error approaches ε_f. The loop charges achieved error, so
	// exact syntheses do not consume budget regardless of class.
	for _, div := range []float64{1, 4, 16} {
		ts = append(ts, &ResynthTransformation{
			Synth:       syn,
			MaxQubits:   io.MaxQubits,
			DeclaredEps: io.EpsilonF / div,
		})
	}
	return ts, nil
}

// FilterFast returns only the ε = 0 fast transformations (GUOQ-REWRITE).
func FilterFast(ts []Transformation) []Transformation {
	var out []Transformation
	for _, t := range ts {
		if !t.Slow() {
			out = append(out, t)
		}
	}
	return out
}

// FilterSlow returns only the resynthesis transformations (GUOQ-RESYNTH).
func FilterSlow(ts []Transformation) []Transformation {
	var out []Transformation
	for _, t := range ts {
		if t.Slow() {
			out = append(out, t)
		}
	}
	return out
}
