package opt

import (
	"fmt"
	"time"

	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/phasepoly"
	"github.com/guoq-dev/guoq/internal/rewrite"
	"github.com/guoq-dev/guoq/internal/synth"
	"github.com/guoq-dev/guoq/internal/synth/finite"
	"github.com/guoq-dev/guoq/internal/synth/numeric"
)

// InstantiateOptions tunes the construction of a transformation set.
type InstantiateOptions struct {
	// EpsilonF is the global error budget; the resynthesis transformation's
	// declared per-application ε is EpsilonF/100 (admission classes; the
	// loop accumulates achieved error, which is usually far smaller).
	EpsilonF float64
	// MaxQubits limits resynthesis subcircuit width (3 in the paper).
	MaxQubits int
	// SynthTime bounds one synthesis call.
	SynthTime time.Duration
	// WithPhaseFold includes the global phase-folding τ_0 (used in the
	// FTQC instantiation; the NISQ one relies on rules + fusion).
	WithPhaseFold bool
}

// Instantiate builds the paper's GUOQ transformation set for a gate set
// (§6, "Instantiation of guoq"): the QUESO-style rule library, the cleanup
// and 1q-fusion τ_0 passes, and a resynthesis τ_ε — numeric (BQSKit-style)
// for continuous sets, finite-set search (Synthetiq-style) for Clifford+T.
//
// Custom (registered) gate sets instantiate too: a set without a
// registered rule library runs on the τ_0 passes plus resynthesis, and a
// finite custom set whose basis cannot carry the Clifford+T synthesizer's
// output skips built-in resynthesis (supply a CircuitSynthesizer through
// the registry instead).
func Instantiate(gs *gateset.GateSet, io InstantiateOptions) ([]Transformation, error) {
	if io.EpsilonF <= 0 {
		io.EpsilonF = 1e-8
	}
	if io.MaxQubits == 0 {
		io.MaxQubits = 3
	}
	rules, err := rewrite.RulesFor(gs.Name)
	if err != nil {
		if gs.Builtin() {
			return nil, fmt.Errorf("opt: instantiate: %w", err)
		}
		rules = nil // custom set without a rule library: τ_0 passes + resynthesis only
	}
	ts := []Transformation{&CleanupTransformation{GateSetName: gs.Name, GateSet: gs}}
	for _, r := range rules {
		ts = append(ts, &RuleTransformation{Rule: r})
	}
	var syn synth.Synthesizer
	if gs.Continuous() {
		ts = append(ts, &FuseTransformation{GateSet: gs})
		ns := numeric.New(gs)
		if io.SynthTime > 0 {
			ns.MaxTime = io.SynthTime
		}
		syn = ns
	} else if carriesCliffordT(gs) {
		fs := finite.New()
		if io.SynthTime > 0 {
			fs.MaxTime = io.SynthTime
		}
		syn = fs
	}
	if io.WithPhaseFold {
		ts = append(ts, &PhaseFoldTransformation{GateSet: gs, Fold: phasepoly.FoldChangedFor})
	}
	if syn == nil {
		return ts, nil
	}
	// Resynthesis at three declared ε classes (§4: a set of τ_ε with
	// different ε). The coarse class admits aggressive approximations while
	// budget remains; the fine classes keep resynthesis usable as the
	// accumulated error approaches ε_f. The loop charges achieved error, so
	// exact syntheses do not consume budget regardless of class.
	for _, div := range []float64{1, 4, 16} {
		ts = append(ts, &ResynthTransformation{
			Synth:       syn,
			MaxQubits:   io.MaxQubits,
			DeclaredEps: io.EpsilonF / div,
		})
	}
	return ts, nil
}

// carriesCliffordT reports whether the finite synthesizer's output
// vocabulary ({h, x, s, s†, t, t†, cx}) is native to the set, which is what
// built-in finite resynthesis needs to splice its results back legally.
func carriesCliffordT(gs *gateset.GateSet) bool {
	for _, n := range gateset.CliffordT.Gates {
		if !gs.Contains(n) {
			return false
		}
	}
	return true
}

// FilterFast returns only the ε = 0 fast transformations (GUOQ-REWRITE).
func FilterFast(ts []Transformation) []Transformation {
	var out []Transformation
	for _, t := range ts {
		if !t.Slow() {
			out = append(out, t)
		}
	}
	return out
}

// FilterSlow returns only the resynthesis transformations (GUOQ-RESYNTH).
func FilterSlow(ts []Transformation) []Transformation {
	var out []Transformation
	for _, t := range ts {
		if t.Slow() {
			out = append(out, t)
		}
	}
	return out
}
