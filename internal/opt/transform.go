// Package opt implements the paper's core contribution: the unified
// framework of circuit transformations (§4) and the GUOQ stochastic
// optimization algorithm (§5, Alg. 1), plus the ablation variants used in
// Q2/Q3 (rewrite-only, resynth-only, sequential orderings, beam search).
package opt

import (
	"math/rand"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/linalg"
	"github.com/guoq-dev/guoq/internal/rewrite"
	"github.com/guoq-dev/guoq/internal/synth"
)

// Transformation is the τ_ε abstraction of Def. 4.1: a closed-box function
// from circuits to ε-equivalent circuits. Epsilon is the declared error
// class used for budget admission (Alg. 1 line 6); Apply additionally
// reports the error actually incurred, which is what the loop accumulates
// (the achieved Δ of each step is what Thm 4.2 sums).
type Transformation interface {
	// Name identifies the transformation in logs.
	Name() string
	// Epsilon is the declared worst-case error of one application.
	Epsilon() float64
	// Slow reports whether this is a "slow" (resynthesis-class)
	// transformation for the 1.5% / 98.5% weighting of §5.3.
	Slow() bool
	// Apply attempts one application to a randomly chosen location,
	// returning the transformed circuit, the error incurred, and whether
	// anything was attempted. allowedEps caps the incurred error. The
	// returned circuit must be fresh (or the unmodified input when
	// ok = false): the search loop may adopt it into a mutable engine.
	Apply(c *circuit.Circuit, allowedEps float64, rng *rand.Rand) (out *circuit.Circuit, eps float64, ok bool)
}

// EngineApplier is the incremental fast path of a Transformation: an
// application against a persistent rewrite.Engine, mutating its circuit in
// place instead of producing a fresh copy. The GUOQ loop threads one
// Engine per worker through its iterations and uses this path whenever a
// transformation supports it — committing on acceptance, rolling back on
// rejection. Implementations must leave the engine untouched when they
// report ok = false, must route every mutation through the engine (so its
// DAG and rule-match caches stay sound), and must consume exactly the same
// rng stream as Apply so engine-backed runs stay bit-for-bit reproducible.
type EngineApplier interface {
	ApplyEngine(e *rewrite.Engine, allowedEps float64, rng *rand.Rand) (eps float64, ok bool)
}

// ---------------------------------------------------------------------------

// RuleTransformation wraps one rewrite rule as a τ_0: a full pass replacing
// every disjoint match, starting from a random anchor (§5.3).
type RuleTransformation struct {
	Rule *rewrite.Rule
}

func (t *RuleTransformation) Name() string     { return "rule:" + t.Rule.Name }
func (t *RuleTransformation) Epsilon() float64 { return 0 }
func (t *RuleTransformation) Slow() bool       { return false }

func (t *RuleTransformation) Apply(c *circuit.Circuit, _ float64, rng *rand.Rand) (*circuit.Circuit, float64, bool) {
	if c.Len() == 0 {
		return c, 0, false
	}
	out, n := rewrite.FullPass(c, t.Rule, rng.Intn(c.Len()))
	if n == 0 {
		return c, 0, false
	}
	return out, 0, true
}

// ApplyEngine implements EngineApplier: the same full pass, but matched
// through the engine's per-rule cache and applied as in-place splices.
func (t *RuleTransformation) ApplyEngine(e *rewrite.Engine, _ float64, rng *rand.Rand) (float64, bool) {
	c := e.Circuit()
	if c.Len() == 0 {
		return 0, false
	}
	n := e.FullPass(t.Rule, rng.Intn(c.Len()))
	return 0, n > 0
}

// CleanupTransformation wraps the normalization pass as a τ_0.
type CleanupTransformation struct {
	GateSetName string
}

func (t *CleanupTransformation) Name() string     { return "cleanup" }
func (t *CleanupTransformation) Epsilon() float64 { return 0 }
func (t *CleanupTransformation) Slow() bool       { return false }

func (t *CleanupTransformation) Apply(c *circuit.Circuit, _ float64, _ *rand.Rand) (*circuit.Circuit, float64, bool) {
	out, changed := rewrite.CleanupChanged(c, t.GateSetName)
	if changed == 0 {
		return c, 0, false
	}
	return out, 0, true
}

// ApplyEngine implements EngineApplier: a whole-circuit pass adopted via
// SetCircuit (full cache invalidation) only when it changed something.
func (t *CleanupTransformation) ApplyEngine(e *rewrite.Engine, _ float64, _ *rand.Rand) (float64, bool) {
	out, changed := rewrite.CleanupChanged(e.Circuit(), t.GateSetName)
	if changed == 0 {
		return 0, false
	}
	e.SetCircuit(out)
	return 0, true
}

// FuseTransformation wraps single-qubit fusion as a τ_0 (continuous sets).
type FuseTransformation struct {
	GateSet *gateset.GateSet
}

func (t *FuseTransformation) Name() string     { return "fuse1q" }
func (t *FuseTransformation) Epsilon() float64 { return 0 }
func (t *FuseTransformation) Slow() bool       { return false }

func (t *FuseTransformation) Apply(c *circuit.Circuit, _ float64, _ *rand.Rand) (*circuit.Circuit, float64, bool) {
	out, changed := rewrite.Fuse1QChanged(c, t.GateSet)
	if changed == 0 {
		return c, 0, false
	}
	return out, 0, true
}

// ApplyEngine implements EngineApplier.
func (t *FuseTransformation) ApplyEngine(e *rewrite.Engine, _ float64, _ *rand.Rand) (float64, bool) {
	out, changed := rewrite.Fuse1QChanged(e.Circuit(), t.GateSet)
	if changed == 0 {
		return 0, false
	}
	e.SetCircuit(out)
	return 0, true
}

// PhaseFoldTransformation wraps global phase folding as a τ_0. It is cheap,
// exact, and particularly potent on Clifford+T circuits.
type PhaseFoldTransformation struct {
	GateSetName string
	// Fold runs the pass and reports how many sites it changed; zero means
	// the output is structurally identical to the input.
	Fold func(*circuit.Circuit, string) (*circuit.Circuit, int)
}

func (t *PhaseFoldTransformation) Name() string     { return "phasefold" }
func (t *PhaseFoldTransformation) Epsilon() float64 { return 0 }
func (t *PhaseFoldTransformation) Slow() bool       { return false }

func (t *PhaseFoldTransformation) Apply(c *circuit.Circuit, _ float64, _ *rand.Rand) (*circuit.Circuit, float64, bool) {
	out, changed := t.Fold(c, t.GateSetName)
	if changed == 0 {
		return c, 0, false
	}
	return out, 0, true
}

// ApplyEngine implements EngineApplier.
func (t *PhaseFoldTransformation) ApplyEngine(e *rewrite.Engine, _ float64, _ *rand.Rand) (float64, bool) {
	out, changed := t.Fold(e.Circuit(), t.GateSetName)
	if changed == 0 {
		return 0, false
	}
	e.SetCircuit(out)
	return 0, true
}

// ---------------------------------------------------------------------------

// ResynthTransformation is the τ_ε for resynthesis (§4.1): grow a random
// convex subcircuit up to MaxQubits qubits (§5.3), compute its unitary, and
// invoke unitary synthesis with the allowed tolerance.
type ResynthTransformation struct {
	Synth synth.Synthesizer
	// MaxQubits limits subcircuit width (3 in the paper's instantiation).
	MaxQubits int
	// DeclaredEps is the per-application error class; the admission check
	// of Alg. 1 line 6 uses this value.
	DeclaredEps float64
}

func (t *ResynthTransformation) Name() string     { return "resynth:" + t.Synth.Name() }
func (t *ResynthTransformation) Epsilon() float64 { return t.DeclaredEps }
func (t *ResynthTransformation) Slow() bool       { return true }

// propose runs the whole resynthesis pipeline short of the final splice:
// sample a region, synthesize its unitary, and verify the achieved error.
func (t *ResynthTransformation) propose(c *circuit.Circuit, allowedEps float64, rng *rand.Rand) (*circuit.Region, *circuit.Circuit, float64, bool) {
	// Sample the region width: 2-qubit regions synthesize in milliseconds
	// (0..3 CX by the KAK bound), 3-qubit ones are the slow deep calls, so
	// the mix keeps resynthesis throughput high at compressed budgets while
	// preserving the paper's ≤3-qubit limit.
	width := t.MaxQubits
	if width >= 3 && rng.Intn(2) == 0 {
		width = 2
	}
	region := circuit.RandomRegion(c, width, 0, rng)
	if region == nil || len(region.Indices) < 2 {
		return nil, nil, 0, false
	}
	sub := region.Extract(c)
	eps := t.DeclaredEps
	if allowedEps < eps {
		eps = allowedEps
	}
	if eps < 0 {
		return nil, nil, 0, false
	}
	target := sub.Unitary()
	replacement, err := t.Synth.Synthesize(target, sub.NumQubits, eps)
	if err != nil {
		return nil, nil, 0, false
	}
	// Account the error actually incurred, not the declared class.
	actual := linalg.HSDistance(target, replacement.Unitary())
	if actual > eps {
		return nil, nil, 0, false
	}
	return region, replacement, actual, true
}

func (t *ResynthTransformation) Apply(c *circuit.Circuit, allowedEps float64, rng *rand.Rand) (*circuit.Circuit, float64, bool) {
	region, replacement, actual, ok := t.propose(c, allowedEps, rng)
	if !ok {
		return c, 0, false
	}
	return region.Replace(c, replacement), actual, true
}

// ApplyEngine implements EngineApplier: the region replacement goes through
// the engine, so the splice is transaction-logged and its halo invalidated
// like any rewrite — resynthesis moves keep the match caches sound.
func (t *ResynthTransformation) ApplyEngine(e *rewrite.Engine, allowedEps float64, rng *rand.Rand) (float64, bool) {
	region, replacement, actual, ok := t.propose(e.Circuit(), allowedEps, rng)
	if !ok {
		return 0, false
	}
	e.ReplaceRegion(region, replacement)
	return actual, true
}
