// Package opt implements the paper's core contribution: the unified
// framework of circuit transformations (§4) and the GUOQ stochastic
// optimization algorithm (§5, Alg. 1), plus the ablation variants used in
// Q2/Q3 (rewrite-only, resynth-only, sequential orderings, beam search).
package opt

import (
	"context"
	"math/rand"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/linalg"
	"github.com/guoq-dev/guoq/internal/rewrite"
	"github.com/guoq-dev/guoq/internal/synth"
)

// Transformation is the τ_ε abstraction of Def. 4.1: a closed-box function
// from circuits to ε-equivalent circuits. Epsilon is the declared error
// class used for budget admission (Alg. 1 line 6); Apply additionally
// reports the error actually incurred, which is what the loop accumulates
// (the achieved Δ of each step is what Thm 4.2 sums).
type Transformation interface {
	// Name identifies the transformation in logs.
	Name() string
	// Epsilon is the declared worst-case error of one application.
	Epsilon() float64
	// Slow reports whether this is a "slow" (resynthesis-class)
	// transformation for the 1.5% / 98.5% weighting of §5.3.
	Slow() bool
	// Apply attempts one application to a randomly chosen location,
	// returning the transformed circuit, the error incurred, and whether
	// anything was attempted. allowedEps caps the incurred error. The
	// returned circuit must be fresh (or the unmodified input when
	// ok = false): the search loop may adopt it into a mutable engine.
	Apply(c *circuit.Circuit, allowedEps float64, rng *rand.Rand) (out *circuit.Circuit, eps float64, ok bool)
}

// EngineApplier is the incremental fast path of a Transformation: an
// application against a persistent rewrite.Engine, mutating its circuit in
// place instead of producing a fresh copy. The GUOQ loop threads one
// Engine per worker through its iterations and uses this path whenever a
// transformation supports it — committing on acceptance, rolling back on
// rejection. Implementations must leave the engine untouched when they
// report ok = false, must route every mutation through the engine (so its
// DAG and rule-match caches stay sound), and must consume exactly the same
// rng stream as Apply so engine-backed runs stay bit-for-bit reproducible.
type EngineApplier interface {
	ApplyEngine(e *rewrite.Engine, allowedEps float64, rng *rand.Rand) (eps float64, ok bool)
}

// ContextApplier is the cancellation-aware path of a Transformation: an
// application that observes ctx and returns early (ok = false) when it is
// cancelled, instead of running to its own internal deadline. The search
// loop uses this path for slow transformations so a cancelled run stops
// within one optimizer sweep rather than draining a full synthesis
// deadline. Implementations must consume exactly the same rng stream as
// Apply — context checks may not draw randomness — so runs that are never
// cancelled stay bit-identical.
type ContextApplier interface {
	ApplyContext(ctx context.Context, c *circuit.Circuit, allowedEps float64, rng *rand.Rand) (out *circuit.Circuit, eps float64, ok bool)
}

// EngineContextApplier combines the engine fast path with cancellation.
type EngineContextApplier interface {
	ApplyEngineContext(ctx context.Context, e *rewrite.Engine, allowedEps float64, rng *rand.Rand) (eps float64, ok bool)
}

// ---------------------------------------------------------------------------

// RuleTransformation wraps one rewrite rule as a τ_0: a full pass replacing
// every disjoint match, starting from a random anchor (§5.3).
type RuleTransformation struct {
	Rule *rewrite.Rule
}

func (t *RuleTransformation) Name() string     { return "rule:" + t.Rule.Name }
func (t *RuleTransformation) Epsilon() float64 { return 0 }
func (t *RuleTransformation) Slow() bool       { return false }

func (t *RuleTransformation) Apply(c *circuit.Circuit, _ float64, rng *rand.Rand) (*circuit.Circuit, float64, bool) {
	if c.Len() == 0 {
		return c, 0, false
	}
	out, n := rewrite.FullPass(c, t.Rule, rng.Intn(c.Len()))
	if n == 0 {
		return c, 0, false
	}
	return out, 0, true
}

// ApplyEngine implements EngineApplier: the same full pass, but matched
// through the engine's per-rule cache and applied as in-place splices.
func (t *RuleTransformation) ApplyEngine(e *rewrite.Engine, _ float64, rng *rand.Rand) (float64, bool) {
	c := e.Circuit()
	if c.Len() == 0 {
		return 0, false
	}
	n := e.FullPass(t.Rule, rng.Intn(c.Len()))
	return 0, n > 0
}

// CleanupTransformation wraps the normalization pass as a τ_0. GateSet,
// when non-nil, carries the resolved target so the pass emits natively
// even for ad-hoc sets that are not name-addressable; GateSetName alone
// resolves through the registry.
type CleanupTransformation struct {
	GateSetName string
	GateSet     *gateset.GateSet
}

func (t *CleanupTransformation) Name() string     { return "cleanup" }
func (t *CleanupTransformation) Epsilon() float64 { return 0 }
func (t *CleanupTransformation) Slow() bool       { return false }

func (t *CleanupTransformation) cleanup(c *circuit.Circuit) (*circuit.Circuit, int) {
	if t.GateSet != nil {
		return rewrite.CleanupChangedFor(c, t.GateSet)
	}
	return rewrite.CleanupChanged(c, t.GateSetName)
}

func (t *CleanupTransformation) Apply(c *circuit.Circuit, _ float64, _ *rand.Rand) (*circuit.Circuit, float64, bool) {
	out, changed := t.cleanup(c)
	if changed == 0 {
		return c, 0, false
	}
	return out, 0, true
}

// ApplyEngine implements EngineApplier: a whole-circuit pass adopted via
// SetCircuit (full cache invalidation) only when it changed something.
func (t *CleanupTransformation) ApplyEngine(e *rewrite.Engine, _ float64, _ *rand.Rand) (float64, bool) {
	out, changed := t.cleanup(e.Circuit())
	if changed == 0 {
		return 0, false
	}
	e.SetCircuit(out)
	return 0, true
}

// FuseTransformation wraps single-qubit fusion as a τ_0 (continuous sets).
type FuseTransformation struct {
	GateSet *gateset.GateSet
}

func (t *FuseTransformation) Name() string     { return "fuse1q" }
func (t *FuseTransformation) Epsilon() float64 { return 0 }
func (t *FuseTransformation) Slow() bool       { return false }

func (t *FuseTransformation) Apply(c *circuit.Circuit, _ float64, _ *rand.Rand) (*circuit.Circuit, float64, bool) {
	out, changed := rewrite.Fuse1QChanged(c, t.GateSet)
	if changed == 0 {
		return c, 0, false
	}
	return out, 0, true
}

// ApplyEngine implements EngineApplier.
func (t *FuseTransformation) ApplyEngine(e *rewrite.Engine, _ float64, _ *rand.Rand) (float64, bool) {
	out, changed := rewrite.Fuse1QChanged(e.Circuit(), t.GateSet)
	if changed == 0 {
		return 0, false
	}
	e.SetCircuit(out)
	return 0, true
}

// PhaseFoldTransformation wraps global phase folding as a τ_0. It is cheap,
// exact, and particularly potent on Clifford+T circuits.
type PhaseFoldTransformation struct {
	// GateSet is the resolved target whose diagonal vocabulary the fold
	// emits in.
	GateSet *gateset.GateSet
	// Fold runs the pass and reports how many sites it changed; zero means
	// the output is structurally identical to the input.
	Fold func(*circuit.Circuit, *gateset.GateSet) (*circuit.Circuit, int)
}

func (t *PhaseFoldTransformation) Name() string     { return "phasefold" }
func (t *PhaseFoldTransformation) Epsilon() float64 { return 0 }
func (t *PhaseFoldTransformation) Slow() bool       { return false }

func (t *PhaseFoldTransformation) Apply(c *circuit.Circuit, _ float64, _ *rand.Rand) (*circuit.Circuit, float64, bool) {
	out, changed := t.Fold(c, t.GateSet)
	if changed == 0 {
		return c, 0, false
	}
	return out, 0, true
}

// ApplyEngine implements EngineApplier.
func (t *PhaseFoldTransformation) ApplyEngine(e *rewrite.Engine, _ float64, _ *rand.Rand) (float64, bool) {
	out, changed := t.Fold(e.Circuit(), t.GateSet)
	if changed == 0 {
		return 0, false
	}
	e.SetCircuit(out)
	return 0, true
}

// ---------------------------------------------------------------------------

// ResynthTransformation is the τ_ε for resynthesis (§4.1): grow a random
// convex subcircuit up to MaxQubits qubits (§5.3), compute its unitary, and
// invoke unitary synthesis with the allowed tolerance.
type ResynthTransformation struct {
	Synth synth.Synthesizer
	// MaxQubits limits subcircuit width (3 in the paper's instantiation).
	MaxQubits int
	// DeclaredEps is the per-application error class; the admission check
	// of Alg. 1 line 6 uses this value.
	DeclaredEps float64
}

func (t *ResynthTransformation) Name() string     { return "resynth:" + t.Synth.Name() }
func (t *ResynthTransformation) Epsilon() float64 { return t.DeclaredEps }
func (t *ResynthTransformation) Slow() bool       { return true }

// propose runs the whole resynthesis pipeline short of the final splice:
// sample a region, synthesize its unitary, and verify the achieved error.
// ctx cancels the synthesis call itself (for synthesizers that support it),
// so a cancelled search stops mid-call instead of draining the deadline.
func (t *ResynthTransformation) propose(ctx context.Context, c *circuit.Circuit, allowedEps float64, rng *rand.Rand) (*circuit.Region, *circuit.Circuit, float64, bool) {
	// Sample the region width: 2-qubit regions synthesize in milliseconds
	// (0..3 CX by the KAK bound), 3-qubit ones are the slow deep calls, so
	// the mix keeps resynthesis throughput high at compressed budgets while
	// preserving the paper's ≤3-qubit limit.
	width := t.MaxQubits
	if width >= 3 && rng.Intn(2) == 0 {
		width = 2
	}
	region := circuit.RandomRegion(c, width, 0, rng)
	if region == nil || len(region.Indices) < 2 {
		return nil, nil, 0, false
	}
	sub := region.Extract(c)
	eps := t.DeclaredEps
	if allowedEps < eps {
		eps = allowedEps
	}
	if eps < 0 {
		return nil, nil, 0, false
	}
	target := sub.Unitary()
	replacement, err := synth.SynthesizeContext(ctx, t.Synth, target, sub.NumQubits, eps)
	if err != nil {
		return nil, nil, 0, false
	}
	// Account the error actually incurred, not the declared class.
	actual := linalg.HSDistance(target, replacement.Unitary())
	if actual > eps {
		return nil, nil, 0, false
	}
	return region, replacement, actual, true
}

func (t *ResynthTransformation) Apply(c *circuit.Circuit, allowedEps float64, rng *rand.Rand) (*circuit.Circuit, float64, bool) {
	return t.ApplyContext(context.Background(), c, allowedEps, rng)
}

// ApplyContext implements ContextApplier: cancelling ctx aborts the
// in-flight synthesis call.
func (t *ResynthTransformation) ApplyContext(ctx context.Context, c *circuit.Circuit, allowedEps float64, rng *rand.Rand) (*circuit.Circuit, float64, bool) {
	region, replacement, actual, ok := t.propose(ctx, c, allowedEps, rng)
	if !ok {
		return c, 0, false
	}
	return region.Replace(c, replacement), actual, true
}

// ApplyEngine implements EngineApplier: the region replacement goes through
// the engine, so the splice is transaction-logged and its halo invalidated
// like any rewrite — resynthesis moves keep the match caches sound.
func (t *ResynthTransformation) ApplyEngine(e *rewrite.Engine, allowedEps float64, rng *rand.Rand) (float64, bool) {
	return t.ApplyEngineContext(context.Background(), e, allowedEps, rng)
}

// ApplyEngineContext implements EngineContextApplier.
func (t *ResynthTransformation) ApplyEngineContext(ctx context.Context, e *rewrite.Engine, allowedEps float64, rng *rand.Rand) (float64, bool) {
	region, replacement, actual, ok := t.propose(ctx, e.Circuit(), allowedEps, rng)
	if !ok {
		return 0, false
	}
	e.ReplaceRegion(region, replacement)
	return actual, true
}

// ---------------------------------------------------------------------------

// CircuitSynthesizer is the circuit-level slow extension point behind the
// public API's Synthesizer interface: given an extracted subcircuit and an
// error allowance, propose a replacement and report the ε it consumed. The
// framework treats the report as a claim, not a fact — see
// CircuitResynthTransformation for the verification that makes a
// user-supplied synthesizer unable to corrupt the Thm 4.2 accounting.
type CircuitSynthesizer interface {
	// Name identifies the synthesizer in logs.
	Name() string
	// Synthesize proposes a replacement for sub within eps Hilbert–Schmidt
	// distance, reporting the error it believes it consumed. Returning an
	// error (synth.ErrNoSolution for "no proposal") keeps the original.
	Synthesize(ctx context.Context, sub *circuit.Circuit, eps float64) (replacement *circuit.Circuit, consumed float64, err error)
}

// CircuitResynthTransformation wraps a CircuitSynthesizer as a τ_ε exactly
// like built-in resynthesis: sample a random convex region, hand the
// extracted subcircuit to the synthesizer, splice the replacement back.
//
// The budget accounting never trusts the synthesizer: the achieved error is
// re-measured as the Hilbert–Schmidt distance between the region's unitary
// and the replacement's, and the transformation is rejected outright when
// either the measured error or the synthesizer's own claim exceeds the
// allowance (an over-reporting synthesizer cannot be admitted, and an
// under-reporting one cannot smuggle error past the budget — the charge is
// the maximum of measurement and claim). Replacements must also preserve
// qubit count and, when GateSet is set, stay native to it.
type CircuitResynthTransformation struct {
	Synth CircuitSynthesizer
	// MaxQubits limits subcircuit width (3, the paper's instantiation and
	// the practical bound for the unitary-distance verification).
	MaxQubits int
	// DeclaredEps is the per-application error class used for the
	// admission check of Alg. 1 line 6.
	DeclaredEps float64
	// GateSet, when set, rejects replacements with non-native gates, so a
	// careless synthesizer cannot push the search out of the target set.
	GateSet *gateset.GateSet
}

func (t *CircuitResynthTransformation) Name() string     { return "synth:" + t.Synth.Name() }
func (t *CircuitResynthTransformation) Epsilon() float64 { return t.DeclaredEps }
func (t *CircuitResynthTransformation) Slow() bool       { return true }

func (t *CircuitResynthTransformation) propose(ctx context.Context, c *circuit.Circuit, allowedEps float64, rng *rand.Rand) (*circuit.Region, *circuit.Circuit, float64, bool) {
	width := t.MaxQubits
	if width <= 0 {
		width = 3
	}
	if width >= 3 && rng.Intn(2) == 0 {
		width = 2
	}
	region := circuit.RandomRegion(c, width, 0, rng)
	if region == nil || len(region.Indices) < 2 {
		return nil, nil, 0, false
	}
	sub := region.Extract(c)
	eps := t.DeclaredEps
	if allowedEps < eps {
		eps = allowedEps
	}
	if eps < 0 {
		return nil, nil, 0, false
	}
	replacement, claimed, err := t.Synth.Synthesize(ctx, sub, eps)
	if err != nil || replacement == nil {
		return nil, nil, 0, false
	}
	if replacement.NumQubits != sub.NumQubits {
		return nil, nil, 0, false
	}
	if t.GateSet != nil && !t.GateSet.IsNative(replacement) {
		return nil, nil, 0, false
	}
	// Budget admission: the claim must fit the allowance (over-reporting is
	// rejected, not clamped), and so must the independently measured error.
	if claimed < 0 || claimed > eps {
		return nil, nil, 0, false
	}
	actual := linalg.HSDistance(sub.Unitary(), replacement.Unitary())
	if actual > eps {
		return nil, nil, 0, false
	}
	// Charge the worse of measurement and claim: sound under Thm 4.2 either
	// way, and honest synthesizers (claim == achieved bound ≥ actual) keep
	// their own accounting.
	if claimed > actual {
		actual = claimed
	}
	return region, replacement, actual, true
}

func (t *CircuitResynthTransformation) Apply(c *circuit.Circuit, allowedEps float64, rng *rand.Rand) (*circuit.Circuit, float64, bool) {
	return t.ApplyContext(context.Background(), c, allowedEps, rng)
}

// ApplyContext implements ContextApplier.
func (t *CircuitResynthTransformation) ApplyContext(ctx context.Context, c *circuit.Circuit, allowedEps float64, rng *rand.Rand) (*circuit.Circuit, float64, bool) {
	region, replacement, actual, ok := t.propose(ctx, c, allowedEps, rng)
	if !ok {
		return c, 0, false
	}
	return region.Replace(c, replacement), actual, true
}

// ApplyEngine implements EngineApplier.
func (t *CircuitResynthTransformation) ApplyEngine(e *rewrite.Engine, allowedEps float64, rng *rand.Rand) (float64, bool) {
	return t.ApplyEngineContext(context.Background(), e, allowedEps, rng)
}

// ApplyEngineContext implements EngineContextApplier.
func (t *CircuitResynthTransformation) ApplyEngineContext(ctx context.Context, e *rewrite.Engine, allowedEps float64, rng *rand.Rand) (float64, bool) {
	region, replacement, actual, ok := t.propose(ctx, e.Circuit(), allowedEps, rng)
	if !ok {
		return 0, false
	}
	e.ReplaceRegion(region, replacement)
	return actual, true
}
