package opt

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/synth"
)

// Many clients sharing one pool: every client must get its own results
// back (routing is per-client, only the workers are shared), the
// one-in-flight discipline must hold, and stop must drain cleanly.
func TestResynthPoolRoutesResultsPerClient(t *testing.T) {
	pool := NewResynthPool(3)
	defer pool.Close()

	const clients = 8
	const jobsPerClient = 20
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cl := pool.newClient()
			defer cl.stop()
			for j := 0; j < jobsPerClient; j++ {
				// Tag each job with a client-unique error value and check it
				// round-trips: a cross-client delivery would surface as a
				// foreign tag.
				tag := float64(ci*1000 + j)
				cl.launch(nil, markerTransformation{}, nil, tag, 0, int64(j))
				if !cl.inFlight() {
					t.Errorf("client %d: launch %d not in flight", ci, j)
					return
				}
				// launch while busy must be a silent no-op.
				cl.launch(nil, markerTransformation{}, nil, -1, 0, 0)
				r := awaitResult(cl)
				if r.baseErr != tag {
					t.Errorf("client %d: got result tagged %v, want %v", ci, r.baseErr, tag)
					return
				}
				if cl.inFlight() {
					t.Errorf("client %d: still in flight after poll", ci)
					return
				}
			}
		}(ci)
	}
	wg.Wait()
}

// A closed pool rejects new launches instead of wedging the client: the
// client stays idle and stop returns immediately.
func TestResynthPoolClosedLaunchIsNoop(t *testing.T) {
	pool := NewResynthPool(1)
	cl := pool.newClient()
	pool.Close()
	cl.launch(nil, markerTransformation{}, nil, 1, 0, 0)
	if cl.inFlight() {
		t.Fatal("launch on a closed pool left the client busy")
	}
	cl.stop() // must not block
}

// The underlying synth.Pool must run every accepted job exactly once, even
// those still queued when Close is called.
func TestSynthPoolDrainsOnClose(t *testing.T) {
	pool := synth.NewPool(2)
	var mu sync.Mutex
	ran := 0
	const jobs = 50
	for i := 0; i < jobs; i++ {
		if !pool.Submit(func() { mu.Lock(); ran++; mu.Unlock() }) {
			t.Fatal("submit rejected before close")
		}
	}
	pool.Close()
	if ran != jobs {
		t.Fatalf("close drained %d of %d jobs", ran, jobs)
	}
	if pool.Submit(func() {}) {
		t.Fatal("submit accepted after close")
	}
}

func awaitResult(cl *poolClient) asyncResult {
	for {
		if r, ok := cl.poll(); ok {
			return r
		}
		runtime.Gosched()
	}
}

// markerTransformation is an inert slow transformation whose Apply returns
// no result; pool tests only observe the echoed baseErr tag.
type markerTransformation struct{}

func (markerTransformation) Name() string     { return "marker" }
func (markerTransformation) Slow() bool       { return true }
func (markerTransformation) Epsilon() float64 { return 0 }
func (markerTransformation) Apply(c *circuit.Circuit, allowed float64, r *rand.Rand) (*circuit.Circuit, float64, bool) {
	return nil, 0, false
}
