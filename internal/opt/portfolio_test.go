package opt

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/verify"
)

func eagleSetup(t *testing.T, seed int64, gates int) (*circuit.Circuit, []Transformation) {
	t.Helper()
	ts, err := Instantiate(gateset.IBMEagle, InstantiateOptions{
		EpsilonF:  1e-8,
		SynthTime: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.Random(5, gates, gateset.IBMEagle.Gates, rand.New(rand.NewSource(seed)))
	return c, ts
}

// Same seed ⇒ byte-identical output in synchronous single-worker mode: the
// reproducibility contract documented on Options.Seed.
func TestSynchronousDeterminism(t *testing.T) {
	c, ts := eagleSetup(t, 3, 50)
	run := func() string {
		opts := DefaultOptions()
		opts.Cost = TwoQubitCost()
		opts.Seed = 99
		opts.Async = false
		opts.TimeBudget = 0
		opts.MaxIters = 600
		return GUOQ(c, ts, opts).Best.WriteQASM()
	}
	first := run()
	for i := 0; i < 2; i++ {
		if got := run(); got != first {
			t.Fatalf("synchronous runs with equal seeds diverged:\n%s\nvs\n%s", first, got)
		}
	}
}

// Portfolio with one worker must degrade to the classic loop exactly.
func TestPortfolioSingleWorkerIsGUOQ(t *testing.T) {
	c, ts := eagleSetup(t, 4, 40)
	opts := DefaultOptions()
	opts.Cost = TwoQubitCost()
	opts.Seed = 5
	opts.Async = false
	opts.TimeBudget = 0
	opts.MaxIters = 300
	direct := GUOQ(c, ts, opts).Best.WriteQASM()
	viaPortfolio := Portfolio(c, ts, opts, 1).Best.WriteQASM()
	if direct != viaPortfolio {
		t.Fatal("Portfolio(workers=1) diverged from GUOQ with identical options")
	}
}

// The coordinator hands the global best only to workers that are strictly
// behind, and never regresses on a worse report.
func TestCoordinatorExchange(t *testing.T) {
	cost := TwoQubitCost()
	base := circuit.Random(4, 30, gateset.IBMEagle.Gates, rand.New(rand.NewSource(8)))
	better := circuit.New(4) // empty circuit: cost 0, unbeatable
	co := newCoordinator(base, cost, nil, nil, 0)

	if _, _, ok := co.Exchange(base, 0, cost(base)); ok {
		t.Fatal("exchange offered a solution no better than the caller's")
	}
	if _, _, ok := co.Exchange(better, 1e-9, cost(better)); ok {
		t.Fatal("exchange offered the publisher its own solution back")
	}
	adopt, adoptErr, ok := co.Exchange(base, 0, cost(base))
	if !ok || adopt != better || adoptErr != 1e-9 {
		t.Fatalf("exchange did not return the published best: ok=%v adopt=%p err=%g", ok, adopt, adoptErr)
	}
	// A stale worse report must not displace the stored best.
	if _, _, ok := co.Exchange(base, 0, cost(base)); !ok {
		t.Fatal("best was lost after a worse report")
	}
}

// countingExchanger counts upstream polls and never offers anything back —
// the "stuck remote session" the adaptive backoff is for.
type countingExchanger struct{ calls int }

func (e *countingExchanger) Exchange(*circuit.Circuit, float64, float64) (*circuit.Circuit, float64, bool) {
	e.calls++
	return nil, 0, false
}

// Unproductive upstream syncs must back the poll period off exponentially
// (capped at 16× the configured base), and any productive sync — here a
// pushed local improvement — must reset it.
func TestCoordinatorUpstreamBackoff(t *testing.T) {
	cost := TwoQubitCost()
	base := circuit.Random(4, 30, gateset.IBMEagle.Gates, rand.New(rand.NewSource(8)))
	up := &countingExchanger{}
	co := newCoordinator(base, cost, nil, up, time.Hour)
	if co.syncWait != time.Hour {
		t.Fatalf("syncWait starts at %v, want the configured base", co.syncWait)
	}

	// Idle polls (no local improvement): each unproductive sync doubles the
	// wait, saturating at 16× base. The test rolls lastSync back to make
	// every poll due without sleeping.
	wants := []time.Duration{2, 4, 8, 16, 16, 16}
	for i, mult := range wants {
		co.lastSync = time.Now().Add(-32 * time.Hour)
		co.Exchange(base, 0, cost(base))
		if want := time.Duration(mult) * time.Hour; co.syncWait != want {
			t.Fatalf("after %d unproductive syncs: syncWait %v, want %v", i+1, co.syncWait, want)
		}
	}
	if up.calls != len(wants) {
		t.Fatalf("upstream polled %d times, want %d", up.calls, len(wants))
	}

	// A local improvement syncs immediately (no matter the wait) and, being
	// productive, resets the period to the base.
	better := circuit.New(4)
	co.Exchange(better, 0, cost(better))
	if up.calls != len(wants)+1 {
		t.Fatal("local improvement was not pushed upstream immediately")
	}
	if co.syncWait != time.Hour {
		t.Fatalf("productive sync left syncWait at %v, want reset to base", co.syncWait)
	}

	// The zero value selects the documented 100 ms default.
	if d := newCoordinator(base, cost, nil, up, 0); d.syncBase != upstreamSyncDefault {
		t.Fatalf("default sync base %v, want %v", d.syncBase, upstreamSyncDefault)
	}
}

// Exercises the coordinator and the async resynthesis worker together
// under concurrency — the main subject of `go test -race ./internal/opt`.
func TestPortfolioConcurrentWithAsync(t *testing.T) {
	c, ts := eagleSetup(t, 6, 60)
	opts := DefaultOptions()
	opts.Cost = TwoQubitCost()
	opts.Seed = 2
	opts.Async = true
	opts.TimeBudget = 150 * time.Millisecond
	opts.ExchangeEvery = 8 // high migration pressure
	res := Portfolio(c, ts, opts, 4)
	if res.Best == nil || res.Iters == 0 {
		t.Fatal("portfolio did no work")
	}
	if res.BestError > opts.Epsilon {
		t.Fatalf("BestError %g exceeds budget %g", res.BestError, opts.Epsilon)
	}
	if err := verify.MustBeEquivalent(c, res.Best, 1e-6, 3); err != nil {
		t.Fatal(err)
	}
	if got, in := opts.Cost(res.Best), opts.Cost(c); got > in {
		t.Fatalf("cost regressed: %g -> %g", in, got)
	}
}

// Concurrent portfolios over the same shared transformation set: the
// transformations themselves must be safe to share between engines.
func TestSharedTransformationsAcrossPortfolios(t *testing.T) {
	c, ts := eagleSetup(t, 9, 40)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			opts := DefaultOptions()
			opts.Cost = TwoQubitCost()
			opts.Seed = seed
			opts.TimeBudget = 80 * time.Millisecond
			Portfolio(c, ts, opts, 2)
		}(int64(i))
	}
	wg.Wait()
}

// Partition-parallel must stitch an equivalent circuit and keep the summed
// per-window error within the global budget (Thm 4.2 composition).
func TestPartitionParallelComposition(t *testing.T) {
	c, ts := eagleSetup(t, 11, 96) // 4 windows of minWindowGates
	opts := DefaultOptions()
	opts.Cost = TwoQubitCost()
	opts.Seed = 13
	opts.TimeBudget = 150 * time.Millisecond
	res := PartitionParallel(c, ts, opts, 4)
	if res.Best.NumQubits != c.NumQubits {
		t.Fatalf("qubit count changed: %d -> %d", c.NumQubits, res.Best.NumQubits)
	}
	if res.BestError > opts.Epsilon {
		t.Fatalf("summed window error %g exceeds global budget %g", res.BestError, opts.Epsilon)
	}
	if got, in := opts.Cost(res.Best), opts.Cost(c); got > in {
		t.Fatalf("cost regressed: %g -> %g", in, got)
	}
	if err := verify.MustBeEquivalent(c, res.Best, 1e-6, 17); err != nil {
		t.Fatal(err)
	}
}

// stubSlow is a controllable slow transformation for accounting tests.
type stubSlow struct{ eps float64 }

func (s stubSlow) Name() string     { return "stub-slow" }
func (s stubSlow) Epsilon() float64 { return s.eps }
func (s stubSlow) Slow() bool       { return true }
func (s stubSlow) Apply(c *circuit.Circuit, _ float64, _ *rand.Rand) (*circuit.Circuit, float64, bool) {
	return c.Clone(), s.eps, true
}

// The async worker must report results against the error base the job was
// launched with: an exchange adoption can replace the loop's accumulated
// error while a job is in flight, and charging the job's eps against the
// adopted (smaller) base would understate the true bound and let the loop
// overspend the hard ε budget.
func TestAsyncWorkerCarriesErrorBase(t *testing.T) {
	w := newAsyncWorker()
	defer w.stop()
	w.launch(context.Background(), stubSlow{eps: 0.125}, circuit.New(1), 0.25, 0.5, 1)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if r, ready := w.poll(); ready {
			if !r.ok || r.baseErr != 0.25 || r.eps != 0.125 {
				t.Fatalf("result = {ok:%v baseErr:%g eps:%g}, want {true 0.25 0.125}", r.ok, r.baseErr, r.eps)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("async result never arrived")
		}
		time.Sleep(time.Millisecond)
	}
}

// fakeUpstream is a canned remote coordinator: it always offers the same
// solution and records what was published to it.
type fakeUpstream struct {
	mu        sync.Mutex
	offer     *circuit.Circuit
	offerErr  float64
	offerCost float64
	published int
	bestSeen  float64
}

func (f *fakeUpstream) Exchange(best *circuit.Circuit, bestErr, bestCost float64) (*circuit.Circuit, float64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.published++
	if f.published == 1 || bestCost < f.bestSeen {
		f.bestSeen = bestCost
	}
	if f.offer != nil && f.offerCost < bestCost {
		return f.offer, f.offerErr, true
	}
	return nil, 0, false
}

// A portfolio with Options.Exchanger set relays through it: remote
// solutions flow into the workers (counted as migrations) and the
// portfolio's own best is published outward.
func TestPortfolioUpstreamExchanger(t *testing.T) {
	c, ts := eagleSetup(t, 7, 40)
	up := &fakeUpstream{offer: circuit.New(5), offerErr: 3e-9, offerCost: 0}
	opts := DefaultOptions()
	opts.Cost = TwoQubitCost()
	opts.Seed = 21
	opts.TimeBudget = 0
	opts.MaxIters = 200
	opts.Async = false
	opts.Exchanger = up
	res := Portfolio(c, ts, opts, 2)

	if got := opts.Cost(res.Best); got != 0 {
		t.Fatalf("portfolio did not adopt the upstream offer: cost %g, want 0", got)
	}
	if res.BestError != 3e-9 {
		t.Fatalf("adopted solution lost its error bound: %g, want 3e-9", res.BestError)
	}
	if res.Migrations == 0 {
		t.Fatal("no migrations recorded despite upstream adoption")
	}
	up.mu.Lock()
	defer up.mu.Unlock()
	if up.published == 0 {
		t.Fatal("portfolio never published to the upstream coordinator")
	}
}

// Partition-parallel publishes its stitched result to an upstream
// exchanger (and adopts a strictly better remote solution), so -partition
// runs participate in a distributed session rather than dropping it.
func TestPartitionParallelUpstreamExchanger(t *testing.T) {
	c, ts := eagleSetup(t, 14, 96) // large enough to window
	up := &fakeUpstream{}
	opts := DefaultOptions()
	opts.Cost = TwoQubitCost()
	opts.Seed = 5
	opts.TimeBudget = 80 * time.Millisecond
	opts.Exchanger = up
	res := PartitionParallel(c, ts, opts, 4)

	up.mu.Lock()
	published, bestSeen := up.published, up.bestSeen
	up.mu.Unlock()
	if published == 0 {
		t.Fatal("partition-parallel never published to the upstream coordinator")
	}
	if got := opts.Cost(res.Best); bestSeen != got {
		t.Fatalf("published cost %g does not match the returned result's %g", bestSeen, got)
	}
}

// Circuits too small to window must silently fall back to the portfolio.
func TestPartitionParallelSmallCircuitFallback(t *testing.T) {
	c, ts := eagleSetup(t, 12, 20) // below 2×minWindowGates
	opts := DefaultOptions()
	opts.Cost = TwoQubitCost()
	opts.Seed = 1
	opts.TimeBudget = 60 * time.Millisecond
	res := PartitionParallel(c, ts, opts, 4)
	if err := verify.MustBeEquivalent(c, res.Best, 1e-6, 19); err != nil {
		t.Fatal(err)
	}
}
