package opt

import (
	"runtime"
	"sync"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/partition"
)

// AutoWorkers is the default portfolio size when the caller does not pick
// one: one worker per available CPU, capped at 8 (beyond that exchange
// contention outweighs the extra diversity).
func AutoWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	return w
}

// upstreamSyncDefault bounds how often an idle coordinator polls its
// upstream exchanger when Options.UpstreamSyncEvery is unset: local
// improvements are pushed immediately, but a coordinator whose workers are
// stuck still checks for remote progress at this period instead of on every
// worker exchange (which would hammer a networked upstream with no-op
// requests). Consecutive unproductive syncs back off exponentially up to
// upstreamSyncMaxBackoff times the base period, so a long-idle session
// converges to a slow keepalive instead of a fixed-rate poll; any
// productive sync — a pushed local improvement or an adopted remote one —
// resets the period.
const (
	upstreamSyncDefault    = 100 * time.Millisecond
	upstreamSyncMaxBackoff = 16
)

// coordinator is the portfolio's shared best-so-far store. Workers publish
// their best solution at exchange points and adopt the global best when it
// beats their current search point. Circuits handed to the coordinator are
// never mutated afterwards: each worker's search point lives inside its own
// rewrite.Engine, and everything a worker publishes is a snapshot (while
// adopted circuits are cloned back into the engine), so sharing pointers
// across workers is safe.
//
// When an upstream Exchanger is set (the networked guoqd coordinator of
// internal/dist), the coordinator forms a two-level hierarchy: workers
// exchange with the in-process coordinator at memory speed, and the
// coordinator relays to the upstream — pushing local improvements
// immediately and otherwise polling at most every upstreamSyncEvery.
type coordinator struct {
	mu      sync.Mutex
	cost    Cost             // guarded by mu
	best    *circuit.Circuit // guarded by mu
	bestErr float64          // guarded by mu
	bestVal float64          // guarded by mu

	upstream Exchanger
	lastSync time.Time     // guarded by mu
	syncBase time.Duration // configured idle-poll period
	syncWait time.Duration // current period, grown by unproductive syncs; guarded by mu

	start     time.Time
	onImprove func(elapsed time.Duration, best *circuit.Circuit)
	// cbMu serializes onImprove callbacks. The callback runs outside mu so
	// a slow consumer (a terminal write, a network relay) never stalls the
	// workers' exchange path; consecutive improvements may therefore be
	// observed slightly out of order under heavy contention.
	cbMu sync.Mutex
}

func newCoordinator(c *circuit.Circuit, cost Cost, onImprove func(time.Duration, *circuit.Circuit), upstream Exchanger, syncEvery time.Duration) *coordinator {
	if syncEvery <= 0 {
		syncEvery = upstreamSyncDefault
	}
	return &coordinator{
		cost:      cost,
		best:      c,
		bestErr:   0,
		bestVal:   cost(c),
		upstream:  upstream,
		syncBase:  syncEvery,
		syncWait:  syncEvery,
		start:     time.Now(),
		onImprove: onImprove,
	}
}

// Exchange implements Exchanger: record the worker's best, relay to the
// upstream coordinator when one is configured, and return the global best
// when it is strictly better than what the worker has.
func (co *coordinator) Exchange(best *circuit.Circuit, bestErr, bestCost float64) (*circuit.Circuit, float64, bool) {
	co.mu.Lock()
	improved := false
	if bestCost < co.bestVal {
		co.best, co.bestErr, co.bestVal = best, bestErr, bestCost
		improved = true
	}
	sync := co.upstream != nil && (improved || time.Since(co.lastSync) >= co.syncWait)
	if sync {
		co.lastSync = time.Now()
	}
	locBest, locErr, locVal := co.best, co.bestErr, co.bestVal
	co.mu.Unlock()

	if improved {
		co.notify(locBest)
	}
	if sync {
		// A sync is productive when it moves information either way: we
		// pushed a fresh local improvement, or we adopted a remote one.
		// Productive syncs reset the idle-poll period; unproductive ones
		// back it off exponentially (capped), so a stuck session stops
		// hammering a networked upstream with no-op requests.
		productive := improved
		if up, upErr, ok := co.upstream.Exchange(locBest, locErr, locVal); ok {
			if upVal := co.cost(up); upVal < locVal {
				co.mu.Lock()
				if upVal < co.bestVal {
					co.best, co.bestErr, co.bestVal = up, upErr, upVal
				}
				locBest, locErr, locVal = co.best, co.bestErr, co.bestVal
				co.mu.Unlock()
				co.notify(locBest)
				productive = true
			}
		}
		co.mu.Lock()
		if productive {
			co.syncWait = co.syncBase
		} else if co.syncWait < upstreamSyncMaxBackoff*co.syncBase {
			co.syncWait *= 2
			if co.syncWait > upstreamSyncMaxBackoff*co.syncBase {
				co.syncWait = upstreamSyncMaxBackoff * co.syncBase
			}
		}
		co.mu.Unlock()
	}

	if locVal < bestCost {
		return locBest, locErr, true
	}
	return nil, 0, false
}

// notify delivers an onImprove callback outside the exchange lock.
func (co *coordinator) notify(best *circuit.Circuit) {
	if co.onImprove == nil {
		return
	}
	co.cbMu.Lock()
	defer co.cbMu.Unlock()
	co.onImprove(time.Since(co.start), best)
}

// Portfolio runs `workers` concurrent GUOQ searches over the same circuit
// with diversified seeds and temperatures, periodically exchanging the
// best-so-far solution through a coordinator (POPQC-style parallel
// portfolio). Every worker's solution is individually ε-bounded, and
// migration transfers the solution together with its accumulated error
// bound, so the returned BestError ≤ opts.Epsilon holds exactly as in the
// single-worker case. workers ≤ 1 degrades to the classic loop.
//
// When opts.Exchanger is set it becomes the coordinator's upstream: the
// portfolio joins a multi-machine search (internal/dist), relaying its
// local best outward and adopting remote improvements, while workers keep
// exchanging in-process.
//
// The portfolio is not deterministic across runs (exchange points depend
// on wall-clock interleaving); use the synchronous single-worker mode when
// byte-identical reproducibility matters.
func Portfolio(c *circuit.Circuit, ts []Transformation, opts Options, workers int) *Result {
	if workers <= 1 {
		return GUOQ(c, ts, opts)
	}
	if opts.Cost == nil {
		opts.Cost = TwoQubitCost()
	}
	start := time.Now()
	// One resynthesis pool shared by every member: each still holds one
	// call in flight (§5.3), but the pool bounds how many run at once and
	// steals work across members, instead of each member spawning a private
	// synthesis goroutine. A caller-supplied pool (a fixpoint run sharing
	// with its fallback portfolio) is reused as-is.
	if opts.Async && opts.Pool == nil && len(FilterSlow(ts)) > 0 && len(FilterFast(ts)) > 0 {
		pool := NewResynthPoolMetrics(workers, opts.Metrics)
		defer pool.Close()
		opts.Pool = pool
	}
	co := newCoordinator(c, opts.Cost, opts.OnImprove, opts.Exchanger, opts.UpstreamSyncEvery)

	// The adaptive controller taps every worker's event stream and steers
	// through the unexported Options hooks; without AdaptivePortfolio no
	// hook is wired and the static temperature rungs stand alone.
	var ctrl *adaptiveController
	if opts.AdaptivePortfolio {
		ctrl = newAdaptiveController(workers)
	}

	results := make([]*Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wOpts := opts
		wOpts.Seed = opts.Seed + int64(w)*0x9E3779B9
		wOpts.Temperature *= tempRung(w)
		wOpts.Exchanger = nil
		if opts.ExchangeEvery >= 0 {
			wOpts.Exchanger = co
		}
		wOpts.OnImprove = nil // routed through the coordinator
		if opts.OnEvent != nil {
			// Tag every event with its worker index; the consumer aggregates
			// the latest event per worker. Improvement events keep their Best
			// snapshot — a worker-local best is still a valid whole-circuit
			// solution with its own ε bound.
			ev, wid := opts.OnEvent, w
			wOpts.OnEvent = func(e Event) {
				e.Worker = wid
				ev(e)
			}
		}
		if ctrl != nil {
			// Feed the controller ahead of the caller's consumer, and give
			// this worker its steering hooks. The wrapper keeps OnEvent
			// non-nil even without a caller hook, so heartbeats — the
			// controller's clock — always flow.
			ev, wid := wOpts.OnEvent, w
			wOpts.OnEvent = func(e Event) {
				e.Worker = wid
				ctrl.observe(e)
				if ev != nil {
					ev(e)
				}
			}
			wOpts.tempScale = func() float64 { return ctrl.scale(wid) }
			wOpts.parkPoint = func() { ctrl.parkPoint(wid) }
		}
		wg.Add(1)
		go func(w int, o Options) {
			defer wg.Done()
			results[w] = GUOQ(c, ts, o)
		}(w, wOpts)
	}
	wg.Wait()

	merged := &Result{Best: c, BestError: 0}
	bestCost := opts.Cost(c)
	for _, r := range results {
		merged.Iters += r.Iters
		merged.Accepted += r.Accepted
		merged.Migrations += r.Migrations
		merged.MergeRules(r)
		cost := opts.Cost(r.Best)
		if cost < bestCost || (cost == bestCost && r.BestError < merged.BestError) {
			merged.Best, merged.BestError, bestCost = r.Best, r.BestError, cost
		}
	}
	// Workers only publish at exchange points, so improvements found after
	// a worker's last poll reach the merged result but not the coordinator
	// (or its upstream); publish the final best so the OnImprove series and
	// the remote session both end at Result.Best.
	if adopt, adoptErr, ok := co.Exchange(merged.Best, merged.BestError, bestCost); ok {
		// A remote peer may still be ahead of everything this portfolio
		// found; returning its solution keeps the multi-machine contract
		// "every participant ends at the global best".
		if cost := opts.Cost(adopt); cost < bestCost {
			merged.Best, merged.BestError = adopt, adoptErr
			merged.Migrations++
		}
	}
	merged.Elapsed = time.Since(start)
	return merged
}

// minWindowGates is the smallest time window worth optimizing on its own;
// slimmer windows leave too little context for rules or resynthesis.
const minWindowGates = 24

// PartitionParallel splits the circuit into up to `workers` disjoint time
// windows (internal/partition), optimizes every window concurrently with
// its own GUOQ search, and stitches the results back in order. The global
// ε budget is divided evenly across windows and the achieved per-window
// errors are summed into BestError, which is sound by the composition
// argument of Thm 4.2: replacing disjoint windows with ε_i-equivalent
// subcircuits yields a circuit within Σ ε_i of the original.
//
// Circuits too small to window (or workers ≤ 1) fall back to a portfolio
// run, so callers can treat this as the "large circuit" strategy without
// pre-checking sizes.
func PartitionParallel(c *circuit.Circuit, ts []Transformation, opts Options, workers int) *Result {
	if opts.Cost == nil {
		opts.Cost = TwoQubitCost()
	}
	windows := partition.TimeWindows(c, workers, minWindowGates)
	if workers <= 1 || windows == nil {
		return Portfolio(c, ts, opts, workers)
	}
	start := time.Now()
	// Window workers share one resynthesis pool, exactly as in Portfolio.
	if opts.Async && opts.Pool == nil && len(FilterSlow(ts)) > 0 && len(FilterFast(ts)) > 0 {
		pool := NewResynthPoolMetrics(workers, opts.Metrics)
		defer pool.Close()
		opts.Pool = pool
	}
	epsPer := opts.Epsilon / float64(len(windows))

	type windowResult struct {
		res *Result
		sub *circuit.Circuit // the window's input, for the never-worse guard
	}
	outs := make([]windowResult, len(windows))
	var wg sync.WaitGroup
	for i, win := range windows {
		sub := win.Extract(c)
		wOpts := opts
		wOpts.Epsilon = epsPer
		wOpts.Seed = opts.Seed + int64(i)*0x9E3779B9
		wOpts.Exchanger = nil
		wOpts.OnImprove = nil // per-window improvements are not global ones
		if opts.OnEvent != nil {
			// Window workers report their counters for liveness, but a
			// window-local circuit is not a whole-circuit solution: strip
			// the snapshot so consumers never adopt it as a global best.
			ev, wid := opts.OnEvent, i
			wOpts.OnEvent = func(e Event) {
				e.Worker = wid
				e.Best = nil
				ev(e)
			}
		}
		wg.Add(1)
		go func(i int, sub *circuit.Circuit, o Options) {
			defer wg.Done()
			outs[i] = windowResult{res: GUOQ(sub, ts, o), sub: sub}
		}(i, sub, wOpts)
	}
	wg.Wait()

	res := &Result{}
	stitched := c
	// Replace back-to-front so earlier gate indices stay valid.
	for i := len(windows) - 1; i >= 0; i-- {
		wr := outs[i]
		res.Iters += wr.res.Iters
		res.Accepted += wr.res.Accepted
		res.MergeRules(wr.res)
		if opts.Cost(wr.res.Best) >= opts.Cost(wr.sub) {
			continue // no win: keep the window's original gates, spend no ε
		}
		stitched = windows[i].Replace(stitched, wr.res.Best)
		res.BestError += wr.res.BestError
	}
	res.Best = stitched
	if opts.Cost(stitched) > opts.Cost(c) {
		// The per-window costs are additive for every objective we ship, so
		// this should not trigger; the guard keeps the "never worse"
		// contract under exotic caller-supplied costs.
		res.Best, res.BestError = c, 0
	}
	// Window workers search their shards independently, but the stitched
	// whole-circuit result (summed bound ≤ opts.Epsilon) is a valid
	// session solution: publish it to a distributed coordinator and adopt
	// a remote solution that is strictly ahead, so -partition runs
	// participate in a multi-machine search instead of silently dropping
	// the Exchanger.
	if opts.Exchanger != nil {
		bestCost := opts.Cost(res.Best)
		if adopt, adoptErr, ok := opts.Exchanger.Exchange(res.Best, res.BestError, bestCost); ok {
			if opts.Cost(adopt) < bestCost {
				res.Best, res.BestError = adopt, adoptErr
				res.Migrations++
			}
		}
	}
	res.Elapsed = time.Since(start)
	return res
}
