package opt

import (
	"context"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/synth"
)

// ResynthPool is a shared pool of resynthesis workers for concurrent
// searches. Historically every portfolio member or partition window with
// Async ran its own background synthesis goroutine, so P searches admitted
// P simultaneous numerical searches regardless of core count. A ResynthPool
// caps that at its size while work-stealing across searches: every search
// still holds at most one resynthesis in flight (the §5.3 discipline), but
// a free pool worker picks up the next queued job from whichever search
// produced it. Wire one through Options.Pool; the same pool may back any
// number of searches and must outlive them all (Close only after every
// search using it has returned).
type ResynthPool struct {
	pool *synth.Pool
}

// NewResynthPool starts a pool with size workers (at least one).
func NewResynthPool(size int) *ResynthPool {
	return NewResynthPoolMetrics(size, nil)
}

// NewResynthPoolMetrics starts a pool whose queue depth, task count,
// steals, and task latency report into m's pool handles; nil m (or nil
// handles) disables instrumentation.
func NewResynthPoolMetrics(size int, m *Metrics) *ResynthPool {
	var pm *synth.PoolMetrics
	if m != nil {
		pm = &synth.PoolMetrics{
			QueueDepth:  m.PoolQueueDepth,
			Tasks:       m.PoolTasks,
			Steals:      m.PoolSteals,
			TaskSeconds: m.PoolTaskSeconds,
		}
	}
	return &ResynthPool{pool: synth.NewPoolMetrics(size, pm)}
}

// Close drains queued jobs and stops the workers. Callers must first stop
// every search using the pool (their deferred slowRunner.stop() drains each
// search's in-flight job).
func (p *ResynthPool) Close() { p.pool.Close() }

// newClient returns this search's handle on the pool: a slowRunner with
// the same one-in-flight discipline as the private asyncWorker, routing
// results back over a dedicated channel.
func (p *ResynthPool) newClient() *poolClient {
	return &poolClient{p: p, out: make(chan asyncResult, 1)}
}

type poolClient struct {
	p    *ResynthPool
	out  chan asyncResult
	busy bool
}

func (c *poolClient) launch(ctx context.Context, t Transformation, circ *circuit.Circuit, baseErr, allowed float64, seed int64) {
	if c.busy {
		return
	}
	job := asyncJob{ctx: ctx, t: t, c: circ, baseErr: baseErr, allowed: allowed, seed: seed}
	// The result channel has capacity 1 and the client holds one job at a
	// time, so the send never blocks a pool worker. Submit fails only when
	// the pool was closed early; the client then simply stays idle.
	if c.p.pool.Submit(func() { c.out <- runAsyncJob(job) }) {
		c.busy = true
	}
}

func (c *poolClient) poll() (asyncResult, bool) {
	select {
	case r := <-c.out:
		c.busy = false
		return r, true
	default:
		return asyncResult{}, false
	}
}

func (c *poolClient) inFlight() bool { return c.busy }

// stop drains the in-flight job, if any. Close accepts queued jobs, so a
// submitted job always eventually delivers its result.
func (c *poolClient) stop() {
	if c.busy {
		<-c.out
		c.busy = false
	}
}
