package opt

import (
	"context"
	"math"
	"math/rand"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/obs"
	"github.com/guoq-dev/guoq/internal/rewrite"
)

// Options configures a GUOQ run (Alg. 1 plus the implementation details of
// §5.3).
type Options struct {
	// Epsilon is the global error budget ε_f (hard constraint, Def. 5.2).
	Epsilon float64
	// Cost is the soft-constraint objective to minimize.
	Cost Cost
	// Temperature is the annealing hyperparameter t (10 in the paper —
	// a very small probability of accepting a worse solution).
	Temperature float64
	// ResynthProb is the probability of choosing a slow transformation
	// (0.015 in §5.3).
	ResynthProb float64
	// TimeBudget bounds the wall-clock search time (the paper uses 1 h; the
	// compressed experiments use 100 ms – 2 s).
	TimeBudget time.Duration
	// MaxIters bounds iterations (0 = unlimited); used by tests.
	MaxIters int
	// Seed drives all randomness; runs with equal seeds are reproducible
	// (in synchronous mode).
	Seed int64
	// Async applies resynthesis asynchronously (§5.3): rewrite moves keep
	// running while a synthesis call is in flight, and an accepted result
	// discards the interim rewrites. Synchronous mode is deterministic.
	Async bool
	// WarmStart applies every fast transformation once, deterministically,
	// before the stochastic loop (with the usual acceptance rule). The
	// randomized search reaches the same fixpoint given time; doing it up
	// front removes compressed-budget noise without changing the
	// algorithm's limit behaviour.
	WarmStart bool
	// OnImprove, when set, is invoked every time the best solution
	// improves — the hook behind the Fig. 7 time series.
	OnImprove func(elapsed time.Duration, best *circuit.Circuit)
	// Exchanger, when set, is polled every ExchangeEvery iterations with the
	// worker's best solution and its accumulated error bound. It may return
	// a replacement solution (with its own error bound) to adopt as the
	// current search point — the migration channel of the portfolio
	// coordinator, or of a remote guoqd coordinator (internal/dist).
	// Adoption is only performed when the replacement's cost beats the
	// worker's current cost, so a stale coordinator can never regress a
	// worker. The replacement must never be mutated by the callee afterwards.
	Exchanger Exchanger
	// ExchangeEvery is the polling period in iterations (default 64). A
	// negative value disables migration entirely: Portfolio workers then
	// search fully independently, which makes an iteration-bounded
	// synchronous portfolio deterministic (worker 0 reproduces the
	// equally-seeded single-worker run exactly).
	ExchangeEvery int
	// Context, when non-nil, cancels the search: the loop returns its
	// best-so-far (a valid, ε-bounded, never-worse solution) as soon as it
	// observes ctx.Done(). Cancellation composes with TimeBudget/MaxIters —
	// whichever fires first ends the run. Checking the context consumes no
	// randomness, so a run that is never cancelled is bit-identical to one
	// with a nil Context.
	Context context.Context
	// OnEvent, when set, receives progress events: one on every improvement
	// (Event.Best non-nil), a heartbeat every EventEvery iterations, and a
	// final event just before the run returns. Parallel modes invoke it
	// concurrently from several workers; implementations must be safe for
	// concurrent use and fast (the hook runs on the search's hot path).
	OnEvent func(Event)
	// EventEvery is the heartbeat period in iterations (default 256;
	// negative disables heartbeats — improvement and final events still
	// fire).
	EventEvery int
	// Pool, when set together with Async, runs this search's slow
	// transformations on the shared resynthesis pool instead of a private
	// background goroutine. Many concurrent searches (portfolio members,
	// fixpoint windows) then share one bounded set of synthesis workers —
	// work-stealing across searches — instead of each holding its own.
	// Each search still has at most one resynthesis in flight; the pool
	// bounds how many of those run simultaneously. Leaving Pool nil keeps
	// the historical one-goroutine-per-search behaviour (and seeded runs
	// bit-identical to it).
	Pool *ResynthPool
	// UpstreamSyncEvery is the minimum interval between a portfolio
	// group's syncs with an upstream exchanger (two-level hierarchy, e.g.
	// a remote guoqd coordinator). Zero means the 100 ms default;
	// unproductive syncs back off adaptively up to 16× this base. Only
	// meaningful for Portfolio/PartitionParallel runs with an Exchanger.
	UpstreamSyncEvery time.Duration
	// Metrics, when set, receives live instrumentation: iteration and
	// accept/reject counters attributed per transformation, proposal- and
	// synthesis-latency histograms, ε spend and best cost, and the
	// engine's cache counters (flushed at run end). One Metrics may back
	// any number of concurrent searches; nil disables instrumentation at
	// zero hot-path cost. Reading the clock for the latency histograms
	// consumes no randomness, so instrumented runs stay bit-identical to
	// uninstrumented ones.
	Metrics *Metrics
	// AdaptivePortfolio replaces the portfolio's static temperature rungs
	// with a feedback controller: each worker's acceptance-rate stream
	// (the Event heartbeats) retargets its effective temperature, and
	// workers whose searches stall are parked — throttled to a duty cycle —
	// until any worker improves the global best. Only meaningful for
	// Portfolio/PartitionParallel runs; off (the default) keeps the static
	// rungs, and single-worker seeded runs are bit-identical either way.
	AdaptivePortfolio bool

	// tempScale and parkPoint are the adaptive controller's steering hooks,
	// wired by Portfolio (never by callers — package-private so the
	// deterministic single-worker contract cannot be broken from outside).
	// tempScale returns the current multiplier applied to Temperature in
	// the acceptance rule; parkPoint runs once per iteration and may block
	// briefly to throttle a parked worker. Nil hooks cost nothing and
	// change nothing.
	tempScale func() float64
	parkPoint func()
}

// Event is a point-in-time progress report from a running search, emitted
// through Options.OnEvent. Counter fields are cumulative for the emitting
// worker; an aggregating consumer (the public Session) sums the latest
// event of each Worker.
type Event struct {
	// Worker identifies the emitting search: the portfolio worker index or
	// partition window index (0 for a single-worker run).
	Worker int
	// Elapsed is the time since this worker's search started.
	Elapsed time.Duration
	// Iters and Accepted are the worker's cumulative loop counters.
	Iters    int
	Accepted int
	// Migrations counts exchange adoptions so far.
	Migrations int
	// ResynthInFlight is the number of asynchronous resynthesis calls
	// currently running (0 or 1 per worker).
	ResynthInFlight int
	// BestCost and BestErr describe the worker's best-so-far solution.
	BestCost float64
	BestErr  float64
	// Best is set only on improvement events: a snapshot of the new best
	// circuit, safe to retain (never mutated afterwards). Heartbeat and
	// final events leave it nil. Partition windows also leave it nil —
	// a window-local circuit is not a whole-circuit solution.
	Best *circuit.Circuit
}

// searchDone returns the context's done channel, or nil (blocks forever in
// a select) when no context is configured.
func (o *Options) searchDone() <-chan struct{} {
	if o.Context == nil {
		return nil
	}
	return o.Context.Done()
}

// DefaultOptions mirrors the paper's instantiation: ε_f = 10⁻⁸, t = 10,
// 1.5% resynthesis.
func DefaultOptions() Options {
	return Options{
		Epsilon:     1e-8,
		Temperature: 10,
		ResynthProb: 0.015,
		TimeBudget:  time.Second,
	}
}

// Exchanger is a best-so-far store shared between concurrent searches. A
// worker publishes its best solution together with the solution's
// accumulated error bound and cost; the exchanger may return a strictly
// better solution (with its own error bound) for the worker to adopt.
// Implementations must be safe for concurrent use and must never mutate a
// circuit after handing it out. The in-process portfolio coordinator and
// the networked client of internal/dist both implement this interface.
type Exchanger interface {
	Exchange(best *circuit.Circuit, bestErr, bestCost float64) (adopt *circuit.Circuit, adoptErr float64, ok bool)
}

// Result reports a finished run.
type Result struct {
	Best      *circuit.Circuit
	BestError float64 // accumulated ε upper bound for Best (Thm 4.2)
	Iters     int
	Accepted  int
	// Migrations counts exchange adoptions: how many times the search
	// replaced its current point with a better solution received from the
	// Exchanger (0 without one).
	Migrations int
	Elapsed    time.Duration
	// Rules attributes the run's applications per transformation name:
	// how often each was attempted and how its candidates fared. Parallel
	// modes sum their workers' tables. Transformations sharing a name
	// (the resynthesis ε classes) share one line.
	Rules map[string]*RuleStats
}

// GUOQ runs Alg. 1: repeatedly sample a transformation and a random
// subcircuit, apply, and accept probabilistically based on cost, tracking
// the accumulated error against the ε_f budget.
//
// GUOQ is an anytime algorithm: Options.Context cancellation, the
// TimeBudget deadline, and MaxIters all end the run the same way — the
// strictly-improving best-so-far is returned with its accumulated bound
// and full statistics, so a cancelled run's Result is as trustworthy as a
// completed one's. (An in-flight asynchronous resynthesis call is drained
// before returning, bounded by the synthesizer's own time limit.)
//
// The loop threads one rewrite.Engine through its iterations: the current
// search point lives inside the engine, transformations that implement
// EngineApplier mutate it in place (reusing the engine's incremental DAG
// and per-rule match caches), and the acceptance decision becomes a commit
// or rollback of the engine's transaction log. Published circuits — the
// tracked best, exchange payloads, OnImprove arguments — are always
// snapshots, never the live engine circuit.
func GUOQ(c *circuit.Circuit, ts []Transformation, opts Options) *Result {
	if opts.Cost == nil {
		opts.Cost = TwoQubitCost()
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	start := time.Now()
	deadline := start.Add(opts.TimeBudget)

	// Metrics handles are resolved once up front; nil handles are no-ops,
	// so the loop below instruments unconditionally without branching on
	// "is metrics enabled" (except where it would pay for a clock read).
	m := opts.Metrics
	tally, tallyByName := newTally(ts, m)
	var iterC, migrC *obs.Counter
	var epsG, bestG *obs.Gauge
	var propH, synthH *obs.Histogram
	if m != nil {
		iterC, migrC = m.Iterations, m.Migrations
		epsG, bestG = m.EpsilonSpent, m.BestCost
		propH, synthH = m.ProposalSeconds, m.SynthSeconds
	}

	var fast, slow []Transformation
	for _, t := range ts {
		if t.Slow() {
			slow = append(slow, t)
		} else {
			fast = append(fast, t)
		}
	}

	eng := rewrite.NewEngine(c)
	curr := eng.Circuit() // stable pointer to the engine's live circuit
	currErr := 0.0
	currCost := opts.Cost(curr)
	best := eng.Snapshot()
	bestErr := 0.0
	bestCost := currCost

	res := &Result{}
	var worker slowRunner
	if opts.Async && len(slow) > 0 && len(fast) > 0 {
		if opts.Pool != nil {
			worker = opts.Pool.newClient()
		} else {
			worker = newAsyncWorker()
		}
		defer worker.stop()
	}

	// Cancellation: a nil done channel blocks forever in the select, so a
	// run without a Context never observes it.
	done := opts.searchDone()
	cancelled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}

	// emit publishes a progress event; best is non-nil only on improvement.
	emit := func(bc *circuit.Circuit) {
		if opts.OnEvent == nil {
			return
		}
		e := Event{
			Elapsed:    time.Since(start),
			Iters:      res.Iters,
			Accepted:   res.Accepted,
			Migrations: res.Migrations,
			BestCost:   bestCost,
			BestErr:    bestErr,
			Best:       bc,
		}
		if worker != nil && worker.inFlight() {
			e.ResynthInFlight = 1
		}
		opts.OnEvent(e)
	}

	improve := func() {
		if currCost < bestCost {
			best, bestErr, bestCost = eng.Snapshot(), currErr, currCost
			bestG.Set(bestCost)
			if opts.OnImprove != nil {
				opts.OnImprove(time.Since(start), best)
			}
			emit(best)
		}
	}

	// finish seals the result: the attribution table, the final gauge
	// values, and the engine's cumulative counters flushed into the shared
	// metrics (once per run — putting atomics inside FullPass would tax
	// the hot path for nothing).
	finish := func() {
		res.Rules = make(map[string]*RuleStats, len(tallyByName))
		for name, e := range tallyByName {
			res.Rules[name] = e.stats
		}
		if m != nil {
			m.AddEngineStats(eng.Stats())
			epsG.Set(bestErr)
			bestG.Set(bestCost)
		}
	}

	// applyFlat is the whole-circuit application path, preferring the
	// cancellation-aware variant when the run has a context so slow calls
	// abort promptly on cancellation (the ctx checks consume no randomness,
	// keeping uncancelled runs bit-identical).
	applyFlat := func(t Transformation, c *circuit.Circuit, allowed float64, r *rand.Rand) (*circuit.Circuit, float64, bool) {
		if opts.Context != nil {
			if ca, ok := t.(ContextApplier); ok {
				return ca.ApplyContext(opts.Context, c, allowed, r)
			}
		}
		return t.Apply(c, allowed, r)
	}

	// applyAny applies t against the engine — in place when the
	// transformation supports it, as a whole-circuit transaction otherwise.
	// On ok the engine holds the candidate and the caller must Commit or
	// Rollback(0).
	applyAny := func(t Transformation, allowed float64, r *rand.Rand) (float64, bool) {
		if opts.Context != nil {
			if ea, ok := t.(EngineContextApplier); ok {
				return ea.ApplyEngineContext(opts.Context, eng, allowed, r)
			}
		}
		if ea, ok := t.(EngineApplier); ok {
			return ea.ApplyEngine(eng, allowed, r)
		}
		out, eps, ok := applyFlat(t, curr, allowed, r)
		if !ok {
			return 0, false
		}
		// Clone defensively: SetCircuit takes ownership, and a caller-
		// supplied transformation may hand back shared state.
		eng.SetCircuit(out.Clone())
		return eps, true
	}

	if opts.WarmStart {
		// Deterministic rounds of every fast transformation with the usual
		// acceptance rule, to a cost fixpoint (bounded rounds). The
		// stochastic loop reaches the same fixpoint eventually; doing it up
		// front removes compressed-budget noise and matches the fixed-pass
		// baselines' deterministic reach before the search proper begins.
		warmRng := rand.New(rand.NewSource(opts.Seed ^ 0x5eed))
		for round := 0; round < 8; round++ {
			roundStart := currCost
			for _, t := range fast {
				e := tally[t]
				e.attempt()
				eps, ok := applyAny(t, 0, warmRng)
				if !ok {
					continue
				}
				if candCost := opts.Cost(curr); candCost <= currCost {
					eng.Commit()
					currCost = candCost
					currErr += eps
					res.Accepted++
					e.accept()
				} else {
					eng.Rollback(0)
					e.reject()
				}
			}
			if opts.TimeBudget > 0 && time.Now().After(deadline) {
				break
			}
			if cancelled() {
				break
			}
			if currCost >= roundStart {
				break
			}
		}
		improve()
	}

	// accept decides per Alg. 1 lines 10-15. The adaptive portfolio's
	// controller, when wired, scales the temperature between calls; the
	// rng draw happens either way, so steering never shifts the random
	// stream (and a nil hook reproduces the static-temperature run
	// bit-for-bit).
	accept := func(candCost float64) bool {
		if candCost <= currCost {
			return true
		}
		if currCost <= 0 {
			return false
		}
		t := opts.Temperature
		if opts.tempScale != nil {
			t *= opts.tempScale()
		}
		return rng.Float64() < math.Exp(-t*candCost/currCost)
	}

	exchangeEvery := opts.ExchangeEvery
	if exchangeEvery <= 0 {
		exchangeEvery = 64
	}
	eventEvery := opts.EventEvery
	if eventEvery == 0 {
		eventEvery = 256
	}

	for it := 0; ; it++ {
		if opts.MaxIters > 0 && it >= opts.MaxIters {
			break
		}
		if opts.TimeBudget > 0 && time.Now().After(deadline) {
			break
		}
		if cancelled() {
			break
		}
		if opts.parkPoint != nil {
			// Adaptive throttle: a parked worker sleeps here (bounded by
			// one slice, woken early by global improvement) after the
			// termination checks above, so parking never delays shutdown.
			opts.parkPoint()
		}
		if eventEvery > 0 && it > 0 && it%eventEvery == 0 {
			emit(nil)
		}
		res.Iters++
		iterC.Inc()

		// Portfolio migration: publish our best, and adopt the coordinator's
		// best-so-far when it strictly beats our current search point. The
		// adopted circuit carries its own accumulated ε bound, so subsequent
		// budget admission (line 6) stays sound under Thm 4.2. Reset clones
		// the adopted circuit into the engine, so the coordinator's copy is
		// never mutated.
		if opts.Exchanger != nil && it%exchangeEvery == 0 {
			if adopt, adoptErr, ok := opts.Exchanger.Exchange(best, bestErr, bestCost); ok {
				if candCost := opts.Cost(adopt); candCost < currCost {
					eng.Reset(adopt)
					currErr, currCost = adoptErr, candCost
					res.Migrations++
					migrC.Inc()
					epsG.Set(currErr)
					improve()
				}
			}
		}

		// Asynchronous resynthesis (§5.3): harvest a finished call — if
		// accepted, interim rewrite modifications are discarded — and keep
		// the worker continuously busy so slow search saturates wall-clock
		// time while rewrites run in the foreground. The job's result is a
		// transformation of the circuit at launch time, so its total error
		// is the launch-time base plus the incurred eps — not the current
		// currErr, which an exchange adoption may have replaced meanwhile.
		if worker != nil {
			if r, ready := worker.poll(); ready {
				// Attribution and timing come back with the result: the job
				// ran off-loop, so its latency was measured where it ran.
				e := tally[r.t]
				e.attempt()
				if r.dur > 0 {
					synthH.Observe(r.dur.Seconds())
				}
				accepted := false
				if r.ok && r.baseErr+r.eps <= opts.Epsilon {
					candCost := opts.Cost(r.out)
					if accept(candCost) {
						eng.Reset(r.out)
						currCost = candCost
						currErr = r.baseErr + r.eps
						res.Accepted++
						accepted = true
						epsG.Set(currErr)
						improve()
					}
				}
				if accepted {
					e.accept()
				} else if r.ok {
					e.reject()
				}
			}
			if !worker.inFlight() {
				t := slow[rng.Intn(len(slow))]
				if currErr+t.Epsilon() <= opts.Epsilon {
					worker.launch(opts.Context, t, curr.Clone(), currErr, opts.Epsilon-currErr, rng.Int63())
				}
			}
		}

		var t Transformation
		switch {
		case len(fast) == 0 && len(slow) == 0:
			res.Best, res.BestError, res.Elapsed = best, bestErr, time.Since(start)
			finish()
			emit(nil)
			return res
		case len(fast) == 0:
			t = slow[rng.Intn(len(slow))]
		case len(slow) == 0 || worker != nil:
			// With an async worker, foreground iterations are all fast.
			t = fast[rng.Intn(len(fast))]
		case rng.Float64() < opts.ResynthProb:
			t = slow[rng.Intn(len(slow))]
		default:
			t = fast[rng.Intn(len(fast))]
		}

		// Alg. 1 line 6: admission against the remaining error budget.
		if currErr+t.Epsilon() > opts.Epsilon {
			continue
		}
		allowed := opts.Epsilon - currErr

		e := tally[t]
		e.attempt()
		// The clock reads exist only when a histogram wants them; they
		// consume no randomness either way, so instrumented and plain runs
		// stay bit-identical.
		var latH *obs.Histogram
		var t0 time.Time
		if m != nil {
			if t.Slow() {
				latH = synthH
			} else {
				latH = propH
			}
			t0 = time.Now()
		}
		eps, ok := applyAny(t, allowed, rng)
		if latH != nil {
			latH.ObserveSince(t0)
		}
		if !ok {
			continue
		}
		candCost := opts.Cost(curr)
		if accept(candCost) {
			eng.Commit()
			currCost = candCost
			currErr += eps
			res.Accepted++
			e.accept()
			epsG.Set(currErr)
			improve()
		} else {
			eng.Rollback(0)
			e.reject()
		}
	}

	res.Best = best
	res.BestError = bestErr
	res.Elapsed = time.Since(start)
	finish()
	emit(nil)
	return res
}

// slowRunner is the search loop's view of its asynchronous resynthesis
// backend: the private per-search asyncWorker or a poolClient of the shared
// ResynthPool. Either way the search holds at most one job in flight;
// launch while busy is a no-op, poll never blocks, and stop drains the
// in-flight job before returning.
type slowRunner interface {
	launch(ctx context.Context, t Transformation, c *circuit.Circuit, baseErr, allowed float64, seed int64)
	poll() (asyncResult, bool)
	inFlight() bool
	stop()
}

// runAsyncJob executes one slow transformation — the body shared by the
// private asyncWorker goroutine and the pooled workers. It prefers the
// cancellation-aware path so stop() returns as soon as the synthesizer
// notices the context, instead of after a full synthesis deadline.
func runAsyncJob(job asyncJob) asyncResult {
	t0 := time.Now()
	rng := rand.New(rand.NewSource(job.seed))
	var (
		o   *circuit.Circuit
		eps float64
		ok  bool
	)
	if ca, cok := job.t.(ContextApplier); cok && job.ctx != nil {
		o, eps, ok = ca.ApplyContext(job.ctx, job.c, job.allowed, rng)
	} else {
		o, eps, ok = job.t.Apply(job.c, job.allowed, rng)
	}
	return asyncResult{t: job.t, out: o, baseErr: job.baseErr, eps: eps, ok: ok, dur: time.Since(t0)}
}

// asyncWorker runs at most one slow transformation at a time in a separate
// goroutine, as in §5.3 ("we only apply resynthesis to a single subcircuit
// per iteration" and calls are made asynchronously).
type asyncWorker struct {
	in   chan asyncJob
	out  chan asyncResult
	busy bool
}

type asyncJob struct {
	ctx     context.Context // nil for uncancellable runs
	t       Transformation
	c       *circuit.Circuit
	baseErr float64 // accumulated error of c at launch time
	allowed float64
	seed    int64
}

type asyncResult struct {
	t       Transformation // the launched transformation, for attribution
	out     *circuit.Circuit
	baseErr float64
	eps     float64
	ok      bool
	dur     time.Duration // wall time of the job where it ran
}

func newAsyncWorker() *asyncWorker {
	w := &asyncWorker{
		in:  make(chan asyncJob, 1),
		out: make(chan asyncResult, 1),
	}
	go func() {
		for job := range w.in {
			w.out <- runAsyncJob(job)
		}
	}()
	return w
}

// launch starts a job if the worker is idle; otherwise the request is
// dropped (one in-flight resynthesis at a time).
func (w *asyncWorker) launch(ctx context.Context, t Transformation, c *circuit.Circuit, baseErr, allowed float64, seed int64) {
	if w.busy {
		return
	}
	w.busy = true
	w.in <- asyncJob{ctx: ctx, t: t, c: c, baseErr: baseErr, allowed: allowed, seed: seed}
}

// poll returns a finished result if one is ready.
func (w *asyncWorker) poll() (asyncResult, bool) {
	select {
	case r := <-w.out:
		w.busy = false
		return r, true
	default:
		return asyncResult{}, false
	}
}

// inFlight reports whether a job is currently running.
func (w *asyncWorker) inFlight() bool { return w.busy }

// stop shuts the worker down, draining any in-flight job.
func (w *asyncWorker) stop() {
	close(w.in)
	if w.busy {
		<-w.out
	}
}
