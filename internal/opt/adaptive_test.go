package opt

import (
	"testing"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/verify"
)

// TestTempRung pins the portfolio temperature ladder: the first seven
// workers reproduce the historical fixed table exactly (so existing tuned
// deployments keep their configurations), and beyond that the progression
// keeps generating distinct rungs instead of wrapping — the old table
// repeated worker 0's multiplier at worker 7 and then cycled, so portfolios
// with ≥ 8 workers burned CPU on duplicate configurations.
func TestTempRung(t *testing.T) {
	legacy := []float64{1, 0.5, 2, 0.25, 4, 0.125, 8}
	for w, want := range legacy {
		if got := tempRung(w); got != want {
			t.Errorf("tempRung(%d) = %v, want legacy rung %v", w, got, want)
		}
	}
	seen := map[float64]int{}
	for w := 0; w < 16; w++ {
		r := tempRung(w)
		if r <= 0 {
			t.Fatalf("tempRung(%d) = %v, want > 0", w, r)
		}
		if prev, dup := seen[r]; dup {
			t.Errorf("tempRung wraps: workers %d and %d share rung %v", prev, w, r)
		}
		seen[r] = w
	}
}

// TestAdaptiveSteering drives the controller with synthetic heartbeats and
// checks the acceptance-band policy: an all-reject window halves the scale
// (hotter), a high-accept window doubles it (stricter), and both directions
// clamp at 1/adaptiveScaleMax and adaptiveScaleMax.
func TestAdaptiveSteering(t *testing.T) {
	c := newAdaptiveController(2)
	if s := c.scale(1); s != 1 {
		t.Fatalf("initial scale %v, want 1", s)
	}
	// Eight consecutive all-reject windows: halve until the floor.
	for i := 1; i <= 8; i++ {
		c.observe(Event{Worker: 1, Iters: i * 256, Accepted: 0, BestCost: 100})
	}
	if s := c.scale(1); s != 1/adaptiveScaleMax {
		t.Errorf("scale after sustained rejection = %v, want floor %v", s, 1/adaptiveScaleMax)
	}
	// Now sustained random-walking: double until the ceiling.
	iters, accepted := 8*256, 0
	for i := 0; i < 20; i++ {
		iters += 256
		accepted += 200 // rate ≈ 0.78 > adaptiveHighRate
		c.observe(Event{Worker: 1, Iters: iters, Accepted: accepted, BestCost: 100})
	}
	if s := c.scale(1); s != adaptiveScaleMax {
		t.Errorf("scale after sustained acceptance = %v, want ceiling %v", s, adaptiveScaleMax)
	}
	// Worker 0 was never touched.
	if s := c.scale(0); s != 1 {
		t.Errorf("worker 0 scale drifted to %v", s)
	}
}

// TestAdaptiveParking pins the stall detector: adaptiveStallWindows
// consecutive zero-accept, no-improvement heartbeats park a worker — but
// never worker 0 — and a global improvement on any stream wakes it.
func TestAdaptiveParking(t *testing.T) {
	c := newAdaptiveController(2)
	// The first heartbeat only establishes the best-cost baseline, so a park
	// takes adaptiveStallWindows+1 windows of no accepts and no improvement.
	for w := 0; w < 2; w++ {
		for i := 1; i <= adaptiveStallWindows+1; i++ {
			c.observe(Event{Worker: w, Iters: i * 256, Accepted: 0, BestCost: 50})
		}
	}
	if c.workers[0].parked.Load() {
		t.Fatal("worker 0 must never park")
	}
	if !c.workers[1].parked.Load() {
		t.Fatal("worker 1 not parked after sustained stall")
	}
	// An improvement event from worker 0 wakes the parked worker.
	c.observe(Event{Worker: 0, Iters: 9 * 256, Accepted: 1, BestCost: 40, Best: &circuit.Circuit{}})
	if c.workers[1].parked.Load() {
		t.Fatal("global improvement did not wake the parked worker")
	}
	// A parked worker's parkPoint self-unparks within one slice even with
	// no improvement (liveness: termination checks keep running).
	c.workers[1].parked.Store(true)
	done := make(chan struct{})
	go func() { c.parkPoint(1); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * adaptiveParkSlice):
		t.Fatal("parkPoint did not return within its slice")
	}
	if c.workers[1].parked.Load() {
		t.Fatal("parkPoint did not self-unpark")
	}
	// An accepting window resets the stall counter.
	c2 := newAdaptiveController(2)
	for i := 1; i <= adaptiveStallWindows-1; i++ {
		c2.observe(Event{Worker: 1, Iters: i * 256, Accepted: 0, BestCost: 50})
	}
	c2.observe(Event{Worker: 1, Iters: adaptiveStallWindows * 256, Accepted: 30, BestCost: 49})
	for i := 1; i < adaptiveStallWindows; i++ {
		c2.observe(Event{Worker: 1, Iters: (adaptiveStallWindows + i) * 256, Accepted: 30, BestCost: 49})
	}
	if c2.workers[1].parked.Load() {
		t.Fatal("stall counter was not reset by an accepting window")
	}
}

// TestAdaptivePortfolioSmoke runs a real multi-worker portfolio with the
// controller wired in (fast heartbeats so steering actually engages) and
// checks the anytime contract still holds: the run completes and never
// returns something worse than its input.
func TestAdaptivePortfolioSmoke(t *testing.T) {
	c, ts := eagleSetup(t, 8, 60)
	opts := DefaultOptions()
	opts.Cost = TwoQubitCost()
	opts.Seed = 7
	opts.Async = false
	opts.TimeBudget = 0
	opts.MaxIters = 400
	opts.EventEvery = 16
	opts.AdaptivePortfolio = true
	res := Portfolio(c, ts, opts, 3)
	if res.Best == nil {
		t.Fatal("adaptive portfolio returned no circuit")
	}
	if got, in := opts.Cost(res.Best), opts.Cost(c); got > in {
		t.Fatalf("adaptive portfolio regressed: cost %v from %v", got, in)
	}
	if err := verify.MustBeEquivalent(c, res.Best, 1e-6, 3); err != nil {
		t.Fatal(err)
	}
}
