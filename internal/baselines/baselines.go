// Package baselines implements algorithmic proxies for the state-of-the-art
// optimizers the paper compares against (Table 3). Each proxy reproduces
// the published optimization *strategy* of its tool — fixed pass pipelines,
// partition-and-resynthesize, beam search over rule schedules, guided rule
// search, phase-polynomial reduction — so the comparative shapes of Figs.
// 1, 8, 9, and 12 are reproducible without the closed-source originals.
// See DESIGN.md §3 for the substitution rationale.
package baselines

import (
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/opt"
)

// Optimizer is the common interface for every comparator and for GUOQ
// itself in the experiment harness.
type Optimizer interface {
	// Name is the tool name as used in the paper's figures.
	Name() string
	// Optimize returns an improved circuit within the wall-clock budget.
	// Implementations never return a worse circuit than the input.
	Optimize(c *circuit.Circuit, gs *gateset.GateSet, cost opt.Cost, budget time.Duration, seed int64) *circuit.Circuit
}

// keepBetter guards the "never worse" contract.
func keepBetter(orig, cand *circuit.Circuit, cost opt.Cost) *circuit.Circuit {
	if cand == nil || cost(cand) > cost(orig) {
		return orig
	}
	return cand
}
