// Package baselines implements algorithmic proxies for the state-of-the-art
// optimizers the paper compares against (Table 3). Each proxy reproduces
// the published optimization *strategy* of its tool — fixed pass pipelines,
// partition-and-resynthesize, beam search over rule schedules, guided rule
// search, phase-polynomial reduction — so the comparative shapes of Figs.
// 1, 8, 9, and 12 are reproducible without the closed-source originals.
// See DESIGN.md §3 for the substitution rationale.
package baselines

import (
	"context"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/opt"
)

// Optimizer is the common interface for every comparator and for GUOQ
// itself in the experiment harness.
type Optimizer interface {
	// Name is the tool name as used in the paper's figures.
	Name() string
	// Optimize returns an improved circuit within the wall-clock budget.
	// Implementations never return a worse circuit than the input.
	Optimize(c *circuit.Circuit, gs *gateset.GateSet, cost opt.Cost, budget time.Duration, seed int64) *circuit.Circuit
}

// ContextOptimizer is an Optimizer whose search honors context
// cancellation: OptimizeContext returns its best-so-far (never worse than
// the input) as soon as ctx is done. Every optimizer in this package
// implements it; the plain Optimize methods are equivalent to calling
// OptimizeContext with context.Background().
type ContextOptimizer interface {
	Optimizer
	OptimizeContext(ctx context.Context, c *circuit.Circuit, gs *gateset.GateSet, cost opt.Cost, budget time.Duration, seed int64) *circuit.Circuit
}

// OptimizeWithContext runs a tool under ctx when it supports cancellation,
// degrading to the blocking Optimize for tools that do not.
func OptimizeWithContext(ctx context.Context, tool Optimizer, c *circuit.Circuit, gs *gateset.GateSet, cost opt.Cost, budget time.Duration, seed int64) *circuit.Circuit {
	if co, ok := tool.(ContextOptimizer); ok {
		return co.OptimizeContext(ctx, c, gs, cost, budget, seed)
	}
	return tool.Optimize(c, gs, cost, budget, seed)
}

// keepBetter guards the "never worse" contract.
func keepBetter(orig, cand *circuit.Circuit, cost opt.Cost) *circuit.Circuit {
	if cand == nil || cost(cand) > cost(orig) {
		return orig
	}
	return cand
}
