package baselines

import (
	"context"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/opt"
	"github.com/guoq-dev/guoq/internal/popt"
)

// GUOQ wraps the paper's algorithm behind the Optimizer interface, with the
// variant knobs used across Q1–Q4.
type GUOQ struct {
	Tool string
	// Mode selects the transformation set / search strategy.
	Mode GUOQMode
	// Epsilon is the global error budget ε_f.
	Epsilon float64
	// ResynthProb overrides the 1.5% default when nonzero.
	ResynthProb float64
	// WithPhaseFold includes the phase-folding τ_0 (FTQC instantiation).
	WithPhaseFold bool
	// Async enables asynchronous resynthesis.
	Async bool
	// Parallelism is the number of concurrent search workers (0 or 1 =
	// the classic single-threaded loop). Workers form a portfolio with
	// diversified seeds/temperatures exchanging the best solution.
	Parallelism int
	// Partition additionally splits large circuits into disjoint time
	// windows optimized concurrently (ε split across windows, Thm 4.2);
	// circuits too small to window fall back to the portfolio.
	Partition bool
	// Adaptive enables the portfolio's feedback controller: worker
	// temperatures retarget from their acceptance-rate streams and stalled
	// workers park until the global best improves. No effect with
	// Parallelism ≤ 1.
	Adaptive bool
	// Fixpoint selects the parallel local fixpoint strategy (internal/popt):
	// iterated rounds of concurrent bounded window searches with alternating
	// seam offsets, committed only on whole-circuit improvement — the
	// huge-circuit mode. Takes precedence over Partition; circuits too small
	// to window fall back to the portfolio.
	Fixpoint bool
	// UpstreamSyncEvery tunes how often a portfolio's coordinator polls an
	// upstream (distributed) exchanger when local workers bring no
	// improvement; 0 keeps the 100 ms default.
	UpstreamSyncEvery time.Duration
	// Exchanger, when set, connects the run to an external best-so-far
	// store (a guoqd coordinator via internal/dist): a single-worker run
	// polls it directly, a portfolio relays through its in-process
	// coordinator.
	Exchanger opt.Exchanger
	// MaxIters bounds search iterations (0 = unlimited): with a synchronous
	// single worker and no deadline it makes a run bit-reproducible.
	MaxIters int
	// Registry, when set, supplies the transformation portfolio the search
	// samples from in place of the default instantiation — the extension
	// point behind the public API's custom rules, synthesizers, and gate
	// sets. Nil selects opt.DefaultRegistry(), whose build is identical to
	// the historical hardcoded construction (seeded runs unchanged).
	Registry *opt.Registry
	// OnEvent, when set, receives opt.Event progress reports from the
	// search (improvements, heartbeats, and a final event per worker); the
	// hook behind the public Session's Events stream. Must be safe for
	// concurrent use in parallel modes.
	OnEvent func(opt.Event)
	// Metrics, when set, mirrors the search's counters into an obs
	// registry (iterations, per-rule accept/reject attribution, engine
	// cache statistics, resynthesis pool depth); nil keeps the hot loop
	// instrumentation-free. Build one with opt.NewMetrics.
	Metrics *opt.Metrics
}

// GUOQMode selects among the paper's search variants.
type GUOQMode int

const (
	// ModeFull is GUOQ proper: rules + resynthesis, random interleaving.
	ModeFull GUOQMode = iota
	// ModeRewrite is GUOQ-REWRITE (rules only).
	ModeRewrite
	// ModeResynth is GUOQ-RESYNTH (resynthesis only).
	ModeResynth
	// ModeSeqRewriteResynth is GUOQ-SEQ: rewrite first, then resynthesis.
	ModeSeqRewriteResynth
	// ModeSeqResynthRewrite is GUOQ-SEQ: resynthesis first, then rewrite.
	ModeSeqResynthRewrite
	// ModeBeam is GUOQ-BEAM (the MaxBeam instantiation of the framework).
	ModeBeam
)

// NewGUOQ builds the full algorithm with the paper's defaults, including
// asynchronous resynthesis (§5.3): the synthesis worker stays busy while
// rewrite moves keep running, which preserves the paper's fast/slow balance
// at compressed wall-clock budgets.
func NewGUOQ(eps float64) *GUOQ {
	return &GUOQ{Tool: "guoq", Mode: ModeFull, Epsilon: eps, Async: true}
}

// NewGUOQVariant builds a named ablation variant.
func NewGUOQVariant(tool string, mode GUOQMode, eps float64) *GUOQ {
	return &GUOQ{Tool: tool, Mode: mode, Epsilon: eps}
}

// NewPortfolio builds the parallel portfolio runner: `workers` concurrent
// GUOQ searches exchanging the best-so-far solution (workers ≤ 0 selects
// one worker per available CPU, capped at 8).
func NewPortfolio(eps float64, workers int) *GUOQ {
	if workers <= 0 {
		workers = opt.AutoWorkers()
	}
	return &GUOQ{Tool: "portfolio", Mode: ModeFull, Epsilon: eps, Async: true, Parallelism: workers}
}

// NewPartitionParallel builds the partition-parallel runner: large
// circuits are split into disjoint time windows optimized concurrently.
func NewPartitionParallel(eps float64, workers int) *GUOQ {
	p := NewPortfolio(eps, workers)
	p.Tool = "partition-parallel"
	p.Partition = true
	return p
}

// NewFixpoint builds the parallel local fixpoint runner (internal/popt):
// the strategy for circuits too large for one global search. workers ≤ 0
// selects one per available CPU, capped at 8.
func NewFixpoint(eps float64, workers int) *GUOQ {
	if workers <= 0 {
		workers = opt.AutoWorkers()
	}
	return &GUOQ{Tool: "fixpoint", Mode: ModeFull, Epsilon: eps, Async: true, Parallelism: workers, Fixpoint: true}
}

// Name implements Optimizer.
func (g *GUOQ) Name() string { return g.Tool }

// Optimize implements Optimizer.
func (g *GUOQ) Optimize(c *circuit.Circuit, gs *gateset.GateSet, cost opt.Cost, budget time.Duration, seed int64) *circuit.Circuit {
	out, _ := g.OptimizeStats(c, gs, cost, budget, seed)
	return out
}

// OptimizeContext implements ContextOptimizer.
func (g *GUOQ) OptimizeContext(ctx context.Context, c *circuit.Circuit, gs *gateset.GateSet, cost opt.Cost, budget time.Duration, seed int64) *circuit.Circuit {
	out, _ := g.OptimizeStatsContext(ctx, c, gs, cost, budget, seed)
	return out
}

// OptimizeStats is Optimize plus the search statistics: the returned
// Result carries the accumulated ε bound, iteration/acceptance counts and
// exchange migrations for the circuit actually returned (BestError is 0
// when the never-worse guard falls back to the input). The benchmark
// recorder (internal/experiments.Bench) and the distributed CLIs consume
// the statistics; plain comparisons use Optimize.
func (g *GUOQ) OptimizeStats(c *circuit.Circuit, gs *gateset.GateSet, cost opt.Cost, budget time.Duration, seed int64) (*circuit.Circuit, *opt.Result) {
	return g.OptimizeStatsContext(context.Background(), c, gs, cost, budget, seed)
}

// OptimizeStatsContext is OptimizeStats under a context: the search ends at
// whichever of ctx cancellation or the budget fires first, and the
// statistics are accurate either way (the anytime contract — a cancelled
// run's Result carries real before/after counts and the accumulated ε of
// the circuit actually returned). budget ≤ 0 removes the wall-clock bound
// entirely: the run ends only on cancellation (or MaxIters), with synthesis
// calls individually capped at their 500 ms default.
func (g *GUOQ) OptimizeStatsContext(ctx context.Context, c *circuit.Circuit, gs *gateset.GateSet, cost opt.Cost, budget time.Duration, seed int64) (*circuit.Circuit, *opt.Result) {
	synthTime := 500 * time.Millisecond
	if budget > 0 {
		synthTime = budget / 4
		if synthTime > 500*time.Millisecond {
			synthTime = 500 * time.Millisecond
		}
	}
	// QUESO's rule compositions subsume rotation merging; our smaller
	// hand-built libraries express that capability as the phase-folding
	// τ_0, included for every gate set (DESIGN.md §3 and §5).
	reg := g.Registry
	if reg == nil {
		reg = opt.DefaultRegistry()
	}
	ts, err := reg.Build(gs, opt.InstantiateOptions{
		EpsilonF:      g.Epsilon,
		MaxQubits:     3,
		SynthTime:     synthTime,
		WithPhaseFold: true,
	})
	if err != nil {
		return c, &opt.Result{Best: c}
	}
	opts := opt.DefaultOptions()
	opts.Epsilon = g.Epsilon
	opts.Cost = cost
	opts.TimeBudget = budget
	opts.Seed = seed
	opts.Async = g.Async
	opts.WarmStart = true
	opts.Exchanger = g.Exchanger
	opts.MaxIters = g.MaxIters
	opts.OnEvent = g.OnEvent
	opts.Metrics = g.Metrics
	opts.AdaptivePortfolio = g.Adaptive
	opts.UpstreamSyncEvery = g.UpstreamSyncEvery
	if ctx != nil {
		opts.Context = ctx
	}
	if g.ResynthProb > 0 {
		opts.ResynthProb = g.ResynthProb
	}

	var res *opt.Result
	switch g.Mode {
	case ModeRewrite:
		res = opt.GUOQ(c, opt.FilterFast(ts), opts)
	case ModeResynth:
		res = opt.GUOQ(c, opt.FilterSlow(ts), opts)
	case ModeSeqRewriteResynth:
		res = opt.GUOQSeq(c, ts, opts, true)
	case ModeSeqResynthRewrite:
		res = opt.GUOQSeq(c, ts, opts, false)
	case ModeBeam:
		res = opt.Beam(c, ts, opts, 32)
	default:
		switch {
		case g.Fixpoint:
			res = popt.Fixpoint(c, ts, popt.Options{Search: opts, Workers: g.Parallelism})
		case g.Partition && g.Parallelism > 1:
			res = opt.PartitionParallel(c, ts, opts, g.Parallelism)
		case g.Parallelism > 1:
			res = opt.Portfolio(c, ts, opts, g.Parallelism)
		default:
			res = opt.GUOQ(c, ts, opts)
		}
	}
	out := keepBetter(c, res.Best, cost)
	if out != res.Best {
		// The guard rejected the search's best: the caller gets the exact
		// input back, so its accumulated bound is 0 by definition.
		guarded := *res
		guarded.Best, guarded.BestError = out, 0
		return out, &guarded
	}
	return out, res
}
