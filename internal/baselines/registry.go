package baselines

import "fmt"

// Table3 lists the state-of-the-art comparators of the paper's Table 3
// (superoptimizers and fixed-pass tools) as implemented here.
func Table3(eps float64) []Optimizer {
	return []Optimizer{
		NewQiskit(),
		NewTket(),
		NewVOQC(),
		NewBQSKit(eps),
		NewQUESO(),
		NewQuartz(),
		NewQuarl(),
	}
}

// ByName resolves a tool name (paper spelling, lower case) to an optimizer.
func ByName(name string, eps float64) (Optimizer, error) {
	switch name {
	case "qiskit":
		return NewQiskit(), nil
	case "tket":
		return NewTket(), nil
	case "voqc":
		return NewVOQC(), nil
	case "bqskit":
		return NewBQSKit(eps), nil
	case "synthetiq":
		return NewSynthetiqPartition(eps), nil
	case "queso":
		return NewQUESO(), nil
	case "quartz":
		return NewQuartz(), nil
	case "quarl":
		return NewQuarl(), nil
	case "pyzx":
		return NewPyZX(), nil
	case "guoq":
		return NewGUOQ(eps), nil
	case "portfolio":
		return NewPortfolio(eps, 0), nil
	case "partition-parallel":
		return NewPartitionParallel(eps, 0), nil
	case "fixpoint":
		return NewFixpoint(eps, 0), nil
	case "guoq-rewrite":
		return NewGUOQVariant("guoq-rewrite", ModeRewrite, eps), nil
	case "guoq-resynth":
		return NewGUOQVariant("guoq-resynth", ModeResynth, eps), nil
	case "guoq-seq-rewrite-resynth":
		return NewGUOQVariant("guoq-seq-rewrite-resynth", ModeSeqRewriteResynth, eps), nil
	case "guoq-seq-resynth-rewrite":
		return NewGUOQVariant("guoq-seq-resynth-rewrite", ModeSeqResynthRewrite, eps), nil
	case "guoq-beam":
		return NewGUOQVariant("guoq-beam", ModeBeam, eps), nil
	}
	return nil, fmt.Errorf("baselines: unknown tool %q", name)
}
