package baselines

import (
	"context"
	"math/rand"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/opt"
	"github.com/guoq-dev/guoq/internal/phasepoly"
	"github.com/guoq-dev/guoq/internal/rewrite"
)

// BeamSearch is the QUESO / Quartz proxy: symbolic rewrite rules scheduled
// by a size-bounded beam (QUESO's MaxBeam). Rewrite-only — no resynthesis —
// which is exactly why the ionq gate set is hard for it (Fig. 9).
type BeamSearch struct {
	Tool  string
	Width int
	// Registry, when set, supplies the transformation portfolio (only its
	// fast entries are used — the proxy is rewrite-only); nil selects
	// opt.DefaultRegistry().
	Registry *opt.Registry
}

// NewQUESO mirrors QUESO's MaxBeam instantiation.
func NewQUESO() *BeamSearch { return &BeamSearch{Tool: "queso", Width: 32} }

// NewQuartz mirrors Quartz: a wider beam over the same rule class.
func NewQuartz() *BeamSearch { return &BeamSearch{Tool: "quartz", Width: 64} }

// Name implements Optimizer.
func (b *BeamSearch) Name() string { return b.Tool }

// Optimize implements Optimizer.
func (b *BeamSearch) Optimize(c *circuit.Circuit, gs *gateset.GateSet, cost opt.Cost, budget time.Duration, seed int64) *circuit.Circuit {
	return b.OptimizeContext(context.Background(), c, gs, cost, budget, seed)
}

// OptimizeContext implements ContextOptimizer: the beam loop returns its
// best-so-far at the first cancelled dequeue.
func (b *BeamSearch) OptimizeContext(ctx context.Context, c *circuit.Circuit, gs *gateset.GateSet, cost opt.Cost, budget time.Duration, seed int64) *circuit.Circuit {
	reg := b.Registry
	if reg == nil {
		reg = opt.DefaultRegistry()
	}
	ts, err := reg.Build(gs, opt.InstantiateOptions{EpsilonF: 1e-8})
	if err != nil {
		return c
	}
	opts := opt.DefaultOptions()
	opts.Cost = cost
	opts.TimeBudget = budget
	opts.Seed = seed
	opts.Context = ctx
	res := opt.Beam(c, opt.FilterFast(ts), opts, b.Width)
	return keepBetter(c, res.Best, cost)
}

// Lookahead is the Quarl proxy: guided rule selection instead of uniform
// search. A trained RL policy is irreproducible without the authors' GPU
// checkpoints; its effect — picking locally promising rules, including
// cost-neutral moves that enable later reductions — is modelled by greedy
// rollout search with depth-2 lookahead. Rewrite-only, like Quarl.
type Lookahead struct {
	Tool string
	// Depth of the lookahead (2 in the proxy).
	Depth int
}

// NewQuarl builds the Quarl proxy.
func NewQuarl() *Lookahead { return &Lookahead{Tool: "quarl", Depth: 2} }

// Name implements Optimizer.
func (l *Lookahead) Name() string { return l.Tool }

// Optimize implements Optimizer. Branch evaluation runs on one persistent
// rewrite.Engine: every candidate step is applied in place, scored, and
// rolled back via the engine's transaction marks, so the per-branch circuit
// copies (and DAG rebuilds) of the pure FullPass pipeline disappear; the
// chosen step is then re-applied (deterministic) and committed.
func (l *Lookahead) Optimize(c *circuit.Circuit, gs *gateset.GateSet, cost opt.Cost, budget time.Duration, seed int64) *circuit.Circuit {
	return l.OptimizeContext(context.Background(), c, gs, cost, budget, seed)
}

// OptimizeContext implements ContextOptimizer: cancellation is checked at
// every outer greedy step (the committed best is returned mid-rollout).
func (l *Lookahead) OptimizeContext(ctx context.Context, c *circuit.Circuit, gs *gateset.GateSet, cost opt.Cost, budget time.Duration, seed int64) *circuit.Circuit {
	rules, err := rewrite.RulesFor(gs.Name)
	if err != nil {
		return c
	}
	rng := rand.New(rand.NewSource(seed))
	deadline := time.Now().Add(budget)
	eng := rewrite.NewEngine(c)

	// apply runs rule r full-pass plus cleanup on the engine, reporting
	// whether the rule matched anywhere.
	apply := func(r *rewrite.Rule) bool {
		if eng.FullPass(r, 0) == 0 {
			return false
		}
		if out, changed := rewrite.CleanupChanged(eng.Circuit(), gs.Name); changed > 0 {
			eng.SetCircuit(out)
		}
		return true
	}

	if out, changed := rewrite.CleanupChanged(eng.Circuit(), gs.Name); changed > 0 {
		eng.SetCircuit(out)
	}
	eng.Commit()
	best := eng.Snapshot()
	bestCost := cost(best)

	for time.Now().Before(deadline) {
		if ctx.Err() != nil {
			break
		}
		curCost := cost(eng.Circuit())
		bestRule := -1
		bestScore := curCost
		improved := false
		for ri, r1 := range rules {
			m1 := eng.Mark()
			if !apply(r1) {
				continue
			}
			// Depth-2 rollout: the value of the step is the best reachable
			// cost.
			v := cost(eng.Circuit())
			if l.Depth >= 2 {
				for _, r2 := range rules {
					m2 := eng.Mark()
					if apply(r2) {
						if cv := cost(eng.Circuit()); cv < v {
							v = cv
						}
					}
					eng.Rollback(m2)
					if time.Now().After(deadline) {
						break
					}
				}
			}
			if v < bestScore || (v == bestScore && bestRule < 0) {
				bestScore, bestRule = v, ri
				improved = v < curCost
			}
			eng.Rollback(m1)
			if time.Now().After(deadline) {
				break
			}
		}
		if bestRule < 0 {
			break
		}
		apply(rules[bestRule])
		eng.Commit()
		if cv := cost(eng.Circuit()); cv < bestCost {
			best, bestCost = eng.Snapshot(), cv
		}
		if !improved {
			// Plateau: take a random neutral move to diversify, like the
			// policy's exploration, then continue.
			r := rules[rng.Intn(len(rules))]
			if apply(r) {
				eng.Commit()
			} else {
				break
			}
		}
	}
	return keepBetter(c, best, cost)
}

// PyZX is the phase-polynomial T-count optimizer proxy (see package
// phasepoly): strong T reduction, CX count untouched.
type PyZX struct{}

// NewPyZX builds the PyZX proxy.
func NewPyZX() *PyZX { return &PyZX{} }

// Name implements Optimizer.
func (p *PyZX) Name() string { return "pyzx" }

// Optimize implements Optimizer. The pipeline iterates phase folding with
// single-qubit simplifications to a fixpoint: reducing H gates between
// folds merges phase regions, which is (a fragment of) what PyZX's
// full_reduce achieves with Hadamard gadgets. Multi-qubit gates are never
// touched, so the CX count is exactly preserved.
func (p *PyZX) Optimize(c *circuit.Circuit, gs *gateset.GateSet, cost opt.Cost, budget time.Duration, seed int64) *circuit.Circuit {
	return p.OptimizeContext(context.Background(), c, gs, cost, budget, seed)
}

// OptimizeContext implements ContextOptimizer: cancellation is observed
// between fixpoint rounds.
func (p *PyZX) OptimizeContext(ctx context.Context, c *circuit.Circuit, gs *gateset.GateSet, cost opt.Cost, _ time.Duration, _ int64) *circuit.Circuit {
	rules, _ := rewrite.RulesFor(gs.Name)
	var oneQ []*rewrite.Rule
	for _, r := range rules {
		if r.NumQubits == 1 && r.Delta() < 0 {
			oneQ = append(oneQ, r)
		}
	}
	eng := rewrite.NewEngine(c)
	for round := 0; round < 8; round++ {
		if ctx.Err() != nil {
			break
		}
		before := eng.Circuit().Len()
		if folded, changed := phasepoly.FoldChanged(eng.Circuit(), gs.Name); changed > 0 {
			eng.SetCircuit(folded)
		}
		// cancel1q only ever removes gates, so equal length means no-op.
		if c1 := cancel1q(eng.Circuit()); c1.Len() != eng.Circuit().Len() {
			eng.SetCircuit(c1)
		}
		for _, r := range oneQ {
			eng.FullPass(r, 0)
		}
		eng.Commit()
		if eng.Circuit().Len() == before {
			break
		}
	}
	out := eng.Circuit()
	// PyZX optimizes T count regardless of the caller's cost; it may not
	// improve other metrics, and by construction never touches CX count.
	if out.TCount() > c.TCount() {
		return c
	}
	return out
}

// cancel1q removes adjacent self-inverse single-qubit pairs (h·h, x·x)
// without ever touching multi-qubit gates, preserving the PyZX profile.
func cancel1q(c *circuit.Circuit) *circuit.Circuit {
	out := circuit.New(c.NumQubits)
	top := make([]int, c.NumQubits) // index into out.Gates of wire top, or -1
	for q := range top {
		top[q] = -1
	}
	alive := []bool{}
	for _, g := range c.Gates {
		if len(g.Qubits) == 1 && (g.Name == "h" || g.Name == "x") {
			q := g.Qubits[0]
			if t := top[q]; t >= 0 && alive[t] && out.Gates[t].Name == g.Name &&
				len(out.Gates[t].Qubits) == 1 {
				alive[t] = false
				// Restore: scan back for the previous alive gate on q.
				top[q] = -1
				for i := t - 1; i >= 0; i-- {
					if alive[i] && out.Gates[i].OnQubit(q) {
						top[q] = i
						break
					}
				}
				continue
			}
		}
		idx := len(out.Gates)
		out.Gates = append(out.Gates, g)
		alive = append(alive, true)
		for _, q := range g.Qubits {
			top[q] = idx
		}
	}
	final := circuit.New(c.NumQubits)
	for i, g := range out.Gates {
		if alive[i] {
			final.Gates = append(final.Gates, g)
		}
	}
	return final
}
