package baselines

import (
	"testing"
	"time"

	"github.com/guoq-dev/guoq/internal/benchmarks"
	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/linalg"
	"github.com/guoq-dev/guoq/internal/opt"
)

// smallBench translates a small benchmark into a gate set for baseline
// testing (few qubits so semantics can be verified by unitary).
func smallBench(t *testing.T, gs *gateset.GateSet) *circuit.Circuit {
	t.Helper()
	src := benchmarks.BarencoTof(3)
	out, err := gateset.Translate(src, gs)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestEveryBaselineSoundAndNotWorse(t *testing.T) {
	eps := 1e-8
	tools := append(Table3(eps), NewPyZX(), NewSynthetiqPartition(eps), NewGUOQ(eps))
	for _, gs := range []*gateset.GateSet{gateset.Nam, gateset.CliffordT} {
		c := smallBench(t, gs)
		orig := c.Unitary()
		cost := opt.TwoQubitCost()
		for _, tool := range tools {
			out := tool.Optimize(c, gs, cost, 150*time.Millisecond, 1)
			if cost(out) > cost(c) {
				t.Errorf("%s on %s: made the circuit worse", tool.Name(), gs.Name)
			}
			if d := linalg.HSDistance(out.Unitary(), orig); d > eps+1e-9 {
				t.Errorf("%s on %s: broke semantics (Δ=%g)", tool.Name(), gs.Name, d)
			}
			if !gs.IsNative(out) {
				t.Errorf("%s on %s: emitted non-native gates", tool.Name(), gs.Name)
			}
		}
	}
}

func TestFixedPassDeterministic(t *testing.T) {
	c := smallBench(t, gateset.Nam)
	q := NewQiskit()
	a := q.Optimize(c, gateset.Nam, opt.TwoQubitCost(), time.Second, 1)
	b := q.Optimize(c, gateset.Nam, opt.TwoQubitCost(), time.Second, 2)
	if !circuit.Equal(a, b) {
		t.Fatal("fixed-pass optimizer is not deterministic")
	}
}

func TestPyZXReducesTNotCX(t *testing.T) {
	c := smallBench(t, gateset.CliffordT)
	out := NewPyZX().Optimize(c, gateset.CliffordT, opt.TCost(), time.Second, 1)
	if out.TwoQubitCount() != c.TwoQubitCount() {
		t.Fatalf("pyzx proxy changed CX count %d -> %d", c.TwoQubitCount(), out.TwoQubitCount())
	}
	if out.TCount() > c.TCount() {
		t.Fatalf("pyzx proxy increased T count")
	}
}

func TestPartitionBlocksCoverAndBound(t *testing.T) {
	c := smallBench(t, gateset.Nam)
	p := NewBQSKit(1e-8)
	blocks := p.Blocks(c)
	covered := map[int]bool{}
	for _, b := range blocks {
		if len(b.Qubits) > p.MaxQubits {
			t.Fatalf("block spans %d qubits", len(b.Qubits))
		}
		for _, i := range b.Indices {
			if covered[i] {
				t.Fatalf("gate %d in two blocks", i)
			}
			covered[i] = true
		}
	}
	if len(covered) != c.Len() {
		t.Fatalf("blocks cover %d of %d gates", len(covered), c.Len())
	}
}

func TestGUOQBeatsQiskitOnRedundantCircuit(t *testing.T) {
	// The headline claim in miniature: on a structured circuit, GUOQ's
	// randomized search must beat a fixed pass pipeline given some budget.
	gs := gateset.Nam
	src := benchmarks.BarencoTof(5)
	c, err := gateset.Translate(src, gs)
	if err != nil {
		t.Fatal(err)
	}
	cost := opt.TwoQubitCost()
	qiskit := NewQiskit().Optimize(c, gs, cost, time.Second, 1)
	guoq := NewGUOQ(1e-8).Optimize(c, gs, cost, 2*time.Second, 1)
	if guoq.TwoQubitCount() > qiskit.TwoQubitCount() {
		t.Fatalf("guoq (%d 2q) worse than qiskit (%d 2q)",
			guoq.TwoQubitCount(), qiskit.TwoQubitCount())
	}
}

func TestByNameRegistry(t *testing.T) {
	names := []string{"qiskit", "tket", "voqc", "bqskit", "synthetiq", "queso",
		"quartz", "quarl", "pyzx", "guoq", "guoq-rewrite", "guoq-resynth",
		"guoq-seq-rewrite-resynth", "guoq-seq-resynth-rewrite", "guoq-beam",
		"portfolio", "partition-parallel"}
	for _, n := range names {
		tool, err := ByName(n, 1e-8)
		if err != nil {
			t.Errorf("ByName(%s): %v", n, err)
			continue
		}
		if tool.Name() != n {
			t.Errorf("ByName(%s).Name() = %s", n, tool.Name())
		}
	}
	if _, err := ByName("nope", 1e-8); err == nil {
		t.Error("unknown tool should fail")
	}
}
