package baselines

import (
	"math/rand"
	"testing"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/opt"
)

// TestGUOQRegistryDefaultBitIdentical pins the satellite invariant of the
// registry refactor at the runner level: a seeded synchronous run with the
// implicit default registry (Registry nil) is bit-identical to one with
// the registry spelled out explicitly — i.e. the registry-driven path
// reproduces the pre-refactor hardcoded construction exactly.
func TestGUOQRegistryDefaultBitIdentical(t *testing.T) {
	gs := gateset.Nam
	c := circuit.Random(4, 40, gs.Gates, rand.New(rand.NewSource(21)))
	cost := opt.TwoQubitCost()

	run := func(reg *opt.Registry) *circuit.Circuit {
		g := &GUOQ{Tool: "guoq", Mode: ModeFull, Epsilon: 1e-8, MaxIters: 300, Registry: reg}
		out, _ := g.OptimizeStats(c, gs, cost, 10*time.Second, 33)
		return out
	}
	implicit := run(nil)
	explicit := run(opt.DefaultRegistry())
	if !circuit.Equal(implicit, explicit) {
		t.Fatalf("seeded outputs diverge: implicit default registry %d gates, explicit %d gates",
			implicit.Len(), explicit.Len())
	}
	// And a registry with an extra no-op-free provider yields a still-valid
	// (never-worse) result through the same runner.
	extended := run(opt.DefaultRegistry().With(opt.Static()))
	if !circuit.Equal(implicit, extended) {
		t.Fatal("empty extension provider changed the seeded output")
	}
}
