package baselines

import (
	"context"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/linalg"
	"github.com/guoq-dev/guoq/internal/opt"
	"github.com/guoq-dev/guoq/internal/partition"
	"github.com/guoq-dev/guoq/internal/synth"
	"github.com/guoq-dev/guoq/internal/synth/finite"
	"github.com/guoq-dev/guoq/internal/synth/numeric"
)

// Partition is the BQSKit/QUEST-style resynthesis optimizer of Table 3: a
// single pass that partitions the circuit into ≤ MaxQubits-qubit blocks and
// resynthesizes each block independently. As §7 notes, the fixed partition
// misses optimizations straddling block boundaries — the structural
// weakness GUOQ's free subcircuit choice removes.
type Partition struct {
	Tool      string
	MaxQubits int
	// Epsilon is the global error budget, split evenly across blocks
	// (QUEST-style ε/k per block).
	Epsilon float64
	// UseFinite selects the Synthetiq-style synthesizer (the paper's
	// "BQSKit-style partitioning optimizer that uses Synthetiq" for Q4).
	UseFinite bool
}

// NewBQSKit is the continuous-set partition optimizer.
func NewBQSKit(eps float64) *Partition {
	return &Partition{Tool: "bqskit", MaxQubits: 3, Epsilon: eps}
}

// NewSynthetiqPartition is the Clifford+T partition optimizer used in Q4.
func NewSynthetiqPartition(eps float64) *Partition {
	return &Partition{Tool: "synthetiq", MaxQubits: 3, Epsilon: eps, UseFinite: true}
}

// Name implements Optimizer.
func (p *Partition) Name() string { return p.Tool }

// Blocks splits the circuit into consecutive convex blocks spanning at most
// MaxQubits qubits each (shared with the parallel engine via
// internal/partition).
func (p *Partition) Blocks(c *circuit.Circuit) []*circuit.Region {
	return partition.Blocks(c, p.MaxQubits)
}

// Optimize implements Optimizer: one partition pass, resynthesizing each
// block and keeping the replacement only when it improves the cost.
func (p *Partition) Optimize(c *circuit.Circuit, gs *gateset.GateSet, cost opt.Cost, budget time.Duration, seed int64) *circuit.Circuit {
	return p.OptimizeContext(context.Background(), c, gs, cost, budget, seed)
}

// OptimizeContext implements ContextOptimizer: cancellation is observed
// between blocks, so a cancelled pass returns the blocks already improved.
func (p *Partition) OptimizeContext(ctx context.Context, c *circuit.Circuit, gs *gateset.GateSet, cost opt.Cost, budget time.Duration, seed int64) *circuit.Circuit {
	var syn synth.Synthesizer
	if p.UseFinite || !gs.Continuous() {
		fs := finite.New()
		fs.Seed = seed
		syn = fs
	} else {
		ns := numeric.New(gs)
		ns.Seed = seed
		syn = ns
	}
	deadline := time.Now().Add(budget)

	blocks := p.Blocks(c)
	if len(blocks) == 0 {
		return c
	}
	epsPerBlock := p.Epsilon / float64(len(blocks))
	out := c
	// Blocks are replaced back-to-front so earlier indices stay valid.
	for bi := len(blocks) - 1; bi >= 0; bi-- {
		if budget > 0 && time.Now().After(deadline) {
			break
		}
		if ctx.Err() != nil {
			break
		}
		region := blocks[bi]
		sub := region.Extract(out)
		if sub.Len() < 2 {
			continue
		}
		target := sub.Unitary()
		repl, err := syn.Synthesize(target, sub.NumQubits, epsPerBlock)
		if err != nil {
			continue
		}
		if linalg.HSDistance(target, repl.Unitary()) > epsPerBlock {
			continue
		}
		cand := region.Replace(out, repl)
		if cost(cand) < cost(out) {
			out = cand
		}
	}
	return keepBetter(c, out, cost)
}
