package baselines

import (
	"context"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/opt"
	"github.com/guoq-dev/guoq/internal/phasepoly"
	"github.com/guoq-dev/guoq/internal/rewrite"
)

// FixedPass is the "fixed sequence of passes" optimizer family of Table 3
// (Qiskit, tket, VOQC): deterministic, fast, local, no search. The three
// profiles differ in pass inventory, mirroring the tools' relative strength
// on two-qubit reduction.
//
// The pipeline runs against one persistent rewrite.Engine: rule passes
// reuse its incremental DAG and match caches across rounds, and the
// whole-circuit passes report changed counts instead of being compared
// deep-Equal against their input.
type FixedPass struct {
	Tool   string
	Passes []Pass
	// Rounds repeats the pipeline (tket-style deeper pipelines).
	Rounds int
}

// Pass is one deterministic rewrite pass over the pipeline's engine. It
// returns how many sites it changed (zero for a no-op).
type Pass func(e *rewrite.Engine, gs *gateset.GateSet) int

// CleanupPass cancels inverse pairs and merges adjacent rotations.
func CleanupPass(e *rewrite.Engine, gs *gateset.GateSet) int {
	out, changed := rewrite.CleanupChanged(e.Circuit(), gs.Name)
	if changed > 0 {
		e.SetCircuit(out)
	}
	return changed
}

// FusePass fuses single-qubit runs (continuous sets only).
func FusePass(e *rewrite.Engine, gs *gateset.GateSet) int {
	if !gs.Continuous() {
		return 0
	}
	out, changed := rewrite.Fuse1QChanged(e.Circuit(), gs)
	if changed > 0 {
		e.SetCircuit(out)
	}
	return changed
}

// FoldPass runs global phase folding (rotation merging).
func FoldPass(e *rewrite.Engine, gs *gateset.GateSet) int {
	out, changed := phasepoly.FoldChanged(e.Circuit(), gs.Name)
	if changed > 0 {
		e.SetCircuit(out)
	}
	return changed
}

// RulesPass applies every library rule once, full-pass, in a fixed order
// (commutation-aware cancellation).
func RulesPass(e *rewrite.Engine, gs *gateset.GateSet) int {
	rules, err := rewrite.RulesFor(gs.Name)
	if err != nil {
		return 0
	}
	sites := 0
	for _, r := range rules {
		if r.Delta() >= 0 {
			continue // fixed-pass pipelines only run reducing rules
		}
		sites += e.FullPass(r, 0)
	}
	return sites
}

// CommutationPass applies the size-neutral commutation rules once each,
// then the reducing rules — the "commutative cancellation" trick of
// Qiskit/tket pipelines.
func CommutationPass(e *rewrite.Engine, gs *gateset.GateSet) int {
	rules, err := rewrite.RulesFor(gs.Name)
	if err != nil {
		return 0
	}
	sites := 0
	for _, r := range rules {
		if r.Delta() == 0 {
			sites += e.FullPass(r, 0)
		}
	}
	return sites + RulesPass(e, gs)
}

// The three fixed-pass profiles. Relative strength (tket > qiskit ≳ voqc on
// 2q reduction) follows the paper's Q1 ordering.

// NewQiskit mirrors Qiskit -O3: cleanup, 1q fusion, commutative
// cancellation, two rounds.
func NewQiskit() *FixedPass {
	return &FixedPass{
		Tool:   "qiskit",
		Passes: []Pass{CleanupPass, FusePass, CommutationPass, CleanupPass},
		Rounds: 2,
	}
}

// NewTket mirrors tket's deeper default pipeline: adds phase folding and an
// extra round.
func NewTket() *FixedPass {
	return &FixedPass{
		Tool:   "tket",
		Passes: []Pass{CleanupPass, FoldPass, FusePass, CommutationPass, CleanupPass},
		Rounds: 3,
	}
}

// NewVOQC mirrors VOQC's verified pass list: rotation merging and
// cancellation, no generic 1q resynthesis.
func NewVOQC() *FixedPass {
	return &FixedPass{
		Tool:   "voqc",
		Passes: []Pass{CleanupPass, FoldPass, RulesPass, CleanupPass},
		Rounds: 2,
	}
}

// Name implements Optimizer.
func (f *FixedPass) Name() string { return f.Tool }

// Optimize implements Optimizer. Fixed-pass tools ignore the budget and the
// seed: they are deterministic and fast.
func (f *FixedPass) Optimize(c *circuit.Circuit, gs *gateset.GateSet, cost opt.Cost, budget time.Duration, seed int64) *circuit.Circuit {
	return f.OptimizeContext(context.Background(), c, gs, cost, budget, seed)
}

// OptimizeContext implements ContextOptimizer: cancellation is observed
// between rounds (individual passes are fast and always run to completion,
// so the committed state is a whole-pipeline prefix, never a torn pass).
func (f *FixedPass) OptimizeContext(ctx context.Context, c *circuit.Circuit, gs *gateset.GateSet, cost opt.Cost, _ time.Duration, _ int64) *circuit.Circuit {
	eng := rewrite.NewEngine(c)
	rounds := f.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	for r := 0; r < rounds; r++ {
		if ctx.Err() != nil {
			break
		}
		before := eng.Circuit().Len()
		for _, p := range f.Passes {
			p(eng, gs)
		}
		eng.Commit()
		if eng.Circuit().Len() == before {
			break
		}
	}
	return keepBetter(c, eng.Circuit(), cost)
}
