package baselines

import (
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/opt"
	"github.com/guoq-dev/guoq/internal/phasepoly"
	"github.com/guoq-dev/guoq/internal/rewrite"
)

// FixedPass is the "fixed sequence of passes" optimizer family of Table 3
// (Qiskit, tket, VOQC): deterministic, fast, local, no search. The three
// profiles differ in pass inventory, mirroring the tools' relative strength
// on two-qubit reduction.
type FixedPass struct {
	Tool   string
	Passes []Pass
	// Rounds repeats the pipeline (tket-style deeper pipelines).
	Rounds int
}

// Pass is one deterministic rewrite pass.
type Pass func(c *circuit.Circuit, gs *gateset.GateSet) *circuit.Circuit

// CleanupPass cancels inverse pairs and merges adjacent rotations.
func CleanupPass(c *circuit.Circuit, gs *gateset.GateSet) *circuit.Circuit {
	return rewrite.Cleanup(c, gs.Name)
}

// FusePass fuses single-qubit runs (continuous sets only).
func FusePass(c *circuit.Circuit, gs *gateset.GateSet) *circuit.Circuit {
	if !gs.Continuous() {
		return c
	}
	return rewrite.Fuse1Q(c, gs)
}

// FoldPass runs global phase folding (rotation merging).
func FoldPass(c *circuit.Circuit, gs *gateset.GateSet) *circuit.Circuit {
	return phasepoly.Fold(c, gs.Name)
}

// RulesPass applies every library rule once, full-pass, in a fixed order
// (commutation-aware cancellation).
func RulesPass(c *circuit.Circuit, gs *gateset.GateSet) *circuit.Circuit {
	rules, err := rewrite.RulesFor(gs.Name)
	if err != nil {
		return c
	}
	out := c
	for _, r := range rules {
		if r.Delta() >= 0 {
			continue // fixed-pass pipelines only run reducing rules
		}
		out, _ = rewrite.FullPass(out, r, 0)
	}
	return out
}

// CommutationPass applies the size-neutral commutation rules once each,
// then the reducing rules — the "commutative cancellation" trick of
// Qiskit/tket pipelines.
func CommutationPass(c *circuit.Circuit, gs *gateset.GateSet) *circuit.Circuit {
	rules, err := rewrite.RulesFor(gs.Name)
	if err != nil {
		return c
	}
	out := c
	for _, r := range rules {
		if r.Delta() == 0 {
			out, _ = rewrite.FullPass(out, r, 0)
		}
	}
	return RulesPass(out, gs)
}

// The three fixed-pass profiles. Relative strength (tket > qiskit ≳ voqc on
// 2q reduction) follows the paper's Q1 ordering.

// NewQiskit mirrors Qiskit -O3: cleanup, 1q fusion, commutative
// cancellation, two rounds.
func NewQiskit() *FixedPass {
	return &FixedPass{
		Tool:   "qiskit",
		Passes: []Pass{CleanupPass, FusePass, CommutationPass, CleanupPass},
		Rounds: 2,
	}
}

// NewTket mirrors tket's deeper default pipeline: adds phase folding and an
// extra round.
func NewTket() *FixedPass {
	return &FixedPass{
		Tool:   "tket",
		Passes: []Pass{CleanupPass, FoldPass, FusePass, CommutationPass, CleanupPass},
		Rounds: 3,
	}
}

// NewVOQC mirrors VOQC's verified pass list: rotation merging and
// cancellation, no generic 1q resynthesis.
func NewVOQC() *FixedPass {
	return &FixedPass{
		Tool:   "voqc",
		Passes: []Pass{CleanupPass, FoldPass, RulesPass, CleanupPass},
		Rounds: 2,
	}
}

// Name implements Optimizer.
func (f *FixedPass) Name() string { return f.Tool }

// Optimize implements Optimizer. Fixed-pass tools ignore the budget and the
// seed: they are deterministic and fast.
func (f *FixedPass) Optimize(c *circuit.Circuit, gs *gateset.GateSet, cost opt.Cost, _ time.Duration, _ int64) *circuit.Circuit {
	out := c
	rounds := f.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	for r := 0; r < rounds; r++ {
		before := out.Len()
		for _, p := range f.Passes {
			out = p(out, gs)
		}
		if out.Len() == before {
			break
		}
	}
	return keepBetter(c, out, cost)
}
