package finite

import (
	"math/rand"
	"testing"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/linalg"
)

func TestIdentityIsEmpty(t *testing.T) {
	s := New()
	out, err := s.Synthesize(linalg.Identity(4), 2, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("identity gave %d gates", out.Len())
	}
}

func TestBFS1QFindsMinimal(t *testing.T) {
	s := New()
	// Target: T·H (2 gates). BFS must find a word of length ≤ 2.
	c := circuit.New(1)
	c.Append(gate.NewH(0), gate.NewT(0))
	out, err := s.Synthesize(c.Unitary(), 1, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() > 2 {
		t.Fatalf("BFS found %d gates for an H·T target", out.Len())
	}
	if d := linalg.HSDistance(out.Unitary(), c.Unitary()); d > 1e-8 {
		t.Fatalf("distance %g", d)
	}
}

func TestBFS1QRandomWords(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := New()
	vocab := []gate.Name{gate.H, gate.T, gate.Tdg, gate.S, gate.X}
	for trial := 0; trial < 10; trial++ {
		c := circuit.Random(1, 6, vocab, rng)
		out, err := s.Synthesize(c.Unitary(), 1, 1e-8)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if out.Len() > 6 {
			t.Fatalf("trial %d: found %d gates for a 6-gate target", trial, out.Len())
		}
		if d := linalg.HSDistance(out.Unitary(), c.Unitary()); d > 1e-8 {
			t.Fatalf("trial %d: distance %g", trial, d)
		}
	}
}

func TestAnneal2QShortTargets(t *testing.T) {
	s := New()
	s.Seed = 42
	// cx·(t ⊗ id) — a 2-gate Clifford+T circuit.
	c := circuit.New(2)
	c.Append(gate.NewT(1), gate.NewCX(0, 1))
	out, err := s.Synthesize(c.Unitary(), 2, 1e-8)
	if err != nil {
		t.Skipf("annealer missed a short target within budget: %v", err)
	}
	if d := linalg.HSDistance(out.Unitary(), c.Unitary()); d > 1e-8 {
		t.Fatalf("distance %g", d)
	}
	if !gateset.CliffordT.IsNative(out) {
		t.Fatal("non-native output")
	}
}

func TestAnnealRespectsTolerance(t *testing.T) {
	// Whatever the annealer returns must be within eps.
	rng := rand.New(rand.NewSource(2))
	s := New()
	s.Iters = 1500
	vocab := []gate.Name{gate.H, gate.T, gate.S, gate.X, gate.CX}
	for trial := 0; trial < 3; trial++ {
		c := circuit.Random(2, 4, vocab, rng)
		out, err := s.Synthesize(c.Unitary(), 2, 1e-8)
		if err != nil {
			continue // no solution found is acceptable
		}
		if d := linalg.HSDistance(out.Unitary(), c.Unitary()); d > 1e-8 {
			t.Fatalf("trial %d: returned a solution outside tolerance: %g", trial, d)
		}
	}
}

func TestTooManyQubitsRejected(t *testing.T) {
	s := New()
	if _, err := s.Synthesize(linalg.Identity(16), 4, 1e-8); err == nil {
		t.Fatal("4 qubits should be rejected")
	}
}
