// Package finite implements Synthetiq-style synthesis for finite gate sets
// (Clifford+T): simulated annealing over gate sequences scored by
// Hilbert–Schmidt distance, plus an exact breadth-first search for
// single-qubit targets. As the paper observes in Q4, synthesis over finite
// sets is much harder than over continuous ones — the annealer succeeds on
// short/structured targets and reports ErrNoSolution otherwise, which is
// exactly the regime Fig. 13 documents (rewrite rules contribute more than
// resynthesis for Clifford+T).
package finite

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/linalg"
	"github.com/guoq-dev/guoq/internal/rewrite"
	"github.com/guoq-dev/guoq/internal/synth"
)

// Synthesizer searches Clifford+T circuits matching a target unitary.
type Synthesizer struct {
	// MaxGates bounds candidate circuit length during annealing.
	MaxGates int
	// Iters is the annealing iteration budget per restart.
	Iters int
	// Restarts is the number of annealing restarts.
	Restarts int
	// BFSDepth bounds the exact single-qubit search.
	BFSDepth int
	// MaxTime bounds one Synthesize call; zero means unbounded.
	MaxTime time.Duration
	// Seed makes synthesis deterministic per target.
	Seed int64
}

// New returns a synthesizer with default budgets.
func New() *Synthesizer {
	return &Synthesizer{
		MaxGates: 24,
		Iters:    4000,
		Restarts: 3,
		BFSDepth: 12,
		MaxTime:  500 * time.Millisecond,
		Seed:     1,
	}
}

// Name implements synth.Synthesizer.
func (s *Synthesizer) Name() string { return "finite-cliffordt" }

// vocabulary of moves: every Clifford+T gate on every qubit / qubit pair.
func moves(n int) []gate.Gate {
	var out []gate.Gate
	for q := 0; q < n; q++ {
		for _, g := range []gate.Name{gate.H, gate.X, gate.S, gate.Sdg, gate.T, gate.Tdg} {
			out = append(out, gate.New(g, []int{q}, nil))
		}
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b {
				out = append(out, gate.NewCX(a, b))
			}
		}
	}
	return out
}

// Synthesize implements synth.Synthesizer.
func (s *Synthesizer) Synthesize(target linalg.Matrix, numQubits int, eps float64) (*circuit.Circuit, error) {
	return s.SynthesizeContext(context.Background(), target, numQubits, eps)
}

// SynthesizeContext implements synth.ContextSynthesizer: the BFS and the
// annealer poll ctx at the same cadence as their deadline checks, so a
// cancelled caller returns within a few search steps instead of draining a
// full MaxTime deadline.
func (s *Synthesizer) SynthesizeContext(ctx context.Context, target linalg.Matrix, numQubits int, eps float64) (*circuit.Circuit, error) {
	if target.N != 1<<numQubits {
		return nil, fmt.Errorf("finite: target dim %d for %d qubits", target.N, numQubits)
	}
	if numQubits > 3 {
		return nil, fmt.Errorf("finite: %d qubits exceeds the 3-qubit resynthesis limit", numQubits)
	}
	tol := math.Max(eps, 1e-9)
	if linalg.EqualUpToPhase(target, linalg.Identity(target.N), tol) {
		return circuit.New(numQubits), nil
	}
	if numQubits == 1 {
		if c, ok := s.bfs1q(ctx, target, tol); ok {
			return c, nil
		}
		return nil, synth.ErrNoSolution
	}
	if c, ok := s.anneal(ctx, target, numQubits, tol); ok {
		return c, nil
	}
	return nil, synth.ErrNoSolution
}

// cancelled is the non-blocking ctx poll shared by the search loops.
func cancelled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// bfs1q searches single-qubit Clifford+T words breadth-first with
// phase-canonical deduplication, returning a minimal-length word.
func (s *Synthesizer) bfs1q(ctx context.Context, target linalg.Matrix, tol float64) (*circuit.Circuit, bool) {
	type node struct {
		u    linalg.Matrix
		word []gate.Name
	}
	vocab := []gate.Name{gate.H, gate.X, gate.S, gate.Sdg, gate.T, gate.Tdg}
	seen := map[string]bool{}
	frontier := []node{{u: linalg.Identity(2)}}
	seen[canonKey(frontier[0].u)] = true
	deadline := time.Now().Add(s.MaxTime)
	for depth := 0; depth <= s.BFSDepth; depth++ {
		var next []node
		for _, nd := range frontier {
			if linalg.HSDistance(nd.u, target) <= tol {
				c := circuit.New(1)
				for _, w := range nd.word {
					c.Append(gate.New(w, []int{0}, nil))
				}
				return c, true
			}
			if depth == s.BFSDepth {
				continue
			}
			for _, g := range vocab {
				m := linalg.Mul(gate.Matrix(gate.New(g, []int{0}, nil)), nd.u)
				key := canonKey(m)
				if seen[key] {
					continue
				}
				seen[key] = true
				word := make([]gate.Name, len(nd.word)+1)
				copy(word, nd.word)
				word[len(nd.word)] = g
				next = append(next, node{u: m, word: word})
			}
			if s.MaxTime > 0 && time.Now().After(deadline) {
				return nil, false
			}
			if cancelled(ctx) {
				return nil, false
			}
		}
		frontier = next
	}
	return nil, false
}

// canonKey produces a global-phase-invariant fingerprint of a 2×2 unitary.
func canonKey(m linalg.Matrix) string {
	// Normalize phase: divide by the phase of the largest-magnitude entry.
	var big complex128
	var mag float64
	for _, v := range m.Data {
		a := real(v)*real(v) + imag(v)*imag(v)
		if a > mag {
			mag = a
			big = v
		}
	}
	ph := big / complex(math.Sqrt(mag), 0)
	inv := 1 / ph
	buf := make([]byte, 0, 64)
	for _, v := range m.Data {
		w := v * inv
		buf = append(buf, byte(int8(real(w)*100)), byte(int8(imag(w)*100)))
	}
	return string(buf)
}

// anneal runs simulated annealing over bounded gate sequences: moves are
// insert / delete / replace; the score is the HS distance with a small
// length penalty; on success the result is greedily pruned.
func (s *Synthesizer) anneal(ctx context.Context, target linalg.Matrix, n int, tol float64) (*circuit.Circuit, bool) {
	rng := rand.New(rand.NewSource(s.Seed ^ hashMatrix(target)))
	vocab := moves(n)
	deadline := time.Now().Add(s.MaxTime)

	cost := func(gs []gate.Gate) float64 {
		u := linalg.Identity(target.N)
		for _, g := range gs {
			linalg.ApplyGateLeft(gate.Matrix(g), g.Qubits, n, u)
		}
		return linalg.HSDistance(u, target)
	}

	for restart := 0; restart < s.Restarts; restart++ {
		var cur []gate.Gate
		curCost := cost(cur)
		temp := 0.3
		for it := 0; it < s.Iters; it++ {
			temp *= 0.999
			cand := mutate(cur, vocab, s.MaxGates, rng)
			cc := cost(cand)
			if cc <= curCost || rng.Float64() < math.Exp((curCost-cc)/math.Max(temp, 1e-4)) {
				cur, curCost = cand, cc
			}
			if curCost <= tol {
				return s.prune(cur, target, n, tol), true
			}
			if it%128 == 0 {
				if s.MaxTime > 0 && time.Now().After(deadline) {
					return nil, false
				}
				if cancelled(ctx) {
					return nil, false
				}
			}
		}
	}
	return nil, false
}

func mutate(cur []gate.Gate, vocab []gate.Gate, maxGates int, rng *rand.Rand) []gate.Gate {
	out := make([]gate.Gate, len(cur))
	copy(out, cur)
	switch op := rng.Intn(3); {
	case op == 0 && len(out) < maxGates: // insert
		pos := rng.Intn(len(out) + 1)
		g := vocab[rng.Intn(len(vocab))]
		out = append(out, gate.Gate{})
		copy(out[pos+1:], out[pos:])
		out[pos] = g
	case op == 1 && len(out) > 0: // delete
		pos := rng.Intn(len(out))
		out = append(out[:pos], out[pos+1:]...)
	case op == 2 && len(out) > 0: // replace
		out[rng.Intn(len(out))] = vocab[rng.Intn(len(vocab))]
	default:
		if len(out) < maxGates {
			pos := rng.Intn(len(out) + 1)
			g := vocab[rng.Intn(len(vocab))]
			out = append(out, gate.Gate{})
			copy(out[pos+1:], out[pos:])
			out[pos] = g
		}
	}
	return out
}

// prune greedily removes gates that keep the distance within tol, then
// cleans the result.
func (s *Synthesizer) prune(gs []gate.Gate, target linalg.Matrix, n int, tol float64) *circuit.Circuit {
	cur := make([]gate.Gate, len(gs))
	copy(cur, gs)
	dist := func(list []gate.Gate) float64 {
		u := linalg.Identity(target.N)
		for _, g := range list {
			linalg.ApplyGateLeft(gate.Matrix(g), g.Qubits, n, u)
		}
		return linalg.HSDistance(u, target)
	}
	for i := 0; i < len(cur); {
		trial := append(append([]gate.Gate{}, cur[:i]...), cur[i+1:]...)
		if dist(trial) <= tol {
			cur = trial
		} else {
			i++
		}
	}
	c := circuit.New(n)
	c.Append(cur...)
	return rewrite.Cleanup(c, gateset.CliffordT.Name)
}

func hashMatrix(m linalg.Matrix) int64 {
	var h uint64 = 14695981039346656037
	for _, v := range m.Data {
		h = (h ^ uint64(int64(real(v)*1e6))) * 1099511628211
		h = (h ^ uint64(int64(imag(v)*1e6))) * 1099511628211
	}
	return int64(h)
}
