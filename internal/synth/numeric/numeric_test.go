package numeric

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/linalg"
)

func TestTemplateUnitaryMatchesInstantiate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tpl := NewTemplate(2, [][2]int{{0, 1}, {0, 1}})
	params := make([]float64, tpl.NumParams())
	for i := range params {
		params[i] = rng.Float64()*2*math.Pi - math.Pi
	}
	u := tpl.Unitary(params)
	c := tpl.Instantiate(params)
	if !linalg.EqualUpToPhase(c.Unitary(), u, 1e-9) {
		t.Fatal("Instantiate disagrees with Unitary")
	}
}

func TestSweepMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	target := circuit.Random(2, 10, circuit.DefaultTestVocab, rng).Unitary()
	adj := linalg.Adjoint(target)
	tpl := NewTemplate(2, [][2]int{{0, 1}, {0, 1}, {0, 1}})
	params := make([]float64, tpl.NumParams())
	for i := range params {
		params[i] = rng.Float64()*2*math.Pi - math.Pi
	}
	prev := tpl.overlap(adj, params)
	for s := 0; s < 10; s++ {
		tau := tpl.sweep(adj, params)
		if tau < prev-1e-9 {
			t.Fatalf("sweep %d decreased overlap: %g -> %g", s, prev, tau)
		}
		prev = tau
	}
}

func TestSynthesize1Q(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := New(gateset.IBMQ20)
	for trial := 0; trial < 20; trial++ {
		c := circuit.Random(1, 6, []gate.Name{gate.H, gate.T, gate.S, gate.X, gate.Rz, gate.Rx}, rng)
		target := c.Unitary()
		out, err := s.Synthesize(target, 1, 1e-8)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if out.Len() > 1 {
			t.Fatalf("1q synthesis emitted %d gates, want ≤ 1", out.Len())
		}
		if d := linalg.HSDistance(out.Unitary(), target); d > 1e-8 {
			t.Fatalf("trial %d: distance %g", trial, d)
		}
	}
}

func TestSynthesize2QExactCX(t *testing.T) {
	// A plain CX must synthesize with exactly one CX.
	s := New(gateset.IBMQ20)
	target := gate.Matrix(gate.NewCX(0, 1))
	out, err := s.Synthesize(target, 2, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.TwoQubitCount(); got != 1 {
		t.Fatalf("CX synthesized with %d two-qubit gates:\n%v", got, out)
	}
	if d := linalg.HSDistance(out.Unitary(), target); d > 1e-8 {
		t.Fatalf("distance %g", d)
	}
}

func TestSynthesize2QRandom(t *testing.T) {
	// Random 2-qubit unitaries need at most 3 CX.
	rng := rand.New(rand.NewSource(4))
	s := New(gateset.IBMEagle)
	for trial := 0; trial < 5; trial++ {
		c := circuit.Random(2, 12, circuit.DefaultTestVocab, rng)
		target := c.Unitary()
		out, err := s.Synthesize(target, 2, 1e-8)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := out.TwoQubitCount(); got > 3 {
			t.Fatalf("trial %d: %d two-qubit gates, want ≤ 3", trial, got)
		}
		if d := linalg.HSDistance(out.Unitary(), target); d > 1e-7 {
			t.Fatalf("trial %d: distance %g", trial, d)
		}
		if !gateset.IBMEagle.IsNative(out) {
			t.Fatalf("trial %d: non-native output", trial)
		}
	}
}

func TestSynthesize2QIdentityIsEmpty(t *testing.T) {
	s := New(gateset.IBMQ20)
	out, err := s.Synthesize(linalg.Identity(4), 2, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("identity synthesized with %d gates", out.Len())
	}
}

func TestSynthesize3QGHZPrep(t *testing.T) {
	// The GHZ preparation circuit (h; cx; cx) has an 8×8 unitary needing 2
	// CX gates; the synthesizer should find ≤ a handful.
	c := circuit.New(3)
	c.Append(gate.NewH(0), gate.NewCX(0, 1), gate.NewCX(1, 2))
	target := c.Unitary()
	s := New(gateset.IBMQ20)
	// The default 500ms wall-clock budget is tuned for optimizer calls; under
	// a loaded CI runner (full-suite -race) this heaviest 8×8 case can starve
	// before the seeded search reaches its solution. The search itself is
	// deterministic — it just needs the CPU time.
	s.MaxTime = 10 * time.Second
	out, err := s.Synthesize(target, 3, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.HSDistance(out.Unitary(), target); d > 1e-7 {
		t.Fatalf("distance %g", d)
	}
	if got := out.TwoQubitCount(); got > 4 {
		t.Fatalf("GHZ prep used %d two-qubit gates", got)
	}
}

func TestSynthesizeApproximationHelps(t *testing.T) {
	// A CP with a tiny angle is within loose eps of a CX-free circuit; a
	// large eps must therefore yield fewer two-qubit gates than eps=1e-8.
	c := circuit.New(2)
	c.Append(gate.NewCP(0.02, 0, 1))
	target := c.Unitary()
	s := New(gateset.IBMQ20)
	tight, err := s.Synthesize(target, 2, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := s.Synthesize(target, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if loose.TwoQubitCount() >= tight.TwoQubitCount() && tight.TwoQubitCount() > 0 {
		t.Fatalf("loose eps gave %d 2q gates, tight gave %d — approximation should help",
			loose.TwoQubitCount(), tight.TwoQubitCount())
	}
	if d := linalg.HSDistance(loose.Unitary(), target); d > 0.05 {
		t.Fatalf("loose result exceeds its eps: %g", d)
	}
}

func TestSynthesizeRejectsFiniteSet(t *testing.T) {
	s := New(gateset.CliffordT)
	if _, err := s.Synthesize(linalg.Identity(2), 1, 1e-8); err == nil {
		t.Fatal("finite gate set should be rejected")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := circuit.Random(2, 8, circuit.DefaultTestVocab, rng)
	target := c.Unitary()
	s := New(gateset.IBMQ20)
	a, err := s.Synthesize(target, 2, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Synthesize(target, 2, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if !circuit.Equal(a, b) {
		t.Fatal("synthesis is not deterministic for identical targets")
	}
}

// TestSynthesizeContextCancelPrompt: a cancelled context aborts synthesis
// within one structure evaluation even when MaxTime is far away — the
// guarantee that lets the optimizer's cancellation path avoid draining a
// full synthesis deadline.
func TestSynthesizeContextCancelPrompt(t *testing.T) {
	s := New(gateset.IBMQ20)
	s.MaxTime = 30 * time.Second
	rng := rand.New(rand.NewSource(5))
	target := circuit.Random(3, 24, gateset.IBMQ20.Gates, rng).Unitary()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := s.SynthesizeContext(ctx, target, 3, 1e-8); err == nil {
		t.Fatal("cancelled synthesis reported success on a hard 3q target")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled synthesis took %v, want prompt return", elapsed)
	}
}
