// Package numeric implements BQSKit-style bottom-up synthesis for
// continuous gate sets: template circuits made of CX gates and
// parameterized single-qubit rotations, instantiated by Rotosolve-style
// exact coordinate ascent on the Hilbert–Schmidt overlap, searched
// structure-by-structure in increasing two-qubit gate count.
package numeric

import (
	"math"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/linalg"
)

// elem is one element of a template: either a fixed CX or a parameterized
// rotation (rz/ry) on one qubit. U3 sites are expanded to rz·ry·rz so every
// parameter is a single Pauli-rotation angle, which makes each coordinate of
// the overlap an exact sinusoid (see solve.go).
type elem struct {
	fixed  bool
	name   gate.Name // cx for fixed; rz or ry for parameterized
	qubits []int
}

// Template is a parameterized circuit skeleton on n qubits.
type Template struct {
	N      int
	Elems  []elem
	NumCX  int
	nparam int
}

// NewTemplate builds the standard bottom-up skeleton: a U3 on every qubit,
// then for each pair in pairs a CX followed by a U3 on each of its qubits.
func NewTemplate(n int, pairs [][2]int) *Template {
	t := &Template{N: n}
	for q := 0; q < n; q++ {
		t.addU3(q)
	}
	for _, p := range pairs {
		t.Elems = append(t.Elems, elem{fixed: true, name: gate.CX, qubits: []int{p[0], p[1]}})
		t.NumCX++
		t.addU3(p[0])
		t.addU3(p[1])
	}
	return t
}

func (t *Template) addU3(q int) {
	// U3(θ,φ,λ) ∝ Rz(φ)·Ry(θ)·Rz(λ): execution order rz(λ), ry(θ), rz(φ).
	t.Elems = append(t.Elems,
		elem{name: gate.Rz, qubits: []int{q}},
		elem{name: gate.Ry, qubits: []int{q}},
		elem{name: gate.Rz, qubits: []int{q}},
	)
	t.nparam += 3
}

// NumParams returns the number of free angles.
func (t *Template) NumParams() int { return t.nparam }

// Unitary evaluates the template at the given parameters.
func (t *Template) Unitary(params []float64) linalg.Matrix {
	u := linalg.Identity(1 << t.N)
	pi := 0
	for _, e := range t.Elems {
		var m linalg.Matrix
		if e.fixed {
			m = gate.Matrix(gate.New(e.name, e.qubits, nil))
		} else {
			m = gate.Matrix(gate.New(e.name, e.qubits, []float64{params[pi]}))
			pi++
		}
		linalg.ApplyGateLeft(m, e.qubits, t.N, u)
	}
	return u
}

// Instantiate renders the template at the given parameters as a circuit of
// rz/ry/cx gates, dropping (near-)zero rotations.
func (t *Template) Instantiate(params []float64) *circuit.Circuit {
	c := circuit.New(t.N)
	pi := 0
	for _, e := range t.Elems {
		if e.fixed {
			c.Append(gate.New(e.name, append([]int{}, e.qubits...), nil))
			continue
		}
		th := linalg.NormAngle(params[pi])
		pi++
		if math.Abs(th) > 1e-10 {
			c.Append(gate.New(e.name, append([]int{}, e.qubits...), []float64{th}))
		}
	}
	return c
}

// pairSets enumerates the two-qubit interaction pairs available on n qubits
// (all-to-all connectivity, as in the paper's setting where optimizers may
// change connectivity).
func pairSets(n int) [][2]int {
	var out [][2]int
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			out = append(out, [2]int{a, b})
		}
	}
	return out
}
