package numeric

import (
	"math"
	"math/cmplx"
	"math/rand"
	"time"

	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/linalg"
)

// Rotosolve-style exact coordinate ascent on the Hilbert–Schmidt overlap.
//
// For a template U(θ) = M_k ··· M_1 and target A, the normalized overlap is
// τ = Tr(A†·U)/N and Δ = sqrt(1 − |τ|²). Every parameterized element is a
// Pauli rotation M_p(θ) = cos(θ/2)·I − i·sin(θ/2)·P, so with all other
// angles fixed
//
//	Tr(A†·U) = a·cos(θ/2) + b·sin(θ/2)
//
// with a = Tr(L·R) and b = Tr(L·(−iP)·R) for the partial products L, R
// around position p. |a·cos x + b·sin x|² is a sinusoid in 2x, so the
// maximizing θ has the closed form θ* = atan2(C, A−B) with A = |a|²,
// B = |b|², C = 2·Re(a·conj(b)). Each sweep monotonically increases |τ|.

// overlap returns |Tr(A†·U(params))| / N.
func (t *Template) overlap(adj linalg.Matrix, params []float64) float64 {
	u := t.Unitary(params)
	return cmplx.Abs(linalg.Trace(linalg.Mul(adj, u))) / float64(u.N)
}

// Distance returns the HS distance of the instantiated template from the
// target (given as the target itself, not its adjoint).
func (t *Template) Distance(target linalg.Matrix, params []float64) float64 {
	return linalg.HSDistance(target, t.Unitary(params))
}

// sweep performs one coordinate-ascent pass over all parameters, returning
// the final |τ|. adj is the target's adjoint.
func (t *Template) sweep(adj linalg.Matrix, params []float64) float64 {
	dim := 1 << t.N
	// Suffix products S[i] = M_k ··· M_i (matrices applied after element i).
	k := len(t.Elems)
	suffix := make([]linalg.Matrix, k+1)
	suffix[k] = linalg.Identity(dim)
	pidx := make([]int, k)
	pi := t.nparam
	for i := k - 1; i >= 0; i-- {
		e := t.Elems[i]
		if !e.fixed {
			pi--
			pidx[i] = pi
		} else {
			pidx[i] = -1
		}
		m := suffix[i+1].Clone()
		// Left-multiplication by M_i happens on the right side of the
		// suffix: S[i] = S[i+1]·M_i, i.e. apply M_i's adjoint… Instead keep
		// S[i] = S[i+1]·Expand(M_i) by multiplying on the right:
		var gm linalg.Matrix
		if e.fixed {
			gm = gate.Matrix(gate.New(e.name, e.qubits, nil))
		} else {
			gm = gate.Matrix(gate.New(e.name, e.qubits, []float64{params[pidx[i]]}))
		}
		m = mulRight(m, gm, e.qubits, t.N)
		suffix[i] = m
	}
	// Prefix R = M_{i-1} ··· M_1, updated as we move right.
	prefix := linalg.Identity(dim)
	var tau float64
	for i := 0; i < k; i++ {
		e := t.Elems[i]
		if e.fixed {
			gm := gate.Matrix(gate.New(e.name, e.qubits, nil))
			linalg.ApplyGateLeft(gm, e.qubits, t.N, prefix)
			continue
		}
		// L = A†·S[i+1]; a = Tr(L·R), b = Tr(L·(−iP)·R).
		L := linalg.Mul(adj, suffix[i+1])
		LR := linalg.Mul(L, prefix)
		a := linalg.Trace(LR)
		// (−iP)·R: apply the Pauli generator to prefix.
		pr := prefix.Clone()
		var pauli linalg.Matrix
		if e.name == gate.Rz {
			pauli = linalg.FromRows([][]complex128{{-1i, 0}, {0, 1i}}) // −i·σz
		} else {
			pauli = linalg.FromRows([][]complex128{{0, -1}, {1, 0}}) // −i·σy
		}
		linalg.ApplyGateLeft(pauli, e.qubits, t.N, pr)
		b := linalg.Trace(linalg.Mul(L, pr))
		A := real(a)*real(a) + imag(a)*imag(a)
		B := real(b)*real(b) + imag(b)*imag(b)
		C := 2 * (real(a)*real(b) + imag(a)*imag(b))
		theta := math.Atan2(C, A-B)
		params[pidx[i]] = theta
		// Fold the updated element into the prefix.
		gm := gate.Matrix(gate.New(e.name, e.qubits, []float64{theta}))
		linalg.ApplyGateLeft(gm, e.qubits, t.N, prefix)
		// |τ| at the optimum of this coordinate.
		x := theta / 2
		v := complex(math.Cos(x), 0)*a + complex(math.Sin(x), 0)*b
		tau = cmplx.Abs(v) / float64(dim)
	}
	return tau
}

// mulRight returns m·Expand(g, qs) without materializing the expansion:
// right-multiplication acts on columns, which is left-multiplication of the
// adjoint; equivalently apply g^T to the row space. We implement it via
// (m·G) = (G^T·m^T)^T using ApplyGateLeft on the transpose.
func mulRight(m, g linalg.Matrix, qs []int, n int) linalg.Matrix {
	mt := transpose(m)
	linalg.ApplyGateLeft(transpose(g), qs, n, mt)
	return transpose(mt)
}

func transpose(m linalg.Matrix) linalg.Matrix {
	out := linalg.New(m.N)
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			out.Data[j*m.N+i] = m.Data[i*m.N+j]
		}
	}
	return out
}

// Optimize runs coordinate ascent from each initial parameter vector (plus
// zero and random restarts up to `restarts` total starts), stopping early on
// success or stall. It returns the best parameters and the achieved HS
// distance.
//
// Convergence is linear (≈0.85 contraction per sweep near the optimum), so
// reaching the 1e-9..1e-10 distances needed for tight ε budgets takes a few
// hundred sweeps; the stall detector cuts hopeless starts quickly. Note the
// raw overlap |τ| saturates at 1 within float64 long before the distance
// bottoms out, so progress is tracked with the accurate HSDistance, not τ.
func (t *Template) Optimize(target linalg.Matrix, inits [][]float64, restarts, maxSweeps int, tol float64, deadline time.Time) ([]float64, float64) {
	adj := linalg.Adjoint(target)
	rng := rand.New(rand.NewSource(hashMatrix(target) ^ int64(t.nparam)))
	var starts [][]float64
	starts = append(starts, inits...)
	for len(starts) < restarts {
		p := make([]float64, t.nparam)
		if len(starts) > len(inits) { // one zero start, the rest random
			for i := range p {
				p[i] = rng.Float64()*2*math.Pi - math.Pi
			}
		}
		starts = append(starts, p)
	}

	best := make([]float64, t.nparam)
	bestDist := math.Inf(1)
	for _, init := range starts {
		params := make([]float64, t.nparam)
		copy(params, init)
		lastDist := math.Inf(1)
		stall := 0
		for s := 0; s < maxSweeps; s++ {
			t.sweep(adj, params)
			if s%5 == 4 || s == maxSweeps-1 {
				d := t.Distance(target, params)
				if d < bestDist {
					bestDist = d
					copy(best, params)
				}
				if d <= tol {
					return best, bestDist
				}
				if d > lastDist*0.995 {
					stall++
					if stall >= 3 {
						break
					}
				} else {
					stall = 0
				}
				lastDist = d
				if !deadline.IsZero() && time.Now().After(deadline) {
					return best, bestDist
				}
			}
		}
		// Terminal convergence: coordinate ascent plateaus with a linear
		// rate near 1 on ill-conditioned instances; Levenberg–Marquardt
		// finishes quadratically from anywhere in the basin.
		if d := t.Distance(target, params); d < 5e-2 {
			d = t.PolishLM(target, params, 40, tol)
			if d < bestDist {
				bestDist = d
				copy(best, params)
			}
			if bestDist <= tol {
				return best, bestDist
			}
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
	}
	return best, bestDist
}
