package numeric

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/linalg"
)

func TestDet4(t *testing.T) {
	if d := det4(linalg.Identity(4)); cmplx.Abs(d-1) > 1e-12 {
		t.Fatalf("det(I) = %v", d)
	}
	// det of a diagonal matrix is the product of entries.
	m := linalg.Identity(4)
	m.Set(0, 0, 2i)
	m.Set(3, 3, -3)
	if d := det4(m); cmplx.Abs(d-(-6i)) > 1e-12 {
		t.Fatalf("det(diag) = %v, want -6i", d)
	}
	// det of a unitary has modulus 1.
	rng := rand.New(rand.NewSource(1))
	u := circuit.Random(2, 12, circuit.DefaultTestVocab, rng).Unitary()
	if d := det4(u); math.Abs(cmplx.Abs(d)-1) > 1e-9 {
		t.Fatalf("|det(U)| = %g", cmplx.Abs(d))
	}
}

// random2QWithCX builds a random 2-qubit circuit with exactly k CX gates
// separated by random single-qubit gates — its minimal CX count is ≤ k, and
// generically exactly k.
func random2QWithCX(k int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(2)
	sprinkle := func() {
		for q := 0; q < 2; q++ {
			c.Append(gate.NewU3(
				rng.Float64()*math.Pi,
				rng.Float64()*2*math.Pi-math.Pi,
				rng.Float64()*2*math.Pi-math.Pi, q))
		}
	}
	sprinkle()
	for i := 0; i < k; i++ {
		if rng.Intn(2) == 0 {
			c.Append(gate.NewCX(0, 1))
		} else {
			c.Append(gate.NewCX(1, 0))
		}
		sprinkle()
	}
	return c
}

func TestMinCXCountKnownGates(t *testing.T) {
	cases := []struct {
		name string
		u    linalg.Matrix
		want int
	}{
		{"identity", linalg.Identity(4), 0},
		{"cx", gate.Matrix(gate.NewCX(0, 1)), 1},
		{"cz", gate.Matrix(gate.NewCZ(0, 1)), 1},
		{"swap", gate.Matrix(gate.NewSwap(0, 1)), 3},
		{"local", linalg.Kron(gate.Matrix(gate.NewH(0)), gate.Matrix(gate.NewT(0))), 0},
	}
	for _, c := range cases {
		if got := MinCXCount(c.u); got != c.want {
			t.Errorf("%s: MinCXCount = %d, want %d", c.name, got, c.want)
		}
	}
	// iSWAP-class: rxx(π/2) composed with rzz-style phases needs 2.
	c2 := circuit.New(2)
	c2.Append(gate.NewRxx(math.Pi/3, 0, 1), gate.NewRzz(math.Pi/5, 0, 1))
	if got := MinCXCount(c2.Unitary()); got != 2 {
		t.Errorf("two-axis interaction: MinCXCount = %d, want 2", got)
	}
}

func TestMinCXCountGenericCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for k := 0; k <= 3; k++ {
		for trial := 0; trial < 10; trial++ {
			c := random2QWithCX(k, rng)
			got := MinCXCount(c.Unitary())
			if got > k {
				t.Fatalf("k=%d trial %d: predicted %d > constructed %d", k, trial, got, k)
			}
			// Generic angles almost surely need exactly k.
			if k <= 1 && got != k {
				t.Fatalf("k=%d trial %d: predicted %d", k, trial, got)
			}
		}
	}
}

func TestMinCXCountLocalInvariance(t *testing.T) {
	// The invariant must not change under pre/post single-qubit gates.
	rng := rand.New(rand.NewSource(3))
	base := random2QWithCX(2, rng)
	want := MinCXCount(base.Unitary())
	for trial := 0; trial < 10; trial++ {
		c := base.Clone()
		pre := circuit.New(2)
		pre.Append(gate.NewU3(rng.Float64()*3, rng.Float64(), rng.Float64(), rng.Intn(2)))
		pre.Append(c.Gates...)
		pre.Append(gate.NewU3(rng.Float64()*3, rng.Float64(), rng.Float64(), rng.Intn(2)))
		if got := MinCXCount(pre.Unitary()); got != want {
			t.Fatalf("trial %d: local gates changed invariant %d -> %d", trial, want, got)
		}
	}
}

// TestSearchStartsAtPredictedDepth checks the synthesizer integration: a
// 2-CX-class target must synthesize with exactly 2 CX.
func TestSearchStartsAtPredictedDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := New(gateset.IBMQ20)
	for trial := 0; trial < 5; trial++ {
		c := random2QWithCX(2, rng)
		u := c.Unitary()
		if MinCXCount(u) != 2 {
			continue // degenerate draw
		}
		out, err := s.Synthesize(u, 2, 1e-8)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := out.TwoQubitCount(); got != 2 {
			t.Fatalf("trial %d: synthesized with %d CX, invariant says 2", trial, got)
		}
	}
}
