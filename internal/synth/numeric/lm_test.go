package numeric

import (
	"math/rand"
	"testing"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
)

// TestPolishLMTerminalConvergence reproduces the coordinate-ascent plateau
// and checks that LM finishes the descent: targets in the 2-CX class that
// stall around 1e-4..1e-3 must reach 1e-10 after polishing.
func TestPolishLMTerminalConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 6; trial++ {
		c := circuit.New(2)
		sprinkle := func() {
			for q := 0; q < 2; q++ {
				c.Append(gate.NewU3(rng.Float64()*3, rng.Float64()*6-3, rng.Float64()*6-3, q))
			}
		}
		sprinkle()
		for i := 0; i < 2; i++ {
			c.Append(gate.NewCX(i%2, 1-i%2))
			sprinkle()
		}
		target := c.Unitary()
		tpl := NewTemplate(2, [][2]int{{0, 1}, {0, 1}})
		params, dist := tpl.Optimize(target, nil, 8, 200, 1e-10, time.Time{})
		if dist > 1e-9 {
			t.Fatalf("trial %d: optimize+LM reached only %g", trial, dist)
		}
		// And the distance claim must be self-consistent.
		if d := tpl.Distance(target, params); d > 1e-9 {
			t.Fatalf("trial %d: reported %g but recomputed %g", trial, dist, d)
		}
	}
}

func TestPolishLMNoParams(t *testing.T) {
	tpl := NewTemplate(1, nil)
	// A template with parameters exists even for bare qubits (prefix U3),
	// so build a degenerate case by consuming them first.
	params := make([]float64, tpl.NumParams())
	d := tpl.PolishLM(circuit.New(1).Unitary(), params, 10, 1e-10)
	if d > 1e-9 {
		t.Fatalf("identity polish distance %g", d)
	}
}

func TestPolishLMDoesNotDiverge(t *testing.T) {
	// Polishing from a far-away start must never make things worse than
	// the start.
	rng := rand.New(rand.NewSource(5))
	c := circuit.Random(2, 10, circuit.DefaultTestVocab, rng)
	target := c.Unitary()
	tpl := NewTemplate(2, [][2]int{{0, 1}})
	params := make([]float64, tpl.NumParams())
	for i := range params {
		params[i] = rng.Float64()*6 - 3
	}
	before := tpl.Distance(target, params)
	after := tpl.PolishLM(target, params, 25, 1e-12)
	if after > before+1e-12 {
		t.Fatalf("LM diverged: %g -> %g", before, after)
	}
}
