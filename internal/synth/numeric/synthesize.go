package numeric

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/linalg"
	"github.com/guoq-dev/guoq/internal/rewrite"
	"github.com/guoq-dev/guoq/internal/synth"
)

// Synthesizer is the BQSKit-style bottom-up numeric synthesizer: structures
// are explored in increasing CX count (so the first success has minimal
// two-qubit cost), each instantiated by coordinate ascent. Output circuits
// are translated into the target gate set and cleaned.
type Synthesizer struct {
	// GateSet is the continuous target set for emitted circuits.
	GateSet *gateset.GateSet
	// Restarts and MaxSweeps bound the per-structure optimization effort.
	Restarts  int
	MaxSweeps int
	// MaxBlocks bounds the structure depth for 3-qubit search.
	MaxBlocks int
	// Beam is the number of structures kept per depth in 3-qubit search.
	Beam int
	// MaxTime bounds one Synthesize call; zero means unbounded. Resynthesis
	// is the "slow" transformation (§5.3) — the budget keeps a single call
	// from starving the whole search.
	MaxTime time.Duration
	// Seed makes synthesis deterministic per target unitary.
	Seed int64
}

// New returns a synthesizer with the default budgets, tuned so a 3-qubit
// call takes tens to hundreds of milliseconds — the "slow" timescale of the
// paper, compressed proportionally to our compressed search budgets.
func New(gs *gateset.GateSet) *Synthesizer {
	return &Synthesizer{
		GateSet:   gs,
		Restarts:  3,
		MaxSweeps: 600,
		MaxBlocks: 8,
		Beam:      2,
		MaxTime:   500 * time.Millisecond,
		Seed:      1,
	}
}

// Name implements synth.Synthesizer.
func (s *Synthesizer) Name() string { return "numeric-" + s.GateSet.Name }

// Synthesize implements synth.Synthesizer.
func (s *Synthesizer) Synthesize(target linalg.Matrix, numQubits int, eps float64) (*circuit.Circuit, error) {
	return s.SynthesizeContext(context.Background(), target, numQubits, eps)
}

// SynthesizeContext implements synth.ContextSynthesizer: the structure
// search polls ctx between structure evaluations (and honours a ctx
// deadline earlier than MaxTime), so a cancelled caller gets ErrNoSolution
// within one coordinate-ascent evaluation instead of a full MaxTime drain.
func (s *Synthesizer) SynthesizeContext(ctx context.Context, target linalg.Matrix, numQubits int, eps float64) (*circuit.Circuit, error) {
	if !s.GateSet.Continuous() {
		return nil, fmt.Errorf("numeric: gate set %s is not continuous", s.GateSet.Name)
	}
	if target.N != 1<<numQubits {
		return nil, fmt.Errorf("numeric: target dim %d for %d qubits", target.N, numQubits)
	}
	// Distances below ~1e-10 are at the numeric floor of the optimizer;
	// clamp so exact solutions are accepted.
	tol := math.Max(eps, 1e-10)

	switch numQubits {
	case 1:
		return s.finish(one(target, numQubits))
	case 2, 3:
		tpl, params, dist := s.search(ctx, target, numQubits, tol)
		if tpl == nil || dist > tol {
			return nil, synth.ErrNoSolution
		}
		return s.finish(tpl.Instantiate(params), nil)
	}
	return nil, fmt.Errorf("numeric: %d qubits exceeds the 3-qubit resynthesis limit", numQubits)
}

// one solves the single-qubit case analytically via Euler angles.
func one(target linalg.Matrix, n int) (*circuit.Circuit, error) {
	c := circuit.New(n)
	th, ph, la, _ := linalg.U3Angles(target)
	if th > 1e-12 || math.Abs(linalg.NormAngle(ph+la)) > 1e-12 {
		c.Append(gate.NewU3(th, ph, la, 0))
	}
	return c, nil
}

// search explores structures in increasing CX count, so the first success
// carries the minimal two-qubit cost. For 2 qubits the structure space is a
// line (0..3 CX suffice by the KAK theorem); for 3 qubits a beam over pair
// sequences, warm-starting each child from its parent's parameters.
func (s *Synthesizer) search(ctx context.Context, target linalg.Matrix, n int, tol float64) (*Template, []float64, float64) {
	var deadline time.Time
	if s.MaxTime > 0 {
		deadline = time.Now().Add(s.MaxTime)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	// expired reports whether the search must stop: the wall-clock deadline
	// passed or the context was cancelled. Polled between structure
	// evaluations — the granularity that bounds cancellation latency.
	expired := func() bool {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return true
		}
		select {
		case <-ctx.Done():
			return true
		default:
			return false
		}
	}
	if expired() {
		return nil, nil, math.Inf(1)
	}
	type cand struct {
		pairs  [][2]int
		params []float64
		dist   float64
	}
	screenSweepsFor := func(nq int) int {
		if nq <= 2 {
			return 120
		}
		return 80
	}
	evaluate := func(pairs [][2]int, warm []float64) cand {
		tpl := NewTemplate(n, pairs)
		var inits [][]float64
		if warm != nil {
			// Parent params + zero angles for the appended block.
			w := make([]float64, tpl.NumParams())
			copy(w, warm)
			inits = append(inits, w)
		}
		params, dist := tpl.Optimize(target, inits, s.Restarts, screenSweepsFor(n), 1e-4, deadline)
		return cand{pairs: pairs, params: params, dist: dist}
	}

	// Two-stage evaluation: structures are screened at a loose tolerance
	// with few sweeps (enough to tell whether the structure can represent
	// the target), and only screening survivors are polished to the full
	// tolerance. Polishing is where the hundreds of sweeps go; screening
	// keeps the structure scan cheap.
	screenTol := math.Max(tol, 1e-3)
	polish := func(c cand) (cand, bool) {
		tpl := NewTemplate(n, c.pairs)
		params, dist := tpl.Optimize(target, [][]float64{c.params}, 1, s.MaxSweeps, tol, deadline)
		if dist <= tol {
			return cand{pairs: c.pairs, params: params, dist: dist}, true
		}
		return c, false
	}

	// Two-qubit fast path: the Makhlin invariants give the exact minimal CX
	// count, so jump straight to the right structure depth. Only valid for
	// near-exact tolerances — at loose ε a *shallower* structure may
	// approximate the target, which the incremental search below discovers.
	if n == 2 && tol < 1e-6 {
		k := MinCXCount(target)
		var structure [][2]int
		for i := 0; i < k; i++ {
			structure = append(structure, [2]int{0, 1})
		}
		// The depth is provably sufficient, so spend real restart effort
		// here: coordinate ascent can stall on individual starts.
		tpl := NewTemplate(n, structure)
		params, dist := tpl.Optimize(target, nil, 8, 200, screenTol, deadline)
		if dist <= screenTol {
			if pc, ok := polish(cand{pairs: structure, params: params, dist: dist}); ok {
				return NewTemplate(n, pc.pairs), pc.params, pc.dist
			}
		}
		// Fall through to the incremental search as a numeric safety net.
	}

	best := evaluate(nil, nil)
	if best.dist <= screenTol {
		if p, ok := polish(best); ok {
			return NewTemplate(n, p.pairs), p.params, p.dist
		}
	}
	beam := []cand{best}
	pairs := pairSets(n)
	for depth := 1; depth <= s.MaxBlocks; depth++ {
		var next []cand
		for _, b := range beam {
			for _, p := range pairs {
				ext := append(append([][2]int{}, b.pairs...), p)
				c := evaluate(ext, b.params)
				if c.dist <= screenTol {
					if pc, ok := polish(c); ok {
						return NewTemplate(n, pc.pairs), pc.params, pc.dist
					}
				}
				next = append(next, c)
				if expired() {
					break
				}
			}
		}
		if len(next) == 0 {
			break
		}
		// Keep the Beam best structures for the next depth.
		sort.Slice(next, func(i, j int) bool { return next[i].dist < next[j].dist })
		if len(next) > s.Beam {
			next = next[:s.Beam]
		}
		beam = next
		if expired() {
			break
		}
	}
	if len(beam) > 0 {
		b := beam[0]
		return NewTemplate(n, b.pairs), b.params, b.dist
	}
	return nil, nil, math.Inf(1)
}

// finish translates the raw rz/ry/cx circuit into the target gate set and
// runs the cleanup pass.
func (s *Synthesizer) finish(c *circuit.Circuit, err error) (*circuit.Circuit, error) {
	if err != nil {
		return nil, err
	}
	native, terr := gateset.Translate(c, s.GateSet)
	if terr != nil {
		return nil, terr
	}
	return rewrite.Cleanup(native, s.GateSet.Name), nil
}

// hashMatrix derives a deterministic seed from the target's entries so that
// synthesizing the same unitary twice explores the same restarts.
func hashMatrix(m linalg.Matrix) int64 {
	var h uint64 = 14695981039346656037
	for _, v := range m.Data {
		h = (h ^ uint64(int64(real(v)*1e6))) * 1099511628211
		h = (h ^ uint64(int64(imag(v)*1e6))) * 1099511628211
	}
	return int64(h)
}
