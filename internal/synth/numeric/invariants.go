package numeric

import (
	"math"
	"math/cmplx"

	"github.com/guoq-dev/guoq/internal/linalg"
)

// Shende–Bullock–Markov CNOT-count classification for two-qubit unitaries
// via the γ-trace local invariants.
//
// For U ∈ SU(4) let γ(U) = U·(Y⊗Y)·Uᵀ·(Y⊗Y) and
//
//	t1 = tr γ,   t2 = tr γ².
//
// t1 and t2 are invariant under local (single-qubit) gates, and the minimal
// number of CX gates needed to implement U with arbitrary single-qubit
// gates is (SBM 2004, Prop. III.1–3):
//
//	0  iff  t1 = ±4           (γ = ±I; e.g. identity, local gates)
//	1  iff  t1 = 0, t2 = −4   (γ eigenvalues {i,i,−i,−i}; e.g. CX, CZ)
//	2  iff  Im t1 = 0         (e.g. XX+ZZ interactions; SWAP fails: t1 = ±4i)
//	3  otherwise              (e.g. SWAP)
//
// A general U ∈ U(4) is first normalized by det(U)^{1/4}; the fourth-root
// branch only flips the sign of t1 (and leaves t2 unchanged), which none of
// the conditions above distinguish.
//
// The numeric synthesizer uses this to start its 2-qubit structure search
// at exactly the required CX count — no wasted optimization at infeasible
// depths and no overshooting.

// yy is (Y ⊗ Y).
var yy = linalg.FromRows([][]complex128{
	{0, 0, 0, -1},
	{0, 0, 1, 0},
	{0, 1, 0, 0},
	{-1, 0, 0, 0},
})

// gammaTraces computes (t1, t2) for a 4×4 unitary after SU(4)
// normalization.
func gammaTraces(u linalg.Matrix) (complex128, complex128) {
	phase := cmplx.Pow(det4(u), 0.25)
	us := linalg.Scale(1/phase, u)
	gamma := linalg.MulAll(us, yy, transpose(us), yy)
	t1 := linalg.Trace(gamma)
	t2 := linalg.Trace(linalg.Mul(gamma, gamma))
	return t1, t2
}

// MinCXCount returns the minimal CX count (0..3) needed to implement the
// 4×4 unitary u with arbitrary single-qubit gates.
func MinCXCount(u linalg.Matrix) int {
	const tol = 1e-9
	t1, t2 := gammaTraces(u)
	switch {
	case math.Abs(math.Abs(real(t1))-4) < tol && math.Abs(imag(t1)) < tol:
		return 0
	case cmplx.Abs(t1) < tol && cmplx.Abs(t2+4) < tol:
		return 1
	case math.Abs(imag(t1)) < tol:
		return 2
	default:
		return 3
	}
}

// det4 computes the determinant of a 4×4 complex matrix by cofactor
// expansion on 2×2 minors (no pivoting needed at this size for unitaries).
func det4(m linalg.Matrix) complex128 {
	a := m.Data
	m2 := func(r0, r1, c0, c1 int) complex128 {
		return a[r0*4+c0]*a[r1*4+c1] - a[r0*4+c1]*a[r1*4+c0]
	}
	// Laplace expansion along the first two rows.
	return m2(0, 1, 0, 1)*m2(2, 3, 2, 3) -
		m2(0, 1, 0, 2)*m2(2, 3, 1, 3) +
		m2(0, 1, 0, 3)*m2(2, 3, 1, 2) +
		m2(0, 1, 1, 2)*m2(2, 3, 0, 3) -
		m2(0, 1, 1, 3)*m2(2, 3, 0, 2) +
		m2(0, 1, 2, 3)*m2(2, 3, 0, 1)
}
