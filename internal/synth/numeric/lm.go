package numeric

import (
	"math"
	"math/cmplx"

	"github.com/guoq-dev/guoq/internal/linalg"
)

// Levenberg–Marquardt polish for template parameters. Coordinate ascent
// (solve.go) converges linearly and its rate approaches 1 on
// ill-conditioned instances, plateauing around 1e-4..1e-6; LM on the
// phase-aligned residuals converges quadratically near the optimum and
// finishes the job down to ~1e-12. The combination — global progress from
// coordinate ascent, terminal convergence from LM — is what lets the
// synthesizer honor ε budgets as tight as 1e-10.

// residuals writes the stacked real/imaginary parts of
// e^{-iφ}·U(params) − target into out, with φ the aligning phase.
func (t *Template) residuals(target linalg.Matrix, params []float64, out []float64) {
	u := t.Unitary(params)
	tr := linalg.TraceAdjointMul(target, u)
	ph := cmplx.Exp(complex(0, -cmplx.Phase(tr)))
	for i, v := range u.Data {
		d := ph*v - target.Data[i]
		out[2*i] = real(d)
		out[2*i+1] = imag(d)
	}
}

// PolishLM refines params in place with Levenberg–Marquardt, returning the
// achieved HS distance. The Jacobian is numeric (forward differences) —
// templates have tens of parameters and 4×4/8×8 unitaries, so an iteration
// costs microseconds.
func (t *Template) PolishLM(target linalg.Matrix, params []float64, maxIter int, tol float64) float64 {
	p := t.nparam
	if p == 0 {
		return t.Distance(target, params)
	}
	m := 2 * target.N * target.N
	r := make([]float64, m)
	rTrial := make([]float64, m)
	jac := make([]float64, m*p)
	jtj := make([]float64, p*p)
	jtr := make([]float64, p)
	delta := make([]float64, p)
	trial := make([]float64, p)

	cost := func(res []float64) float64 {
		var s float64
		for _, v := range res {
			s += v * v
		}
		return s
	}

	t.residuals(target, params, r)
	cur := cost(r)
	lambda := 1e-3
	const h = 1e-7

	for iter := 0; iter < maxIter; iter++ {
		if t.Distance(target, params) <= tol {
			break
		}
		// Numeric Jacobian.
		for j := 0; j < p; j++ {
			old := params[j]
			params[j] = old + h
			t.residuals(target, params, rTrial)
			params[j] = old
			for i := 0; i < m; i++ {
				jac[i*p+j] = (rTrial[i] - r[i]) / h
			}
		}
		// Normal equations JᵀJ, Jᵀr.
		for a := 0; a < p; a++ {
			jtr[a] = 0
			for b := a; b < p; b++ {
				var s float64
				for i := 0; i < m; i++ {
					s += jac[i*p+a] * jac[i*p+b]
				}
				jtj[a*p+b] = s
				jtj[b*p+a] = s
			}
			var s float64
			for i := 0; i < m; i++ {
				s += jac[i*p+a] * r[i]
			}
			jtr[a] = s
		}
		improved := false
		for attempt := 0; attempt < 8; attempt++ {
			// (JᵀJ + λ·diag(JᵀJ))·δ = −Jᵀr
			sys := make([]float64, p*p)
			copy(sys, jtj)
			for a := 0; a < p; a++ {
				d := jtj[a*p+a]
				if d < 1e-12 {
					d = 1e-12
				}
				sys[a*p+a] += lambda * d
			}
			for a := 0; a < p; a++ {
				delta[a] = -jtr[a]
			}
			if !linalg.SolveReal(sys, delta, p) {
				lambda *= 10
				continue
			}
			for a := 0; a < p; a++ {
				trial[a] = params[a] + delta[a]
			}
			t.residuals(target, trial, rTrial)
			if c := cost(rTrial); c < cur {
				copy(params, trial)
				copy(r, rTrial)
				cur = c
				lambda = math.Max(lambda/4, 1e-12)
				improved = true
				break
			}
			lambda *= 10
		}
		if !improved {
			break
		}
	}
	return t.Distance(target, params)
}
