// Package synth defines the unitary synthesis interface shared by the
// numeric (continuous gate sets, BQSKit-style) and finite (Clifford+T,
// Synthetiq-style) synthesizers, and the resynthesis wrapper of §4.1 that
// turns a synthesizer into a circuit transformation.
package synth

import (
	"context"
	"errors"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/linalg"
)

// ErrNoSolution is returned when a synthesizer cannot find a circuit within
// the requested tolerance and budget. Resynthesis transformations treat it
// as "keep the original subcircuit".
var ErrNoSolution = errors.New("synth: no solution within tolerance and budget")

// Synthesizer produces a circuit implementing a target unitary within eps
// Hilbert–Schmidt distance (Def. 3.2), minimizing the caller's cost notion
// (primarily two-qubit / T gates).
type Synthesizer interface {
	// Synthesize returns a circuit on numQubits qubits with
	// Δ(U_circuit, target) ≤ eps, or ErrNoSolution.
	Synthesize(target linalg.Matrix, numQubits int, eps float64) (*circuit.Circuit, error)
	// Name identifies the synthesizer in logs and experiment output.
	Name() string
}

// ContextSynthesizer is a Synthesizer whose search observes context
// cancellation: SynthesizeContext returns (typically with ErrNoSolution or
// the context's error) as soon as it notices ctx is done, instead of
// running to its own MaxTime deadline. Both built-in synthesizers
// implement it; the optimizer's cancellation path uses it so stopping a
// search never drains a full synthesis deadline.
type ContextSynthesizer interface {
	Synthesizer
	SynthesizeContext(ctx context.Context, target linalg.Matrix, numQubits int, eps float64) (*circuit.Circuit, error)
}

// SynthesizeContext invokes s under ctx when it supports cancellation,
// degrading to the blocking Synthesize otherwise. A nil or Background ctx
// is equivalent to calling Synthesize directly.
func SynthesizeContext(ctx context.Context, s Synthesizer, target linalg.Matrix, numQubits int, eps float64) (*circuit.Circuit, error) {
	if cs, ok := s.(ContextSynthesizer); ok && ctx != nil {
		return cs.SynthesizeContext(ctx, target, numQubits, eps)
	}
	return s.Synthesize(target, numQubits, eps)
}

// Resynthesize is the thin wrapper of §4.1: it computes the subcircuit's
// unitary and invokes unitary synthesis, yielding an ε-equivalent circuit.
func Resynthesize(s Synthesizer, sub *circuit.Circuit, eps float64) (*circuit.Circuit, error) {
	return s.Synthesize(sub.Unitary(), sub.NumQubits, eps)
}
