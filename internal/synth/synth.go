// Package synth defines the unitary synthesis interface shared by the
// numeric (continuous gate sets, BQSKit-style) and finite (Clifford+T,
// Synthetiq-style) synthesizers, and the resynthesis wrapper of §4.1 that
// turns a synthesizer into a circuit transformation.
package synth

import (
	"errors"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/linalg"
)

// ErrNoSolution is returned when a synthesizer cannot find a circuit within
// the requested tolerance and budget. Resynthesis transformations treat it
// as "keep the original subcircuit".
var ErrNoSolution = errors.New("synth: no solution within tolerance and budget")

// Synthesizer produces a circuit implementing a target unitary within eps
// Hilbert–Schmidt distance (Def. 3.2), minimizing the caller's cost notion
// (primarily two-qubit / T gates).
type Synthesizer interface {
	// Synthesize returns a circuit on numQubits qubits with
	// Δ(U_circuit, target) ≤ eps, or ErrNoSolution.
	Synthesize(target linalg.Matrix, numQubits int, eps float64) (*circuit.Circuit, error)
	// Name identifies the synthesizer in logs and experiment output.
	Name() string
}

// Resynthesize is the thin wrapper of §4.1: it computes the subcircuit's
// unitary and invokes unitary synthesis, yielding an ε-equivalent circuit.
func Resynthesize(s Synthesizer, sub *circuit.Circuit, eps float64) (*circuit.Circuit, error) {
	return s.Synthesize(sub.Unitary(), sub.NumQubits, eps)
}
