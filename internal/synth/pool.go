package synth

import (
	"sync"
	"time"

	"github.com/guoq-dev/guoq/internal/obs"
)

// PoolMetrics carries the pool's optional instrumentation handles. All
// fields may be nil (nil instruments are no-ops), so a partially filled
// struct is fine.
type PoolMetrics struct {
	// QueueDepth tracks jobs accepted but not yet picked up by a worker.
	QueueDepth *obs.Gauge
	// Tasks counts jobs executed to completion.
	Tasks *obs.Counter
	// Steals counts jobs submitted while every worker was busy: they sat
	// in the shared queue until whichever worker freed first took them —
	// the work-stealing case, as opposed to a job that started immediately.
	Steals *obs.Counter
	// TaskSeconds observes each job's execution wall time.
	TaskSeconds *obs.Histogram
}

// Pool is a fixed-size worker pool for slow synthesis jobs. The optimizer
// historically gave every search worker a private background goroutine; on
// a machine running W searches with S synthesis workers each that admits
// W×S concurrent numerical searches and thrashes the CPU the fast rewrite
// loops need. A single shared Pool caps concurrency at its size while
// letting idle capacity drain whichever search produced work — simple work
// stealing: all submitters feed one queue, any free worker takes the next
// job regardless of origin.
//
// The pool is deliberately generic (jobs are plain funcs) so it stays free
// of optimizer types; the opt package layers result routing on top.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func() // guarded by mu
	closed bool     // guarded by mu
	idle   int      // workers currently waiting for a job; guarded by mu
	m      PoolMetrics
	wg     sync.WaitGroup
}

// NewPool starts a pool with size workers (at least one).
func NewPool(size int) *Pool {
	return NewPoolMetrics(size, nil)
}

// NewPoolMetrics starts a pool with size workers (at least one) reporting
// into m; a nil m disables instrumentation.
func NewPoolMetrics(size int, m *PoolMetrics) *Pool {
	if size < 1 {
		size = 1
	}
	p := &Pool{}
	if m != nil {
		p.m = *m
	}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(size)
	for i := 0; i < size; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		p.idle++
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		p.idle--
		if len(p.queue) == 0 { // closed and drained
			p.mu.Unlock()
			return
		}
		job := p.queue[0]
		p.queue = p.queue[1:]
		p.m.QueueDepth.Set(float64(len(p.queue)))
		p.mu.Unlock()
		t0 := time.Now()
		job()
		p.m.TaskSeconds.ObserveSince(t0)
		p.m.Tasks.Inc()
	}
}

// Submit enqueues a job for the next free worker. It returns false — and
// does not run the job — once the pool is closed, so a submitter racing
// Close can tell whether its job will ever produce a result.
func (p *Pool) Submit(job func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	if p.idle == 0 {
		p.m.Steals.Inc()
	}
	p.queue = append(p.queue, job)
	p.m.QueueDepth.Set(float64(len(p.queue)))
	p.cond.Signal()
	return true
}

// Close stops accepting jobs, lets the workers drain everything already
// queued, and blocks until they exit. Draining rather than discarding means
// every job accepted by Submit runs to completion — submitters blocked on a
// job's result are always released.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}
