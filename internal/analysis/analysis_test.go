package analysis

import (
	"strings"
	"testing"

	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/rewrite"
)

// TestBuiltinLibrariesAndGateSetsClean is the golden gate: every built-in
// rule library and gate set must pass the domain analyzer with nothing at
// Warning or above, so a future rule addition cannot ship an unsound halo,
// a non-native replacement, or a non-equivalent rewrite without failing CI.
func TestBuiltinLibrariesAndGateSetsClean(t *testing.T) {
	fs := CheckAll(Options{Seed: 1})
	if !Clean(fs) {
		for _, f := range fs {
			if f.Severity >= Warning {
				t.Errorf("%s", f)
			}
		}
	}
}

// TestCycleDetectionSeesCommutationPairs pins that the cycle detector is
// alive: the built-in libraries intentionally carry A→B/B→A commutation
// pairs, and they must surface as Info findings (not Warnings — they are
// the stochastic search's sideways moves).
func TestCycleDetectionSeesCommutationPairs(t *testing.T) {
	fs := CheckLibrary("nam", rewrite.AllLibraries()["nam"], Options{Seed: 1})
	found := false
	for _, f := range fs {
		if f.Check == "cycle" {
			if f.Severity != Info {
				t.Fatalf("cycle finding has severity %v, want Info: %s", f.Severity, f)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no cycle findings in the nam library; the commutation pairs should form detectable cycles")
	}
}

func findingWith(fs []Finding, check string, minSev Severity) *Finding {
	for i, f := range fs {
		if f.Check == check && f.Severity >= minSev {
			return &fs[i]
		}
	}
	return nil
}

// TestCatchesInjectedWrongHaloDepth injects a rule whose declared halo is
// smaller than its pattern's true reach and requires both independent
// detectors to fire: the recomputation (halo-decl) and the randomized probe
// circuits (halo-probe), which observe the matcher actually reading beyond
// the declared radius.
func TestCatchesInjectedWrongHaloDepth(t *testing.T) {
	rules := rewrite.AllLibraries()["nam"]
	var victim *rewrite.Rule
	for _, r := range rules {
		if r.Name == "nam/cx-reversal" {
			victim = r
		}
	}
	if victim == nil {
		t.Fatal("nam/cx-reversal not found")
	}
	victim.OverrideCompiledMetadata(1, nil)
	fs := CheckLibrary("nam", rules, Options{Seed: 7})
	decl := findingWith(fs, "halo-decl", Error)
	if decl == nil || decl.Rule != "nam/cx-reversal" {
		t.Errorf("halo-decl did not flag the injected wrong HaloDepth; findings: %v", fs)
	}
	probe := findingWith(fs, "halo-probe", Error)
	if probe == nil || probe.Rule != "nam/cx-reversal" {
		t.Errorf("halo-probe did not observe an out-of-radius read; findings: %v", fs)
	}
}

// TestTooLargeHaloIsWarningNotError: over-declaring the halo only wastes
// invalidation work, so it must downgrade to Warning.
func TestTooLargeHaloIsWarningNotError(t *testing.T) {
	rules := rewrite.AllLibraries()["nam"]
	rules[0].OverrideCompiledMetadata(99, nil)
	fs := CheckLibrary("nam", rules, Options{Seed: 1})
	f := findingWith(fs, "halo-decl", Info)
	if f == nil {
		t.Fatal("no halo-decl finding for an over-declared halo")
	}
	if f.Severity != Warning {
		t.Fatalf("over-declared halo reported at %v, want Warning: %s", f.Severity, f)
	}
}

func TestCatchesInjectedWrongWireExtents(t *testing.T) {
	rules := rewrite.AllLibraries()["nam"]
	// Keep the (sound) halo, corrupt the per-wire extents.
	rules[0].OverrideCompiledMetadata(rules[0].HaloDepth(), make([]int, rules[0].NumQubits))
	fs := CheckLibrary("nam", rules, Options{Seed: 1})
	if findingWith(fs, "wire-extents", Error) == nil {
		t.Fatalf("wire-extents did not flag corrupted extents; findings: %v", fs)
	}
}

func TestCatchesNonNativeReplacement(t *testing.T) {
	// rz(θ) ≡ u1(θ) mod global phase, so only nativeness fires: u1 is not
	// in the nam basis.
	r := rewrite.MustRule("fixture/rz-as-u1", 1, 1,
		[]rewrite.PatGate{rewrite.P(gate.Rz, []rewrite.PatParam{rewrite.V(0)}, 0)},
		[]rewrite.RepGate{rewrite.Rep(gate.U1, []rewrite.ParamExpr{rewrite.EV(0)}, 0)})
	fs := CheckLibrary("nam", []*rewrite.Rule{r}, Options{Seed: 1})
	f := findingWith(fs, "nativeness", Error)
	if f == nil {
		t.Fatalf("non-native replacement not flagged; findings: %v", fs)
	}
	if findingWith(fs, "equivalence", Error) != nil {
		t.Errorf("rz→u1 is equivalent mod phase; equivalence should not fire: %v", fs)
	}
}

func TestCatchesNonEquivalentRule(t *testing.T) {
	// h·h = I, not X: NewRule accepts it (it only checks shape), the
	// elevated-precision re-verification must reject it.
	r := rewrite.MustRule("fixture/hh-to-x", 1, 0,
		[]rewrite.PatGate{rewrite.P(gate.H, nil, 0), rewrite.P(gate.H, nil, 0)},
		[]rewrite.RepGate{rewrite.Rep(gate.X, nil, 0)})
	fs := CheckLibrary("nam", []*rewrite.Rule{r}, Options{Seed: 1})
	if findingWith(fs, "equivalence", Error) == nil {
		t.Fatalf("non-equivalent rule not flagged; findings: %v", fs)
	}
}

func TestCatchesDuplicateAndSubsumedRules(t *testing.T) {
	hh := func(name string, rep []rewrite.RepGate) *rewrite.Rule {
		return rewrite.MustRule(name, 1, 0,
			[]rewrite.PatGate{rewrite.P(gate.H, nil, 0), rewrite.P(gate.H, nil, 0)}, rep)
	}
	a := hh("fixture/hh-cancel", nil)
	b := hh("fixture/hh-cancel-again", nil)
	c := hh("fixture/hh-to-xx", []rewrite.RepGate{rewrite.Rep(gate.X, nil, 0), rewrite.Rep(gate.X, nil, 0)})
	fs := CheckLibrary("nam", []*rewrite.Rule{a, b, c}, Options{Seed: 1})
	dup := findingWith(fs, "duplicate", Warning)
	if dup == nil || dup.Rule != "fixture/hh-cancel-again" {
		t.Errorf("duplicate rule not flagged; findings: %v", fs)
	}
	sub := findingWith(fs, "subsumed", Warning)
	if sub == nil || sub.Rule != "fixture/hh-to-xx" {
		t.Errorf("subsumed rule not flagged; findings: %v", fs)
	}
}

func TestCatchesDeadRuleOnFiniteSet(t *testing.T) {
	// An angle-variable rule can never match a circuit over the finite
	// Clifford+T basis.
	r := rewrite.MustRule("fixture/rz-merge", 1, 2,
		[]rewrite.PatGate{
			rewrite.P(gate.Rz, []rewrite.PatParam{rewrite.V(0)}, 0),
			rewrite.P(gate.Rz, []rewrite.PatParam{rewrite.V(1)}, 0),
		},
		[]rewrite.RepGate{rewrite.Rep(gate.Rz, []rewrite.ParamExpr{rewrite.ESum(0, 1)}, 0)})
	fs := CheckLibrary("cliffordt", []*rewrite.Rule{r}, Options{Seed: 1})
	found := 0
	for _, f := range fs {
		if f.Check == "dead-rule" && f.Severity == Warning {
			found++
		}
	}
	// Both dead-rule conditions apply: non-native pattern gate and angle
	// variables on a finite set.
	if found < 2 {
		t.Fatalf("dead rule on a finite set not fully flagged (%d findings); all: %v", found, fs)
	}
}

func TestCheckGateSetCatchesBadErrorModel(t *testing.T) {
	gs, err := gateset.New("fixture-badmodel", "test", gate.Rz, gate.CX)
	if err != nil {
		t.Fatal(err)
	}
	gs.TwoQubitError = 1.5
	gs.GateErrors = map[gate.Name]float64{gate.H: 1e-3} // h is not in the basis
	fs := CheckGateSet(gs)
	if findingWith(fs, "error-model", Error) == nil {
		t.Errorf("out-of-range TwoQubitError not flagged: %v", fs)
	}
	if findingWith(fs, "error-model", Warning) == nil {
		t.Errorf("non-basis GateErrors entry not flagged: %v", fs)
	}
}

func TestCleanAndSort(t *testing.T) {
	fs := []Finding{
		{Check: "b", Severity: Info, Library: "x"},
		{Check: "a", Severity: Error, Library: "x"},
	}
	if !Clean(fs[:1]) || Clean(fs) {
		t.Fatal("Clean threshold wrong")
	}
	Sort(fs)
	if fs[0].Severity != Error {
		t.Fatal("Sort should order severity descending")
	}
	if !strings.Contains(fs[0].String(), "error") {
		t.Fatalf("String() = %q", fs[0].String())
	}
}

// TestRecomputeMatchesCompiledMetadata cross-checks the analyzer's
// independent recomputation against the compiled metadata for every
// built-in rule — the two derivations share no code, so agreement on all
// ~100 rules is strong evidence both are right.
func TestRecomputeMatchesCompiledMetadata(t *testing.T) {
	for lib, rules := range rewrite.AllLibraries() {
		for _, r := range rules {
			extents, halo, connected := recomputeMetadata(r)
			if !connected {
				t.Errorf("%s/%s: recomputation says disconnected", lib, r.Name)
				continue
			}
			if halo != r.HaloDepth() {
				t.Errorf("%s/%s: recomputed halo %d != compiled %d", lib, r.Name, halo, r.HaloDepth())
			}
			for q, e := range extents {
				if r.WireExtents()[q] != e {
					t.Errorf("%s/%s: wire %d extent %d != compiled %d", lib, r.Name, q, e, r.WireExtents()[q])
				}
			}
		}
	}
}

// TestProbeTraceStaysInsideHalo exercises the probe hook directly on a
// hand-built circuit: every full read of a successful match of the
// cx-reversal rule must stay within its (correct) halo.
func TestProbeTraceStaysInsideHalo(t *testing.T) {
	rules := rewrite.AllLibraries()["nam"]
	var r *rewrite.Rule
	for _, cand := range rules {
		if cand.Name == "nam/cx-reversal" {
			r = cand
		}
	}
	fs := CheckLibrary("nam", []*rewrite.Rule{r}, Options{Seed: 3, ProbeCircuits: 16})
	if !Clean(fs) {
		t.Fatalf("correct rule failed the probe audit: %v", fs)
	}
}
