package analysis

import (
	"fmt"

	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/rewrite"
)

// CheckGateSet audits a gate set description: the basis must be non-empty,
// known to the gate vocabulary, and duplicate-free; the fidelity model's
// error rates must be probabilities; GateErrors may only weight basis
// gates; and a built-in set must have a rule library (the search is
// rule-driven — a built-in without rules silently degrades to synthesis
// only).
func CheckGateSet(gs *gateset.GateSet) []Finding {
	var fs []Finding
	add := func(f Finding) {
		f.GateSet = gs.Name
		fs = append(fs, f)
	}
	if gs.Name == "" {
		add(Finding{Check: "basis", Severity: Error, Message: "gate set has no name"})
	}
	if len(gs.Gates) == 0 {
		add(Finding{Check: "basis", Severity: Error, Message: "gate set has an empty basis"})
	}
	seen := map[gate.Name]bool{}
	for _, n := range gs.Gates {
		if _, ok := gate.SpecOf(n); !ok {
			add(Finding{Check: "basis", Severity: Error,
				Message: fmt.Sprintf("basis gate %q is not in the supported vocabulary", n)})
		}
		if seen[n] {
			add(Finding{Check: "basis", Severity: Warning,
				Message: fmt.Sprintf("basis lists %q twice", n)})
		}
		seen[n] = true
	}
	for n, e := range gs.GateErrors {
		if !seen[n] {
			add(Finding{Check: "error-model", Severity: Warning,
				Message: fmt.Sprintf("GateErrors weights %q, which is not in the basis", n)})
		}
		if e < 0 || e >= 1 {
			add(Finding{Check: "error-model", Severity: Error,
				Message: fmt.Sprintf("error rate %g for %q is not a probability in [0,1)", e, n)})
		}
	}
	for name, e := range map[string]float64{"OneQubitError": gs.OneQubitError, "TwoQubitError": gs.TwoQubitError} {
		if e < 0 || e >= 1 {
			add(Finding{Check: "error-model", Severity: Error,
				Message: fmt.Sprintf("%s %g is not a probability in [0,1)", name, e)})
		}
	}
	if gs.Builtin() {
		if _, err := rewrite.RulesFor(gs.Name); err != nil {
			add(Finding{Check: "library", Severity: Error,
				Message: "built-in gate set has no rule library"})
		}
	}
	Sort(fs)
	return fs
}

// CheckAll sweeps every built-in gate set and its rule library. This is
// what the golden test and `guoqlint -rules` run: the repository's own
// libraries must come back Clean.
func CheckAll(o Options) []Finding {
	var fs []Finding
	for _, gs := range gateset.All() {
		fs = append(fs, CheckGateSet(gs)...)
	}
	for name, rules := range rewrite.AllLibraries() {
		fs = append(fs, CheckLibrary(name, rules, o)...)
	}
	Sort(fs)
	return fs
}
