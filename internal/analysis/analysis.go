// Package analysis is the domain half of guoqlint: machine checks for the
// compile-time invariants the optimizer's correctness leans on but nothing
// else enforces. The Engine's cached match verdicts (and through them every
// circuit the search emits) are sound only if each rule's declared
// HaloDepth/WireExtents really bound what a match attempt can read, if
// every replacement is native to its target basis, and if pattern ≡
// replacement holds exactly — the paper's Thm 4.2 argument assumes all
// applied rewrites preserve equivalence. CheckLibrary and CheckGateSet
// verify those properties for a rule library / gate set and report
// structured Findings; CheckAll sweeps every built-in library and set.
//
// The checks are deliberately independent of the implementations they
// audit: halo depths are recomputed from the pattern DAG with a separate
// BFS and then stress-tested with randomized probe circuits through
// rewrite.ProbeMatchReads, and equivalence is re-verified at elevated
// precision with more samples and a tighter tolerance than the standard
// test suite.
package analysis

import (
	"fmt"
	"sort"
)

// Severity grades a finding. Error findings are soundness violations (a
// wrong halo, a non-equivalent rule); Warning findings are correctness
// smells that cannot yet corrupt results (a dead rule, a subsumed rule);
// Info findings are expected structure worth surfacing (commutation
// cycles, which the stochastic search wants).
type Severity int

const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Finding is one structured diagnostic from a domain check.
type Finding struct {
	// Check names the analyzer that fired: "halo-decl", "halo-probe",
	// "wire-extents", "nativeness", "duplicate", "subsumed", "cycle",
	// "equivalence", "dead-rule", "basis", "error-model", "library".
	Check    string
	Severity Severity
	// Library and GateSet locate the finding (either may be empty).
	Library string
	GateSet string
	// Rule is the offending rule's name, empty for set-level findings.
	Rule    string
	Message string
}

func (f Finding) String() string {
	loc := f.Library
	if loc == "" {
		loc = f.GateSet
	}
	if f.Rule != "" {
		loc += "/" + f.Rule
	}
	return fmt.Sprintf("%s: [%s] %s: %s", f.Severity, f.Check, loc, f.Message)
}

// Clean reports whether the findings contain nothing at or above Warning —
// the bar the golden tests and the CI lint step hold every built-in
// library and gate set to. Info findings (e.g. intentional commutation
// cycles) do not fail a clean check.
func Clean(fs []Finding) bool {
	for _, f := range fs {
		if f.Severity >= Warning {
			return false
		}
	}
	return true
}

// Sort orders findings for stable output: severity descending, then
// library, rule, and check.
func Sort(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Library != b.Library {
			return a.Library < b.Library
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// Options tunes the randomized parts of the checks. The zero value selects
// the defaults used by the golden tests and the CI step.
type Options struct {
	// Seed drives probe-circuit generation and equivalence bindings.
	Seed int64
	// ProbeCircuits is the number of randomized host circuits per rule for
	// the halo audit (default 8).
	ProbeCircuits int
	// ProbeGates is the size of each probe host circuit (default 48).
	ProbeGates int
	// EquivBindings is the number of random variable bindings at which each
	// rule is re-verified (default 12; rules without variables use 1).
	EquivBindings int
	// Tolerance is the elevated-precision Hilbert–Schmidt bound for
	// re-verification (default 1e-10, vs the test suite's 1e-8).
	Tolerance float64
}

func (o Options) withDefaults() Options {
	if o.ProbeCircuits == 0 {
		o.ProbeCircuits = 8
	}
	if o.ProbeGates == 0 {
		o.ProbeGates = 48
	}
	if o.EquivBindings == 0 {
		o.EquivBindings = 12
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-10
	}
	return o
}
