package golint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var wantRE = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// runFixture parses one testdata package, runs all analyzers, and checks
// the diagnostics against the `// want "regexp"` comments in the sources:
// every want must be matched by a diagnostic on its line, and every
// diagnostic must be covered by a want (no over-reporting).
func runFixture(t *testing.T, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	type want struct {
		file string
		line int
		re   *regexp.Regexp
		hit  bool
	}
	var wants []*want
	var files []*ast.File
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				// The want pattern is written as a Go string literal, so
				// \\( in source means the regexp escape \(.
				pat, err := strconv.Unquote(`"` + m[1] + `"`)
				if err != nil {
					t.Fatalf("%s:%d: bad want literal %q: %v", path, i+1, m[1], err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, pat, err)
				}
				wants = append(wants, &want{file: path, line: i + 1, re: re})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", pkg)
	}
	diags := RunPackage(fset, pkg, files)

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q did not fire", w.file, w.line, w.re)
		}
	}
}

func TestHotPathFixture(t *testing.T)    { runFixture(t, "hotpathviol") }
func TestCtxFlowFixture(t *testing.T)    { runFixture(t, "ctxviol") }
func TestMutexGuardFixture(t *testing.T) { runFixture(t, "mutexviol") }

// TestRunDirOnRepo runs the analyzers over the entire repository — the
// same invocation CI uses via cmd/guoqlint — and requires it clean, so a
// convention violation in new code fails the test suite even before the
// lint step runs.
func TestRunDirOnRepo(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Skipf("module root not found: %v", err)
	}
	diags, err := RunDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
