package golint

import (
	"go/ast"
)

// CtxFlowAnalyzer checks context threading: PR 4 threaded context.Context
// through the optimization loop, the dist client/server, and the CLIs, and
// the cancellation guarantees the session API documents hold only if every
// intermediate function keeps forwarding its ctx. Two shapes are flagged:
//
//   - a named context.Context parameter that is never referenced in the
//     function body (the ctx is dropped — callees run uncancellable);
//   - a call to context.Background() or context.TODO() inside a function
//     that already receives a ctx (the incoming ctx is shadowed, detaching
//     the subtree from cancellation). The nil-defaulting idiom
//     `if ctx == nil { ctx = context.Background() }` is exempt: assigning
//     Background to the ctx parameter itself replaces nothing.
//
// Intentionally detached work should take the ctx anyway and document the
// detachment with a `//guoqlint:ignore ctxflow <why>` comment.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "reports dropped or shadowed context.Context parameters",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) {
	for _, f := range p.Files {
		ctxPkg := importName(f, "context")
		if ctxPkg == "" {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			params := ctxParams(fn, ctxPkg)
			if len(params) == 0 {
				continue
			}
			for _, name := range params {
				if !identUsed(fn.Body, name) {
					p.Reportf(fn.Name.Pos(), "%s: context parameter %q is dropped — forward it to callees or remove it", fn.Name.Name, name)
				}
			}
			defaulting := ctxDefaultingCalls(fn.Body, ctxPkg, params)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == ctxPkg &&
					(sel.Sel.Name == "Background" || sel.Sel.Name == "TODO") && !defaulting[call] {
					p.Reportf(call.Pos(), "%s: context.%s() shadows the function's incoming ctx — pass the parameter through instead", fn.Name.Name, sel.Sel.Name)
				}
				return true
			})
		}
	}
}

// ctxDefaultingCalls collects Background/TODO calls that only default a
// nil ctx parameter: the sole RHS of an assignment whose LHS is one of
// the function's ctx parameters (`ctx = context.Background()`).
func ctxDefaultingCalls(body *ast.BlockStmt, ctxPkg string, params []string) map[*ast.CallExpr]bool {
	isParam := map[string]bool{}
	for _, name := range params {
		isParam[name] = true
	}
	out := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || !isParam[id.Name] {
			return true
		}
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
			out[call] = true
		}
		return true
	})
	return out
}

// ctxParams returns the named, non-blank parameters of fn whose type is
// <ctxPkg>.Context.
func ctxParams(fn *ast.FuncDecl, ctxPkg string) []string {
	var out []string
	for _, field := range fn.Type.Params.List {
		sel, ok := field.Type.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Context" {
			continue
		}
		if id, ok := sel.X.(*ast.Ident); !ok || id.Name != ctxPkg {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				out = append(out, name.Name)
			}
		}
	}
	return out
}

// identUsed reports whether an identifier with the given name is
// referenced anywhere in the body. Shadowing is not tracked — a shadowed
// use still counts, which keeps the pass conservative (no false
// positives; a deliberately re-declared ctx is vanishingly rare).
func identUsed(body *ast.BlockStmt, name string) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			used = true
			return false
		}
		return true
	})
	return used
}
