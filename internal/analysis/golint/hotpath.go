package golint

import (
	"go/ast"
)

// HotPathAnalyzer enforces allocation hygiene in functions marked with the
// `//guoq:hotpath` directive — the match/replay/invalidate loop that PR 8
// drove to 0 allocs/op and that the CI perf gate pins:
//
//   - no calls into fmt (formatting allocates and the error paths that
//     want it are never hot);
//   - no map composite literals and no make(map...) — map traffic is the
//     classic hidden allocator the engine refactor removed;
//   - no append to a fresh, uncapped slice declared in the same function
//     (`var s []T`, `s := []T{}`, or 2-arg make): every such append
//     allocates on first growth. Appending into caller-provided slices or
//     struct-field scratch — the amortized idiom the matcher uses — is
//     allowed, as is appending to a slice made with explicit capacity or
//     resliced from existing storage (s[:0]).
var HotPathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "reports allocation-unfriendly constructs in //guoq:hotpath functions",
	Run:  runHotPath,
}

func runHotPath(p *Pass) {
	for _, f := range p.Files {
		fmtName := importName(f, "fmt")
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !funcDocHasDirective(fn, "//guoq:hotpath") {
				continue
			}
			checkHotPathFunc(p, fn, fmtName)
		}
	}
}

func checkHotPathFunc(p *Pass, fn *ast.FuncDecl, fmtName string) {
	fresh := freshUncappedSlices(fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := n.X.(*ast.Ident); ok && fmtName != "" && id.Name == fmtName {
				p.Reportf(n.Pos(), "%s: fmt.%s call in a //guoq:hotpath function", fn.Name.Name, n.Sel.Name)
			}
		case *ast.CompositeLit:
			if _, ok := n.Type.(*ast.MapType); ok {
				p.Reportf(n.Pos(), "%s: map literal in a //guoq:hotpath function", fn.Name.Name)
			}
		case *ast.CallExpr:
			switch callee := calleeIdent(n); callee {
			case "make":
				if len(n.Args) > 0 {
					if _, ok := n.Args[0].(*ast.MapType); ok {
						p.Reportf(n.Pos(), "%s: make(map) in a //guoq:hotpath function", fn.Name.Name)
					}
				}
			case "append":
				if len(n.Args) == 0 {
					return true
				}
				switch dst := n.Args[0].(type) {
				case *ast.Ident:
					if fresh[dst.Name] {
						p.Reportf(n.Pos(), "%s: append to fresh uncapped slice %q in a //guoq:hotpath function (allocates on growth; preallocate with capacity or reuse scratch)", fn.Name.Name, dst.Name)
					}
				case *ast.CompositeLit:
					p.Reportf(n.Pos(), "%s: append to a slice literal in a //guoq:hotpath function", fn.Name.Name)
				}
			}
		}
		return true
	})
}

func calleeIdent(call *ast.CallExpr) string {
	if id, ok := call.Fun.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// freshUncappedSlices collects local variables that are definitely fresh,
// capacity-less slices: declared `var x []T`, assigned a slice literal, or
// assigned a 2-argument make. Conservative by construction — anything it
// cannot prove fresh (parameters, struct fields, reslices like x[:0],
// 3-argument makes) is left alone.
func freshUncappedSlices(body *ast.BlockStmt) map[string]bool {
	fresh := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				if at, ok := vs.Type.(*ast.ArrayType); ok && at.Len == nil {
					for _, name := range vs.Names {
						fresh[name.Name] = true
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if freshSliceExpr(n.Rhs[i]) {
					fresh[id.Name] = true
				} else if _, isFresh := fresh[id.Name]; isFresh && reassignedFromOther(n.Rhs[i], id.Name) {
					// x = someOtherExpr: no longer provably fresh.
					delete(fresh, id.Name)
				}
			}
		}
		return true
	})
	return fresh
}

// freshSliceExpr reports whether e is a fresh uncapped slice expression: a
// slice composite literal or a 2-argument make of a slice type.
func freshSliceExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		at, ok := e.Type.(*ast.ArrayType)
		return ok && at.Len == nil
	case *ast.CallExpr:
		if calleeIdent(e) != "make" || len(e.Args) != 2 {
			return false
		}
		at, ok := e.Args[0].(*ast.ArrayType)
		return ok && at.Len == nil
	}
	return false
}

// reassignedFromOther reports whether rhs is something other than an
// append chain rooted at the same variable (x = append(x, ...) keeps x in
// whatever freshness state it had).
func reassignedFromOther(rhs ast.Expr, name string) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || calleeIdent(call) != "append" || len(call.Args) == 0 {
		return true
	}
	id, ok := call.Args[0].(*ast.Ident)
	return !ok || id.Name != name
}
