// Package mutexviol seeds mutex-guard violations: fields documented
// `guarded by mu` accessed without the lock, with locked and *Locked
// decoys proving the conventions pass.
package mutexviol

import "sync"

type counter struct {
	mu sync.Mutex
	// n is the running total, guarded by mu.
	n     int
	total int // cumulative count; guarded by mu
}

func (c *counter) BadRead() int {
	return c.n // want "guarded by mu.*never locks"
}

func (c *counter) BadWrite(v int) {
	c.total += v // want "guarded by mu.*never locks"
}

func (c *counter) GoodRead() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) addLocked(v int) {
	c.n += v
	c.total += v
}

type embedded struct {
	sync.RWMutex
	// hits is the lookup count, guarded by the RWMutex embedded above.
	hits int
}

func (e *embedded) Bad() int {
	return e.hits // want "guarded by RWMutex.*never locks"
}

func (e *embedded) Good() int {
	e.RLock()
	defer e.RUnlock()
	return e.hits
}
