// Package hotpathviol seeds one violation of every hotpath rule, plus
// clean decoys proving the analyzer does not over-report the amortized
// scratch idioms the real hot loop uses.
package hotpathviol

import "fmt"

type scratch struct {
	buf []int
}

//guoq:hotpath
func violations(s *scratch, n int) string {
	var fresh []int
	fresh = append(fresh, n) // want "append to fresh uncapped slice"
	lit := []int{}
	lit = append(lit, n) // want "append to fresh uncapped slice"
	twoArg := make([]int, 0)
	twoArg = append(twoArg, n) // want "append to fresh uncapped slice"
	m := map[string]int{}      // want "map literal"
	m2 := make(map[int]int)    // want "make\\(map\\)"
	m2[n] = len(m) + len(twoArg)
	return fmt.Sprintf("%d", n) // want "fmt.Sprintf call"
}

//guoq:hotpath
func clean(s *scratch, in []int, n int) []int {
	s.buf = append(s.buf, n)    // field scratch: amortized, allowed
	in = append(in, n)          // caller-provided storage: allowed
	capped := make([]int, 0, n) // explicit capacity: allowed
	capped = append(capped, n)  //
	reuse := s.buf[:0]          // reslice of existing storage: allowed
	reuse = append(reuse, capped...)
	return reuse
}

// notHot is unmarked, so nothing here is flagged.
func notHot(n int) string {
	m := map[int]int{n: n}
	return fmt.Sprint(len(m))
}
