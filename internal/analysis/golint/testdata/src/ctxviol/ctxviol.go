// Package ctxviol seeds the two ctxflow violation shapes plus clean
// forwarding decoys.
package ctxviol

import "context"

func work(ctx context.Context) error { return ctx.Err() }

func dropped(ctx context.Context, n int) int { // want "context parameter \"ctx\" is dropped"
	return n + 1
}

func shadowed(ctx context.Context) error {
	_ = ctx.Err()
	return work(context.Background()) // want "context.Background\\(\\) shadows"
}

func forwards(ctx context.Context) error {
	return work(ctx)
}

func blankIsFine(_ context.Context, n int) int {
	return n
}

func nilDefaultingIsFine(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return work(ctx)
}

func detachedOnPurpose(ctx context.Context) error {
	_ = ctx.Err()
	//guoqlint:ignore ctxflow the janitor must outlive the request
	return work(context.Background())
}
