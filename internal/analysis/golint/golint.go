// Package golint is the Go-source half of guoqlint: project-specific
// static-analysis passes for the conventions the hot path and the service
// code rely on. Three analyzers ship today:
//
//   - hotpath: functions marked `//guoq:hotpath` must stay allocation-
//     hygienic — no fmt calls, no map literals or map makes, and no appends
//     to fresh uncapped local slices (appends into caller-provided or
//     struct-field scratch, the amortized idiom, are fine).
//   - ctxflow: a function that takes a context.Context must actually use
//     it, and must not shadow it with context.Background()/TODO() — a
//     dropped ctx silently disables the cancellation the session layer
//     promises.
//   - mutexguard: struct fields documented `// guarded by <mu>` may only be
//     touched by methods that lock <mu> (or are named *Locked, the
//     convention for helpers called with the lock held).
//
// The package mirrors the golang.org/x/tools/go/analysis shape (Analyzer /
// Pass / Diagnostic) but is self-contained on the standard library's
// go/ast and go/parser: the build environment pins an offline toolchain
// with no module proxy, so the x/tools driver (and `go vet -vettool`
// integration) is gated off until the dependency can be vendored. The
// analyzers are purely syntactic by design — they resolve imports and
// receivers lexically, which covers this repository's conventions without
// needing a type checker.
package golint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one analyzer report, positioned in the parsed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one package's parsed files through an analyzer, mirroring
// analysis.Pass.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	// Pkg is the package's import-path-ish identifier (directory relative
	// to the module root), for messages only.
	Pkg string

	diags    *[]Diagnostic
	analyzer string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named pass, mirroring analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns the full pass list in deterministic order.
func Analyzers() []*Analyzer {
	return []*Analyzer{HotPathAnalyzer, CtxFlowAnalyzer, MutexGuardAnalyzer}
}

// RunPackage applies every analyzer to one parsed package and returns the
// diagnostics sorted by position. A `//guoqlint:ignore <analyzer>` comment
// suppresses that analyzer's findings on its own line and the line below
// it — the escape hatch for the rare site that violates a convention on
// purpose (each use should say why in the trailing text).
func RunPackage(fset *token.FileSet, pkg string, files []*ast.File) []Diagnostic {
	var diags []Diagnostic
	for _, a := range Analyzers() {
		p := &Pass{Fset: fset, Files: files, Pkg: pkg, diags: &diags, analyzer: a.Name}
		a.Run(p)
	}
	diags = filterIgnored(fset, files, diags)
	sortDiagnostics(diags)
	return diags
}

func filterIgnored(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	ignored := map[key]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(c.Text), "//guoqlint:ignore ")
				if !ok {
					continue
				}
				name := strings.Fields(rest)
				if len(name) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				ignored[key{pos.Filename, pos.Line, name[0]}] = true
				ignored[key{pos.Filename, pos.Line + 1, name[0]}] = true
			}
		}
	}
	if len(ignored) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if !ignored[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			kept = append(kept, d)
		}
	}
	return kept
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// RunDir parses every non-testdata Go package under root (recursively) and
// runs all analyzers, returning diagnostics sorted by position. Vendored
// trees, testdata, and hidden directories are skipped.
func RunDir(root string) ([]Diagnostic, error) {
	pkgFiles := map[string][]string{} // dir -> files
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			pkgFiles[dir] = append(pkgFiles[dir], path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(pkgFiles))
	for dir := range pkgFiles {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)

	fset := token.NewFileSet()
	var diags []Diagnostic
	for _, dir := range dirs {
		files := pkgFiles[dir]
		sort.Strings(files)
		var parsed []*ast.File
		for _, path := range files {
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("golint: %v", err)
			}
			parsed = append(parsed, f)
		}
		rel, relErr := filepath.Rel(root, dir)
		if relErr != nil {
			rel = dir
		}
		diags = append(diags, RunPackage(fset, rel, parsed)...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// --- shared syntactic helpers ---

// importName returns the local name a file binds for an import path:
// explicit alias if present, else the path's base. Blank and dot imports
// return "".
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		return p[strings.LastIndex(p, "/")+1:]
	}
	return ""
}

// funcDocHasDirective reports whether a function's doc comment contains the
// given //-directive (e.g. "//guoq:hotpath"), in the Go directive position
// (own line, no space after //).
func funcDocHasDirective(fn *ast.FuncDecl, directive string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// receiverName returns the receiver identifier and bare type name of a
// method ("" if not a method or receiver is blank).
func receiverName(fn *ast.FuncDecl) (recv, typ string) {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return "", ""
	}
	field := fn.Recv.List[0]
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Strip generic instantiations: T[K] receivers.
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if len(field.Names) == 0 || field.Names[0].Name == "_" {
		return "", id.Name
	}
	return field.Names[0].Name, id.Name
}
