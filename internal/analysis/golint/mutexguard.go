package golint

import (
	"go/ast"
	"regexp"
	"strings"
)

// MutexGuardAnalyzer enforces the `// guarded by <mu>` documentation
// convention: a struct field whose comment names its mutex may only be
// accessed from methods of that struct that visibly acquire the mutex —
// a call to <mu>.Lock() or <mu>.RLock() on the receiver somewhere in the
// method (defers included), or a method whose name ends in "Locked", the
// convention for helpers that require the caller to hold the lock.
//
// The pass is syntactic: it sees receiver-qualified accesses
// (recv.field) inside methods of the declaring struct, which is where
// essentially all direct state access in this codebase happens. Accesses
// it cannot attribute (through interfaces, copies, or other packages) are
// out of scope, as are composite-literal initializations, which construct
// the value before it is shared.
var MutexGuardAnalyzer = &Analyzer{
	Name: "mutexguard",
	Doc:  "reports accesses to `guarded by mu` fields without holding the lock",
	Run:  runMutexGuard,
}

var guardedByRE = regexp.MustCompile(`guarded by (?:the )?([A-Za-z_][A-Za-z0-9_.]*)`)

// guardedField records one annotated field of one struct type.
type guardedField struct {
	mu string // mutex field name, possibly a dotted path suffix-trimmed to its first segment
}

func runMutexGuard(p *Pass) {
	// Pass 1: collect guarded fields per struct type across the package.
	guarded := map[string]map[string]guardedField{} // type -> field -> guard
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			// A guard annotation only binds when the named mutex is a
			// sibling field (or embedded type) of the same struct; a
			// comment pointing at another struct's lock ("guarded by the
			// owning Server's mu") is a documented cross-struct protocol
			// this pass cannot see and leaves alone.
			siblings := map[string]bool{}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					siblings[name.Name] = true
				}
				if len(field.Names) == 0 { // embedded
					t := field.Type
					if star, ok := t.(*ast.StarExpr); ok {
						t = star.X
					}
					switch t := t.(type) {
					case *ast.Ident:
						siblings[t.Name] = true
					case *ast.SelectorExpr:
						siblings[t.Sel.Name] = true
					}
				}
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" || !siblings[mu] {
					continue
				}
				for _, name := range field.Names {
					if guarded[ts.Name.Name] == nil {
						guarded[ts.Name.Name] = map[string]guardedField{}
					}
					guarded[ts.Name.Name][name.Name] = guardedField{mu: mu}
				}
			}
			return true
		})
	}
	if len(guarded) == 0 {
		return
	}

	// Pass 2: audit methods of the annotated types.
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			recv, typ := receiverName(fn)
			fields := guarded[typ]
			if recv == "" || len(fields) == 0 {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Locked") {
				continue
			}
			locked := locksAcquired(fn.Body, recv)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || id.Name != recv {
					return true
				}
				gf, isGuarded := fields[sel.Sel.Name]
				if !isGuarded || locked[gf.mu] {
					return true
				}
				p.Reportf(sel.Pos(), "%s: field %s.%s is documented `guarded by %s` but the method never locks it (lock %s.%s, or name the method *Locked if the caller holds it)",
					fn.Name.Name, typ, sel.Sel.Name, gf.mu, recv, gf.mu)
				return true
			})
		}
	}
}

// guardAnnotation extracts the mutex name from a field's doc or trailing
// comment, e.g. "lastUsed is ... guarded by the Server's mu." -> "mu".
// Dotted names keep only the first segment (the receiver-local field).
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			name := m[1]
			name = strings.TrimSuffix(name, ".")
			if i := strings.Index(name, "."); i >= 0 {
				name = name[:i]
			}
			return name
		}
	}
	return ""
}

// locksAcquired returns the set of receiver mutex fields the body visibly
// locks: recv.<mu>.Lock/RLock() calls, plus bare recv.Lock/RLock() for
// embedded mutexes (recorded under "Lock" and the embedded type names).
func locksAcquired(body *ast.BlockStmt, recv string) map[string]bool {
	locked := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch x := sel.X.(type) {
		case *ast.Ident:
			if x.Name == recv {
				// recv.Lock(): an embedded sync.Mutex/RWMutex guards the
				// whole struct.
				locked["Mutex"] = true
				locked["RWMutex"] = true
				locked["mu"] = true
			}
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok && id.Name == recv {
				locked[x.Sel.Name] = true
			}
		}
		return true
	})
	return locked
}
