package analysis

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/rewrite"
)

// CheckLibrary audits one rule library against the soundness invariants the
// Engine assumes, returning every violation as a Finding:
//
//   - halo-decl / wire-extents: the declared HaloDepth and WireExtents must
//     agree with an independent recomputation from the pattern DAG.
//   - halo-probe: randomized host circuits (with an embedded pattern
//     instance so positive matches are exercised) prove no match attempt
//     performs a full gate read outside the declared radius.
//   - nativeness / dead-rule: replacements must emit only gates native to
//     the target basis; patterns made of non-native gates can never match a
//     native circuit.
//   - duplicate / subsumed / cycle: structurally identical rules, rules
//     dominated by a strictly cheaper replacement for the same pattern, and
//     A→B/B→A pairs with no cost decrease (the last are Info — commutation
//     pairs are how the stochastic search moves sideways).
//   - equivalence: pattern ≡ replacement re-verified at elevated precision.
//
// gatesetName resolves the target basis through gateset.ByName; if it does
// not resolve, the basis-dependent checks are skipped and a library-level
// Info finding notes that.
func CheckLibrary(gatesetName string, rules []*rewrite.Rule, o Options) []Finding {
	o = o.withDefaults()
	var fs []Finding
	add := func(f Finding) {
		f.Library = gatesetName
		fs = append(fs, f)
	}

	gs, gsErr := gateset.ByName(gatesetName)
	if gsErr != nil {
		add(Finding{Check: "library", Severity: Info,
			Message: fmt.Sprintf("gate set %q not resolvable; basis checks skipped", gatesetName)})
	}

	rng := rand.New(rand.NewSource(o.Seed))
	for _, r := range rules {
		checkMetadata(r, add)
		checkEquivalence(r, o, rng, add)
		if gs != nil {
			checkNativeness(r, gs, add)
		}
		checkProbes(r, ruleVocab(rules, gs), o, rng, add)
	}
	checkRelations(rules, add)
	Sort(fs)
	return fs
}

// recomputeMetadata independently re-derives a rule's per-wire extents and
// halo depth from its pattern alone: per-wire gate counts, and a BFS over
// wire adjacency from the anchor (pattern gate 0) whose eccentricity, plus
// one step for the purity scan and failed candidate probes, bounds every
// read a match attempt can make. This mirrors the contract documented on
// Rule.HaloDepth without sharing code with Rule's own compilation.
func recomputeMetadata(r *rewrite.Rule) (extents []int, halo int, connected bool) {
	n := len(r.Pattern)
	extents = make([]int, r.NumQubits)
	// lastOn/adjacency: gates are wire-adjacent when consecutive on a wire.
	adj := make([][]int, n)
	lastOn := make([]int, r.NumQubits)
	for i := range lastOn {
		lastOn[i] = -1
	}
	for gi, pg := range r.Pattern {
		for _, q := range pg.Qubits {
			extents[q]++
			if p := lastOn[q]; p >= 0 {
				adj[gi] = append(adj[gi], p)
				adj[p] = append(adj[p], gi)
			}
			lastOn[q] = gi
		}
	}
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	queue := []int{0}
	ecc, seen := 0, 1
	for len(queue) > 0 {
		gi := queue[0]
		queue = queue[1:]
		for _, nb := range adj[gi] {
			if dist[nb] < 0 {
				dist[nb] = dist[gi] + 1
				if dist[nb] > ecc {
					ecc = dist[nb]
				}
				seen++
				queue = append(queue, nb)
			}
		}
	}
	return extents, ecc + 1, seen == n
}

func checkMetadata(r *rewrite.Rule, add func(Finding)) {
	extents, halo, connected := recomputeMetadata(r)
	if !connected {
		add(Finding{Check: "halo-decl", Severity: Error, Rule: r.Name,
			Message: "pattern is not wire-connected; the matcher cannot reach every pattern gate from the anchor"})
		return
	}
	if got := r.HaloDepth(); got != halo {
		sev := Error
		if got > halo {
			// A too-large halo over-invalidates: wasteful, never unsound.
			sev = Warning
		}
		add(Finding{Check: "halo-decl", Severity: sev, Rule: r.Name,
			Message: fmt.Sprintf("declared HaloDepth %d, independent recomputation gives %d", got, halo)})
	}
	got := r.WireExtents()
	if len(got) != len(extents) {
		add(Finding{Check: "wire-extents", Severity: Error, Rule: r.Name,
			Message: fmt.Sprintf("declared WireExtents has %d wires, pattern has %d", len(got), len(extents))})
		return
	}
	for q := range extents {
		if got[q] != extents[q] {
			add(Finding{Check: "wire-extents", Severity: Error, Rule: r.Name,
				Message: fmt.Sprintf("wire %d: declared extent %d, pattern has %d gates on it", q, got[q], extents[q])})
		}
	}
}

// checkEquivalence re-verifies pattern ≡ replacement (mod global phase) at
// elevated precision: more random bindings and a tighter Hilbert–Schmidt
// tolerance than the standard test suite.
func checkEquivalence(r *rewrite.Rule, o Options, rng *rand.Rand, add func(Finding)) {
	bindings := o.EquivBindings
	if r.NumVars == 0 {
		bindings = 1
	}
	for i := 0; i < bindings; i++ {
		binding := make([]float64, r.NumVars)
		for j := range binding {
			binding[j] = (rng.Float64()*2 - 1) * math.Pi
		}
		if d := r.Verify(binding); d > o.Tolerance || math.IsNaN(d) {
			add(Finding{Check: "equivalence", Severity: Error, Rule: r.Name,
				Message: fmt.Sprintf("pattern and replacement differ at binding %v: HS distance %.3g (tolerance %g)",
					binding, d, o.Tolerance)})
			return
		}
	}
}

func checkNativeness(r *rewrite.Rule, gs *gateset.GateSet, add func(Finding)) {
	for _, rg := range r.Replacement {
		if !gs.Contains(rg.Name) {
			add(Finding{Check: "nativeness", Severity: Error, Rule: r.Name, GateSet: gs.Name,
				Message: fmt.Sprintf("replacement emits %s, which is not native to %s — applying this rule de-natures the circuit", rg.Name, gs.Name)})
		}
	}
	for _, pg := range r.Pattern {
		if !gs.Contains(pg.Name) {
			add(Finding{Check: "dead-rule", Severity: Warning, Rule: r.Name, GateSet: gs.Name,
				Message: fmt.Sprintf("pattern requires %s, which is not native to %s — the rule can never match a native circuit", pg.Name, gs.Name)})
		}
	}
	if !gs.Continuous() && r.NumVars > 0 {
		add(Finding{Check: "dead-rule", Severity: Warning, Rule: r.Name, GateSet: gs.Name,
			Message: fmt.Sprintf("rule binds %d angle variables but %s is a finite gate set", r.NumVars, gs.Name)})
	}
}

// ruleVocab picks the gate vocabulary for probe host circuits: the target
// basis when known, otherwise every gate the library mentions.
func ruleVocab(rules []*rewrite.Rule, gs *gateset.GateSet) []gate.Name {
	if gs != nil {
		return gs.Gates
	}
	seen := map[gate.Name]bool{}
	var vocab []gate.Name
	for _, r := range rules {
		for _, pg := range r.Pattern {
			if !seen[pg.Name] {
				seen[pg.Name] = true
				vocab = append(vocab, pg.Name)
			}
		}
		for _, rg := range r.Replacement {
			if !seen[rg.Name] {
				seen[rg.Name] = true
				vocab = append(vocab, rg.Name)
			}
		}
	}
	return vocab
}

// checkProbes embeds a pattern instance into randomized host circuits and
// verifies, via the matcher's probe hook, that no match attempt anchored
// anywhere performs a full gate read outside the rule's declared HaloDepth
// of its anchor. Full reads are the ones whose name/params/qubits feed the
// cached verdict; window-purity reads test only wire membership and are
// audited by construction (see rewrite.ProbeTrace).
func checkProbes(r *rewrite.Rule, vocab []gate.Name, o Options, rng *rand.Rand, add func(Finding)) {
	numQubits := r.NumQubits + 2
	if numQubits < 4 {
		numQubits = 4
	}
	for trial := 0; trial < o.ProbeCircuits; trial++ {
		host := circuit.Random(numQubits, o.ProbeGates, vocab, rng)
		// Embed a pattern instance on shuffled qubits at a random cut so
		// positive matches (and their full navigation) are exercised too.
		binding := make([]float64, r.NumVars)
		for i := range binding {
			binding[i] = (rng.Float64()*2 - 1) * math.Pi
		}
		inst := r.PatternCircuitAt(binding)
		perm := rng.Perm(numQubits)[:r.NumQubits]
		cut := rng.Intn(len(host.Gates) + 1)
		embedded := circuit.New(numQubits)
		embedded.Gates = append(embedded.Gates, host.Gates[:cut]...)
		for _, g := range inst {
			ng := g.Clone()
			for k, q := range ng.Qubits {
				ng.Qubits[k] = perm[q]
			}
			embedded.Gates = append(embedded.Gates, ng)
		}
		embedded.Gates = append(embedded.Gates, host.Gates[cut:]...)

		d := circuit.BuildDAG(embedded)
		halo := r.HaloDepth()
		for anchor := range embedded.Gates {
			trace, _ := rewrite.ProbeMatchReads(embedded, d, r, anchor)
			if bad, dist := readsOutsideHalo(d, anchor, halo, trace.Full); bad >= 0 {
				add(Finding{Check: "halo-probe", Severity: Error, Rule: r.Name,
					Message: fmt.Sprintf("match attempt at anchor %d read gate %d at wire distance %d, outside declared HaloDepth %d",
						anchor, bad, dist, halo)})
				return
			}
		}
	}
}

// readsOutsideHalo BFS-walks wire adjacency from the anchor out to the halo
// radius and returns the first read that lies beyond it (with its distance,
// -1 meaning unreachable), or (-1, 0) when every read is in range.
func readsOutsideHalo(d *circuit.DAG, anchor, halo int, reads []int) (int, int) {
	dist := map[int]int{anchor: 0}
	queue := []int{anchor}
	for len(queue) > 0 {
		gi := queue[0]
		queue = queue[1:]
		if dist[gi] >= halo {
			continue
		}
		for _, nb := range append(d.Successors(gi), d.Predecessors(gi)...) {
			if _, ok := dist[nb]; !ok {
				dist[nb] = dist[gi] + 1
				queue = append(queue, nb)
			}
		}
	}
	for _, read := range reads {
		if _, ok := dist[read]; !ok {
			return read, -1
		}
	}
	return -1, 0
}

// checkRelations detects structurally duplicate rules, rules subsumed by a
// strictly cheaper replacement for the same pattern, and A→B/B→A rewrite
// cycles with no cost decrease.
func checkRelations(rules []*rewrite.Rule, add func(Finding)) {
	type keyed struct {
		r       *rewrite.Rule
		pattern string // canonical pattern alone
		full    string // canonical pattern + replacement (shared renaming)
		repl    string // canonical replacement alone
	}
	ks := make([]keyed, len(rules))
	for i, r := range rules {
		ks[i] = keyed{r: r,
			pattern: canonPattern(r),
			full:    canonFull(r),
			repl:    canonReplacement(r),
		}
	}
	for i := range ks {
		for j := i + 1; j < len(ks); j++ {
			a, b := ks[i], ks[j]
			switch {
			case a.full == b.full:
				add(Finding{Check: "duplicate", Severity: Warning, Rule: b.r.Name,
					Message: fmt.Sprintf("structurally identical to %s", a.r.Name)})
			case a.pattern == b.pattern:
				if sub, by := dominated(a.r, b.r); sub != nil {
					add(Finding{Check: "subsumed", Severity: Warning, Rule: sub.Name,
						Message: fmt.Sprintf("same pattern as %s, whose replacement is strictly cheaper", by.Name)})
				}
			}
			// A→B/B→A cycle: A's replacement is B's pattern and vice versa.
			if a.repl != "" && b.repl != "" && a.repl == b.pattern && b.repl == a.pattern {
				add(Finding{Check: "cycle", Severity: Info, Rule: a.r.Name,
					Message: fmt.Sprintf("forms a no-cost-decrease rewrite cycle with %s (expected for commutation pairs; the stochastic search uses these as sideways moves)", b.r.Name)})
			}
		}
	}
}

// dominated reports which of two same-pattern rules is subsumed: one whose
// replacement is at least as large in both total and two-qubit gate count,
// and strictly larger in one. Equal-cost different replacements are
// different sideways moves and are left alone.
func dominated(a, b *rewrite.Rule) (sub, by *rewrite.Rule) {
	an, bn := len(a.Replacement), len(b.Replacement)
	a2, b2 := repl2q(a), repl2q(b)
	switch {
	case an >= bn && a2 >= b2 && (an > bn || a2 > b2):
		return a, b
	case bn >= an && b2 >= a2 && (bn > an || b2 > a2):
		return b, a
	}
	return nil, nil
}

func repl2q(r *rewrite.Rule) int {
	n := 0
	for _, rg := range r.Replacement {
		if len(rg.Qubits) >= 2 {
			n++
		}
	}
	return n
}

// Canonicalization: a gate sequence is serialized with qubits and angle
// variables renamed in order of first appearance, so rules that differ only
// in labeling compare equal. Replacement parameters that are exactly one
// variable or one constant canonicalize like pattern parameters; compound
// expressions serialize to a form no pattern can produce, which makes the
// cycle check conservative (it only equates var-preserving shapes).
type canonState struct {
	q map[int]int
	v map[int]int
	b strings.Builder
}

func newCanon() *canonState {
	return &canonState{q: map[int]int{}, v: map[int]int{}}
}

func (c *canonState) qubit(q int) int {
	id, ok := c.q[q]
	if !ok {
		id = len(c.q)
		c.q[q] = id
	}
	return id
}

func (c *canonState) variable(i int) int {
	id, ok := c.v[i]
	if !ok {
		id = len(c.v)
		c.v[i] = id
	}
	return id
}

func (c *canonState) pattern(r *rewrite.Rule) {
	for _, pg := range r.Pattern {
		c.b.WriteString(string(pg.Name))
		for _, q := range pg.Qubits {
			fmt.Fprintf(&c.b, " q%d", c.qubit(q))
		}
		for _, p := range pg.Params {
			if p.IsVar {
				fmt.Fprintf(&c.b, " v%d", c.variable(p.Var))
			} else {
				fmt.Fprintf(&c.b, " c%.12g", normAngle(p.Value))
			}
		}
		c.b.WriteString(";")
	}
}

func (c *canonState) replacement(r *rewrite.Rule) {
	for _, rg := range r.Replacement {
		c.b.WriteString(string(rg.Name))
		for _, q := range rg.Qubits {
			fmt.Fprintf(&c.b, " q%d", c.qubit(q))
		}
		for _, e := range rg.Params {
			c.expr(e)
		}
		c.b.WriteString(";")
	}
}

func (c *canonState) expr(e rewrite.ParamExpr) {
	// Single-variable identity expression ⇒ same token as a pattern var.
	if e.Const == 0 && len(e.Coeffs) == 1 {
		for i, coeff := range e.Coeffs {
			if coeff == 1 {
				fmt.Fprintf(&c.b, " v%d", c.variable(i))
				return
			}
		}
	}
	if len(e.Coeffs) == 0 {
		fmt.Fprintf(&c.b, " c%.12g", normAngle(e.Const))
		return
	}
	// Compound: serialize deterministically (sorted by canonical var id).
	fmt.Fprintf(&c.b, " e(%.12g", e.Const)
	ids := make([][2]float64, 0, len(e.Coeffs))
	for i, coeff := range e.Coeffs {
		ids = append(ids, [2]float64{float64(c.variable(i)), coeff})
	}
	for k := 1; k < len(ids); k++ {
		for l := k; l > 0 && ids[l][0] < ids[l-1][0]; l-- {
			ids[l], ids[l-1] = ids[l-1], ids[l]
		}
	}
	for _, kv := range ids {
		fmt.Fprintf(&c.b, "+%.12g*v%d", kv[1], int(kv[0]))
	}
	c.b.WriteString(")")
}

func normAngle(x float64) float64 {
	// Collapse float noise so π/2 written two ways compares equal.
	return math.Round(x*1e12) / 1e12
}

func canonPattern(r *rewrite.Rule) string {
	c := newCanon()
	c.pattern(r)
	return c.b.String()
}

func canonReplacement(r *rewrite.Rule) string {
	c := newCanon()
	c.replacement(r)
	return c.b.String()
}

func canonFull(r *rewrite.Rule) string {
	c := newCanon()
	c.pattern(r)
	c.b.WriteString("=>")
	c.replacement(r)
	return c.b.String()
}
