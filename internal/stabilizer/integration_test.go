package stabilizer

import (
	"testing"
	"time"

	"github.com/guoq-dev/guoq/internal/baselines"
	"github.com/guoq-dev/guoq/internal/benchmarks"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/opt"
)

// TestGUOQPreservesCliffordCircuitExactly optimizes a 24-qubit Clifford
// benchmark (hidden shift) over Clifford+T and verifies the result exactly
// with the tableau — no sampling, no tolerance.
func TestGUOQPreservesCliffordCircuitExactly(t *testing.T) {
	src := benchmarks.HiddenShift(24, 0x5ca1ab1e&0xffffff, 3)
	gs := gateset.CliffordT
	c, err := gateset.Translate(src, gs)
	if err != nil {
		t.Fatal(err)
	}
	if !IsClifford(c) {
		t.Fatal("translated hidden shift should be Clifford-only")
	}
	tool := baselines.NewGUOQ(1e-8)
	out := tool.Optimize(c, gs, opt.TCost(), 400*time.Millisecond, 5)
	if !IsClifford(out) {
		// The optimizer may only introduce T gates in T-reducing moves; on
		// a T-free circuit it should stay Clifford, but a resynthesis call
		// could in principle emit T pairs. Verify semantics regardless.
		t.Logf("optimizer left the Clifford fragment (T count %d)", out.TCount())
		return
	}
	ok, err := EquivalentClifford(c, out)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("optimized Clifford circuit is NOT equivalent — exact tableau check failed")
	}
	if out.Len() > c.Len() {
		t.Fatalf("optimization grew the circuit %d -> %d", c.Len(), out.Len())
	}
}
