package stabilizer

import (
	"math/rand"
	"testing"

	"github.com/guoq-dev/guoq/internal/benchmarks"
	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/linalg"
)

var cliffordVocab = []gate.Name{
	gate.H, gate.S, gate.Sdg, gate.X, gate.Y, gate.Z, gate.SX, gate.SXdg,
	gate.CX, gate.CZ, gate.Swap,
}

func TestIdentityTableau(t *testing.T) {
	tab := NewIdentity(5)
	if !tab.IsIdentity() {
		t.Fatal("fresh tableau should be identity")
	}
	tab.ApplyH(2)
	if tab.IsIdentity() {
		t.Fatal("H is not the identity")
	}
	tab.ApplyH(2)
	if !tab.IsIdentity() {
		t.Fatal("H·H should restore the identity")
	}
}

func TestKnownCliffordIdentities(t *testing.T) {
	cases := []struct {
		name  string
		gates []gate.Gate
	}{
		{"ssss", []gate.Gate{gate.NewS(0), gate.NewS(0), gate.NewS(0), gate.NewS(0)}},
		{"s-sdg", []gate.Gate{gate.NewS(0), gate.NewSdg(0)}},
		{"xx", []gate.Gate{gate.NewX(0), gate.NewX(0)}},
		{"cxcx", []gate.Gate{gate.NewCX(0, 1), gate.NewCX(0, 1)}},
		{"hzh=x", []gate.Gate{gate.NewH(0), gate.NewZ(0), gate.NewH(0), gate.NewX(0)}},
		{"swap=3cx", []gate.Gate{gate.NewSwap(0, 1), gate.NewCX(0, 1), gate.NewCX(1, 0), gate.NewCX(0, 1)}},
		{"cz-sym", []gate.Gate{gate.NewCZ(0, 1), gate.NewCZ(1, 0)}},
		{"sxsx=x", []gate.Gate{gate.NewSX(0), gate.NewSX(0), gate.NewX(0)}},
		{"yy", []gate.Gate{gate.NewY(0), gate.NewY(0)}},
	}
	for _, c := range cases {
		circ := circuit.New(2)
		circ.Append(c.gates...)
		tab, err := Apply(circ)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !tab.IsIdentity() {
			t.Errorf("%s: should conjugate to identity", c.name)
		}
	}
}

// TestAgreesWithUnitary cross-checks the tableau equivalence decision
// against exact unitary comparison on small random Clifford circuits.
func TestAgreesWithUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		a := circuit.Random(3, 14, cliffordVocab, rng)
		var b *circuit.Circuit
		if trial%2 == 0 {
			// Equivalent variant: append a do-undo pair.
			b = a.Clone()
			b.Append(gate.NewCX(0, 2), gate.NewCX(0, 2))
		} else {
			b = circuit.Random(3, 14, cliffordVocab, rng)
		}
		want := linalg.EqualUpToPhase(a.Unitary(), b.Unitary(), 1e-9)
		got, err := EquivalentClifford(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: tableau says %v, unitary says %v", trial, got, want)
		}
	}
}

func TestWideCliffordEquivalence(t *testing.T) {
	// 60-qubit check — far beyond any state-vector method.
	rng := rand.New(rand.NewSource(2))
	a := circuit.Random(60, 600, cliffordVocab, rng)
	ok, err := EquivalentClifford(a, a.Clone())
	if err != nil || !ok {
		t.Fatalf("wide self-equivalence failed: %v %v", ok, err)
	}
	// C·C† must be the identity conjugation.
	full := a.Clone()
	full.Append(a.Inverse().Gates...)
	tab, err := Apply(full)
	if err != nil {
		t.Fatal(err)
	}
	if !tab.IsIdentity() {
		t.Fatal("C·C† tableau not identity")
	}
	// Tampering must be detected.
	b := a.Clone()
	b.Gates[300] = gate.NewS(b.Gates[300].Qubits[0])
	ok, err = EquivalentClifford(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("tampered wide circuit passed")
	}
}

func TestRejectsNonClifford(t *testing.T) {
	c := circuit.New(1)
	c.Append(gate.NewT(0))
	if _, err := Apply(c); err == nil {
		t.Fatal("T gate should be rejected")
	}
	if IsClifford(c) {
		t.Fatal("IsClifford(T) = true")
	}
	c2 := circuit.New(2)
	c2.Append(gate.NewH(0), gate.NewCZ(0, 1))
	if !IsClifford(c2) {
		t.Fatal("Clifford circuit misclassified")
	}
}

func TestHiddenShiftIdentityCheck(t *testing.T) {
	// The hidden-shift benchmark is Clifford-only: two instances with the
	// same shift are equal; different shifts differ.
	a := benchmarks.HiddenShift(12, 0x3b, 1)
	b := benchmarks.HiddenShift(12, 0x3b, 99)
	ok, err := EquivalentClifford(a, b)
	if err != nil || !ok {
		t.Fatalf("same shift should be equivalent: %v %v", ok, err)
	}
	c := benchmarks.HiddenShift(12, 0x1c, 1)
	ok, err = EquivalentClifford(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("different shifts should differ")
	}
}

func TestMismatchedWidths(t *testing.T) {
	if _, err := EquivalentClifford(circuit.New(2), circuit.New(3)); err == nil {
		t.Fatal("width mismatch should error")
	}
}
