// Package stabilizer implements an Aaronson–Gottesman (CHP) tableau
// simulator for Clifford circuits. Conjugation of the 2n Pauli generators
// costs O(n) bits per gate, so Clifford circuits of any width verify
// exactly — a counterpart to package verify's sampling check:
//
//   - verify:     any gates, ≤ 24 qubits, probabilistic
//   - stabilizer: Clifford gates only, unbounded width, exact
//
// A Clifford unitary equals the identity (up to global phase) iff it
// conjugates every X_i and Z_i to itself with positive sign, so circuit
// equivalence reduces to "apply A then B† and check the tableau is
// trivial".
package stabilizer

import (
	"fmt"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
)

// Tableau tracks the images of the destabilizer (X_i) and stabilizer (Z_i)
// generators under conjugation. Row i < n is the image of X_i; row n+i is
// the image of Z_i. Bits are packed 64 per word.
type Tableau struct {
	n     int
	words int
	x     [][]uint64 // x[row][word]
	z     [][]uint64
	r     []uint8 // sign bit per row (0: +, 1: −)
}

// NewIdentity returns the identity tableau on n qubits.
func NewIdentity(n int) *Tableau {
	words := (n + 63) / 64
	t := &Tableau{n: n, words: words,
		x: make([][]uint64, 2*n), z: make([][]uint64, 2*n), r: make([]uint8, 2*n)}
	for row := 0; row < 2*n; row++ {
		t.x[row] = make([]uint64, words)
		t.z[row] = make([]uint64, words)
	}
	for i := 0; i < n; i++ {
		t.x[i][i/64] |= 1 << uint(i%64)   // row i = X_i
		t.z[n+i][i/64] |= 1 << uint(i%64) // row n+i = Z_i
	}
	return t
}

// N returns the qubit count.
func (t *Tableau) N() int { return t.n }

func (t *Tableau) getX(row, q int) uint64 { return (t.x[row][q/64] >> uint(q%64)) & 1 }
func (t *Tableau) getZ(row, q int) uint64 { return (t.z[row][q/64] >> uint(q%64)) & 1 }

// ApplyH applies a Hadamard on qubit q: X↔Z, phase flips when both set.
func (t *Tableau) ApplyH(q int) {
	w, b := q/64, uint(q%64)
	for row := 0; row < 2*t.n; row++ {
		xq := (t.x[row][w] >> b) & 1
		zq := (t.z[row][w] >> b) & 1
		t.r[row] ^= uint8(xq & zq)
		// swap bits
		t.x[row][w] ^= (xq ^ zq) << b
		t.z[row][w] ^= (xq ^ zq) << b
	}
}

// ApplyS applies the phase gate on qubit q: Z ^= X, phase flips when both.
func (t *Tableau) ApplyS(q int) {
	w, b := q/64, uint(q%64)
	for row := 0; row < 2*t.n; row++ {
		xq := (t.x[row][w] >> b) & 1
		zq := (t.z[row][w] >> b) & 1
		t.r[row] ^= uint8(xq & zq)
		t.z[row][w] ^= xq << b
	}
}

// ApplyCX applies a CNOT with control c and target tq.
func (t *Tableau) ApplyCX(c, tq int) {
	cw, cb := c/64, uint(c%64)
	tw, tb := tq/64, uint(tq%64)
	for row := 0; row < 2*t.n; row++ {
		xc := (t.x[row][cw] >> cb) & 1
		zc := (t.z[row][cw] >> cb) & 1
		xt := (t.x[row][tw] >> tb) & 1
		zt := (t.z[row][tw] >> tb) & 1
		t.r[row] ^= uint8(xc & zt & (xt ^ zc ^ 1))
		t.x[row][tw] ^= xc << tb
		t.z[row][cw] ^= zt << cb
	}
}

// ApplyGate applies any Clifford gate from the vocabulary, or returns an
// error for non-Clifford gates (t, rotations with generic angles, ...).
func (t *Tableau) ApplyGate(g gate.Gate) error {
	q := g.Qubits
	switch g.Name {
	case gate.I:
	case gate.H:
		t.ApplyH(q[0])
	case gate.S:
		t.ApplyS(q[0])
	case gate.Sdg:
		t.ApplyS(q[0])
		t.ApplyS(q[0])
		t.ApplyS(q[0])
	case gate.Z:
		t.ApplyS(q[0])
		t.ApplyS(q[0])
	case gate.X:
		t.ApplyH(q[0])
		t.ApplyS(q[0])
		t.ApplyS(q[0])
		t.ApplyH(q[0])
	case gate.Y: // conjugation by Y = conjugation by Z·X (phase is global)
		t.ApplyS(q[0])
		t.ApplyS(q[0])
		t.ApplyH(q[0])
		t.ApplyS(q[0])
		t.ApplyS(q[0])
		t.ApplyH(q[0])
	case gate.SX, gate.SXdg: // √X ~ H·S(†)·H up to global phase
		t.ApplyH(q[0])
		t.ApplyS(q[0])
		if g.Name == gate.SXdg {
			t.ApplyS(q[0])
			t.ApplyS(q[0])
		}
		t.ApplyH(q[0])
	case gate.CX:
		t.ApplyCX(q[0], q[1])
	case gate.CZ:
		t.ApplyH(q[1])
		t.ApplyCX(q[0], q[1])
		t.ApplyH(q[1])
	case gate.Swap:
		t.ApplyCX(q[0], q[1])
		t.ApplyCX(q[1], q[0])
		t.ApplyCX(q[0], q[1])
	default:
		return fmt.Errorf("stabilizer: %s is not a Clifford gate", g.Name)
	}
	return nil
}

// Apply runs a whole circuit through a fresh tableau.
func Apply(c *circuit.Circuit) (*Tableau, error) {
	t := NewIdentity(c.NumQubits)
	for _, g := range c.Gates {
		if err := t.ApplyGate(g); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// IsIdentity reports whether the tableau is the identity conjugation: every
// generator maps to itself with positive sign — i.e. the simulated Clifford
// is e^{iφ}·I.
func (t *Tableau) IsIdentity() bool {
	for i := 0; i < t.n; i++ {
		if t.r[i] != 0 || t.r[t.n+i] != 0 {
			return false
		}
		for w := 0; w < t.words; w++ {
			wantX := uint64(0)
			if w == i/64 {
				wantX = 1 << uint(i%64)
			}
			if t.x[i][w] != wantX || t.z[i][w] != 0 {
				return false
			}
			if t.z[t.n+i][w] != wantX || t.x[t.n+i][w] != 0 {
				return false
			}
		}
	}
	return true
}

// IsClifford reports whether every gate of the circuit is supported.
func IsClifford(c *circuit.Circuit) bool {
	for _, g := range c.Gates {
		switch g.Name {
		case gate.I, gate.H, gate.S, gate.Sdg, gate.Z, gate.X, gate.Y,
			gate.SX, gate.SXdg, gate.CX, gate.CZ, gate.Swap:
		default:
			return false
		}
	}
	return true
}

// EquivalentClifford checks a ≡ b (mod global phase) exactly, for Clifford
// circuits of any width, by simulating a·b† and testing for the identity.
func EquivalentClifford(a, b *circuit.Circuit) (bool, error) {
	if a.NumQubits != b.NumQubits {
		return false, fmt.Errorf("stabilizer: qubit counts differ: %d vs %d", a.NumQubits, b.NumQubits)
	}
	t := NewIdentity(a.NumQubits)
	for _, g := range a.Gates {
		if err := t.ApplyGate(g); err != nil {
			return false, err
		}
	}
	for _, g := range b.Inverse().Gates {
		if err := t.ApplyGate(g); err != nil {
			return false, err
		}
	}
	return t.IsIdentity(), nil
}
