package gate

import (
	"math"
	"math/rand"
	"testing"

	"github.com/guoq-dev/guoq/internal/linalg"
)

const tol = 1e-10

func TestAllMatricesUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range Names() {
		s, _ := SpecOf(n)
		qs := make([]int, s.Qubits)
		for i := range qs {
			qs[i] = i
		}
		for trial := 0; trial < 5; trial++ {
			ps := make([]float64, s.Params)
			for i := range ps {
				ps[i] = rng.Float64()*4*math.Pi - 2*math.Pi
			}
			g := New(n, qs, ps)
			m := Matrix(g)
			if m.N != 1<<s.Qubits {
				t.Fatalf("%s: matrix dim %d, want %d", n, m.N, 1<<s.Qubits)
			}
			if !linalg.IsUnitary(m, 1e-9) {
				t.Fatalf("%s: matrix not unitary for params %v", n, ps)
			}
		}
	}
}

func TestInverses(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range Names() {
		s, _ := SpecOf(n)
		qs := make([]int, s.Qubits)
		for i := range qs {
			qs[i] = i
		}
		ps := make([]float64, s.Params)
		for i := range ps {
			ps[i] = rng.Float64()*2*math.Pi - math.Pi
		}
		g := New(n, qs, ps)
		inv := Inverse(g)
		prod := linalg.Mul(Matrix(g), Matrix(inv))
		if !linalg.EqualUpToPhase(prod, linalg.Identity(prod.N), 1e-9) {
			t.Fatalf("%s: g·g† != I (mod phase)", n)
		}
	}
}

func TestKnownIdentities(t *testing.T) {
	id2 := linalg.Identity(2)
	check := func(name string, m linalg.Matrix, want linalg.Matrix) {
		t.Helper()
		if !linalg.EqualUpToPhase(m, want, tol) {
			t.Errorf("%s failed:\n%v\nwant\n%v", name, m, want)
		}
	}
	check("H*H = I", linalg.Mul(Matrix(NewH(0)), Matrix(NewH(0))), id2)
	check("T*T = S", linalg.Mul(Matrix(NewT(0)), Matrix(NewT(0))), Matrix(NewS(0)))
	check("S*S = Z", linalg.Mul(Matrix(NewS(0)), Matrix(NewS(0))), Matrix(NewZ(0)))
	check("SX*SX = X", linalg.Mul(Matrix(NewSX(0)), Matrix(NewSX(0))), Matrix(NewX(0)))
	check("HXH = Z", linalg.MulAll(Matrix(NewH(0)), Matrix(NewX(0)), Matrix(NewH(0))), Matrix(NewZ(0)))
	check("HZH = X", linalg.MulAll(Matrix(NewH(0)), Matrix(NewZ(0)), Matrix(NewH(0))), Matrix(NewX(0)))
	check("Rz(pi) ~ Z", Matrix(NewRz(math.Pi, 0)), Matrix(NewZ(0)))
	check("Rx(pi) ~ X", Matrix(NewRx(math.Pi, 0)), Matrix(NewX(0)))
	check("Ry(pi) ~ Y", Matrix(NewRy(math.Pi, 0)), Matrix(NewY(0)))
	check("U1(pi/4) = T", Matrix(NewU1(math.Pi/4, 0)), Matrix(NewT(0)))
	check("U3(pi/2,0,pi) ~ H", Matrix(NewU3(math.Pi/2, 0, math.Pi, 0)), Matrix(NewH(0)))
	check("U2(0,pi) ~ H", Matrix(NewU2(0, math.Pi, 0)), Matrix(NewH(0)))
	// CX in the paper's Example 3.1.
	wantCX := linalg.FromRows([][]complex128{
		{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0},
	})
	check("CX matrix", Matrix(NewCX(0, 1)), wantCX)
}

func TestPaperExample31(t *testing.T) {
	// C := T q1; CX q0 q1 has unitary U_CX · (I ⊗ U_T).
	ut := Matrix(NewT(0))
	ucx := Matrix(NewCX(0, 1))
	want := linalg.Mul(ucx, linalg.Kron(linalg.Identity(2), ut))

	u := linalg.Identity(4)
	linalg.ApplyGateLeft(ut, []int{1}, 2, u)
	linalg.ApplyGateLeft(ucx, []int{0, 1}, 2, u)
	if !linalg.Equal(u, want, tol) {
		t.Fatalf("Example 3.1 mismatch:\n%v\nwant\n%v", u, want)
	}
}

func TestCZSymmetric(t *testing.T) {
	a := linalg.Expand(Matrix(NewCZ(0, 1)), []int{0, 1}, 2)
	b := linalg.Expand(Matrix(NewCZ(0, 1)), []int{1, 0}, 2)
	if !linalg.Equal(a, b, tol) {
		t.Fatal("CZ should be symmetric in its qubits")
	}
}

func TestCCXBothControls(t *testing.T) {
	// CCX fires only when both controls are 1: |110> -> |111>.
	m := Matrix(NewCCX(0, 1, 2))
	if m.At(7, 6) != 1 || m.At(6, 7) != 1 || m.At(5, 5) != 1 {
		t.Fatal("CCX matrix wrong")
	}
}

func TestNewValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("unknown gate", func() { New("bogus", []int{0}, nil) })
	mustPanic("wrong arity", func() { New(CX, []int{0}, nil) })
	mustPanic("wrong params", func() { New(Rz, []int{0}, nil) })
	mustPanic("dup qubits", func() { New(CX, []int{1, 1}, nil) })
	mustPanic("negative qubit", func() { New(H, []int{-1}, nil) })
}

func TestIsIdentityAngle(t *testing.T) {
	if !NewRz(0, 0).IsIdentityAngle(tol) {
		t.Error("rz(0) should be identity")
	}
	if !NewRz(2*math.Pi, 0).IsIdentityAngle(tol) {
		t.Error("rz(2pi) should be identity mod phase")
	}
	if NewRz(math.Pi, 0).IsIdentityAngle(tol) {
		t.Error("rz(pi) is not identity")
	}
	if NewH(0).IsIdentityAngle(tol) {
		t.Error("h is not identity")
	}
}

func TestGateString(t *testing.T) {
	if s := NewCX(0, 1).String(); s != "cx q[0], q[1]" {
		t.Errorf("String() = %q", s)
	}
	if s := NewRz(1.5, 2).String(); s != "rz(1.5) q[2]" {
		t.Errorf("String() = %q", s)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := NewRz(1.0, 3)
	c := g.Clone()
	c.Qubits[0] = 5
	c.Params[0] = 9
	if g.Qubits[0] != 3 || g.Params[0] != 1.0 {
		t.Fatal("Clone shares storage with original")
	}
}
