// Package gate defines the quantum gate vocabulary: gate names, arities,
// parameter counts, unitary matrices, and inverses. A Gate is a gate
// application — a named operation bound to concrete qubits and angles.
//
// The matrix convention follows the paper (Example 3.1): within a gate's own
// matrix, its first qubit is the most significant bit of the basis index, so
// CX(control, target) is [[1,0,0,0],[0,1,0,0],[0,0,0,1],[0,0,1,0]].
package gate

import (
	"fmt"
	"strings"
)

// Name identifies a gate kind, in OpenQASM-style lower case ("h", "cx", ...).
type Name string

// The supported gate vocabulary. The five evaluation gate sets (Table 2) are
// subsets of this list; the remaining gates (ccx, cp, ...) appear in
// benchmark construction and are translated away by package gateset.
const (
	I    Name = "id"
	H    Name = "h"
	X    Name = "x"
	Y    Name = "y"
	Z    Name = "z"
	S    Name = "s"
	Sdg  Name = "sdg"
	T    Name = "t"
	Tdg  Name = "tdg"
	SX   Name = "sx"
	SXdg Name = "sxdg"
	Rx   Name = "rx"
	Ry   Name = "ry"
	Rz   Name = "rz"
	U1   Name = "u1"
	U2   Name = "u2"
	U3   Name = "u3"
	CX   Name = "cx"
	CZ   Name = "cz"
	Swap Name = "swap"
	Rxx  Name = "rxx"
	Rzz  Name = "rzz"
	CP   Name = "cp"
	CCX  Name = "ccx"
	CCZ  Name = "ccz"
)

// Spec describes the static shape of a gate kind.
type Spec struct {
	Qubits int // arity
	Params int // number of angle parameters
}

var specs = map[Name]Spec{
	I: {1, 0}, H: {1, 0}, X: {1, 0}, Y: {1, 0}, Z: {1, 0},
	S: {1, 0}, Sdg: {1, 0}, T: {1, 0}, Tdg: {1, 0},
	SX: {1, 0}, SXdg: {1, 0},
	Rx: {1, 1}, Ry: {1, 1}, Rz: {1, 1},
	U1: {1, 1}, U2: {1, 2}, U3: {1, 3},
	CX: {2, 0}, CZ: {2, 0}, Swap: {2, 0},
	Rxx: {2, 1}, Rzz: {2, 1}, CP: {2, 1},
	CCX: {3, 0}, CCZ: {3, 0},
}

// SpecOf returns the Spec for a gate name and whether the name is known.
func SpecOf(n Name) (Spec, bool) {
	s, ok := specs[n]
	return s, ok
}

// Names returns all known gate names (unordered).
func Names() []Name {
	out := make([]Name, 0, len(specs))
	for n := range specs {
		out = append(out, n)
	}
	return out
}

// Gate is a gate application: a kind, the qubits it acts on (in gate order:
// controls first), and its angle parameters.
type Gate struct {
	Name   Name
	Qubits []int
	Params []float64
}

// New constructs a gate application, validating arity and parameter count.
// It panics on malformed input since callers construct gates from static
// knowledge; the QASM parser validates separately and returns errors.
func New(n Name, qubits []int, params []float64) Gate {
	s, ok := specs[n]
	if !ok {
		panic(fmt.Sprintf("gate: unknown gate %q", n))
	}
	if len(qubits) != s.Qubits {
		panic(fmt.Sprintf("gate: %s expects %d qubits, got %d", n, s.Qubits, len(qubits)))
	}
	if len(params) != s.Params {
		panic(fmt.Sprintf("gate: %s expects %d params, got %d", n, s.Params, len(params)))
	}
	seen := 0
	for _, q := range qubits {
		if q < 0 {
			panic(fmt.Sprintf("gate: %s on negative qubit %d", n, q))
		}
		if q < 64 {
			bit := 1 << uint(q)
			if seen&bit != 0 {
				panic(fmt.Sprintf("gate: %s uses qubit %d twice", n, q))
			}
			seen |= bit
		}
	}
	return Gate{Name: n, Qubits: qubits, Params: params}
}

// Arity returns the number of qubits the gate acts on.
func (g Gate) Arity() int { return len(g.Qubits) }

// Equal reports structural equality with h: same name, qubits, and
// float-equal parameters. This is the per-gate comparison circuit.Equal
// applies, and the one the changed-count passes use to certify no-ops.
func (g Gate) Equal(h Gate) bool {
	if g.Name != h.Name || len(g.Qubits) != len(h.Qubits) || len(g.Params) != len(h.Params) {
		return false
	}
	for i := range g.Qubits {
		if g.Qubits[i] != h.Qubits[i] {
			return false
		}
	}
	for i := range g.Params {
		if g.Params[i] != h.Params[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of g.
func (g Gate) Clone() Gate {
	q := make([]int, len(g.Qubits))
	copy(q, g.Qubits)
	var p []float64
	if len(g.Params) > 0 {
		p = make([]float64, len(g.Params))
		copy(p, g.Params)
	}
	return Gate{Name: g.Name, Qubits: q, Params: p}
}

// OnQubit reports whether g touches qubit q.
func (g Gate) OnQubit(q int) bool {
	for _, x := range g.Qubits {
		if x == q {
			return true
		}
	}
	return false
}

// String renders the gate in QASM-like syntax, e.g. "rz(1.5708) q[3]".
func (g Gate) String() string {
	var b strings.Builder
	b.WriteString(string(g.Name))
	if len(g.Params) > 0 {
		b.WriteByte('(')
		for i, p := range g.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%.10g", p)
		}
		b.WriteByte(')')
	}
	b.WriteByte(' ')
	for i, q := range g.Qubits {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "q[%d]", q)
	}
	return b.String()
}

// Convenience constructors for the common gates.

func NewH(q int) Gate    { return New(H, []int{q}, nil) }
func NewX(q int) Gate    { return New(X, []int{q}, nil) }
func NewY(q int) Gate    { return New(Y, []int{q}, nil) }
func NewZ(q int) Gate    { return New(Z, []int{q}, nil) }
func NewS(q int) Gate    { return New(S, []int{q}, nil) }
func NewSdg(q int) Gate  { return New(Sdg, []int{q}, nil) }
func NewT(q int) Gate    { return New(T, []int{q}, nil) }
func NewTdg(q int) Gate  { return New(Tdg, []int{q}, nil) }
func NewSX(q int) Gate   { return New(SX, []int{q}, nil) }
func NewSXdg(q int) Gate { return New(SXdg, []int{q}, nil) }

func NewRx(theta float64, q int) Gate { return New(Rx, []int{q}, []float64{theta}) }
func NewRy(theta float64, q int) Gate { return New(Ry, []int{q}, []float64{theta}) }
func NewRz(theta float64, q int) Gate { return New(Rz, []int{q}, []float64{theta}) }
func NewU1(l float64, q int) Gate     { return New(U1, []int{q}, []float64{l}) }
func NewU2(p, l float64, q int) Gate  { return New(U2, []int{q}, []float64{p, l}) }
func NewU3(t, p, l float64, q int) Gate {
	return New(U3, []int{q}, []float64{t, p, l})
}

func NewCX(c, t int) Gate   { return New(CX, []int{c, t}, nil) }
func NewCZ(c, t int) Gate   { return New(CZ, []int{c, t}, nil) }
func NewSwap(a, b int) Gate { return New(Swap, []int{a, b}, nil) }
func NewRxx(theta float64, a, b int) Gate {
	return New(Rxx, []int{a, b}, []float64{theta})
}
func NewRzz(theta float64, a, b int) Gate {
	return New(Rzz, []int{a, b}, []float64{theta})
}
func NewCP(theta float64, c, t int) Gate {
	return New(CP, []int{c, t}, []float64{theta})
}
func NewCCX(c1, c2, t int) Gate { return New(CCX, []int{c1, c2, t}, nil) }
func NewCCZ(a, b, c int) Gate   { return New(CCZ, []int{a, b, c}, nil) }
