package gate

import (
	"fmt"
	"math"
	"math/cmplx"

	"github.com/guoq-dev/guoq/internal/linalg"
)

// Matrix returns the unitary matrix of the gate application g in its own
// 2^arity-dimensional space (first listed qubit = most significant bit).
func Matrix(g Gate) linalg.Matrix {
	switch g.Name {
	case I:
		return linalg.Identity(2)
	case H:
		h := complex(1/math.Sqrt2, 0)
		return linalg.FromRows([][]complex128{{h, h}, {h, -h}})
	case X:
		return linalg.FromRows([][]complex128{{0, 1}, {1, 0}})
	case Y:
		return linalg.FromRows([][]complex128{{0, -1i}, {1i, 0}})
	case Z:
		return linalg.FromRows([][]complex128{{1, 0}, {0, -1}})
	case S:
		return linalg.FromRows([][]complex128{{1, 0}, {0, 1i}})
	case Sdg:
		return linalg.FromRows([][]complex128{{1, 0}, {0, -1i}})
	case T:
		return linalg.FromRows([][]complex128{{1, 0}, {0, phase(math.Pi / 4)}})
	case Tdg:
		return linalg.FromRows([][]complex128{{1, 0}, {0, phase(-math.Pi / 4)}})
	case SX:
		return linalg.FromRows([][]complex128{
			{0.5 + 0.5i, 0.5 - 0.5i},
			{0.5 - 0.5i, 0.5 + 0.5i},
		})
	case SXdg:
		return linalg.FromRows([][]complex128{
			{0.5 - 0.5i, 0.5 + 0.5i},
			{0.5 + 0.5i, 0.5 - 0.5i},
		})
	case Rx:
		c, s := trig(g.Params[0])
		return linalg.FromRows([][]complex128{{c, -1i * s}, {-1i * s, c}})
	case Ry:
		c, s := trig(g.Params[0])
		return linalg.FromRows([][]complex128{{c, -s}, {s, c}})
	case Rz:
		th := g.Params[0]
		return linalg.FromRows([][]complex128{
			{phase(-th / 2), 0},
			{0, phase(th / 2)},
		})
	case U1:
		return linalg.FromRows([][]complex128{{1, 0}, {0, phase(g.Params[0])}})
	case U2:
		p, l := g.Params[0], g.Params[1]
		inv := complex(1/math.Sqrt2, 0)
		return linalg.FromRows([][]complex128{
			{inv, -inv * phase(l)},
			{inv * phase(p), inv * phase(p+l)},
		})
	case U3:
		return u3Matrix(g.Params[0], g.Params[1], g.Params[2])
	case CX:
		return linalg.FromRows([][]complex128{
			{1, 0, 0, 0},
			{0, 1, 0, 0},
			{0, 0, 0, 1},
			{0, 0, 1, 0},
		})
	case CZ:
		return linalg.FromRows([][]complex128{
			{1, 0, 0, 0},
			{0, 1, 0, 0},
			{0, 0, 1, 0},
			{0, 0, 0, -1},
		})
	case Swap:
		return linalg.FromRows([][]complex128{
			{1, 0, 0, 0},
			{0, 0, 1, 0},
			{0, 1, 0, 0},
			{0, 0, 0, 1},
		})
	case Rxx:
		c, s := trig(g.Params[0])
		is := -1i * s
		return linalg.FromRows([][]complex128{
			{c, 0, 0, is},
			{0, c, is, 0},
			{0, is, c, 0},
			{is, 0, 0, c},
		})
	case Rzz:
		th := g.Params[0]
		a, b := phase(-th/2), phase(th/2)
		return linalg.FromRows([][]complex128{
			{a, 0, 0, 0},
			{0, b, 0, 0},
			{0, 0, b, 0},
			{0, 0, 0, a},
		})
	case CP:
		return linalg.FromRows([][]complex128{
			{1, 0, 0, 0},
			{0, 1, 0, 0},
			{0, 0, 1, 0},
			{0, 0, 0, phase(g.Params[0])},
		})
	case CCX:
		m := linalg.Identity(8)
		m.Set(6, 6, 0)
		m.Set(7, 7, 0)
		m.Set(6, 7, 1)
		m.Set(7, 6, 1)
		return m
	case CCZ:
		m := linalg.Identity(8)
		m.Set(7, 7, -1)
		return m
	}
	panic(fmt.Sprintf("gate: Matrix: unknown gate %q", g.Name))
}

func phase(a float64) complex128 { return cmplx.Exp(complex(0, a)) }

func trig(theta float64) (c, s complex128) {
	return complex(math.Cos(theta/2), 0), complex(math.Sin(theta/2), 0)
}

func u3Matrix(t, p, l float64) linalg.Matrix {
	c := complex(math.Cos(t/2), 0)
	s := complex(math.Sin(t/2), 0)
	return linalg.FromRows([][]complex128{
		{c, -phase(l) * s},
		{phase(p) * s, phase(p+l) * c},
	})
}

// U3Matrix exposes the U3 gate matrix for synthesis templates.
func U3Matrix(theta, phi, lambda float64) linalg.Matrix {
	return u3Matrix(theta, phi, lambda)
}

// Inverse returns a gate application implementing g†, expressed in the same
// vocabulary (e.g. Inverse(t) = tdg, Inverse(rz(θ)) = rz(−θ)).
func Inverse(g Gate) Gate {
	switch g.Name {
	case I, H, X, Y, Z, CX, CZ, Swap, CCX, CCZ: // self-inverse
		return g.Clone()
	case S:
		return New(Sdg, g.Qubits, nil)
	case Sdg:
		return New(S, g.Qubits, nil)
	case T:
		return New(Tdg, g.Qubits, nil)
	case Tdg:
		return New(T, g.Qubits, nil)
	case SX:
		return New(SXdg, g.Qubits, nil)
	case SXdg:
		return New(SX, g.Qubits, nil)
	case Rx, Ry, Rz, Rxx, Rzz, CP, U1:
		return New(g.Name, g.Qubits, []float64{-g.Params[0]})
	case U2:
		// U2(φ,λ)† = U3(−π/2, −λ, −φ)
		return New(U3, g.Qubits, []float64{-math.Pi / 2, -g.Params[1], -g.Params[0]})
	case U3:
		return New(U3, g.Qubits, []float64{-g.Params[0], -g.Params[2], -g.Params[1]})
	}
	panic(fmt.Sprintf("gate: Inverse: unknown gate %q", g.Name))
}

// IsTwoQubit reports whether the gate acts on exactly two qubits. Two-qubit
// gate count is the primary NISQ metric in the paper.
func (g Gate) IsTwoQubit() bool { return len(g.Qubits) == 2 }

// IsTGate reports whether the gate is a T or T† gate — the costly gates in
// fault-tolerant execution (Q4 in the paper).
func (g Gate) IsTGate() bool { return g.Name == T || g.Name == Tdg }

// IsIdentityAngle reports whether a parameterized rotation is the identity
// (all angles ≡ 0 mod 4π for half-angle rotations, mod 2π for phase gates)
// within tol. Non-parameterized gates return false.
func (g Gate) IsIdentityAngle(tol float64) bool {
	if len(g.Params) == 0 {
		return g.Name == I
	}
	switch g.Name {
	case Rx, Ry, Rz, Rxx, Rzz:
		// exp(-iθG/2) = I requires θ ≡ 0 (mod 4π); θ = 2π gives −I which is
		// identity up to global phase, acceptable for whole-circuit use but
		// NOT inside a controlled context. We only treat θ ≡ 0 mod 2π as
		// removable: at 2π the gate equals −I, a pure global phase.
		return linalg.IsMultipleOf(g.Params[0], 2*math.Pi, tol)
	case U1, CP:
		return linalg.IsMultipleOf(g.Params[0], 2*math.Pi, tol)
	case U3:
		return linalg.IsMultipleOf(g.Params[0], 2*math.Pi, tol) &&
			linalg.IsMultipleOf(g.Params[1]+g.Params[2], 2*math.Pi, tol)
	}
	return false
}
