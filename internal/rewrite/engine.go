package rewrite

import (
	"fmt"
	"sort"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
)

// Engine is the stateful, incremental rewrite executor. It owns a mutable
// circuit with a persistently maintained DAG (gate windows are spliced in
// and out in place, one linear sweep per transformation, instead of a
// from-scratch BuildDAG per call) and a per-rule match-site cache, so
// iterated full passes — the GUOQ inner loop, fixed-pass pipelines,
// lookahead search — cost far less than the pure FullPass API, which
// reallocates and rescans everything on every call.
//
// Cache and invalidation contract: for every rule the Engine keeps a
// three-state per-anchor verdict — unknown, no-match, or match — so a
// rescan skips known failures outright and replays known matches by pure
// DAG navigation (see replayAt) instead of re-running the matcher. A match
// attempt at an anchor only ever inspects gates within the rule's halo
// depth (Rule.HaloDepth, derived from the pattern's per-wire extents at
// compile time) in wire-adjacency steps of the anchor, so after a splice
// only anchors inside a wire-adjacency halo of the touched windows — BFS
// steps from the replaced gates and their boundary wire neighbours, out to
// each rule's own halo depth — can change verdicts; exactly those entries,
// positive and negative alike, are cleared. The clearing is lazy: a splice
// parks its halo job and the next scan flushes it, so a speculative splice
// that is cleanly rolled back (nothing scanned in between) cancels the job
// and costs no cache entries at all. Whole-circuit mutations (SetCircuit,
// Reset) drop every cache entry.
//
// All mutations are recorded on a transaction log: Mark returns a point to
// which Rollback restores the exact prior gate sequence (a speculative
// candidate the caller rejected, or a lookahead branch), and Commit accepts
// everything logged. A splice necessarily drops the cache entries inside
// its windows (the anchors there are replaced), so each undo record also
// saves those entries — for every rule — and Rollback copies them back as
// it restores each window. Undoing record i returns to exactly the state
// record i's entries were computed in, so the restored verdicts are fresh
// truths, never resurrected stale ones. Together with the cancelled halo
// job this makes a rejected candidate cost no cache entries at all: the hot
// reject path (propose, apply, cost, rollback, re-propose later) re-runs no
// matcher work once a site has been evaluated against each live rule.
//
// An Engine is not safe for concurrent use; parallel searches thread one
// Engine per worker.
type Engine struct {
	c   *circuit.Circuit
	dag *circuit.DAG

	caches   map[*Rule]*ruleCache
	rules    []*ruleCache // caches in creation order, for stable iteration
	maxDepth int          // deepest per-rule halo among cached rules, for the BFS

	scratch  *matchScratch
	used     []bool
	matchBuf []*Match

	// Mutation assembly scratch.
	winBuf      []circuit.SpliceWindow
	replBuf     []gate.Gate
	byteScratch []byte
	qOffs       []int

	// scanCount stamps undo records so Rollback can tell whether any anchors
	// were scanned since a splice was applied; if none were, the entries
	// that survived are still valid for the restored state and the rollback
	// needs no halo pass of its own.
	scanCount int

	// Deferred halo invalidation. A forward splice does not clear its halo
	// eagerly: the job is parked here and only flushed by the next cache
	// consumer (a scan, or a dirty rollback). A clean rollback — the hot
	// reject path, where nothing scanned the cache while the speculative
	// state was live — cancels the job instead, so a rejected candidate
	// costs no cache entries at all. At most one job is ever pending: any
	// later splice or scan flushes it first, while its coordinates are
	// still current.
	pendLive  bool
	pendWins  []undoWin
	pendSeeds []int
	pendQOffs []int

	// Halo BFS scratch: epoch-stamped visited marks and a level queue.
	visited []int
	epoch   int
	queue   []int
	levels  []int
	seedQ   []int  // touched-qubit list of the current mutation
	seedQOn []bool // per-qubit membership mark for seedQ

	log []undoRec

	stats EngineStats
}

// Per-anchor cache verdicts. cacheMatch entries carry the cached match in
// the rule's anchor-sorted pos list; the other two states have no entry.
const (
	cacheUnknown = byte(iota)
	cacheNoMatch
	cacheMatch
)

// ruleCache is one rule's three-state match cache. state[i] records the
// verdict for the rule anchored at gate i, index-aligned with the gate list
// across splices. Positive entries live in pos, a small anchor-sorted list
// (one entry per cacheMatch byte in state): the cached match's index-free
// parts (qubit map, binding) stay valid until invalidated and its positions
// are re-derived on replay. Keeping the positives dense rather than as a
// parallel *Match slice matters in the hot loop — a splice delta-shifts a
// handful of entries instead of memmoving (and write-barriering) a
// pointer per gate. depth is the rule's invalidation radius
// (Rule.HaloDepth), computed from the pattern's per-wire extents at
// compile time.
type ruleCache struct {
	state []byte
	pos   []posEntry
	depth int
}

// posEntry is one cached positive match, keyed by its anchor index.
type posEntry struct {
	anchor int
	m      *Match
}

// posSearch returns the first index in pos with entry anchor >= a.
//
//guoq:hotpath
func (rc *ruleCache) posSearch(a int) int {
	lo, hi := 0, len(rc.pos)
	for lo < hi {
		mid := (lo + hi) / 2
		if rc.pos[mid].anchor < a {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// posGet returns the cached match anchored at a, or nil.
//
//guoq:hotpath
func (rc *ruleCache) posGet(a int) *Match {
	i := rc.posSearch(a)
	if i < len(rc.pos) && rc.pos[i].anchor == a {
		return rc.pos[i].m
	}
	return nil
}

// posSet inserts or replaces the entry anchored at a.
//
//guoq:hotpath
func (rc *ruleCache) posSet(a int, m *Match) {
	i := rc.posSearch(a)
	if i < len(rc.pos) && rc.pos[i].anchor == a {
		rc.pos[i].m = m
		return
	}
	rc.pos = append(rc.pos, posEntry{})
	copy(rc.pos[i+1:], rc.pos[i:])
	rc.pos[i] = posEntry{anchor: a, m: m}
}

// posDelete removes the entry anchored at a, if present.
//
//guoq:hotpath
func (rc *ruleCache) posDelete(a int) {
	i := rc.posSearch(a)
	if i < len(rc.pos) && rc.pos[i].anchor == a {
		copy(rc.pos[i:], rc.pos[i+1:])
		rc.pos[len(rc.pos)-1] = posEntry{}
		rc.pos = rc.pos[:len(rc.pos)-1]
	}
}

// posSplice mirrors a multi-window gate splice on the anchor-sorted
// positive list: entries inside a replaced window are dropped (the undo
// record keeps their matches), entries past it shift by the window's size
// delta. One linear merge, in place.
//
//guoq:hotpath
func (rc *ruleCache) posSplice(ws []circuit.SpliceWindow) {
	out := rc.pos[:0]
	delta, wi := 0, 0
	for _, pe := range rc.pos {
		for wi < len(ws) && ws[wi].Hi < pe.anchor {
			delta += len(ws[wi].Repl) - (ws[wi].Hi - ws[wi].Lo + 1)
			wi++
		}
		if wi < len(ws) && ws[wi].Lo <= pe.anchor {
			continue
		}
		out = append(out, posEntry{pe.anchor + delta, pe.m})
	}
	// Release dropped tails so rolled-back matches don't pin memory.
	for i := len(out); i < len(rc.pos); i++ {
		rc.pos[i] = posEntry{}
	}
	rc.pos = out
}

// EngineStats counts engine activity since construction, for tests and
// benchmarks.
type EngineStats struct {
	Passes       int // FullPass calls
	CacheSkips   int // anchors skipped via a cached no-match verdict
	PositiveHits int // anchors served by replaying a cached match
	MatchCalls   int // matchAt invocations (cache misses)
	Reinstalls   int // positive entries restored by rollback window restores
	Splices      int // window replacements applied (including rollbacks)
	Invalidated  int // cache entries cleared by halo invalidation
	HaloGates    int // gates swept by halo invalidation BFS passes
	HaloDepth    int // deepest per-rule halo radius in use (gauge)
	Resets       int // full invalidations (SetCircuit, Reset, their rollbacks)
	Commits      int // accepted transactions (Commit calls)
	Rollbacks    int // reverted transactions (Rollback calls that undid work)
}

type undoKind uint8

const (
	undoMulti undoKind = iota
	undoSetAll
)

// undoWin records one applied window in post-splice coordinates: gates
// [lo, lo+inserted) replaced the removed sequence (a subslice of the
// record's shared backing array).
type undoWin struct {
	lo       int
	inserted int
	removed  []gate.Gate
}

// undoRec is one logged mutation. For undoMulti, savedState holds the
// pre-splice verdict bytes of every window, concatenated per rule in
// e.rules[:nRules] order (window entries are the only ones a splice
// destroys; the rest shift but survive), and savedPos the matches behind
// its cacheMatch bytes, dense, in the same order. Rollback copies them
// back as it restores the windows, so a rejected candidate loses no
// verdicts.
type undoRec struct {
	kind       undoKind
	wins       []undoWin   // undoMulti: ascending, non-overlapping, post coords
	old        []gate.Gate // undoSetAll: the entire prior gate list
	scan       int         // e.scanCount when the record was pushed
	savedState []byte
	savedPos   []*Match
	nRules     int // len(e.rules) at push time
}

// NewEngine builds an engine over a deep copy of c; the input is never
// mutated. The engine's Circuit() pointer stays stable for its lifetime.
func NewEngine(c *circuit.Circuit) *Engine {
	e := &Engine{
		c:       c.Clone(),
		caches:  map[*Rule]*ruleCache{},
		scratch: newMatchScratch(),
	}
	e.dag = circuit.BuildDAG(e.c)
	return e
}

// Circuit returns the engine's live circuit. It is mutated in place by
// FullPass/ReplaceRegion/SetCircuit/Reset; callers that need a stable copy
// (publishing a best-so-far, recording a result) must use Snapshot.
func (e *Engine) Circuit() *circuit.Circuit { return e.c }

// Snapshot returns a deep copy of the current circuit.
func (e *Engine) Snapshot() *circuit.Circuit { return e.c.Clone() }

// Stats returns activity counters accumulated since construction.
func (e *Engine) Stats() EngineStats {
	s := e.stats
	s.HaloDepth = e.maxDepth
	return s
}

// Mark returns a point on the transaction log to which Rollback can return.
func (e *Engine) Mark() int { return len(e.log) }

// Commit accepts every logged mutation, discarding the undo state.
func (e *Engine) Commit() {
	e.stats.Commits++
	for i := range e.log {
		e.log[i] = undoRec{}
	}
	e.log = e.log[:0]
}

// Rollback reverts every mutation logged after mark, most recent first,
// restoring the exact prior gate sequence. When no anchors were scanned
// since the oldest reverted record was applied (the common reject path:
// apply, cost, reject), every surviving cache entry was computed against
// the state being restored, so the rollback splices skip the halo pass
// entirely.
//
// The cache entries each forward splice destroyed — every rule's verdicts
// inside the replaced windows — are copied back from the undo record as
// the windows are restored: undoing record i returns to exactly the state
// those entries were computed in, so the restored verdicts are fresh
// truths, never resurrected stale ones (entries that merely survived in
// the slices are governed by the ordinary halo rules above).
func (e *Engine) Rollback(mark int) {
	if mark >= len(e.log) {
		return
	}
	e.stats.Rollbacks++
	clean := e.scanCount == e.log[mark].scan
	if clean {
		// No scan consulted the cache while the speculative state was
		// live, so the parked invalidation (pushed by a record ≥ mark —
		// any earlier job was flushed before these splices ran) never
		// needs to happen: the restore returns to exactly the state every
		// surviving entry was computed against.
		e.pendLive = false
	} else {
		// Coordinates of the parked job are current until the undo
		// splices below run; flush it first.
		e.flushPending()
	}
	for i := len(e.log) - 1; i >= mark; i-- {
		rec := e.log[i]
		switch rec.kind {
		case undoMulti:
			// Invert in place: each applied window [lo, lo+inserted) goes
			// back to its removed gates. Post coordinates of the forward
			// splice are current coordinates now.
			ws := e.winBuf[:0]
			for _, w := range rec.wins {
				ws = append(ws, circuit.SpliceWindow{Lo: w.lo, Hi: w.lo + w.inserted - 1, Repl: w.removed})
			}
			e.winBuf = ws
			e.multiSplice(ws, false, !clean)
			// The restored windows sit at the forward splice's original
			// (pre-splice) coordinates; walk the running delta back out to
			// find each window's original lo, and copy the saved entries
			// back in the same per-rule, per-window order they were taken.
			si, pi := 0, 0
			for ri := 0; ri < rec.nRules; ri++ {
				rc := e.rules[ri]
				delta := 0
				for _, w := range rec.wins {
					origLo := w.lo - delta
					delta += w.inserted - len(w.removed)
					nw := len(w.removed)
					copy(rc.state[origLo:origLo+nw], rec.savedState[si:si+nw])
					for k, b := range rec.savedState[si : si+nw] {
						if b == cacheMatch {
							rc.posSet(origLo+k, rec.savedPos[pi])
							pi++
							e.stats.Reinstalls++
						}
					}
					si += nw
				}
			}
		case undoSetAll:
			e.c.Gates = rec.old
			e.rebuildAll()
		}
		e.log[i] = undoRec{}
	}
	e.log = e.log[:mark]
}

// cacheFor returns (creating if needed) the rule's match cache, sized to
// the current gate count.
func (e *Engine) cacheFor(r *Rule) *ruleCache {
	rc := e.caches[r]
	if rc == nil {
		n := len(e.c.Gates)
		rc = &ruleCache{state: make([]byte, n), depth: r.HaloDepth()}
		e.caches[r] = rc
		e.rules = append(e.rules, rc)
		if rc.depth > e.maxDepth {
			e.maxDepth = rc.depth
		}
	}
	return rc
}

// FullPass applies one full pass of rule r starting at the given anchor,
// in place, and returns the number of sites replaced — bit-for-bit the
// same result as the pure FullPass on a copy of the circuit. The scan
// consults and extends the rule's match cache (skipping cached failures,
// replaying cached matches); all replacements land in one
// transaction-logged multi-window splice with a single halo invalidation.
//
//guoq:hotpath
func (e *Engine) FullPass(r *Rule, start int) int {
	e.stats.Passes++
	n := len(e.c.Gates)
	if n == 0 {
		return 0
	}
	rc := e.cacheFor(r)
	if cap(e.used) < n {
		e.used = make([]bool, n)
	}
	used := e.used[:n]
	for i := range used {
		used[i] = false
	}
	e.flushPending()
	e.scanCount++
	ms := findMatches(e.c, e.dag, r, start, e.scratch, used, rc, e.matchBuf[:0], &e.stats)
	if len(ms) == 0 {
		e.matchBuf = ms[:0]
		return 0
	}
	// Assemble the windows in ascending order, exactly like the pure Apply.
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].Lo < ms[j-1].Lo; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
	// Phase one: emit every window's gates into one shared backing buffer,
	// recording offsets (the buffer may reallocate while growing, so
	// subslices are taken only afterwards).
	repl := e.replBuf[:0]
	offs := e.levels[:0] // reuse the levels scratch for offsets
	for _, m := range ms {
		offs = append(offs, len(repl))
		ti := 0
		for i := m.Lo; i <= m.Hi; i++ {
			if ti < len(m.Indices) && m.Indices[ti] == i {
				ti++
				continue
			}
			repl = append(repl, e.c.Gates[i])
		}
		for _, g := range m.Rule.ReplacementCircuitAt(m.Binding) {
			ng := g.Clone()
			for k, pq := range ng.Qubits {
				ng.Qubits[k] = m.QubitMap[pq]
			}
			repl = append(repl, ng)
		}
	}
	offs = append(offs, len(repl))
	e.replBuf = repl
	ws := e.winBuf[:0]
	for i, m := range ms {
		ws = append(ws, circuit.SpliceWindow{Lo: m.Lo, Hi: m.Hi, Repl: repl[offs[i]:offs[i+1]]})
	}
	e.winBuf = ws
	e.levels = offs[:0]
	e.multiSplice(ws, true, true)
	sites := len(ms)
	for i := range ms {
		ms[i] = nil
	}
	e.matchBuf = ms[:0]
	return sites
}

// ReplaceRegion splices a resynthesized subcircuit in place of a convex
// region, mirroring circuit.Region.Replace: unselected window gates are
// preserved ahead of the replacement, whose local qubits are mapped back to
// the region's global qubits. The mutation is transaction-logged and its
// halo invalidated, so resynthesis moves keep the match cache sound.
func (e *Engine) ReplaceRegion(r *circuit.Region, replacement *circuit.Circuit) {
	if replacement.NumQubits != len(r.Qubits) {
		panic(fmt.Sprintf("rewrite: ReplaceRegion: replacement has %d qubits, region spans %d",
			replacement.NumQubits, len(r.Qubits)))
	}
	repl := e.replBuf[:0]
	ti := 0
	for i := r.Lo; i <= r.Hi; i++ {
		if ti < len(r.Indices) && r.Indices[ti] == i {
			ti++
			continue
		}
		repl = append(repl, e.c.Gates[i])
	}
	for _, g := range replacement.Gates {
		ng := g.Clone()
		for k, q := range ng.Qubits {
			ng.Qubits[k] = r.Qubits[q]
		}
		repl = append(repl, ng)
	}
	e.replBuf = repl
	ws := append(e.winBuf[:0], circuit.SpliceWindow{Lo: r.Lo, Hi: r.Hi, Repl: repl})
	e.winBuf = ws
	e.multiSplice(ws, true, true)
}

// ReplaceRegions splices one replacement per region in a single logged
// transaction — the stitching step of partition-parallel optimization:
// windows optimized independently land together, with one DAG sweep, one
// cache splice, and one halo invalidation instead of len(rs) of each.
// Regions must be ascending and non-overlapping (in current coordinates,
// which replacing them simultaneously preserves, unlike sequential
// ReplaceRegion calls whose later indices shift). Equivalent to applying
// the regions back-to-front one at a time.
func (e *Engine) ReplaceRegions(rs []*circuit.Region, repls []*circuit.Circuit) {
	if len(rs) != len(repls) {
		panic(fmt.Sprintf("rewrite: ReplaceRegions: %d regions, %d replacements", len(rs), len(repls)))
	}
	if len(rs) == 0 {
		return
	}
	for i, r := range rs {
		if repls[i].NumQubits != len(r.Qubits) {
			panic(fmt.Sprintf("rewrite: ReplaceRegions: replacement %d has %d qubits, region spans %d",
				i, repls[i].NumQubits, len(r.Qubits)))
		}
		if i > 0 && r.Lo <= rs[i-1].Hi {
			panic(fmt.Sprintf("rewrite: ReplaceRegions: regions %d and %d overlap or are out of order", i-1, i))
		}
	}
	// Emit every window's gates into one shared backing buffer, recording
	// offsets (the buffer may reallocate while growing, so subslices are
	// taken only afterwards) — the FullPass assembly pattern.
	repl := e.replBuf[:0]
	offs := e.levels[:0]
	for ri, r := range rs {
		offs = append(offs, len(repl))
		ti := 0
		for i := r.Lo; i <= r.Hi; i++ {
			if ti < len(r.Indices) && r.Indices[ti] == i {
				ti++
				continue
			}
			repl = append(repl, e.c.Gates[i])
		}
		for _, g := range repls[ri].Gates {
			ng := g.Clone()
			for k, q := range ng.Qubits {
				ng.Qubits[k] = r.Qubits[q]
			}
			repl = append(repl, ng)
		}
	}
	offs = append(offs, len(repl))
	e.replBuf = repl
	ws := e.winBuf[:0]
	for i, r := range rs {
		ws = append(ws, circuit.SpliceWindow{Lo: r.Lo, Hi: r.Hi, Repl: repl[offs[i]:offs[i+1]]})
	}
	e.winBuf = ws
	e.levels = offs[:0]
	e.multiSplice(ws, true, true)
}

// SetCircuit replaces the engine's entire gate list with out's — the result
// of a whole-circuit pass (cleanup, fusion, phase folding) — as a logged
// transaction with full cache invalidation. The engine takes ownership of
// out's gate slice; the qubit count must be unchanged.
func (e *Engine) SetCircuit(out *circuit.Circuit) {
	if out.NumQubits != e.c.NumQubits {
		panic(fmt.Sprintf("rewrite: SetCircuit: qubit count %d != engine's %d",
			out.NumQubits, e.c.NumQubits))
	}
	e.log = append(e.log, undoRec{kind: undoSetAll, old: e.c.Gates})
	e.c.Gates = out.Gates
	e.rebuildAll()
}

// Reset adopts a new circuit wholesale — an exchange migration or an async
// resynthesis result — clearing the transaction log and all caches. The
// input is cloned; the engine's Circuit() pointer is stable across Reset.
func (e *Engine) Reset(c *circuit.Circuit) {
	e.c.NumQubits = c.NumQubits
	e.c.Gates = e.c.Gates[:0]
	for _, g := range c.Gates {
		e.c.Gates = append(e.c.Gates, g.Clone())
	}
	for i := range e.log {
		e.log[i] = undoRec{}
	}
	e.log = e.log[:0]
	e.rebuildAll()
}

// rebuildAll recomputes the DAG from the current gate list and wipes every
// rule cache (a whole-circuit change has no useful halo).
func (e *Engine) rebuildAll() {
	e.stats.Resets++
	e.pendLive = false // the wipe below supersedes any parked halo
	e.dag.Rebuild()
	n := len(e.c.Gates)
	for _, rc := range e.rules {
		if cap(rc.state) < n {
			rc.state = make([]byte, n)
		} else {
			rc.state = rc.state[:n]
			for i := range rc.state {
				rc.state[i] = cacheUnknown
			}
		}
		for i := range rc.pos {
			rc.pos[i] = posEntry{}
		}
		rc.pos = rc.pos[:0]
	}
}

// multiSplice applies one transformation's window replacements: a single
// DAG sweep, one cache splice per rule, and one halo invalidation over all
// windows. Windows must be ascending and non-overlapping, in current
// coordinates. When record is set (a forward splice), the inverse is pushed
// on the undo log — along with every rule's cache entries inside the
// windows, which the splice is about to destroy and a rollback will want
// back — and the halo invalidation is parked rather than run: the next
// scan flushes it, or a clean rollback cancels it. halo then only matters
// for record=false (rollback restores), where it holds whether an eager
// invalidation pass runs.
//
//guoq:hotpath
func (e *Engine) multiSplice(ws []circuit.SpliceWindow, record, halo bool) {
	if record {
		// Any previously parked job still refers to current coordinates;
		// flush it before this splice shifts them.
		e.flushPending()
	}
	e.stats.Splices += len(ws)
	// Collect, per window, its touched qubits (removed plus inserted gates)
	// as ranges of one shared list, and — when recording — the removed
	// windows, before the gate list changes.
	if cap(e.seedQOn) < e.c.NumQubits {
		e.seedQOn = make([]bool, e.c.NumQubits)
	}
	on := e.seedQOn[:e.c.NumQubits]
	seeds := e.seedQ[:0]
	qOffs := e.qOffs[:0]
	mark := func(gs []gate.Gate) {
		for _, g := range gs {
			for _, q := range g.Qubits {
				if !on[q] {
					on[q] = true
					seeds = append(seeds, q)
				}
			}
		}
	}
	var wins []undoWin
	var removedAll []gate.Gate
	total := 0
	if record {
		for _, w := range ws {
			total += w.Hi - w.Lo + 1
		}
		wins = make([]undoWin, 0, len(ws))
		removedAll = make([]gate.Gate, 0, total)
	}
	delta := 0
	for _, w := range ws {
		qOffs = append(qOffs, len(seeds))
		mark(e.c.Gates[w.Lo : w.Hi+1])
		mark(w.Repl)
		for _, q := range seeds[qOffs[len(qOffs)-1]:] {
			on[q] = false
		}
		if record {
			// removedAll's capacity is exact, so the subslice stays valid.
			start := len(removedAll)
			removedAll = append(removedAll, e.c.Gates[w.Lo:w.Hi+1]...)
			wins = append(wins, undoWin{
				lo: w.Lo + delta, inserted: len(w.Repl),
				removed: removedAll[start:len(removedAll):len(removedAll)],
			})
		}
		delta += len(w.Repl) - (w.Hi - w.Lo + 1)
	}
	qOffs = append(qOffs, len(seeds))
	if record {
		rec := undoRec{kind: undoMulti, wins: wins, scan: e.scanCount, nRules: len(e.rules)}
		if len(e.rules) > 0 {
			// Save every rule's verdicts for the replaced windows — the only
			// entries the cache splice below destroys — so a rollback can
			// put them back (they are truths for the state it restores). The
			// matches behind cacheMatch bytes ride along densely, in order.
			rec.savedState = make([]byte, 0, total*len(e.rules))
			for _, rc := range e.rules {
				for _, w := range ws {
					rec.savedState = append(rec.savedState, rc.state[w.Lo:w.Hi+1]...)
					for j := rc.posSearch(w.Lo); j < len(rc.pos) && rc.pos[j].anchor <= w.Hi; j++ {
						rec.savedPos = append(rec.savedPos, rc.pos[j].m)
					}
				}
			}
		}
		e.log = append(e.log, rec)
	}

	e.dag.MultiSplice(ws)
	for _, rc := range e.rules {
		rc.state = e.multiSpliceBytes(rc.state, ws)
		rc.posSplice(ws)
	}
	if record {
		e.parkHalo(wins, seeds, qOffs)
	} else if halo {
		// A rollback's post coordinates are the forward splice's
		// original window positions.
		wins = wins[:0]
		delta = 0
		for _, w := range ws {
			wins = append(wins, undoWin{lo: w.Lo + delta, inserted: len(w.Repl)})
			delta += len(w.Repl) - (w.Hi - w.Lo + 1)
		}
		e.invalidate(wins, seeds, qOffs)
	}

	e.seedQ = seeds[:0]
	e.qOffs = qOffs[:0]
}

// parkHalo defers one splice's halo invalidation: the job is copied out of
// the mutation scratch and held until the next cache consumer flushes it
// (or a clean rollback cancels it). Only the window geometry is kept — the
// undo payload (removed gates, matches) stays with the log record.
//
//guoq:hotpath
func (e *Engine) parkHalo(wins []undoWin, seeds, qOffs []int) {
	pw := e.pendWins[:0]
	for _, w := range wins {
		pw = append(pw, undoWin{lo: w.lo, inserted: w.inserted})
	}
	e.pendWins = pw
	e.pendSeeds = append(e.pendSeeds[:0], seeds...)
	e.pendQOffs = append(e.pendQOffs[:0], qOffs...)
	e.pendLive = true
}

// flushPending runs the parked halo invalidation, if any. Callers must
// ensure the job's coordinates are still current (no splice since it was
// parked — the multiSplice entry flush maintains that invariant).
//
//guoq:hotpath
func (e *Engine) flushPending() {
	if !e.pendLive {
		return
	}
	e.pendLive = false
	e.invalidate(e.pendWins, e.pendSeeds, e.pendQOffs)
}

// multiSpliceBytes mirrors a multi-window gate splice on a per-anchor byte
// slice: each window's entries are replaced by unknown (zero) bytes. The
// new slice is assembled into a shared scratch buffer that ping-pongs with
// the old storage.
//
//guoq:hotpath
func (e *Engine) multiSpliceBytes(b []byte, ws []circuit.SpliceWindow) []byte {
	out := e.byteScratch[:0]
	i := 0
	for _, w := range ws {
		out = append(out, b[i:w.Lo]...)
		for k := 0; k < len(w.Repl); k++ {
			out = append(out, 0)
		}
		i = w.Hi + 1
	}
	out = append(out, b[i:]...)
	e.byteScratch = b[:0]
	return out
}

// invalidate clears the cache entries in the wire-adjacency halo of the
// applied windows (post coordinates). One BFS over the post-splice DAG —
// seeded with the inserted gates and, per touched wire, the gates just
// outside each window — records each gate's distance from the change; a
// rule's entries, positive and negative alike, are cleared only within its
// own compiled radius (Rule.HaloDepth, from the pattern's per-wire
// extents), since a match attempt for that rule explores at most that many
// wire steps from its anchor. Keeping the halo per-rule-tight — and much
// tighter than the old pattern-length bound for long narrow patterns — is
// what lets small rules retain most of their cache across unrelated edits.
//
//guoq:hotpath
func (e *Engine) invalidate(wins []undoWin, seeds, qOffs []int) {
	n := len(e.c.Gates)
	if n == 0 {
		return
	}
	depth := e.maxDepth
	e.epoch++
	if cap(e.visited) < n {
		e.visited = make([]int, n)
	}
	visited := e.visited[:n]
	queue := e.queue[:0]
	add := func(i int) {
		if i >= 0 && i < n && visited[i] != e.epoch {
			visited[i] = e.epoch
			queue = append(queue, i)
		}
	}
	for wi, w := range wins {
		for i := w.lo; i < w.lo+w.inserted; i++ {
			add(i)
		}
		for _, q := range seeds[qOffs[wi]:qOffs[wi+1]] {
			wq := e.dag.Wire(q)
			a := sort.SearchInts(wq, w.lo)
			if a > 0 {
				add(wq[a-1])
			}
			b := a
			for b < len(wq) && wq[b] < w.lo+w.inserted {
				b++
			}
			if b < len(wq) {
				add(wq[b])
			}
		}
	}
	// Level-order BFS; levels[d] is the queue length after expanding depth
	// d, so queue[:levels[d]] holds every gate within d steps of the seeds.
	levels := e.levels[:0]
	levels = append(levels, len(queue))
	head := 0
	for d := 1; d <= depth; d++ {
		levelEnd := levels[len(levels)-1]
		for head < levelEnd {
			i := queue[head]
			head++
			next, prev := e.dag.Links(i)
			for _, nb := range next {
				add(nb)
			}
			for _, nb := range prev {
				add(nb)
			}
		}
		levels = append(levels, len(queue))
	}
	e.stats.HaloGates += len(queue)
	for _, rc := range e.rules {
		r := rc.depth
		if r > depth {
			r = depth
		}
		for _, i := range queue[:levels[r]] {
			if rc.state[i] != cacheUnknown {
				if rc.state[i] == cacheMatch {
					rc.posDelete(i)
				}
				rc.state[i] = cacheUnknown
				e.stats.Invalidated++
			}
		}
	}
	e.queue = queue[:0]
	e.levels = levels[:0]
}
