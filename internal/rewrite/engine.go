package rewrite

import (
	"fmt"
	"sort"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
)

// Engine is the stateful, incremental rewrite executor. It owns a mutable
// circuit with a persistently maintained DAG (gate windows are spliced in
// and out in place, one linear sweep per transformation, instead of a
// from-scratch BuildDAG per call) and a per-rule match-site cache, so
// iterated full passes — the GUOQ inner loop, fixed-pass pipelines,
// lookahead search — cost far less than the pure FullPass API, which
// reallocates and rescans everything on every call.
//
// Cache and invalidation contract: for every rule the Engine remembers
// which anchors are known not to match ("negative" entries; positive
// matches are rare and cheap to recompute, so they are not cached). A
// match attempt at an anchor only ever inspects gates within pattern-size
// wire-adjacency steps of the anchor, so after a splice only anchors inside
// a wire-adjacency halo of the touched windows — BFS steps from the
// replaced gates and their boundary wire neighbours, out to each rule's own
// pattern size + 1 — can change verdicts; exactly those entries are
// cleared, once per transformation. Whole-circuit mutations (SetCircuit,
// Reset) drop every cache entry.
//
// All mutations are recorded on a transaction log: Mark returns a point to
// which Rollback restores the exact prior gate sequence (a speculative
// candidate the caller rejected, or a lookahead branch), and Commit accepts
// everything logged. Rolled-back cache invalidations stay cleared, which is
// conservative and sound.
//
// An Engine is not safe for concurrent use; parallel searches thread one
// Engine per worker.
type Engine struct {
	c   *circuit.Circuit
	dag *circuit.DAG

	caches map[*Rule]*ruleCache
	maxPat int // longest pattern among cached rules, for the halo depth

	scratch  *matchScratch
	used     []bool
	matchBuf []*Match

	// Mutation assembly scratch.
	winBuf      []circuit.SpliceWindow
	replBuf     []gate.Gate
	byteScratch []byte
	qOffs       []int

	// scanCount stamps undo records so Rollback can tell whether any anchors
	// were scanned since a splice was applied; if none were, the entries that
	// survived the forward invalidation are still valid for the restored
	// state and the rollback needs no halo pass of its own.
	scanCount int

	// Halo BFS scratch: epoch-stamped visited marks and a level queue.
	visited []int
	epoch   int
	queue   []int
	levels  []int
	seedQ   []int  // touched-qubit list of the current mutation
	seedQOn []bool // per-qubit membership mark for seedQ

	log []undoRec

	stats EngineStats
}

// ruleCache is one rule's negative match cache: fail[i] != 0 records that
// matching the rule anchored at gate i is known to fail. The slice is kept
// index-aligned with the circuit's gate list across splices. patLen bounds
// how far a match attempt for this rule can look from its anchor, which
// sets the rule's invalidation radius.
type ruleCache struct {
	fail   []byte
	patLen int
}

// EngineStats counts engine activity since construction, for tests and
// benchmarks.
type EngineStats struct {
	Passes      int // FullPass calls
	CacheSkips  int // anchors skipped via the negative match cache
	MatchCalls  int // matchAt invocations (cache misses)
	Splices     int // window replacements applied (including rollbacks)
	Invalidated int // cache entries cleared by halo invalidation
	Resets      int // full invalidations (SetCircuit, Reset, their rollbacks)
	Commits     int // accepted transactions (Commit calls)
	Rollbacks   int // reverted transactions (Rollback calls that undid work)
}

type undoKind uint8

const (
	undoMulti undoKind = iota
	undoSetAll
)

// undoWin records one applied window in post-splice coordinates: gates
// [lo, lo+inserted) replaced the removed sequence.
type undoWin struct {
	lo       int
	inserted int
	removed  []gate.Gate
}

type undoRec struct {
	kind undoKind
	wins []undoWin   // undoMulti: ascending, non-overlapping, post coords
	old  []gate.Gate // undoSetAll: the entire prior gate list
	scan int         // e.scanCount when the record was pushed
}

// NewEngine builds an engine over a deep copy of c; the input is never
// mutated. The engine's Circuit() pointer stays stable for its lifetime.
func NewEngine(c *circuit.Circuit) *Engine {
	e := &Engine{
		c:       c.Clone(),
		caches:  map[*Rule]*ruleCache{},
		scratch: newMatchScratch(),
	}
	e.dag = circuit.BuildDAG(e.c)
	return e
}

// Circuit returns the engine's live circuit. It is mutated in place by
// FullPass/ReplaceRegion/SetCircuit/Reset; callers that need a stable copy
// (publishing a best-so-far, recording a result) must use Snapshot.
func (e *Engine) Circuit() *circuit.Circuit { return e.c }

// Snapshot returns a deep copy of the current circuit.
func (e *Engine) Snapshot() *circuit.Circuit { return e.c.Clone() }

// Stats returns activity counters accumulated since construction.
func (e *Engine) Stats() EngineStats { return e.stats }

// Mark returns a point on the transaction log to which Rollback can return.
func (e *Engine) Mark() int { return len(e.log) }

// Commit accepts every logged mutation, discarding the undo state.
func (e *Engine) Commit() {
	e.stats.Commits++
	for i := range e.log {
		e.log[i] = undoRec{}
	}
	e.log = e.log[:0]
}

// Rollback reverts every mutation logged after mark, most recent first,
// restoring the exact prior gate sequence. Cache entries invalidated by the
// reverted mutations stay unknown, which is conservative and sound. When no
// anchors were scanned since the oldest reverted record was applied (the
// common reject path: apply, cost, reject), every surviving cache entry was
// computed against the state being restored, so the rollback splices skip
// the halo pass entirely.
func (e *Engine) Rollback(mark int) {
	if mark >= len(e.log) {
		return
	}
	e.stats.Rollbacks++
	clean := e.scanCount == e.log[mark].scan
	for i := len(e.log) - 1; i >= mark; i-- {
		rec := e.log[i]
		switch rec.kind {
		case undoMulti:
			// Invert in place: each applied window [lo, lo+inserted) goes
			// back to its removed gates. Post coordinates of the forward
			// splice are current coordinates now.
			ws := e.winBuf[:0]
			for _, w := range rec.wins {
				ws = append(ws, circuit.SpliceWindow{Lo: w.lo, Hi: w.lo + w.inserted - 1, Repl: w.removed})
			}
			e.winBuf = ws
			e.multiSplice(ws, false, !clean)
		case undoSetAll:
			e.c.Gates = rec.old
			e.rebuildAll()
		}
		e.log[i] = undoRec{}
	}
	e.log = e.log[:mark]
}

// cacheFor returns (creating if needed) the rule's negative cache, sized to
// the current gate count.
func (e *Engine) cacheFor(r *Rule) *ruleCache {
	rc := e.caches[r]
	if rc == nil {
		rc = &ruleCache{fail: make([]byte, len(e.c.Gates)), patLen: len(r.Pattern)}
		e.caches[r] = rc
		if len(r.Pattern) > e.maxPat {
			e.maxPat = len(r.Pattern)
		}
	}
	return rc
}

// FullPass applies one full pass of rule r starting at the given anchor,
// in place, and returns the number of sites replaced — bit-for-bit the
// same result as the pure FullPass on a copy of the circuit. The scan
// consults and extends the rule's negative cache; all replacements land in
// one transaction-logged multi-window splice with a single halo
// invalidation.
func (e *Engine) FullPass(r *Rule, start int) int {
	e.stats.Passes++
	n := len(e.c.Gates)
	if n == 0 {
		return 0
	}
	rc := e.cacheFor(r)
	if cap(e.used) < n {
		e.used = make([]bool, n)
	}
	used := e.used[:n]
	for i := range used {
		used[i] = false
	}
	e.scanCount++
	ms := findMatches(e.c, e.dag, r, start, e.scratch, used, rc.fail, e.matchBuf[:0], &e.stats)
	if len(ms) == 0 {
		e.matchBuf = ms[:0]
		return 0
	}
	// Assemble the windows in ascending order, exactly like the pure Apply.
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].Lo < ms[j-1].Lo; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
	// Phase one: emit every window's gates into one shared backing buffer,
	// recording offsets (the buffer may reallocate while growing, so
	// subslices are taken only afterwards).
	repl := e.replBuf[:0]
	offs := e.levels[:0] // reuse the levels scratch for offsets
	for _, m := range ms {
		offs = append(offs, len(repl))
		ti := 0
		for i := m.Lo; i <= m.Hi; i++ {
			if ti < len(m.Indices) && m.Indices[ti] == i {
				ti++
				continue
			}
			repl = append(repl, e.c.Gates[i])
		}
		for _, g := range m.Rule.ReplacementCircuitAt(m.Binding) {
			ng := g.Clone()
			for k, pq := range ng.Qubits {
				ng.Qubits[k] = m.QubitMap[pq]
			}
			repl = append(repl, ng)
		}
	}
	offs = append(offs, len(repl))
	e.replBuf = repl
	ws := e.winBuf[:0]
	for i, m := range ms {
		ws = append(ws, circuit.SpliceWindow{Lo: m.Lo, Hi: m.Hi, Repl: repl[offs[i]:offs[i+1]]})
	}
	e.winBuf = ws
	e.levels = offs[:0]
	e.multiSplice(ws, true, true)
	sites := len(ms)
	for i := range ms {
		ms[i] = nil
	}
	e.matchBuf = ms[:0]
	return sites
}

// ReplaceRegion splices a resynthesized subcircuit in place of a convex
// region, mirroring circuit.Region.Replace: unselected window gates are
// preserved ahead of the replacement, whose local qubits are mapped back to
// the region's global qubits. The mutation is transaction-logged and its
// halo invalidated, so resynthesis moves keep the match cache sound.
func (e *Engine) ReplaceRegion(r *circuit.Region, replacement *circuit.Circuit) {
	if replacement.NumQubits != len(r.Qubits) {
		panic(fmt.Sprintf("rewrite: ReplaceRegion: replacement has %d qubits, region spans %d",
			replacement.NumQubits, len(r.Qubits)))
	}
	repl := e.replBuf[:0]
	ti := 0
	for i := r.Lo; i <= r.Hi; i++ {
		if ti < len(r.Indices) && r.Indices[ti] == i {
			ti++
			continue
		}
		repl = append(repl, e.c.Gates[i])
	}
	for _, g := range replacement.Gates {
		ng := g.Clone()
		for k, q := range ng.Qubits {
			ng.Qubits[k] = r.Qubits[q]
		}
		repl = append(repl, ng)
	}
	e.replBuf = repl
	ws := append(e.winBuf[:0], circuit.SpliceWindow{Lo: r.Lo, Hi: r.Hi, Repl: repl})
	e.winBuf = ws
	e.multiSplice(ws, true, true)
}

// ReplaceRegions splices one replacement per region in a single logged
// transaction — the stitching step of partition-parallel optimization:
// windows optimized independently land together, with one DAG sweep, one
// cache splice, and one halo invalidation instead of len(rs) of each.
// Regions must be ascending and non-overlapping (in current coordinates,
// which replacing them simultaneously preserves, unlike sequential
// ReplaceRegion calls whose later indices shift). Equivalent to applying
// the regions back-to-front one at a time.
func (e *Engine) ReplaceRegions(rs []*circuit.Region, repls []*circuit.Circuit) {
	if len(rs) != len(repls) {
		panic(fmt.Sprintf("rewrite: ReplaceRegions: %d regions, %d replacements", len(rs), len(repls)))
	}
	if len(rs) == 0 {
		return
	}
	for i, r := range rs {
		if repls[i].NumQubits != len(r.Qubits) {
			panic(fmt.Sprintf("rewrite: ReplaceRegions: replacement %d has %d qubits, region spans %d",
				i, repls[i].NumQubits, len(r.Qubits)))
		}
		if i > 0 && r.Lo <= rs[i-1].Hi {
			panic(fmt.Sprintf("rewrite: ReplaceRegions: regions %d and %d overlap or are out of order", i-1, i))
		}
	}
	// Emit every window's gates into one shared backing buffer, recording
	// offsets (the buffer may reallocate while growing, so subslices are
	// taken only afterwards) — the FullPass assembly pattern.
	repl := e.replBuf[:0]
	offs := e.levels[:0]
	for ri, r := range rs {
		offs = append(offs, len(repl))
		ti := 0
		for i := r.Lo; i <= r.Hi; i++ {
			if ti < len(r.Indices) && r.Indices[ti] == i {
				ti++
				continue
			}
			repl = append(repl, e.c.Gates[i])
		}
		for _, g := range repls[ri].Gates {
			ng := g.Clone()
			for k, q := range ng.Qubits {
				ng.Qubits[k] = r.Qubits[q]
			}
			repl = append(repl, ng)
		}
	}
	offs = append(offs, len(repl))
	e.replBuf = repl
	ws := e.winBuf[:0]
	for i, r := range rs {
		ws = append(ws, circuit.SpliceWindow{Lo: r.Lo, Hi: r.Hi, Repl: repl[offs[i]:offs[i+1]]})
	}
	e.winBuf = ws
	e.levels = offs[:0]
	e.multiSplice(ws, true, true)
}

// SetCircuit replaces the engine's entire gate list with out's — the result
// of a whole-circuit pass (cleanup, fusion, phase folding) — as a logged
// transaction with full cache invalidation. The engine takes ownership of
// out's gate slice; the qubit count must be unchanged.
func (e *Engine) SetCircuit(out *circuit.Circuit) {
	if out.NumQubits != e.c.NumQubits {
		panic(fmt.Sprintf("rewrite: SetCircuit: qubit count %d != engine's %d",
			out.NumQubits, e.c.NumQubits))
	}
	e.log = append(e.log, undoRec{kind: undoSetAll, old: e.c.Gates})
	e.c.Gates = out.Gates
	e.rebuildAll()
}

// Reset adopts a new circuit wholesale — an exchange migration or an async
// resynthesis result — clearing the transaction log and all caches. The
// input is cloned; the engine's Circuit() pointer is stable across Reset.
func (e *Engine) Reset(c *circuit.Circuit) {
	e.c.NumQubits = c.NumQubits
	e.c.Gates = e.c.Gates[:0]
	for _, g := range c.Gates {
		e.c.Gates = append(e.c.Gates, g.Clone())
	}
	for i := range e.log {
		e.log[i] = undoRec{}
	}
	e.log = e.log[:0]
	e.rebuildAll()
}

// rebuildAll recomputes the DAG from the current gate list and wipes every
// rule cache (a whole-circuit change has no useful halo).
func (e *Engine) rebuildAll() {
	e.stats.Resets++
	e.dag.Rebuild()
	n := len(e.c.Gates)
	for _, rc := range e.caches {
		if cap(rc.fail) < n {
			rc.fail = make([]byte, n)
			continue
		}
		rc.fail = rc.fail[:n]
		for i := range rc.fail {
			rc.fail[i] = 0
		}
	}
}

// multiSplice applies one transformation's window replacements: a single
// DAG sweep, one cache splice per rule, and one halo invalidation over all
// windows. Windows must be ascending and non-overlapping, in current
// coordinates. When record is set, the inverse is pushed on the undo log;
// halo holds whether the invalidation pass runs (a clean rollback skips
// it — see Rollback).
func (e *Engine) multiSplice(ws []circuit.SpliceWindow, record, halo bool) {
	e.stats.Splices += len(ws)
	// Collect, per window, its touched qubits (removed plus inserted gates)
	// as ranges of one shared list, and — when recording — the removed
	// windows, before the gate list changes.
	if cap(e.seedQOn) < e.c.NumQubits {
		e.seedQOn = make([]bool, e.c.NumQubits)
	}
	on := e.seedQOn[:e.c.NumQubits]
	seeds := e.seedQ[:0]
	qOffs := e.qOffs[:0]
	mark := func(gs []gate.Gate) {
		for _, g := range gs {
			for _, q := range g.Qubits {
				if !on[q] {
					on[q] = true
					seeds = append(seeds, q)
				}
			}
		}
	}
	var wins []undoWin
	if record {
		wins = make([]undoWin, 0, len(ws))
	}
	delta := 0
	for _, w := range ws {
		qOffs = append(qOffs, len(seeds))
		mark(e.c.Gates[w.Lo : w.Hi+1])
		mark(w.Repl)
		for _, q := range seeds[qOffs[len(qOffs)-1]:] {
			on[q] = false
		}
		if record {
			removed := make([]gate.Gate, w.Hi-w.Lo+1)
			copy(removed, e.c.Gates[w.Lo:w.Hi+1])
			wins = append(wins, undoWin{lo: w.Lo + delta, inserted: len(w.Repl), removed: removed})
		}
		delta += len(w.Repl) - (w.Hi - w.Lo + 1)
	}
	qOffs = append(qOffs, len(seeds))
	if record {
		e.log = append(e.log, undoRec{kind: undoMulti, wins: wins, scan: e.scanCount})
	}

	e.dag.MultiSplice(ws)
	for _, rc := range e.caches {
		rc.fail = e.multiSpliceBytes(rc.fail, ws)
	}
	if halo {
		if !record {
			// A rollback's post coordinates are the forward splice's
			// original window positions.
			wins = wins[:0]
			delta = 0
			for _, w := range ws {
				wins = append(wins, undoWin{lo: w.Lo + delta, inserted: len(w.Repl)})
				delta += len(w.Repl) - (w.Hi - w.Lo + 1)
			}
		}
		e.invalidate(wins, seeds, qOffs)
	}

	e.seedQ = seeds[:0]
	e.qOffs = qOffs[:0]
}

// multiSpliceBytes mirrors a multi-window gate splice on a per-anchor byte
// slice: each window's entries are replaced by unknown (zero) bytes. The
// new slice is assembled into a shared scratch buffer that ping-pongs with
// the old storage.
func (e *Engine) multiSpliceBytes(b []byte, ws []circuit.SpliceWindow) []byte {
	out := e.byteScratch[:0]
	i := 0
	for _, w := range ws {
		out = append(out, b[i:w.Lo]...)
		for k := 0; k < len(w.Repl); k++ {
			out = append(out, 0)
		}
		i = w.Hi + 1
	}
	out = append(out, b[i:]...)
	e.byteScratch = b[:0]
	return out
}

// invalidate clears the cache entries in the wire-adjacency halo of the
// applied windows (post coordinates). One BFS over the post-splice DAG —
// seeded with the inserted gates and, per touched wire, the gates just
// outside each window — records each gate's distance from the change; a
// rule's entries are cleared only within its own radius (pattern size + 1),
// since a match attempt for that rule explores at most that many wire steps
// from its anchor. Keeping the halo per-rule-tight is what lets small rules
// retain most of their cache across unrelated edits.
func (e *Engine) invalidate(wins []undoWin, seeds, qOffs []int) {
	n := len(e.c.Gates)
	if n == 0 {
		return
	}
	depth := e.maxPat + 1
	e.epoch++
	if cap(e.visited) < n {
		e.visited = make([]int, n)
	}
	visited := e.visited[:n]
	queue := e.queue[:0]
	add := func(i int) {
		if i >= 0 && i < n && visited[i] != e.epoch {
			visited[i] = e.epoch
			queue = append(queue, i)
		}
	}
	for wi, w := range wins {
		for i := w.lo; i < w.lo+w.inserted; i++ {
			add(i)
		}
		for _, q := range seeds[qOffs[wi]:qOffs[wi+1]] {
			wq := e.dag.Wire(q)
			a := sort.SearchInts(wq, w.lo)
			if a > 0 {
				add(wq[a-1])
			}
			b := a
			for b < len(wq) && wq[b] < w.lo+w.inserted {
				b++
			}
			if b < len(wq) {
				add(wq[b])
			}
		}
	}
	// Level-order BFS; levels[d] is the queue length after expanding depth
	// d, so queue[:levels[d]] holds every gate within d steps of the seeds.
	levels := e.levels[:0]
	levels = append(levels, len(queue))
	head := 0
	for d := 1; d <= depth; d++ {
		levelEnd := levels[len(levels)-1]
		for head < levelEnd {
			i := queue[head]
			head++
			next, prev := e.dag.Links(i)
			for _, nb := range next {
				add(nb)
			}
			for _, nb := range prev {
				add(nb)
			}
		}
		levels = append(levels, len(queue))
	}
	for _, rc := range e.caches {
		r := rc.patLen + 1
		if r > depth {
			r = depth
		}
		for _, i := range queue[:levels[r]] {
			if rc.fail[i] != 0 {
				rc.fail[i] = 0
				e.stats.Invalidated++
			}
		}
	}
	e.queue = queue[:0]
	e.levels = levels[:0]
}
