package rewrite

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/partition"
)

// TestEngineMatchesScratchFullPass is the metamorphic contract of the
// incremental engine: over long random rule sequences on random circuits —
// every rule library, wrap-around anchors, interleaved region replacements
// and whole-circuit cleanups, with both committed and rolled-back steps —
// the engine's circuit must stay bit-identical to the one produced by the
// pure, from-scratch FullPass pipeline on a shadow copy.
func TestEngineMatchesScratchFullPass(t *testing.T) {
	for name, rules := range AllLibraries() {
		name, rules := name, rules
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			gs, err := gateset.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range []int64{1, 42} {
				rng := rand.New(rand.NewSource(seed))
				ref := circuit.Random(8, 120, gs.Gates, rng)
				eng := NewEngine(ref)
				ref = ref.Clone() // the engine owns its own copy

				check := func(step int, what string) {
					t.Helper()
					if !circuit.Equal(eng.Circuit(), ref) {
						t.Fatalf("seed %d step %d (%s): engine diverged from scratch pipeline\nengine: %s\nscratch: %s",
							seed, step, what, eng.Circuit(), ref)
					}
				}

				for step := 0; step < 400; step++ {
					switch op := rng.Intn(10); {
					case op < 7: // rule full pass, random wrap-around anchor
						r := rules[rng.Intn(len(rules))]
						start := 0
						if ref.Len() > 0 {
							start = rng.Intn(ref.Len())
						}
						refOut, n1 := FullPass(ref, r, start)
						mark := eng.Mark()
						n2 := eng.FullPass(r, start)
						if n1 != n2 {
							t.Fatalf("seed %d step %d: rule %s replaced %d sites, scratch %d", seed, step, r.Name, n2, n1)
						}
						if rng.Intn(3) == 0 {
							// Speculative candidate rejected: roll back and
							// keep the shadow copy unchanged.
							eng.Rollback(mark)
						} else {
							eng.Commit()
							ref = refOut
						}
						check(step, "fullpass:"+r.Name)
					case op < 8: // convex region replaced by its own extraction
						if ref.Len() == 0 {
							continue
						}
						region := circuit.GrowConvex(ref, rng.Intn(ref.Len()), 3, 0, nil)
						if region == nil || len(region.Indices) == 0 {
							continue
						}
						sub := region.Extract(ref)
						mark := eng.Mark()
						eng.ReplaceRegion(region, sub)
						if rng.Intn(3) == 0 {
							eng.Rollback(mark)
						} else {
							eng.Commit()
							ref = region.Replace(ref, sub)
						}
						check(step, "region")
					case op < 9: // whole-circuit cleanup through the engine
						out, changed := CleanupChanged(eng.Snapshot(), name)
						if changed == 0 {
							continue
						}
						mark := eng.Mark()
						eng.SetCircuit(out)
						if rng.Intn(3) == 0 {
							eng.Rollback(mark)
						} else {
							eng.Commit()
							refOut, _ := CleanupChanged(ref, name)
							ref = refOut
						}
						check(step, "cleanup")
					default: // wholesale adoption of a fresh random circuit
						adopt := circuit.Random(8, 20+rng.Intn(100), gs.Gates, rng)
						eng.Reset(adopt)
						ref = adopt.Clone()
						check(step, "reset")
					}
				}
			}
		})
	}
}

// TestEngineCacheEngages asserts the negative cache short-circuits rescans
// in its two production shapes. First, the fixpoint shape (fixed-pass
// pipelines, warm start): once the reducing rules stop matching, another
// full round must rematch nothing — every anchor verdict is served from
// the cache. Second, the reject shape (a GUOQ candidate whose pass found
// no matches): rescanning an unchanged circuit with the same rule costs
// zero match attempts.
func TestEngineCacheEngages(t *testing.T) {
	rules, err := RulesFor("nam")
	if err != nil {
		t.Fatal(err)
	}
	var reducing []*Rule
	for _, r := range rules {
		if r.Delta() < 0 {
			reducing = append(reducing, r)
		}
	}
	rng := rand.New(rand.NewSource(5))
	c := circuit.Random(10, 300, gateset.Nam.Gates, rng)
	eng := NewEngine(c)
	// Drive the reducing rules to their fixpoint.
	for round := 0; round < 50; round++ {
		sites := 0
		for _, r := range reducing {
			sites += eng.FullPass(r, rng.Intn(eng.Circuit().Len()))
			eng.Commit()
		}
		if sites == 0 {
			break
		}
	}
	st0 := eng.Stats()
	// One more full round over the fixpoint: all anchors must come from the
	// cache.
	for _, r := range reducing {
		if n := eng.FullPass(r, rng.Intn(eng.Circuit().Len())); n != 0 {
			t.Fatalf("rule %s matched past its fixpoint", r.Name)
		}
		eng.Commit()
	}
	st1 := eng.Stats()
	if st1.MatchCalls != st0.MatchCalls {
		t.Errorf("fixpoint rescan rematched %d anchors, want 0", st1.MatchCalls-st0.MatchCalls)
	}
	if gotSkips := st1.CacheSkips - st0.CacheSkips; gotSkips < len(reducing)*eng.Circuit().Len()/2 {
		t.Errorf("fixpoint rescan skipped only %d anchors over %d rules × %d gates",
			gotSkips, len(reducing), eng.Circuit().Len())
	}
	t.Logf("stats: %+v", st1)
}

// TestEngineRollbackRestoresExactly pins the rollback contract across a
// multi-splice transaction, including nested marks.
func TestEngineRollbackRestoresExactly(t *testing.T) {
	rules, err := RulesFor("ibmq20")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	c := circuit.Random(6, 80, gateset.IBMQ20.Gates, rng)
	eng := NewEngine(c)
	before := eng.Snapshot()

	m0 := eng.Mark()
	applied := 0
	for _, r := range rules {
		applied += eng.FullPass(r, 0)
	}
	if applied == 0 {
		t.Skip("no rule matched the random circuit")
	}
	mid := eng.Snapshot()
	m1 := eng.Mark()
	for _, r := range rules {
		eng.FullPass(r, eng.Circuit().Len()/2)
	}
	eng.Rollback(m1)
	if !circuit.Equal(eng.Circuit(), mid) {
		t.Fatal("inner rollback did not restore the mid-transaction state")
	}
	eng.Rollback(m0)
	if !circuit.Equal(eng.Circuit(), before) {
		t.Fatal("outer rollback did not restore the initial state")
	}
}

// TestEngineDegenerate covers the empty-circuit and empty-replacement
// edges.
func TestEngineDegenerate(t *testing.T) {
	rules, err := RulesFor("nam")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(circuit.New(3))
	for _, r := range rules {
		if n := eng.FullPass(r, 0); n != 0 {
			t.Fatalf("rule %s matched the empty circuit", r.Name)
		}
	}
	eng.Reset(circuit.New(2))
	if eng.Circuit().NumQubits != 2 || eng.Circuit().Len() != 0 {
		t.Fatal("reset to an empty circuit failed")
	}
}

func TestMultiSpliceBytes(t *testing.T) {
	mkRepl := func(k int) []gate.Gate { return make([]gate.Gate, k) }
	cases := []struct {
		in   string
		ws   []circuit.SpliceWindow
		want string
	}{
		{"11111", []circuit.SpliceWindow{{Lo: 1, Hi: 3, Repl: mkRepl(1)}}, "101"},
		{"11111", []circuit.SpliceWindow{{Lo: 1, Hi: 3, Repl: mkRepl(5)}}, "1000001"},
		{"11111", []circuit.SpliceWindow{{Lo: 2, Hi: 1, Repl: mkRepl(2)}}, "1100111"}, // pure insertion
		{"11111", []circuit.SpliceWindow{{Lo: 0, Hi: 4}}, ""},
		{"111111", []circuit.SpliceWindow{{Lo: 0, Hi: 1, Repl: mkRepl(1)}, {Lo: 3, Hi: 3, Repl: mkRepl(2)}}, "010011"},
	}
	e := NewEngine(circuit.New(1))
	for i, tc := range cases {
		b := make([]byte, len(tc.in))
		for j := range tc.in {
			b[j] = tc.in[j] - '0'
		}
		got := e.multiSpliceBytes(b, tc.ws)
		s := ""
		for _, x := range got {
			s += fmt.Sprint(x)
		}
		if s != tc.want {
			t.Errorf("case %d: got %q, want %q", i, s, tc.want)
		}
	}
}

// TestReplaceRegionsMatchesSequential pins the batch stitching step against
// its two references: back-to-front sequential ReplaceRegion calls on a
// second engine, and the pure Region.Replace pipeline — then checks the
// transaction log undoes the whole batch as one unit and that the DAG and
// caches stay sound for a subsequent full pass.
func TestReplaceRegionsMatchesSequential(t *testing.T) {
	gs, err := gateset.ByName("nam")
	if err != nil {
		t.Fatal(err)
	}
	rules := namRules()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		c := circuit.Random(6, 80, gs.Gates, rng)
		windows := partition.TimeWindows(c, 2+rng.Intn(3), 8)
		if windows == nil {
			t.Fatal("expected windows")
		}
		// Replacements: each window's own extraction with a random suffix
		// dropped, so splices shrink windows by varying amounts.
		repls := make([]*circuit.Circuit, len(windows))
		for i, w := range windows {
			sub := w.Extract(c)
			sub.Gates = sub.Gates[:rng.Intn(len(sub.Gates)+1)]
			repls[i] = sub
		}

		engA := NewEngine(c.Clone())
		mark := engA.Mark()
		engA.ReplaceRegions(windows, repls)

		engB := NewEngine(c.Clone())
		for i := len(windows) - 1; i >= 0; i-- {
			engB.ReplaceRegion(windows[i], repls[i])
		}
		if !circuit.Equal(engA.Circuit(), engB.Circuit()) {
			t.Fatalf("trial %d: batch splice diverged from sequential\nbatch: %s\nseq: %s",
				trial, engA.Circuit(), engB.Circuit())
		}

		out := c
		for i := len(windows) - 1; i >= 0; i-- {
			out = windows[i].Replace(out, repls[i])
		}
		if !circuit.Equal(engA.Circuit(), out) {
			t.Fatalf("trial %d: batch splice diverged from pure Replace", trial)
		}

		// The engine must remain a sound incremental pipeline after the batch.
		r := rules[rng.Intn(len(rules))]
		refOut, n1 := FullPass(out, r, 0)
		if n2 := engA.FullPass(r, 0); n1 != n2 {
			t.Fatalf("trial %d: post-splice pass replaced %d sites, scratch %d", trial, n2, n1)
		}
		if !circuit.Equal(engA.Circuit(), refOut) {
			t.Fatalf("trial %d: post-splice pass diverged from scratch", trial)
		}

		// One rollback to the pre-batch mark must restore the input exactly.
		engA.Rollback(mark)
		if !circuit.Equal(engA.Circuit(), c) {
			t.Fatalf("trial %d: rollback did not restore the pre-batch circuit", trial)
		}
	}
}
