package rewrite

import (
	"math/rand"
	"testing"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gateset"
)

// BenchmarkMatchScan{Stateless,Cached} isolate raw match throughput over
// the full nam rule library on a fixed 16-qubit, 600-gate circuit — the
// same workload as BenchmarkEngineFullPass minus splicing. Stateless
// re-runs matchAt at every anchor each scan; Cached answers anchors from
// the engine's warm per-anchor verdict index (negative skips + positive
// replays), which is the steady state of the annealing loop's dominant
// reject path. The cached scan must stay ≥ 1.2× the stateless one — the
// ratio is pinned in BENCH_hotloop.json and checked by the perf gate.
func BenchmarkMatchScanStateless(b *testing.B) { benchMatchScan(b, false) }
func BenchmarkMatchScanCached(b *testing.B)    { benchMatchScan(b, true) }

func benchMatchScan(b *testing.B, cached bool) {
	rng := rand.New(rand.NewSource(2))
	c := circuit.Random(16, 600, gateset.Nam.Gates, rng)
	rules := namRules()
	e := NewEngine(c)
	if cached {
		// Warm pass: record a verdict at (nearly) every (rule, anchor).
		for _, r := range rules {
			used := make([]bool, len(e.c.Gates))
			findMatches(e.c, e.dag, r, 0, e.scratch, used, e.cacheFor(r), nil, &e.stats)
		}
	}
	d := circuit.BuildDAG(c)
	s := newMatchScratch()
	used := make([]bool, len(c.Gates))
	var out []*Match
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range rules {
			for j := range used {
				used[j] = false
			}
			if cached {
				out = findMatches(e.c, e.dag, r, 0, e.scratch, used, e.cacheFor(r), out[:0], &e.stats)
			} else {
				out = findMatches(c, d, r, 0, s, used, nil, out[:0], nil)
			}
		}
	}
}
