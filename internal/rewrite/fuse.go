package rewrite

import (
	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/linalg"
)

// Fuse1Q is the analytic single-qubit fusion pass for continuous gate sets:
// every maximal run of consecutive single-qubit gates on a wire is
// multiplied into one 2×2 unitary and re-emitted in the target set's
// minimal native form (u3 for ibmq20, rz·sx·rz·sx·rz for ibm-eagle, ZYZ for
// ionq, rz·h·rz·h·rz for nam). The fused form replaces the run only when it
// is no longer than the original, so the pass never increases gate count.
//
// This plays the role of the nonlinear u-gate merge rules that symbolic
// patterns cannot express (their parameter algebra is not linear).
func Fuse1Q(c *circuit.Circuit, gs *gateset.GateSet) *circuit.Circuit {
	out := circuit.New(c.NumQubits)
	pending := make([][]gate.Gate, c.NumQubits)

	flush := func(q int) {
		run := pending[q]
		pending[q] = nil
		if len(run) == 0 {
			return
		}
		if len(run) == 1 {
			out.Gates = append(out.Gates, run[0])
			return
		}
		u := linalg.Identity(2)
		for _, g := range run {
			u = linalg.Mul(gate.Matrix(g), u)
		}
		fused := emit1Q(u, q, gs)
		if fused == nil || len(fused) > len(run) {
			out.Gates = append(out.Gates, run...)
			return
		}
		out.Gates = append(out.Gates, fused...)
	}

	for _, g := range c.Gates {
		if len(g.Qubits) == 1 {
			pending[g.Qubits[0]] = append(pending[g.Qubits[0]], g)
			continue
		}
		for _, q := range g.Qubits {
			flush(q)
		}
		out.Gates = append(out.Gates, g)
	}
	for q := range pending {
		flush(q)
	}
	return out
}

// emit1Q renders an arbitrary 2×2 unitary as a minimal native single-qubit
// sequence on qubit q, or nil when the set cannot represent it exactly
// (finite sets with non-π/4 angles).
func emit1Q(u linalg.Matrix, q int, gs *gateset.GateSet) []gate.Gate {
	tmp := circuit.New(1)
	th, ph, la, _ := linalg.U3Angles(u)
	if th < 1e-12 {
		// Diagonal unitary: emit as a plain z-rotation so ibmq20 gets a u1
		// instead of a full u3.
		tmp.Append(gate.NewRz(linalg.NormAngle(ph+la), 0))
	} else {
		tmp.Append(gate.NewU3(th, ph, la, 0))
	}
	native, err := gateset.Translate(tmp, gs)
	if err != nil {
		return nil
	}
	out := make([]gate.Gate, 0, len(native.Gates))
	for _, g := range native.Gates {
		ng := g.Clone()
		ng.Qubits[0] = q
		out = append(out, ng)
	}
	return out
}
