package rewrite

import (
	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/linalg"
)

// Fuse1Q is the analytic single-qubit fusion pass for continuous gate sets:
// every maximal run of consecutive single-qubit gates on a wire is
// multiplied into one 2×2 unitary and re-emitted in the target set's
// minimal native form (u3 for ibmq20, rz·sx·rz·sx·rz for ibm-eagle, ZYZ for
// ionq, rz·h·rz·h·rz for nam). The fused form replaces the run only when it
// is no longer than the original, so the pass never increases gate count.
//
// This plays the role of the nonlinear u-gate merge rules that symbolic
// patterns cannot express (their parameter algebra is not linear).
func Fuse1Q(c *circuit.Circuit, gs *gateset.GateSet) *circuit.Circuit {
	out, _ := Fuse1QChanged(c, gs)
	return out
}

// Fuse1QChanged is Fuse1Q plus a change count covering both fusion events
// and the commuting reorders the per-wire buffering introduces (a buffered
// run is emitted after multi-qubit gates on other wires that arrived later
// than the run's gates). A zero count guarantees the output is structurally
// identical (circuit.Equal) to the input.
func Fuse1QChanged(c *circuit.Circuit, gs *gateset.GateSet) (*circuit.Circuit, int) {
	out := circuit.New(c.NumQubits)
	pending := make([][]gate.Gate, c.NumQubits)
	pendIdx := make([][]int, c.NumQubits)
	changed := 0
	lastOrig := -1
	orderOK := true

	// emitOrig appends an unmodified input gate, tracking whether the
	// output still visits input gates in their original order.
	emitOrig := func(g gate.Gate, idx int) {
		out.Gates = append(out.Gates, g)
		if idx < lastOrig {
			orderOK = false
		} else {
			lastOrig = idx
		}
	}

	flush := func(q int) {
		run, idxs := pending[q], pendIdx[q]
		pending[q], pendIdx[q] = nil, nil
		if len(run) == 0 {
			return
		}
		if len(run) == 1 {
			emitOrig(run[0], idxs[0])
			return
		}
		u := linalg.Identity(2)
		for _, g := range run {
			u = linalg.Mul(gate.Matrix(g), u)
		}
		fused := emit1Q(u, q, gs)
		if fused == nil || len(fused) > len(run) || gateSeqEqual(fused, run) {
			for i := range run {
				emitOrig(run[i], idxs[i])
			}
			return
		}
		changed++
		out.Gates = append(out.Gates, fused...)
	}

	for i, g := range c.Gates {
		if len(g.Qubits) == 1 {
			q := g.Qubits[0]
			pending[q] = append(pending[q], g)
			pendIdx[q] = append(pendIdx[q], i)
			continue
		}
		for _, q := range g.Qubits {
			flush(q)
		}
		emitOrig(g, i)
	}
	for q := range pending {
		flush(q)
	}
	if !orderOK {
		changed++
	}
	return out, changed
}

// gateSeqEqual compares two gate sequences the way circuit.Equal does.
func gateSeqEqual(a, b []gate.Gate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// emit1Q renders an arbitrary 2×2 unitary as a minimal native single-qubit
// sequence on qubit q, or nil when the set cannot represent it exactly
// (finite sets with non-π/4 angles).
func emit1Q(u linalg.Matrix, q int, gs *gateset.GateSet) []gate.Gate {
	tmp := circuit.New(1)
	th, ph, la, _ := linalg.U3Angles(u)
	if th < 1e-12 {
		// Diagonal unitary: emit as a plain z-rotation so ibmq20 gets a u1
		// instead of a full u3.
		tmp.Append(gate.NewRz(linalg.NormAngle(ph+la), 0))
	} else {
		tmp.Append(gate.NewU3(th, ph, la, 0))
	}
	native, err := gateset.Translate(tmp, gs)
	if err != nil {
		return nil
	}
	out := make([]gate.Gate, 0, len(native.Gates))
	for _, g := range native.Gates {
		ng := g.Clone()
		ng.Qubits[0] = q
		out = append(out, ng)
	}
	return out
}
