package rewrite

import (
	"math"

	"github.com/guoq-dev/guoq/internal/gate"
)

// Rule libraries for the two IBM gate sets of Table 2.

// ibmq20Rules covers {u1, u2, u3, cx}. The u-gate algebra is mostly
// nonlinear (generic fusion is handled exactly by the Fuse1Q built-in
// transformation); the symbolic rules capture the linear fragment: u1
// phase absorption, cx structure, and the cx reversal with h = u2(0, π).
func ibmq20Rules() []*Rule {
	var rs []*Rule
	add := func(r *Rule) { rs = append(rs, r) }

	add(MustRule("ibmq20/cx-cx-cancel", 2, 0,
		[]PatGate{P(gate.CX, nil, 0, 1), P(gate.CX, nil, 0, 1)},
		nil))
	add(MustRule("ibmq20/u1-merge", 1, 2,
		[]PatGate{P(gate.U1, []PatParam{V(0)}, 0), P(gate.U1, []PatParam{V(1)}, 0)},
		[]RepGate{Rep(gate.U1, []ParamExpr{ESum(0, 1)}, 0)}))

	// u1 absorbs into neighbouring u3/u2 exactly (diagonal composition).
	add(MustRule("ibmq20/u1-into-u3", 1, 4,
		[]PatGate{
			P(gate.U1, []PatParam{V(0)}, 0),
			P(gate.U3, []PatParam{V(1), V(2), V(3)}, 0),
		},
		[]RepGate{Rep(gate.U3, []ParamExpr{EV(1), EV(2), ESum(3, 0)}, 0)}))
	add(MustRule("ibmq20/u3-into-u1", 1, 4,
		[]PatGate{
			P(gate.U3, []PatParam{V(1), V(2), V(3)}, 0),
			P(gate.U1, []PatParam{V(0)}, 0),
		},
		[]RepGate{Rep(gate.U3, []ParamExpr{EV(1), ESum(2, 0), EV(3)}, 0)}))
	add(MustRule("ibmq20/u1-into-u2", 1, 3,
		[]PatGate{
			P(gate.U1, []PatParam{V(0)}, 0),
			P(gate.U2, []PatParam{V(1), V(2)}, 0),
		},
		[]RepGate{Rep(gate.U2, []ParamExpr{EV(1), ESum(2, 0)}, 0)}))
	add(MustRule("ibmq20/u2-into-u1", 1, 3,
		[]PatGate{
			P(gate.U2, []PatParam{V(1), V(2)}, 0),
			P(gate.U1, []PatParam{V(0)}, 0),
		},
		[]RepGate{Rep(gate.U2, []ParamExpr{ESum(1, 0), EV(2)}, 0)}))

	// u1 commutes through the cx control.
	add(MustRule("ibmq20/u1-cx-control", 2, 1,
		[]PatGate{P(gate.U1, []PatParam{V(0)}, 0), P(gate.CX, nil, 0, 1)},
		[]RepGate{Rep(gate.CX, nil, 0, 1), Rep(gate.U1, []ParamExpr{EV(0)}, 0)}))
	add(MustRule("ibmq20/cx-control-u1", 2, 1,
		[]PatGate{P(gate.CX, nil, 0, 1), P(gate.U1, []PatParam{V(0)}, 0)},
		[]RepGate{Rep(gate.U1, []ParamExpr{EV(0)}, 0), Rep(gate.CX, nil, 0, 1)}))

	// cx structure.
	add(MustRule("ibmq20/cx-shared-control", 3, 0,
		[]PatGate{P(gate.CX, nil, 0, 1), P(gate.CX, nil, 0, 2)},
		[]RepGate{Rep(gate.CX, nil, 0, 2), Rep(gate.CX, nil, 0, 1)}))
	add(MustRule("ibmq20/cx-shared-target", 3, 0,
		[]PatGate{P(gate.CX, nil, 0, 2), P(gate.CX, nil, 1, 2)},
		[]RepGate{Rep(gate.CX, nil, 1, 2), Rep(gate.CX, nil, 0, 2)}))
	add(MustRule("ibmq20/cx-chain-collapse", 3, 0,
		[]PatGate{P(gate.CX, nil, 1, 2), P(gate.CX, nil, 0, 2), P(gate.CX, nil, 0, 1)},
		[]RepGate{Rep(gate.CX, nil, 0, 1), Rep(gate.CX, nil, 1, 2)}))
	add(MustRule("ibmq20/cx-reversal", 2, 0,
		[]PatGate{
			P(gate.U2, []PatParam{C(0), C(math.Pi)}, 0),
			P(gate.U2, []PatParam{C(0), C(math.Pi)}, 1),
			P(gate.CX, nil, 0, 1),
			P(gate.U2, []PatParam{C(0), C(math.Pi)}, 0),
			P(gate.U2, []PatParam{C(0), C(math.Pi)}, 1),
		},
		[]RepGate{Rep(gate.CX, nil, 1, 0)}))

	return rs
}

// ibmEagleRules covers {rz, sx, x, cx}.
func ibmEagleRules() []*Rule {
	var rs []*Rule
	add := func(r *Rule) { rs = append(rs, r) }

	add(MustRule("eagle/x-x-cancel", 1, 0,
		[]PatGate{P(gate.X, nil, 0), P(gate.X, nil, 0)},
		nil))
	add(MustRule("eagle/cx-cx-cancel", 2, 0,
		[]PatGate{P(gate.CX, nil, 0, 1), P(gate.CX, nil, 0, 1)},
		nil))
	add(MustRule("eagle/rz-merge", 1, 2,
		[]PatGate{P(gate.Rz, []PatParam{V(0)}, 0), P(gate.Rz, []PatParam{V(1)}, 0)},
		[]RepGate{Rep(gate.Rz, []ParamExpr{ESum(0, 1)}, 0)}))
	add(MustRule("eagle/sx-sx-to-x", 1, 0,
		[]PatGate{P(gate.SX, nil, 0), P(gate.SX, nil, 0)},
		[]RepGate{Rep(gate.X, nil, 0)}))
	add(MustRule("eagle/sx-x-sx-cancel", 1, 0,
		[]PatGate{P(gate.SX, nil, 0), P(gate.X, nil, 0), P(gate.SX, nil, 0)},
		nil))
	add(MustRule("eagle/x-sx-x-to-sx", 1, 0,
		[]PatGate{P(gate.X, nil, 0), P(gate.SX, nil, 0), P(gate.X, nil, 0)},
		[]RepGate{Rep(gate.SX, nil, 0)}))
	// z·sx·z ∝ sx·x (3 → 2, and frees an rz-merge on each side).
	add(MustRule("eagle/z-sx-z-shorten", 1, 0,
		[]PatGate{
			P(gate.Rz, []PatParam{C(math.Pi)}, 0),
			P(gate.SX, nil, 0),
			P(gate.Rz, []PatParam{C(math.Pi)}, 0),
		},
		[]RepGate{Rep(gate.SX, nil, 0), Rep(gate.X, nil, 0)}))
	add(MustRule("eagle/rz-x-flip", 1, 1,
		[]PatGate{P(gate.Rz, []PatParam{V(0)}, 0), P(gate.X, nil, 0)},
		[]RepGate{Rep(gate.X, nil, 0), Rep(gate.Rz, []ParamExpr{ENeg(0)}, 0)}))
	add(MustRule("eagle/x-rz-flip", 1, 1,
		[]PatGate{P(gate.X, nil, 0), P(gate.Rz, []PatParam{V(0)}, 0)},
		[]RepGate{Rep(gate.Rz, []ParamExpr{ENeg(0)}, 0), Rep(gate.X, nil, 0)}))

	add(MustRule("eagle/rz-cx-control", 2, 1,
		[]PatGate{P(gate.Rz, []PatParam{V(0)}, 0), P(gate.CX, nil, 0, 1)},
		[]RepGate{Rep(gate.CX, nil, 0, 1), Rep(gate.Rz, []ParamExpr{EV(0)}, 0)}))
	add(MustRule("eagle/cx-control-rz", 2, 1,
		[]PatGate{P(gate.CX, nil, 0, 1), P(gate.Rz, []PatParam{V(0)}, 0)},
		[]RepGate{Rep(gate.Rz, []ParamExpr{EV(0)}, 0), Rep(gate.CX, nil, 0, 1)}))
	add(MustRule("eagle/x-cx-target", 2, 0,
		[]PatGate{P(gate.X, nil, 1), P(gate.CX, nil, 0, 1)},
		[]RepGate{Rep(gate.CX, nil, 0, 1), Rep(gate.X, nil, 1)}))
	add(MustRule("eagle/cx-target-x", 2, 0,
		[]PatGate{P(gate.CX, nil, 0, 1), P(gate.X, nil, 1)},
		[]RepGate{Rep(gate.X, nil, 1), Rep(gate.CX, nil, 0, 1)}))
	add(MustRule("eagle/cx-shared-control", 3, 0,
		[]PatGate{P(gate.CX, nil, 0, 1), P(gate.CX, nil, 0, 2)},
		[]RepGate{Rep(gate.CX, nil, 0, 2), Rep(gate.CX, nil, 0, 1)}))
	add(MustRule("eagle/cx-shared-target", 3, 0,
		[]PatGate{P(gate.CX, nil, 0, 2), P(gate.CX, nil, 1, 2)},
		[]RepGate{Rep(gate.CX, nil, 1, 2), Rep(gate.CX, nil, 0, 2)}))
	add(MustRule("eagle/cx-chain-collapse", 3, 0,
		[]PatGate{P(gate.CX, nil, 1, 2), P(gate.CX, nil, 0, 2), P(gate.CX, nil, 0, 1)},
		[]RepGate{Rep(gate.CX, nil, 0, 1), Rep(gate.CX, nil, 1, 2)}))

	return rs
}
