// Package rewrite implements the fast half of the paper: rewrite rules as
// symbolic pattern → replacement pairs over small subcircuits (Fig. 3), a
// DAG-based matcher, and the full-pass application strategy of §5.3
// ("start at a random node and replace every disjoint match").
//
// Two execution surfaces apply the rules. FullPass is the pure, stateless
// API: it rebuilds the circuit DAG and rescans every anchor on each call,
// and returns a fresh circuit — the right tool for one-shot rewrites and
// for callers that need value semantics. Engine is the incremental API for
// iterated search: it owns a mutable circuit whose DAG is maintained by
// in-place window splices, caches per-rule three-state match verdicts —
// known failures are skipped, known matches replayed without rematching —
// that survive across calls (invalidated only inside a wire-adjacency halo
// of the gates a transformation touched), and exposes a transaction log
// (Mark/Rollback/Commit) so speculative candidates — a rejected GUOQ move,
// a lookahead branch — are reverted without copying circuits. Engine and
// FullPass produce bit-for-bit identical results for identical inputs; the
// engine's metamorphic test pins that equivalence over long random rule
// sequences. Iterated callers (the GUOQ loop, fixed-pass pipelines,
// lookahead, warm starts) should prefer an Engine; see the Engine type for
// the full invalidation contract.
//
// Every rule registered in this package is machine-verified: the test suite
// checks pattern ≡ replacement (mod global phase) at randomized angles.
package rewrite

import (
	"fmt"
	"math"

	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/linalg"
)

// PatParam is one parameter slot in a pattern gate: either a symbolic
// variable (matched against any angle and bound) or a constant (matched
// within tolerance).
type PatParam struct {
	IsVar bool
	Var   int     // variable index when IsVar
	Value float64 // constant to match otherwise
}

// V returns a symbolic parameter variable.
func V(i int) PatParam { return PatParam{IsVar: true, Var: i} }

// C returns a constant parameter that must match exactly (within tolerance).
func C(x float64) PatParam { return PatParam{Value: x} }

// PatGate is a gate in a rule pattern. Qubits are pattern-local variables
// 0..NumQubits-1; the matcher binds them injectively to circuit qubits.
type PatGate struct {
	Name   gate.Name
	Qubits []int
	Params []PatParam
}

// ParamExpr is a linear expression c₀ + Σ cᵢ·varᵢ over the pattern's bound
// parameter variables, used for replacement gate parameters (e.g. θ₁+θ₂ in
// the merge rule of Fig. 3d).
type ParamExpr struct {
	Const  float64
	Coeffs map[int]float64
}

// EC returns a constant expression.
func EC(x float64) ParamExpr { return ParamExpr{Const: x} }

// EV returns the expression equal to variable i.
func EV(i int) ParamExpr { return ParamExpr{Coeffs: map[int]float64{i: 1}} }

// ENeg returns −varᵢ.
func ENeg(i int) ParamExpr { return ParamExpr{Coeffs: map[int]float64{i: -1}} }

// ESum returns varᵢ + varⱼ.
func ESum(i, j int) ParamExpr {
	if i == j {
		return ParamExpr{Coeffs: map[int]float64{i: 2}}
	}
	return ParamExpr{Coeffs: map[int]float64{i: 1, j: 1}}
}

// Eval evaluates the expression under a variable binding, normalizing the
// result into (−π, π].
func (e ParamExpr) Eval(binding []float64) float64 {
	v := e.Const
	for i, c := range e.Coeffs {
		v += c * binding[i]
	}
	return linalg.NormAngle(v)
}

// RepGate is a gate in a rule replacement.
type RepGate struct {
	Name   gate.Name
	Qubits []int
	Params []ParamExpr
}

// Rule is a rewrite rule: a pattern subcircuit and a semantically equivalent
// replacement, both over NumQubits pattern-local qubits and NumVars symbolic
// angle variables. Rules are exact (ε = 0 transformations).
type Rule struct {
	Name        string
	NumQubits   int
	NumVars     int
	Pattern     []PatGate // in execution order
	Replacement []RepGate // in execution order

	// Matching plan, precomputed by NewRule. prevPat/nextPat give, per
	// pattern gate and qubit position, the pattern index of the previous /
	// next pattern gate on that pattern wire (-1 if none). matchOrder is a
	// BFS order over wire adjacency starting from pattern gate 0, so each
	// later gate has at least one already-matched wire neighbour.
	prevPat    [][]int
	nextPat    [][]int
	matchOrder []int

	// Per-wire pattern extents, also precomputed: wireExtent[q] counts the
	// pattern gates on pattern wire q, and haloDepth is the invalidation
	// radius derived from them — one more than the deepest wire-adjacency
	// step the matcher can take from the anchor. Both feed the Engine's
	// per-rule halo sizing (see Engine's invalidation contract).
	wireExtent []int
	haloDepth  int
}

// WireExtents returns, per pattern-local wire, how many pattern gates act
// on it — the rule's per-wire footprint, computed once at compile time.
func (r *Rule) WireExtents() []int { return r.wireExtent }

// HaloDepth is the rule's cache-invalidation radius: a match attempt
// anchored at gate a only ever inspects gates within HaloDepth wire-
// adjacency steps of a (the pattern's BFS eccentricity from the anchor,
// plus one step for the window-purity scan and candidate probes). It is
// never larger than len(Pattern)+1, the global bound it replaces, and is
// much smaller for long narrow patterns.
func (r *Rule) HaloDepth() int { return r.haloDepth }

// Delta returns the gate-count change of applying the rule (negative is a
// reduction). The GUOQ instantiation excludes size-increasing rules (§6).
func (r *Rule) Delta() int { return len(r.Replacement) - len(r.Pattern) }

// P builds a pattern gate; params then qubits.
func P(n gate.Name, params []PatParam, qubits ...int) PatGate {
	return PatGate{Name: n, Qubits: qubits, Params: params}
}

// Rep builds a replacement gate; params then qubits.
func Rep(n gate.Name, params []ParamExpr, qubits ...int) RepGate {
	return RepGate{Name: n, Qubits: qubits, Params: params}
}

// NewRule validates and constructs a rule: arities and parameter counts
// must match the gate specs, qubit variables must be in range, and the
// pattern must be connected over wire adjacency so the matcher can reach
// every pattern gate from the anchor (pattern gate 0).
func NewRule(name string, numQubits, numVars int, pattern []PatGate, replacement []RepGate) (*Rule, error) {
	if len(pattern) == 0 {
		return nil, fmt.Errorf("rewrite: rule %s: empty pattern", name)
	}
	for gi, pg := range pattern {
		spec, ok := gate.SpecOf(pg.Name)
		if !ok {
			return nil, fmt.Errorf("rewrite: rule %s: unknown gate %s", name, pg.Name)
		}
		if len(pg.Qubits) != spec.Qubits || len(pg.Params) != spec.Params {
			return nil, fmt.Errorf("rewrite: rule %s: pattern gate %d malformed", name, gi)
		}
		for _, q := range pg.Qubits {
			if q < 0 || q >= numQubits {
				return nil, fmt.Errorf("rewrite: rule %s: pattern qubit %d out of range", name, q)
			}
		}
		for _, p := range pg.Params {
			if p.IsVar && (p.Var < 0 || p.Var >= numVars) {
				return nil, fmt.Errorf("rewrite: rule %s: pattern var %d out of range", name, p.Var)
			}
		}
	}
	for gi, rg := range replacement {
		spec, ok := gate.SpecOf(rg.Name)
		if !ok {
			return nil, fmt.Errorf("rewrite: rule %s: unknown replacement gate %s", name, rg.Name)
		}
		if len(rg.Qubits) != spec.Qubits || len(rg.Params) != spec.Params {
			return nil, fmt.Errorf("rewrite: rule %s: replacement gate %d malformed", name, gi)
		}
		for _, q := range rg.Qubits {
			if q < 0 || q >= numQubits {
				return nil, fmt.Errorf("rewrite: rule %s: replacement qubit %d out of range", name, q)
			}
		}
	}
	r := &Rule{
		Name: name, NumQubits: numQubits, NumVars: numVars,
		Pattern: pattern, Replacement: replacement,
	}
	if err := r.buildPlan(); err != nil {
		return nil, err
	}
	return r, nil
}

// buildPlan precomputes the pattern wire structure and the BFS match order.
func (r *Rule) buildPlan() error {
	n := len(r.Pattern)
	r.prevPat = make([][]int, n)
	r.nextPat = make([][]int, n)
	lastOn := make([]int, r.NumQubits)
	for i := range lastOn {
		lastOn[i] = -1
	}
	for gi, pg := range r.Pattern {
		r.prevPat[gi] = make([]int, len(pg.Qubits))
		r.nextPat[gi] = make([]int, len(pg.Qubits))
		for k, q := range pg.Qubits {
			r.prevPat[gi][k] = lastOn[q]
			r.nextPat[gi][k] = -1
			if p := lastOn[q]; p >= 0 {
				for pk, pq := range r.Pattern[p].Qubits {
					if pq == q {
						r.nextPat[p][pk] = gi
					}
				}
			}
			lastOn[q] = gi
		}
	}
	// BFS from gate 0 over wire adjacency (prev/next neighbours), tracking
	// each gate's depth: the deepest gate bounds how far the matcher walks
	// from the anchor.
	visited := make([]bool, n)
	depth := make([]int, n)
	r.matchOrder = []int{0}
	visited[0] = true
	maxDepth := 0
	for head := 0; head < len(r.matchOrder); head++ {
		gi := r.matchOrder[head]
		for k := range r.Pattern[gi].Qubits {
			for _, nb := range []int{r.prevPat[gi][k], r.nextPat[gi][k]} {
				if nb >= 0 && !visited[nb] {
					visited[nb] = true
					depth[nb] = depth[gi] + 1
					if depth[nb] > maxDepth {
						maxDepth = depth[nb]
					}
					r.matchOrder = append(r.matchOrder, nb)
				}
			}
		}
	}
	if len(r.matchOrder) != n {
		return fmt.Errorf("rewrite: rule %s: pattern is not wire-connected", r.Name)
	}
	// Per-wire extents and the halo radius they imply. The extra +1 covers
	// the one-step probes beyond matched gates: failed candidates and the
	// window-purity scan, both of which only ever look at immediate wire
	// neighbours of matched gates.
	r.wireExtent = make([]int, r.NumQubits)
	for _, pg := range r.Pattern {
		for _, q := range pg.Qubits {
			r.wireExtent[q]++
		}
	}
	r.haloDepth = maxDepth + 1
	return nil
}

// OverrideCompiledMetadata replaces the rule's compiled HaloDepth and
// WireExtents with arbitrary values. It exists ONLY so analysis fixtures
// can inject an unsound declaration and prove CheckLibrary catches it;
// production code must never call it — a wrong halo silently corrupts the
// Engine's cached verdicts, which is exactly the failure the analysis
// package guards against. A nil wireExtents keeps the compiled extents.
func (r *Rule) OverrideCompiledMetadata(haloDepth int, wireExtents []int) {
	r.haloDepth = haloDepth
	if wireExtents != nil {
		r.wireExtent = wireExtents
	}
}

// MustRule is NewRule for the static rule libraries; it panics on error.
func MustRule(name string, numQubits, numVars int, pattern []PatGate, replacement []RepGate) *Rule {
	r, err := NewRule(name, numQubits, numVars, pattern, replacement)
	if err != nil {
		panic(err)
	}
	return r
}

// PatternCircuitAt instantiates the rule's pattern as a concrete circuit
// with the given variable binding, for verification.
func (r *Rule) PatternCircuitAt(binding []float64) []gate.Gate {
	out := make([]gate.Gate, 0, len(r.Pattern))
	for _, pg := range r.Pattern {
		ps := make([]float64, len(pg.Params))
		for i, p := range pg.Params {
			if p.IsVar {
				ps[i] = binding[p.Var]
			} else {
				ps[i] = p.Value
			}
		}
		qs := make([]int, len(pg.Qubits))
		copy(qs, pg.Qubits)
		out = append(out, gate.New(pg.Name, qs, ps))
	}
	return out
}

// ReplacementCircuitAt instantiates the rule's replacement under a binding.
func (r *Rule) ReplacementCircuitAt(binding []float64) []gate.Gate {
	out := make([]gate.Gate, 0, len(r.Replacement))
	for _, rg := range r.Replacement {
		ps := make([]float64, len(rg.Params))
		for i, e := range rg.Params {
			ps[i] = e.Eval(binding)
		}
		qs := make([]int, len(rg.Qubits))
		copy(qs, rg.Qubits)
		out = append(out, gate.New(rg.Name, qs, ps))
	}
	return out
}

// Verify checks pattern ≡ replacement (mod global phase) at the given
// binding, returning the Hilbert–Schmidt distance.
func (r *Rule) Verify(binding []float64) float64 {
	u := linalg.Identity(1 << r.NumQubits)
	for _, g := range r.PatternCircuitAt(binding) {
		linalg.ApplyGateLeft(gate.Matrix(g), g.Qubits, r.NumQubits, u)
	}
	v := linalg.Identity(1 << r.NumQubits)
	for _, g := range r.ReplacementCircuitAt(binding) {
		linalg.ApplyGateLeft(gate.Matrix(g), g.Qubits, r.NumQubits, v)
	}
	return linalg.HSDistance(u, v)
}

const paramTol = 1e-9

// matchParam checks a pattern parameter against a concrete angle, extending
// the binding. bound[i] reports whether variable i is already bound.
//
//guoq:hotpath
func matchParam(p PatParam, angle float64, binding []float64, bound []bool) bool {
	if !p.IsVar {
		return math.Abs(linalg.NormAngle(angle-p.Value)) <= paramTol
	}
	if bound[p.Var] {
		return math.Abs(linalg.NormAngle(angle-binding[p.Var])) <= paramTol
	}
	binding[p.Var] = angle
	bound[p.Var] = true
	return true
}
