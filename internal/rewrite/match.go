package rewrite

import (
	"sort"

	"github.com/guoq-dev/guoq/internal/circuit"
)

// Match records one occurrence of a rule pattern in a circuit: the matched
// gate indices (ascending), the qubit mapping (pattern-local → global), and
// the bound angle variables.
type Match struct {
	Rule     *Rule
	Indices  []int
	QubitMap []int // QubitMap[patternQubit] = circuit qubit (-1 if unused)
	Binding  []float64
	Lo, Hi   int // window bounds (min/max of Indices)
}

// matchScratch holds the matcher's working state so that repeated matching
// — a full pass, or the Engine's cached rescan — allocates nothing on the
// failure path (the overwhelmingly common one). Between calls the scratch
// maintains the invariants: qmap and rq all -1, taken empty. A successful
// match copies its bindings out into a fresh Match, so the scratch can be
// reused immediately.
type matchScratch struct {
	binding []float64
	bound   []bool
	qmap    []int // pattern qubit -> circuit qubit, -1 unused
	rq      []int // circuit qubit -> pattern qubit, -1 unused
	pos     []int // pattern gate -> circuit index
	matched []bool
	taken   []int // circuit indices matched so far
}

func newMatchScratch() *matchScratch { return &matchScratch{} }

func (s *matchScratch) ensure(c *circuit.Circuit, r *Rule) {
	for len(s.rq) < c.NumQubits {
		s.rq = append(s.rq, -1)
	}
	for len(s.qmap) < r.NumQubits {
		s.qmap = append(s.qmap, -1)
	}
	if len(s.binding) < r.NumVars {
		s.binding = make([]float64, r.NumVars)
		s.bound = make([]bool, r.NumVars)
	}
	if len(s.pos) < len(r.Pattern) {
		s.pos = make([]int, len(r.Pattern))
		s.matched = make([]bool, len(r.Pattern))
	}
}

// matchAt attempts to match rule r with its anchor (pattern gate 0) at
// circuit gate index anchor. Pattern gates are matched in the rule's BFS
// order: each new pattern gate is located through a wire-adjacency
// constraint against an already-matched neighbour — if the neighbour
// precedes it on a pattern wire, the candidate is the next circuit gate on
// that wire, and symmetrically for following neighbours. All constraints
// must agree on a single candidate.
//
// The match is accepted only if the matched set is a pure window region:
// every gate between the first and last matched index that touches a
// matched qubit is itself matched. That invariant makes the match a convex
// region (§3), so replacement is always semantics-preserving.
func matchAt(c *circuit.Circuit, d *circuit.DAG, r *Rule, anchor int, s *matchScratch) (*Match, bool) {
	s.ensure(c, r)
	m, ok := s.match(c, d, r, anchor)
	// Restore the scratch invariants regardless of where matching bailed.
	for pq := 0; pq < r.NumQubits; pq++ {
		if cq := s.qmap[pq]; cq >= 0 {
			s.rq[cq] = -1
			s.qmap[pq] = -1
		}
	}
	s.taken = s.taken[:0]
	return m, ok
}

func (s *matchScratch) match(c *circuit.Circuit, d *circuit.DAG, r *Rule, anchor int) (*Match, bool) {
	first := c.Gates[anchor]
	pg0 := r.Pattern[0]
	if first.Name != pg0.Name || len(first.Qubits) != len(pg0.Qubits) {
		return nil, false
	}
	for i := 0; i < r.NumVars; i++ {
		s.bound[i] = false
	}
	for i, p := range pg0.Params {
		if !matchParam(p, first.Params[i], s.binding, s.bound) {
			return nil, false
		}
	}
	for k, pq := range pg0.Qubits {
		cq := first.Qubits[k]
		if s.rq[cq] >= 0 {
			return nil, false
		}
		s.qmap[pq] = cq
		s.rq[cq] = pq
	}
	for i := range r.Pattern {
		s.matched[i] = false
	}
	s.pos[0] = anchor
	s.matched[0] = true
	s.taken = append(s.taken[:0], anchor)

	for _, gi := range r.matchOrder[1:] {
		pg := r.Pattern[gi]
		cand := -1
		for k, pq := range pg.Qubits {
			cq := s.qmap[pq]
			if pp := r.prevPat[gi][k]; pp >= 0 && s.matched[pp] {
				// cq is mapped: the neighbour uses the same pattern wire.
				nxt := d.NextOnWire(s.pos[pp], cq)
				if nxt < 0 || (cand >= 0 && cand != nxt) {
					return nil, false
				}
				cand = nxt
			}
			if np := r.nextPat[gi][k]; np >= 0 && s.matched[np] {
				prv := d.PrevOnWire(s.pos[np], cq)
				if prv < 0 || (cand >= 0 && cand != prv) {
					return nil, false
				}
				cand = prv
			}
		}
		if cand < 0 || intsContain(s.taken, cand) {
			return nil, false
		}
		g := c.Gates[cand]
		if g.Name != pg.Name || len(g.Qubits) != len(pg.Qubits) {
			return nil, false
		}
		for k, pq := range pg.Qubits {
			cq := g.Qubits[k]
			switch {
			case s.qmap[pq] == cq:
			case s.qmap[pq] < 0:
				if s.rq[cq] >= 0 {
					return nil, false
				}
				s.qmap[pq] = cq
				s.rq[cq] = pq
			default:
				return nil, false
			}
		}
		for i, p := range pg.Params {
			if !matchParam(p, g.Params[i], s.binding, s.bound) {
				return nil, false
			}
		}
		s.pos[gi] = cand
		s.matched[gi] = true
		s.taken = append(s.taken, cand)
	}

	// Sort the matched indices ascending (insertion sort: ≤ |pattern|).
	for i := 1; i < len(s.taken); i++ {
		for j := i; j > 0 && s.taken[j] < s.taken[j-1]; j-- {
			s.taken[j], s.taken[j-1] = s.taken[j-1], s.taken[j]
		}
	}
	lo, hi := s.taken[0], s.taken[len(s.taken)-1]
	// Window purity: any gate in [lo,hi] touching a matched qubit must be
	// in the match.
	ti := 0
	for i := lo; i <= hi; i++ {
		if ti < len(s.taken) && s.taken[ti] == i {
			ti++
			continue
		}
		for _, q := range c.Gates[i].Qubits {
			if s.rq[q] >= 0 {
				return nil, false
			}
		}
	}
	indices := make([]int, len(s.taken))
	copy(indices, s.taken)
	qm := make([]int, r.NumQubits)
	copy(qm, s.qmap[:r.NumQubits])
	bd := make([]float64, r.NumVars)
	copy(bd, s.binding[:r.NumVars])
	return &Match{
		Rule: r, Indices: indices, QubitMap: qm,
		Binding: bd, Lo: lo, Hi: hi,
	}, true
}

func intsContain(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// findMatches is the shared greedy scan behind FindMatches and the Engine:
// non-overlapping matches of r collected from start, wrapping around, in
// anchor order. used must be all-false with length len(c.Gates). fail, when
// non-nil, is the Engine's per-anchor negative cache: anchors marked
// non-zero are skipped without rematching, and fresh failures are recorded
// into it — sound because matchAt is a pure function of the circuit around
// the anchor, and the Engine clears entries whose neighbourhood changed.
// st, when non-nil, accumulates cache-effectiveness counters.
func findMatches(c *circuit.Circuit, d *circuit.DAG, r *Rule, start int, s *matchScratch, used []bool, fail []byte, out []*Match, st *EngineStats) []*Match {
	n := len(c.Gates)
	if start < 0 {
		start = 0
	}
	for k := 0; k < n; k++ {
		anchor := (start + k) % n
		if used[anchor] {
			continue
		}
		if fail != nil && fail[anchor] != 0 {
			if st != nil {
				st.CacheSkips++
			}
			continue
		}
		if st != nil {
			st.MatchCalls++
		}
		m, ok := matchAt(c, d, r, anchor, s)
		if !ok {
			if fail != nil {
				fail[anchor] = 1
			}
			continue
		}
		clash := false
		for i := m.Lo; i <= m.Hi; i++ {
			if used[i] {
				clash = true
				break
			}
		}
		if clash {
			continue
		}
		for i := m.Lo; i <= m.Hi; i++ {
			used[i] = true
		}
		out = append(out, m)
	}
	return out
}

// FindMatches scans the whole circuit and returns all non-overlapping
// matches of r, greedily from the given start index, wrapping around. This
// implements the full-pass strategy of §5.3: "perform a full pass through
// the circuit, replacing every disjoint match". Matches whose windows
// overlap an earlier match are skipped.
func FindMatches(c *circuit.Circuit, r *Rule, start int) []*Match {
	n := len(c.Gates)
	if n == 0 {
		return nil
	}
	d := circuit.BuildDAG(c)
	return findMatches(c, d, r, start, newMatchScratch(), make([]bool, n), nil, nil, nil)
}

// MatchAt exposes single-site matching for tests and the beam-search
// baseline.
func MatchAt(c *circuit.Circuit, d *circuit.DAG, r *Rule, anchor int) (*Match, bool) {
	return matchAt(c, d, r, anchor, newMatchScratch())
}

// Apply replaces every given match in one pass, producing a new circuit.
// Matches must be non-overlapping (as produced by FindMatches).
func Apply(c *circuit.Circuit, matches []*Match) *circuit.Circuit {
	if len(matches) == 0 {
		return c
	}
	sorted := make([]*Match, len(matches))
	copy(sorted, matches)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })

	out := circuit.New(c.NumQubits)
	startAt := map[int]*Match{}
	sel := map[int]bool{}
	for _, m := range sorted {
		startAt[m.Lo] = m
		for _, i := range m.Indices {
			sel[i] = true
		}
	}
	i := 0
	for i < len(c.Gates) {
		m, startsHere := startAt[i]
		if !startsHere {
			out.Gates = append(out.Gates, c.Gates[i])
			i++
			continue
		}
		// Emit unmatched window gates (they touch no matched qubit), then
		// the instantiated replacement.
		for j := m.Lo; j <= m.Hi; j++ {
			if !sel[j] {
				out.Gates = append(out.Gates, c.Gates[j])
			}
		}
		for _, g := range m.Rule.ReplacementCircuitAt(m.Binding) {
			ng := g.Clone()
			for k, pq := range ng.Qubits {
				ng.Qubits[k] = m.QubitMap[pq]
			}
			out.Gates = append(out.Gates, ng)
		}
		i = m.Hi + 1
	}
	return out
}

// FullPass runs FindMatches + Apply for one rule starting at the given
// anchor, returning the rewritten circuit and the number of sites replaced.
// When nothing matches, the original circuit is returned unchanged.
//
// FullPass is the pure, stateless API: it rebuilds the DAG and rescans
// every anchor on each call. Iterated callers (the GUOQ loop, fixed-pass
// pipelines) should prefer an Engine, which keeps both incrementally.
func FullPass(c *circuit.Circuit, r *Rule, start int) (*circuit.Circuit, int) {
	ms := FindMatches(c, r, start)
	if len(ms) == 0 {
		return c, 0
	}
	return Apply(c, ms), len(ms)
}
