package rewrite

import (
	"sort"

	"github.com/guoq-dev/guoq/internal/circuit"
)

// Match records one occurrence of a rule pattern in a circuit: the matched
// gate indices (ascending), the qubit mapping (pattern-local → global), and
// the bound angle variables.
//
// QubitMap and Binding are functions of the matched gates alone, so they
// stay valid while the gates are unchanged even as splices elsewhere shift
// indices; Indices/Lo/Hi are positional and are recomputed by replay (see
// the Engine's positive match cache).
type Match struct {
	Rule     *Rule
	Indices  []int
	QubitMap []int // QubitMap[patternQubit] = circuit qubit (-1 if unused)
	Binding  []float64
	Lo, Hi   int // window bounds (min/max of Indices)
}

// matchScratch holds the matcher's working state so that repeated matching
// — a full pass, or the Engine's cached rescan — allocates nothing on the
// failure path (the overwhelmingly common one). Between calls the scratch
// maintains the invariants: qmap and rq all -1, taken empty. A successful
// match copies its bindings out into a fresh Match, so the scratch can be
// reused immediately.
type matchScratch struct {
	binding []float64
	bound   []bool
	qmap    []int // pattern qubit -> circuit qubit, -1 unused
	rq      []int // circuit qubit -> pattern qubit, -1 unused
	pos     []int // pattern gate -> circuit index
	matched []bool
	taken   []int // circuit indices matched so far

	// probe, when non-nil, records every circuit gate the attempt inspects
	// (the analysis package's halo audit). Nil on all production paths.
	probe *ProbeTrace
}

// ProbeTrace records the circuit-gate reads of one match attempt, split by
// how much of the gate the matcher examined. Full reads (anchor and wire-
// navigation candidates: name, params, qubits) must stay within the rule's
// declared HaloDepth of the anchor — that is the soundness premise of the
// Engine's cached verdicts. QubitOnly reads come from the window-purity
// scan, which tests only whether an index-interval gate touches a matched
// wire; a gate that does touch one is wire-adjacent to the match and hence
// inside the halo, while a disjoint gate influences the verdict only
// through that disjointness, which splice invalidation re-establishes (any
// replacement gate landing on a matched wire sits inside the halo walked
// from the splice site). analysis.CheckLibrary audits the two classes
// separately.
type ProbeTrace struct {
	Full      []int
	QubitOnly []int
}

// ProbeMatchReads runs one full match attempt of r anchored at anchor —
// cold, with no cache — and returns the trace of circuit gates it read,
// plus whether the pattern matched. It is the probe hook behind the
// analysis package's randomized halo audit and is not used by the Engine.
func ProbeMatchReads(c *circuit.Circuit, d *circuit.DAG, r *Rule, anchor int) (ProbeTrace, bool) {
	s := newMatchScratch()
	s.probe = &ProbeTrace{}
	_, ok := matchAt(c, d, r, anchor, s)
	return *s.probe, ok
}

func newMatchScratch() *matchScratch { return &matchScratch{} }

func (s *matchScratch) ensure(c *circuit.Circuit, r *Rule) {
	for len(s.rq) < c.NumQubits {
		s.rq = append(s.rq, -1)
	}
	for len(s.qmap) < r.NumQubits {
		s.qmap = append(s.qmap, -1)
	}
	if len(s.binding) < r.NumVars {
		s.binding = make([]float64, r.NumVars)
		s.bound = make([]bool, r.NumVars)
	}
	if len(s.pos) < len(r.Pattern) {
		s.pos = make([]int, len(r.Pattern))
		s.matched = make([]bool, len(r.Pattern))
	}
}

// matchAt attempts to match rule r with its anchor (pattern gate 0) at
// circuit gate index anchor. Pattern gates are matched in the rule's BFS
// order: each new pattern gate is located through a wire-adjacency
// constraint against an already-matched neighbour — if the neighbour
// precedes it on a pattern wire, the candidate is the next circuit gate on
// that wire, and symmetrically for following neighbours. All constraints
// must agree on a single candidate.
//
// The match is accepted only if the matched set is a pure window region:
// every gate between the first and last matched index that touches a
// matched qubit is itself matched. That invariant makes the match a convex
// region (§3), so replacement is always semantics-preserving.
//
//guoq:hotpath
func matchAt(c *circuit.Circuit, d *circuit.DAG, r *Rule, anchor int, s *matchScratch) (*Match, bool) {
	s.ensure(c, r)
	m, ok := s.match(c, d, r, anchor)
	// Restore the scratch invariants regardless of where matching bailed.
	for pq := 0; pq < r.NumQubits; pq++ {
		if cq := s.qmap[pq]; cq >= 0 {
			s.rq[cq] = -1
			s.qmap[pq] = -1
		}
	}
	s.taken = s.taken[:0]
	return m, ok
}

//guoq:hotpath
func (s *matchScratch) match(c *circuit.Circuit, d *circuit.DAG, r *Rule, anchor int) (*Match, bool) {
	first := c.Gates[anchor]
	if s.probe != nil {
		s.probe.Full = append(s.probe.Full, anchor)
	}
	pg0 := r.Pattern[0]
	if first.Name != pg0.Name || len(first.Qubits) != len(pg0.Qubits) {
		return nil, false
	}
	for i := 0; i < r.NumVars; i++ {
		s.bound[i] = false
	}
	for i, p := range pg0.Params {
		if !matchParam(p, first.Params[i], s.binding, s.bound) {
			return nil, false
		}
	}
	for k, pq := range pg0.Qubits {
		cq := first.Qubits[k]
		if s.rq[cq] >= 0 {
			return nil, false
		}
		s.qmap[pq] = cq
		s.rq[cq] = pq
	}
	for i := range r.Pattern {
		s.matched[i] = false
	}
	s.pos[0] = anchor
	s.matched[0] = true
	s.taken = append(s.taken[:0], anchor)

	for _, gi := range r.matchOrder[1:] {
		pg := r.Pattern[gi]
		cand := -1
		for k, pq := range pg.Qubits {
			cq := s.qmap[pq]
			if pp := r.prevPat[gi][k]; pp >= 0 && s.matched[pp] {
				// cq is mapped: the neighbour uses the same pattern wire.
				nxt := d.NextOnWire(s.pos[pp], cq)
				if nxt < 0 || (cand >= 0 && cand != nxt) {
					return nil, false
				}
				cand = nxt
			}
			if np := r.nextPat[gi][k]; np >= 0 && s.matched[np] {
				prv := d.PrevOnWire(s.pos[np], cq)
				if prv < 0 || (cand >= 0 && cand != prv) {
					return nil, false
				}
				cand = prv
			}
		}
		if cand < 0 || intsContain(s.taken, cand) {
			return nil, false
		}
		if s.probe != nil {
			s.probe.Full = append(s.probe.Full, cand)
		}
		g := c.Gates[cand]
		if g.Name != pg.Name || len(g.Qubits) != len(pg.Qubits) {
			return nil, false
		}
		for k, pq := range pg.Qubits {
			cq := g.Qubits[k]
			switch {
			case s.qmap[pq] == cq:
			case s.qmap[pq] < 0:
				if s.rq[cq] >= 0 {
					return nil, false
				}
				s.qmap[pq] = cq
				s.rq[cq] = pq
			default:
				return nil, false
			}
		}
		for i, p := range pg.Params {
			if !matchParam(p, g.Params[i], s.binding, s.bound) {
				return nil, false
			}
		}
		s.pos[gi] = cand
		s.matched[gi] = true
		s.taken = append(s.taken, cand)
	}

	// Sort the matched indices ascending (insertion sort: ≤ |pattern|).
	for i := 1; i < len(s.taken); i++ {
		for j := i; j > 0 && s.taken[j] < s.taken[j-1]; j-- {
			s.taken[j], s.taken[j-1] = s.taken[j-1], s.taken[j]
		}
	}
	lo, hi := s.taken[0], s.taken[len(s.taken)-1]
	// Window purity: any gate in [lo,hi] touching a matched qubit must be
	// in the match.
	ti := 0
	for i := lo; i <= hi; i++ {
		if ti < len(s.taken) && s.taken[ti] == i {
			ti++
			continue
		}
		if s.probe != nil {
			s.probe.QubitOnly = append(s.probe.QubitOnly, i)
		}
		for _, q := range c.Gates[i].Qubits {
			if s.rq[q] >= 0 {
				return nil, false
			}
		}
	}
	indices := make([]int, len(s.taken))
	copy(indices, s.taken)
	qm := make([]int, r.NumQubits)
	copy(qm, s.qmap[:r.NumQubits])
	bd := make([]float64, r.NumVars)
	copy(bd, s.binding[:r.NumVars])
	return &Match{
		Rule: r, Indices: indices, QubitMap: qm,
		Binding: bd, Lo: lo, Hi: hi,
	}, true
}

// replayAt refreshes a cached positive match at an anchor whose
// neighbourhood is unchanged (the Engine's invalidation contract). Because
// QubitMap and Binding are index-free, only the gate positions need
// re-deriving, and that is pure DAG navigation: each pattern gate is
// located through its first available wire constraint, with no name,
// parameter, injectivity, or window-purity checks — those all held when the
// match was first computed and nothing in reach has changed since. The
// match is updated in place (no allocation). A false return means
// navigation fell off a wire, which a correct halo never produces for a
// live entry; callers treat it as a cache miss and rematch from scratch.
//
//guoq:hotpath
func replayAt(d *circuit.DAG, anchor int, m *Match, s *matchScratch) bool {
	r := m.Rule
	for i := range r.Pattern {
		s.matched[i] = false
	}
	s.pos[0] = anchor
	s.matched[0] = true
	for _, gi := range r.matchOrder[1:] {
		cand := -1
		for k, pq := range r.Pattern[gi].Qubits {
			cq := m.QubitMap[pq]
			if pp := r.prevPat[gi][k]; pp >= 0 && s.matched[pp] {
				cand = d.NextOnWire(s.pos[pp], cq)
				break
			}
			if np := r.nextPat[gi][k]; np >= 0 && s.matched[np] {
				cand = d.PrevOnWire(s.pos[np], cq)
				break
			}
		}
		if cand < 0 {
			return false
		}
		s.pos[gi] = cand
		s.matched[gi] = true
	}
	idx := m.Indices[:0]
	for gi := range r.Pattern {
		idx = append(idx, s.pos[gi])
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	m.Indices = idx
	m.Lo, m.Hi = idx[0], idx[len(idx)-1]
	return true
}

func intsContain(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// findMatches is the shared greedy scan behind FindMatches and the Engine:
// non-overlapping matches of r collected from start, wrapping around, in
// anchor order. used must be all-false with length len(c.Gates). rc, when
// non-nil, is the Engine's per-anchor match cache: anchors with a recorded
// no-match verdict are skipped without rematching, anchors with a cached
// positive match replay it by DAG navigation instead of re-running the
// matcher, and fresh verdicts of both kinds are recorded — sound because
// matchAt is a pure function of the circuit around the anchor, and the
// Engine clears entries whose neighbourhood changed. st, when non-nil,
// accumulates cache-effectiveness counters.
//
//guoq:hotpath
func findMatches(c *circuit.Circuit, d *circuit.DAG, r *Rule, start int, s *matchScratch, used []bool, rc *ruleCache, out []*Match, st *EngineStats) []*Match {
	n := len(c.Gates)
	if start < 0 {
		start = 0
	}
	for k := 0; k < n; k++ {
		anchor := (start + k) % n
		if used[anchor] {
			continue
		}
		var m *Match
		if rc != nil {
			switch rc.state[anchor] {
			case cacheNoMatch:
				if st != nil {
					st.CacheSkips++
				}
				continue
			case cacheMatch:
				cm := rc.posGet(anchor)
				s.ensure(c, r)
				if cm != nil && replayAt(d, anchor, cm, s) {
					if st != nil {
						st.PositiveHits++
					}
					m = cm
				} else {
					// Should not happen under the halo contract; fall back
					// to a full rematch rather than trust the entry.
					rc.state[anchor] = cacheUnknown
					rc.posDelete(anchor)
				}
			}
		}
		if m == nil {
			if st != nil {
				st.MatchCalls++
			}
			var ok bool
			m, ok = matchAt(c, d, r, anchor, s)
			if !ok {
				if rc != nil {
					rc.state[anchor] = cacheNoMatch
				}
				continue
			}
			if rc != nil {
				rc.state[anchor] = cacheMatch
				rc.posSet(anchor, m)
			}
		}
		clash := false
		for i := m.Lo; i <= m.Hi; i++ {
			if used[i] {
				clash = true
				break
			}
		}
		if clash {
			continue
		}
		for i := m.Lo; i <= m.Hi; i++ {
			used[i] = true
		}
		out = append(out, m)
	}
	return out
}

// FindMatches scans the whole circuit and returns all non-overlapping
// matches of r, greedily from the given start index, wrapping around. This
// implements the full-pass strategy of §5.3: "perform a full pass through
// the circuit, replacing every disjoint match". Matches whose windows
// overlap an earlier match are skipped.
func FindMatches(c *circuit.Circuit, r *Rule, start int) []*Match {
	n := len(c.Gates)
	if n == 0 {
		return nil
	}
	d := circuit.BuildDAG(c)
	return findMatches(c, d, r, start, newMatchScratch(), make([]bool, n), nil, nil, nil)
}

// MatchAt exposes single-site matching for tests and the beam-search
// baseline.
func MatchAt(c *circuit.Circuit, d *circuit.DAG, r *Rule, anchor int) (*Match, bool) {
	return matchAt(c, d, r, anchor, newMatchScratch())
}

// Apply replaces every given match in one pass, producing a new circuit.
// Matches must be non-overlapping (as produced by FindMatches).
func Apply(c *circuit.Circuit, matches []*Match) *circuit.Circuit {
	if len(matches) == 0 {
		return c
	}
	sorted := make([]*Match, len(matches))
	copy(sorted, matches)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })

	out := circuit.New(c.NumQubits)
	startAt := map[int]*Match{}
	sel := map[int]bool{}
	for _, m := range sorted {
		startAt[m.Lo] = m
		for _, i := range m.Indices {
			sel[i] = true
		}
	}
	i := 0
	for i < len(c.Gates) {
		m, startsHere := startAt[i]
		if !startsHere {
			out.Gates = append(out.Gates, c.Gates[i])
			i++
			continue
		}
		// Emit unmatched window gates (they touch no matched qubit), then
		// the instantiated replacement.
		for j := m.Lo; j <= m.Hi; j++ {
			if !sel[j] {
				out.Gates = append(out.Gates, c.Gates[j])
			}
		}
		for _, g := range m.Rule.ReplacementCircuitAt(m.Binding) {
			ng := g.Clone()
			for k, pq := range ng.Qubits {
				ng.Qubits[k] = m.QubitMap[pq]
			}
			out.Gates = append(out.Gates, ng)
		}
		i = m.Hi + 1
	}
	return out
}

// FullPass runs FindMatches + Apply for one rule starting at the given
// anchor, returning the rewritten circuit and the number of sites replaced.
// When nothing matches, the original circuit is returned unchanged.
//
// FullPass is the pure, stateless API: it rebuilds the DAG and rescans
// every anchor on each call. Iterated callers (the GUOQ loop, fixed-pass
// pipelines) should prefer an Engine, which keeps both incrementally.
func FullPass(c *circuit.Circuit, r *Rule, start int) (*circuit.Circuit, int) {
	ms := FindMatches(c, r, start)
	if len(ms) == 0 {
		return c, 0
	}
	return Apply(c, ms), len(ms)
}
