package rewrite

import (
	"sort"

	"github.com/guoq-dev/guoq/internal/circuit"
)

// Match records one occurrence of a rule pattern in a circuit: the matched
// gate indices (ascending), the qubit mapping (pattern-local → global), and
// the bound angle variables.
type Match struct {
	Rule     *Rule
	Indices  []int
	QubitMap []int // QubitMap[patternQubit] = circuit qubit (-1 if unused)
	Binding  []float64
	Lo, Hi   int // window bounds (min/max of Indices)
}

// matchAt attempts to match rule r with its anchor (pattern gate 0) at
// circuit gate index anchor. Pattern gates are matched in the rule's BFS
// order: each new pattern gate is located through a wire-adjacency
// constraint against an already-matched neighbour — if the neighbour
// precedes it on a pattern wire, the candidate is the next circuit gate on
// that wire, and symmetrically for following neighbours. All constraints
// must agree on a single candidate.
//
// The match is accepted only if the matched set is a pure window region:
// every gate between the first and last matched index that touches a
// matched qubit is itself matched. That invariant makes the match a convex
// region (§3), so replacement is always semantics-preserving.
func matchAt(c *circuit.Circuit, d *circuit.DAG, r *Rule, anchor int) (*Match, bool) {
	first := c.Gates[anchor]
	pg0 := r.Pattern[0]
	if first.Name != pg0.Name || len(first.Qubits) != len(pg0.Qubits) {
		return nil, false
	}
	binding := make([]float64, r.NumVars)
	bound := make([]bool, r.NumVars)
	for i, p := range pg0.Params {
		if !matchParam(p, first.Params[i], binding, bound) {
			return nil, false
		}
	}
	qmap := make([]int, r.NumQubits) // pattern qubit -> circuit qubit
	rmap := map[int]int{}            // circuit qubit -> pattern qubit
	for i := range qmap {
		qmap[i] = -1
	}
	for k, pq := range pg0.Qubits {
		cq := first.Qubits[k]
		if _, used := rmap[cq]; used {
			return nil, false
		}
		qmap[pq] = cq
		rmap[cq] = pq
	}
	pos := make([]int, len(r.Pattern)) // pattern gate -> circuit index
	matched := make([]bool, len(r.Pattern))
	pos[0] = anchor
	matched[0] = true
	taken := map[int]bool{anchor: true} // circuit indices already used

	for _, gi := range r.matchOrder[1:] {
		pg := r.Pattern[gi]
		cand := -1
		for k, pq := range pg.Qubits {
			cq := qmap[pq]
			if pp := r.prevPat[gi][k]; pp >= 0 && matched[pp] {
				// cq is mapped: the neighbour uses the same pattern wire.
				nxt := d.NextOnWire(pos[pp], cq)
				if nxt < 0 || (cand >= 0 && cand != nxt) {
					return nil, false
				}
				cand = nxt
			}
			if np := r.nextPat[gi][k]; np >= 0 && matched[np] {
				prv := d.PrevOnWire(pos[np], cq)
				if prv < 0 || (cand >= 0 && cand != prv) {
					return nil, false
				}
				cand = prv
			}
		}
		if cand < 0 || taken[cand] {
			return nil, false
		}
		g := c.Gates[cand]
		if g.Name != pg.Name || len(g.Qubits) != len(pg.Qubits) {
			return nil, false
		}
		for k, pq := range pg.Qubits {
			cq := g.Qubits[k]
			switch {
			case qmap[pq] == cq:
			case qmap[pq] < 0:
				if _, used := rmap[cq]; used {
					return nil, false
				}
				qmap[pq] = cq
				rmap[cq] = pq
			default:
				return nil, false
			}
		}
		for i, p := range pg.Params {
			if !matchParam(p, g.Params[i], binding, bound) {
				return nil, false
			}
		}
		pos[gi] = cand
		matched[gi] = true
		taken[cand] = true
	}

	indices := make([]int, len(pos))
	copy(indices, pos)
	sort.Ints(indices)
	lo, hi := indices[0], indices[len(indices)-1]
	// Window purity: any gate in [lo,hi] touching a matched qubit must be
	// in the match.
	for i := lo; i <= hi; i++ {
		if taken[i] {
			continue
		}
		for _, q := range c.Gates[i].Qubits {
			if _, mapped := rmap[q]; mapped {
				return nil, false
			}
		}
	}
	return &Match{
		Rule: r, Indices: indices, QubitMap: qmap,
		Binding: binding, Lo: lo, Hi: hi,
	}, true
}

// FindMatches scans the whole circuit and returns all non-overlapping
// matches of r, greedily from the given start index, wrapping around. This
// implements the full-pass strategy of §5.3: "perform a full pass through
// the circuit, replacing every disjoint match". Matches whose windows
// overlap an earlier match are skipped.
func FindMatches(c *circuit.Circuit, r *Rule, start int) []*Match {
	n := len(c.Gates)
	if n == 0 {
		return nil
	}
	d := circuit.BuildDAG(c)
	used := make([]bool, n)
	var out []*Match
	if start < 0 {
		start = 0
	}
	for k := 0; k < n; k++ {
		anchor := (start + k) % n
		if used[anchor] {
			continue
		}
		m, ok := matchAt(c, d, r, anchor)
		if !ok {
			continue
		}
		clash := false
		for i := m.Lo; i <= m.Hi; i++ {
			if used[i] {
				clash = true
				break
			}
		}
		if clash {
			continue
		}
		for i := m.Lo; i <= m.Hi; i++ {
			used[i] = true
		}
		out = append(out, m)
	}
	return out
}

// MatchAt exposes single-site matching for tests and the beam-search
// baseline.
func MatchAt(c *circuit.Circuit, d *circuit.DAG, r *Rule, anchor int) (*Match, bool) {
	return matchAt(c, d, r, anchor)
}

// Apply replaces every given match in one pass, producing a new circuit.
// Matches must be non-overlapping (as produced by FindMatches).
func Apply(c *circuit.Circuit, matches []*Match) *circuit.Circuit {
	if len(matches) == 0 {
		return c
	}
	sorted := make([]*Match, len(matches))
	copy(sorted, matches)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })

	out := circuit.New(c.NumQubits)
	startAt := map[int]*Match{}
	sel := map[int]bool{}
	for _, m := range sorted {
		startAt[m.Lo] = m
		for _, i := range m.Indices {
			sel[i] = true
		}
	}
	i := 0
	for i < len(c.Gates) {
		m, startsHere := startAt[i]
		if !startsHere {
			out.Gates = append(out.Gates, c.Gates[i])
			i++
			continue
		}
		// Emit unmatched window gates (they touch no matched qubit), then
		// the instantiated replacement.
		for j := m.Lo; j <= m.Hi; j++ {
			if !sel[j] {
				out.Gates = append(out.Gates, c.Gates[j])
			}
		}
		for _, g := range m.Rule.ReplacementCircuitAt(m.Binding) {
			ng := g.Clone()
			for k, pq := range ng.Qubits {
				ng.Qubits[k] = m.QubitMap[pq]
			}
			out.Gates = append(out.Gates, ng)
		}
		i = m.Hi + 1
	}
	return out
}

// FullPass runs FindMatches + Apply for one rule starting at the given
// anchor, returning the rewritten circuit and the number of sites replaced.
// When nothing matches, the original circuit is returned unchanged.
func FullPass(c *circuit.Circuit, r *Rule, start int) (*circuit.Circuit, int) {
	ms := FindMatches(c, r, start)
	if len(ms) == 0 {
		return c, 0
	}
	return Apply(c, ms), len(ms)
}
