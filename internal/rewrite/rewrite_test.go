package rewrite

import (
	"math"
	"math/rand"
	"testing"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/linalg"
)

const tol = 1e-9

// TestAllRulesSound machine-verifies every registered rule: pattern ≡
// replacement (mod global phase) at many randomized variable bindings.
func TestAllRulesSound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for lib, rules := range AllLibraries() {
		if len(rules) == 0 {
			t.Errorf("library %s is empty", lib)
		}
		for _, r := range rules {
			for trial := 0; trial < 25; trial++ {
				binding := make([]float64, r.NumVars)
				for i := range binding {
					binding[i] = rng.Float64()*2*math.Pi - math.Pi
				}
				if d := r.Verify(binding); d > tol {
					t.Errorf("%s: unsound at binding %v (Δ = %g)", r.Name, binding, d)
					break
				}
			}
		}
	}
}

// TestRulesNotSizeIncreasing checks the GUOQ instantiation constraint of §6:
// no size-increasing rules — except rules that strictly reduce two-qubit
// gate count (the primary cost), like dissolving rxx(π) into local flips.
func TestRulesNotSizeIncreasing(t *testing.T) {
	twoQ := func(gs []PatGate) int {
		n := 0
		for _, g := range gs {
			if len(g.Qubits) == 2 {
				n++
			}
		}
		return n
	}
	twoQRep := func(gs []RepGate) int {
		n := 0
		for _, g := range gs {
			if len(g.Qubits) == 2 {
				n++
			}
		}
		return n
	}
	for lib, rules := range AllLibraries() {
		for _, r := range rules {
			if r.Delta() > 0 && twoQRep(r.Replacement) >= twoQ(r.Pattern) {
				t.Errorf("%s/%s: size-increasing rule (Δ=%+d) without 2q reduction",
					lib, r.Name, r.Delta())
			}
		}
	}
}

// TestRulesNativeToTheirGateSet checks that each library's patterns and
// replacements only mention gates of its gate set.
func TestRulesNativeToTheirGateSet(t *testing.T) {
	for lib, rules := range AllLibraries() {
		gs, err := gateset.ByName(lib)
		if err != nil {
			t.Fatalf("library %s has no gate set: %v", lib, err)
		}
		for _, r := range rules {
			for _, pg := range r.Pattern {
				if !gs.Contains(pg.Name) {
					t.Errorf("%s: pattern gate %s not native", r.Name, pg.Name)
				}
			}
			for _, rg := range r.Replacement {
				if !gs.Contains(rg.Name) {
					t.Errorf("%s: replacement gate %s not native", r.Name, rg.Name)
				}
			}
		}
	}
}

func findRule(t *testing.T, lib, name string) *Rule {
	t.Helper()
	rules, err := RulesFor(lib)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("rule %s not found in %s", name, lib)
	return nil
}

func TestFullPassCXCancel(t *testing.T) {
	c := circuit.New(3)
	c.Append(gate.NewCX(0, 1), gate.NewCX(0, 1), gate.NewCX(1, 2), gate.NewCX(1, 2))
	r := findRule(t, "nam", "nam/cx-cx")
	out, n := FullPass(c, r, 0)
	if n != 2 || out.Len() != 0 {
		t.Fatalf("FullPass replaced %d sites, %d gates left", n, out.Len())
	}
}

func TestFullPassPaperFig4(t *testing.T) {
	// Fig. 4: rz(π/2) q0; cx q0 q1; rz(π/2) q0; h q1 →(3c) →(3d) rz(π) q0 ...
	c := circuit.New(2)
	c.Append(
		gate.NewRz(math.Pi/2, 0),
		gate.NewCX(0, 1),
		gate.NewRz(math.Pi/2, 0),
		gate.NewH(1),
	)
	orig := c.Unitary()
	// Apply the commute rule (Fig. 3c), then the merge rule (Fig. 3d).
	commute := findRule(t, "nam", "nam/cx-control-rz")
	c2, n := FullPass(c, commute, 0)
	if n != 1 {
		t.Fatalf("commute matched %d times, want 1", n)
	}
	merge := findRule(t, "nam", "nam/rz-merge")
	c3, n := FullPass(c2, merge, 0)
	if n != 1 {
		t.Fatalf("merge matched %d times, want 1", n)
	}
	if got := c3.Len(); got != 3 {
		t.Fatalf("expected 3 gates after Fig. 4 sequence, got %d:\n%v", got, c3)
	}
	if !linalg.EqualUpToPhase(c3.Unitary(), orig, tol) {
		t.Fatal("Fig. 4 rewrite changed semantics")
	}
	// The merged rotation is rz(π).
	found := false
	for _, g := range c3.Gates {
		if g.Name == gate.Rz && math.Abs(linalg.NormAngle(g.Params[0]-math.Pi)) < tol {
			found = true
		}
	}
	if !found {
		t.Fatalf("no rz(π) in result:\n%v", c3)
	}
}

func TestCXReversalMatch(t *testing.T) {
	// The 5-gate reversal pattern has parallel H gates — exercises the BFS
	// matcher with prev-side constraints.
	c := circuit.New(2)
	c.Append(gate.NewH(0), gate.NewH(1), gate.NewCX(0, 1), gate.NewH(0), gate.NewH(1))
	orig := c.Unitary()
	r := findRule(t, "nam", "nam/cx-reversal")
	out, n := FullPass(c, r, 0)
	if n != 1 || out.Len() != 1 {
		t.Fatalf("reversal: %d matches, %d gates:\n%v", n, out.Len(), out)
	}
	if out.Gates[0].Qubits[0] != 1 || out.Gates[0].Qubits[1] != 0 {
		t.Fatalf("reversed cx has wrong qubits: %v", out.Gates[0])
	}
	if !linalg.EqualUpToPhase(out.Unitary(), orig, tol) {
		t.Fatal("reversal changed semantics")
	}
}

func TestMatchRejectsInterferingGate(t *testing.T) {
	// cx; x(target); cx must NOT match cx-cx cancellation.
	c := circuit.New(2)
	c.Append(gate.NewCX(0, 1), gate.NewX(1), gate.NewCX(0, 1))
	r := findRule(t, "nam", "nam/cx-cx")
	_, n := FullPass(c, r, 0)
	if n != 0 {
		t.Fatal("matched across an interfering gate")
	}
	// A spectator on an unrelated qubit does not interfere.
	c2 := circuit.New(3)
	c2.Append(gate.NewCX(0, 1), gate.NewX(2), gate.NewCX(0, 1))
	out, n := FullPass(c2, r, 0)
	if n != 1 || out.Len() != 1 {
		t.Fatalf("spectator blocked the match: n=%d len=%d", n, out.Len())
	}
}

func TestMatchBindsAngles(t *testing.T) {
	c := circuit.New(1)
	c.Append(gate.NewRz(0.3, 0), gate.NewRz(0.4, 0))
	r := findRule(t, "nam", "nam/rz-merge")
	out, n := FullPass(c, r, 0)
	if n != 1 || out.Len() != 1 {
		t.Fatalf("merge failed: n=%d", n)
	}
	if math.Abs(out.Gates[0].Params[0]-0.7) > tol {
		t.Fatalf("merged angle = %g, want 0.7", out.Gates[0].Params[0])
	}
}

func TestMatchConstParam(t *testing.T) {
	r := findRule(t, "nam", "nam/h-z-h")
	c := circuit.New(1)
	c.Append(gate.NewH(0), gate.NewRz(math.Pi, 0), gate.NewH(0))
	_, n := FullPass(c, r, 0)
	if n != 1 {
		t.Fatal("const π param should match rz(π)")
	}
	// rz(-π) ≡ rz(π) mod 2π — must also match.
	c2 := circuit.New(1)
	c2.Append(gate.NewH(0), gate.NewRz(-math.Pi, 0), gate.NewH(0))
	_, n = FullPass(c2, r, 0)
	if n != 1 {
		t.Fatal("rz(-π) should match the π constant (mod 2π)")
	}
	// Other angles must not match.
	c3 := circuit.New(1)
	c3.Append(gate.NewH(0), gate.NewRz(0.5, 0), gate.NewH(0))
	_, n = FullPass(c3, r, 0)
	if n != 0 {
		t.Fatal("rz(0.5) must not match the π constant")
	}
}

func TestRepeatedVarMustAgree(t *testing.T) {
	r := MustRule("test/rz-same-angle", 1, 1,
		[]PatGate{P(gate.Rz, []PatParam{V(0)}, 0), P(gate.Rz, []PatParam{V(0)}, 0)},
		[]RepGate{Rep(gate.Rz, []ParamExpr{{Coeffs: map[int]float64{0: 2}}}, 0)})
	c := circuit.New(1)
	c.Append(gate.NewRz(0.3, 0), gate.NewRz(0.3, 0))
	if _, n := FullPass(c, r, 0); n != 1 {
		t.Fatal("equal angles should match repeated var")
	}
	c2 := circuit.New(1)
	c2.Append(gate.NewRz(0.3, 0), gate.NewRz(0.4, 0))
	if _, n := FullPass(c2, r, 0); n != 0 {
		t.Fatal("unequal angles must not match repeated var")
	}
}

// TestFullPassPreservesSemantics fuzzes every rule library against random
// native circuits: every full pass must preserve the unitary.
func TestFullPassPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for lib, rules := range AllLibraries() {
		gs, _ := gateset.ByName(lib)
		vocab := gs.Gates
		for trial := 0; trial < 30; trial++ {
			c := circuit.Random(4, 24, vocab, rng)
			u := c.Unitary()
			for _, r := range rules {
				out, n := FullPass(c, r, rng.Intn(c.Len()))
				if n == 0 {
					continue
				}
				if !linalg.EqualUpToPhase(out.Unitary(), u, 1e-8) {
					t.Fatalf("%s: full pass broke semantics (lib %s, trial %d)", r.Name, lib, trial)
				}
			}
		}
	}
}

// TestCleanupPreservesSemantics fuzzes the cleanup pass.
func TestCleanupPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, gs := range gateset.All() {
		for trial := 0; trial < 40; trial++ {
			c := circuit.Random(4, 30, gs.Gates, rng)
			u := c.Unitary()
			out := Cleanup(c, gs.Name)
			if out.Len() > c.Len() {
				t.Fatalf("%s: cleanup grew the circuit", gs.Name)
			}
			if !linalg.EqualUpToPhase(out.Unitary(), u, 1e-8) {
				t.Fatalf("%s trial %d: cleanup broke semantics\nin:  %v\nout: %v",
					gs.Name, trial, c, out)
			}
			if !gs.IsNative(out) {
				t.Fatalf("%s: cleanup emitted non-native gates", gs.Name)
			}
		}
	}
}

func TestCleanupCancelsObviousPairs(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.NewH(0), gate.NewH(0), gate.NewT(1), gate.NewTdg(1),
		gate.NewCX(0, 1), gate.NewCX(0, 1))
	out := Cleanup(c, "cliffordt")
	if out.Len() != 0 {
		t.Fatalf("cleanup left %d gates:\n%v", out.Len(), out)
	}
}

func TestCleanupMergesPhaseRuns(t *testing.T) {
	c := circuit.New(1)
	c.Append(gate.NewT(0), gate.NewT(0), gate.NewT(0), gate.NewT(0))
	out := Cleanup(c, "cliffordt")
	// t·t·t·t = z = s·s.
	if out.Len() != 2 || out.Gates[0].Name != gate.S || out.Gates[1].Name != gate.S {
		t.Fatalf("t^4 should clean to s·s, got:\n%v", out)
	}
	// In a continuous set the same run becomes one rz.
	c2 := circuit.New(1)
	c2.Append(gate.NewRz(0.5, 0), gate.NewRz(0.25, 0), gate.NewRz(-0.75, 0))
	out2 := Cleanup(c2, "nam")
	if out2.Len() != 0 {
		t.Fatalf("zero-sum rz run should vanish, got:\n%v", out2)
	}
}

func TestCleanupStackRestoration(t *testing.T) {
	// After h·h cancels, the t gates on both sides become adjacent and must
	// also merge: t h h t -> s.
	c := circuit.New(1)
	c.Append(gate.NewT(0), gate.NewH(0), gate.NewH(0), gate.NewT(0))
	out := Cleanup(c, "cliffordt")
	if out.Len() != 1 || out.Gates[0].Name != gate.S {
		t.Fatalf("t h h t should clean to s, got:\n%v", out)
	}
}

func TestFuse1QPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, gs := range gateset.All() {
		if !gs.Continuous() {
			continue
		}
		for trial := 0; trial < 30; trial++ {
			c := circuit.Random(3, 24, gs.Gates, rng)
			u := c.Unitary()
			out := Fuse1Q(c, gs)
			if out.Len() > c.Len() {
				t.Fatalf("%s: fuse grew the circuit %d -> %d", gs.Name, c.Len(), out.Len())
			}
			if !linalg.EqualUpToPhase(out.Unitary(), u, 1e-8) {
				t.Fatalf("%s trial %d: fuse broke semantics", gs.Name, trial)
			}
			if !gs.IsNative(out) {
				t.Fatalf("%s: fuse emitted non-native gates", gs.Name)
			}
		}
	}
}

func TestFuse1QCollapsesRun(t *testing.T) {
	c := circuit.New(1)
	c.Append(gate.NewU3(0.3, 0.4, 0.5, 0), gate.NewU3(1.1, -0.2, 0.9, 0),
		gate.NewU1(0.7, 0), gate.NewU2(0.1, 0.2, 0))
	out := Fuse1Q(c, gateset.IBMQ20)
	if out.Len() != 1 {
		t.Fatalf("4-gate run should fuse to 1 u3, got %d:\n%v", out.Len(), out)
	}
}

func TestNewRuleValidation(t *testing.T) {
	// Disconnected pattern must be rejected.
	_, err := NewRule("bad/disconnected", 2, 0,
		[]PatGate{P(gate.H, nil, 0), P(gate.H, nil, 1)},
		nil)
	if err == nil {
		t.Fatal("disconnected pattern accepted")
	}
	// Empty pattern rejected.
	if _, err := NewRule("bad/empty", 1, 0, nil, nil); err == nil {
		t.Fatal("empty pattern accepted")
	}
	// Wrong arity rejected.
	if _, err := NewRule("bad/arity", 1, 0,
		[]PatGate{{Name: gate.CX, Qubits: []int{0}}}, nil); err == nil {
		t.Fatal("wrong arity accepted")
	}
	// Out-of-range qubit rejected.
	if _, err := NewRule("bad/qubit", 1, 0,
		[]PatGate{P(gate.H, nil, 5)}, nil); err == nil {
		t.Fatal("out-of-range qubit accepted")
	}
}

func TestRulesForUnknown(t *testing.T) {
	if _, err := RulesFor("nope"); err == nil {
		t.Fatal("RulesFor(nope) should fail")
	}
}
