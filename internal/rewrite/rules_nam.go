package rewrite

import (
	"math"

	"github.com/guoq-dev/guoq/internal/gate"
)

// Rule library for the Nam gate set {rz, h, x, cx}. These mirror the
// QUESO-style small-pattern rules (≤ 5 gates): cancellations, merges,
// commutations (size-neutral moves that unlock later reductions), and the
// classic CX-reversal collapse. Every rule is verified by TestAllRulesSound.

func namRules() []*Rule {
	var rs []*Rule
	add := func(r *Rule) { rs = append(rs, r) }

	// --- cancellations (Fig. 3a and friends) ---
	add(MustRule("nam/h-h", 1, 0,
		[]PatGate{P(gate.H, nil, 0), P(gate.H, nil, 0)},
		nil))
	add(MustRule("nam/x-x", 1, 0,
		[]PatGate{P(gate.X, nil, 0), P(gate.X, nil, 0)},
		nil))
	add(MustRule("nam/cx-cx", 2, 0,
		[]PatGate{P(gate.CX, nil, 0, 1), P(gate.CX, nil, 0, 1)},
		nil))

	// --- merges (Fig. 3d) ---
	add(MustRule("nam/rz-merge", 1, 2,
		[]PatGate{P(gate.Rz, []PatParam{V(0)}, 0), P(gate.Rz, []PatParam{V(1)}, 0)},
		[]RepGate{Rep(gate.Rz, []ParamExpr{ESum(0, 1)}, 0)}))

	// --- single-qubit identities ---
	// x·rz(θ)·x = rz(−θ): [rz(θ), x] ≡ [x, rz(−θ)] and vice versa.
	add(MustRule("nam/rz-x-flip", 1, 1,
		[]PatGate{P(gate.Rz, []PatParam{V(0)}, 0), P(gate.X, nil, 0)},
		[]RepGate{Rep(gate.X, nil, 0), Rep(gate.Rz, []ParamExpr{ENeg(0)}, 0)}))
	add(MustRule("nam/x-rz-flip", 1, 1,
		[]PatGate{P(gate.X, nil, 0), P(gate.Rz, []PatParam{V(0)}, 0)},
		[]RepGate{Rep(gate.Rz, []ParamExpr{ENeg(0)}, 0), Rep(gate.X, nil, 0)}))
	// h·x·h = z = rz(π) (mod phase), and the reverse direction.
	add(MustRule("nam/h-x-h", 1, 0,
		[]PatGate{P(gate.H, nil, 0), P(gate.X, nil, 0), P(gate.H, nil, 0)},
		[]RepGate{Rep(gate.Rz, []ParamExpr{EC(math.Pi)}, 0)}))
	add(MustRule("nam/h-z-h", 1, 0,
		[]PatGate{P(gate.H, nil, 0), P(gate.Rz, []PatParam{C(math.Pi)}, 0), P(gate.H, nil, 0)},
		[]RepGate{Rep(gate.X, nil, 0)}))
	// h·rz(±π/2)·h = rx(±π/2) → expressible as rz·h·rz? Keep the compact
	// Euler flip: h rz(π/2) h = rz(π/2)? No — use the verified pair below:
	// h·rz(π/2)·h·rz(π/2) appears in QFT tails; handled by resynthesis.

	// --- commutations (Fig. 3b, 3c) ---
	// rz through the cx control.
	add(MustRule("nam/rz-cx-control", 2, 1,
		[]PatGate{P(gate.Rz, []PatParam{V(0)}, 0), P(gate.CX, nil, 0, 1)},
		[]RepGate{Rep(gate.CX, nil, 0, 1), Rep(gate.Rz, []ParamExpr{EV(0)}, 0)}))
	add(MustRule("nam/cx-control-rz", 2, 1,
		[]PatGate{P(gate.CX, nil, 0, 1), P(gate.Rz, []PatParam{V(0)}, 0)},
		[]RepGate{Rep(gate.Rz, []ParamExpr{EV(0)}, 0), Rep(gate.CX, nil, 0, 1)}))
	// x through the cx target.
	add(MustRule("nam/x-cx-target", 2, 0,
		[]PatGate{P(gate.X, nil, 1), P(gate.CX, nil, 0, 1)},
		[]RepGate{Rep(gate.CX, nil, 0, 1), Rep(gate.X, nil, 1)}))
	add(MustRule("nam/cx-target-x", 2, 0,
		[]PatGate{P(gate.CX, nil, 0, 1), P(gate.X, nil, 1)},
		[]RepGate{Rep(gate.X, nil, 1), Rep(gate.CX, nil, 0, 1)}))
	// cx pairs sharing a control or sharing a target commute.
	add(MustRule("nam/cx-shared-control", 3, 0,
		[]PatGate{P(gate.CX, nil, 0, 1), P(gate.CX, nil, 0, 2)},
		[]RepGate{Rep(gate.CX, nil, 0, 2), Rep(gate.CX, nil, 0, 1)}))
	add(MustRule("nam/cx-shared-target", 3, 0,
		[]PatGate{P(gate.CX, nil, 0, 2), P(gate.CX, nil, 1, 2)},
		[]RepGate{Rep(gate.CX, nil, 1, 2), Rep(gate.CX, nil, 0, 2)}))
	// Nontrivial 3-qubit commutation: cx(0,1)·cx(1,2) = cx(1,2)·cx(0,2)·cx(0,1)
	// is size-increasing; its reverse is size-decreasing.
	add(MustRule("nam/cx-chain-collapse", 3, 0,
		[]PatGate{P(gate.CX, nil, 1, 2), P(gate.CX, nil, 0, 2), P(gate.CX, nil, 0, 1)},
		[]RepGate{Rep(gate.CX, nil, 0, 1), Rep(gate.CX, nil, 1, 2)}))

	// --- cx reversal: (H⊗H)·CX(0,1)·(H⊗H) = CX(1,0) ---
	add(MustRule("nam/cx-reversal", 2, 0,
		[]PatGate{
			P(gate.H, nil, 0), P(gate.H, nil, 1),
			P(gate.CX, nil, 0, 1),
			P(gate.H, nil, 0), P(gate.H, nil, 1),
		},
		[]RepGate{Rep(gate.CX, nil, 1, 0)}))

	// Z moves through H as X (Z·H = H·X), unlocking x cancellations.
	add(MustRule("nam/h-z-commute", 1, 0,
		[]PatGate{P(gate.H, nil, 0), P(gate.Rz, []PatParam{C(math.Pi)}, 0)},
		[]RepGate{Rep(gate.X, nil, 0), Rep(gate.H, nil, 0)}))
	add(MustRule("nam/z-h-commute", 1, 0,
		[]PatGate{P(gate.Rz, []PatParam{C(math.Pi)}, 0), P(gate.H, nil, 0)},
		[]RepGate{Rep(gate.H, nil, 0), Rep(gate.X, nil, 0)}))
	// s·h·s·h·s ∝ h (from (H·S)³ ∝ I): a 5 → 1 collapse.
	add(MustRule("nam/shshs-to-h", 1, 0,
		[]PatGate{
			P(gate.Rz, []PatParam{C(math.Pi / 2)}, 0), P(gate.H, nil, 0),
			P(gate.Rz, []PatParam{C(math.Pi / 2)}, 0), P(gate.H, nil, 0),
			P(gate.Rz, []PatParam{C(math.Pi / 2)}, 0),
		},
		[]RepGate{Rep(gate.H, nil, 0)}))

	// (H·S)³ ∝ I — the order-3 axis of the single-qubit Clifford group,
	// with S written as rz(π/2).
	add(MustRule("nam/hs-cubed", 1, 0,
		[]PatGate{
			P(gate.Rz, []PatParam{C(math.Pi / 2)}, 0), P(gate.H, nil, 0),
			P(gate.Rz, []PatParam{C(math.Pi / 2)}, 0), P(gate.H, nil, 0),
			P(gate.Rz, []PatParam{C(math.Pi / 2)}, 0), P(gate.H, nil, 0),
		},
		[]RepGate{}))

	return rs
}
