package rewrite

import (
	"math"

	"github.com/guoq-dev/guoq/internal/gate"
)

// ionqRules covers the trapped-ion set {rx, ry, rz, rxx}. Q1 observes this
// set is hard for pure rule-based tools (QUESO) because ≤3-gate patterns
// capture little of the continuous Rxx algebra — the library is accordingly
// thin, which is exactly the regime where resynthesis compensates (Fig. 9).
func ionqRules() []*Rule {
	var rs []*Rule
	add := func(r *Rule) { rs = append(rs, r) }

	// Same-axis rotation merges.
	for _, ax := range []gate.Name{gate.Rx, gate.Ry, gate.Rz} {
		add(MustRule("ionq/"+string(ax)+"-merge", 1, 2,
			[]PatGate{P(ax, []PatParam{V(0)}, 0), P(ax, []PatParam{V(1)}, 0)},
			[]RepGate{Rep(ax, []ParamExpr{ESum(0, 1)}, 0)}))
	}
	add(MustRule("ionq/rxx-merge", 2, 2,
		[]PatGate{P(gate.Rxx, []PatParam{V(0)}, 0, 1), P(gate.Rxx, []PatParam{V(1)}, 0, 1)},
		[]RepGate{Rep(gate.Rxx, []ParamExpr{ESum(0, 1)}, 0, 1)}))

	// π-rotation conjugation flips: P·R(θ)·P† = R(−θ) for anticommuting
	// axes, with P ∈ {rx(π) ~ X, ry(π) ~ Y, rz(π) ~ Z}.
	flip := func(name string, mover, moved gate.Name) {
		add(MustRule("ionq/"+name, 1, 1,
			[]PatGate{
				P(moved, []PatParam{V(0)}, 0),
				P(mover, []PatParam{C(math.Pi)}, 0),
			},
			[]RepGate{
				Rep(mover, []ParamExpr{EC(math.Pi)}, 0),
				Rep(moved, []ParamExpr{ENeg(0)}, 0),
			}))
	}
	flip("rz-through-xpi", gate.Rx, gate.Rz)
	flip("rz-through-ypi", gate.Ry, gate.Rz)
	flip("rx-through-ypi", gate.Ry, gate.Rx)
	flip("rx-through-zpi", gate.Rz, gate.Rx)
	flip("ry-through-xpi", gate.Rx, gate.Ry)
	flip("ry-through-zpi", gate.Rz, gate.Ry)

	// rx commutes with rxx on either leg (X⊗X commutes with X⊗I and I⊗X).
	for leg := 0; leg < 2; leg++ {
		suffix := []string{"a", "b"}[leg]
		add(MustRule("ionq/rx-rxx-commute-"+suffix, 2, 2,
			[]PatGate{
				P(gate.Rx, []PatParam{V(0)}, leg),
				P(gate.Rxx, []PatParam{V(1)}, 0, 1),
			},
			[]RepGate{
				Rep(gate.Rxx, []ParamExpr{EV(1)}, 0, 1),
				Rep(gate.Rx, []ParamExpr{EV(0)}, leg),
			}))
		add(MustRule("ionq/rxx-rx-commute-"+suffix, 2, 2,
			[]PatGate{
				P(gate.Rxx, []PatParam{V(1)}, 0, 1),
				P(gate.Rx, []PatParam{V(0)}, leg),
			},
			[]RepGate{
				Rep(gate.Rx, []ParamExpr{EV(0)}, leg),
				Rep(gate.Rxx, []ParamExpr{EV(1)}, 0, 1),
			}))
	}

	// rxx(π) ∝ X⊗X: a two-qubit gate dissolves into local bit flips — the
	// only rule in the library that removes a two-qubit gate outright.
	add(MustRule("ionq/rxx-pi-split", 2, 0,
		[]PatGate{P(gate.Rxx, []PatParam{C(math.Pi)}, 0, 1)},
		[]RepGate{
			Rep(gate.Rx, []ParamExpr{EC(math.Pi)}, 0),
			Rep(gate.Rx, []ParamExpr{EC(math.Pi)}, 1),
		}))

	// Overlapping rxx gates commute (all X operators commute).
	add(MustRule("ionq/rxx-rxx-chain-commute", 3, 2,
		[]PatGate{
			P(gate.Rxx, []PatParam{V(0)}, 0, 1),
			P(gate.Rxx, []PatParam{V(1)}, 1, 2),
		},
		[]RepGate{
			Rep(gate.Rxx, []ParamExpr{EV(1)}, 1, 2),
			Rep(gate.Rxx, []ParamExpr{EV(0)}, 0, 1),
		}))

	return rs
}
