package rewrite

import (
	"math"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/linalg"
)

// Cleanup is the ε = 0 normalization pass applied alongside the symbolic
// rules: it drops identity rotations, cancels adjacent inverse pairs (h·h,
// cx·cx, t·t†, ...), and merges adjacent z-diagonal phase gates and
// same-axis rotations, emitting the merged gate in the target gate set's
// native form. It is a single linear pass using per-wire stacks, so it is
// cheap enough to run after every accepted transformation.
func Cleanup(c *circuit.Circuit, gatesetName string) *circuit.Circuit {
	out, _ := CleanupChanged(c, gatesetName)
	return out
}

// CleanupFor is Cleanup against a resolved gate set (required for ad-hoc
// sets that are not name-addressable).
func CleanupFor(c *circuit.Circuit, gs *gateset.GateSet) *circuit.Circuit {
	out, _ := CleanupChangedFor(c, gs)
	return out
}

// CleanupChanged is Cleanup plus a change count: the number of
// normalization, cancellation, merge, and reorder events that made the
// output differ from the input. A zero count guarantees the output is
// structurally identical (circuit.Equal) to the input, so callers can
// detect no-ops without a deep compare.
//
// The name is resolved through the gate-set registry once per call so the
// z-phase merge can emit in a custom set's native diagonal vocabulary;
// unknown names keep the historical rz fallback. Callers holding an
// unregistered *gateset.GateSet must use CleanupChangedFor.
func CleanupChanged(c *circuit.Circuit, gatesetName string) (*circuit.Circuit, int) {
	gs, err := gateset.ByName(gatesetName)
	if err != nil {
		gs = nil
	}
	return cleanupChanged(c, gatesetName, gs)
}

// CleanupChangedFor is CleanupChanged against a resolved gate set.
func CleanupChangedFor(c *circuit.Circuit, gs *gateset.GateSet) (*circuit.Circuit, int) {
	return cleanupChanged(c, gs.Name, gs)
}

func cleanupChanged(c *circuit.Circuit, gatesetName string, gs *gateset.GateSet) (*circuit.Circuit, int) {
	p := &cleaner{
		gateset: gatesetName,
		gs:      gs,
		alive:   make([]bool, 0, len(c.Gates)),
		top:     make([]int, c.NumQubits),
	}
	for q := range p.top {
		p.top[q] = -1
	}
	for _, g := range c.Gates {
		p.feed(g)
	}
	out := circuit.New(c.NumQubits)
	for i, g := range p.out {
		if p.alive[i] {
			out.Gates = append(out.Gates, g)
		}
	}
	return out, p.changed
}

type cleaner struct {
	gateset string
	gs      *gateset.GateSet // resolved once; nil for unknown names
	out     []gate.Gate
	alive   []bool
	top     []int   // per qubit: index into out of the topmost alive gate, or -1
	belowQ  [][]int // per out index: the previous top for each of its qubits
	changed int
	dropSeq []gate.Gate // scratch: a merged run's gates in drop (reverse) order
}

// push appends g as an alive output gate and records, for each of its
// qubits, the previous top so cancellation can restore the stack.
func (p *cleaner) push(g gate.Gate) {
	idx := len(p.out)
	p.out = append(p.out, g)
	p.alive = append(p.alive, true)
	prevs := make([]int, len(g.Qubits))
	for k, q := range g.Qubits {
		prevs[k] = p.top[q]
		p.top[q] = idx
	}
	p.belowQ = append(p.belowQ, prevs)
}

// drop kills output gate idx and restores the stack tops for its qubits.
func (p *cleaner) drop(idx int) {
	p.alive[idx] = false
	g := p.out[idx]
	for k, q := range g.Qubits {
		if p.top[q] == idx {
			p.top[q] = p.belowQ[idx][k]
		}
	}
}

func (p *cleaner) feed(g gate.Gate) {
	// Normalize angles and drop identities.
	if len(g.Params) > 0 {
		g = g.Clone()
		for i := range g.Params {
			if v := linalg.NormAngle(g.Params[i]); v != g.Params[i] {
				g.Params[i] = v
				p.changed++
			}
		}
	}
	if g.Name == gate.I || g.IsIdentityAngle(1e-12) {
		p.changed++
		return
	}
	switch len(g.Qubits) {
	case 1:
		p.feed1q(g)
	case 2:
		p.feed2q(g)
	default:
		p.push(g)
	}
}

func (p *cleaner) feed1q(g gate.Gate) {
	q := g.Qubits[0]
	t := p.top[q]
	if t < 0 || !p.alive[t] || len(p.out[t].Qubits) != 1 {
		p.push(g)
		return
	}
	prev := p.out[t]
	// Inverse pair cancellation: U_g · U_prev ∝ I.
	prod := linalg.Mul(gate.Matrix(g), gate.Matrix(prev))
	if linalg.EqualUpToPhase(prod, linalg.Identity(2), 1e-10) {
		p.changed++
		p.drop(t)
		return
	}
	// z-diagonal merging: absorb the whole consecutive diagonal run below
	// the top, then emit the minimal ladder once. (Re-feeding the ladder
	// would loop: the k=3 ladder [s, t] merges straight back to 3π/4.)
	pa, pok := zPhaseOf(prev)
	ga, gok := zPhaseOf(g)
	if pok && gok {
		total := pa + ga
		droppedLo := t
		p.dropSeq = append(p.dropSeq[:0], prev)
		p.drop(t)
		for {
			t2 := p.top[q]
			if t2 < 0 || !p.alive[t2] || len(p.out[t2].Qubits) != 1 {
				break
			}
			a2, ok := zPhaseOf(p.out[t2])
			if !ok {
				break
			}
			total += a2
			p.dropSeq = append(p.dropSeq, p.out[t2])
			droppedLo = t2
			p.drop(t2)
		}
		emitted, representable := p.emitZPhase(linalg.NormAngle(total))
		if !representable {
			// The target set has no exact native form for the merged angle
			// (a custom finite set without z-phase gates): restore the run
			// untouched. Restoring reorders the output only when something
			// alive follows the run, which is the one case that counts as
			// a change.
			for i := droppedLo + 1; i < len(p.out); i++ {
				if p.alive[i] {
					p.changed++
					break
				}
			}
			for i := len(p.dropSeq) - 1; i >= 0; i-- {
				p.push(p.dropSeq[i])
			}
			p.push(g)
			return
		}
		for i := range emitted {
			emitted[i].Qubits = []int{q}
		}
		// The merge is a no-op iff the re-emitted ladder reproduces the
		// dropped run plus g exactly AND the run was the alive suffix of
		// the output (re-pushing at the end then preserves order).
		same := len(emitted) == len(p.dropSeq)+1
		if same {
			for i, m := range emitted {
				orig := g
				if i < len(p.dropSeq) {
					orig = p.dropSeq[len(p.dropSeq)-1-i]
				}
				if !m.Equal(orig) {
					same = false
					break
				}
			}
		}
		if same {
			for i := droppedLo + 1; i < len(p.out); i++ {
				if p.alive[i] {
					same = false
					break
				}
			}
		}
		if !same {
			p.changed++
		}
		for _, m := range emitted {
			p.push(m)
		}
		return
	}
	// Same-axis rotation merging (rx·rx, ry·ry), absorbing the whole run.
	// Always a change: at least two gates collapse into at most one.
	if (g.Name == gate.Rx || g.Name == gate.Ry) && prev.Name == g.Name {
		sum := prev.Params[0] + g.Params[0]
		p.changed++
		p.drop(t)
		for {
			t2 := p.top[q]
			if t2 < 0 || !p.alive[t2] || p.out[t2].Name != g.Name {
				break
			}
			sum += p.out[t2].Params[0]
			p.drop(t2)
		}
		sum = linalg.NormAngle(sum)
		if math.Abs(sum) > 1e-12 {
			p.push(gate.New(g.Name, []int{q}, []float64{sum}))
		}
		return
	}
	p.push(g)
}

func (p *cleaner) feed2q(g gate.Gate) {
	a, b := g.Qubits[0], g.Qubits[1]
	ta, tb := p.top[a], p.top[b]
	if ta < 0 || ta != tb || !p.alive[ta] {
		p.push(g)
		return
	}
	prev := p.out[ta]
	if prev.Name != g.Name {
		p.push(g)
		return
	}
	sameOrder := prev.Qubits[0] == a && prev.Qubits[1] == b
	swapped := prev.Qubits[0] == b && prev.Qubits[1] == a
	symmetric := g.Name == gate.CZ || g.Name == gate.Swap ||
		g.Name == gate.Rxx || g.Name == gate.Rzz
	if !sameOrder && !(swapped && symmetric) {
		p.push(g)
		return
	}
	switch g.Name {
	case gate.CX, gate.CZ, gate.Swap:
		p.changed++
		p.drop(ta) // self-inverse pair
		return
	case gate.Rxx, gate.Rzz:
		sum := linalg.NormAngle(prev.Params[0] + g.Params[0])
		p.changed++ // two gates collapse into at most one
		p.drop(ta)
		if math.Abs(sum) > 1e-12 {
			p.push(gate.New(g.Name, []int{a, b}, []float64{sum}))
		}
		return
	}
	p.push(g)
}

// zPhaseOf returns the z-rotation angle of a diagonal phase gate (mod
// global phase) and whether the gate is one.
func zPhaseOf(g gate.Gate) (float64, bool) {
	switch g.Name {
	case gate.Rz:
		return g.Params[0], true
	case gate.U1:
		return g.Params[0], true
	case gate.Z:
		return math.Pi, true
	case gate.S:
		return math.Pi / 2, true
	case gate.Sdg:
		return -math.Pi / 2, true
	case gate.T:
		return math.Pi / 4, true
	case gate.Tdg:
		return -math.Pi / 4, true
	}
	return 0, false
}

// emitZPhase renders a z-rotation angle in the target gate set's native
// diagonal gates (qubits are filled in by the caller). ok = false reports
// that the set has no exact native form for the angle (possible only for
// custom sets without continuous z-phase gates), in which case the caller
// must keep the original run.
func (p *cleaner) emitZPhase(theta float64) (out []gate.Gate, ok bool) {
	if math.Abs(theta) < 1e-12 {
		return nil, true
	}
	switch p.gateset {
	case "ibmq20":
		return []gate.Gate{gate.New(gate.U1, []int{0}, []float64{theta})}, true
	case "cliffordt":
		if !linalg.IsMultipleOf(theta, math.Pi/4, 1e-9) {
			// Not representable — should not happen for native circuits;
			// fall back to an rz to preserve semantics (callers operating
			// on native Clifford+T circuits never hit this).
			return []gate.Gate{gate.New(gate.Rz, []int{0}, []float64{theta})}, true
		}
		return phaseLadder(theta), true
	default:
		// nam, ibm-eagle, and ionq emit a native rz, as does any custom or
		// unknown set with a continuous z-rotation. Custom finite sets get
		// the π/4 ladder when their basis carries it.
		if p.gs == nil || p.gs.Contains(gate.Rz) {
			return []gate.Gate{gate.New(gate.Rz, []int{0}, []float64{theta})}, true
		}
		if p.gs.Contains(gate.U1) {
			return []gate.Gate{gate.New(gate.U1, []int{0}, []float64{theta})}, true
		}
		if p.gs.Contains(gate.S) && p.gs.Contains(gate.Sdg) && p.gs.Contains(gate.T) && p.gs.Contains(gate.Tdg) &&
			linalg.IsMultipleOf(theta, math.Pi/4, 1e-9) {
			return phaseLadder(theta), true
		}
		return nil, false
	}
}

// phaseLadder writes a π/4-multiple z-rotation as a minimal sequence over
// {S, S†, T, T†} (qubit 0; the caller rebinds qubits).
func phaseLadder(theta float64) []gate.Gate {
	k := int(math.Round(theta/(math.Pi/4))) % 8
	if k < 0 {
		k += 8
	}
	lad := map[int][]gate.Name{
		0: {}, 1: {gate.T}, 2: {gate.S}, 3: {gate.S, gate.T},
		4: {gate.S, gate.S}, 5: {gate.Sdg, gate.Tdg}, 6: {gate.Sdg}, 7: {gate.Tdg},
	}
	var out []gate.Gate
	for _, n := range lad[k] {
		out = append(out, gate.New(n, []int{0}, nil))
	}
	return out
}
