package rewrite

import (
	"github.com/guoq-dev/guoq/internal/gate"
)

// Rule library for the Clifford+T gate set {t, tdg, s, sdg, h, x, cx} (Q4).
// Phase-gate algebra is the workhorse here: runs of diagonal gates collapse,
// and diagonal gates commute through cx controls, which is what lets the
// search cancel distant T gates.

func cliffordTRules() []*Rule {
	var rs []*Rule
	add := func(r *Rule) { rs = append(rs, r) }

	diag := []gate.Name{gate.T, gate.Tdg, gate.S, gate.Sdg}

	// --- inverse cancellations ---
	pairs := [][2]gate.Name{
		{gate.T, gate.Tdg}, {gate.Tdg, gate.T},
		{gate.S, gate.Sdg}, {gate.Sdg, gate.S},
		{gate.H, gate.H}, {gate.X, gate.X},
	}
	for _, p := range pairs {
		add(MustRule("cliffordt/"+string(p[0])+"-"+string(p[1])+"-cancel", 1, 0,
			[]PatGate{P(p[0], nil, 0), P(p[1], nil, 0)},
			nil))
	}
	add(MustRule("cliffordt/cx-cx-cancel", 2, 0,
		[]PatGate{P(gate.CX, nil, 0, 1), P(gate.CX, nil, 0, 1)},
		nil))

	// --- phase-gate fusions ---
	add(MustRule("cliffordt/t-t-to-s", 1, 0,
		[]PatGate{P(gate.T, nil, 0), P(gate.T, nil, 0)},
		[]RepGate{Rep(gate.S, nil, 0)}))
	add(MustRule("cliffordt/tdg-tdg-to-sdg", 1, 0,
		[]PatGate{P(gate.Tdg, nil, 0), P(gate.Tdg, nil, 0)},
		[]RepGate{Rep(gate.Sdg, nil, 0)}))
	add(MustRule("cliffordt/s-s-s-to-sdg", 1, 0,
		[]PatGate{P(gate.S, nil, 0), P(gate.S, nil, 0), P(gate.S, nil, 0)},
		[]RepGate{Rep(gate.Sdg, nil, 0)}))
	add(MustRule("cliffordt/sdg-sdg-sdg-to-s", 1, 0,
		[]PatGate{P(gate.Sdg, nil, 0), P(gate.Sdg, nil, 0), P(gate.Sdg, nil, 0)},
		[]RepGate{Rep(gate.S, nil, 0)}))
	// s·s·t ∝ sdg·tdg (z·t collapses to the shorter −3π/4 phase).
	add(MustRule("cliffordt/s-s-t-shorten", 1, 0,
		[]PatGate{P(gate.S, nil, 0), P(gate.S, nil, 0), P(gate.T, nil, 0)},
		[]RepGate{Rep(gate.Sdg, nil, 0), Rep(gate.Tdg, nil, 0)}))
	add(MustRule("cliffordt/sdg-sdg-tdg-shorten", 1, 0,
		[]PatGate{P(gate.Sdg, nil, 0), P(gate.Sdg, nil, 0), P(gate.Tdg, nil, 0)},
		[]RepGate{Rep(gate.S, nil, 0), Rep(gate.T, nil, 0)}))
	// t·s·t ∝ z = s·s.
	add(MustRule("cliffordt/t-s-t-to-z", 1, 0,
		[]PatGate{P(gate.T, nil, 0), P(gate.S, nil, 0), P(gate.T, nil, 0)},
		[]RepGate{Rep(gate.S, nil, 0), Rep(gate.S, nil, 0)}))

	// --- x conjugation: x·d·x = d† for diagonal d (mod phase) ---
	inv := map[gate.Name]gate.Name{
		gate.T: gate.Tdg, gate.Tdg: gate.T, gate.S: gate.Sdg, gate.Sdg: gate.S,
	}
	for _, d := range diag {
		add(MustRule("cliffordt/"+string(d)+"-x-flip", 1, 0,
			[]PatGate{P(d, nil, 0), P(gate.X, nil, 0)},
			[]RepGate{Rep(gate.X, nil, 0), Rep(inv[d], nil, 0)}))
	}

	// --- diagonal gates commute through the cx control ---
	for _, d := range diag {
		add(MustRule("cliffordt/"+string(d)+"-cx-control", 2, 0,
			[]PatGate{P(d, nil, 0), P(gate.CX, nil, 0, 1)},
			[]RepGate{Rep(gate.CX, nil, 0, 1), Rep(d, nil, 0)}))
		add(MustRule("cliffordt/cx-control-"+string(d), 2, 0,
			[]PatGate{P(gate.CX, nil, 0, 1), P(d, nil, 0)},
			[]RepGate{Rep(d, nil, 0), Rep(gate.CX, nil, 0, 1)}))
	}
	// x commutes through the cx target.
	add(MustRule("cliffordt/x-cx-target", 2, 0,
		[]PatGate{P(gate.X, nil, 1), P(gate.CX, nil, 0, 1)},
		[]RepGate{Rep(gate.CX, nil, 0, 1), Rep(gate.X, nil, 1)}))
	add(MustRule("cliffordt/cx-target-x", 2, 0,
		[]PatGate{P(gate.CX, nil, 0, 1), P(gate.X, nil, 1)},
		[]RepGate{Rep(gate.X, nil, 1), Rep(gate.CX, nil, 0, 1)}))

	// --- Hadamard conjugations ---
	// h·x·h = z = s·s ; h·z·h = x (4 → 1).
	add(MustRule("cliffordt/h-x-h-to-z", 1, 0,
		[]PatGate{P(gate.H, nil, 0), P(gate.X, nil, 0), P(gate.H, nil, 0)},
		[]RepGate{Rep(gate.S, nil, 0), Rep(gate.S, nil, 0)}))
	add(MustRule("cliffordt/h-z-h-to-x", 1, 0,
		[]PatGate{P(gate.H, nil, 0), P(gate.S, nil, 0), P(gate.S, nil, 0), P(gate.H, nil, 0)},
		[]RepGate{Rep(gate.X, nil, 0)}))
	// Z moves through H as X: h·s·s → x·h and s·s·h → h·x (3 → 2).
	add(MustRule("cliffordt/h-z-to-x-h", 1, 0,
		[]PatGate{P(gate.H, nil, 0), P(gate.S, nil, 0), P(gate.S, nil, 0)},
		[]RepGate{Rep(gate.X, nil, 0), Rep(gate.H, nil, 0)}))
	add(MustRule("cliffordt/z-h-to-h-x", 1, 0,
		[]PatGate{P(gate.S, nil, 0), P(gate.S, nil, 0), P(gate.H, nil, 0)},
		[]RepGate{Rep(gate.H, nil, 0), Rep(gate.X, nil, 0)}))
	// s·h·s·h·s ∝ h: a 5 → 1 collapse.
	add(MustRule("cliffordt/shshs-to-h", 1, 0,
		[]PatGate{
			P(gate.S, nil, 0), P(gate.H, nil, 0), P(gate.S, nil, 0),
			P(gate.H, nil, 0), P(gate.S, nil, 0),
		},
		[]RepGate{Rep(gate.H, nil, 0)}))
	// (h·s)³ ∝ I.
	add(MustRule("cliffordt/hs-cubed", 1, 0,
		[]PatGate{
			P(gate.S, nil, 0), P(gate.H, nil, 0),
			P(gate.S, nil, 0), P(gate.H, nil, 0),
			P(gate.S, nil, 0), P(gate.H, nil, 0),
		},
		nil))
	// s·h·sdg·h — no shortening; skip.

	// --- cx structure ---
	add(MustRule("cliffordt/cx-shared-control", 3, 0,
		[]PatGate{P(gate.CX, nil, 0, 1), P(gate.CX, nil, 0, 2)},
		[]RepGate{Rep(gate.CX, nil, 0, 2), Rep(gate.CX, nil, 0, 1)}))
	add(MustRule("cliffordt/cx-shared-target", 3, 0,
		[]PatGate{P(gate.CX, nil, 0, 2), P(gate.CX, nil, 1, 2)},
		[]RepGate{Rep(gate.CX, nil, 1, 2), Rep(gate.CX, nil, 0, 2)}))
	add(MustRule("cliffordt/cx-chain-collapse", 3, 0,
		[]PatGate{P(gate.CX, nil, 1, 2), P(gate.CX, nil, 0, 2), P(gate.CX, nil, 0, 1)},
		[]RepGate{Rep(gate.CX, nil, 0, 1), Rep(gate.CX, nil, 1, 2)}))
	add(MustRule("cliffordt/cx-reversal", 2, 0,
		[]PatGate{
			P(gate.H, nil, 0), P(gate.H, nil, 1),
			P(gate.CX, nil, 0, 1),
			P(gate.H, nil, 0), P(gate.H, nil, 1),
		},
		[]RepGate{Rep(gate.CX, nil, 1, 0)}))

	return rs
}
