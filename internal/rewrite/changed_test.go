package rewrite

import (
	"math/rand"
	"testing"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gateset"
)

// The changed-count contract: a pass reports changed == 0 exactly when its
// output is structurally identical to its input. The GUOQ loop relies on
// this to skip deep circuit.Equal compares, and the search trajectory (and
// with it the pinned guardrail counts) depends on it being exact — so fuzz
// it over every gate set, including iterated applications that reach the
// passes' fixpoints, where the subtle no-op cases (identity ladder
// re-emission, order-preserving merges) live.

func TestCleanupChangedMatchesEqual(t *testing.T) {
	for _, gs := range gateset.All() {
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 60; trial++ {
			c := circuit.Random(5, 10+rng.Intn(60), gs.Gates, rng)
			for round := 0; round < 3; round++ {
				out, changed := CleanupChanged(c, gs.Name)
				if got, want := changed > 0, !circuit.Equal(out, c); got != want {
					t.Fatalf("%s trial %d round %d: changed=%d but Equal=%v\nin:  %s\nout: %s",
						gs.Name, trial, round, changed, !want, c, out)
				}
				if changed == 0 {
					break
				}
				c = out
			}
		}
	}
}

func TestFuse1QChangedMatchesEqual(t *testing.T) {
	for _, gs := range gateset.All() {
		if !gs.Continuous() {
			continue
		}
		rng := rand.New(rand.NewSource(13))
		for trial := 0; trial < 60; trial++ {
			c := circuit.Random(5, 10+rng.Intn(60), gs.Gates, rng)
			for round := 0; round < 3; round++ {
				out, changed := Fuse1QChanged(c, gs)
				if got, want := changed > 0, !circuit.Equal(out, c); got != want {
					t.Fatalf("%s trial %d round %d: changed=%d but Equal=%v\nin:  %s\nout: %s",
						gs.Name, trial, round, changed, !want, c, out)
				}
				if changed == 0 {
					break
				}
				c = out
			}
		}
	}
}
