package rewrite

import (
	"math/rand"
	"testing"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/gateset"
)

// The changed-count contract: a pass reports changed == 0 exactly when its
// output is structurally identical to its input. The GUOQ loop relies on
// this to skip deep circuit.Equal compares, and the search trajectory (and
// with it the pinned guardrail counts) depends on it being exact — so fuzz
// it over every gate set, including iterated applications that reach the
// passes' fixpoints, where the subtle no-op cases (identity ladder
// re-emission, order-preserving merges) live.

func TestCleanupChangedMatchesEqual(t *testing.T) {
	for _, gs := range gateset.All() {
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 60; trial++ {
			c := circuit.Random(5, 10+rng.Intn(60), gs.Gates, rng)
			for round := 0; round < 3; round++ {
				out, changed := CleanupChanged(c, gs.Name)
				if got, want := changed > 0, !circuit.Equal(out, c); got != want {
					t.Fatalf("%s trial %d round %d: changed=%d but Equal=%v\nin:  %s\nout: %s",
						gs.Name, trial, round, changed, !want, c, out)
				}
				if changed == 0 {
					break
				}
				c = out
			}
		}
	}
}

func TestFuse1QChangedMatchesEqual(t *testing.T) {
	for _, gs := range gateset.All() {
		if !gs.Continuous() {
			continue
		}
		rng := rand.New(rand.NewSource(13))
		for trial := 0; trial < 60; trial++ {
			c := circuit.Random(5, 10+rng.Intn(60), gs.Gates, rng)
			for round := 0; round < 3; round++ {
				out, changed := Fuse1QChanged(c, gs)
				if got, want := changed > 0, !circuit.Equal(out, c); got != want {
					t.Fatalf("%s trial %d round %d: changed=%d but Equal=%v\nin:  %s\nout: %s",
						gs.Name, trial, round, changed, !want, c, out)
				}
				if changed == 0 {
					break
				}
				c = out
			}
		}
	}
}

// TestCleanupForAdHocFiniteSet pins the regression where the z-phase merge
// emitted a non-native rz for gate sets that are not name-addressable: an
// unregistered finite set must get its π/4 ladder (or keep the run) —
// never a continuous rotation outside its basis.
func TestCleanupForAdHocFiniteSet(t *testing.T) {
	gs, err := gateset.New("adhoc-ft-cleanup", "fault tolerant",
		gate.H, gate.S, gate.Sdg, gate.T, gate.Tdg, gate.X, gate.CZ)
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New(1)
	c.Append(gate.NewT(0), gate.NewT(0))
	out, changed := CleanupChangedFor(c, gs)
	if changed == 0 {
		t.Fatal("t·t merge not detected")
	}
	if !gs.IsNative(out) {
		t.Fatalf("cleanup emitted non-native gates: %v", out.Gates)
	}
	if out.Len() != 1 || out.Gates[0].Name != gate.S {
		t.Fatalf("t·t should merge to s, got %v", out.Gates)
	}
	// A set with no z-phase vocabulary at all must keep the run untouched.
	bare, err := gateset.New("adhoc-bare-cleanup", "", gate.H, gate.Z, gate.CZ)
	if err != nil {
		t.Fatal(err)
	}
	zz := circuit.New(1)
	zz.Append(gate.NewZ(0), gate.NewH(0), gate.NewZ(0))
	out2, _ := CleanupChangedFor(zz, bare)
	if !bare.IsNative(out2) {
		t.Fatalf("cleanup pushed a bare set out of basis: %v", out2.Gates)
	}
}
