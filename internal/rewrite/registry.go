package rewrite

import (
	"fmt"
	"sync"
)

// libraries holds caller-registered rule libraries keyed by gate set name.
// The five built-in libraries are not stored here; lookup checks them first
// so they cannot be shadowed.
var libraries = struct {
	sync.RWMutex
	m map[string][]*Rule
}{m: map[string][]*Rule{}}

// RegisterLibrary associates a verified rule library with a (custom) gate
// set name, so RulesFor — and through it the default transformation
// registry — finds rules for registered targets. Registering for a
// built-in name is rejected; re-registering a custom name replaces the
// library (reloadable configs).
func RegisterLibrary(gatesetName string, rules []*Rule) error {
	if gatesetName == "" {
		return fmt.Errorf("rewrite: empty gate set name")
	}
	if _, err := builtinRules(gatesetName); err == nil {
		return fmt.Errorf("rewrite: gate set %q has a built-in rule library", gatesetName)
	}
	cp := make([]*Rule, len(rules))
	copy(cp, rules)
	libraries.Lock()
	libraries.m[gatesetName] = cp
	libraries.Unlock()
	return nil
}

// builtinRules returns the curated library for one of the five evaluation
// sets (the names of gateset.All).
func builtinRules(gatesetName string) ([]*Rule, error) {
	switch gatesetName {
	case "nam":
		return namRules(), nil
	case "cliffordt":
		return cliffordTRules(), nil
	case "ibmq20":
		return ibmq20Rules(), nil
	case "ibm-eagle":
		return ibmEagleRules(), nil
	case "ionq":
		return ionqRules(), nil
	}
	return nil, fmt.Errorf("rewrite: no rule library for gate set %q", gatesetName)
}

// RulesFor returns the rule library for a gate set name: the curated
// libraries for the paper's five sets (playing the role of QUESO's
// synthesized rule sets in the GUOQ instantiation, §6), or whatever
// RegisterLibrary associated with a custom name.
func RulesFor(gatesetName string) ([]*Rule, error) {
	if rules, err := builtinRules(gatesetName); err == nil {
		return rules, nil
	}
	libraries.RLock()
	rules, ok := libraries.m[gatesetName]
	libraries.RUnlock()
	if ok {
		out := make([]*Rule, len(rules))
		copy(out, rules)
		return out, nil
	}
	return nil, fmt.Errorf("rewrite: no rule library for gate set %q", gatesetName)
}

// AllLibraries returns every built-in rule library keyed by gate set name,
// for exhaustive verification in tests.
func AllLibraries() map[string][]*Rule {
	return map[string][]*Rule{
		"nam":       namRules(),
		"cliffordt": cliffordTRules(),
		"ibmq20":    ibmq20Rules(),
		"ibm-eagle": ibmEagleRules(),
		"ionq":      ionqRules(),
	}
}
