package rewrite

import "fmt"

// RulesFor returns the verified rule library for a gate set name (the names
// of gateset.All). The libraries play the role of QUESO's synthesized rule
// sets in the paper's GUOQ instantiation (§6).
func RulesFor(gatesetName string) ([]*Rule, error) {
	switch gatesetName {
	case "nam":
		return namRules(), nil
	case "cliffordt":
		return cliffordTRules(), nil
	case "ibmq20":
		return ibmq20Rules(), nil
	case "ibm-eagle":
		return ibmEagleRules(), nil
	case "ionq":
		return ionqRules(), nil
	}
	return nil, fmt.Errorf("rewrite: no rule library for gate set %q", gatesetName)
}

// AllLibraries returns every rule library keyed by gate set name, for
// exhaustive verification in tests.
func AllLibraries() map[string][]*Rule {
	return map[string][]*Rule{
		"nam":       namRules(),
		"cliffordt": cliffordTRules(),
		"ibmq20":    ibmq20Rules(),
		"ibm-eagle": ibmEagleRules(),
		"ionq":      ionqRules(),
	}
}
