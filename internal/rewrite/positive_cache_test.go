package rewrite

import (
	"math/rand"
	"testing"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gateset"
)

// TestEnginePositiveCacheEngages pins the positive cache on the annealing
// loop's dominant shape: a rejected candidate (Mark, FullPass, Rollback)
// leaves the circuit unchanged, so the next pass over the same rule must
// replay its match sites from the cache instead of rematching — with the
// rollback restoring the verdicts the candidate's own splices destroyed.
func TestEnginePositiveCacheEngages(t *testing.T) {
	rules, err := RulesFor("nam")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	c := circuit.Random(16, 600, gateset.Nam.Gates, rng)
	eng := NewEngine(c)
	before := eng.Snapshot()

	// Warm-up round: every rule records verdicts at (nearly) every anchor.
	for _, r := range rules {
		mark := eng.Mark()
		eng.FullPass(r, 0)
		eng.Rollback(mark)
	}
	st0 := eng.Stats()
	if st0.PositiveHits != 0 && st0.MatchCalls == 0 {
		t.Fatal("warm-up round should be doing fresh matching")
	}

	// Steady state: reject rounds over a warm cache.
	for round := 0; round < 5; round++ {
		for _, r := range rules {
			mark := eng.Mark()
			eng.FullPass(r, 0)
			eng.Rollback(mark)
		}
	}
	st1 := eng.Stats()
	if !circuit.Equal(eng.Circuit(), before) {
		t.Fatal("reject loop mutated the circuit")
	}
	if st1.PositiveHits == 0 {
		t.Fatal("steady-state reject rounds never replayed a cached match")
	}
	if st1.Reinstalls == 0 {
		t.Fatal("rollbacks never reinstalled a positive entry")
	}
	// Per steady round the only admissible fresh match calls are the few
	// anchors shadowed by `used` windows during warm-up; they must be a
	// sliver of the full scan (len(rules) × 600 anchors per round).
	freshPerRound := (st1.MatchCalls - st0.MatchCalls) / 5
	if limit := len(rules) * 600 / 20; freshPerRound > limit {
		t.Errorf("steady-state rounds still rematch %d anchors/round (want < %d)", freshPerRound, limit)
	}
	t.Logf("stats after steady state: %+v", st1)
}

// TestEngineRollbackHeavyPositiveCache is the adversarial companion of
// TestEngineMatchesScratchFullPass: long sequences dominated by nested
// marks and dirty rollbacks, across every rule library. A stale positive
// entry surviving (or being resurrected by) a rollback would surface here
// as a divergence from the from-scratch pipeline, since replayed matches
// feed directly into the applied windows.
func TestEngineRollbackHeavyPositiveCache(t *testing.T) {
	for name, rules := range AllLibraries() {
		name, rules := name, rules
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			gs, err := gateset.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			ref := circuit.Random(8, 150, gs.Gates, rng)
			eng := NewEngine(ref)
			ref = ref.Clone()

			for step := 0; step < 250; step++ {
				// Open a transaction, stack 1-3 passes inside it, then
				// reject the whole stack three times out of four.
				mark := eng.Mark()
				depth := 1 + rng.Intn(3)
				inner := make([]int, 0, depth)
				states := []*circuit.Circuit{ref} // states[k] = shadow after k inner passes
				for k := 0; k < depth; k++ {
					r := rules[rng.Intn(len(rules))]
					shadow := states[len(states)-1]
					start := 0
					if shadow.Len() > 0 {
						start = rng.Intn(shadow.Len())
					}
					inner = append(inner, eng.Mark())
					refOut, n1 := FullPass(shadow, r, start)
					if n2 := eng.FullPass(r, start); n1 != n2 {
						t.Fatalf("step %d: rule %s replaced %d sites, scratch %d", step, r.Name, n2, n1)
					}
					states = append(states, refOut)
				}
				switch rng.Intn(4) {
				case 0: // accept the whole stack
					eng.Commit()
					ref = states[depth]
				case 1: // partial rollback: keep a random prefix of the stack
					j := rng.Intn(depth + 1)
					if j < depth {
						eng.Rollback(inner[j])
					}
					eng.Commit()
					ref = states[j]
				default: // dirty rollback of the whole stack
					eng.Rollback(mark)
				}
				if !circuit.Equal(eng.Circuit(), ref) {
					t.Fatalf("step %d: engine diverged from scratch pipeline", step)
				}
			}
			st := eng.Stats()
			if st.Rollbacks == 0 || st.PositiveHits == 0 {
				t.Fatalf("test exercised nothing: %+v", st)
			}
			t.Logf("%s: %+v", name, st)
		})
	}
}

// TestRuleHaloDepth checks the compile-time halo sizing invariants for
// every rule in every library: the per-rule radius is at least 1, never
// exceeds the old global bound len(Pattern)+1 it replaced, and the
// per-wire extents sum to the pattern size.
func TestRuleHaloDepth(t *testing.T) {
	for name, rules := range AllLibraries() {
		for _, r := range rules {
			if d := r.HaloDepth(); d < 1 || d > len(r.Pattern)+1 {
				t.Errorf("%s/%s: halo depth %d outside [1, %d]", name, r.Name, d, len(r.Pattern)+1)
			}
			ext := r.WireExtents()
			if len(ext) != r.NumQubits {
				t.Errorf("%s/%s: %d wire extents for %d qubits", name, r.Name, len(ext), r.NumQubits)
				continue
			}
			for q, e := range ext {
				if e < 1 {
					t.Errorf("%s/%s: wire %d has extent %d, want ≥ 1 (unused pattern wire)", name, r.Name, q, e)
				}
				wires := 0
				for _, pg := range r.Pattern {
					for _, pq := range pg.Qubits {
						if pq == q {
							wires++
						}
					}
				}
				if e != wires {
					t.Errorf("%s/%s: wire %d extent %d, want %d", name, r.Name, q, e, wires)
				}
			}
		}
	}
	// A single-gate pattern has BFS eccentricity 0, so its halo radius is
	// exactly 1 — pin one known rule so the derivation can't silently grow.
	rules, err := RulesFor("nam")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if len(r.Pattern) == 1 {
			if d := r.HaloDepth(); d != 1 {
				t.Errorf("%s: single-gate pattern has halo depth %d, want 1", r.Name, d)
			}
		}
	}
}
