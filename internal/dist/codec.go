package dist

import (
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
)

// Wire codecs. JSON is the default and always works; two opt-in upgrades
// target the large-circuit payloads where QASM-in-JSON is the bottleneck:
//
//   - gzip transport compression, negotiated with the standard headers
//     (request: Content-Encoding; response: Accept-Encoding, applied to
//     bodies past a size floor). QASM text compresses ~10×.
//   - a length-prefixed binary envelope codec (Content-Type
//     application/x-guoq-bin) for the envelope-heavy endpoints, which
//     skips JSON string escaping and float formatting entirely. A client
//     requests binary responses with Accept: application/x-guoq-bin.
//
// Both are strictly per-request: a stock JSON client never sees either,
// and servers answer in kind, so the surface stays backward compatible.
const (
	contentTypeJSON   = "application/json"
	contentTypeBinary = "application/x-guoq-bin"

	// binMagic heads every binary body; the trailing byte is the version.
	binMagic = "GQB1"

	// gzipMinBytes is the response-compression floor: tiny bodies cost
	// more in gzip framing than they save.
	gzipMinBytes = 1024
)

// binaryMessage is implemented by wire types with a binary form. Fields
// are appended in declaration order: strings as uvarint length + bytes,
// floats as 8-byte little-endian IEEE 754 bits, bools as one byte.
type binaryMessage interface {
	appendBinary(b []byte) []byte
	decodeBinary(b []byte) error
}

func appendBinString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBinFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func appendBinBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// binReader decodes the field stream with sticky error tracking, so
// decoders read every field unconditionally and check once.
type binReader struct {
	b   []byte
	err error
}

func (r *binReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("dist: truncated binary message")
	}
}

func (r *binReader) string_() string {
	if r.err != nil {
		return ""
	}
	n, used := binary.Uvarint(r.b)
	if used <= 0 || uint64(len(r.b)-used) < n {
		r.fail()
		return ""
	}
	s := string(r.b[used : used+int(n)])
	r.b = r.b[used+int(n):]
	return s
}

func (r *binReader) float() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v
}

func (r *binReader) bool_() bool {
	if r.err != nil {
		return false
	}
	if len(r.b) < 1 {
		r.fail()
		return false
	}
	v := r.b[0] != 0
	r.b = r.b[1:]
	return v
}

// openBinary strips and verifies the magic header.
func openBinary(b []byte) (*binReader, error) {
	if len(b) < len(binMagic) || string(b[:len(binMagic)]) != binMagic {
		return nil, fmt.Errorf("dist: not a %s binary message", binMagic)
	}
	return &binReader{b: b[len(binMagic):]}, nil
}

func appendSolution(b []byte, s Solution) []byte {
	b = appendBinString(b, s.QASM)
	b = appendBinFloat(b, s.Err)
	return appendBinFloat(b, s.Cost)
}

func readSolution(r *binReader) Solution {
	var s Solution
	s.QASM = r.string_()
	s.Err = r.float()
	s.Cost = r.float()
	return s
}

func (m *ExchangeRequest) appendBinary(b []byte) []byte {
	b = append(b, binMagic...)
	b = appendBinString(b, m.Session)
	b = appendBinString(b, m.Worker)
	b = appendBinFloat(b, m.Epsilon)
	return appendSolution(b, m.Best)
}

func (m *ExchangeRequest) decodeBinary(b []byte) error {
	r, err := openBinary(b)
	if err != nil {
		return err
	}
	m.Session = r.string_()
	m.Worker = r.string_()
	m.Epsilon = r.float()
	m.Best = readSolution(r)
	return r.err
}

func (m *ExchangeResponse) appendBinary(b []byte) []byte {
	b = append(b, binMagic...)
	b = appendBinBool(b, m.Adopt)
	return appendSolution(b, m.Best)
}

func (m *ExchangeResponse) decodeBinary(b []byte) error {
	r, err := openBinary(b)
	if err != nil {
		return err
	}
	m.Adopt = r.bool_()
	m.Best = readSolution(r)
	return r.err
}

func (m *SubmitRequest) appendBinary(b []byte) []byte {
	b = append(b, binMagic...)
	b = appendBinString(b, m.QASM)
	b = appendBinString(b, m.Target)
	b = appendBinString(b, m.Objective)
	b = appendBinFloat(b, m.Epsilon)
	return appendBinString(b, m.Worker)
}

func (m *SubmitRequest) decodeBinary(b []byte) error {
	r, err := openBinary(b)
	if err != nil {
		return err
	}
	m.QASM = r.string_()
	m.Target = r.string_()
	m.Objective = r.string_()
	m.Epsilon = r.float()
	m.Worker = r.string_()
	return r.err
}

func (m *SubmitResponse) appendBinary(b []byte) []byte {
	b = append(b, binMagic...)
	b = appendBinBool(b, m.Cached)
	b = appendBinString(b, m.Session)
	return appendSolution(b, m.Best)
}

func (m *SubmitResponse) decodeBinary(b []byte) error {
	r, err := openBinary(b)
	if err != nil {
		return err
	}
	m.Cached = r.bool_()
	m.Session = r.string_()
	m.Best = readSolution(r)
	return r.err
}

// compile-time interface checks for every binary-capable wire type.
var (
	_ binaryMessage = (*ExchangeRequest)(nil)
	_ binaryMessage = (*ExchangeResponse)(nil)
	_ binaryMessage = (*SubmitRequest)(nil)
	_ binaryMessage = (*SubmitResponse)(nil)
)

func acceptsGzip(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept-Encoding"), "gzip")
}

func acceptsBinary(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), contentTypeBinary)
}

// readBody decodes a request body under the size cap, honoring gzip
// Content-Encoding and the binary Content-Type. Replies with the
// appropriate 4xx and returns false on any failure.
func readBody(w http.ResponseWriter, r *http.Request, into any) bool {
	body := io.Reader(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if enc := r.Header.Get("Content-Encoding"); strings.Contains(enc, "gzip") {
		zr, err := gzip.NewReader(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad gzip body: "+err.Error())
			return false
		}
		defer zr.Close()
		// MaxBytesReader bounds the compressed stream; bound the inflated
		// one too so a compression bomb cannot bypass the cap.
		body = io.LimitReader(zr, maxBodyBytes)
	}
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, contentTypeBinary) {
		bm, ok := into.(binaryMessage)
		if !ok {
			httpError(w, http.StatusUnsupportedMediaType, "endpoint has no binary form")
			return false
		}
		data, err := io.ReadAll(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return false
		}
		if err := bm.decodeBinary(data); err != nil {
			httpError(w, http.StatusBadRequest, "bad binary body: "+err.Error())
			return false
		}
		return true
	}
	if err := json.NewDecoder(body).Decode(into); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

// writeReply encodes v per the request's negotiation: binary when the
// client accepts it and v has a binary form, JSON otherwise; gzipped when
// the client accepts gzip and the body clears the size floor. A nil
// request always writes plain JSON.
func writeReply(w http.ResponseWriter, r *http.Request, v any) {
	var payload []byte
	ct := contentTypeJSON
	if r != nil && acceptsBinary(r) {
		if bm, ok := v.(binaryMessage); ok {
			payload = bm.appendBinary(nil)
			ct = contentTypeBinary
		}
	}
	if payload == nil {
		var err error
		if payload, err = json.Marshal(v); err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		payload = append(payload, '\n')
	}
	w.Header().Set("Content-Type", ct)
	if r != nil && len(payload) >= gzipMinBytes && acceptsGzip(r) {
		w.Header().Set("Content-Encoding", "gzip")
		zw := gzip.NewWriter(w)
		_, _ = zw.Write(payload)
		_ = zw.Close()
		return
	}
	_, _ = w.Write(payload)
}
