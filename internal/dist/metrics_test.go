package dist_test

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/dist"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/obs"
	"github.com/guoq-dev/guoq/internal/opt"
	"github.com/guoq-dev/guoq/internal/rewrite"
)

// /metrics serves the Prometheus text format and reflects real traffic:
// exchange publications and adoptions, lease handouts and retries, queue
// depths, request counters — and it stays open when token auth locks the
// /v1/ endpoints (like /healthz, so a stock scrape config needs no
// credentials).
func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	srv, hs := newLoopback(t, dist.ServerOptions{
		Token:    "sekrit",
		LeaseTTL: 10 * time.Millisecond,
		Metrics:  reg,
	})
	if srv.Registry() != reg {
		t.Fatal("server did not adopt the supplied registry")
	}

	cost := opt.TwoQubitCost()
	base := circuit.Random(4, 30, gateset.IBMEagle.Gates, rand.New(rand.NewSource(11)))
	better := circuit.New(4)
	w1 := client(t, hs, "s", "w1", 1e-8)
	w1.Token = "sekrit"
	w2 := client(t, hs, "s", "w2", 1e-8)
	w2.Token = "sekrit"

	w1.Exchange(base, 0, cost(base))                       // publish (stores the first best)
	w2.Exchange(better, 0, cost(better))                   // publish an improvement
	if _, _, ok := w1.Exchange(base, 0, cost(base)); !ok { // adopt it
		t.Fatal("expected an adoption")
	}

	// One lease, let it expire, lease again: the second handout is a retry.
	srv.Push("q", []dist.Job{{ID: "job"}})
	if _, ok, _, err := w1.Lease("q", 5*time.Millisecond); err != nil || !ok {
		t.Fatalf("first lease: ok=%v err=%v", ok, err)
	}
	time.Sleep(20 * time.Millisecond)
	if _, ok, _, err := w1.Lease("q", time.Minute); err != nil || !ok {
		t.Fatalf("re-lease after expiry: ok=%v err=%v", ok, err)
	}

	// A guoq worker colocated with the daemon shares the registry: engine
	// counters — including the positive-cache and halo families — surface
	// through the same scrape.
	em := opt.NewMetrics(reg)
	em.AddEngineStats(rewrite.EngineStats{
		CacheSkips: 5, PositiveHits: 7, Reinstalls: 3, HaloGates: 11, HaloDepth: 4,
	})

	// Unauthenticated scrape must succeed despite -token.
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics returned %s with token auth enabled", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	for _, want := range []string{
		"guoqd_exchange_publishes_total 2",
		"guoqd_exchange_adoptions_total 1",
		"guoqd_lease_requests_total 2",
		"guoqd_lease_retries_total 1",
		"guoqd_queue_leased_jobs 1",
		"guoqd_sessions_live 1",
		`guoqd_requests_total{path="/v1/exchange",code="200"} 3`,
		`guoqd_request_seconds_count{path="/v1/exchange"} 3`,
		"guoqd_uptime_seconds",
		"guoq_engine_cache_hits_total 5",
		"guoq_engine_positive_hits_total 7",
		"guoq_engine_reinstalls_total 3",
		"guoq_engine_halo_gates_total 11",
		"guoq_engine_halo_depth 4",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}

	// Unauthenticated /v1/ requests are rejected — and the rejection itself
	// is visible in the request series (metrics wrap outside auth).
	st, err := http.Get(hs.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	st.Body.Close()
	if st.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /v1/status returned %s", st.Status)
	}
	snap := reg.Snapshot()
	if snap[`guoqd_requests_total{path="/v1/status",code="401"}`] != 1 {
		t.Fatalf("401 not recorded in request series: %v", snap)
	}
}

// Cardinality of the path label is bounded: unknown paths and per-queue
// reads collapse to fixed label values, so a scanner cannot grow the
// registry.
func TestMetricsPathCardinality(t *testing.T) {
	reg := obs.NewRegistry()
	_, hs := newLoopback(t, dist.ServerOptions{Metrics: reg})
	for _, p := range []string{"/v1/queues/a", "/v1/queues/b", "/wp-admin.php", "/etc/passwd"} {
		resp, err := http.Get(hs.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	snap := reg.Snapshot()
	for k := range snap {
		if strings.Contains(k, "wp-admin") || strings.Contains(k, "passwd") ||
			strings.Contains(k, "/v1/queues/a") {
			t.Fatalf("unbounded path label leaked into the registry: %s", k)
		}
	}
	if snap[`guoqd_request_seconds_count{path="/v1/queues/{name}"}`] != 2 {
		t.Fatalf("per-queue requests did not collapse to one series: %v", snap)
	}
	if snap[`guoqd_request_seconds_count{path="other"}`] != 2 {
		t.Fatalf("unknown paths did not collapse to \"other\": %v", snap)
	}
}

// GET /v1/status carries the fleet-level additions — uptime and live
// exchange sessions — alongside the original session/queue maps (new
// fields only: old clients ignore them, old servers omit them).
func TestStatusUptimeAndLiveSessions(t *testing.T) {
	_, hs := newLoopback(t, dist.ServerOptions{})
	w := client(t, hs, "s", "w", 1e-8)
	w.Exchange(circuit.New(4), 0, 0)

	var st dist.Status
	resp, err := http.Get(hs.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.UptimeSeconds <= 0 {
		t.Fatalf("UptimeSeconds = %g, want > 0", st.UptimeSeconds)
	}
	if st.LiveSessions != 1 {
		t.Fatalf("LiveSessions = %d, want 1", st.LiveSessions)
	}
	if _, ok := st.Sessions["s"]; !ok {
		t.Fatal("original Sessions map lost")
	}
}
