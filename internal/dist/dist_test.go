package dist_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/dist"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/opt"
	"github.com/guoq-dev/guoq/internal/verify"
)

func newLoopback(t *testing.T, opts dist.ServerOptions) (*dist.Server, *httptest.Server) {
	t.Helper()
	srv := dist.NewServer(opts)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

func client(t *testing.T, hs *httptest.Server, session, worker string, eps float64) *dist.Client {
	t.Helper()
	c, err := dist.Dial(hs.URL, session, worker)
	if err != nil {
		t.Fatal(err)
	}
	c.Epsilon = eps
	c.MinInterval = -1 // deterministic: no rate limiting in tests
	return c
}

// The server mirrors the in-process coordinator's exchange invariants:
// store only strict improvements within the ε budget, offer the best only
// to callers strictly behind it.
func TestExchangeSessionSemantics(t *testing.T) {
	_, hs := newLoopback(t, dist.ServerOptions{})
	const eps = 1e-8
	cost := opt.TwoQubitCost()
	rng := rand.New(rand.NewSource(3))
	base := circuit.Random(4, 30, gateset.IBMEagle.Gates, rng)
	better := circuit.New(4)

	w1 := client(t, hs, "s", "w1", eps)
	w2 := client(t, hs, "s", "w2", eps)

	// First publication: nothing better exists, nothing to adopt.
	if _, _, ok := w1.Exchange(base, 0, cost(base)); ok {
		t.Fatal("fresh session offered an adoption")
	}
	// A better solution from another worker is stored but not returned to
	// its own publisher.
	if _, _, ok := w2.Exchange(better, 2e-9, cost(better)); ok {
		t.Fatal("publisher was offered its own solution")
	}
	// The worker that is behind adopts it, with the error bound intact.
	adopt, adoptErr, ok := w1.Exchange(base, 0, cost(base))
	if !ok {
		t.Fatal("lagging worker was not offered the session best")
	}
	if adoptErr != 2e-9 {
		t.Fatalf("adopted error bound %g, want 2e-9", adoptErr)
	}
	if got := cost(adopt); got != cost(better) {
		t.Fatalf("adopted cost %g, want %g", got, cost(better))
	}

	// An over-budget publication must be rejected even when its cost wins:
	// accepting it would leak BestError > Epsilon to every participant.
	if _, _, ok := w2.Exchange(better, 1e-3, -1); ok {
		t.Fatal("over-budget publication was stored and offered back")
	}
	if _, adoptErr, ok := w1.Exchange(base, 0, cost(base)); !ok || adoptErr != 2e-9 {
		t.Fatalf("session best corrupted by over-budget publication: ok=%v err=%g", ok, adoptErr)
	}

	// Stats reflect the traffic.
	st := w1.Stats()
	if st.Exchanges != 3 || st.Adoptions != 2 || st.Errors != 0 {
		t.Fatalf("w1 stats = %+v", st)
	}
}

// Two sessions never cross-pollinate, and SessionID separates different
// inputs while agreeing across processes for equal ones.
func TestSessionIsolation(t *testing.T) {
	_, hs := newLoopback(t, dist.ServerOptions{})
	cost := opt.TwoQubitCost()
	rng := rand.New(rand.NewSource(4))
	a := circuit.Random(4, 30, gateset.IBMEagle.Gates, rng)
	b := circuit.Random(4, 30, gateset.IBMEagle.Gates, rng)

	if dist.SessionID(a, "2q", 1e-8) == dist.SessionID(b, "2q", 1e-8) {
		t.Fatal("different circuits derived the same session id")
	}
	if dist.SessionID(a, "2q", 1e-8) != dist.SessionID(a.Clone(), "2q", 1e-8) {
		t.Fatal("equal circuits derived different session ids")
	}
	if dist.SessionID(a, "2q", 1e-8) == dist.SessionID(a, "t", 1e-8) {
		t.Fatal("different objectives shared a session id")
	}

	wa := client(t, hs, dist.SessionID(a, "2q", 1e-8), "wa", 1e-8)
	wb := client(t, hs, dist.SessionID(b, "2q", 1e-8), "wb", 1e-8)
	wa.Exchange(circuit.New(4), 0, 0) // session a best: empty circuit
	if _, _, ok := wb.Exchange(b, 0, cost(b)); ok {
		t.Fatal("session b adopted session a's solution")
	}
}

// A client never adopts a solution whose bound exceeds its own ε budget,
// even when a session pinned across runs with different -epsilon values
// tolerates it server-side.
func TestClientRejectsOverBudgetAdoption(t *testing.T) {
	_, hs := newLoopback(t, dist.ServerOptions{})
	cost := opt.TwoQubitCost()
	rng := rand.New(rand.NewSource(9))
	base := circuit.Random(4, 30, gateset.IBMEagle.Gates, rng)

	// The loose run creates the session with ε=1e-2 and publishes a best
	// whose bound (1e-3) fits that budget.
	loose := client(t, hs, "pinned", "loose", 1e-2)
	loose.Exchange(circuit.New(4), 1e-3, 0)

	// The strict run (ε=1e-8) would be offered that solution, but must
	// refuse it: adopting would break its BestError ≤ Epsilon contract.
	strict := client(t, hs, "pinned", "strict", 1e-8)
	if _, _, ok := strict.Exchange(base, 0, cost(base)); ok {
		t.Fatal("strict client adopted a solution 5 orders of magnitude over its ε budget")
	}
	// A bound within the strict budget is still adoptable.
	loose.Exchange(circuit.New(4), 2e-9, -1)
	if _, adoptErr, ok := strict.Exchange(base, 0, cost(base)); !ok || adoptErr != 2e-9 {
		t.Fatalf("strict client refused an in-budget adoption: ok=%v err=%g", ok, adoptErr)
	}
}

// The exchange rate limit answers stale polls locally and lets
// improvements through immediately.
func TestClientExchangeThrottle(t *testing.T) {
	_, hs := newLoopback(t, dist.ServerOptions{})
	cost := opt.TwoQubitCost()
	rng := rand.New(rand.NewSource(10))
	base := circuit.Random(4, 30, gateset.IBMEagle.Gates, rng)

	c := client(t, hs, "throttle", "w", 1e-8)
	c.MinInterval = time.Hour // nothing non-improving gets through

	c.Exchange(base, 0, cost(base))   // first call always goes out
	c.Exchange(base, 0, cost(base))   // stale repeat: throttled
	c.Exchange(base, 0, cost(base)-1) // improvement: goes out
	c.Exchange(base, 0, cost(base)-1) // stale again: throttled
	st := c.Stats()
	if st.Exchanges != 2 || st.Throttled != 2 {
		t.Fatalf("stats = %+v, want 2 exchanges and 2 throttled", st)
	}
}

// A client facing a dead coordinator degrades to local search: Exchange
// reports nothing to adopt and counts the error.
func TestClientDegradesWithoutCoordinator(t *testing.T) {
	c := dist.NewClient("127.0.0.1:1", "s", "w") // nothing listens on port 1
	if _, _, ok := c.Exchange(circuit.New(2), 0, 1); ok {
		t.Fatal("exchange against a dead coordinator claimed success")
	}
	if st := c.Stats(); st.Errors != 1 {
		t.Fatalf("stats = %+v, want 1 error", st)
	}
}

// Acceptance: two Portfolio runs on separate Exchanger clients converge
// through one coordinator to a result no worse than either run alone,
// with BestError ≤ Epsilon preserved across migration and the result
// still ε-equivalent to the input.
func TestLoopbackDistributedPortfolio(t *testing.T) {
	srv, hs := newLoopback(t, dist.ServerOptions{})
	_ = srv
	const eps = 1e-8

	ts, err := opt.Instantiate(gateset.IBMEagle, opt.InstantiateOptions{
		EpsilonF:  eps,
		SynthTime: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.Random(5, 60, gateset.IBMEagle.Gates, rand.New(rand.NewSource(6)))
	session := dist.SessionID(c, "2q", eps)
	cost := opt.TwoQubitCost()

	results := make([]*opt.Result, 2)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := opt.DefaultOptions()
			opts.Cost = cost
			opts.Seed = int64(100 + i)
			opts.TimeBudget = 200 * time.Millisecond
			opts.ExchangeEvery = 8
			opts.Exchanger = client(t, hs, session, "machine", eps)
			results[i] = opt.Portfolio(c, ts, opts, 2)
		}(i)
	}
	wg.Wait()

	inCost := cost(c)
	for i, r := range results {
		if r.BestError > eps {
			t.Fatalf("run %d: BestError %g exceeds budget %g", i, r.BestError, eps)
		}
		if got := cost(r.Best); got > inCost {
			t.Fatalf("run %d: cost regressed %g -> %g", i, inCost, got)
		}
		if err := verify.MustBeEquivalent(c, r.Best, 1e-6, int64(23+i)); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}

	// The session best is the global convergence point: no worse than
	// either run alone, within budget, and still equivalent to the input.
	probe := client(t, hs, session, "probe", eps)
	global, globalErr, ok := probe.Exchange(c, 0, 1e308)
	if !ok {
		t.Fatal("probe found no session best after two portfolio runs")
	}
	if globalErr > eps {
		t.Fatalf("session best error %g exceeds budget %g", globalErr, eps)
	}
	gc := cost(global)
	for i, r := range results {
		if gc > cost(r.Best) {
			t.Fatalf("session best (%g) worse than run %d alone (%g)", gc, i, cost(r.Best))
		}
	}
	if err := verify.MustBeEquivalent(c, global, 1e-6, 29); err != nil {
		t.Fatal("session best not equivalent to input:", err)
	}
}

// Malformed or poisonous publications (garbage QASM) must never become the
// session best another machine would adopt and fail to parse.
func TestExchangeRejectsMalformedQASM(t *testing.T) {
	srv, hs := newLoopback(t, dist.ServerOptions{})
	_ = srv
	cost := opt.TwoQubitCost()
	rng := rand.New(rand.NewSource(8))
	base := circuit.Random(4, 30, gateset.IBMEagle.Gates, rng)

	honest := client(t, hs, "poison", "honest", 1e-8)
	if _, _, ok := honest.Exchange(base, 0, cost(base)); ok {
		t.Fatal("fresh session offered an adoption")
	}

	// Hand-roll a poisoned publication: it costs less than anything
	// honest, but the QASM is garbage.
	req := dist.ExchangeRequest{
		Session: "poison", Worker: "evil", Epsilon: 1e-8,
		Best: dist.Solution{
			Envelope: circuit.Envelope{QASM: "not qasm at all", Err: 0},
			Cost:     -100,
		},
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(hs.URL+"/v1/exchange", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var xr dist.ExchangeResponse
	if err := json.NewDecoder(resp.Body).Decode(&xr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if xr.Adopt {
		t.Fatal("garbage publication was offered back")
	}
	if _, _, ok := honest.Exchange(base, 0, cost(base)); ok {
		t.Fatal("garbage publication became the session best")
	}
}
