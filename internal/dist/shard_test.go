package dist_test

// Loopback smoke test for sharded benchmarking: a coordinator seeded with
// suite circuits, drained by concurrent guoqbench-style workers leasing
// jobs over HTTP — the in-process version of the CI smoke walkthrough.

import (
	"encoding/json"
	"io"
	"sync"
	"testing"
	"time"

	"github.com/guoq-dev/guoq/internal/benchmarks"
	"github.com/guoq-dev/guoq/internal/dist"
	"github.com/guoq-dev/guoq/internal/experiments"
)

func TestShardedBenchLoopback(t *testing.T) {
	srv, hs := newLoopback(t, dist.ServerOptions{LeaseTTL: 30 * time.Second})

	suite := experiments.Subsample(benchmarks.Suite(), 4)
	jobs := make([]dist.Job, 0, len(suite))
	want := map[string]bool{}
	for _, b := range suite {
		jobs = append(jobs, dist.Job{ID: b.Name})
		want[b.Name] = true
	}
	if added := srv.Push("bench", jobs); added != len(jobs) {
		t.Fatalf("seeded %d jobs, want %d", added, len(jobs))
	}

	cfg := experiments.Config{
		Budget:  20 * time.Millisecond,
		Epsilon: 1e-8,
		Seed:    1,
		Out:     io.Discard,
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		byName  = map[string]int{}
		results []experiments.CircuitResult
	)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			worker := []string{"alpha", "beta"}[i]
			c, err := dist.Dial(hs.URL, "", worker)
			if err != nil {
				t.Error(err)
				return
			}
			rs, err := experiments.Bench(cfg, experiments.BenchOptions{
				Source: &dist.JobSource{Client: c, QueueName: "bench", TTL: 10 * time.Second, Poll: 20 * time.Millisecond},
				Worker: worker,
			})
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			for _, r := range rs {
				byName[r.Name]++
			}
			results = append(results, rs...)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Every circuit ran exactly once across the two workers.
	if len(results) != len(suite) {
		t.Fatalf("workers produced %d results for %d jobs", len(results), len(suite))
	}
	for name := range want {
		if byName[name] != 1 {
			t.Fatalf("circuit %s ran %d times, want exactly 1 (counts: %v)", name, byName[name], byName)
		}
	}
	for _, r := range results {
		if r.Err > cfg.Epsilon {
			t.Fatalf("%s: ε bound %g exceeds budget %g", r.Name, r.Err, cfg.Epsilon)
		}
		if r.TwoQubitAfter > r.TwoQubitBefore {
			t.Fatalf("%s: two-qubit count regressed %d -> %d", r.Name, r.TwoQubitBefore, r.TwoQubitAfter)
		}
	}

	// The coordinator holds the merged per-circuit records.
	probe, err := dist.Dial(hs.URL, "", "probe")
	if err != nil {
		t.Fatal(err)
	}
	st, err := probe.Queue("bench")
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != len(suite) || st.Pending != 0 || st.Leased != 0 {
		t.Fatalf("queue status = %+v, want all %d done", st, len(suite))
	}
	for name := range want {
		var r experiments.CircuitResult
		if err := json.Unmarshal(st.Results[name], &r); err != nil {
			t.Fatalf("result for %s not decodable: %v", name, err)
		}
		if r.Name != name || r.Worker == "" {
			t.Fatalf("result for %s malformed: %+v", name, r)
		}
	}
}

// Lease/retry over the wire: a worker that leases and dies has its job
// re-issued to another worker after the TTL.
func TestHTTPLeaseRetryAfterDeadWorker(t *testing.T) {
	srv, hs := newLoopback(t, dist.ServerOptions{})
	srv.Push("q", []dist.Job{{ID: "only"}})

	dead, err := dist.Dial(hs.URL, "", "dead")
	if err != nil {
		t.Fatal(err)
	}
	job, ok, _, err := dead.Lease("q", 50*time.Millisecond)
	if err != nil || !ok || job.ID != "only" {
		t.Fatalf("first lease: job=%+v ok=%v err=%v", job, ok, err)
	}
	// The worker dies without completing. Before expiry nobody else gets
	// the job; after expiry the next worker does.
	alive, err := dist.Dial(hs.URL, "", "alive")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, drained, _ := alive.Lease("q", time.Minute); ok || drained {
		t.Fatal("job re-leased before the dead worker's TTL expired")
	}
	time.Sleep(80 * time.Millisecond)
	job, ok, _, err = alive.Lease("q", time.Minute)
	if err != nil || !ok || job.ID != "only" {
		t.Fatalf("re-lease after expiry: job=%+v ok=%v err=%v", job, ok, err)
	}
	if err := alive.Complete("q", "only", map[string]string{"by": "alive"}); err != nil {
		t.Fatal(err)
	}
	st, err := alive.Queue("q")
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 || st.Pending != 0 || st.Leased != 0 {
		t.Fatalf("queue status after recovery = %+v", st)
	}

	// Probing a queue nobody seeded must not create it: status is a 404
	// and a lease reports "try later" (not drained), so a worker that
	// starts before the seeder just keeps polling.
	if _, err := alive.Queue("never-seeded"); err == nil {
		t.Fatal("status probe of an unknown queue succeeded (and would have created it)")
	}
	if _, ok, drained, err := alive.Lease("never-seeded", time.Minute); err != nil || ok || drained {
		t.Fatalf("lease on unseeded queue: ok=%v drained=%v err=%v, want false/false/nil", ok, drained, err)
	}
	if _, err := alive.Queue("never-seeded"); err == nil {
		t.Fatal("leasing created the unknown queue")
	}
}
