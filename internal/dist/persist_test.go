package dist

import (
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gateset"
)

// openDurable builds a durable coordinator over dir with per-append fsync
// (deterministic tests) and serves it over a loopback listener.
func openDurable(t *testing.T, dir string, opts ServerOptions) (*Server, *httptest.Server) {
	t.Helper()
	opts.DataDir = dir
	opts.SyncEvery = -1
	srv, err := OpenServer(opts)
	if err != nil {
		t.Fatalf("OpenServer: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(func() { srv.Close() })
	return srv, hs
}

func testClient(t *testing.T, url, session, worker string, eps float64) *Client {
	t.Helper()
	c := NewClient(url, session, worker)
	c.Epsilon = eps
	c.MinInterval = -1
	return c
}

// The acceptance-criteria test: kill a durable guoqd mid-run, restart on
// the same data dir, and the restarted daemon serves the pre-restart
// session's best-so-far, keeps unexpired leases out of circulation, and
// retains completed results.
func TestRestartRecoversSessionsAndLeases(t *testing.T) {
	dir := t.TempDir()
	const eps = 1e-8
	rng := rand.New(rand.NewSource(7))
	best := circuit.Random(4, 30, gateset.IBMEagle.Gates, rng)

	srv, hs := openDurable(t, dir, ServerOptions{})
	w1 := testClient(t, hs.URL, "crash-session", "w1", eps)
	// Publish a best-so-far into the session.
	if _, _, ok := w1.Exchange(best, 2e-9, 10); ok {
		t.Fatal("fresh session offered an adoption")
	}
	// Seed a queue, lease one job, complete another.
	if added, err := w1.Push("bench", []Job{{ID: "a"}, {ID: "b"}, {ID: "c"}}); err != nil || added != 3 {
		t.Fatalf("Push = (%d, %v)", added, err)
	}
	job, ok, _, err := w1.Lease("bench", time.Hour)
	if err != nil || !ok {
		t.Fatalf("Lease = (%+v, %v, %v)", job, ok, err)
	}
	if err := w1.Complete("bench", "b", map[string]int{"gates": 42}); err != nil {
		// "b" may be the leased job; complete whichever is still pending.
		t.Fatalf("Complete: %v", err)
	}
	// Simulate a crash: close the HTTP side and reopen WITHOUT srv.Close()
	// — no final checkpoint, everything must come back from the WAL alone.
	hs.Close()
	if err := srv.store.Sync(); err != nil {
		t.Fatal(err)
	}
	srv.store.Close()

	srv2, hs2 := openDurable(t, dir, ServerOptions{})
	if srv2.recoveredSessions != 1 {
		t.Fatalf("recovered %d sessions, want 1", srv2.recoveredSessions)
	}
	if srv2.recoveredJobs != 2 {
		t.Fatalf("recovered %d live jobs, want 2 (1 pending + 1 leased)", srv2.recoveredJobs)
	}
	// The session kept its ε budget and best-so-far: a worker that is
	// behind adopts the pre-restart best.
	srv2.mu.Lock()
	ss := srv2.sessions["crash-session"]
	srv2.mu.Unlock()
	if ss == nil {
		t.Fatal("session lost across restart")
	}
	if st := ss.status(); st.Epsilon != eps || st.BestCost != 10 || st.BestErr != 2e-9 {
		t.Fatalf("recovered session = %+v, want ε=%g cost=10 err=2e-9", st, eps)
	}
	w2 := testClient(t, hs2.URL, "crash-session", "w2", eps)
	worse := circuit.Random(4, 40, gateset.IBMEagle.Gates, rng)
	adopted, adoptErr, ok := w2.Exchange(worse, 0, 99)
	if !ok {
		t.Fatal("restarted coordinator did not offer the pre-restart best")
	}
	if adoptErr != 2e-9 || adopted.WriteQASM() != best.WriteQASM() {
		t.Fatalf("adopted (err=%g) is not the pre-restart best", adoptErr)
	}
	// The unexpired lease survives: w2 gets the remaining pending job, and
	// a further lease finds nothing (one job still leased to w1, not two).
	job2, ok, drained, err := w2.Lease("bench", time.Hour)
	if err != nil || !ok || job2.ID == job.ID {
		t.Fatalf("post-restart lease = (%+v, %v, %v, %v); must not re-issue %q", job2, ok, drained, err, job.ID)
	}
	if _, ok, drained, _ := w2.Lease("bench", time.Hour); ok || drained {
		t.Fatalf("third lease = ok=%v drained=%v, want empty but not drained (two live leases)", ok, drained)
	}
	// The completed result survives too.
	st, err := w2.Queue("bench")
	if err != nil {
		t.Fatal(err)
	}
	var res map[string]int
	if err := json.Unmarshal(st.Results["b"], &res); err != nil || res["gates"] != 42 {
		t.Fatalf("completed result lost: %s (%v)", st.Results["b"], err)
	}
}

// An expired lease is re-issued after restart with its attempt count
// intact, so dead-worker recovery works across coordinator restarts.
func TestRestartReleasesExpiredLease(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	srv, hs := openDurable(t, dir, ServerOptions{})
	srv.now = clock.Now
	w := testClient(t, hs.URL, "", "w1", 1e-8)
	if _, err := w.Push("q", []Job{{ID: "j"}}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _, err := w.Lease("q", time.Minute); err != nil || !ok {
		t.Fatalf("lease failed: %v", err)
	}
	hs.Close()
	srv.store.Sync()
	srv.store.Close()

	srv2, hs2 := openDurable(t, dir, ServerOptions{})
	clock.Advance(2 * time.Minute) // past the lease TTL
	srv2.now = clock.Now
	w2 := testClient(t, hs2.URL, "", "w2", 1e-8)
	job, ok, _, err := w2.Lease("q", time.Minute)
	if err != nil || !ok || job.ID != "j" {
		t.Fatalf("expired lease not re-issued: (%+v, %v, %v)", job, ok, err)
	}
	srv2.mu.Lock()
	attempts := srv2.queues["q"].leased["j"].attempts
	srv2.mu.Unlock()
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (count survived the restart)", attempts)
	}
}

// A torn WAL tail — the half-written record a crash mid-append leaves —
// is truncated away and everything before it replays.
func TestRestartSurvivesTornWALTail(t *testing.T) {
	dir := t.TempDir()
	srv, hs := openDurable(t, dir, ServerOptions{})
	w := testClient(t, hs.URL, "torn", "w1", 1e-4)
	rng := rand.New(rand.NewSource(9))
	c := circuit.Random(3, 20, gateset.IBMEagle.Gates, rng)
	if _, _, ok := w.Exchange(c, 0, 5); ok {
		t.Fatal("unexpected adoption")
	}
	hs.Close()
	srv.store.Sync()
	srv.store.Close()

	// Crash mid-append: garbage at the WAL tail.
	wal := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	srv2, _ := openDurable(t, dir, ServerOptions{})
	if srv2.recoveredSessions != 1 {
		t.Fatalf("recovered %d sessions, want 1 (intact prefix must replay)", srv2.recoveredSessions)
	}
	srv2.mu.Lock()
	ss := srv2.sessions["torn"]
	srv2.mu.Unlock()
	if ss == nil || ss.status().Epsilon != 1e-4 {
		t.Fatal("session state lost to the torn tail")
	}
}

// A graceful Close checkpoints: the next boot replays from the snapshot
// with an empty WAL, and state still matches.
func TestCloseCheckpointsAndReopens(t *testing.T) {
	dir := t.TempDir()
	srv, hs := openDurable(t, dir, ServerOptions{})
	w := testClient(t, hs.URL, "snap", "w1", 1e-8)
	rng := rand.New(rand.NewSource(5))
	c := circuit.Random(3, 20, gateset.IBMEagle.Gates, rng)
	if _, _, ok := w.Exchange(c, 0, 7); ok {
		t.Fatal("unexpected adoption")
	}
	if _, err := w.Push("q", []Job{{ID: "x"}}); err != nil {
		t.Fatal(err)
	}
	hs.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if fi, err := os.Stat(filepath.Join(dir, "wal.log")); err != nil || fi.Size() != 0 {
		t.Fatalf("WAL not compacted at Close: size=%v err=%v", fi.Size(), err)
	}

	srv2, hs2 := openDurable(t, dir, ServerOptions{})
	if srv2.recoveredSessions != 1 || srv2.recoveredJobs != 1 {
		t.Fatalf("recovered (%d sessions, %d jobs), want (1, 1)", srv2.recoveredSessions, srv2.recoveredJobs)
	}
	w2 := testClient(t, hs2.URL, "", "w2", 1e-8)
	if job, ok, _, err := w2.Lease("q", time.Minute); err != nil || !ok || job.ID != "x" {
		t.Fatalf("snapshot-recovered job not leasable: (%+v, %v, %v)", job, ok, err)
	}
}
