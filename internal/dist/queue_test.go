package dist

import (
	"encoding/json"
	"testing"
	"time"
)

func TestWorkQueueLeaseCompleteFlow(t *testing.T) {
	q := newWorkQueue(3)
	now := time.Unix(1000, 0)
	if added := q.push([]Job{{ID: "a"}, {ID: "b"}, {ID: "a"}, {}}); added != 2 {
		t.Fatalf("push added %d, want 2 (duplicate and empty ids skipped)", added)
	}

	j1, ok, drained := q.lease("w1", time.Minute, now)
	if !ok || drained || j1.ID != "a" {
		t.Fatalf("first lease = %+v ok=%v drained=%v", j1, ok, drained)
	}
	j2, ok, _ := q.lease("w2", time.Minute, now)
	if !ok || j2.ID != "b" {
		t.Fatalf("second lease = %+v ok=%v", j2, ok)
	}
	// Everything is leased: not drained, nothing to hand out.
	if _, ok, drained := q.lease("w3", time.Minute, now); ok || drained {
		t.Fatalf("lease on busy queue: ok=%v drained=%v, want false/false", ok, drained)
	}

	if err := q.complete("a", json.RawMessage(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := q.complete("a", json.RawMessage(`{"x":2}`)); err != nil {
		t.Fatal("second completion must be idempotent:", err)
	}
	if string(q.results["a"]) != `{"x":1}` {
		t.Fatalf("first completion must win, got %s", q.results["a"])
	}
	if err := q.complete("nope", nil); err == nil {
		t.Fatal("completing an unknown job must error")
	}
	if err := q.complete("b", nil); err != nil {
		t.Fatal(err)
	}
	if _, ok, drained := q.lease("w1", time.Minute, now); ok || !drained {
		t.Fatalf("finished queue: ok=%v drained=%v, want false/true", ok, drained)
	}
}

// A dead worker's lease expires and the job goes to another worker; after
// maxAttempts expiries the job is failed rather than retried forever.
func TestWorkQueueLeaseExpiryAndRetryCap(t *testing.T) {
	q := newWorkQueue(2)
	q.push([]Job{{ID: "poison"}})
	now := time.Unix(1000, 0)

	j, ok, _ := q.lease("w1", time.Second, now)
	if !ok || j.ID != "poison" {
		t.Fatal("first lease failed")
	}
	// Before expiry the job stays leased.
	if _, ok, drained := q.lease("w2", time.Second, now.Add(500*time.Millisecond)); ok || drained {
		t.Fatal("job re-leased before its TTL expired")
	}
	// After expiry it is re-issued to the next worker (attempt 2 of 2).
	j, ok, _ = q.lease("w2", time.Second, now.Add(2*time.Second))
	if !ok || j.ID != "poison" {
		t.Fatal("expired lease was not re-issued")
	}
	// Second expiry exhausts the attempts: the job fails, queue drains.
	_, ok, drained := q.lease("w3", time.Second, now.Add(10*time.Second))
	if ok || !drained {
		t.Fatalf("spent job handed out again: ok=%v drained=%v", ok, drained)
	}
	st := q.status(now.Add(10*time.Second), false)
	if len(st.Failed) != 1 || st.Failed[0] != "poison" {
		t.Fatalf("failed list = %v, want [poison]", st.Failed)
	}

	// A late completion from the original worker is still accepted: the
	// work happened, failure is not final when results arrive.
	if err := q.complete("poison", json.RawMessage(`"late"`)); err != nil {
		t.Fatal(err)
	}
	st = q.status(now.Add(11*time.Second), true)
	if st.Done != 1 || len(st.Failed) != 0 {
		t.Fatalf("late completion not recorded: %+v", st)
	}
}
