package dist

import (
	"encoding/json"
	"testing"
	"time"
)

func TestWorkQueueLeaseCompleteFlow(t *testing.T) {
	q := newWorkQueue(3)
	now := time.Unix(1000, 0)
	if added := q.push([]Job{{ID: "a"}, {ID: "b"}, {ID: "a"}, {}}); added != 2 {
		t.Fatalf("push added %d, want 2 (duplicate and empty ids skipped)", added)
	}

	j1, ok, drained := q.lease("w1", time.Minute, now)
	if !ok || drained || j1.ID != "a" {
		t.Fatalf("first lease = %+v ok=%v drained=%v", j1, ok, drained)
	}
	j2, ok, _ := q.lease("w2", time.Minute, now)
	if !ok || j2.ID != "b" {
		t.Fatalf("second lease = %+v ok=%v", j2, ok)
	}
	// Everything is leased: not drained, nothing to hand out.
	if _, ok, drained := q.lease("w3", time.Minute, now); ok || drained {
		t.Fatalf("lease on busy queue: ok=%v drained=%v, want false/false", ok, drained)
	}

	if err := q.complete("a", json.RawMessage(`{"x":1}`), now); err != nil {
		t.Fatal(err)
	}
	if err := q.complete("a", json.RawMessage(`{"x":2}`), now); err != nil {
		t.Fatal("second completion must be idempotent:", err)
	}
	if string(q.results["a"]) != `{"x":1}` {
		t.Fatalf("first completion must win, got %s", q.results["a"])
	}
	if err := q.complete("nope", nil, now); err == nil {
		t.Fatal("completing an unknown job must error")
	}
	if err := q.complete("b", nil, now); err != nil {
		t.Fatal(err)
	}
	if _, ok, drained := q.lease("w1", time.Minute, now); ok || !drained {
		t.Fatalf("finished queue: ok=%v drained=%v, want false/true", ok, drained)
	}
}

// A dead worker's lease expires and the job goes to another worker; after
// maxAttempts expiries the job is failed rather than retried forever.
func TestWorkQueueLeaseExpiryAndRetryCap(t *testing.T) {
	q := newWorkQueue(2)
	q.push([]Job{{ID: "poison"}})
	now := time.Unix(1000, 0)

	j, ok, _ := q.lease("w1", time.Second, now)
	if !ok || j.ID != "poison" {
		t.Fatal("first lease failed")
	}
	// Before expiry the job stays leased.
	if _, ok, drained := q.lease("w2", time.Second, now.Add(500*time.Millisecond)); ok || drained {
		t.Fatal("job re-leased before its TTL expired")
	}
	// After expiry it is re-issued to the next worker (attempt 2 of 2).
	j, ok, _ = q.lease("w2", time.Second, now.Add(2*time.Second))
	if !ok || j.ID != "poison" {
		t.Fatal("expired lease was not re-issued")
	}
	// Second expiry exhausts the attempts: the job fails, queue drains.
	_, ok, drained := q.lease("w3", time.Second, now.Add(10*time.Second))
	if ok || !drained {
		t.Fatalf("spent job handed out again: ok=%v drained=%v", ok, drained)
	}
	st := q.status(now.Add(10*time.Second), false)
	if len(st.Failed) != 1 || st.Failed[0] != "poison" {
		t.Fatalf("failed list = %v, want [poison]", st.Failed)
	}

	// A late completion from the original worker is still accepted: the
	// work happened, failure is not final when results arrive.
	if err := q.complete("poison", json.RawMessage(`"late"`), now.Add(11*time.Second)); err != nil {
		t.Fatal(err)
	}
	st = q.status(now.Add(11*time.Second), true)
	if st.Done != 1 || len(st.Failed) != 0 {
		t.Fatalf("late completion not recorded: %+v", st)
	}
}

// Reaping must also happen on complete: with lease and status as the only
// reap points, a dead worker's expired job sat in the leased map across an
// arbitrarily long run of completions and was retried (or failed) only when
// some worker next polled.
func TestWorkQueueCompleteReapsExpiredLeases(t *testing.T) {
	q := newWorkQueue(2)
	q.push([]Job{{ID: "a"}, {ID: "b"}})
	now := time.Unix(1000, 0)

	if _, ok, _ := q.lease("w1", time.Minute, now); !ok {
		t.Fatal("lease a failed")
	}
	if j, ok, _ := q.lease("w2", time.Second, now); !ok || j.ID != "b" {
		t.Fatal("lease b failed")
	}
	// b's lease is long expired when w1 completes a; the completion alone
	// must return b to the pending list.
	if err := q.complete("a", nil, now.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, still := q.leased["b"]; still {
		t.Fatal("complete did not reap the expired lease")
	}
	if len(q.pending) != 1 || q.pending[0].job.ID != "b" {
		t.Fatalf("expired job not returned to pending: %d pending", len(q.pending))
	}

	// Same shape with b's attempts spent: the completion-triggered reap
	// must mark it failed instead of re-queuing it.
	if j, ok, _ := q.lease("w3", time.Second, now.Add(2*time.Hour)); !ok || j.ID != "b" {
		t.Fatal("re-lease b failed")
	}
	if err := q.complete("c", nil, now.Add(3*time.Hour)); err == nil {
		t.Fatal("completing an unknown job must error")
	}
	if !q.failed["b"] {
		t.Fatal("spent job not failed by the completion-triggered reap")
	}
}

// The maxAttempts boundary, pinned: a job whose lease expires exactly
// maxAttempts times must fail and drain the queue — never be handed out an
// (attempts+1)-th time.
func TestWorkQueueMaxAttemptsBoundary(t *testing.T) {
	const maxAttempts = 3
	q := newWorkQueue(maxAttempts)
	q.push([]Job{{ID: "flaky"}})
	now := time.Unix(1000, 0)

	for attempt := 1; attempt <= maxAttempts; attempt++ {
		j, ok, drained := q.lease("w", time.Second, now)
		if !ok || j.ID != "flaky" {
			t.Fatalf("attempt %d: lease = %+v ok=%v drained=%v", attempt, j, ok, drained)
		}
		now = now.Add(2 * time.Second) // let the lease expire
	}
	// All attempts spent: the next poll reports drained, not a 4th lease.
	j, ok, drained := q.lease("w", time.Second, now)
	if ok {
		t.Fatalf("job handed out a %dth time: %+v", maxAttempts+1, j)
	}
	if !drained {
		t.Fatal("queue with only a spent job must report drained")
	}
	st := q.status(now, false)
	if len(st.Failed) != 1 || st.Failed[0] != "flaky" || st.Pending != 0 || st.Leased != 0 {
		t.Fatalf("status after exhaustion = %+v, want only failed [flaky]", st)
	}
}
