// Package dist turns the single-process portfolio of internal/opt into a
// multi-machine optimization service. It has three pieces:
//
//   - A wire protocol (wire.go): JSON over HTTP, carrying circuits as
//     OpenQASM 2.0 envelopes with their accumulated ε bound
//     (circuit.Envelope) so the error bookkeeping of Thm 4.2 survives
//     process boundaries bit-for-bit.
//
//   - A coordinator server (server.go), surfaced as the guoqd daemon:
//     best-so-far exchange sessions keyed by a session id (every
//     participant in a session optimizes the same circuit under the same
//     objective), plus named work queues that shard a benchmark suite
//     across workers with lease/retry semantics — a job leased by a worker
//     that dies is re-queued when the lease expires, and given up after a
//     bounded number of attempts.
//
//   - A client (client.go) implementing opt.Exchanger over the network, so
//     a Portfolio on one machine plugs into a guoqd coordinator exactly
//     like its workers plug into the in-process coordinator. Exchange
//     failures degrade gracefully: a worker that cannot reach the
//     coordinator keeps searching alone.
//
// The exchange invariants mirror the in-process coordinator: the server
// only stores a published solution when it strictly improves the session's
// best and its error bound fits the session's ε budget, and it only offers
// its best to callers that are strictly behind — so migration can never
// regress a worker and BestError ≤ Epsilon is preserved end to end.
package dist
