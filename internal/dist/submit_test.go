package dist_test

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/dist"
	"github.com/guoq-dev/guoq/internal/gateset"
)

// Submit → optimize → resubmit: the second submission of the identical
// (circuit, target, ε, objective) is answered from the result cache
// without opening a session, and the metrics surface reports the hit.
func TestSubmitCacheRoundTrip(t *testing.T) {
	_, hs := newLoopback(t, dist.ServerOptions{})
	const eps = 1e-8
	rng := rand.New(rand.NewSource(11))
	input := circuit.Random(4, 30, gateset.IBMEagle.Gates, rng)
	optimized := circuit.Random(4, 12, gateset.IBMEagle.Gates, rng)

	w1 := client(t, hs, "", "w1", eps)
	resp, err := w1.Submit(input, "ibm-eagle", "2q", eps)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if resp.Cached {
		t.Fatal("first submission reported a cache hit")
	}
	if resp.Session == "" {
		t.Fatal("miss did not assign a session")
	}
	// Join the assigned session and publish the "optimized" result.
	w1.Session = resp.Session
	if _, _, ok := w1.Exchange(optimized, 3e-9, 12); ok {
		t.Fatal("fresh session offered an adoption")
	}

	// A second submitter with the same request is served from the cache.
	w2 := client(t, hs, "", "w2", eps)
	resp2, err := w2.Submit(input, "ibm-eagle", "2q", eps)
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached {
		t.Fatal("identical resubmission missed the cache")
	}
	if resp2.Best.Cost != 12 || resp2.Best.Err != 3e-9 {
		t.Fatalf("cached best = %+v, want cost 12, err 3e-9", resp2.Best)
	}
	got, gotErr, err := resp2.Best.Open()
	if err != nil {
		t.Fatal(err)
	}
	if gotErr != 3e-9 || got.WriteQASM() != optimized.WriteQASM() {
		t.Fatal("cached circuit does not round-trip to the published best")
	}

	// A different ε is a different request: no hit.
	resp3, err := w2.Submit(input, "ibm-eagle", "2q", 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if resp3.Cached {
		t.Fatal("different epsilon hit the cache")
	}

	// Metrics and status expose the traffic.
	body := get(t, hs.URL+"/metrics")
	if !strings.Contains(body, "guoqd_cache_hits_total 1") {
		t.Fatalf("metrics missing cache hit:\n%s", body)
	}
	if !strings.Contains(body, "guoqd_cache_misses_total 2") {
		t.Fatalf("metrics missing cache misses:\n%s", body)
	}
	var st dist.Status
	if err := json.Unmarshal([]byte(get(t, hs.URL+"/v1/status")), &st); err != nil {
		t.Fatal(err)
	}
	if st.CacheHits != 1 || st.CacheMisses != 2 || st.CacheEntries != 1 {
		t.Fatalf("status cache fields = hits %d misses %d entries %d, want 1/2/1", st.CacheHits, st.CacheMisses, st.CacheEntries)
	}
	if st.CacheHitRate <= 0 || st.CacheHitRate >= 1 {
		t.Fatalf("status hit rate = %v, want in (0,1)", st.CacheHitRate)
	}
}

// Textual variants of the same circuit share a cache slot: the server
// canonicalizes via a QASM parse + re-emit round trip before hashing.
func TestSubmitNormalizesQASM(t *testing.T) {
	srv, hs := newLoopback(t, dist.ServerOptions{})
	_ = srv
	rng := rand.New(rand.NewSource(13))
	input := circuit.Random(3, 15, gateset.IBMEagle.Gates, rng)
	qasm := input.WriteQASM()
	// Reformat: extra blank lines and comments parse to the same circuit.
	variant := "// a comment\n" + strings.ReplaceAll(qasm, "\n", "\n\n")
	reparsed, err := circuit.ParseQASM(variant)
	if err != nil {
		t.Fatal(err)
	}

	w := client(t, hs, "", "w1", 1e-8)
	r1, err := w.Submit(input, "ibm-eagle", "2q", 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := w.Submit(reparsed, "ibm-eagle", "2q", 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Session != r2.Session {
		t.Fatalf("formatting changed the session: %s vs %s", r1.Session, r2.Session)
	}
}

// A server with the cache disabled still answers submissions (always a
// session, never a hit).
func TestSubmitCacheDisabled(t *testing.T) {
	_, hs := newLoopback(t, dist.ServerOptions{CacheEntries: -1})
	rng := rand.New(rand.NewSource(17))
	input := circuit.Random(3, 10, gateset.IBMEagle.Gates, rng)
	w := client(t, hs, "", "w1", 1e-8)
	resp, err := w.Submit(input, "ibm-eagle", "2q", 1e-8)
	if err != nil || resp.Cached || resp.Session == "" {
		t.Fatalf("Submit with cache disabled = (%+v, %v)", resp, err)
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
