package dist

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gateset"
)

func TestBinaryCodecRoundTrips(t *testing.T) {
	sol := Solution{Envelope: circuit.Envelope{QASM: "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[1];\n", Err: 3.5e-9}, Cost: 17.25}
	msgs := []binaryMessage{
		&ExchangeRequest{Session: "s", Worker: "w", Epsilon: 1e-8, Best: sol},
		&ExchangeResponse{Adopt: true, Best: sol},
		&SubmitRequest{QASM: sol.QASM, Target: "ibm-eagle", Objective: "2q", Epsilon: 1e-8, Worker: "w"},
		&SubmitResponse{Cached: true, Session: "abc", Best: sol},
	}
	for _, m := range msgs {
		b := m.appendBinary(nil)
		fresh := reflect.New(reflect.TypeOf(m).Elem()).Interface().(binaryMessage)
		if err := fresh.decodeBinary(b); err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if !reflect.DeepEqual(m, fresh) {
			t.Fatalf("%T round trip:\n got %+v\nwant %+v", m, fresh, m)
		}
	}
}

func TestBinaryCodecRejectsGarbage(t *testing.T) {
	var req ExchangeRequest
	if err := req.decodeBinary([]byte("not binary at all")); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncate a valid message at every prefix: never a panic, always a
	// clean error (except the empty-payload fields of a lucky prefix).
	full := (&ExchangeRequest{Session: "session", Worker: "worker", Epsilon: 1, Best: Solution{Envelope: circuit.Envelope{QASM: "q", Err: 1}, Cost: 1}}).appendBinary(nil)
	for i := len(binMagic); i < len(full); i++ {
		var m ExchangeRequest
		if err := m.decodeBinary(full[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
}

// A client speaking gzip + binary gets byte-identical semantics over the
// wire: exchanges and submissions work end to end with both upgrades on.
func TestWireNegotiation(t *testing.T) {
	for _, mode := range []struct {
		name      string
		gzip, bin bool
	}{
		{"json", false, false},
		{"gzip", true, false},
		{"bin", false, true},
		{"bin+gzip", true, true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			srv := NewServer(ServerOptions{})
			hs := httptest.NewServer(srv.Handler())
			defer hs.Close()
			rng := rand.New(rand.NewSource(21))
			// Big enough that gzip's response floor (1 KB) is exercised.
			input := circuit.Random(5, 200, gateset.IBMEagle.Gates, rng)

			c := NewClient(hs.URL, "", "w")
			c.Epsilon = 1e-8
			c.MinInterval = -1
			c.Gzip, c.Binary = mode.gzip, mode.bin

			resp, err := c.Submit(input, "ibm-eagle", "2q", 1e-8)
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			c.Session = resp.Session
			if _, _, ok := c.Exchange(input, 0, 100); ok {
				t.Fatal("fresh session offered an adoption")
			}
			// Second worker behind the best adopts it through the same codec.
			c2 := NewClient(hs.URL, resp.Session, "w2")
			c2.Epsilon = 1e-8
			c2.MinInterval = -1
			c2.Gzip, c2.Binary = mode.gzip, mode.bin
			adopted, _, ok := c2.Exchange(circuit.New(5), 0, 999)
			if !ok {
				t.Fatal("no adoption over negotiated codec")
			}
			if adopted.WriteQASM() != input.WriteQASM() {
				t.Fatal("adopted circuit corrupted in transit")
			}
		})
	}
}

// A stock JSON client is untouched by the upgrades existing: no
// Content-Encoding, no binary, plain JSON replies.
func TestWireDefaultsToPlainJSON(t *testing.T) {
	srv := NewServer(ServerOptions{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	body := strings.NewReader(`{"session":"s","epsilon":1e-8,"best":{"qasm":"","err":0,"cost":0}}`)
	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/exchange", body)
	req.Header.Set("Content-Type", "application/json")
	// Explicitly refuse alternate encodings like a minimal client would.
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	if ce := resp.Header.Get("Content-Encoding"); ce != "" {
		t.Fatalf("uninvited Content-Encoding %q", ce)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q, want JSON", ct)
	}
}

// Idempotent requests retry through transient failures; leases never do.
func TestClientRetry(t *testing.T) {
	var pushSeen, leaseSeen int
	srv := NewServer(ServerOptions{})
	inner := srv.Handler()
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/jobs/push":
			pushSeen++
			if pushSeen <= 2 {
				httpError(w, http.StatusServiceUnavailable, "warming up")
				return
			}
		case "/v1/jobs/lease":
			leaseSeen++
			httpError(w, http.StatusServiceUnavailable, "warming up")
			return
		}
		inner.ServeHTTP(w, r)
	})
	hs := httptest.NewServer(flaky)
	defer hs.Close()

	c := NewClient(hs.URL, "", "w")
	c.MinInterval = -1
	added, err := c.Push("q", []Job{{ID: "a"}})
	if err != nil || added != 1 {
		t.Fatalf("Push through flaky server = (%d, %v), want (1, nil)", added, err)
	}
	if pushSeen != 3 {
		t.Fatalf("push attempts = %d, want 3 (2 failures + success)", pushSeen)
	}
	if st := c.Stats(); st.Retries != 2 {
		t.Fatalf("stats.Retries = %d, want 2", st.Retries)
	}
	// Lease fails immediately: not idempotent, never retried.
	if _, _, _, err := c.Lease("q", time.Minute); err == nil {
		t.Fatal("lease through 503 succeeded")
	}
	if leaseSeen != 1 {
		t.Fatalf("lease attempts = %d, want exactly 1 (no retry)", leaseSeen)
	}
}

// Retries are bounded and non-transient failures are not retried at all.
func TestClientRetryBounds(t *testing.T) {
	var seen int
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen++
		httpError(w, http.StatusBadRequest, "never valid")
	}))
	defer hs.Close()
	c := NewClient(hs.URL, "", "w")
	if _, err := c.Push("q", []Job{{ID: "a"}}); err == nil {
		t.Fatal("400 reported as success")
	}
	if seen != 1 {
		t.Fatalf("400 retried: %d attempts", seen)
	}

	seen = 0
	hs2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen++
		httpError(w, http.StatusServiceUnavailable, "down")
	}))
	defer hs2.Close()
	c2 := NewClient(hs2.URL, "", "w")
	c2.Retries = 1
	if _, err := c2.Push("q", []Job{{ID: "a"}}); err == nil {
		t.Fatal("permanently down server reported success")
	}
	if seen != 2 {
		t.Fatalf("attempts = %d, want 2 (1 try + 1 retry)", seen)
	}
}

// The quota middleware answers over-rate requests with 429 + Retry-After
// and keeps /healthz and /metrics exempt.
func TestQuotaRejectsWith429(t *testing.T) {
	srv := NewServer(ServerOptions{QuotaRate: 0.5, QuotaBurst: 2})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	status := func() *http.Response {
		resp, err := http.Get(hs.URL + "/v1/status")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if r := status(); r.StatusCode != http.StatusOK {
		t.Fatalf("first request = %d", r.StatusCode)
	}
	if r := status(); r.StatusCode != http.StatusOK {
		t.Fatalf("burst request = %d", r.StatusCode)
	}
	r := status()
	if r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate request = %d, want 429", r.StatusCode)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	// Health and metrics stay open regardless.
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s throttled: %d", path, resp.StatusCode)
		}
	}
	// The rejection is visible in metrics.
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "guoqd_quota_rejections_total 1") {
		t.Fatal("quota rejection not counted")
	}
}
