package dist

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/guoq-dev/guoq/internal/obs"
)

// maxBodyBytes bounds a request body: a QASM circuit of ~100k gates is a
// few MB, so 64 MB leaves ample headroom without letting a client exhaust
// the coordinator's memory.
const maxBodyBytes = 64 << 20

// ServerOptions tunes a coordinator server. The zero value is usable.
type ServerOptions struct {
	// LeaseTTL is the lease duration applied when a LeaseRequest does not
	// pick one (default 60 s).
	LeaseTTL time.Duration
	// SessionTTL bounds how long an idle exchange session is retained: a
	// session with no exchange traffic for the TTL is garbage collected, so
	// a long-lived guoqd does not grow without bound as searches come and
	// go. Status polling does not count as activity. A worker that outlives
	// its session's TTL transparently recreates it (losing only the stored
	// best, which the worker republishes at its next exchange). Zero
	// selects the default of 30 min; negative disables GC.
	SessionTTL time.Duration
	// MaxAttempts is how many times a job is handed out before it is
	// marked failed (default 3).
	MaxAttempts int
	// Token, when non-empty, requires every /v1/ request (exchange and
	// queue endpoints alike) to carry "Authorization: Bearer <token>";
	// requests without it get 401. /healthz stays open so load balancers
	// and Dial's reachability probe keep working. The comparison is
	// constant-time. Empty leaves the coordinator open (trusted networks,
	// tests).
	Token string
	// Logf, when set, receives one line per state-changing request.
	Logf func(format string, args ...any)
	// Metrics, when set, is the registry behind GET /metrics; the server
	// registers its families on it, so a caller can share one registry
	// across subsystems. Nil creates a private registry — /metrics works
	// either way.
	Metrics *obs.Registry
}

// Server is the guoqd coordinator: best-so-far exchange sessions plus
// sharded work queues. It is safe for concurrent use; expose it over HTTP
// with Handler.
type Server struct {
	opts  ServerOptions
	now   func() time.Time // injectable clock for tests
	start time.Time
	reg   *obs.Registry
	sm    *serverMetrics

	mu       sync.Mutex
	sessions map[string]*session
	queues   map[string]*workQueue
}

// session is one distributed search: every participant optimizes the same
// circuit under the same objective and ε budget.
type session struct {
	mu           sync.Mutex
	epsilon      float64
	best         Solution
	has          bool
	exchanges    int
	improvements int

	// lastUsed is the time of the last exchange touch, guarded by the
	// owning Server's mu (not the session's own).
	lastUsed time.Time
}

// NewServer builds a coordinator server.
func NewServer(opts ServerOptions) *Server {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 60 * time.Second
	}
	if opts.SessionTTL == 0 {
		opts.SessionTTL = 30 * time.Minute
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		opts:     opts,
		now:      time.Now,
		start:    time.Now(),
		reg:      reg,
		sessions: map[string]*session{},
		queues:   map[string]*workQueue{},
	}
	s.sm = newServerMetrics(reg, s)
	return s
}

// Registry returns the server's metrics registry (the one behind GET
// /metrics) so embedding processes can add their own families to it.
func (s *Server) Registry() *obs.Registry { return s.reg }

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

func (s *Server) session(id string, epsilon float64) *session {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepSessionsLocked(now)
	if ss, ok := s.sessions[id]; ok {
		ss.lastUsed = now
		return ss
	}
	ss := &session{epsilon: epsilon, lastUsed: now}
	s.sessions[id] = ss
	s.logf("session %s created (ε=%g)", id, epsilon)
	return ss
}

// sweepSessionsLocked garbage-collects exchange sessions idle for longer
// than SessionTTL. Called with s.mu held on the exchange and status paths;
// the map is small (one entry per concurrent distributed search), so a
// full sweep per access is cheap.
func (s *Server) sweepSessionsLocked(now time.Time) {
	if s.opts.SessionTTL < 0 {
		return
	}
	for id, ss := range s.sessions {
		if idle := now.Sub(ss.lastUsed); idle > s.opts.SessionTTL {
			delete(s.sessions, id)
			s.logf("session %s expired (idle %v)", id, idle)
		}
	}
}

// queue returns the named queue, creating it on first use. Only the push
// paths create queues; read/lease/complete use lookupQueue so probing a
// nonexistent name (a typo'd curl, a port scanner) cannot grow the queue
// map for the daemon's lifetime.
func (s *Server) queue(name string) *workQueue {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q, ok := s.queues[name]; ok {
		return q
	}
	q := newWorkQueue(s.opts.MaxAttempts)
	s.queues[name] = q
	return q
}

func (s *Server) lookupQueue(name string) *workQueue {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queues[name]
}

// exchange applies the coordinator invariants: store a published solution
// only when it strictly improves the session best, parses, and fits the
// session's ε budget; offer the stored best only to callers strictly
// behind it. The budget check is what preserves BestError ≤ Epsilon across
// migration — a worker can only ever adopt a solution whose bound another
// worker already proved admissible.
func (ss *session) exchange(req ExchangeRequest) (ExchangeResponse, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.exchanges++
	stored := false
	if req.Best.QASM != "" && req.Best.Err <= ss.epsilon && (!ss.has || req.Best.Cost < ss.best.Cost) {
		if _, _, err := req.Best.Open(); err == nil {
			ss.best, ss.has = req.Best, true
			ss.improvements++
			stored = true
		}
	}
	if ss.has && ss.best.Cost < req.Best.Cost {
		return ExchangeResponse{Adopt: true, Best: ss.best}, stored
	}
	return ExchangeResponse{}, stored
}

func (ss *session) status() SessionStatus {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return SessionStatus{
		Epsilon:      ss.epsilon,
		BestCost:     ss.best.Cost,
		BestErr:      ss.best.Err,
		Exchanges:    ss.exchanges,
		Improvements: ss.improvements,
	}
}

// Push seeds a queue directly (the in-process path used by guoqd at
// startup); the HTTP POST /v1/jobs/push endpoint is the remote path.
func (s *Server) Push(queue string, jobs []Job) int {
	q := s.queue(queue)
	s.mu.Lock()
	defer s.mu.Unlock()
	return q.push(jobs)
}

// Handler returns the coordinator's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/exchange", s.handleExchange)
	mux.HandleFunc("POST /v1/jobs/push", s.handlePush)
	mux.HandleFunc("POST /v1/jobs/lease", s.handleLease)
	mux.HandleFunc("POST /v1/jobs/complete", s.handleComplete)
	mux.HandleFunc("GET /v1/queues/{name}", s.handleQueue)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// /metrics sits outside /v1/ so it stays token-free like /healthz:
	// scrapers and load balancers get fleet state without the shared
	// secret, and the payload carries no circuit data.
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.withMetrics(s.withAuth(mux))
}

// withAuth gates the API surface behind the shared token when one is
// configured; /healthz (everything outside /v1/) stays open.
func (s *Server) withAuth(next http.Handler) http.Handler {
	if s.opts.Token == "" {
		return next
	}
	want := []byte(s.opts.Token)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
			if !ok || subtle.ConstantTimeCompare([]byte(got), want) != 1 {
				httpError(w, http.StatusUnauthorized, "missing or invalid bearer token")
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// ListenAndServe runs the coordinator on addr until the listener fails.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve runs the coordinator on an existing listener.
func (s *Server) Serve(l net.Listener) error {
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	return srv.Serve(l)
}

// ServeContext runs the coordinator on l until ctx is cancelled, then
// drains gracefully: the listener stops accepting, in-flight requests get
// up to grace (default 5 s) to finish via http.Server.Shutdown, and
// request contexts derive from ctx so handlers observe the shutdown too.
// Returns nil after a clean drain, or the Shutdown error when the grace
// period expires with requests still in flight.
func (s *Server) ServeContext(ctx context.Context, l net.Listener, grace time.Duration) error {
	if grace <= 0 {
		grace = 5 * time.Second
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := srv.Shutdown(sctx)
	<-errc // Serve has returned http.ErrServerClosed
	return err
}

func (s *Server) handleExchange(w http.ResponseWriter, r *http.Request) {
	var req ExchangeRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Session == "" {
		httpError(w, http.StatusBadRequest, "missing session")
		return
	}
	ss := s.session(req.Session, req.Epsilon)
	resp, stored := ss.exchange(req)
	if stored {
		s.sm.publishes.Inc()
	}
	if resp.Adopt {
		s.sm.adoptions.Inc()
	}
	writeJSON(w, resp)
}

func (s *Server) handlePush(w http.ResponseWriter, r *http.Request) {
	var req PushRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Queue == "" {
		httpError(w, http.StatusBadRequest, "missing queue")
		return
	}
	q := s.queue(req.Queue)
	s.mu.Lock()
	added := q.push(req.Jobs)
	s.mu.Unlock()
	s.logf("queue %s: pushed %d/%d jobs", req.Queue, added, len(req.Jobs))
	writeJSON(w, PushResponse{Added: added})
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Queue == "" {
		httpError(w, http.StatusBadRequest, "missing queue")
		return
	}
	ttl := s.opts.LeaseTTL
	if req.TTLMillis > 0 {
		ttl = time.Duration(req.TTLMillis) * time.Millisecond
	}
	s.sm.leases.Inc()
	q := s.lookupQueue(req.Queue)
	if q == nil {
		// The queue has not been seeded yet (a worker can start before
		// the pusher): nothing to hand out, but not drained either — the
		// worker should poll again.
		writeJSON(w, LeaseResponse{})
		return
	}
	s.mu.Lock()
	job, ok, drained := q.lease(req.Worker, ttl, s.now())
	// A handout whose job was leased before is a retry: its earlier lease
	// expired (dead worker) and the queue re-issued it. Read under the same
	// lock as the lease so the attempt count is the handout's own.
	retry := false
	if ok {
		if j := q.leased[job.ID]; j != nil && j.attempts > 1 {
			retry = true
		}
	}
	s.mu.Unlock()
	if retry {
		s.sm.leaseRetries.Inc()
	}
	if ok {
		s.logf("queue %s: leased %q to %s (ttl %v)", req.Queue, job.ID, req.Worker, ttl)
	}
	writeJSON(w, LeaseResponse{OK: ok, Job: job, Drained: drained})
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Queue == "" || req.ID == "" {
		httpError(w, http.StatusBadRequest, "missing queue or id")
		return
	}
	q := s.lookupQueue(req.Queue)
	if q == nil {
		httpError(w, http.StatusNotFound, "unknown queue "+req.Queue)
		return
	}
	s.mu.Lock()
	err := q.complete(req.ID, req.Result, s.now())
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	s.sm.completed.Inc()
	s.logf("queue %s: %s completed %q", req.Queue, req.Worker, req.ID)
	writeJSON(w, CompleteResponse{OK: true})
}

func (s *Server) handleQueue(w http.ResponseWriter, r *http.Request) {
	q := s.lookupQueue(r.PathValue("name"))
	if q == nil {
		httpError(w, http.StatusNotFound, "unknown queue "+r.PathValue("name"))
		return
	}
	s.mu.Lock()
	st := q.status(s.now(), true)
	s.mu.Unlock()
	writeJSON(w, st)
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	st := Status{
		Sessions:      map[string]SessionStatus{},
		Queues:        map[string]QueueStatus{},
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	now := s.now()
	s.mu.Lock()
	// Status polling sweeps but does not refresh lastUsed: a dashboard
	// watching an abandoned session must not keep it alive forever.
	s.sweepSessionsLocked(now)
	st.LiveSessions = len(s.sessions)
	sessions := make(map[string]*session, len(s.sessions))
	for id, ss := range s.sessions {
		sessions[id] = ss
	}
	for name, q := range s.queues {
		st.Queues[name] = q.status(now, false)
	}
	s.mu.Unlock()
	for id, ss := range sessions {
		st.Sessions[id] = ss.status()
	}
	writeJSON(w, st)
}

func readJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(into); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
