package dist

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/obs"
	"github.com/guoq-dev/guoq/internal/store"
)

// maxBodyBytes bounds a request body: a QASM circuit of ~100k gates is a
// few MB, so 64 MB leaves ample headroom without letting a client exhaust
// the coordinator's memory.
const maxBodyBytes = 64 << 20

// ServerOptions tunes a coordinator server. The zero value is usable.
type ServerOptions struct {
	// LeaseTTL is the lease duration applied when a LeaseRequest does not
	// pick one (default 60 s).
	LeaseTTL time.Duration
	// SessionTTL bounds how long an idle exchange session is retained: a
	// session with no exchange traffic for the TTL is garbage collected, so
	// a long-lived guoqd does not grow without bound as searches come and
	// go. Status polling does not count as activity. A worker that outlives
	// its session's TTL transparently recreates it (losing only the stored
	// best, which the worker republishes at its next exchange). Zero
	// selects the default of 30 min; negative disables GC.
	SessionTTL time.Duration
	// MaxAttempts is how many times a job is handed out before it is
	// marked failed (default 3).
	MaxAttempts int
	// Token, when non-empty, requires every /v1/ request (exchange and
	// queue endpoints alike) to carry "Authorization: Bearer <token>";
	// requests without it get 401. /healthz stays open so load balancers
	// and Dial's reachability probe keep working. The comparison is
	// constant-time. Empty leaves the coordinator open (trusted networks,
	// tests). Multiple acceptable tokens may be given comma-separated —
	// one per tenant — which is what makes per-token quotas meaningful.
	Token string
	// DataDir, when non-empty, makes coordinator state durable (use
	// OpenServer): sessions and queues are write-ahead logged under this
	// directory, snapshotted periodically, and replayed on boot; the
	// result cache spills there too. Empty keeps everything in memory.
	DataDir string
	// SyncEvery is the WAL fsync batching cadence (see store.Options).
	SyncEvery time.Duration
	// CheckpointEvery is the snapshot/compaction timer (default 1 min);
	// record volume can trigger checkpoints earlier.
	CheckpointEvery time.Duration
	// CacheEntries / CacheBytes bound the content-addressed result cache
	// behind /v1/submit (0 = 4096 entries / 256 MB). A negative
	// CacheEntries disables the cache entirely.
	CacheEntries int
	CacheBytes   int64
	// QuotaRate, when positive, rate-limits /v1/ requests per token (or
	// per remote address on an open server) with a token bucket: QuotaRate
	// requests/second with bursts of QuotaBurst (0 = 2×rate). Rejections
	// get 429 with Retry-After.
	QuotaRate  float64
	QuotaBurst float64
	// Logf, when set, receives one line per state-changing request.
	Logf func(format string, args ...any)
	// Metrics, when set, is the registry behind GET /metrics; the server
	// registers its families on it, so a caller can share one registry
	// across subsystems. Nil creates a private registry — /metrics works
	// either way.
	Metrics *obs.Registry
}

// Server is the guoqd coordinator: best-so-far exchange sessions plus
// sharded work queues. It is safe for concurrent use; expose it over HTTP
// with Handler.
type Server struct {
	opts  ServerOptions
	now   func() time.Time // injectable clock for tests
	start time.Time
	reg   *obs.Registry
	sm    *serverMetrics

	// Durability and admission layers; any of these may be nil (memory-only
	// server, cache disabled, no quota).
	store *store.Log
	cache *store.Cache
	quota *store.Limiter

	recoveredSessions int
	recoveredJobs     int

	checkpointCh   chan struct{}
	checkpointDone chan struct{}
	closeCh        chan struct{}
	closeOnce      sync.Once

	mu       sync.Mutex
	sessions map[string]*session   // guarded by mu
	queues   map[string]*workQueue // guarded by mu
}

// session is one distributed search: every participant optimizes the same
// circuit under the same objective and ε budget.
type session struct {
	mu           sync.Mutex
	epsilon      float64
	best         Solution
	has          bool
	exchanges    int
	improvements int
	// cacheKey, when non-empty, is the content address this session's
	// best feeds (bound by /v1/submit).
	cacheKey string

	// lastUsed is the time of the last exchange touch, guarded by the
	// owning Server's mu (not the session's own).
	lastUsed time.Time
}

// NewServer builds a coordinator server.
func NewServer(opts ServerOptions) *Server {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 60 * time.Second
	}
	if opts.SessionTTL == 0 {
		opts.SessionTTL = 30 * time.Minute
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		opts:     opts,
		now:      time.Now,
		start:    time.Now(),
		reg:      reg,
		quota:    store.NewLimiter(opts.QuotaRate, opts.QuotaBurst),
		closeCh:  make(chan struct{}),
		sessions: map[string]*session{},
		queues:   map[string]*workQueue{},
	}
	if opts.CacheEntries >= 0 {
		spillDir := ""
		if opts.DataDir != "" {
			spillDir = filepath.Join(opts.DataDir, "cache")
		}
		s.cache = store.NewCache(opts.CacheEntries, opts.CacheBytes, spillDir)
	}
	s.sm = newServerMetrics(reg, s)
	return s
}

// Registry returns the server's metrics registry (the one behind GET
// /metrics) so embedding processes can add their own families to it.
func (s *Server) Registry() *obs.Registry { return s.reg }

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

func (s *Server) session(id string, epsilon float64) *session {
	return s.sessionWithKey(id, epsilon, "")
}

// sessionWithKey gets or creates a session; cacheKey (from /v1/submit)
// binds a new session to its result-cache slot. New sessions are
// persisted immediately so even a best-less session survives a restart
// with its ε budget.
func (s *Server) sessionWithKey(id string, epsilon float64, cacheKey string) *session {
	now := s.now()
	s.mu.Lock()
	s.sweepSessionsLocked(now)
	if ss, ok := s.sessions[id]; ok {
		ss.lastUsed = now
		s.mu.Unlock()
		return ss
	}
	ss := &session{epsilon: epsilon, lastUsed: now, cacheKey: cacheKey}
	s.sessions[id] = ss
	s.mu.Unlock()
	s.logf("session %s created (ε=%g)", id, epsilon)
	s.persistSession(id, ss)
	return ss
}

// sweepSessionsLocked garbage-collects exchange sessions idle for longer
// than SessionTTL. Called with s.mu held on the exchange and status paths;
// the map is small (one entry per concurrent distributed search), so a
// full sweep per access is cheap.
func (s *Server) sweepSessionsLocked(now time.Time) {
	if s.opts.SessionTTL < 0 {
		return
	}
	for id, ss := range s.sessions {
		if idle := now.Sub(ss.lastUsed); idle > s.opts.SessionTTL {
			delete(s.sessions, id)
			s.logf("session %s expired (idle %v)", id, idle)
		}
	}
}

// queue returns the named queue, creating it on first use. Only the push
// paths create queues; read/lease/complete use lookupQueue so probing a
// nonexistent name (a typo'd curl, a port scanner) cannot grow the queue
// map for the daemon's lifetime.
func (s *Server) queue(name string) *workQueue {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q, ok := s.queues[name]; ok {
		return q
	}
	q := newWorkQueue(s.opts.MaxAttempts)
	s.queues[name] = q
	return q
}

func (s *Server) lookupQueue(name string) *workQueue {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queues[name]
}

// exchange applies the coordinator invariants: store a published solution
// only when it strictly improves the session best, parses, and fits the
// session's ε budget; offer the stored best only to callers strictly
// behind it. The budget check is what preserves BestError ≤ Epsilon across
// migration — a worker can only ever adopt a solution whose bound another
// worker already proved admissible.
func (ss *session) exchange(req ExchangeRequest) (ExchangeResponse, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.exchanges++
	stored := false
	if req.Best.QASM != "" && req.Best.Err <= ss.epsilon && (!ss.has || req.Best.Cost < ss.best.Cost) {
		if _, _, err := req.Best.Open(); err == nil {
			ss.best, ss.has = req.Best, true
			ss.improvements++
			stored = true
		}
	}
	if ss.has && ss.best.Cost < req.Best.Cost {
		return ExchangeResponse{Adopt: true, Best: ss.best}, stored
	}
	return ExchangeResponse{}, stored
}

func (ss *session) status() SessionStatus {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return SessionStatus{
		Epsilon:      ss.epsilon,
		BestCost:     ss.best.Cost,
		BestErr:      ss.best.Err,
		Exchanges:    ss.exchanges,
		Improvements: ss.improvements,
	}
}

// Push seeds a queue directly (the in-process path used by guoqd at
// startup); the HTTP POST /v1/jobs/push endpoint is the remote path.
func (s *Server) Push(queue string, jobs []Job) int {
	q := s.queue(queue)
	s.mu.Lock()
	added := q.push(jobs)
	s.mu.Unlock()
	if added > 0 {
		s.persist(recPush, pushRecord{Queue: queue, Jobs: jobs})
	}
	return added
}

// Handler returns the coordinator's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/submit", s.handleSubmit)
	mux.HandleFunc("POST /v1/exchange", s.handleExchange)
	mux.HandleFunc("POST /v1/jobs/push", s.handlePush)
	mux.HandleFunc("POST /v1/jobs/lease", s.handleLease)
	mux.HandleFunc("POST /v1/jobs/complete", s.handleComplete)
	mux.HandleFunc("GET /v1/queues/{name}", s.handleQueue)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// /metrics sits outside /v1/ so it stays token-free like /healthz:
	// scrapers and load balancers get fleet state without the shared
	// secret, and the payload carries no circuit data.
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Quota sits inside auth: an invalid token is a 401 (and never spends
	// quota budget), a valid one over its rate gets 429 + Retry-After.
	return s.withMetrics(s.withAuth(s.withQuota(mux)))
}

// withAuth gates the API surface behind the shared token(s) when any are
// configured; /healthz (everything outside /v1/) stays open.
func (s *Server) withAuth(next http.Handler) http.Handler {
	if s.opts.Token == "" {
		return next
	}
	var want [][]byte
	for _, t := range strings.Split(s.opts.Token, ",") {
		if t = strings.TrimSpace(t); t != "" {
			want = append(want, []byte(t))
		}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
			pass := false
			for _, t := range want {
				// Compare against every configured token so timing never
				// reveals which one matched.
				if subtle.ConstantTimeCompare([]byte(got), t) == 1 {
					pass = true
				}
			}
			if !ok || !pass {
				httpError(w, http.StatusUnauthorized, "missing or invalid bearer token")
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// withQuota applies the per-token token-bucket rate limit to the /v1/
// surface. Keys are the presented bearer token, or the remote host on an
// open server. Nil limiter (no -quota) passes everything through.
func (s *Server) withQuota(next http.Handler) http.Handler {
	if s.quota == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			key, _ := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
			if key == "" {
				if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
					key = host
				} else {
					key = r.RemoteAddr
				}
			}
			if ok, retry := s.quota.Allow(key); !ok {
				s.sm.quotaRejections.Inc()
				secs := int(retry/time.Second) + 1
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				httpError(w, http.StatusTooManyRequests, "rate limit exceeded")
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// ListenAndServe runs the coordinator on addr until the listener fails.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve runs the coordinator on an existing listener.
func (s *Server) Serve(l net.Listener) error {
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	return srv.Serve(l)
}

// ServeContext runs the coordinator on l until ctx is cancelled, then
// drains gracefully: the listener stops accepting, in-flight requests get
// up to grace (default 5 s) to finish via http.Server.Shutdown, and
// request contexts derive from ctx so handlers observe the shutdown too.
// Returns nil after a clean drain, or the Shutdown error when the grace
// period expires with requests still in flight.
func (s *Server) ServeContext(ctx context.Context, l net.Listener, grace time.Duration) error {
	if grace <= 0 {
		grace = 5 * time.Second
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// The shutdown grace period must not inherit ctx: ctx is already done
	// (that is why we are shutting down), and Shutdown with a cancelled
	// parent would abort the drain immediately.
	//guoqlint:ignore ctxflow graceful drain outlives the cancelled parent ctx
	sctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := srv.Shutdown(sctx)
	<-errc // Serve has returned http.ErrServerClosed
	return err
}

// handleSubmit is the cache-aware front door: normalize the circuit, hash
// the request, answer instantly on a cache hit, open the bound exchange
// session otherwise.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if !readBody(w, r, &req) {
		return
	}
	if req.QASM == "" || req.Target == "" || req.Objective == "" {
		httpError(w, http.StatusBadRequest, "missing qasm, target, or objective")
		return
	}
	c, err := circuit.ParseQASM(req.QASM)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad circuit: "+err.Error())
		return
	}
	// The QASM round trip is the canonicalizer: whitespace, comments, and
	// parameter formatting collapse, so textual variants of one circuit
	// share a cache slot.
	key := store.CacheKey(c.WriteQASM(), req.Target, req.Objective, req.Epsilon)
	sid := key[:16]
	if e, ok := s.cache.Get(key); ok {
		s.sm.cacheHits.Inc()
		s.logf("submit %s: cache hit (cost %g)", sid, e.Cost)
		writeReply(w, r, &SubmitResponse{
			Cached:  true,
			Session: sid,
			Best:    Solution{Envelope: circuit.Envelope{QASM: e.QASM, Err: e.Err}, Cost: e.Cost},
		})
		return
	}
	if s.cache != nil {
		s.sm.cacheMisses.Inc()
	}
	ss := s.sessionWithKey(sid, req.Epsilon, key)
	// A session created before the cache binding existed (plain exchange
	// traffic, or a pre-cache guoqd's replayed state) adopts the key now.
	ss.mu.Lock()
	rebind := ss.cacheKey == "" && s.cache != nil
	if rebind {
		ss.cacheKey = key
	}
	ss.mu.Unlock()
	if rebind {
		s.persistSession(sid, ss)
	}
	writeReply(w, r, &SubmitResponse{Session: sid})
}

func (s *Server) handleExchange(w http.ResponseWriter, r *http.Request) {
	var req ExchangeRequest
	if !readBody(w, r, &req) {
		return
	}
	if req.Session == "" {
		httpError(w, http.StatusBadRequest, "missing session")
		return
	}
	ss := s.session(req.Session, req.Epsilon)
	resp, stored := ss.exchange(req)
	if stored {
		s.sm.publishes.Inc()
		s.persistSession(req.Session, ss)
		// Feed the result cache: the session best is by construction the
		// cheapest ε-admissible solution seen for the bound request.
		if key, e, ok := ss.cacheEntry(); ok {
			s.cache.Put(key, e)
		}
	}
	if resp.Adopt {
		s.sm.adoptions.Inc()
	}
	writeReply(w, r, &resp)
}

// cacheEntry snapshots the session best as a cache entry when the session
// is cache-bound and has one.
func (ss *session) cacheEntry() (string, store.CacheEntry, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.cacheKey == "" || !ss.has {
		return "", store.CacheEntry{}, false
	}
	return ss.cacheKey, store.CacheEntry{QASM: ss.best.QASM, Err: ss.best.Err, Cost: ss.best.Cost}, true
}

func (s *Server) handlePush(w http.ResponseWriter, r *http.Request) {
	var req PushRequest
	if !readBody(w, r, &req) {
		return
	}
	if req.Queue == "" {
		httpError(w, http.StatusBadRequest, "missing queue")
		return
	}
	q := s.queue(req.Queue)
	s.mu.Lock()
	added := q.push(req.Jobs)
	s.mu.Unlock()
	if added > 0 {
		s.persist(recPush, pushRecord{Queue: req.Queue, Jobs: req.Jobs})
	}
	s.logf("queue %s: pushed %d/%d jobs", req.Queue, added, len(req.Jobs))
	writeReply(w, r, PushResponse{Added: added})
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readBody(w, r, &req) {
		return
	}
	if req.Queue == "" {
		httpError(w, http.StatusBadRequest, "missing queue")
		return
	}
	ttl := s.opts.LeaseTTL
	if req.TTLMillis > 0 {
		ttl = time.Duration(req.TTLMillis) * time.Millisecond
	}
	s.sm.leases.Inc()
	q := s.lookupQueue(req.Queue)
	if q == nil {
		// The queue has not been seeded yet (a worker can start before
		// the pusher): nothing to hand out, but not drained either — the
		// worker should poll again.
		writeReply(w, r, LeaseResponse{})
		return
	}
	s.mu.Lock()
	job, ok, drained := q.lease(req.Worker, ttl, s.now())
	// A handout whose job was leased before is a retry: its earlier lease
	// expired (dead worker) and the queue re-issued it. Read under the same
	// lock as the lease so the attempt count is the handout's own.
	retry := false
	var lr leaseRecord
	if ok {
		if j := q.leased[job.ID]; j != nil {
			if j.attempts > 1 {
				retry = true
			}
			lr = leaseRecord{Queue: req.Queue, ID: job.ID, Worker: req.Worker, Attempts: j.attempts, Expires: j.expires}
		}
	}
	s.mu.Unlock()
	if retry {
		s.sm.leaseRetries.Inc()
	}
	if ok {
		s.persist(recLease, lr)
		s.logf("queue %s: leased %q to %s (ttl %v)", req.Queue, job.ID, req.Worker, ttl)
	}
	writeReply(w, r, LeaseResponse{OK: ok, Job: job, Drained: drained})
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !readBody(w, r, &req) {
		return
	}
	if req.Queue == "" || req.ID == "" {
		httpError(w, http.StatusBadRequest, "missing queue or id")
		return
	}
	q := s.lookupQueue(req.Queue)
	if q == nil {
		httpError(w, http.StatusNotFound, "unknown queue "+req.Queue)
		return
	}
	s.mu.Lock()
	err := q.complete(req.ID, req.Result, s.now())
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	s.persist(recComplete, completeRecord{Queue: req.Queue, ID: req.ID, Result: req.Result})
	s.sm.completed.Inc()
	s.logf("queue %s: %s completed %q", req.Queue, req.Worker, req.ID)
	writeReply(w, r, CompleteResponse{OK: true})
}

func (s *Server) handleQueue(w http.ResponseWriter, r *http.Request) {
	q := s.lookupQueue(r.PathValue("name"))
	if q == nil {
		httpError(w, http.StatusNotFound, "unknown queue "+r.PathValue("name"))
		return
	}
	s.mu.Lock()
	st := q.status(s.now(), true)
	s.mu.Unlock()
	writeReply(w, r, st)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := Status{
		Sessions:      map[string]SessionStatus{},
		Queues:        map[string]QueueStatus{},
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	now := s.now()
	s.mu.Lock()
	// Status polling sweeps but does not refresh lastUsed: a dashboard
	// watching an abandoned session must not keep it alive forever.
	s.sweepSessionsLocked(now)
	st.LiveSessions = len(s.sessions)
	sessions := make(map[string]*session, len(s.sessions))
	for id, ss := range s.sessions {
		sessions[id] = ss
	}
	for name, q := range s.queues {
		st.Queues[name] = q.status(now, false)
	}
	s.mu.Unlock()
	for id, ss := range sessions {
		st.Sessions[id] = ss.status()
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		st.CacheEntries = s.cache.Len()
		st.CacheHits = cs.Hits
		st.CacheMisses = cs.Misses
		st.CacheHitRate = s.cache.HitRate()
	}
	writeReply(w, r, st)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
