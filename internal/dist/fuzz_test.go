package dist

import (
	"bytes"
	"testing"

	"github.com/guoq-dev/guoq/internal/circuit"
)

// FuzzBinaryCodecs feeds arbitrary bytes to every binary wire decoder:
// none may panic, and any payload a decoder accepts must survive a
// re-encode/re-decode round trip (the decoded value is fully determined
// by the accepted fields, so encoding it again and decoding that must
// reproduce it — non-minimal uvarints or trailing garbage in the original
// bytes may legitimately change the re-encoded form, but not the value).
func FuzzBinaryCodecs(f *testing.F) {
	// One well-formed payload per message type, plus the degenerate shapes
	// decoders must reject gracefully.
	seed := func(m binaryMessage) []byte { return m.appendBinary(nil) }
	f.Add(seed(&ExchangeRequest{Session: "s1", Worker: "w1", Epsilon: 1e-8,
		Best: Solution{Envelope: circuit.Envelope{QASM: "qreg q[1];\nh q[0];\n", Err: 1e-9}, Cost: 3}}))
	f.Add(seed(&ExchangeResponse{Adopt: true, Best: Solution{Envelope: circuit.Envelope{QASM: "x", Err: 0.5}, Cost: 1}}))
	f.Add(seed(&SubmitRequest{QASM: "qreg q[2];", Target: "nam", Objective: "2q", Epsilon: 1e-8, Worker: "w"}))
	f.Add(seed(&SubmitResponse{Cached: true, Session: "abc", Best: Solution{Envelope: circuit.Envelope{QASM: "y"}}}))
	f.Add([]byte{})
	f.Add([]byte("GQB1"))
	f.Add([]byte("GQB0\x00\x00"))
	f.Add([]byte("GQB1\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff")) // huge uvarint length
	f.Fuzz(func(t *testing.T, data []byte) {
		msgs := []func() binaryMessage{
			func() binaryMessage { return &ExchangeRequest{} },
			func() binaryMessage { return &ExchangeResponse{} },
			func() binaryMessage { return &SubmitRequest{} },
			func() binaryMessage { return &SubmitResponse{} },
		}
		for _, mk := range msgs {
			m := mk()
			if err := m.decodeBinary(data); err != nil {
				continue
			}
			enc := m.appendBinary(nil)
			m2 := mk()
			if err := m2.decodeBinary(enc); err != nil {
				t.Fatalf("%T: re-encoded bytes do not decode: %v", m, err)
			}
			if enc2 := m2.appendBinary(nil); !bytes.Equal(enc, enc2) {
				t.Fatalf("%T: encode is not a decode fixpoint\n first: %x\nsecond: %x", m, enc, enc2)
			}
		}
	})
}
