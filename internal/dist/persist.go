package dist

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/guoq-dev/guoq/internal/store"
)

// Durability: when ServerOptions.DataDir is set (use OpenServer), every
// state change the coordinator must survive a restart with — session
// creation and stored improvements, queue pushes, leases, completions — is
// appended to a write-ahead log before the response goes out, and the full
// state is periodically snapshotted so the log stays short. Replay on boot
// reconstructs sessions (with their ε budgets and best-so-far) and queues
// (pending jobs, unexpired leases with their attempt counts, results).
// Failed-job verdicts are not logged: they are derived state, recomputed
// from replayed attempt counts the first time an expired lease is reaped.
//
// Record types in the WAL. Each is a full upsert or an idempotent
// transition, so replay after a crash anywhere is safe.
const (
	recSession  = "session"  // sessionRecord: create/update one session
	recPush     = "push"     // pushRecord: enqueue jobs (dedup on replay)
	recLease    = "lease"    // leaseRecord: job handed to a worker
	recComplete = "complete" // completeRecord: job finished with a result
)

// compactEvery bounds WAL growth between snapshots: once this many records
// accumulate, the checkpoint goroutine folds them into a snapshot.
const compactEvery = 4096

// sessionRecord is the durable form of one exchange session.
type sessionRecord struct {
	ID           string    `json:"id"`
	Epsilon      float64   `json:"epsilon"`
	Has          bool      `json:"has,omitempty"`
	Best         Solution  `json:"best,omitempty"`
	Exchanges    int       `json:"exchanges,omitempty"`
	Improvements int       `json:"improvements,omitempty"`
	LastUsed     time.Time `json:"last_used"`
	// CacheKey binds the session to its result-cache slot (set by
	// /v1/submit) so improvements keep feeding the cache across restarts.
	CacheKey string `json:"cache_key,omitempty"`
}

type pushRecord struct {
	Queue string `json:"queue"`
	Jobs  []Job  `json:"jobs"`
}

type leaseRecord struct {
	Queue    string    `json:"queue"`
	ID       string    `json:"id"`
	Worker   string    `json:"worker"`
	Attempts int       `json:"attempts"`
	Expires  time.Time `json:"expires"`
}

type completeRecord struct {
	Queue  string          `json:"queue"`
	ID     string          `json:"id"`
	Result json.RawMessage `json:"result,omitempty"`
}

// jobState is a queued job in the snapshot: pending jobs carry their
// retry count, leased jobs additionally their holder and expiry.
type jobState struct {
	Job      Job       `json:"job"`
	Attempts int       `json:"attempts,omitempty"`
	Worker   string    `json:"worker,omitempty"`
	Expires  time.Time `json:"expires,omitempty"`
}

type queueState struct {
	Pending []jobState                 `json:"pending,omitempty"`
	Leased  []jobState                 `json:"leased,omitempty"`
	Results map[string]json.RawMessage `json:"results,omitempty"`
	Failed  []string                   `json:"failed,omitempty"`
}

// serverState is the snapshot payload handed to store.Log.Compact.
type serverState struct {
	Sessions []sessionRecord       `json:"sessions,omitempty"`
	Queues   map[string]queueState `json:"queues,omitempty"`
}

// OpenServer builds a coordinator like NewServer and, when opts.DataDir is
// set, attaches the durable store: prior state is replayed before the
// server takes traffic, and a background checkpointer compacts the WAL.
// Callers owning an OpenServer must Close it.
func OpenServer(opts ServerOptions) (*Server, error) {
	s := NewServer(opts)
	if opts.DataDir == "" {
		return s, nil
	}
	lg, rec, err := store.Open(opts.DataDir, store.Options{SyncEvery: opts.SyncEvery})
	if err != nil {
		return nil, err
	}
	if err := s.restore(rec); err != nil {
		lg.Close()
		return nil, fmt.Errorf("dist: replaying %s: %w", opts.DataDir, err)
	}
	if rec.TornTail {
		s.logf("store: truncated a torn WAL tail (interrupted append)")
	}
	s.store = lg
	s.checkpointCh = make(chan struct{}, 1)
	s.checkpointDone = make(chan struct{})
	go s.checkpointLoop()
	return s, nil
}

// restore rebuilds in-memory state from a snapshot plus WAL records. It
// runs before the server serves traffic (and never re-appends what it
// replays); it still holds mu so the state writes satisfy the usual
// locking discipline at no contention cost.
func (s *Server) restore(rec *store.Recovery) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec.Snapshot != nil {
		var st serverState
		if err := json.Unmarshal(rec.Snapshot, &st); err != nil {
			return fmt.Errorf("corrupt snapshot: %w", err)
		}
		for _, sr := range st.Sessions {
			s.sessions[sr.ID] = sessionFromRecord(sr)
		}
		for name, qs := range st.Queues {
			q := newWorkQueue(s.opts.MaxAttempts)
			for _, js := range qs.Pending {
				q.pending = append(q.pending, &queuedJob{job: js.Job, attempts: js.Attempts})
			}
			for _, js := range qs.Leased {
				q.leased[js.Job.ID] = &queuedJob{job: js.Job, attempts: js.Attempts, worker: js.Worker, expires: js.Expires}
			}
			for id, r := range qs.Results {
				q.results[id] = r
			}
			for _, id := range qs.Failed {
				q.failed[id] = true
			}
			s.queues[name] = q
		}
	}
	for _, r := range rec.Records {
		if err := s.applyRecordLocked(r); err != nil {
			return fmt.Errorf("record %d (%s): %w", r.LSN, r.Type, err)
		}
	}
	sessions, jobs := len(s.sessions), 0
	for _, q := range s.queues {
		jobs += len(q.pending) + len(q.leased)
	}
	s.recoveredSessions, s.recoveredJobs = sessions, jobs
	s.sm.sessionsRecovered.Add(int64(sessions))
	s.sm.jobsRecovered.Add(int64(jobs))
	if sessions > 0 || jobs > 0 || len(s.queues) > 0 {
		s.logf("store: recovered %d sessions and %d live jobs across %d queues", sessions, jobs, len(s.queues))
	}
	return nil
}

func sessionFromRecord(sr sessionRecord) *session {
	return &session{
		epsilon:      sr.Epsilon,
		best:         sr.Best,
		has:          sr.Has,
		exchanges:    sr.Exchanges,
		improvements: sr.Improvements,
		lastUsed:     sr.LastUsed,
		cacheKey:     sr.CacheKey,
	}
}

// applyRecordLocked replays one WAL record onto the in-memory state.
// Caller (restore) holds s.mu.
func (s *Server) applyRecordLocked(r store.Record) error {
	switch r.Type {
	case recSession:
		var sr sessionRecord
		if err := json.Unmarshal(r.Data, &sr); err != nil {
			return err
		}
		s.sessions[sr.ID] = sessionFromRecord(sr)
	case recPush:
		var pr pushRecord
		if err := json.Unmarshal(r.Data, &pr); err != nil {
			return err
		}
		q := s.queues[pr.Queue]
		if q == nil {
			q = newWorkQueue(s.opts.MaxAttempts)
			s.queues[pr.Queue] = q
		}
		q.push(pr.Jobs)
	case recLease:
		var lr leaseRecord
		if err := json.Unmarshal(r.Data, &lr); err != nil {
			return err
		}
		q := s.queues[lr.Queue]
		if q == nil {
			return nil // push record lost to an older snapshot bug; skip
		}
		// Move the job from pending (where the push replay left it, or a
		// prior lease's expiry would return it) into the leased map with
		// the logged attempt count and expiry.
		for i, p := range q.pending {
			if p.job.ID == lr.ID {
				q.pending = append(q.pending[:i], q.pending[i+1:]...)
				p.attempts, p.worker, p.expires = lr.Attempts, lr.Worker, lr.Expires
				q.leased[lr.ID] = p
				return nil
			}
		}
		if j, ok := q.leased[lr.ID]; ok {
			j.attempts, j.worker, j.expires = lr.Attempts, lr.Worker, lr.Expires
		}
	case recComplete:
		var cr completeRecord
		if err := json.Unmarshal(r.Data, &cr); err != nil {
			return err
		}
		if q := s.queues[cr.Queue]; q != nil {
			// A completion the queue no longer recognizes (snapshot raced
			// the log) is not worth failing recovery over.
			_ = q.complete(cr.ID, cr.Result, s.now())
		}
	default:
		// Unknown record types are forward compatibility: a newer guoqd
		// wrote them; this one preserves what it understands.
	}
	return nil
}

// persist appends one record to the WAL (no-op without a store) and nudges
// the checkpointer once enough records accumulate. Append errors are
// logged, not fatal: the coordinator keeps serving from memory and the
// operator sees the disk problem in the log and the error counter.
func (s *Server) persist(typ string, data any) {
	if s.store == nil {
		return
	}
	if _, err := s.store.Append(typ, data); err != nil {
		s.sm.storeErrors.Inc()
		s.logf("store: append %s: %v", typ, err)
		return
	}
	if s.store.SinceCompact() >= compactEvery {
		select {
		case s.checkpointCh <- struct{}{}:
		default:
		}
	}
}

// record snapshots a session into its durable form. now is passed in
// because lastUsed is guarded by the Server's lock, not the session's.
func (ss *session) record(id string, now time.Time) sessionRecord {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return sessionRecord{
		ID:           id,
		Epsilon:      ss.epsilon,
		Has:          ss.has,
		Best:         ss.best,
		Exchanges:    ss.exchanges,
		Improvements: ss.improvements,
		LastUsed:     now,
		CacheKey:     ss.cacheKey,
	}
}

// persistSession appends a full upsert of one session.
func (s *Server) persistSession(id string, ss *session) {
	if s.store == nil {
		return
	}
	s.persist(recSession, ss.record(id, s.now()))
}

// checkpointLoop folds the WAL into a snapshot when nudged by record
// volume, on a slow timer, and once more at Close.
func (s *Server) checkpointLoop() {
	defer close(s.checkpointDone)
	every := s.opts.CheckpointEvery
	if every <= 0 {
		every = time.Minute
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.checkpointCh:
		case <-t.C:
			if s.store.SinceCompact() == 0 {
				continue
			}
		case <-s.closeCh:
			return
		}
		if err := s.Checkpoint(); err != nil {
			s.sm.storeErrors.Inc()
			s.logf("store: checkpoint: %v", err)
		}
	}
}

// snapshotState marshals the full coordinator state for a snapshot.
func (s *Server) snapshotState() serverState {
	now := s.now()
	st := serverState{Queues: map[string]queueState{}}
	s.mu.Lock()
	sessions := make(map[string]*session, len(s.sessions))
	for id, ss := range s.sessions {
		sessions[id] = ss
	}
	for name, q := range s.queues {
		qs := queueState{}
		for _, j := range q.pending {
			qs.Pending = append(qs.Pending, jobState{Job: j.job, Attempts: j.attempts})
		}
		for _, j := range q.leased {
			qs.Leased = append(qs.Leased, jobState{Job: j.job, Attempts: j.attempts, Worker: j.worker, Expires: j.expires})
		}
		if len(q.results) > 0 {
			qs.Results = make(map[string]json.RawMessage, len(q.results))
			for id, r := range q.results {
				qs.Results[id] = r
			}
		}
		for id := range q.failed {
			qs.Failed = append(qs.Failed, id)
		}
		st.Queues[name] = qs
	}
	s.mu.Unlock()
	for id, ss := range sessions {
		st.Sessions = append(st.Sessions, ss.record(id, now))
	}
	return st
}

// Checkpoint writes a snapshot of the full coordinator state and compacts
// the WAL behind it. No-op without a store.
func (s *Server) Checkpoint() error {
	if s.store == nil {
		return nil
	}
	return s.store.Compact(s.snapshotState())
}

// Close stops the checkpointer, takes a final snapshot, and closes the
// durable store. Safe to call on a server without one, and idempotent.
func (s *Server) Close() error {
	if s.store == nil {
		return nil
	}
	var err error
	s.closeOnce.Do(func() {
		close(s.closeCh)
		<-s.checkpointDone
		if cerr := s.Checkpoint(); cerr != nil {
			err = cerr
		}
		if cerr := s.store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	})
	return err
}
