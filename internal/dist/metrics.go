package dist

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/guoq-dev/guoq/internal/obs"
)

// serverMetrics is the coordinator's pre-resolved instrument bundle.
// Counters are incremented by the handlers; fleet-state values (queue
// depths, live sessions, uptime) are gauge functions that read the
// server's state under its lock at scrape time, so they need no
// bookkeeping on the request paths.
type serverMetrics struct {
	requests          *obs.CounterVec   // {path, code}
	requestSeconds    *obs.HistogramVec // {path}
	publishes         *obs.Counter
	adoptions         *obs.Counter
	leases            *obs.Counter
	leaseRetries      *obs.Counter
	completed         *obs.Counter
	cacheHits         *obs.Counter
	cacheMisses       *obs.Counter
	quotaRejections   *obs.Counter
	storeErrors       *obs.Counter
	sessionsRecovered *obs.Counter
	jobsRecovered     *obs.Counter
}

// newServerMetrics registers the coordinator families on reg and installs
// the gauge functions over s. The functions take s.mu at scrape time; that
// is safe because the server never writes the registry while holding s.mu.
func newServerMetrics(reg *obs.Registry, s *Server) *serverMetrics {
	sm := &serverMetrics{
		requests:       reg.CounterVec("guoqd_requests_total", "HTTP requests served.", "path", "code"),
		requestSeconds: reg.HistogramVec("guoqd_request_seconds", "HTTP request latency.", nil, "path"),
		publishes:      reg.Counter("guoqd_exchange_publishes_total", "Exchange requests that improved a session's stored best."),
		adoptions:      reg.Counter("guoqd_exchange_adoptions_total", "Exchange responses that offered the session best for adoption."),
		leases:         reg.Counter("guoqd_lease_requests_total", "Job lease requests."),
		leaseRetries:   reg.Counter("guoqd_lease_retries_total", "Leases handed out for a job whose previous lease expired."),
		completed:      reg.Counter("guoqd_jobs_completed_total", "Jobs completed with a result."),
		cacheHits:      reg.Counter("guoqd_cache_hits_total", "Submissions answered from the content-addressed result cache."),
		cacheMisses:    reg.Counter("guoqd_cache_misses_total", "Submissions that had to open a search session."),
		quotaRejections: reg.Counter("guoqd_quota_rejections_total",
			"Requests rejected with 429 by the per-token rate limit."),
		storeErrors: reg.Counter("guoqd_store_errors_total",
			"Write-ahead log append or checkpoint failures (state kept in memory)."),
		sessionsRecovered: reg.Counter("guoqd_sessions_recovered_total",
			"Exchange sessions restored from the durable store at boot."),
		jobsRecovered: reg.Counter("guoqd_jobs_recovered_total",
			"Pending or leased jobs restored from the durable store at boot."),
	}
	reg.GaugeFunc("guoqd_cache_entries", "Entries resident in the result cache.", func() float64 {
		return float64(s.cache.Len())
	})
	reg.GaugeFunc("guoqd_cache_hit_rate", "Result-cache hits / (hits + misses).", func() float64 {
		return s.cache.HitRate()
	})
	reg.GaugeFunc("guoqd_uptime_seconds", "Seconds since the coordinator started.", func() float64 {
		return time.Since(s.start).Seconds()
	})
	reg.GaugeFunc("guoqd_sessions_live", "Exchange sessions within their idle TTL.", func() float64 {
		now := s.now()
		s.mu.Lock()
		defer s.mu.Unlock()
		n := 0
		for _, ss := range s.sessions {
			if s.opts.SessionTTL < 0 || now.Sub(ss.lastUsed) <= s.opts.SessionTTL {
				n++
			}
		}
		return float64(n)
	})
	queueSum := func(pick func(QueueStatus) int) func() float64 {
		return func() float64 {
			now := s.now()
			s.mu.Lock()
			defer s.mu.Unlock()
			n := 0
			for _, q := range s.queues {
				n += pick(q.status(now, false))
			}
			return float64(n)
		}
	}
	reg.GaugeFunc("guoqd_queue_pending_jobs", "Jobs pending across all queues.",
		queueSum(func(st QueueStatus) int { return st.Pending }))
	reg.GaugeFunc("guoqd_queue_leased_jobs", "Jobs currently leased across all queues.",
		queueSum(func(st QueueStatus) int { return st.Leased }))
	reg.GaugeFunc("guoqd_jobs_done", "Jobs completed across all queues.",
		queueSum(func(st QueueStatus) int { return st.Done }))
	reg.GaugeFunc("guoqd_jobs_failed", "Jobs marked failed across all queues.",
		queueSum(func(st QueueStatus) int { return len(st.Failed) }))
	return sm
}

// metricPath maps a request path to a bounded label value: known endpoints
// keep their pattern, per-queue reads collapse to one series, and anything
// else (scanners, typos) shares a single bucket so an attacker cannot grow
// the registry.
func metricPath(p string) string {
	switch p {
	case "/v1/submit", "/v1/exchange", "/v1/jobs/push", "/v1/jobs/lease", "/v1/jobs/complete",
		"/v1/status", "/healthz", "/metrics":
		return p
	}
	if strings.HasPrefix(p, "/v1/queues/") {
		return "/v1/queues/{name}"
	}
	return "other"
}

// statusRecorder captures the response code for the request counter.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// withMetrics counts and times every request, including rejected ones —
// it wraps outside withAuth so 401s are visible in the request series.
func (s *Server) withMetrics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path := metricPath(r.URL.Path)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(rec, r)
		s.sm.requestSeconds.With(path).ObserveSince(t0)
		s.sm.requests.With(path, strconv.Itoa(rec.code)).Inc()
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// clientMetrics mirrors ClientStats into a registry, plus a request
// latency histogram the plain stats cannot carry. All handles may be nil.
type clientMetrics struct {
	exchanges      *obs.Counter
	adoptions      *obs.Counter
	throttled      *obs.Counter
	errors         *obs.Counter
	retries        *obs.Counter
	requestSeconds *obs.HistogramVec // {path}
}

// Instrument mirrors this client's exchange traffic into reg: round trips,
// adoptions, throttles, errors, and per-endpoint request latency. Call it
// before the first request; a nil registry is a no-op.
func (c *Client) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.m = clientMetrics{
		exchanges:      reg.Counter("guoq_exchange_roundtrips_total", "Exchange round trips attempted against the coordinator."),
		adoptions:      reg.Counter("guoq_exchange_adoptions_total", "Remote solutions adopted from the coordinator."),
		throttled:      reg.Counter("guoq_exchange_throttled_total", "Exchange calls answered locally by the rate limit."),
		errors:         reg.Counter("guoq_exchange_errors_total", "Failed coordinator round trips (network, HTTP, or decode)."),
		retries:        reg.Counter("guoq_coordinator_retries_total", "Retried attempts on idempotent coordinator requests."),
		requestSeconds: reg.HistogramVec("guoq_coordinator_request_seconds", "Coordinator request latency.", nil, "path"),
	}
}
