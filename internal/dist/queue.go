package dist

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// workQueue shards a set of jobs across workers with lease/retry
// semantics. A leased job that is not completed before its lease expires
// returns to the pending list (dead-worker recovery); a job that expires
// maxAttempts times is marked failed and never handed out again, so one
// poisonous work item cannot wedge the whole run. All methods are called
// with the owning Server's lock held.
type workQueue struct {
	pending     []*queuedJob
	leased      map[string]*queuedJob
	results     map[string]json.RawMessage
	failed      map[string]bool
	maxAttempts int
}

type queuedJob struct {
	job      Job
	attempts int
	worker   string
	expires  time.Time
}

func newWorkQueue(maxAttempts int) *workQueue {
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	return &workQueue{
		leased:      map[string]*queuedJob{},
		results:     map[string]json.RawMessage{},
		failed:      map[string]bool{},
		maxAttempts: maxAttempts,
	}
}

// seen reports whether the queue already knows a job id in any state.
func (q *workQueue) seen(id string) bool {
	if _, ok := q.leased[id]; ok {
		return true
	}
	if _, ok := q.results[id]; ok {
		return true
	}
	if q.failed[id] {
		return true
	}
	for _, j := range q.pending {
		if j.job.ID == id {
			return true
		}
	}
	return false
}

// push enqueues jobs, skipping ids the queue has already seen; it returns
// the number actually added, which makes seeding idempotent.
func (q *workQueue) push(jobs []Job) int {
	added := 0
	for _, j := range jobs {
		if j.ID == "" || q.seen(j.ID) {
			continue
		}
		q.pending = append(q.pending, &queuedJob{job: j})
		added++
	}
	return added
}

// reap returns expired leases to the pending list, or marks them failed
// once their attempts are spent.
func (q *workQueue) reap(now time.Time) {
	for id, j := range q.leased {
		if now.Before(j.expires) {
			continue
		}
		delete(q.leased, id)
		if j.attempts >= q.maxAttempts {
			q.failed[id] = true
			continue
		}
		q.pending = append(q.pending, j)
	}
}

// lease hands one pending job to a worker. drained is true when nothing is
// pending and nothing is leased — the queue is finished and workers should
// stop polling.
func (q *workQueue) lease(worker string, ttl time.Duration, now time.Time) (job Job, ok, drained bool) {
	q.reap(now)
	if len(q.pending) == 0 {
		return Job{}, false, len(q.leased) == 0
	}
	j := q.pending[0]
	q.pending = q.pending[1:]
	j.attempts++
	j.worker = worker
	j.expires = now.Add(ttl)
	q.leased[j.job.ID] = j
	return j.job, true, false
}

// complete records a job's result. The first completion wins and is
// idempotent thereafter; a late completion from a worker whose lease
// already expired (and whose job was re-leased or even failed) is still
// accepted — the work was done, and discarding it would only waste a
// retry. Completing an id the queue never issued is an error.
//
// Expired leases are reaped first: completion is a state transition like
// lease and status, and skipping the reap here let a dead worker's expired
// job sit in the leased map across an arbitrarily long run of completions,
// only returning to pending when some worker next polled — on a
// completion-heavy tail that delayed its retry (or its failed verdict)
// until the very end of the run.
func (q *workQueue) complete(id string, result json.RawMessage, now time.Time) error {
	q.reap(now)
	if _, done := q.results[id]; done {
		return nil
	}
	if j, ok := q.leased[id]; ok && j.job.ID == id {
		delete(q.leased, id)
	} else if q.failed[id] {
		delete(q.failed, id)
	} else {
		found := false
		for i, p := range q.pending {
			if p.job.ID == id {
				q.pending = append(q.pending[:i], q.pending[i+1:]...)
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("dist: complete of unknown job %q", id)
		}
	}
	if result == nil {
		result = json.RawMessage("null")
	}
	q.results[id] = result
	return nil
}

// status snapshots the queue. Results are copied only when withResults is
// set (the coordinator-wide status view omits them to stay light).
func (q *workQueue) status(now time.Time, withResults bool) QueueStatus {
	q.reap(now)
	st := QueueStatus{
		Pending: len(q.pending),
		Leased:  len(q.leased),
		Done:    len(q.results),
	}
	for id := range q.failed {
		st.Failed = append(st.Failed, id)
	}
	sort.Strings(st.Failed)
	if withResults {
		st.Results = make(map[string]json.RawMessage, len(q.results))
		for id, r := range q.results {
			st.Results[id] = r
		}
	}
	return st
}
