package dist

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
)

// SessionID derives a stable exchange-session key from what must be equal
// across all participants of a distributed search: the circuit being
// optimized, the objective name, and the ε budget. Two guoq processes
// started on the same input with the same flags land in the same session
// without any coordination; different inputs can never cross-pollinate.
func SessionID(c *circuit.Circuit, objective string, epsilon float64) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%.17g", c.WriteQASM(), objective, epsilon)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Client talks to a guoqd coordinator. Its Exchange method implements
// opt.Exchanger, so it plugs into Options.Exchanger (single worker) or
// becomes a Portfolio coordinator's upstream (multi-worker) unchanged.
// Exchange degrades gracefully: any transport or decode error makes it
// report "nothing to adopt" and count the failure, so a worker that loses
// the coordinator keeps optimizing alone.
type Client struct {
	base    string
	hc      *http.Client
	Session string
	Worker  string
	// Epsilon is the search's ε budget, sent with every exchange; the
	// first exchange of a session fixes the session's budget server-side.
	// It is also enforced on adoption: a remote solution whose bound
	// exceeds this client's budget is never handed to the search, even if
	// the session (pinned via -session across runs with different
	// -epsilon) tolerates it.
	Epsilon float64
	// MinInterval rate-limits exchange round trips: a call that neither
	// improves on this client's last published cost nor arrives
	// MinInterval after the previous round trip is answered locally with
	// "nothing to adopt" instead of hitting the network — the GUOQ loop
	// polls every 64 iterations, which is sub-millisecond cadence that no
	// WAN should see. 0 means the 100 ms default; negative disables
	// throttling (tests).
	MinInterval time.Duration
	// Token, when non-empty, is sent as "Authorization: Bearer <token>"
	// with every request — the shared secret of a coordinator started with
	// -token (ServerOptions.Token). Set it before the first request.
	Token string
	// Context, when set, is the base context every HTTP request derives
	// from: cancelling it aborts in-flight exchanges, leases, and
	// completion reports, and makes JobSource.LeaseNext stop polling. The
	// CLIs bind it to their signal context so a SIGINT never leaves a
	// request (or a lease poll loop) dangling. Nil means
	// context.Background().
	Context context.Context

	// m mirrors the stats into a registry when Instrument was called; its
	// nil handles are no-ops otherwise. Written once before the first
	// request, read without the lock thereafter.
	m clientMetrics

	mu       sync.Mutex
	stats    ClientStats
	lastSent time.Time
	lastCost float64
	sentAny  bool
}

// ClientStats counts a client's exchange traffic.
type ClientStats struct {
	// Exchanges is the number of attempted exchange round trips.
	Exchanges int
	// Adoptions is how many times the coordinator returned a better
	// solution that decoded cleanly and fit the ε budget.
	Adoptions int
	// Throttled counts exchange calls answered locally by the
	// MinInterval rate limit without a round trip.
	Throttled int
	// Errors counts failed round trips (network, HTTP, or decode).
	Errors int
}

// Dial builds a client for a coordinator address ("host:port" or a full
// http:// URL) and verifies the coordinator answers /healthz.
func Dial(addr, session, worker string) (*Client, error) {
	c := NewClient(addr, session, worker)
	if err := c.Healthy(); err != nil {
		return nil, fmt.Errorf("dist: coordinator %s unreachable: %w", addr, err)
	}
	return c, nil
}

// NewClient builds a client without probing the coordinator (tests, and
// callers that prefer lazy failure).
func NewClient(addr, session, worker string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{
		base:    strings.TrimRight(addr, "/"),
		hc:      &http.Client{Timeout: 10 * time.Second},
		Session: session,
		Worker:  worker,
	}
}

// Stats snapshots the exchange counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// authorize attaches the shared bearer token when one is configured.
func (c *Client) authorize(req *http.Request) {
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
}

// ctx returns the client's base request context.
func (c *Client) ctx() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

// Healthy probes the coordinator's /healthz endpoint.
func (c *Client) Healthy() error {
	req, err := http.NewRequestWithContext(c.ctx(), http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz returned %s", resp.Status)
	}
	return nil
}

// Exchange implements opt.Exchanger over the wire: publish the best
// solution with its accumulated ε bound, adopt the session best when the
// coordinator offers one and its bound fits this client's ε budget.
func (c *Client) Exchange(best *circuit.Circuit, bestErr, bestCost float64) (*circuit.Circuit, float64, bool) {
	interval := c.MinInterval
	if interval == 0 {
		interval = 100 * time.Millisecond
	}
	c.mu.Lock()
	improved := !c.sentAny || bestCost < c.lastCost
	if !improved && interval > 0 && time.Since(c.lastSent) < interval {
		c.stats.Throttled++
		c.mu.Unlock()
		c.m.throttled.Inc()
		return nil, 0, false
	}
	c.sentAny, c.lastCost, c.lastSent = true, bestCost, time.Now()
	c.stats.Exchanges++
	c.mu.Unlock()
	c.m.exchanges.Inc()
	req := ExchangeRequest{
		Session: c.Session,
		Worker:  c.Worker,
		Epsilon: c.Epsilon,
		Best:    Solution{Envelope: circuit.Seal(best, bestErr), Cost: bestCost},
	}
	var resp ExchangeResponse
	if err := c.post("/v1/exchange", req, &resp); err != nil {
		c.fail()
		return nil, 0, false
	}
	if !resp.Adopt {
		return nil, 0, false
	}
	if resp.Best.Err > c.Epsilon {
		// The session tolerates a larger budget than this run (possible
		// when -session is pinned across runs with different -epsilon);
		// adopting would break this run's BestError ≤ Epsilon contract.
		return nil, 0, false
	}
	adopted, adoptErr, err := resp.Best.Open()
	if err != nil {
		c.fail()
		return nil, 0, false
	}
	c.mu.Lock()
	c.stats.Adoptions++
	c.mu.Unlock()
	c.m.adoptions.Inc()
	return adopted, adoptErr, true
}

func (c *Client) fail() {
	c.mu.Lock()
	c.stats.Errors++
	c.mu.Unlock()
	c.m.errors.Inc()
}

// Push enqueues jobs onto a named queue, returning how many were new.
func (c *Client) Push(queue string, jobs []Job) (int, error) {
	var resp PushResponse
	err := c.post("/v1/jobs/push", PushRequest{Queue: queue, Jobs: jobs}, &resp)
	return resp.Added, err
}

// Lease asks for one job. ok=false with drained=true means the queue is
// finished; ok=false with drained=false means everything pending is
// currently leased elsewhere — poll again later.
func (c *Client) Lease(queue string, ttl time.Duration) (job Job, ok, drained bool, err error) {
	req := LeaseRequest{Queue: queue, Worker: c.Worker, TTLMillis: ttl.Milliseconds()}
	var resp LeaseResponse
	if err := c.post("/v1/jobs/lease", req, &resp); err != nil {
		return Job{}, false, false, err
	}
	return resp.Job, resp.OK, resp.Drained, nil
}

// Complete reports a finished job; result is marshalled to JSON.
func (c *Client) Complete(queue, id string, result any) error {
	raw, err := json.Marshal(result)
	if err != nil {
		return err
	}
	var resp CompleteResponse
	return c.post("/v1/jobs/complete", CompleteRequest{
		Queue: queue, Worker: c.Worker, ID: id, Result: raw,
	}, &resp)
}

// Queue fetches a queue's status including collected results.
func (c *Client) Queue(queue string) (QueueStatus, error) {
	var st QueueStatus
	req, err := http.NewRequestWithContext(c.ctx(), http.MethodGet, c.base+"/v1/queues/"+queue, nil)
	if err != nil {
		return st, err
	}
	c.authorize(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("queue status returned %s", resp.Status)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func (c *Client) post(path string, req, into any) error {
	if h := c.m.requestSeconds.With(path); h != nil {
		defer h.Time()()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(c.ctx(), http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	c.authorize(hreq)
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		if e.Error != "" {
			return fmt.Errorf("dist: %s: %s", path, e.Error)
		}
		return fmt.Errorf("dist: %s returned %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// JobSource adapts a Client to a single named queue with a fixed lease
// TTL, in the shape internal/experiments consumes for sharded benchmark
// runs: Lease blocks (polling) while other workers still hold leases, and
// reports ok=false only once the queue is drained.
type JobSource struct {
	Client    *Client
	QueueName string
	TTL       time.Duration
	// Poll is the retry period while the queue is busy (default 250 ms).
	Poll time.Duration
}

// LeaseNext blocks until a job is available, the queue is drained, or the
// client's Context is cancelled (the poll sleep is interruptible, so a
// SIGINT does not linger for a full poll period).
func (s *JobSource) LeaseNext() (string, bool, error) {
	poll := s.Poll
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		job, ok, drained, err := s.Client.Lease(s.QueueName, s.TTL)
		if err != nil {
			return "", false, err
		}
		if ok {
			return job.ID, true, nil
		}
		if drained {
			return "", false, nil
		}
		timer := time.NewTimer(poll)
		select {
		case <-timer.C:
		case <-s.Client.ctx().Done():
			timer.Stop()
			return "", false, s.Client.ctx().Err()
		}
	}
}

// CompleteJob reports one finished job with its raw JSON result.
func (s *JobSource) CompleteJob(id string, result json.RawMessage) error {
	return s.Client.Complete(s.QueueName, id, result)
}
