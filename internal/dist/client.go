package dist

import (
	"bytes"
	"compress/gzip"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
)

// SessionID derives a stable exchange-session key from what must be equal
// across all participants of a distributed search: the circuit being
// optimized, the objective name, and the ε budget. Two guoq processes
// started on the same input with the same flags land in the same session
// without any coordination; different inputs can never cross-pollinate.
func SessionID(c *circuit.Circuit, objective string, epsilon float64) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%.17g", c.WriteQASM(), objective, epsilon)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Client talks to a guoqd coordinator. Its Exchange method implements
// opt.Exchanger, so it plugs into Options.Exchanger (single worker) or
// becomes a Portfolio coordinator's upstream (multi-worker) unchanged.
// Exchange degrades gracefully: any transport or decode error makes it
// report "nothing to adopt" and count the failure, so a worker that loses
// the coordinator keeps optimizing alone.
type Client struct {
	base    string
	hc      *http.Client
	Session string
	Worker  string
	// Epsilon is the search's ε budget, sent with every exchange; the
	// first exchange of a session fixes the session's budget server-side.
	// It is also enforced on adoption: a remote solution whose bound
	// exceeds this client's budget is never handed to the search, even if
	// the session (pinned via -session across runs with different
	// -epsilon) tolerates it.
	Epsilon float64
	// MinInterval rate-limits exchange round trips: a call that neither
	// improves on this client's last published cost nor arrives
	// MinInterval after the previous round trip is answered locally with
	// "nothing to adopt" instead of hitting the network — the GUOQ loop
	// polls every 64 iterations, which is sub-millisecond cadence that no
	// WAN should see. 0 means the 100 ms default; negative disables
	// throttling (tests).
	MinInterval time.Duration
	// Token, when non-empty, is sent as "Authorization: Bearer <token>"
	// with every request — the shared secret of a coordinator started with
	// -token (ServerOptions.Token). Set it before the first request.
	Token string
	// Context, when set, is the base context every HTTP request derives
	// from: cancelling it aborts in-flight exchanges, leases, and
	// completion reports, and makes JobSource.LeaseNext stop polling. The
	// CLIs bind it to their signal context so a SIGINT never leaves a
	// request (or a lease poll loop) dangling. Nil means
	// context.Background().
	Context context.Context
	// Gzip compresses request bodies past a size floor and asks for
	// gzip-compressed responses. Off by default; any guoqd with this
	// code understands it, and it only pays off on slow links.
	Gzip bool
	// Binary switches the envelope-heavy endpoints (exchange, submit) to
	// the length-prefixed binary codec. Opt-in: an older coordinator
	// rejects the content type, so enable it only against a current one.
	Binary bool
	// Retries bounds the extra attempts made when an idempotent request
	// (exchange, submit, push, complete — never lease) fails with a
	// transient error: a network fault or a 429/502/503/504. Each retry
	// backs off exponentially with jitter, honoring Retry-After on 429.
	// 0 means the default of 2; negative disables retrying.
	Retries int

	// m mirrors the stats into a registry when Instrument was called; its
	// nil handles are no-ops otherwise. Written once before the first
	// request, read without the lock thereafter.
	m clientMetrics

	mu       sync.Mutex
	stats    ClientStats // guarded by mu
	lastSent time.Time   // guarded by mu
	lastCost float64     // guarded by mu
	sentAny  bool        // guarded by mu
}

// ClientStats counts a client's exchange traffic.
type ClientStats struct {
	// Exchanges is the number of attempted exchange round trips.
	Exchanges int
	// Adoptions is how many times the coordinator returned a better
	// solution that decoded cleanly and fit the ε budget.
	Adoptions int
	// Throttled counts exchange calls answered locally by the
	// MinInterval rate limit without a round trip.
	Throttled int
	// Errors counts failed round trips (network, HTTP, or decode).
	Errors int
	// Retries counts retried attempts on idempotent requests.
	Retries int
}

// Dial builds a client for a coordinator address ("host:port" or a full
// http:// URL) and verifies the coordinator answers /healthz.
func Dial(addr, session, worker string) (*Client, error) {
	c := NewClient(addr, session, worker)
	if err := c.Healthy(); err != nil {
		return nil, fmt.Errorf("dist: coordinator %s unreachable: %w", addr, err)
	}
	return c, nil
}

// NewClient builds a client without probing the coordinator (tests, and
// callers that prefer lazy failure).
func NewClient(addr, session, worker string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{
		base:    strings.TrimRight(addr, "/"),
		hc:      &http.Client{Timeout: 10 * time.Second},
		Session: session,
		Worker:  worker,
	}
}

// Stats snapshots the exchange counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// authorize attaches the shared bearer token when one is configured.
func (c *Client) authorize(req *http.Request) {
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
}

// ctx returns the client's base request context.
func (c *Client) ctx() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

// Healthy probes the coordinator's /healthz endpoint.
func (c *Client) Healthy() error {
	req, err := http.NewRequestWithContext(c.ctx(), http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz returned %s", resp.Status)
	}
	return nil
}

// Exchange implements opt.Exchanger over the wire: publish the best
// solution with its accumulated ε bound, adopt the session best when the
// coordinator offers one and its bound fits this client's ε budget.
func (c *Client) Exchange(best *circuit.Circuit, bestErr, bestCost float64) (*circuit.Circuit, float64, bool) {
	interval := c.MinInterval
	if interval == 0 {
		interval = 100 * time.Millisecond
	}
	c.mu.Lock()
	improved := !c.sentAny || bestCost < c.lastCost
	if !improved && interval > 0 && time.Since(c.lastSent) < interval {
		c.stats.Throttled++
		c.mu.Unlock()
		c.m.throttled.Inc()
		return nil, 0, false
	}
	c.sentAny, c.lastCost, c.lastSent = true, bestCost, time.Now()
	c.stats.Exchanges++
	c.mu.Unlock()
	c.m.exchanges.Inc()
	req := ExchangeRequest{
		Session: c.Session,
		Worker:  c.Worker,
		Epsilon: c.Epsilon,
		Best:    Solution{Envelope: circuit.Seal(best, bestErr), Cost: bestCost},
	}
	var resp ExchangeResponse
	if err := c.postIdem("/v1/exchange", req, &resp); err != nil {
		c.fail()
		return nil, 0, false
	}
	if !resp.Adopt {
		return nil, 0, false
	}
	if resp.Best.Err > c.Epsilon {
		// The session tolerates a larger budget than this run (possible
		// when -session is pinned across runs with different -epsilon);
		// adopting would break this run's BestError ≤ Epsilon contract.
		return nil, 0, false
	}
	adopted, adoptErr, err := resp.Best.Open()
	if err != nil {
		c.fail()
		return nil, 0, false
	}
	c.mu.Lock()
	c.stats.Adoptions++
	c.mu.Unlock()
	c.m.adoptions.Inc()
	return adopted, adoptErr, true
}

func (c *Client) fail() {
	c.mu.Lock()
	c.stats.Errors++
	c.mu.Unlock()
	c.m.errors.Inc()
}

// Submit registers an optimization request with the coordinator. A cache
// hit returns the previously computed best directly (Cached=true); a miss
// returns the exchange session to join, which the caller should store in
// c.Session before exchanging.
func (c *Client) Submit(circ *circuit.Circuit, target, objective string, epsilon float64) (SubmitResponse, error) {
	req := SubmitRequest{
		QASM:      circ.WriteQASM(),
		Target:    target,
		Objective: objective,
		Epsilon:   epsilon,
		Worker:    c.Worker,
	}
	var resp SubmitResponse
	err := c.postIdem("/v1/submit", req, &resp)
	return resp, err
}

// Push enqueues jobs onto a named queue, returning how many were new.
func (c *Client) Push(queue string, jobs []Job) (int, error) {
	var resp PushResponse
	err := c.postIdem("/v1/jobs/push", PushRequest{Queue: queue, Jobs: jobs}, &resp)
	return resp.Added, err
}

// Lease asks for one job. ok=false with drained=true means the queue is
// finished; ok=false with drained=false means everything pending is
// currently leased elsewhere — poll again later.
func (c *Client) Lease(queue string, ttl time.Duration) (job Job, ok, drained bool, err error) {
	req := LeaseRequest{Queue: queue, Worker: c.Worker, TTLMillis: ttl.Milliseconds()}
	var resp LeaseResponse
	if err := c.post("/v1/jobs/lease", req, &resp); err != nil {
		return Job{}, false, false, err
	}
	return resp.Job, resp.OK, resp.Drained, nil
}

// Complete reports a finished job; result is marshalled to JSON.
func (c *Client) Complete(queue, id string, result any) error {
	raw, err := json.Marshal(result)
	if err != nil {
		return err
	}
	var resp CompleteResponse
	return c.postIdem("/v1/jobs/complete", CompleteRequest{
		Queue: queue, Worker: c.Worker, ID: id, Result: raw,
	}, &resp)
}

// Queue fetches a queue's status including collected results.
func (c *Client) Queue(queue string) (QueueStatus, error) {
	var st QueueStatus
	req, err := http.NewRequestWithContext(c.ctx(), http.MethodGet, c.base+"/v1/queues/"+queue, nil)
	if err != nil {
		return st, err
	}
	c.authorize(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("queue status returned %s", resp.Status)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// encodeRequest marshals req per the client's codec settings and returns
// the body plus the Content-Type and Content-Encoding headers to send.
func (c *Client) encodeRequest(req any) (body []byte, contentType, contentEncoding string, err error) {
	contentType = contentTypeJSON
	if bm, ok := req.(binaryMessage); ok && c.Binary {
		body = bm.appendBinary(nil)
		contentType = contentTypeBinary
	} else if body, err = json.Marshal(req); err != nil {
		return nil, "", "", err
	}
	if c.Gzip && len(body) >= gzipMinBytes {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err = zw.Write(body); err == nil {
			err = zw.Close()
		}
		if err != nil {
			return nil, "", "", err
		}
		body, contentEncoding = buf.Bytes(), "gzip"
	}
	return body, contentType, contentEncoding, nil
}

// decodeResponse reads a 200 body, reversing whatever encoding the server
// chose (it only ever picks codecs this request advertised).
func (c *Client) decodeResponse(resp *http.Response, into any) error {
	body := io.Reader(resp.Body)
	if strings.Contains(resp.Header.Get("Content-Encoding"), "gzip") {
		// Manually negotiated Accept-Encoding disables the transport's
		// transparent decompression, so inflate here.
		zr, err := gzip.NewReader(body)
		if err != nil {
			return err
		}
		defer zr.Close()
		body = zr
	}
	if strings.HasPrefix(resp.Header.Get("Content-Type"), contentTypeBinary) {
		bm, ok := into.(binaryMessage)
		if !ok {
			return fmt.Errorf("dist: unexpected binary response")
		}
		data, err := io.ReadAll(body)
		if err != nil {
			return err
		}
		return bm.decodeBinary(data)
	}
	return json.NewDecoder(body).Decode(into)
}

// httpStatusError is a non-200 reply; it keeps the code (and any
// Retry-After hint) so the retry loop can classify it.
type httpStatusError struct {
	path       string
	code       int
	msg        string
	retryAfter time.Duration
}

func (e *httpStatusError) Error() string {
	if e.msg != "" {
		return fmt.Sprintf("dist: %s: %s", e.path, e.msg)
	}
	return fmt.Sprintf("dist: %s returned %d", e.path, e.code)
}

// post performs one request/response cycle with codec negotiation. No
// retrying — see postIdem for that.
func (c *Client) post(path string, req, into any) error {
	if h := c.m.requestSeconds.With(path); h != nil {
		defer h.Time()()
	}
	body, ct, ce, err := c.encodeRequest(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(c.ctx(), http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", ct)
	if ce != "" {
		hreq.Header.Set("Content-Encoding", ce)
	}
	if c.Gzip {
		hreq.Header.Set("Accept-Encoding", "gzip")
	}
	if _, ok := into.(binaryMessage); ok && c.Binary {
		hreq.Header.Set("Accept", contentTypeBinary)
	}
	c.authorize(hreq)
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		e := &httpStatusError{path: path, code: resp.StatusCode}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			e.retryAfter = time.Duration(secs) * time.Second
		}
		var env struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&env)
		e.msg = env.Error
		return e
	}
	return c.decodeResponse(resp, into)
}

// transient reports whether an attempt failed in a way a retry can fix:
// a network fault (but not the caller's own cancellation) or a
// coordinator answering 429/502/503/504. A 429's Retry-After overrides
// the backoff when longer.
func transient(err error) (bool, time.Duration) {
	var se *httpStatusError
	if errors.As(err, &se) {
		switch se.code {
		case http.StatusTooManyRequests, http.StatusBadGateway,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true, se.retryAfter
		}
		return false, 0
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false, 0
	}
	return true, 0
}

// postIdem is post with bounded retry, for idempotent endpoints only:
// exchange, submit, push, and complete all tolerate duplicate delivery
// (publishing is monotone, push dedups by job ID, complete is
// first-writer-wins), but lease is NOT here — a retried lease can strand
// a job with a ghost worker until its TTL expires.
func (c *Client) postIdem(path string, req, into any) error {
	retries := c.Retries
	if retries == 0 {
		retries = 2
	} else if retries < 0 {
		retries = 0
	}
	backoff := 100 * time.Millisecond
	for attempt := 0; ; attempt++ {
		err := c.post(path, req, into)
		if err == nil {
			return nil
		}
		retry, hint := transient(err)
		if !retry || attempt >= retries {
			return err
		}
		// Exponential backoff with full jitter; a 429's Retry-After wins
		// when it asks for more patience than the schedule.
		delay := time.Duration(rand.Int63n(int64(backoff))) + backoff/2
		if hint > delay {
			delay = hint
		}
		backoff *= 2
		c.mu.Lock()
		c.stats.Retries++
		c.mu.Unlock()
		c.m.retries.Inc()
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-c.ctx().Done():
			timer.Stop()
			return err
		}
	}
}

// JobSource adapts a Client to a single named queue with a fixed lease
// TTL, in the shape internal/experiments consumes for sharded benchmark
// runs: Lease blocks (polling) while other workers still hold leases, and
// reports ok=false only once the queue is drained.
type JobSource struct {
	Client    *Client
	QueueName string
	TTL       time.Duration
	// Poll is the retry period while the queue is busy (default 250 ms).
	Poll time.Duration
}

// LeaseNext blocks until a job is available, the queue is drained, or the
// client's Context is cancelled (the poll sleep is interruptible, so a
// SIGINT does not linger for a full poll period).
func (s *JobSource) LeaseNext() (string, bool, error) {
	poll := s.Poll
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		job, ok, drained, err := s.Client.Lease(s.QueueName, s.TTL)
		if err != nil {
			return "", false, err
		}
		if ok {
			return job.ID, true, nil
		}
		if drained {
			return "", false, nil
		}
		timer := time.NewTimer(poll)
		select {
		case <-timer.C:
		case <-s.Client.ctx().Done():
			timer.Stop()
			return "", false, s.Client.ctx().Err()
		}
	}
}

// CompleteJob reports one finished job with its raw JSON result.
func (s *JobSource) CompleteJob(id string, result json.RawMessage) error {
	return s.Client.Complete(s.QueueName, id, result)
}
