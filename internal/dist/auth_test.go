package dist_test

import (
	"net/http"
	"strings"
	"testing"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/dist"
	"github.com/guoq-dev/guoq/internal/gate"
)

// TestTokenAuthHTTP pins the raw HTTP contract: with a token configured,
// /v1/ endpoints demand the bearer token (401 otherwise) while /healthz
// stays open for probes and load balancers.
func TestTokenAuthHTTP(t *testing.T) {
	_, hs := newLoopback(t, dist.ServerOptions{Token: "sesame"})

	get := func(path, auth string) int {
		req, err := http.NewRequest(http.MethodGet, hs.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	post := func(path, auth, body string) int {
		req, err := http.NewRequest(http.MethodPost, hs.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := get("/healthz", ""); code != http.StatusOK {
		t.Fatalf("healthz without token = %d, want 200 (must stay open)", code)
	}
	if code := get("/v1/status", ""); code != http.StatusUnauthorized {
		t.Fatalf("status without token = %d, want 401", code)
	}
	if code := get("/v1/status", "Bearer wrong"); code != http.StatusUnauthorized {
		t.Fatalf("status with wrong token = %d, want 401", code)
	}
	if code := get("/v1/status", "Bearer sesame"); code != http.StatusOK {
		t.Fatalf("status with token = %d, want 200", code)
	}
	if code := post("/v1/exchange", "", `{"session":"s"}`); code != http.StatusUnauthorized {
		t.Fatalf("exchange without token = %d, want 401", code)
	}
	if code := post("/v1/jobs/lease", "sesame", `{"queue":"q"}`); code != http.StatusUnauthorized {
		t.Fatalf("lease with malformed auth header = %d, want 401", code)
	}
	if code := post("/v1/exchange", "Bearer sesame", `{"session":"s"}`); code != http.StatusOK {
		t.Fatalf("exchange with token = %d, want 200", code)
	}
}

// TestTokenAuthClient: a Client with the matching Token works end to end
// (exchange and queue paths); one without degrades gracefully — exchanges
// count as errors rather than panics, and the worker keeps optimizing
// alone.
func TestTokenAuthClient(t *testing.T) {
	_, hs := newLoopback(t, dist.ServerOptions{Token: "sesame"})

	c := circuit.New(1)
	c.Append(gate.NewH(0))

	authed := client(t, hs, "sess", "w1", 1e-8)
	authed.Token = "sesame"
	if _, _, ok := authed.Exchange(c, 0, 10); ok {
		t.Fatal("first exchange should have nothing to adopt")
	}
	if st := authed.Stats(); st.Errors != 0 || st.Exchanges != 1 {
		t.Fatalf("authed stats = %+v, want 1 clean exchange", st)
	}
	if _, err := authed.Push("q", []dist.Job{{ID: "a"}}); err != nil {
		t.Fatalf("authed push failed: %v", err)
	}
	if _, err := authed.Queue("q"); err != nil {
		t.Fatalf("authed queue status failed: %v", err)
	}

	anon := client(t, hs, "sess", "w2", 1e-8)
	anon.MinInterval = -1
	if _, _, ok := anon.Exchange(c, 0, 10); ok {
		t.Fatal("unauthenticated exchange adopted a solution")
	}
	if st := anon.Stats(); st.Errors != 1 {
		t.Fatalf("anon stats = %+v, want the rejected exchange counted as an error", st)
	}
	if _, err := anon.Push("q", []dist.Job{{ID: "b"}}); err == nil {
		t.Fatal("unauthenticated push succeeded")
	}
}
