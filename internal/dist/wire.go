package dist

import (
	"encoding/json"

	"github.com/guoq-dev/guoq/internal/circuit"
)

// The HTTP surface of a guoqd coordinator. All request bodies and
// responses are JSON.
//
//	POST /v1/exchange       ExchangeRequest  -> ExchangeResponse
//	POST /v1/jobs/push      PushRequest      -> PushResponse
//	POST /v1/jobs/lease     LeaseRequest     -> LeaseResponse
//	POST /v1/jobs/complete  CompleteRequest  -> CompleteResponse
//	GET  /v1/queues/{name}                   -> QueueStatus
//	GET  /v1/status                          -> Status
//	GET  /healthz                            -> "ok"

// Solution is a candidate circuit on the wire: QASM text, the accumulated
// ε bound relative to the session's original circuit, and its value under
// the session's cost function. Costs are computed by workers (the server
// never needs the cost function itself — it only compares numbers), which
// requires every session participant to run the same objective.
type Solution struct {
	circuit.Envelope
	Cost float64 `json:"cost"`
}

// ExchangeRequest publishes a worker's best solution to a session and asks
// for the session's best in return.
type ExchangeRequest struct {
	// Session identifies the search this worker participates in. All
	// participants must optimize the same circuit under the same objective
	// and ε budget; SessionID derives a suitable key.
	Session string `json:"session"`
	// Worker is a free-form identity used in logs and lease bookkeeping.
	Worker string `json:"worker,omitempty"`
	// Epsilon is the global error budget ε_f of the search. The first
	// exchange of a session fixes the session's budget; the server rejects
	// published solutions whose Err exceeds it.
	Epsilon float64  `json:"epsilon"`
	Best    Solution `json:"best"`
}

// ExchangeResponse carries the session's best back when it strictly beats
// the caller's published solution.
type ExchangeResponse struct {
	Adopt bool     `json:"adopt"`
	Best  Solution `json:"best,omitempty"`
}

// Job is one unit of shardable work — for benchmark sharding, ID is the
// suite circuit's name and Payload is unused; pushers with custom work can
// carry anything textual in Payload.
type Job struct {
	ID      string `json:"id"`
	Payload string `json:"payload,omitempty"`
}

// PushRequest enqueues jobs onto a named queue. Jobs whose ID the queue
// has already seen (pending, leased, done, or failed) are skipped, so
// seeding is idempotent.
type PushRequest struct {
	Queue string `json:"queue"`
	Jobs  []Job  `json:"jobs"`
}

// PushResponse reports how many jobs were actually enqueued.
type PushResponse struct {
	Added int `json:"added"`
}

// LeaseRequest asks for one job from a queue. The lease expires after TTL
// (server default when zero); a job whose lease expires before completion
// returns to the queue for another worker.
type LeaseRequest struct {
	Queue     string `json:"queue"`
	Worker    string `json:"worker"`
	TTLMillis int64  `json:"ttl_ms,omitempty"`
}

// LeaseResponse returns a job when one is available. Drained means the
// queue has nothing pending and nothing leased — workers should stop
// polling. OK=false with Drained=false means "try again later" (everything
// pending is currently leased to other workers).
type LeaseResponse struct {
	OK      bool `json:"ok"`
	Job     Job  `json:"job,omitempty"`
	Drained bool `json:"drained"`
}

// CompleteRequest reports a finished job with an opaque JSON result.
type CompleteRequest struct {
	Queue  string          `json:"queue"`
	Worker string          `json:"worker"`
	ID     string          `json:"id"`
	Result json.RawMessage `json:"result,omitempty"`
}

// CompleteResponse acknowledges completion.
type CompleteResponse struct {
	OK bool `json:"ok"`
}

// QueueStatus summarizes a queue and carries the collected results, so any
// participant (or the driver that seeded the queue) can fetch the merged
// outcome of a sharded run.
type QueueStatus struct {
	Pending int                        `json:"pending"`
	Leased  int                        `json:"leased"`
	Done    int                        `json:"done"`
	Failed  []string                   `json:"failed,omitempty"`
	Results map[string]json.RawMessage `json:"results,omitempty"`
}

// SessionStatus summarizes one exchange session.
type SessionStatus struct {
	Epsilon      float64 `json:"epsilon"`
	BestCost     float64 `json:"best_cost"`
	BestErr      float64 `json:"best_err"`
	Exchanges    int     `json:"exchanges"`
	Improvements int     `json:"improvements"`
}

// Status is the coordinator-wide view returned by GET /v1/status. Queues
// carries every queue's depths in one response, so fleet operators need no
// per-queue requests. LiveSessions and UptimeSeconds were added after the
// first release; older servers simply omit them (new fields only, the wire
// struct stays backward-compatible).
type Status struct {
	Sessions map[string]SessionStatus `json:"sessions"`
	Queues   map[string]QueueStatus   `json:"queues"`
	// LiveSessions counts exchange sessions within their idle TTL.
	LiveSessions int `json:"live_sessions,omitempty"`
	// UptimeSeconds is the time since the coordinator started.
	UptimeSeconds float64 `json:"uptime_seconds,omitempty"`
}
