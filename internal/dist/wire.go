package dist

import (
	"encoding/json"

	"github.com/guoq-dev/guoq/internal/circuit"
)

// The HTTP surface of a guoqd coordinator. All request bodies and
// responses are JSON.
//
//	POST /v1/submit         SubmitRequest    -> SubmitResponse
//	POST /v1/exchange       ExchangeRequest  -> ExchangeResponse
//	POST /v1/jobs/push      PushRequest      -> PushResponse
//	POST /v1/jobs/lease     LeaseRequest     -> LeaseResponse
//	POST /v1/jobs/complete  CompleteRequest  -> CompleteResponse
//	GET  /v1/queues/{name}                   -> QueueStatus
//	GET  /v1/status                          -> Status
//	GET  /healthz                            -> "ok"
//
// Bodies may additionally be gzip-compressed (standard Content-Encoding /
// Accept-Encoding negotiation) or, on the envelope-heavy endpoints, use
// the opt-in binary codec — see codec.go. JSON remains the default.

// Solution is a candidate circuit on the wire: QASM text, the accumulated
// ε bound relative to the session's original circuit, and its value under
// the session's cost function. Costs are computed by workers (the server
// never needs the cost function itself — it only compares numbers), which
// requires every session participant to run the same objective.
type Solution struct {
	circuit.Envelope
	Cost float64 `json:"cost"`
}

// SubmitRequest registers an optimization request with the coordinator
// before any search work is spent on it. The server normalizes the circuit
// (QASM parse + re-emit), derives the content address of
// (circuit, target, ε, objective), and answers from the result cache when
// a prior search already paid for an answer; on a miss it opens an
// exchange session bound to that cache slot, so the eventual best feeds
// the cache for the next submitter.
type SubmitRequest struct {
	// QASM is the input circuit, already translated to the target basis
	// (as guoq does before optimizing). Formatting differences are
	// irrelevant: the server canonicalizes before hashing.
	QASM string `json:"qasm"`
	// Target names the gate set the circuit is optimized for.
	Target string `json:"target"`
	// Objective is the cost function name (2q, t, fidelity, gates, ...).
	Objective string `json:"objective"`
	// Epsilon is the global approximation budget ε_f.
	Epsilon float64 `json:"epsilon"`
	// Worker is a free-form identity for logs.
	Worker string `json:"worker,omitempty"`
}

// SubmitResponse answers a submission: a cache hit carries the optimized
// circuit directly, a miss carries the exchange session to join.
type SubmitResponse struct {
	// Cached reports that Best holds a previously computed solution for
	// this exact (circuit, target, ε, objective) — no search needed.
	Cached bool `json:"cached"`
	// Session is the exchange session bound to this request's cache slot.
	Session string `json:"session"`
	// Best is the cached solution (only when Cached).
	Best Solution `json:"best,omitempty"`
}

// ExchangeRequest publishes a worker's best solution to a session and asks
// for the session's best in return.
type ExchangeRequest struct {
	// Session identifies the search this worker participates in. All
	// participants must optimize the same circuit under the same objective
	// and ε budget; SessionID derives a suitable key.
	Session string `json:"session"`
	// Worker is a free-form identity used in logs and lease bookkeeping.
	Worker string `json:"worker,omitempty"`
	// Epsilon is the global error budget ε_f of the search. The first
	// exchange of a session fixes the session's budget; the server rejects
	// published solutions whose Err exceeds it.
	Epsilon float64  `json:"epsilon"`
	Best    Solution `json:"best"`
}

// ExchangeResponse carries the session's best back when it strictly beats
// the caller's published solution.
type ExchangeResponse struct {
	Adopt bool     `json:"adopt"`
	Best  Solution `json:"best,omitempty"`
}

// Job is one unit of shardable work — for benchmark sharding, ID is the
// suite circuit's name and Payload is unused; pushers with custom work can
// carry anything textual in Payload.
type Job struct {
	ID      string `json:"id"`
	Payload string `json:"payload,omitempty"`
}

// PushRequest enqueues jobs onto a named queue. Jobs whose ID the queue
// has already seen (pending, leased, done, or failed) are skipped, so
// seeding is idempotent.
type PushRequest struct {
	Queue string `json:"queue"`
	Jobs  []Job  `json:"jobs"`
}

// PushResponse reports how many jobs were actually enqueued.
type PushResponse struct {
	Added int `json:"added"`
}

// LeaseRequest asks for one job from a queue. The lease expires after TTL
// (server default when zero); a job whose lease expires before completion
// returns to the queue for another worker.
type LeaseRequest struct {
	Queue     string `json:"queue"`
	Worker    string `json:"worker"`
	TTLMillis int64  `json:"ttl_ms,omitempty"`
}

// LeaseResponse returns a job when one is available. Drained means the
// queue has nothing pending and nothing leased — workers should stop
// polling. OK=false with Drained=false means "try again later" (everything
// pending is currently leased to other workers).
type LeaseResponse struct {
	OK      bool `json:"ok"`
	Job     Job  `json:"job,omitempty"`
	Drained bool `json:"drained"`
}

// CompleteRequest reports a finished job with an opaque JSON result.
type CompleteRequest struct {
	Queue  string          `json:"queue"`
	Worker string          `json:"worker"`
	ID     string          `json:"id"`
	Result json.RawMessage `json:"result,omitempty"`
}

// CompleteResponse acknowledges completion.
type CompleteResponse struct {
	OK bool `json:"ok"`
}

// QueueStatus summarizes a queue and carries the collected results, so any
// participant (or the driver that seeded the queue) can fetch the merged
// outcome of a sharded run.
type QueueStatus struct {
	Pending int                        `json:"pending"`
	Leased  int                        `json:"leased"`
	Done    int                        `json:"done"`
	Failed  []string                   `json:"failed,omitempty"`
	Results map[string]json.RawMessage `json:"results,omitempty"`
}

// SessionStatus summarizes one exchange session.
type SessionStatus struct {
	Epsilon      float64 `json:"epsilon"`
	BestCost     float64 `json:"best_cost"`
	BestErr      float64 `json:"best_err"`
	Exchanges    int     `json:"exchanges"`
	Improvements int     `json:"improvements"`
}

// Status is the coordinator-wide view returned by GET /v1/status. Queues
// carries every queue's depths in one response, so fleet operators need no
// per-queue requests. LiveSessions and UptimeSeconds were added after the
// first release; older servers simply omit them (new fields only, the wire
// struct stays backward-compatible).
type Status struct {
	Sessions map[string]SessionStatus `json:"sessions"`
	Queues   map[string]QueueStatus   `json:"queues"`
	// LiveSessions counts exchange sessions within their idle TTL.
	LiveSessions int `json:"live_sessions,omitempty"`
	// UptimeSeconds is the time since the coordinator started.
	UptimeSeconds float64 `json:"uptime_seconds,omitempty"`
	// CacheEntries / CacheHits / CacheMisses / CacheHitRate describe the
	// content-addressed result cache behind /v1/submit. Like LiveSessions
	// these are additive fields: older servers omit them.
	CacheEntries int     `json:"cache_entries,omitempty"`
	CacheHits    int64   `json:"cache_hits,omitempty"`
	CacheMisses  int64   `json:"cache_misses,omitempty"`
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
}
