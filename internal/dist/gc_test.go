package dist

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for session-GC tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) Now() time.Time          { return f.t }
func (f *fakeClock) Advance(d time.Duration) { f.t = f.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func (s *Server) sessionCount() int          { s.mu.Lock(); defer s.mu.Unlock(); return len(s.sessions) }
func (s *Server) hasSession(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.sessions[id]
	return ok
}

// TestSessionGCExpiresIdleSessions pins the TTL contract: sessions idle
// past SessionTTL are collected on the next access, active sessions are
// kept, and an expired id is transparently recreated empty.
func TestSessionGCExpiresIdleSessions(t *testing.T) {
	clock := newFakeClock()
	s := NewServer(ServerOptions{SessionTTL: time.Minute})
	s.now = clock.Now

	s.session("a", 1e-8)
	s.session("b", 1e-8)
	if got := s.sessionCount(); got != 2 {
		t.Fatalf("expected 2 sessions, got %d", got)
	}

	// Touch a just before b's expiry; b stays idle.
	clock.Advance(59 * time.Second)
	s.session("a", 1e-8)

	// Cross b's TTL (idle 1m2s) while a is only 3s idle.
	clock.Advance(3 * time.Second)
	s.session("c", 1e-8) // any exchange-path access triggers the sweep
	if s.hasSession("b") {
		t.Error("idle session b survived past its TTL")
	}
	if !s.hasSession("a") || !s.hasSession("c") {
		t.Error("active sessions were collected")
	}

	// A worker outliving the TTL recreates its session, losing the stored
	// best — which it republishes at the next exchange.
	sa := s.session("a", 1e-8)
	sa.exchange(ExchangeRequest{Session: "a", Epsilon: 1e-8})
	clock.Advance(2 * time.Minute)
	s.session("x", 1e-8)
	if s.hasSession("a") {
		t.Fatal("session a should have expired")
	}
	if got := s.session("a", 1e-8); got.has {
		t.Error("recreated session kept stale state")
	}
}

// TestSessionGCStatusSweepsButDoesNotTouch ensures a status poll collects
// expired sessions without counting as activity on the survivors.
func TestSessionGCStatusSweepsButDoesNotTouch(t *testing.T) {
	clock := newFakeClock()
	s := NewServer(ServerOptions{SessionTTL: time.Minute})
	s.now = clock.Now

	s.session("a", 1e-8)
	for i := 0; i < 5; i++ {
		clock.Advance(30 * time.Second)
		// Poll status every 30 s: must not keep a alive.
		s.mu.Lock()
		s.sweepSessionsLocked(clock.Now())
		s.mu.Unlock()
	}
	if s.hasSession("a") {
		t.Error("status polling kept an idle session alive")
	}
}

// TestSessionGCDisabled pins that a negative TTL disables collection.
func TestSessionGCDisabled(t *testing.T) {
	clock := newFakeClock()
	s := NewServer(ServerOptions{SessionTTL: -1})
	s.now = clock.Now

	s.session("a", 1e-8)
	clock.Advance(1000 * time.Hour)
	s.session("b", 1e-8)
	if !s.hasSession("a") {
		t.Error("session collected despite GC being disabled")
	}
}
