package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry holds named metric families and renders them in Prometheus text
// format. Registration is get-or-create and idempotent: asking twice for
// the same name returns the same instrument, so independent components can
// share counters without coordination. Registering a name with a different
// type or label set than before panics — that is a programming error, not
// a runtime condition.
//
// A nil *Registry is valid and returns nil instruments (which are
// themselves no-ops), so "no metrics" needs no special-casing anywhere.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family // guarded by mu
	order    []string           // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, k kind, labels []string, buckets []float64, fn func() float64) *family {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		f, ok = r.families[name]
		if !ok {
			f = &family{
				name: name, help: help, kind: k, labels: labels,
				buckets:  buckets,
				fn:       fn,
				children: make(map[string]any),
				vals:     make(map[string][]string),
			}
			r.families[name] = f
			r.order = append(r.order, name)
		}
		r.mu.Unlock()
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, k, f.kind))
	}
	if len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: metric %q re-registered with %d labels (was %d)", name, len(labels), len(f.labels)))
	}
	for i := range labels {
		if f.labels[i] != labels[i] {
			panic(fmt.Sprintf("obs: metric %q re-registered with label %q (was %q)", name, labels[i], f.labels[i]))
		}
	}
	return f
}

// Counter returns the counter registered under name, creating it if
// needed. Returns nil on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.family(name, help, kindCounter, nil, nil, nil).child(nil).(*Counter)
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.family(name, help, kindGauge, nil, nil, nil).child(nil).(*Gauge)
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds if needed (nil buckets =
// DefLatencyBuckets). Buckets are fixed at first registration.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	return r.family(name, help, kindHistogram, nil, buckets, nil).child(nil).(*Histogram)
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — for values some other subsystem already tracks.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.family(name, help, kindCounterFunc, nil, nil, fn)
}

// GaugeFunc registers a gauge read from fn at exposition time (queue
// depths, uptimes — anything owned elsewhere). fn must be safe to call
// from any goroutine and must not call back into this registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.family(name, help, kindGaugeFunc, nil, nil, fn)
}

// CounterVec is a family of counters split by label values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (one per label name,
// in registration order). Nil-safe.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil || v.f == nil {
		return nil
	}
	return v.f.child(values).(*Counter)
}

// GaugeVec is a family of gauges split by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values. Nil-safe.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil || v.f == nil {
		return nil
	}
	return v.f.child(values).(*Gauge)
}

// HistogramVec is a family of histograms split by label values.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values. Nil-safe.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil || v.f == nil {
		return nil
	}
	return v.f.child(values).(*Histogram)
}

// CounterVec returns the labeled counter family registered under name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{r.family(name, help, kindCounter, labels, nil, nil)}
}

// GaugeVec returns the labeled gauge family registered under name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{r.family(name, help, kindGauge, labels, nil, nil)}
}

// HistogramVec returns the labeled histogram family registered under name
// (nil buckets = DefLatencyBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	return &HistogramVec{r.family(name, help, kindHistogram, labels, buckets, nil)}
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// labelString renders {k1="v1",k2="v2"}; extra appends one more pair
// (used for histogram le). Empty input renders "" or {le="..."}.
func labelString(names, values []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(values[i]))
		b.WriteByte('"')
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(extraV)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every family in Prometheus text format 0.0.4.
// Families appear in registration order; labeled children are sorted by
// label values so the output is stable for golden tests and diffing.
// Safe to call while other goroutines keep updating the instruments.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	order := make([]string, len(r.order))
	copy(order, r.order)
	fams := make([]*family, len(order))
	for i, n := range order {
		fams[i] = r.families[n]
	}
	r.mu.RUnlock()

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		if f.fn != nil {
			if _, err := fmt.Fprintf(w, "%s %s\n", f.name, fmtFloat(f.fn())); err != nil {
				return err
			}
			continue
		}
		f.mu.RLock()
		keys := make([]string, len(f.keys))
		copy(keys, f.keys)
		f.mu.RUnlock()
		sort.Strings(keys)
		for _, key := range keys {
			f.mu.RLock()
			m := f.children[key]
			vals := f.vals[key]
			f.mu.RUnlock()
			ls := labelString(f.labels, vals, "", "")
			var err error
			switch m := m.(type) {
			case *Counter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, ls, m.Value())
			case *Gauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, ls, fmtFloat(m.Value()))
			case *Histogram:
				cum := int64(0)
				for i := range m.counts {
					cum += m.counts[i].Load()
					le := "+Inf"
					if i < len(m.upper) {
						le = fmtFloat(m.upper[i])
					}
					if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, vals, "le", le), cum); err != nil {
						return err
					}
				}
				_, err = fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
					f.name, ls, fmtFloat(m.Sum()), f.name, ls, m.Count())
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Snapshot flattens the registry into a name→value map: plain metrics
// under their name, labeled children under name{l="v",...}, histograms as
// name_sum and name_count (buckets omitted — snapshots feed dashboards
// and JSON reports, not scrapes). Nil registry returns nil.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	out := make(map[string]float64)
	r.mu.RLock()
	fams := make([]*family, 0, len(r.order))
	for _, n := range r.order {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()
	for _, f := range fams {
		if f.fn != nil {
			out[f.name] = f.fn()
			continue
		}
		f.mu.RLock()
		keys := make([]string, len(f.keys))
		copy(keys, f.keys)
		f.mu.RUnlock()
		for _, key := range keys {
			f.mu.RLock()
			m := f.children[key]
			vals := f.vals[key]
			f.mu.RUnlock()
			ls := labelString(f.labels, vals, "", "")
			switch m := m.(type) {
			case *Counter:
				out[f.name+ls] = float64(m.Value())
			case *Gauge:
				out[f.name+ls] = m.Value()
			case *Histogram:
				out[f.name+"_sum"+ls] = m.Sum()
				out[f.name+"_count"+ls] = float64(m.Count())
			}
		}
	}
	return out
}
