package obs

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", nil)
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(2)
	g.Inc()
	g.Dec()
	h.Observe(1)
	h.ObserveSince(time.Now())
	h.Time()()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	var cv *CounterVec
	cv.With("a").Inc()
	r.CounterVec("v", "", "l").With("a").Inc()
	r.GaugeVec("w", "", "l").With("a").Set(1)
	r.HistogramVec("u", "", nil, "l").With("a").Observe(1)
	r.GaugeFunc("f", "", func() float64 { return 1 })
	r.CounterFunc("f2", "", func() float64 { return 1 })
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
}

func TestGetOrCreateIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits", "h")
	b := r.Counter("hits", "h")
	if a != b {
		t.Fatal("same name must return same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("shared counter not shared")
	}
	h1 := r.Histogram("lat", "", []float64{1, 2})
	h2 := r.Histogram("lat", "", []float64{5, 6, 7}) // buckets fixed at first registration
	if h1 != h2 {
		t.Fatal("same histogram name must return same histogram")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("hits", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d", "", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`d_bucket{le="1"} 2`,  // 0.5 and 1 (le is inclusive)
		`d_bucket{le="10"} 3`, // cumulative
		`d_bucket{le="+Inf"} 4`,
		`d_sum 106.5`,
		`d_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
}

// TestGolden locks the Prometheus text exposition format: family order is
// registration order, children sort by label values, floats render in
// shortest form, label values escape backslash/quote/newline.
func TestGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", "Total requests.").Add(42)
	r.Gauge("queue_depth", "Jobs pending.").Set(3.5)
	v := r.CounterVec("accepts_total", "Accepts per rule.", "rule")
	v.With("b_cancel").Add(7)
	v.With("a_fuse").Add(2)
	v.With(`we"ird\nm`).Inc()
	h := r.Histogram("latency_seconds", "Request latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	r.GaugeFunc("uptime_seconds", "Uptime.", func() float64 { return 12.25 })

	want := `# HELP requests_total Total requests.
# TYPE requests_total counter
requests_total 42
# HELP queue_depth Jobs pending.
# TYPE queue_depth gauge
queue_depth 3.5
# HELP accepts_total Accepts per rule.
# TYPE accepts_total counter
accepts_total{rule="a_fuse"} 2
accepts_total{rule="b_cancel"} 7
accepts_total{rule="we\"ird\\nm"} 1
# HELP latency_seconds Request latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 2.55
latency_seconds_count 3
# HELP uptime_seconds Uptime.
# TYPE uptime_seconds gauge
uptime_seconds 12.25
`
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "").Add(3)
	r.GaugeVec("g", "", "k").With("v").Set(1.5)
	h := r.Histogram("h", "", []float64{1})
	h.Observe(0.5)
	h.Observe(2)
	r.GaugeFunc("f", "", func() float64 { return 9 })
	s := r.Snapshot()
	for k, want := range map[string]float64{
		"c": 3, `g{k="v"}`: 1.5, "h_sum": 2.5, "h_count": 2, "f": 9,
	} {
		if s[k] != want {
			t.Fatalf("Snapshot[%q] = %v, want %v (full: %v)", k, s[k], want, s)
		}
	}
}

// TestConcurrency hammers registration, labeled-vector creation, updates,
// and exposition from many goroutines at once; run with -race.
func TestConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			labels := []string{"a", "b", "c", "d"}
			for i := 0; i < iters; i++ {
				r.Counter("shared_total", "").Inc()
				r.CounterVec("labeled_total", "", "l").With(labels[(w+i)%len(labels)]).Inc()
				r.Gauge("g", "").Add(1)
				r.Histogram("h", "", []float64{1e-9, 1}).ObserveSince(time.Now())
				if i%100 == 0 {
					if err := r.WritePrometheus(io.Discard); err != nil {
						t.Error(err)
					}
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total", "").Value(); got != workers*iters {
		t.Fatalf("shared_total = %d, want %d", got, workers*iters)
	}
	total := int64(0)
	for _, l := range []string{"a", "b", "c", "d"} {
		total += r.CounterVec("labeled_total", "", "l").With(l).Value()
	}
	if total != workers*iters {
		t.Fatalf("labeled_total sum = %d, want %d", total, workers*iters)
	}
	if got := r.Gauge("g", "").Value(); got != float64(workers*iters) {
		t.Fatalf("gauge = %v, want %d", got, workers*iters)
	}
	if got := r.Histogram("h", "", nil).Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}
