// Package obs is the repo's dependency-free metrics subsystem: atomic
// Counter/Gauge/Histogram instruments, labeled vectors, and a
// concurrent-safe Registry with Prometheus text-format exposition.
//
// Design constraints, in order:
//
//   - Hot-path cost. Instruments are single atomics; a nil instrument is a
//     no-op, so instrumented code needs no "is metrics enabled" branches —
//     the nil check is the branch, and it is free enough for the GUOQ inner
//     loop. Handles are resolved once (at registration), never per
//     observation.
//   - No dependencies. The exposition format is the stable Prometheus text
//     format (version 0.0.4), small enough to emit by hand; pulling in a
//     client library for it would be the only third-party dependency of the
//     whole module.
//   - Concurrency. Every instrument and the Registry are safe for
//     concurrent use, including WritePrometheus racing live updates (it
//     reads atomics, so it sees a torn-free point-in-time-ish view without
//     stopping writers).
package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// atomicFloat is a float64 updated with compare-and-swap on its bit
// pattern — the standard lock-free float accumulator.
type atomicFloat struct {
	bits atomic.Uint64
}

func (a *atomicFloat) Add(v float64) {
	for {
		old := a.bits.Load()
		nb := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, nb) {
			return
		}
	}
}

func (a *atomicFloat) Store(v float64) { a.bits.Store(math.Float64bits(v)) }
func (a *atomicFloat) Load() float64   { return math.Float64frombits(a.bits.Load()) }

// Counter is a monotonically increasing count. All methods are no-ops on a
// nil receiver, so optional instrumentation never needs guards.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be ≥ 0; counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down (queue depth, ε spend, best
// cost). All methods are no-ops on a nil receiver.
type Gauge struct {
	v atomicFloat
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds v (which may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.v.Add(v)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution (latencies, sizes). Buckets are
// upper bounds in ascending order; an implicit +Inf bucket catches the
// rest. Observation is one linear scan over the (few) buckets plus three
// atomics. All methods are no-ops on a nil receiver.
type Histogram struct {
	upper  []float64
	counts []atomic.Int64 // len(upper)+1; non-cumulative, summed at exposition
	sum    atomicFloat
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveSince records the seconds elapsed since t0 — the span-timer fast
// path: t0 := time.Now(); ...; h.ObserveSince(t0). No allocation.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Time returns a stop function observing the elapsed seconds when called —
// the convenient form for phase timing (defer h.Time()()). It allocates a
// closure; inner loops should use ObserveSince.
func (h *Histogram) Time() func() {
	if h == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { h.ObserveSince(t0) }
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// ExpBuckets returns n bucket upper bounds growing geometrically from
// start by factor — the usual shape for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// DefLatencyBuckets spans 1 µs to ~4 s in ×4 steps: wide enough for both
// sub-millisecond rewrite proposals and multi-second synthesis calls.
var DefLatencyBuckets = ExpBuckets(1e-6, 4, 12)

// kind is a metric family's type, fixed at first registration.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k kind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric: a scalar, or a set of labeled children.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64
	fn      func() float64 // kindCounterFunc/kindGaugeFunc

	mu       sync.RWMutex
	children map[string]any      // label-value key -> *Counter/*Gauge/*Histogram; guarded by mu
	keys     []string            // insertion order; sorted at exposition; guarded by mu
	vals     map[string][]string // guarded by mu
}

const labelSep = "\x1f"

func (f *family) child(values []string) any {
	key := ""
	for i, v := range values {
		if i > 0 {
			key += labelSep
		}
		key += v
	}
	f.mu.RLock()
	m, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	var nm any
	switch f.kind {
	case kindCounter:
		nm = &Counter{}
	case kindGauge:
		nm = &Gauge{}
	case kindHistogram:
		nm = &Histogram{upper: f.buckets, counts: make([]atomic.Int64, len(f.buckets)+1)}
	}
	f.children[key] = nm
	f.keys = append(f.keys, key)
	vals := make([]string, len(values))
	copy(vals, values)
	f.vals[key] = vals
	return nm
}
