// Package store is guoqd's durability layer: a write-ahead log with
// periodic snapshots for coordinator state, a content-addressed result
// cache, and per-token quota accounting. It is deliberately generic — the
// Log carries opaque typed records and opaque snapshot bytes, so
// internal/dist owns its own record vocabulary and this package owns only
// the crash-safety mechanics (framing, checksums, fsync batching, torn-tail
// recovery, compaction).
//
// On-disk layout of a data directory:
//
//	data/
//	  snapshot.json   latest state snapshot: {"lsn": N, "state": ...}
//	  wal.log         records appended after the snapshot was taken
//	  cache/          spilled result-cache entries (see Cache)
//
// Recovery contract: Open loads the snapshot (if any), then replays every
// intact WAL record with LSN greater than the snapshot's. A torn tail —
// the partial record an interrupted write leaves behind — is detected by
// the length/CRC framing, truncated, and reported; everything before it is
// preserved. Compact writes a new snapshot atomically (tmp + rename) and
// then truncates the WAL; because replay filters records at or below the
// snapshot LSN, a crash between those two steps is harmless.
package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

const (
	snapshotFile = "snapshot.json"
	walFile      = "wal.log"

	// frameHeader is [4-byte LE payload length][4-byte LE CRC32(payload)].
	frameHeader = 8
	// maxRecordBytes bounds a single record so a corrupt length field
	// cannot make replay attempt a multi-gigabyte allocation.
	maxRecordBytes = 256 << 20
)

// Record is one durable state change: a monotone sequence number, a
// caller-defined type tag, and an opaque JSON payload.
type Record struct {
	LSN  uint64          `json:"lsn"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// Recovery is what Open found on disk: the latest snapshot (nil when none
// was ever taken) and the intact WAL records appended after it, in order.
type Recovery struct {
	// Snapshot is the state bytes passed to the last successful Compact.
	Snapshot json.RawMessage
	// Records are the WAL records with LSN greater than the snapshot's.
	Records []Record
	// TornTail reports that the WAL ended in a partial or corrupt record
	// (an interrupted append) which was truncated away.
	TornTail bool
}

// Options tunes a Log. The zero value is usable.
type Options struct {
	// SyncEvery batches fsyncs: Append acknowledges once the record is
	// written to the OS, and a background flusher syncs the file at this
	// cadence, so a burst of appends costs one fsync instead of one each.
	// Zero selects 25 ms; negative syncs on every append (strongest
	// durability, slowest).
	SyncEvery time.Duration
}

// snapshotEnvelope is the on-disk snapshot file: the WAL position it
// covers plus the caller's opaque state.
type snapshotEnvelope struct {
	LSN   uint64          `json:"lsn"`
	State json.RawMessage `json:"state"`
}

// Log is an append-only write-ahead log with snapshot-based compaction.
// Append/Sync/Compact/Close are safe for concurrent use.
type Log struct {
	dir       string
	syncEvery time.Duration

	mu           sync.Mutex
	f            *os.File      // guarded by mu
	w            *bufio.Writer // guarded by mu
	lsn          uint64        // last assigned sequence number; guarded by mu
	snapLSN      uint64        // covered by the on-disk snapshot; guarded by mu
	sinceCompact int           // records appended since the last Compact; guarded by mu
	dirty        bool          // bytes written since the last fsync; guarded by mu
	err          error         // sticky write/sync failure; guarded by mu
	closed       bool          // guarded by mu

	stop chan struct{}
	done chan struct{}
}

// Open opens (creating if needed) the durable log in dir and returns it
// together with the recovered state. The WAL is positioned for appending
// after the last intact record.
func Open(dir string, o Options) (*Log, *Recovery, error) {
	if o.SyncEvery == 0 {
		o.SyncEvery = 25 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	rec := &Recovery{}
	var snapLSN uint64
	if data, err := os.ReadFile(filepath.Join(dir, snapshotFile)); err == nil {
		var env snapshotEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			return nil, nil, fmt.Errorf("store: corrupt %s: %w", snapshotFile, err)
		}
		snapLSN = env.LSN
		rec.Snapshot = env.State
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("store: %w", err)
	}

	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	records, good, torn, err := scanWAL(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if torn {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: truncating torn WAL tail: %w", err)
		}
		rec.TornTail = true
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: %w", err)
	}

	lsn := snapLSN
	for _, r := range records {
		if r.LSN > lsn {
			lsn = r.LSN
		}
		if r.LSN > snapLSN {
			rec.Records = append(rec.Records, r)
		}
	}

	l := &Log{
		dir:       dir,
		syncEvery: o.SyncEvery,
		f:         f,
		w:         bufio.NewWriter(f),
		lsn:       lsn,
		snapLSN:   snapLSN,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	if l.syncEvery > 0 {
		go l.flusher()
	} else {
		close(l.done)
	}
	return l, rec, nil
}

// scanWAL reads intact records from the start of f, returning them, the
// offset just past the last intact record, and whether a torn or corrupt
// tail follows that offset.
func scanWAL(f *os.File) (records []Record, good int64, torn bool, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, false, fmt.Errorf("store: %w", err)
	}
	r := bufio.NewReader(f)
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			// Clean EOF ends the scan; a short header is a torn tail.
			return records, good, err != io.EOF, nil
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if n > maxRecordBytes {
			return records, good, true, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return records, good, true, nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return records, good, true, nil
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return records, good, true, nil
		}
		records = append(records, rec)
		good += frameHeader + int64(n)
	}
}

// flusher is the fsync batcher: it syncs dirty appends every syncEvery.
func (l *Log) flusher() {
	defer close(l.done)
	t := time.NewTicker(l.syncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			l.syncLocked()
			l.mu.Unlock()
		case <-l.stop:
			return
		}
	}
}

// Append marshals data, assigns the next LSN, and writes the framed record
// to the WAL. Durability follows the SyncEvery policy; call Sync for a
// hard barrier. Returns the assigned LSN.
func (l *Log) Append(typ string, data any) (uint64, error) {
	raw, err := json.Marshal(data)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("store: log closed")
	}
	if l.err != nil {
		return 0, l.err
	}
	l.lsn++
	payload, err := json.Marshal(Record{LSN: l.lsn, Type: typ, Data: raw})
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := l.w.Write(hdr[:]); err != nil {
		l.err = err
		return 0, err
	}
	if _, err := l.w.Write(payload); err != nil {
		l.err = err
		return 0, err
	}
	l.dirty = true
	l.sinceCompact++
	if l.syncEvery < 0 {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	return l.lsn, nil
}

func (l *Log) syncLocked() error {
	if l.err != nil {
		return l.err
	}
	if !l.dirty {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		l.err = err
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.err = err
		return err
	}
	l.dirty = false
	return nil
}

// Sync flushes and fsyncs pending appends immediately.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

// SinceCompact reports how many records were appended since the last
// Compact — the signal callers use to schedule checkpoints.
func (l *Log) SinceCompact() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinceCompact
}

// LSN returns the last assigned sequence number.
func (l *Log) LSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsn
}

// Compact durably writes state as the new snapshot covering every record
// appended so far, then truncates the WAL. state must marshal to JSON.
// Crash-safe at every step: the snapshot lands via tmp-file + rename, and
// stale WAL records surviving a crash before the truncate are filtered by
// LSN on the next Open.
func (l *Log) Compact(state any) error {
	raw, err := json.Marshal(state)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("store: log closed")
	}
	// The snapshot must not claim records still sitting in the buffer.
	if err := l.syncLocked(); err != nil {
		return err
	}
	env, err := json.Marshal(snapshotEnvelope{LSN: l.lsn, State: raw})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := filepath.Join(l.dir, snapshotFile+".tmp")
	if err := writeFileSync(tmp, env); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapshotFile)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	syncDir(l.dir)
	// The snapshot now covers everything; restart the WAL from empty.
	if err := l.f.Truncate(0); err != nil {
		l.err = err
		return fmt.Errorf("store: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		l.err = err
		return fmt.Errorf("store: %w", err)
	}
	l.w.Reset(l.f)
	l.snapLSN = l.lsn
	l.sinceCompact = 0
	l.dirty = false
	return nil
}

// Close stops the flusher, syncs pending appends, and closes the WAL.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stop)
	<-l.done
	l.mu.Lock()
	defer l.mu.Unlock()
	serr := l.syncLocked()
	cerr := l.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// writeFileSync writes data to path and fsyncs it before returning, so a
// following rename publishes fully durable bytes.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a rename inside it is durable; best-effort
// (some filesystems refuse directory syncs).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
