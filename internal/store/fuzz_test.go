package store

import (
	"os"
	"path/filepath"
	"testing"
)

// walSeed builds a well-formed WAL (optionally with a snapshot) by
// driving the real API in a scratch directory, and returns the raw file
// bytes so mutated variants of genuine framing reach the fuzzer.
func walSeed(f *testing.F, withSnapshot bool) []byte {
	f.Helper()
	dir := f.TempDir()
	lg, _, err := Open(dir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := lg.Append("job", map[string]int{"n": i}); err != nil {
			f.Fatal(err)
		}
	}
	if withSnapshot {
		if err := lg.Compact([]byte(`{"state":"s"}`)); err != nil {
			f.Fatal(err)
		}
		if _, err := lg.Append("post", map[string]string{"k": "v"}); err != nil {
			f.Fatal(err)
		}
	}
	if err := lg.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzWALReplay writes arbitrary bytes as a WAL file and recovers from
// it: Open must never panic, and whenever it succeeds, closing and
// reopening must succeed again with the same record count and no torn
// tail (the first Open truncated any) — recovery is idempotent on
// whatever it accepts.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(walSeed(f, false))
	f.Add(walSeed(f, true))
	f.Add([]byte("garbage that is definitely not a WAL record\n"))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, wal []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walFile), wal, 0o644); err != nil {
			t.Fatal(err)
		}
		lg, rec, err := Open(dir, Options{})
		if err != nil {
			return
		}
		n := len(rec.Records)
		if err := lg.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
		lg2, rec2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("second recovery failed where first succeeded: %v", err)
		}
		defer lg2.Close()
		if rec2.TornTail {
			t.Fatal("torn tail reported again after the first Open truncated it")
		}
		if len(rec2.Records) != n {
			t.Fatalf("recovery not idempotent: %d records, then %d", n, len(rec2.Records))
		}
	})
}
