package store

import (
	"math"
	"sync"
	"time"
)

// Limiter applies per-key token-bucket rate limits: each key (a bearer
// token, or a remote address on open servers) gets a bucket of Burst
// tokens refilled at Rate tokens per second; a request spends one token.
// Keys without an explicit override share the default limit. Safe for
// concurrent use.
type Limiter struct {
	rate  float64
	burst float64
	now   func() time.Time // injectable clock for tests

	mu        sync.Mutex
	buckets   map[string]*bucket    // guarded by mu
	overrides map[string]quotaLimit // guarded by mu
	lastPrune time.Time             // guarded by mu
}

type quotaLimit struct{ rate, burst float64 }

type bucket struct {
	limit  quotaLimit
	tokens float64
	last   time.Time
}

// NewLimiter builds a limiter allowing rate requests per second per key
// with bursts of burst (≤0 selects 2×rate, minimum 1). A rate ≤ 0 returns
// nil — and a nil *Limiter allows everything, so "no quota" needs no
// special-casing.
func NewLimiter(rate, burst float64) *Limiter {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = math.Max(1, 2*rate)
	}
	return &Limiter{
		rate:    rate,
		burst:   burst,
		now:     time.Now,
		buckets: map[string]*bucket{},
	}
}

// SetLimit overrides the rate/burst for one key (a per-token quota). A
// rate ≤ 0 blocks the key entirely.
func (l *Limiter) SetLimit(key string, rate, burst float64) {
	if l == nil {
		return
	}
	if burst <= 0 {
		burst = math.Max(1, 2*rate)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.overrides == nil {
		l.overrides = map[string]quotaLimit{}
	}
	l.overrides[key] = quotaLimit{rate: rate, burst: burst}
	delete(l.buckets, key) // rebuild with the new limit on next use
}

// Allow spends one token from key's bucket. When the bucket is empty it
// returns false plus the wait until a token will be available — the
// Retry-After a 429 should carry.
func (l *Limiter) Allow(key string) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pruneLocked(now)
	b := l.buckets[key]
	if b == nil {
		lim := quotaLimit{rate: l.rate, burst: l.burst}
		if ov, ok := l.overrides[key]; ok {
			lim = ov
		}
		b = &bucket{limit: lim, tokens: lim.burst, last: now}
		l.buckets[key] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.limit.burst, b.tokens+dt*b.limit.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if b.limit.rate <= 0 {
		// Blocked key: there is no useful retry horizon; report an hour.
		return false, time.Hour
	}
	need := (1 - b.tokens) / b.limit.rate
	return false, time.Duration(need * float64(time.Second))
}

// pruneLocked bounds the bucket map against key-cardinality abuse (open
// servers key by remote address): full buckets idle past a minute carry no
// state worth keeping and are dropped, at most once per second.
func (l *Limiter) pruneLocked(now time.Time) {
	if len(l.buckets) < 1024 || now.Sub(l.lastPrune) < time.Second {
		return
	}
	l.lastPrune = now
	for k, b := range l.buckets {
		if now.Sub(b.last) > time.Minute {
			delete(l.buckets, k)
		}
	}
}
