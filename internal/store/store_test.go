package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

type testRec struct {
	N int `json:"n"`
}

// openT opens a log in dir with per-append syncing (no background flusher
// timing in tests) and fails the test on error.
func openT(t *testing.T, dir string) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(dir, Options{SyncEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func TestLogAppendReplay(t *testing.T) {
	dir := t.TempDir()
	l, rec := openT(t, dir)
	if rec.Snapshot != nil || len(rec.Records) != 0 || rec.TornTail {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	for i := 1; i <= 5; i++ {
		lsn, err := l.Append("n", testRec{N: i})
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if lsn != uint64(i) {
			t.Fatalf("LSN = %d, want %d", lsn, i)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l, rec = openT(t, dir)
	defer l.Close()
	if rec.TornTail {
		t.Fatal("clean log reported a torn tail")
	}
	if len(rec.Records) != 5 {
		t.Fatalf("replayed %d records, want 5", len(rec.Records))
	}
	for i, r := range rec.Records {
		var tr testRec
		if err := json.Unmarshal(r.Data, &tr); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if r.Type != "n" || tr.N != i+1 || r.LSN != uint64(i+1) {
			t.Fatalf("record %d = {%s %d lsn=%d}, want {n %d lsn=%d}", i, r.Type, tr.N, r.LSN, i+1, i+1)
		}
	}
	// Appends after reopen continue the sequence.
	if lsn, err := l.Append("n", testRec{N: 6}); err != nil || lsn != 6 {
		t.Fatalf("post-reopen Append = (%d, %v), want (6, nil)", lsn, err)
	}
}

func TestLogTornTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	for i := 1; i <= 3; i++ {
		if _, err := l.Append("n", testRec{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage bytes shorter than a frame
	// header at the tail.
	wal := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l, rec := openT(t, dir)
	if !rec.TornTail {
		t.Fatal("torn tail not reported")
	}
	if len(rec.Records) != 3 {
		t.Fatalf("replayed %d records, want 3 (intact prefix preserved)", len(rec.Records))
	}
	// The log stays usable: the tail was truncated, appends continue.
	if lsn, err := l.Append("n", testRec{N: 4}); err != nil || lsn != 4 {
		t.Fatalf("post-truncate Append = (%d, %v), want (4, nil)", lsn, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, rec = openT(t, dir)
	defer l.Close()
	if rec.TornTail || len(rec.Records) != 4 {
		t.Fatalf("after repair: torn=%v records=%d, want clean 4", rec.TornTail, len(rec.Records))
	}
}

func TestLogTornTailCorruptPayload(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	if _, err := l.Append("n", testRec{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the last record: CRC must catch it.
	wal := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(wal, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec := openT(t, dir)
	defer l.Close()
	if !rec.TornTail || len(rec.Records) != 0 {
		t.Fatalf("corrupt record: torn=%v records=%d, want torn with 0 records", rec.TornTail, len(rec.Records))
	}
}

func TestLogCompact(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	for i := 1; i <= 4; i++ {
		if _, err := l.Append("n", testRec{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.SinceCompact(); got != 4 {
		t.Fatalf("SinceCompact = %d, want 4", got)
	}
	if err := l.Compact(map[string]int{"sum": 10}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if got := l.SinceCompact(); got != 0 {
		t.Fatalf("SinceCompact after Compact = %d, want 0", got)
	}
	// Post-compaction appends land in the fresh WAL.
	if _, err := l.Append("n", testRec{N: 5}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, rec := openT(t, dir)
	defer l.Close()
	var snap map[string]int
	if err := json.Unmarshal(rec.Snapshot, &snap); err != nil || snap["sum"] != 10 {
		t.Fatalf("snapshot = %s (%v), want {sum:10}", rec.Snapshot, err)
	}
	if len(rec.Records) != 1 {
		t.Fatalf("replayed %d records, want 1 (only the post-compaction append)", len(rec.Records))
	}
	if rec.Records[0].LSN != 5 {
		t.Fatalf("post-compaction record LSN = %d, want 5", rec.Records[0].LSN)
	}
}

func TestLogStaleWALFilteredByLSN(t *testing.T) {
	// A crash between snapshot rename and WAL truncate leaves records the
	// snapshot already covers; replay must drop them.
	dir := t.TempDir()
	l, _ := openT(t, dir)
	for i := 1; i <= 3; i++ {
		if _, err := l.Append("n", testRec{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Write the snapshot by hand (covering LSN 2) without truncating.
	env, _ := json.Marshal(map[string]any{"lsn": 2, "state": map[string]int{"sum": 3}})
	if err := os.WriteFile(filepath.Join(dir, "snapshot.json"), env, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, rec := openT(t, dir)
	defer l.Close()
	if len(rec.Records) != 1 || rec.Records[0].LSN != 3 {
		t.Fatalf("replay = %+v, want only LSN 3 (records ≤ snapshot LSN filtered)", rec.Records)
	}
	// The LSN counter resumes past everything seen.
	if lsn, err := l.Append("n", testRec{N: 4}); err != nil || lsn != 4 {
		t.Fatalf("Append = (%d, %v), want (4, nil)", lsn, err)
	}
}
