package store

import (
	"strings"
	"testing"
)

func TestCacheKeyNormalization(t *testing.T) {
	a := CacheKey("qasm-a", "ibmq20", "2q", 1e-8)
	if a != CacheKey("qasm-a", "ibmq20", "2q", 1e-8) {
		t.Fatal("identical inputs hashed differently")
	}
	for _, other := range []string{
		CacheKey("qasm-b", "ibmq20", "2q", 1e-8),
		CacheKey("qasm-a", "ionq", "2q", 1e-8),
		CacheKey("qasm-a", "ibmq20", "t", 1e-8),
		CacheKey("qasm-a", "ibmq20", "2q", 1e-4),
	} {
		if other == a {
			t.Fatal("distinct request fields collided")
		}
	}
}

func TestCacheHitMissAndStats(t *testing.T) {
	c := NewCache(8, 0, "")
	k := CacheKey("q", "t", "o", 0)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, CacheEntry{QASM: "optimized", Cost: 3})
	e, ok := c.Get(k)
	if !ok || e.QASM != "optimized" || e.Cost != 3 {
		t.Fatalf("Get = (%+v, %v)", e, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if r := c.HitRate(); r != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", r)
	}
}

func TestCacheLowerCostWins(t *testing.T) {
	c := NewCache(8, 0, "")
	c.Put("k", CacheEntry{QASM: "good", Cost: 5})
	c.Put("k", CacheEntry{QASM: "worse", Cost: 9})
	if e, _ := c.Get("k"); e.QASM != "good" {
		t.Fatalf("higher-cost Put replaced the entry: %+v", e)
	}
	c.Put("k", CacheEntry{QASM: "better", Cost: 2})
	if e, _ := c.Get("k"); e.QASM != "better" {
		t.Fatalf("lower-cost Put did not replace: %+v", e)
	}
}

func TestCacheEntryEviction(t *testing.T) {
	c := NewCache(2, 0, "")
	c.Put("a", CacheEntry{QASM: "A", Cost: 1})
	c.Put("b", CacheEntry{QASM: "B", Cost: 1})
	c.Get("a") // refresh a: b is now LRU
	c.Put("c", CacheEntry{QASM: "C", Cost: 1})
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used entry a was evicted")
	}
}

func TestCacheByteEviction(t *testing.T) {
	// Each entry costs len(QASM)+64 bytes; cap at ~2 entries' worth.
	c := NewCache(100, 300, "")
	big := strings.Repeat("x", 80) // 144 bytes each
	c.Put("a", CacheEntry{QASM: big, Cost: 1})
	c.Put("b", CacheEntry{QASM: big, Cost: 1})
	c.Put("c", CacheEntry{QASM: big, Cost: 1})
	if n := c.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2 (byte bound)", n)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("oldest entry survived the byte bound")
	}
}

func TestCacheDiskSpill(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(1, 0, dir)
	ka := CacheKey("circ-a", "t", "o", 0)
	kb := CacheKey("circ-b", "t", "o", 0)
	c.Put(ka, CacheEntry{QASM: "A", Cost: 1})
	c.Put(kb, CacheEntry{QASM: "B", Cost: 2}) // evicts ka from memory
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	// The evicted entry reloads from the spill.
	e, ok := c.Get(ka)
	if !ok || e.QASM != "A" {
		t.Fatalf("spilled entry not reloaded: (%+v, %v)", e, ok)
	}
	if st := c.Stats(); st.DiskHits != 1 {
		t.Fatalf("DiskHits = %d, want 1", st.DiskHits)
	}

	// A fresh cache over the same dir — a restart — still serves both.
	c2 := NewCache(4, 0, dir)
	if e, ok := c2.Get(kb); !ok || e.QASM != "B" {
		t.Fatalf("entry lost across restart: (%+v, %v)", e, ok)
	}
}

func TestCacheNilSafe(t *testing.T) {
	var c *Cache
	c.Put("k", CacheEntry{QASM: "x"})
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache returned a hit")
	}
	if c.Len() != 0 || c.HitRate() != 0 {
		t.Fatal("nil cache reported non-zero state")
	}
}
