package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// CacheKey derives the content address of an optimization request: the
// canonical QASM of the input circuit (callers must normalize via a parse +
// WriteQASM round trip so formatting differences collapse), the target gate
// set, the objective, and the ε budget. Requests that agree on all four are
// interchangeable — any cached solution satisfies both.
func CacheKey(canonicalQASM, target, objective string, epsilon float64) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%.17g", canonicalQASM, target, objective, epsilon)
	return hex.EncodeToString(h.Sum(nil))
}

// CacheEntry is one cached optimization result: the optimized circuit, its
// accumulated ε bound, and its cost under the request's objective.
type CacheEntry struct {
	QASM string  `json:"qasm"`
	Err  float64 `json:"err"`
	Cost float64 `json:"cost"`
}

func (e CacheEntry) size() int64 { return int64(len(e.QASM)) + 64 }

// CacheStats snapshots a cache's traffic counters.
type CacheStats struct {
	Hits     int64 // Get calls served (memory or disk)
	Misses   int64 // Get calls that found nothing
	DiskHits int64 // subset of Hits served by reloading a spilled entry
}

// Cache is a content-addressed result cache with LRU eviction bounded by
// both entry count and total bytes, and an optional disk spill directory:
// every Put also lands on disk, so entries evicted from memory (or a cache
// lost to a restart) are transparently reloaded on their next Get. Safe
// for concurrent use.
type Cache struct {
	maxEntries int
	maxBytes   int64
	dir        string // "" = memory only

	mu    sync.Mutex
	ll    *list.List               // front = most recently used; values are *cacheItem; guarded by mu
	items map[string]*list.Element // guarded by mu
	bytes int64                    // guarded by mu
	stats CacheStats               // guarded by mu
}

type cacheItem struct {
	key   string
	entry CacheEntry
}

// NewCache builds a cache bounded to maxEntries entries and maxBytes total
// payload bytes (≤0 selects 4096 entries / 256 MB). A non-empty dir
// enables the disk spill under dir (created on demand).
func NewCache(maxEntries int, maxBytes int64, dir string) *Cache {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		dir:        dir,
		ll:         list.New(),
		items:      map[string]*list.Element{},
	}
}

// Get returns the entry cached under key, consulting the disk spill when
// memory misses. The second result reports whether anything was found.
func (c *Cache) Get(key string) (CacheEntry, bool) {
	if c == nil {
		return CacheEntry{}, false
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheItem).entry
		c.stats.Hits++
		c.mu.Unlock()
		return e, true
	}
	c.mu.Unlock()
	if e, ok := c.loadSpilled(key); ok {
		c.mu.Lock()
		c.stats.Hits++
		c.stats.DiskHits++
		c.installLocked(key, e)
		c.mu.Unlock()
		return e, true
	}
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	return CacheEntry{}, false
}

// Put stores an entry under key. When the key is already present, the
// lower-cost solution wins — both satisfy the key's ε budget, so cost is
// the only tiebreak. The entry is also spilled to disk when a spill
// directory is configured.
func (c *Cache) Put(key string, e CacheEntry) {
	if c == nil || key == "" || e.QASM == "" {
		return
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok && el.Value.(*cacheItem).entry.Cost <= e.Cost {
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.installLocked(key, e)
	c.mu.Unlock()
	c.spill(key, e)
}

// installLocked inserts or replaces key's entry at the LRU front and
// evicts past either bound. Caller holds c.mu.
func (c *Cache) installLocked(key string, e CacheEntry) {
	if el, ok := c.items[key]; ok {
		it := el.Value.(*cacheItem)
		c.bytes += e.size() - it.entry.size()
		it.entry = e
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheItem{key: key, entry: e})
		c.bytes += e.size()
	}
	for (c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes) && c.ll.Len() > 1 {
		el := c.ll.Back()
		it := el.Value.(*cacheItem)
		c.ll.Remove(el)
		delete(c.items, it.key)
		c.bytes -= it.entry.size()
	}
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the hit/miss counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// HitRate returns hits/(hits+misses), or 0 before any traffic.
func (c *Cache) HitRate() float64 {
	st := c.Stats()
	if total := st.Hits + st.Misses; total > 0 {
		return float64(st.Hits) / float64(total)
	}
	return 0
}

// spillPath shards spilled entries over 256 subdirectories so no single
// directory grows unboundedly.
func (c *Cache) spillPath(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// spill writes an entry to the disk spill; best-effort (a full disk must
// not fail the request that produced the result).
func (c *Cache) spill(key string, e CacheEntry) {
	if c.dir == "" || len(key) < 2 {
		return
	}
	path := c.spillPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	tmp := path + ".tmp"
	if os.WriteFile(tmp, data, 0o644) == nil {
		_ = os.Rename(tmp, path)
	}
}

// loadSpilled reloads a spilled entry; a corrupt file is treated as a miss.
func (c *Cache) loadSpilled(key string) (CacheEntry, bool) {
	if c.dir == "" || len(key) < 2 {
		return CacheEntry{}, false
	}
	data, err := os.ReadFile(c.spillPath(key))
	if err != nil {
		return CacheEntry{}, false
	}
	var e CacheEntry
	if json.Unmarshal(data, &e) != nil || e.QASM == "" {
		return CacheEntry{}, false
	}
	return e, true
}
