package store

import (
	"testing"
	"time"
)

// clockAt pins a limiter to a manual clock and returns the advance func.
func clockAt(l *Limiter) func(d time.Duration) {
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }
	return func(d time.Duration) { now = now.Add(d) }
}

func TestLimiterBurstAndRefill(t *testing.T) {
	l := NewLimiter(1, 2) // 1 req/s, burst 2
	advance := clockAt(l)
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("k"); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, retry := l.Allow("k")
	if ok {
		t.Fatal("request past burst allowed")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter = %v, want (0, 1s]", retry)
	}
	// One token refills after a second.
	advance(time.Second)
	if ok, _ := l.Allow("k"); !ok {
		t.Fatal("request after refill rejected")
	}
	if ok, _ := l.Allow("k"); ok {
		t.Fatal("second request after single-token refill allowed")
	}
}

func TestLimiterKeysIndependent(t *testing.T) {
	l := NewLimiter(1, 1)
	clockAt(l)
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("first key rejected")
	}
	if ok, _ := l.Allow("b"); !ok {
		t.Fatal("second key throttled by first key's spend")
	}
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("first key's empty bucket allowed")
	}
}

func TestLimiterSetLimit(t *testing.T) {
	l := NewLimiter(100, 100)
	advance := clockAt(l)
	l.SetLimit("slow", 1, 1)
	if ok, _ := l.Allow("slow"); !ok {
		t.Fatal("override burst rejected")
	}
	if ok, _ := l.Allow("slow"); ok {
		t.Fatal("override did not apply")
	}
	// Other keys keep the default limit.
	for i := 0; i < 50; i++ {
		if ok, _ := l.Allow("fast"); !ok {
			t.Fatalf("default-limit request %d rejected", i)
		}
	}
	// A blocked key reports a long retry horizon.
	l.SetLimit("banned", 0, 0)
	advance(time.Minute)
	if ok, retry := l.Allow("banned"); !ok && retry < time.Minute {
		t.Fatalf("blocked key retryAfter = %v, want ≥ 1m", retry)
	} else if ok {
		// The first Allow spends the minimum burst of 1; the second must
		// block forever.
		if ok, retry := l.Allow("banned"); ok || retry < time.Minute {
			t.Fatalf("blocked key allowed (retry %v)", retry)
		}
	}
}

func TestLimiterNilAllowsAll(t *testing.T) {
	if l := NewLimiter(0, 0); l != nil {
		t.Fatal("rate 0 should build a nil limiter")
	}
	var l *Limiter
	for i := 0; i < 1000; i++ {
		if ok, _ := l.Allow("k"); !ok {
			t.Fatal("nil limiter rejected")
		}
	}
	l.SetLimit("k", 1, 1) // must not panic
}
