// Package linalg provides the dense complex linear algebra used throughout
// the optimizer: unitary matrices, Kronecker products, the Hilbert–Schmidt
// distance of Def. 3.2, and efficient application of small gate matrices to
// large state matrices.
//
// Matrices are square, dense, row-major complex128. Dimensions are always
// powers of two (2^n for an n-qubit operator). The package has no external
// dependencies.
package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Matrix is a dense square complex matrix of dimension N stored row-major.
// The zero value is not useful; construct with New, Identity, or FromRows.
type Matrix struct {
	N    int
	Data []complex128
}

// New returns an N×N zero matrix.
func New(n int) Matrix {
	return Matrix{N: n, Data: make([]complex128, n*n)}
}

// Identity returns the N×N identity matrix.
func Identity(n int) Matrix {
	m := New(n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// FromRows builds a matrix from row slices. All rows must have equal length
// to the number of rows; FromRows panics otherwise, since it is only used
// with literal data.
func FromRows(rows [][]complex128) Matrix {
	n := len(rows)
	m := New(n)
	for i, r := range rows {
		if len(r) != n {
			panic(fmt.Sprintf("linalg: FromRows: row %d has %d entries, want %d", i, len(r), n))
		}
		copy(m.Data[i*n:(i+1)*n], r)
	}
	return m
}

// At returns element (i, j).
func (m Matrix) At(i, j int) complex128 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m Matrix) Set(i, j int, v complex128) { m.Data[i*m.N+j] = v }

// Clone returns a deep copy of m.
func (m Matrix) Clone() Matrix {
	c := Matrix{N: m.N, Data: make([]complex128, len(m.Data))}
	copy(c.Data, m.Data)
	return c
}

// Mul returns the matrix product a·b. It panics if dimensions differ, which
// indicates a programming error in gate bookkeeping.
func Mul(a, b Matrix) Matrix {
	if a.N != b.N {
		panic(fmt.Sprintf("linalg: Mul: dimension mismatch %d vs %d", a.N, b.N))
	}
	n := a.N
	out := New(n)
	for i := 0; i < n; i++ {
		arow := a.Data[i*n : (i+1)*n]
		orow := out.Data[i*n : (i+1)*n]
		for k := 0; k < n; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += aik * brow[j]
			}
		}
	}
	return out
}

// MulAll multiplies a sequence of matrices left to right:
// MulAll(a, b, c) = a·b·c. It panics on an empty argument list.
func MulAll(ms ...Matrix) Matrix {
	if len(ms) == 0 {
		panic("linalg: MulAll of no matrices")
	}
	acc := ms[0]
	for _, m := range ms[1:] {
		acc = Mul(acc, m)
	}
	return acc
}

// Add returns a + b.
func Add(a, b Matrix) Matrix {
	if a.N != b.N {
		panic("linalg: Add: dimension mismatch")
	}
	out := New(a.N)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a − b.
func Sub(a, b Matrix) Matrix {
	if a.N != b.N {
		panic("linalg: Sub: dimension mismatch")
	}
	out := New(a.N)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Scale returns s·m.
func Scale(s complex128, m Matrix) Matrix {
	out := New(m.N)
	for i := range m.Data {
		out.Data[i] = s * m.Data[i]
	}
	return out
}

// Adjoint returns the conjugate transpose m†.
func Adjoint(m Matrix) Matrix {
	n := m.N
	out := New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*n+i] = cmplx.Conj(m.Data[i*n+j])
		}
	}
	return out
}

// Trace returns the sum of diagonal entries.
func Trace(m Matrix) complex128 {
	var t complex128
	for i := 0; i < m.N; i++ {
		t += m.Data[i*m.N+i]
	}
	return t
}

// TraceAdjointMul returns Tr(a†·b) without materializing the product. This is
// the inner product that the Hilbert–Schmidt distance is built from.
func TraceAdjointMul(a, b Matrix) complex128 {
	if a.N != b.N {
		panic("linalg: TraceAdjointMul: dimension mismatch")
	}
	var t complex128
	for i := range a.Data {
		t += cmplx.Conj(a.Data[i]) * b.Data[i]
	}
	return t
}

// Kron returns the Kronecker (tensor) product a ⊗ b.
func Kron(a, b Matrix) Matrix {
	n := a.N * b.N
	out := New(n)
	for ai := 0; ai < a.N; ai++ {
		for aj := 0; aj < a.N; aj++ {
			av := a.Data[ai*a.N+aj]
			if av == 0 {
				continue
			}
			for bi := 0; bi < b.N; bi++ {
				row := (ai*b.N + bi) * n
				boff := bi * b.N
				col0 := aj * b.N
				for bj := 0; bj < b.N; bj++ {
					out.Data[row+col0+bj] = av * b.Data[boff+bj]
				}
			}
		}
	}
	return out
}

// KronAll returns the tensor product of the given matrices, left to right.
func KronAll(ms ...Matrix) Matrix {
	if len(ms) == 0 {
		panic("linalg: KronAll of no matrices")
	}
	acc := ms[0]
	for _, m := range ms[1:] {
		acc = Kron(acc, m)
	}
	return acc
}

// MaxAbsDiff returns the largest elementwise |a_ij − b_ij|.
func MaxAbsDiff(a, b Matrix) float64 {
	if a.N != b.N {
		return math.Inf(1)
	}
	var worst float64
	for i := range a.Data {
		d := cmplx.Abs(a.Data[i] - b.Data[i])
		if d > worst {
			worst = d
		}
	}
	return worst
}

// Equal reports whether a and b agree elementwise within tol.
func Equal(a, b Matrix, tol float64) bool {
	return a.N == b.N && MaxAbsDiff(a, b) <= tol
}

// IsUnitary reports whether m†·m is the identity within tol.
func IsUnitary(m Matrix, tol float64) bool {
	return Equal(Mul(Adjoint(m), m), Identity(m.N), tol)
}

// HSDistance is the Hilbert–Schmidt distance of Def. 3.2:
//
//	Δ(U, U′) = sqrt(1 − |Tr(U†·U′)|² / N²)
//
// It is zero iff U and U′ agree up to a global phase, which makes it the
// natural distance for circuit equivalence modulo phase (Def. 3.3).
func HSDistance(u, up Matrix) float64 {
	if u.N != up.N {
		return 1
	}
	t := TraceAdjointMul(u, up)
	n := float64(u.N)
	absTau := cmplx.Abs(t) / n
	if absTau > 0.5 {
		// Near equivalence the direct formula 1 − |τ|² suffers catastrophic
		// cancellation (precision floor ≈ 1e-8 after the sqrt). Use the
		// identity 1 − |τ| = ‖U − e^{iφ}U′‖²_F / (2N) with φ = arg Tr(U†U′),
		// which is computed from elementwise differences and stays accurate
		// down to machine epsilon. Then Δ² = (1 − |τ|)(1 + |τ|).
		ph := cmplx.Exp(complex(0, -cmplx.Phase(t)))
		var fro float64
		for i := range u.Data {
			d := u.Data[i] - ph*up.Data[i]
			fro += real(d)*real(d) + imag(d)*imag(d)
		}
		oneMinus := fro / (2 * n)
		return math.Sqrt(oneMinus * (1 + absTau))
	}
	v := 1 - absTau*absTau
	if v < 0 { // clamp tiny negative round-off
		v = 0
	}
	return math.Sqrt(v)
}

// EqualUpToPhase reports whether u = e^{iφ}·up for some φ, within tol on the
// Hilbert–Schmidt distance.
func EqualUpToPhase(u, up Matrix, tol float64) bool {
	return u.N == up.N && HSDistance(u, up) <= tol
}

// GlobalPhase returns the phase φ that best aligns up with u, i.e. the
// argument of Tr(u†·up). Aligning up by e^{-iφ} minimizes ‖u − e^{-iφ}up‖.
func GlobalPhase(u, up Matrix) float64 {
	return cmplx.Phase(TraceAdjointMul(u, up))
}

// String renders the matrix with 4 decimal places, for debugging and tests.
func (m Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			v := m.At(i, j)
			fmt.Fprintf(&b, "(%7.4f%+7.4fi) ", real(v), imag(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
