package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// Benchmarks for the state-vector apply kernels. Before the stack-scratch
// conversion, ApplyGateVec's generic (m ≥ 3) path and ApplyGateLeft each
// allocated two slices per call (masks + local amplitude scratch), and
// apply2QVec re-read all 16 gate coefficients from g.Data on every
// quadruple. After it, every kernel is 0 allocs/op up to maxStackGate
// qubits (12-qubit state, container reference machine: 1q ≈ 16 µs/op,
// 2q ≈ 27 µs/op, 3q ≈ 106 µs/op).
//
// The synthesis workers' fidelity checks call these in a tight loop, so
// 0 allocs/op for m ≤ maxStackGate is load-bearing — pinned by
// TestApplyKernelsZeroAlloc below.

func randomUnitaryish(m int, rng *rand.Rand) Matrix {
	// Not exactly unitary — benchmarks and alloc tests only need the right
	// shape and nonzero entries.
	g := New(1 << m)
	for i := range g.Data {
		g.Data[i] = cmplx.Rect(1/math.Sqrt(float64(g.N)), rng.Float64()*2*math.Pi)
	}
	return g
}

func randomState(n int, rng *rand.Rand) []complex128 {
	v := make([]complex128, 1<<n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return v
}

func benchApplyGateVec(b *testing.B, m int) {
	const n = 12
	rng := rand.New(rand.NewSource(7))
	g := randomUnitaryish(m, rng)
	v := randomState(n, rng)
	qs := make([]int, m)
	for i := range qs {
		qs[i] = i * 2 // spread across the register
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApplyGateVec(g, qs, n, v)
	}
}

func BenchmarkApplyGateVec1Q(b *testing.B) { benchApplyGateVec(b, 1) }
func BenchmarkApplyGateVec2Q(b *testing.B) { benchApplyGateVec(b, 2) }
func BenchmarkApplyGateVec3Q(b *testing.B) { benchApplyGateVec(b, 3) }

func BenchmarkApplyGateLeft2Q(b *testing.B) {
	const n = 6
	rng := rand.New(rand.NewSource(7))
	g := randomUnitaryish(2, rng)
	M := Identity(1 << n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApplyGateLeft(g, []int{1, 4}, n, M)
	}
}

// TestApplyKernelsZeroAlloc pins the zero-allocation guarantee for every
// gate arity the optimizer produces (≤ 3 qubits) plus the stack-scratch
// boundary at maxStackGate.
func TestApplyKernelsZeroAlloc(t *testing.T) {
	const n = 8
	rng := rand.New(rand.NewSource(3))
	v := randomState(n, rng)
	for m := 1; m <= maxStackGate; m++ {
		g := randomUnitaryish(m, rng)
		qs := make([]int, m)
		for i := range qs {
			qs[i] = i
		}
		allocs := testing.AllocsPerRun(20, func() {
			ApplyGateVec(g, qs, n, v)
		})
		if allocs != 0 {
			t.Errorf("ApplyGateVec m=%d: %v allocs/op, want 0", m, allocs)
		}
	}
	g := randomUnitaryish(2, rng)
	M := Identity(1 << 5)
	allocs := testing.AllocsPerRun(10, func() {
		ApplyGateLeft(g, []int{0, 3}, 5, M)
	})
	if allocs != 0 {
		t.Errorf("ApplyGateLeft m=2: %v allocs/op, want 0", allocs)
	}
}
