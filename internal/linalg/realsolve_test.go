package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveRealKnown(t *testing.T) {
	// 2x + y = 5; x − y = 1  →  x = 2, y = 1.
	a := []float64{2, 1, 1, -1}
	b := []float64{5, 1}
	if !SolveReal(a, b, 2) {
		t.Fatal("solver reported singular")
	}
	if math.Abs(b[0]-2) > 1e-12 || math.Abs(b[1]-1) > 1e-12 {
		t.Fatalf("solution = %v, want [2 1]", b)
	}
}

func TestSolveRealRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		a := make([]float64, n*n)
		x := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		// b = A·x, then solve and compare.
		b := make([]float64, n)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				b[r] += a[r*n+c] * x[c]
			}
		}
		acopy := make([]float64, len(a))
		copy(acopy, a)
		if !SolveReal(acopy, b, n) {
			continue // singular random draw, astronomically rare
		}
		for i := range x {
			if math.Abs(b[i]-x[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, b[i], x[i])
			}
		}
	}
}

func TestSolveRealSingular(t *testing.T) {
	a := []float64{1, 2, 2, 4} // rank 1
	b := []float64{1, 2}
	if SolveReal(a, b, 2) {
		t.Fatal("singular system should be rejected")
	}
}

func TestSolveRealNeedsPivoting(t *testing.T) {
	// Zero in the leading position requires a row swap.
	a := []float64{0, 1, 1, 0}
	b := []float64{3, 7}
	if !SolveReal(a, b, 2) {
		t.Fatal("solver failed on permutation matrix")
	}
	if math.Abs(b[0]-7) > 1e-12 || math.Abs(b[1]-3) > 1e-12 {
		t.Fatalf("solution = %v, want [7 3]", b)
	}
}
