package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-10

func randomUnitary2(rng *rand.Rand) Matrix {
	// Random SU(2) via Euler angles with a random global phase.
	t := rng.Float64() * math.Pi
	p := rng.Float64()*2*math.Pi - math.Pi
	l := rng.Float64()*2*math.Pi - math.Pi
	a := rng.Float64()*2*math.Pi - math.Pi
	c := complex(math.Cos(t/2), 0)
	s := complex(math.Sin(t/2), 0)
	e := func(x float64) complex128 { return cmplx.Exp(complex(0, x)) }
	u := FromRows([][]complex128{
		{c, -e(l) * s},
		{e(p) * s, e(p+l) * c},
	})
	return Scale(e(a), u)
}

// randomUnitary builds a random 2^n unitary as a product of random 2x2
// blocks embedded on random qubits plus CX-like permutations.
func randomUnitary(n int, rng *rand.Rand) Matrix {
	u := Identity(1 << n)
	cx := FromRows([][]complex128{
		{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0},
	})
	for i := 0; i < 4*n; i++ {
		q := rng.Intn(n)
		ApplyGateLeft(randomUnitary2(rng), []int{q}, n, u)
		if n >= 2 {
			a := rng.Intn(n)
			b := rng.Intn(n)
			if a != b {
				ApplyGateLeft(cx, []int{a, b}, n, u)
			}
		}
	}
	return u
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := randomUnitary(3, rng)
	if !Equal(Mul(Identity(8), u), u, tol) {
		t.Fatal("I*U != U")
	}
	if !Equal(Mul(u, Identity(8)), u, tol) {
		t.Fatal("U*I != U")
	}
}

func TestUnitarity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 1; n <= 4; n++ {
		u := randomUnitary(n, rng)
		if !IsUnitary(u, 1e-9) {
			t.Fatalf("random %d-qubit matrix not unitary", n)
		}
	}
}

func TestKronDims(t *testing.T) {
	a := Identity(2)
	b := Identity(4)
	k := Kron(a, b)
	if k.N != 8 {
		t.Fatalf("Kron dim = %d, want 8", k.N)
	}
	if !Equal(k, Identity(8), tol) {
		t.Fatal("I2 (x) I4 != I8")
	}
}

func TestKronMatchesExpand(t *testing.T) {
	// For a gate on the top qubit of 2, Expand == g (x) I.
	rng := rand.New(rand.NewSource(3))
	g := randomUnitary2(rng)
	want := Kron(g, Identity(2))
	got := Expand(g, []int{0}, 2)
	if !Equal(got, want, tol) {
		t.Fatalf("Expand(q0) mismatch:\n%v\nvs\n%v", got, want)
	}
	want = Kron(Identity(2), g)
	got = Expand(g, []int{1}, 2)
	if !Equal(got, want, tol) {
		t.Fatal("Expand(q1) mismatch")
	}
}

func TestExpandTwoQubitReversed(t *testing.T) {
	// CX with control=q1, target=q0 must differ from control=q0, target=q1.
	cx := FromRows([][]complex128{
		{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0},
	})
	a := Expand(cx, []int{0, 1}, 2)
	b := Expand(cx, []int{1, 0}, 2)
	if Equal(a, b, tol) {
		t.Fatal("CX(0,1) == CX(1,0): qubit order ignored")
	}
	// CX(1,0): control is q1 (LSB), target q0 (MSB). |01> -> |11>, |11> -> |01>.
	want := New(4)
	want.Set(0, 0, 1)
	want.Set(3, 1, 1)
	want.Set(2, 2, 1)
	want.Set(1, 3, 1)
	if !Equal(b, want, tol) {
		t.Fatalf("CX(1,0) matrix wrong:\n%v", b)
	}
}

func TestHSDistanceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	u := randomUnitary(3, rng)
	if d := HSDistance(u, u); d > tol {
		t.Fatalf("Δ(U,U) = %g, want 0", d)
	}
	// Global phase invariance.
	ph := cmplx.Exp(complex(0, 1.2345))
	if d := HSDistance(u, Scale(ph, u)); d > tol {
		t.Fatalf("Δ(U, e^{iφ}U) = %g, want 0", d)
	}
	// Symmetry.
	v := randomUnitary(3, rng)
	if math.Abs(HSDistance(u, v)-HSDistance(v, u)) > tol {
		t.Fatal("Δ not symmetric")
	}
	// Bounded by 1.
	if d := HSDistance(u, v); d < 0 || d > 1 {
		t.Fatalf("Δ = %g out of [0,1]", d)
	}
}

func TestHSTriangleLikeAdditivity(t *testing.T) {
	// The paper's Thm 4.2 relies on Δ(U,U'') ≤ Δ(U,U') + Δ(U',U'') for
	// unitaries. Check on random triples.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		u := randomUnitary(2, rng)
		v := randomUnitary(2, rng)
		w := randomUnitary(2, rng)
		if HSDistance(u, w) > HSDistance(u, v)+HSDistance(v, w)+tol {
			t.Fatalf("triangle inequality violated at trial %d", i)
		}
	}
}

func TestTraceAdjointMul(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomUnitary(2, rng)
	b := randomUnitary(2, rng)
	want := Trace(Mul(Adjoint(a), b))
	got := TraceAdjointMul(a, b)
	if cmplx.Abs(want-got) > tol {
		t.Fatalf("TraceAdjointMul = %v, want %v", got, want)
	}
}

func TestAdjointInvolution(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(7))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := randomUnitary(2, rng)
		return Equal(Adjoint(Adjoint(u)), u, tol)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMulAssociativity(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(8))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomUnitary(2, rng)
		b := randomUnitary(2, rng)
		c := randomUnitary(2, rng)
		return Equal(Mul(Mul(a, b), c), Mul(a, Mul(b, c)), 1e-9)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestApplyGateVecMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomUnitary2(rng)
	n := 3
	dim := 1 << n
	v := make([]complex128, dim)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	for q := 0; q < n; q++ {
		vv := make([]complex128, dim)
		copy(vv, v)
		ApplyGateVec(g, []int{q}, n, vv)
		full := Expand(g, []int{q}, n)
		want := make([]complex128, dim)
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				want[i] += full.At(i, j) * v[j]
			}
		}
		for i := range want {
			if cmplx.Abs(want[i]-vv[i]) > 1e-9 {
				t.Fatalf("q=%d: vec apply mismatch at %d", q, i)
			}
		}
	}
}

func TestEulerU3Angles(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 200; i++ {
		u := randomUnitary2(rng)
		th, ph, la, al := U3Angles(u)
		rebuilt := Scale(cmplx.Exp(complex(0, al)), u3ForTest(th, ph, la))
		if !Equal(rebuilt, u, 1e-9) {
			t.Fatalf("U3Angles roundtrip failed at trial %d:\n%v\nvs\n%v", i, rebuilt, u)
		}
	}
	// Edge cases: diagonal and antidiagonal unitaries.
	diag := FromRows([][]complex128{{1, 0}, {0, cmplx.Exp(complex(0, 0.7))}})
	th, ph, la, al := U3Angles(diag)
	if th > tol || ph != 0 {
		t.Fatalf("diagonal: theta=%g phi=%g, want 0,0", th, ph)
	}
	rebuilt := Scale(cmplx.Exp(complex(0, al)), u3ForTest(th, ph, la))
	if !Equal(rebuilt, diag, 1e-9) {
		t.Fatal("diagonal roundtrip failed")
	}
	anti := FromRows([][]complex128{{0, 1}, {1, 0}})
	th, _, la, _ = U3Angles(anti)
	if math.Abs(th-math.Pi) > tol || la != 0 {
		t.Fatalf("antidiagonal: theta=%g lambda=%g, want pi,0", th, la)
	}
}

func TestEulerZYZ(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	e := func(x float64) complex128 { return cmplx.Exp(complex(0, x)) }
	rz := func(a float64) Matrix {
		return FromRows([][]complex128{{e(-a / 2), 0}, {0, e(a / 2)}})
	}
	ry := func(a float64) Matrix {
		c := complex(math.Cos(a/2), 0)
		s := complex(math.Sin(a/2), 0)
		return FromRows([][]complex128{{c, -s}, {s, c}})
	}
	for i := 0; i < 100; i++ {
		u := randomUnitary2(rng)
		th, ph, la, al := EulerZYZ(u)
		rebuilt := Scale(e(al), MulAll(rz(ph), ry(th), rz(la)))
		if !Equal(rebuilt, u, 1e-9) {
			t.Fatalf("ZYZ roundtrip failed at trial %d", i)
		}
	}
}

func TestNormAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-0.5, -0.5},
	}
	for _, c := range cases {
		if got := NormAngle(c.in); math.Abs(got-c.want) > tol {
			t.Errorf("NormAngle(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestIsMultipleOf(t *testing.T) {
	if !IsMultipleOf(math.Pi/2, math.Pi/4, 1e-9) {
		t.Error("pi/2 should be a multiple of pi/4")
	}
	if IsMultipleOf(0.3, math.Pi/4, 1e-9) {
		t.Error("0.3 is not a multiple of pi/4")
	}
	if !IsMultipleOf(-math.Pi/4, math.Pi/4, 1e-9) {
		t.Error("-pi/4 should be a multiple of pi/4")
	}
	if !IsMultipleOf(2*math.Pi, 2*math.Pi, 1e-9) {
		t.Error("2pi should be a multiple of 2pi")
	}
}

func u3ForTest(t, p, l float64) Matrix {
	e := func(x float64) complex128 { return cmplx.Exp(complex(0, x)) }
	c := complex(math.Cos(t/2), 0)
	s := complex(math.Sin(t/2), 0)
	return FromRows([][]complex128{
		{c, -e(l) * s},
		{e(p) * s, e(p+l) * c},
	})
}
