package linalg

import (
	"math"
	"math/cmplx"
)

// Single-qubit Euler decompositions. These are the analytic workhorses behind
// single-qubit gate fusion ("rewrite rules" for the IBM gate sets) and the
// base case of numeric synthesis.

// U3Angles decomposes an arbitrary 2×2 unitary U as
//
//	U = e^{iα} · U3(θ, φ, λ)
//
// where U3 is the IBM-style generic single-qubit gate
//
//	U3(θ,φ,λ) = [[cos(θ/2), −e^{iλ} sin(θ/2)], [e^{iφ} sin(θ/2), e^{i(φ+λ)} cos(θ/2)]].
//
// θ is returned in [0, π]. When U is diagonal (θ≈0) φ is fixed to 0; when U
// is anti-diagonal (θ≈π) λ is fixed to 0; both conventions keep the result
// deterministic.
func U3Angles(u Matrix) (theta, phi, lambda, alpha float64) {
	if u.N != 2 {
		panic("linalg: U3Angles requires a 2x2 matrix")
	}
	u00, u01 := u.At(0, 0), u.At(0, 1)
	u10, u11 := u.At(1, 0), u.At(1, 1)
	theta = 2 * math.Atan2(cmplx.Abs(u10), cmplx.Abs(u00))
	const eps = 1e-12
	switch {
	case cmplx.Abs(u00) < eps: // θ ≈ π, cos term vanishes
		lambda = 0
		alpha = cmplx.Phase(-u01)
		phi = cmplx.Phase(u10) - alpha
	case cmplx.Abs(u10) < eps: // θ ≈ 0, sin term vanishes
		phi = 0
		alpha = cmplx.Phase(u00)
		lambda = cmplx.Phase(u11) - alpha
	default:
		alpha = cmplx.Phase(u00)
		phi = cmplx.Phase(u10) - alpha
		lambda = cmplx.Phase(-u01) - alpha
	}
	return theta, normAngle(phi), normAngle(lambda), normAngle(alpha)
}

// EulerZYZ decomposes U = e^{iα} · Rz(φ) · Ry(θ) · Rz(λ).
// Using U3(θ,φ,λ) = e^{i(φ+λ)/2} Rz(φ)Ry(θ)Rz(λ).
func EulerZYZ(u Matrix) (theta, phi, lambda, alpha float64) {
	theta, phi, lambda, a3 := U3Angles(u)
	return theta, phi, lambda, normAngle(a3 + (phi+lambda)/2)
}

// normAngle wraps an angle into (−π, π].
func normAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a <= -math.Pi {
		a += 2 * math.Pi
	} else if a > math.Pi {
		a -= 2 * math.Pi
	}
	return a
}

// NormAngle wraps an angle into (−π, π]. Exported for use by rewrite rules
// that combine rotation angles.
func NormAngle(a float64) float64 { return normAngle(a) }

// IsMultipleOf reports whether angle a is an integer multiple of unit within
// tol (both treated modulo 2π). Used to recognize Clifford-representable
// rotation angles.
func IsMultipleOf(a, unit, tol float64) bool {
	r := math.Mod(a, unit)
	if r < 0 {
		r += unit
	}
	return r < tol || unit-r < tol
}
