package linalg

import "fmt"

// qubit/bit convention: qubit 0 is the most significant bit of a basis-state
// index. For an n-qubit system, qubit q occupies bit position n-1-q. This
// matches the paper's Example 3.1 where U_C = U_CX · (I ⊗ U_T) for the
// circuit "T q1; CX q0 q1".

// BitPos returns the bit position of qubit q in an n-qubit index.
func BitPos(n, q int) int { return n - 1 - q }

// maxStackGate bounds the gate arity served by stack scratch in the apply
// kernels: masks and the local amplitude vector for gates up to this many
// qubits live in fixed-size arrays instead of per-call heap slices. Every
// gate the optimizer synthesizes is ≤ 3 qubits, so the hot paths never
// allocate; wider gates (tests, exotic callers) fall back to make.
const maxStackGate = 5

// ApplyGateLeft left-multiplies the expanded operator of an m-qubit gate g
// (2^m × 2^m) acting on qubits qs of an n-qubit system onto the 2^n × 2^n
// matrix M, in place: M ← Expand(g, qs)·M.
//
// This avoids materializing the 2^n × 2^n expanded operator; each column of
// M is transformed independently, so the cost is O(4^n · 2^m) instead of
// O(8^n).
func ApplyGateLeft(g Matrix, qs []int, n int, M Matrix) {
	dim := 1 << n
	if M.N != dim {
		panic(fmt.Sprintf("linalg: ApplyGateLeft: matrix dim %d, want %d", M.N, dim))
	}
	m := len(qs)
	if g.N != 1<<m {
		panic(fmt.Sprintf("linalg: ApplyGateLeft: gate dim %d for %d qubits", g.N, m))
	}
	// masks[j] = bit mask of gate-local bit j in the global index. Stack
	// scratch for the (universal) small-gate case; see maxStackGate.
	gdim := 1 << m
	var masksArr [maxStackGate]int
	var inArr [1 << maxStackGate]complex128
	masks, in := masksArr[:], inArr[:gdim:gdim]
	if m > maxStackGate {
		masks = make([]int, m)
		in = make([]complex128, gdim)
	}
	var tmask int
	for j, q := range qs {
		if q < 0 || q >= n {
			panic(fmt.Sprintf("linalg: ApplyGateLeft: qubit %d out of range [0,%d)", q, n))
		}
		masks[j] = 1 << BitPos(n, q)
		tmask |= masks[j]
	}
	gd := g.Data
	// Enumerate every base index whose target bits are all zero; the 2^m
	// amplitudes at base|pattern form one local vector per column.
	for col := 0; col < dim; col++ {
		for base := 0; base < dim; base++ {
			if base&tmask != 0 {
				continue
			}
			for l := 0; l < gdim; l++ {
				idx := base
				for j := 0; j < m; j++ {
					if l&(1<<(m-1-j)) != 0 {
						idx |= masks[j]
					}
				}
				in[l] = M.Data[idx*dim+col]
			}
			for l := 0; l < gdim; l++ {
				var acc complex128
				grow := gd[l*gdim : (l+1)*gdim]
				for k := 0; k < gdim; k++ {
					acc += grow[k] * in[k]
				}
				idx := base
				for j := 0; j < m; j++ {
					if l&(1<<(m-1-j)) != 0 {
						idx |= masks[j]
					}
				}
				M.Data[idx*dim+col] = acc
			}
		}
	}
}

// ApplyGateVec left-multiplies the expanded operator of an m-qubit gate onto
// a state vector of length 2^n, in place. Single- and two-qubit gates take
// specialized kernels — they dominate state-vector simulation time.
func ApplyGateVec(g Matrix, qs []int, n int, v []complex128) {
	dim := 1 << n
	if len(v) != dim {
		panic(fmt.Sprintf("linalg: ApplyGateVec: vector len %d, want %d", len(v), dim))
	}
	m := len(qs)
	if g.N != 1<<m {
		panic("linalg: ApplyGateVec: gate dimension mismatch")
	}
	if m == 1 {
		apply1QVec(g, qs[0], n, v)
		return
	}
	if m == 2 {
		apply2QVec(g, qs[0], qs[1], n, v)
		return
	}
	// Stack scratch for small gates — the m ≥ 3 path still runs inside
	// synthesis workers' fidelity checks, so it must not allocate per gate.
	gdim := 1 << m
	var masksArr [maxStackGate]int
	var inArr [1 << maxStackGate]complex128
	masks, in := masksArr[:], inArr[:gdim:gdim]
	if m > maxStackGate {
		masks = make([]int, m)
		in = make([]complex128, gdim)
	}
	var tmask int
	for j, q := range qs {
		masks[j] = 1 << BitPos(n, q)
		tmask |= masks[j]
	}
	gd := g.Data
	for base := 0; base < dim; base++ {
		if base&tmask != 0 {
			continue
		}
		for l := 0; l < gdim; l++ {
			idx := base
			for j := 0; j < m; j++ {
				if l&(1<<(m-1-j)) != 0 {
					idx |= masks[j]
				}
			}
			in[l] = v[idx]
		}
		for l := 0; l < gdim; l++ {
			var acc complex128
			grow := gd[l*gdim : (l+1)*gdim]
			for k := 0; k < gdim; k++ {
				acc += grow[k] * in[k]
			}
			idx := base
			for j := 0; j < m; j++ {
				if l&(1<<(m-1-j)) != 0 {
					idx |= masks[j]
				}
			}
			v[idx] = acc
		}
	}
}

// apply1QVec is the single-qubit fast path: amplitudes pair up at stride
// 2^bit and each pair is mixed by the 2×2 matrix.
func apply1QVec(g Matrix, q, n int, v []complex128) {
	stride := 1 << uint(BitPos(n, q))
	g00, g01 := g.Data[0], g.Data[1]
	g10, g11 := g.Data[2], g.Data[3]
	dim := len(v)
	for base := 0; base < dim; base += stride << 1 {
		for i := base; i < base+stride; i++ {
			a, b := v[i], v[i+stride]
			v[i] = g00*a + g01*b
			v[i+stride] = g10*a + g11*b
		}
	}
}

// apply2QVec is the two-qubit fast path: amplitudes group into quadruples
// indexed by the two qubit bits (qa = gate-local MSB).
func apply2QVec(g Matrix, qa, qb, n int, v []complex128) {
	ma := 1 << uint(BitPos(n, qa))
	mb := 1 << uint(BitPos(n, qb))
	dim := len(v)
	// Hoist the 16 coefficients into registers; one bounds check up front
	// replaces 16 per quadruple.
	gd := g.Data
	_ = gd[15]
	g00, g01, g02, g03 := gd[0], gd[1], gd[2], gd[3]
	g10, g11, g12, g13 := gd[4], gd[5], gd[6], gd[7]
	g20, g21, g22, g23 := gd[8], gd[9], gd[10], gd[11]
	g30, g31, g32, g33 := gd[12], gd[13], gd[14], gd[15]
	var in [4]complex128
	for base := 0; base < dim; base++ {
		if base&ma != 0 || base&mb != 0 {
			continue
		}
		i00 := base
		i01 := base | mb
		i10 := base | ma
		i11 := base | ma | mb
		in[0], in[1], in[2], in[3] = v[i00], v[i01], v[i10], v[i11]
		v[i00] = g00*in[0] + g01*in[1] + g02*in[2] + g03*in[3]
		v[i01] = g10*in[0] + g11*in[1] + g12*in[2] + g13*in[3]
		v[i10] = g20*in[0] + g21*in[1] + g22*in[2] + g23*in[3]
		v[i11] = g30*in[0] + g31*in[1] + g32*in[2] + g33*in[3]
	}
}

// Expand returns the full 2^n × 2^n operator of an m-qubit gate g applied to
// qubits qs of an n-qubit system. Used in tests and small-circuit paths; hot
// paths use ApplyGateLeft instead.
func Expand(g Matrix, qs []int, n int) Matrix {
	out := Identity(1 << n)
	ApplyGateLeft(g, qs, n, out)
	return out
}
