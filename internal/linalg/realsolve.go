package linalg

import "math"

// SolveReal solves the dense real linear system A·x = b in place by
// Gaussian elimination with partial pivoting. A is n×n row-major and is
// destroyed; b has length n. It returns false when A is (numerically)
// singular. Used by the Levenberg–Marquardt polisher in synthesis, whose
// systems are tiny (tens of parameters).
func SolveReal(a []float64, b []float64, n int) bool {
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		maxAbs := math.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r*n+col]); v > maxAbs {
				maxAbs = v
				pivot = r
			}
		}
		if maxAbs < 1e-300 {
			return false
		}
		if pivot != col {
			for c := 0; c < n; c++ {
				a[pivot*n+c], a[col*n+c] = a[col*n+c], a[pivot*n+c]
			}
			b[pivot], b[col] = b[col], b[pivot]
		}
		inv := 1 / a[col*n+col]
		for r := col + 1; r < n; r++ {
			f := a[r*n+col] * inv
			if f == 0 {
				continue
			}
			a[r*n+col] = 0
			for c := col + 1; c < n; c++ {
				a[r*n+c] -= f * a[col*n+c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r*n+c] * b[c]
		}
		b[r] = s / a[r*n+r]
	}
	return true
}
