package phasepoly

import (
	"math"
	"math/rand"
	"testing"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/linalg"
)

const tol = 1e-8

func TestMergeAcrossCX(t *testing.T) {
	// t q1; cx q0 q1; cx q0 q1; t q1 — the two T gates see the same parity
	// (the CX pair cancels the parity change), so they merge into an S.
	c := circuit.New(2)
	c.Append(gate.NewT(1), gate.NewCX(0, 1), gate.NewCX(0, 1), gate.NewT(1))
	out := Fold(c, "cliffordt")
	if got := out.TCount(); got != 0 {
		t.Fatalf("T count = %d, want 0 (merged to S)", got)
	}
	if got := out.CountOf(gate.S); got != 1 {
		t.Fatalf("S count = %d, want 1:\n%v", got, out)
	}
	if !linalg.EqualUpToPhase(out.Unitary(), c.Unitary(), tol) {
		t.Fatal("fold changed semantics")
	}
}

func TestMergeOnMovedParity(t *testing.T) {
	// t q1; cx q0 q1; ... the parity of q1 after cx is x0⊕x1, and a later
	// t on q1 after another cx restoring the parity merges.
	c := circuit.New(2)
	c.Append(
		gate.NewT(1),     // phase on x1
		gate.NewCX(0, 1), // q1 carries x0⊕x1
		gate.NewT(1),     // phase on x0⊕x1
		gate.NewCX(0, 1), // back to x1
		gate.NewT(1),     // phase on x1 again -> merges with first
		gate.NewCX(0, 1), // x0⊕x1 again
		gate.NewTdg(1),   // cancels the second bucket's T
		gate.NewCX(0, 1), // restore
	)
	out := Fold(c, "cliffordt")
	// Bucket x1: T+T = S. Bucket x0⊕x1: T+Tdg = nothing.
	if got := out.TCount(); got != 0 {
		t.Fatalf("T count = %d, want 0:\n%v", got, out)
	}
	if got := out.TwoQubitCount(); got != 4 {
		t.Fatalf("CX count changed: %d", got)
	}
	if !linalg.EqualUpToPhase(out.Unitary(), c.Unitary(), tol) {
		t.Fatal("fold changed semantics")
	}
}

func TestXConjugationSign(t *testing.T) {
	// x q0; t q0; x q0; t q0 — the first T acts on ¬x0, contributing −π/4
	// to the x0 bucket; the second contributes +π/4; net zero phases.
	c := circuit.New(1)
	c.Append(gate.NewX(0), gate.NewT(0), gate.NewX(0), gate.NewT(0))
	out := Fold(c, "cliffordt")
	if got := out.TCount(); got != 0 {
		t.Fatalf("T count = %d, want 0:\n%v", got, out)
	}
	if !linalg.EqualUpToPhase(out.Unitary(), c.Unitary(), tol) {
		t.Fatal("fold changed semantics")
	}
}

func TestHBreaksRegion(t *testing.T) {
	// t; h; t — the H starts a new epoch, so the T gates must NOT merge.
	c := circuit.New(1)
	c.Append(gate.NewT(0), gate.NewH(0), gate.NewT(0))
	out := Fold(c, "cliffordt")
	if got := out.TCount(); got != 2 {
		t.Fatalf("T count = %d, want 2 (H must break the region)", got)
	}
	if !linalg.EqualUpToPhase(out.Unitary(), c.Unitary(), tol) {
		t.Fatal("fold changed semantics")
	}
}

// TestFoldPreservesSemanticsFuzz is the core soundness check across random
// circuits, including H epoch breaks and X sign flips.
func TestFoldPreservesSemanticsFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vocab := []gate.Name{gate.T, gate.Tdg, gate.S, gate.Sdg, gate.X, gate.H, gate.CX}
	for trial := 0; trial < 150; trial++ {
		c := circuit.Random(4, 30, vocab, rng)
		out := Fold(c, "cliffordt")
		if !linalg.EqualUpToPhase(out.Unitary(), c.Unitary(), tol) {
			t.Fatalf("trial %d: fold changed semantics\nin:\n%v\nout:\n%v", trial, c, out)
		}
		if out.TwoQubitCount() != c.TwoQubitCount() {
			t.Fatalf("trial %d: fold changed CX count %d -> %d",
				trial, c.TwoQubitCount(), out.TwoQubitCount())
		}
		if out.TCount() > c.TCount() {
			t.Fatalf("trial %d: fold increased T count %d -> %d",
				trial, c.TCount(), out.TCount())
		}
	}
}

func TestFoldContinuousGateSet(t *testing.T) {
	// rz merging for the nam set.
	rng := rand.New(rand.NewSource(2))
	vocab := []gate.Name{gate.Rz, gate.X, gate.H, gate.CX}
	for trial := 0; trial < 80; trial++ {
		c := circuit.Random(3, 25, vocab, rng)
		out := Fold(c, "nam")
		if !linalg.EqualUpToPhase(out.Unitary(), c.Unitary(), tol) {
			t.Fatalf("trial %d: fold changed semantics", trial)
		}
		if out.CountOf(gate.Rz) > c.CountOf(gate.Rz) {
			t.Fatalf("trial %d: rz count increased", trial)
		}
	}
}

func TestFoldIdempotentOnTCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vocab := []gate.Name{gate.T, gate.Tdg, gate.S, gate.X, gate.H, gate.CX}
	c := circuit.Random(4, 60, vocab, rng)
	once := Fold(c, "cliffordt")
	twice := Fold(once, "cliffordt")
	if twice.TCount() != once.TCount() {
		t.Fatalf("second fold changed T count %d -> %d", once.TCount(), twice.TCount())
	}
}

func TestFoldZeroSum(t *testing.T) {
	c := circuit.New(1)
	c.Append(gate.NewRz(0.7, 0), gate.NewRz(-0.7, 0))
	out := Fold(c, "nam")
	if out.Len() != 0 {
		t.Fatalf("zero-sum rotations should vanish, got %d gates", out.Len())
	}
}

func TestFoldAnglesAddExactly(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.NewRz(0.3, 0), gate.NewCX(1, 0), gate.NewCX(1, 0), gate.NewRz(0.4, 0))
	out := Fold(c, "nam")
	var got float64
	for _, g := range out.Gates {
		if g.Name == gate.Rz {
			got = g.Params[0]
		}
	}
	if math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("merged angle = %g, want 0.7", got)
	}
}

// TestFoldChangedMatchesEqual fuzzes the changed-count contract: FoldChanged
// reports zero exactly when the output is structurally identical to the
// input, which is what lets callers skip deep no-op compares.
func TestFoldChangedMatchesEqual(t *testing.T) {
	for _, gsName := range []string{"nam", "cliffordt", "ibmq20", "ibm-eagle", "ionq"} {
		gs, err := gateset.ByName(gsName)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(17))
		for trial := 0; trial < 60; trial++ {
			c := circuit.Random(5, 10+rng.Intn(60), gs.Gates, rng)
			for round := 0; round < 3; round++ {
				out, changed := FoldChanged(c, gsName)
				if got, want := changed > 0, !circuit.Equal(out, c); got != want {
					t.Fatalf("%s trial %d round %d: changed=%d but Equal=%v\nin:  %s\nout: %s",
						gsName, trial, round, changed, !want, c, out)
				}
				if changed == 0 {
					break
				}
				c = out
			}
		}
	}
}
