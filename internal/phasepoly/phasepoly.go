// Package phasepoly implements phase folding (Nam et al.'s rotation
// merging), the standard phase-polynomial optimization over {CX, X,
// z-rotations} regions: inside such a region each qubit carries an affine
// function (parity) of the region's input basis, so z-rotations applied to
// equal parities merge additively, wherever they sit in the region.
//
// This is the repository's PyZX proxy (see DESIGN.md §3): like PyZX's
// ZX-calculus pipeline on these benchmarks, it is excellent at reducing T
// count and never changes the two-qubit gate count — the exact behavioural
// profile Figs. 12–14 of the paper rely on.
package phasepoly

import (
	"math"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/linalg"
)

// parityState tracks, per qubit, an affine function of tracked variables:
// a bitset of variable indices plus a constant bit.
type parityState struct {
	bits []uint64
	c    bool
}

func (p parityState) clone(words int) parityState {
	b := make([]uint64, words)
	copy(b, p.bits)
	return parityState{bits: b, c: p.c}
}

func (p *parityState) xorWith(q parityState) {
	for i := range q.bits {
		for len(p.bits) <= i {
			p.bits = append(p.bits, 0)
		}
		p.bits[i] ^= q.bits[i]
	}
	p.c = p.c != q.c
}

func (p parityState) key() string {
	// Trim trailing zero words so keys are epoch-stable.
	end := len(p.bits)
	for end > 0 && p.bits[end-1] == 0 {
		end--
	}
	buf := make([]byte, 0, end*8)
	for _, w := range p.bits[:end] {
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(w>>uint(s)))
		}
	}
	return string(buf)
}

// zAngleOf maps a diagonal phase gate to its z-rotation angle (mod global
// phase), mirroring the table in the rewrite cleaner.
func zAngleOf(g gate.Gate) (float64, bool) {
	switch g.Name {
	case gate.Rz, gate.U1:
		return g.Params[0], true
	case gate.Z:
		return math.Pi, true
	case gate.S:
		return math.Pi / 2, true
	case gate.Sdg:
		return -math.Pi / 2, true
	case gate.T:
		return math.Pi / 4, true
	case gate.Tdg:
		return -math.Pi / 4, true
	}
	return 0, false
}

// emitPhase renders a z-rotation in the gate set's native diagonal gates.
// gs is the resolved set (nil for unknown names, which keep the historical
// rz fallback).
func emitPhase(theta float64, q int, gatesetName string, gs *gateset.GateSet) []gate.Gate {
	theta = linalg.NormAngle(theta)
	if math.Abs(theta) < 1e-12 {
		return nil
	}
	switch gatesetName {
	case "ibmq20":
		return []gate.Gate{gate.NewU1(theta, q)}
	case "cliffordt":
		if !linalg.IsMultipleOf(theta, math.Pi/4, 1e-9) {
			return []gate.Gate{gate.NewRz(theta, q)}
		}
		return phaseLadder(theta, q)
	default:
		// Custom sets emit whatever diagonal vocabulary they carry; the
		// capability pre-check in foldChanged guarantees one exists and
		// that π/4-ladder-only sets never see a non-multiple total.
		if gs == nil || gs.Contains(gate.Rz) {
			return []gate.Gate{gate.NewRz(theta, q)}
		}
		if gs.Contains(gate.U1) {
			return []gate.Gate{gate.NewU1(theta, q)}
		}
		return phaseLadder(theta, q)
	}
}

// phaseLadder writes a π/4-multiple rotation over {S, S†, T, T†}.
func phaseLadder(theta float64, q int) []gate.Gate {
	k := int(math.Round(theta/(math.Pi/4))) % 8
	if k < 0 {
		k += 8
	}
	lad := map[int][]gate.Gate{
		0: {}, 1: {gate.NewT(q)}, 2: {gate.NewS(q)},
		3: {gate.NewS(q), gate.NewT(q)}, 4: {gate.NewS(q), gate.NewS(q)},
		5: {gate.NewSdg(q), gate.NewTdg(q)}, 6: {gate.NewSdg(q)}, 7: {gate.NewTdg(q)},
	}
	return lad[k]
}

// Fold performs one global phase-folding pass, emitting the result in the
// named gate set's diagonal vocabulary. Non-diagonal gates are untouched;
// two-qubit gate count is exactly preserved.
func Fold(c *circuit.Circuit, gatesetName string) *circuit.Circuit {
	out, _ := FoldChanged(c, gatesetName)
	return out
}

// FoldFor is Fold against a resolved gate set (required for ad-hoc sets
// that are not name-addressable).
func FoldFor(c *circuit.Circuit, gs *gateset.GateSet) *circuit.Circuit {
	out, _ := FoldChangedFor(c, gs)
	return out
}

// FoldChanged is Fold plus a change count: the number of phase gates
// absorbed into a merge site plus the number of merge sites whose
// re-emitted ladder differs from the original gate. A zero count
// guarantees the output is structurally identical (circuit.Equal) to the
// input, so callers can detect no-ops without a deep compare.
func FoldChanged(c *circuit.Circuit, gatesetName string) (*circuit.Circuit, int) {
	gs, err := gateset.ByName(gatesetName)
	if err != nil {
		gs = nil
	}
	return foldChanged(c, gatesetName, gs)
}

// FoldChangedFor is FoldChanged against a resolved gate set.
func FoldChangedFor(c *circuit.Circuit, gs *gateset.GateSet) (*circuit.Circuit, int) {
	return foldChanged(c, gs.Name, gs)
}

func foldChanged(c *circuit.Circuit, gatesetName string, gs *gateset.GateSet) (*circuit.Circuit, int) {
	// Capability pre-check for custom sets: without a continuous z-rotation
	// the merged totals can only be re-emitted over the π/4 ladder, which is
	// exact only when every absorbed rotation is a π/4 multiple (native
	// finite circuits always are); a set with no diagonal vocabulary at all
	// cannot fold.
	if gs != nil && !gs.Builtin() && !gs.Contains(gate.Rz) && !gs.Contains(gate.U1) {
		if !(gs.Contains(gate.S) && gs.Contains(gate.Sdg) && gs.Contains(gate.T) && gs.Contains(gate.Tdg)) {
			return c, 0
		}
		for _, g := range c.Gates {
			if a, ok := zAngleOf(g); ok && !linalg.IsMultipleOf(a, math.Pi/4, 1e-9) {
				return c, 0
			}
		}
	}
	n := c.NumQubits
	words := (n + 63) / 64
	nextVar := 0
	state := make([]parityState, n)
	fresh := func(q int) {
		w := nextVar / 64
		b := make([]uint64, w+1)
		b[w] = 1 << uint(nextVar%64)
		state[q] = parityState{bits: b}
		nextVar++
	}
	for q := 0; q < n; q++ {
		fresh(q)
	}

	type bucket struct {
		firstIdx   int
		firstConst bool
		firstQubit int
		total      float64
	}
	buckets := map[string]*bucket{}
	drop := make([]bool, c.Len())
	siteOf := make([]string, c.Len()) // phase-gate index -> bucket key ("" if none)

	for i, g := range c.Gates {
		if a, ok := zAngleOf(g); ok {
			q := g.Qubits[0]
			st := state[q]
			key := st.key()
			contrib := a
			if st.c {
				contrib = -a
			}
			if b, seen := buckets[key]; seen {
				b.total += contrib
				drop[i] = true
			} else {
				buckets[key] = &bucket{firstIdx: i, firstConst: st.c, firstQubit: q, total: contrib}
				siteOf[i] = key
			}
			continue
		}
		switch g.Name {
		case gate.CX:
			cq, tq := g.Qubits[0], g.Qubits[1]
			state[tq].xorWith(state[cq])
		case gate.X:
			state[cq(g)].c = !state[cq(g)].c
		default:
			// Untrackable gate: its qubits leave the affine regime; give
			// them fresh variables (a new epoch for those wires).
			for _, q := range g.Qubits {
				fresh(q)
			}
		}
	}
	_ = words

	out := circuit.New(n)
	changed := 0
	// identical tracks, incrementally, whether the output still reproduces
	// the input gate-for-gate: a merged run can re-emit exactly the gates it
	// absorbed (adjacent same-parity phases whose ladder equals them), in
	// which case the pass is a no-op despite having "merged" something.
	identical := true
	emit := func(g gate.Gate) {
		if identical && (len(out.Gates) >= len(c.Gates) || !g.Equal(c.Gates[len(out.Gates)])) {
			identical = false
		}
		out.Gates = append(out.Gates, g)
	}
	for i, g := range c.Gates {
		if drop[i] {
			changed++
			continue
		}
		if key := siteOf[i]; key != "" {
			b := buckets[key]
			theta := b.total
			if b.firstConst {
				theta = -theta
			}
			emitted := emitPhase(theta, b.firstQubit, gatesetName, gs)
			if !(len(emitted) == 1 && emitted[0].Equal(g)) {
				changed++
			}
			for _, m := range emitted {
				emit(m)
			}
			continue
		}
		emit(g.Clone())
	}
	if identical && len(out.Gates) == len(c.Gates) {
		changed = 0
	}
	return out, changed
}

func cq(g gate.Gate) int { return g.Qubits[0] }
