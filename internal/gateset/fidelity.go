package gateset

import (
	"math"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
)

// FidelityModel estimates circuit success probability as the product of
// per-gate fidelities (§6, Metrics): fidelity(C) = Π_g (1 − err(g)).
//
// The paper uses device calibration data (IBM Washington for the IBM sets,
// IonQ Forte for ionq). Real calibration tables are per-qubit-pair; the
// dominant effect for optimizer comparison is the order-of-magnitude gap
// between one- and two-qubit error rates, so the model is a synthetic
// calibration with the published magnitudes. See DESIGN.md §3.
type FidelityModel struct {
	Name string
	// OneQubitError and TwoQubitError are the mean gate error rates.
	OneQubitError float64
	TwoQubitError float64
	// PerQubitSpread adds deterministic per-qubit variation of ±spread
	// (relative), emulating the non-uniformity of real calibration data.
	PerQubitSpread float64
	// GateErrors overrides the error rate per gate name exactly (no
	// per-qubit spread), for custom gate sets with calibrated weights.
	GateErrors map[gate.Name]float64
}

// Device models with published error-rate magnitudes.
var (
	// IBMWashington mirrors ibmq_washington-era calibration: median CX
	// error ≈ 8·10⁻³ (orders of magnitude above 1q error ≈ 2.5·10⁻⁴).
	IBMWashington = FidelityModel{
		Name:           "ibm-washington",
		OneQubitError:  2.5e-4,
		TwoQubitError:  8e-3,
		PerQubitSpread: 0.3,
	}
	// IonQForte mirrors IonQ Forte: 2q error ≈ 4·10⁻³, 1q ≈ 2·10⁻⁴.
	IonQForte = FidelityModel{
		Name:           "ionq-forte",
		OneQubitError:  2e-4,
		TwoQubitError:  4e-3,
		PerQubitSpread: 0.2,
	}
)

// ModelFor returns the fidelity model paired with a gate set: the paper's
// device model for the built-ins (IBM Washington, IonQ Forte for ionq),
// the same architecture-matched base for custom sets — overridden by the
// set's own weights (GateErrors, OneQubitError, TwoQubitError) when given.
func ModelFor(gs *GateSet) FidelityModel {
	base := IBMWashington
	if gs.Name == IonQ.Name || gs.Architecture == IonQ.Architecture {
		base = IonQForte
	}
	if gs.GateErrors == nil && gs.OneQubitError == 0 && gs.TwoQubitError == 0 {
		return base
	}
	m := base
	m.Name = gs.Name
	// Custom weights are calibration data, not magnitudes to emulate around:
	// drop the synthetic per-qubit spread so the model is exactly what the
	// caller specified.
	m.PerQubitSpread = 0
	if gs.OneQubitError > 0 {
		m.OneQubitError = gs.OneQubitError
	}
	if gs.TwoQubitError > 0 {
		m.TwoQubitError = gs.TwoQubitError
	}
	if gs.GateErrors != nil {
		m.GateErrors = gs.GateErrors
	}
	return m
}

// gateError returns the error rate for a gate acting on the given qubits.
// The per-qubit spread is a deterministic pseudo-random factor so that the
// same device model always yields the same calibration table.
func (m FidelityModel) gateError(name gate.Name, qubits []int, arity int) float64 {
	if e, ok := m.GateErrors[name]; ok {
		return e
	}
	base := m.OneQubitError
	if arity >= 2 {
		base = m.TwoQubitError
	}
	if m.PerQubitSpread == 0 {
		return base
	}
	// Simple deterministic hash of the qubit tuple into [−1, 1].
	h := uint64(2166136261)
	for _, q := range qubits {
		h = (h ^ uint64(q+1)) * 16777619
	}
	u := float64(h%10007)/10007*2 - 1
	return base * (1 + m.PerQubitSpread*u)
}

// CircuitFidelity returns Π_g (1 − err(g)).
func (m FidelityModel) CircuitFidelity(c *circuit.Circuit) float64 {
	// Accumulate in log space for numerical stability on 10⁵-gate circuits.
	var logF float64
	for _, g := range c.Gates {
		logF += math.Log1p(-m.gateError(g.Name, g.Qubits, len(g.Qubits)))
	}
	return math.Exp(logF)
}

// LogFidelity returns log fidelity; maximizing it is equivalent to
// maximizing fidelity and is cheaper to use as an optimization cost.
func (m FidelityModel) LogFidelity(c *circuit.Circuit) float64 {
	var logF float64
	for _, g := range c.Gates {
		logF += math.Log1p(-m.gateError(g.Name, g.Qubits, len(g.Qubits)))
	}
	return logF
}
