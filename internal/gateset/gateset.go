// Package gateset defines target gate sets — the five evaluation sets of
// Table 2 plus a registry of caller-defined targets — the translation
// (decomposition) of arbitrary circuits into each set, and the device
// fidelity models used by the paper's NISQ metrics.
package gateset

import (
	"fmt"
	"reflect"
	"sort"
	"sync"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
)

// GateSet is a named target gate vocabulary plus architecture metadata.
// The five sets of Table 2 are predeclared; additional targets are built
// with New and made name-addressable with Register.
type GateSet struct {
	Name         string
	Gates        []gate.Name
	Architecture string

	// Decompose, when set, lowers a non-native gate into a (shorter or
	// equal-unitary) sequence that is translated recursively. It is
	// consulted before the built-in lowerings, so a custom set can override
	// any decomposition; returning ok = false falls through to the built-in
	// paths. The emitted sequence must implement the same unitary as g up
	// to global phase and must make progress (it may not emit g itself).
	Decompose func(g gate.Gate) ([]gate.Gate, bool)

	// GateErrors, OneQubitError, and TwoQubitError customize the fidelity
	// model ModelFor builds for this set: GateErrors overrides the error
	// rate per gate name, the scalar fields override the per-arity
	// defaults. All zero selects the paper's device model for the
	// architecture (IBM Washington, or IonQ Forte for ion traps).
	GateErrors    map[gate.Name]float64
	OneQubitError float64
	TwoQubitError float64

	set     map[gate.Name]bool
	builtin bool
}

func newGateSet(name, arch string, gates ...gate.Name) *GateSet {
	s := &GateSet{Name: name, Gates: gates, Architecture: arch, set: map[gate.Name]bool{}, builtin: true}
	for _, g := range gates {
		s.set[g] = true
	}
	return s
}

// New builds a caller-defined gate set, validating that every basis gate is
// part of the supported vocabulary. The result is usable directly (pass it
// where a *GateSet is accepted) or via Register for name lookup.
func New(name, arch string, gates ...gate.Name) (*GateSet, error) {
	if name == "" {
		return nil, fmt.Errorf("gateset: empty gate set name")
	}
	if len(gates) == 0 {
		return nil, fmt.Errorf("gateset: gate set %q has an empty basis", name)
	}
	s := &GateSet{Name: name, Gates: gates, Architecture: arch, set: map[gate.Name]bool{}}
	for _, g := range gates {
		if _, ok := gate.SpecOf(g); !ok {
			return nil, fmt.Errorf("gateset: gate set %q: unknown gate %q", name, g)
		}
		s.set[g] = true
	}
	return s, nil
}

// The five gate sets of Table 2.
var (
	// IBMQ20: U1, U2, U3, CX (superconducting).
	IBMQ20 = newGateSet("ibmq20", "superconducting", gate.U1, gate.U2, gate.U3, gate.CX)
	// IBMEagle: Rz, SX, X, CX (superconducting).
	IBMEagle = newGateSet("ibm-eagle", "superconducting", gate.Rz, gate.SX, gate.X, gate.CX)
	// IonQ: Rx, Ry, Rz, Rxx (trapped ion).
	IonQ = newGateSet("ionq", "ion trap", gate.Rx, gate.Ry, gate.Rz, gate.Rxx)
	// Nam: Rz, H, X, CX (hardware-agnostic; studied by Nam et al.).
	Nam = newGateSet("nam", "none", gate.Rz, gate.H, gate.X, gate.CX)
	// CliffordT: T, T†, S, S†, H, X, CX (fault tolerant).
	CliffordT = newGateSet("cliffordt", "fault tolerant",
		gate.T, gate.Tdg, gate.S, gate.Sdg, gate.H, gate.X, gate.CX)
)

// registry holds caller-registered gate sets, keyed by name. Builtins are
// not stored here; lookup checks them first so they cannot be shadowed.
var registry = struct {
	sync.RWMutex
	m map[string]*GateSet
}{m: map[string]*GateSet{}}

// Register makes a gate set addressable by name through ByName. Built-in
// names cannot be replaced; re-registering the same description (same
// basis, architecture, weights, and hook) is a no-op, any other collision
// is an error (so tests and plugins fail loudly instead of silently
// shadowing each other).
func Register(gs *GateSet) error {
	if gs == nil || gs.Name == "" {
		return fmt.Errorf("gateset: cannot register a nil or unnamed gate set")
	}
	if gs.set == nil {
		return fmt.Errorf("gateset: gate set %q was not built with gateset.New", gs.Name)
	}
	for _, b := range All() {
		if b.Name == gs.Name {
			return fmt.Errorf("gateset: %q is a built-in gate set", gs.Name)
		}
	}
	registry.Lock()
	defer registry.Unlock()
	if prev, ok := registry.m[gs.Name]; ok && !sameDescription(prev, gs) {
		return fmt.Errorf("gateset: gate set %q is already registered with a different description", gs.Name)
	}
	registry.m[gs.Name] = gs
	return nil
}

// sameDescription reports whether two gate sets describe the same target:
// equal name, basis (in order), architecture, error weights, and Decompose
// hook (same function, or both absent).
func sameDescription(a, b *GateSet) bool {
	if a == b {
		return true
	}
	if a.Name != b.Name || a.Architecture != b.Architecture ||
		a.OneQubitError != b.OneQubitError || a.TwoQubitError != b.TwoQubitError ||
		len(a.Gates) != len(b.Gates) || len(a.GateErrors) != len(b.GateErrors) {
		return false
	}
	for i := range a.Gates {
		if a.Gates[i] != b.Gates[i] {
			return false
		}
	}
	for n, e := range a.GateErrors {
		if be, ok := b.GateErrors[n]; !ok || be != e {
			return false
		}
	}
	if (a.Decompose == nil) != (b.Decompose == nil) {
		return false
	}
	if a.Decompose != nil &&
		reflect.ValueOf(a.Decompose).Pointer() != reflect.ValueOf(b.Decompose).Pointer() {
		return false
	}
	return true
}

// Unregister removes a registered gate set (tests and reloadable configs);
// built-ins are unaffected.
func Unregister(name string) {
	registry.Lock()
	defer registry.Unlock()
	delete(registry.m, name)
}

// All lists the five gate sets in the paper's Table 2 order.
func All() []*GateSet {
	return []*GateSet{IBMQ20, IBMEagle, IonQ, Nam, CliffordT}
}

// Names lists every addressable gate set: the built-ins in Table 2 order,
// then registered sets sorted by name.
func Names() []string {
	out := make([]string, 0, 8)
	for _, gs := range All() {
		out = append(out, gs.Name)
	}
	registry.RLock()
	custom := make([]string, 0, len(registry.m))
	for name := range registry.m {
		custom = append(custom, name)
	}
	registry.RUnlock()
	sort.Strings(custom)
	return append(out, custom...)
}

// ByName looks a gate set up by its name: built-ins first, then the
// registry of caller-defined sets.
func ByName(name string) (*GateSet, error) {
	for _, gs := range All() {
		if gs.Name == name {
			return gs, nil
		}
	}
	registry.RLock()
	gs, ok := registry.m[name]
	registry.RUnlock()
	if ok {
		return gs, nil
	}
	return nil, fmt.Errorf("gateset: unknown gate set %q (known: %v)", name, Names())
}

// Builtin reports whether the set is one of the paper's five evaluation
// sets. Built-ins carry curated rule libraries and translation paths;
// custom sets rely on the generic lowerings, Decompose hooks, and
// registered transformations.
func (gs *GateSet) Builtin() bool { return gs.builtin }

// Contains reports whether the named gate is native to the set.
func (gs *GateSet) Contains(n gate.Name) bool { return gs.set[n] }

// IsNative reports whether every gate in the circuit is native to the set.
func (gs *GateSet) IsNative(c *circuit.Circuit) bool {
	for _, g := range c.Gates {
		if !gs.set[g.Name] {
			return false
		}
	}
	return true
}

// Continuous reports whether the set contains continuously parameterized
// gates. Numeric resynthesis applies only to continuous sets; finite sets
// use search-based synthesis (Q4).
func (gs *GateSet) Continuous() bool {
	for _, g := range gs.Gates {
		if s, _ := gate.SpecOf(g); s.Params > 0 {
			return true
		}
	}
	return false
}

func (gs *GateSet) String() string { return gs.Name }
