// Package gateset defines the five evaluation gate sets of Table 2, the
// translation (decomposition) of arbitrary circuits into each set, and the
// device fidelity models used by the paper's NISQ metrics.
package gateset

import (
	"fmt"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
)

// GateSet is a named target gate vocabulary plus architecture metadata.
type GateSet struct {
	Name         string
	Gates        []gate.Name
	Architecture string
	set          map[gate.Name]bool
}

func newGateSet(name, arch string, gates ...gate.Name) *GateSet {
	s := &GateSet{Name: name, Gates: gates, Architecture: arch, set: map[gate.Name]bool{}}
	for _, g := range gates {
		s.set[g] = true
	}
	return s
}

// The five gate sets of Table 2.
var (
	// IBMQ20: U1, U2, U3, CX (superconducting).
	IBMQ20 = newGateSet("ibmq20", "superconducting", gate.U1, gate.U2, gate.U3, gate.CX)
	// IBMEagle: Rz, SX, X, CX (superconducting).
	IBMEagle = newGateSet("ibm-eagle", "superconducting", gate.Rz, gate.SX, gate.X, gate.CX)
	// IonQ: Rx, Ry, Rz, Rxx (trapped ion).
	IonQ = newGateSet("ionq", "ion trap", gate.Rx, gate.Ry, gate.Rz, gate.Rxx)
	// Nam: Rz, H, X, CX (hardware-agnostic; studied by Nam et al.).
	Nam = newGateSet("nam", "none", gate.Rz, gate.H, gate.X, gate.CX)
	// CliffordT: T, T†, S, S†, H, X, CX (fault tolerant).
	CliffordT = newGateSet("cliffordt", "fault tolerant",
		gate.T, gate.Tdg, gate.S, gate.Sdg, gate.H, gate.X, gate.CX)
)

// All lists the five gate sets in the paper's Table 2 order.
func All() []*GateSet {
	return []*GateSet{IBMQ20, IBMEagle, IonQ, Nam, CliffordT}
}

// ByName looks a gate set up by its name.
func ByName(name string) (*GateSet, error) {
	for _, gs := range All() {
		if gs.Name == name {
			return gs, nil
		}
	}
	return nil, fmt.Errorf("gateset: unknown gate set %q", name)
}

// Contains reports whether the named gate is native to the set.
func (gs *GateSet) Contains(n gate.Name) bool { return gs.set[n] }

// IsNative reports whether every gate in the circuit is native to the set.
func (gs *GateSet) IsNative(c *circuit.Circuit) bool {
	for _, g := range c.Gates {
		if !gs.set[g.Name] {
			return false
		}
	}
	return true
}

// Continuous reports whether the set contains continuously parameterized
// gates. Numeric resynthesis applies only to continuous sets; finite sets
// use search-based synthesis (Q4).
func (gs *GateSet) Continuous() bool {
	for _, g := range gs.Gates {
		if s, _ := gate.SpecOf(g); s.Params > 0 {
			return true
		}
	}
	return false
}

func (gs *GateSet) String() string { return gs.Name }
