package gateset

import (
	"math"
	"math/rand"
	"testing"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/linalg"
)

const tol = 1e-8

func TestByName(t *testing.T) {
	for _, gs := range All() {
		got, err := ByName(gs.Name)
		if err != nil || got != gs {
			t.Errorf("ByName(%q) = %v, %v", gs.Name, got, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
}

func TestContinuous(t *testing.T) {
	if !IBMQ20.Continuous() || !IonQ.Continuous() || !Nam.Continuous() || !IBMEagle.Continuous() {
		t.Error("continuous sets misclassified")
	}
	if CliffordT.Continuous() {
		t.Error("cliffordt should be finite")
	}
}

// vocabFor returns a source vocabulary valid for translation to gs.
func vocabFor(gs *GateSet) []gate.Name {
	if gs.Name == CliffordT.Name {
		// Only π/4-multiple rotations are exactly representable; random
		// angles are not, so use the discrete vocabulary.
		return []gate.Name{gate.H, gate.X, gate.Y, gate.Z, gate.S, gate.Sdg,
			gate.T, gate.Tdg, gate.CX, gate.CZ, gate.Swap, gate.CCX, gate.CCZ}
	}
	return []gate.Name{gate.H, gate.X, gate.Y, gate.Z, gate.S, gate.Sdg,
		gate.T, gate.Tdg, gate.SX, gate.Rx, gate.Ry, gate.Rz, gate.U1,
		gate.U2, gate.U3, gate.CX, gate.CZ, gate.Swap, gate.CP, gate.Rzz,
		gate.Rxx, gate.CCX, gate.CCZ}
}

// TestTranslatePreservesSemantics is the central contract: translation into
// any gate set preserves the unitary up to global phase and produces only
// native gates.
func TestTranslatePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, gs := range All() {
		vocab := vocabFor(gs)
		for trial := 0; trial < 40; trial++ {
			c := circuit.Random(3, 14, vocab, rng)
			out, err := Translate(c, gs)
			if err != nil {
				t.Fatalf("%s trial %d: %v", gs.Name, trial, err)
			}
			if !gs.IsNative(out) {
				t.Fatalf("%s trial %d: output has non-native gates: %v",
					gs.Name, trial, out.CountByName())
			}
			if !linalg.EqualUpToPhase(c.Unitary(), out.Unitary(), tol) {
				t.Fatalf("%s trial %d: translation changed semantics\nin:  %v\nout: %v",
					gs.Name, trial, c, out)
			}
		}
	}
}

func TestTranslateSingleGates(t *testing.T) {
	// Each individual gate must translate correctly on its own — this
	// pins down the CX→Rxx decomposition and all the 1q Euler paths.
	rng := rand.New(rand.NewSource(8))
	for _, gs := range All() {
		for _, name := range vocabFor(gs) {
			spec, _ := gate.SpecOf(name)
			qs := make([]int, spec.Qubits)
			for i := range qs {
				qs[i] = i
			}
			ps := make([]float64, spec.Params)
			for i := range ps {
				ps[i] = rng.Float64()*2*math.Pi - math.Pi
			}
			c := circuit.New(spec.Qubits)
			c.Append(gate.New(name, qs, ps))
			out, err := Translate(c, gs)
			if err != nil {
				t.Fatalf("%s: translate %s: %v", gs.Name, name, err)
			}
			if !linalg.EqualUpToPhase(c.Unitary(), out.Unitary(), tol) {
				t.Errorf("%s: %s translation wrong", gs.Name, name)
			}
		}
	}
}

func TestTranslateReversedQubitOrder(t *testing.T) {
	// CX(1,0) and wide gates with permuted qubits must translate correctly.
	for _, gs := range All() {
		c := circuit.New(3)
		c.Append(gate.NewCX(2, 0), gate.NewCCX(2, 0, 1))
		out, err := Translate(c, gs)
		if err != nil {
			t.Fatalf("%s: %v", gs.Name, err)
		}
		if !linalg.EqualUpToPhase(c.Unitary(), out.Unitary(), tol) {
			t.Errorf("%s: permuted-qubit translation wrong", gs.Name)
		}
	}
}

func TestCliffordTRejectsGenericAngle(t *testing.T) {
	c := circuit.New(1)
	c.Append(gate.NewRz(0.3, 0))
	if _, err := Translate(c, CliffordT); err == nil {
		t.Fatal("expected error translating rz(0.3) to Clifford+T")
	}
}

func TestCliffordTPhaseLadder(t *testing.T) {
	// rz(kπ/4) for all k must be exact.
	for k := -8; k <= 8; k++ {
		c := circuit.New(1)
		c.Append(gate.NewRz(float64(k)*math.Pi/4, 0))
		out, err := Translate(c, CliffordT)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !linalg.EqualUpToPhase(c.Unitary(), out.Unitary(), tol) {
			t.Fatalf("k=%d: wrong translation", k)
		}
	}
}

func TestIdentityRotationsDropped(t *testing.T) {
	c := circuit.New(1)
	c.Append(gate.NewRz(0, 0), gate.NewU1(2*math.Pi, 0))
	for _, gs := range All() {
		out, err := Translate(c, gs)
		if err != nil {
			t.Fatalf("%s: %v", gs.Name, err)
		}
		if out.Len() != 0 {
			t.Errorf("%s: identity rotations survived: %v", gs.Name, out)
		}
	}
}

func TestFidelityModel(t *testing.T) {
	m := IBMWashington
	c := circuit.New(2)
	if f := m.CircuitFidelity(c); f != 1 {
		t.Fatalf("empty circuit fidelity = %g, want 1", f)
	}
	c.Append(gate.NewCX(0, 1))
	f1 := m.CircuitFidelity(c)
	if f1 >= 1 || f1 < 0.95 {
		t.Fatalf("single-cx fidelity = %g, implausible", f1)
	}
	c.Append(gate.NewCX(0, 1))
	f2 := m.CircuitFidelity(c)
	if f2 >= f1 {
		t.Fatal("fidelity should decrease with more gates")
	}
	// 2q gates must dominate: a cx should cost much more than an sx.
	oneQ := circuit.New(2)
	oneQ.Append(gate.NewSX(0))
	if m.CircuitFidelity(oneQ) <= f1 {
		t.Fatal("1q gate should be cheaper than 2q gate")
	}
	// Log fidelity consistent with fidelity.
	if math.Abs(math.Exp(m.LogFidelity(c))-f2) > 1e-12 {
		t.Fatal("LogFidelity inconsistent with CircuitFidelity")
	}
}

func TestFidelityDeterministic(t *testing.T) {
	c := circuit.New(3)
	c.Append(gate.NewCX(0, 1), gate.NewCX(1, 2), gate.NewSX(0))
	if IBMWashington.CircuitFidelity(c) != IBMWashington.CircuitFidelity(c.Clone()) {
		t.Fatal("fidelity model not deterministic")
	}
}

func TestModelFor(t *testing.T) {
	if ModelFor(IonQ).Name != "ionq-forte" {
		t.Error("ionq should map to forte model")
	}
	if ModelFor(IBMEagle).Name != "ibm-washington" {
		t.Error("ibm-eagle should map to washington model")
	}
}
