package gateset

import (
	"fmt"
	"math"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/linalg"
)

// Translate decomposes a circuit into the target gate set, preserving the
// unitary up to global phase. This is the "input circuit is already
// decomposed into the target gate set" preprocessing of §6.
//
// The pipeline first consults the set's Decompose hook (custom sets), then
// lowers multi-qubit gates to {1q, CX} (plus Rzz for ionq), then lowers
// single-qubit gates per target — by the curated per-set paths for the
// built-ins, by basis-capability detection for registered custom sets —
// and finally lowers CX itself for sets without a native CX (ionq, or any
// custom set with a CZ- or Rxx-style entangler).
func Translate(c *circuit.Circuit, gs *GateSet) (*circuit.Circuit, error) {
	out := circuit.New(c.NumQubits)
	for _, g := range c.Gates {
		if err := translateGate(g, gs, out, 0); err != nil {
			return nil, fmt.Errorf("gateset: translate %v to %s: %w", g, gs.Name, err)
		}
	}
	return out, nil
}

// maxLowerDepth bounds recursive lowering so a miswritten Decompose hook
// (one that cycles through non-native forms) errors instead of recursing
// forever. Built-in chains are ≤ 4 deep; 32 leaves custom hooks room.
const maxLowerDepth = 32

// MustTranslate is Translate for callers with statically valid input (e.g.
// the benchmark generators); it panics on error.
func MustTranslate(c *circuit.Circuit, gs *GateSet) *circuit.Circuit {
	out, err := Translate(c, gs)
	if err != nil {
		panic(err)
	}
	return out
}

func translateGate(g gate.Gate, gs *GateSet, out *circuit.Circuit, depth int) error {
	if depth > maxLowerDepth {
		return fmt.Errorf("lowering of %s exceeds depth %d (cyclic Decompose hook?)", g.Name, maxLowerDepth)
	}
	if g.Name == gate.I || g.IsIdentityAngle(1e-12) {
		return nil
	}
	if gs.Contains(g.Name) {
		out.Append(g.Clone())
		return nil
	}
	// Custom sets lower through their Decompose hook first, so a registered
	// target can override any built-in path; falling through (ok = false)
	// keeps the built-in lowerings as the backstop.
	if gs.Decompose != nil {
		if seq, ok := gs.Decompose(g); ok {
			for _, sub := range seq {
				if sub.Name == g.Name {
					return fmt.Errorf("decompose hook for %s re-emits the gate", g.Name)
				}
			}
			return translateAll(gs, out, depth+1, seq...)
		}
	}
	switch g.Name {
	// --- multi-qubit lowering to {1q, cx} ---
	case gate.CCX:
		a, b, t := g.Qubits[0], g.Qubits[1], g.Qubits[2]
		return translateAll(gs, out, depth+1, ccxSeq(a, b, t)...)
	case gate.CCZ:
		a, b, t := g.Qubits[0], g.Qubits[1], g.Qubits[2]
		seq := []gate.Gate{gate.NewH(t)}
		seq = append(seq, ccxSeq(a, b, t)...)
		seq = append(seq, gate.NewH(t))
		return translateAll(gs, out, depth+1, seq...)
	case gate.CZ:
		c, t := g.Qubits[0], g.Qubits[1]
		return translateAll(gs, out, depth+1,
			gate.NewH(t), gate.NewCX(c, t), gate.NewH(t))
	case gate.Swap:
		a, b := g.Qubits[0], g.Qubits[1]
		return translateAll(gs, out, depth+1,
			gate.NewCX(a, b), gate.NewCX(b, a), gate.NewCX(a, b))
	case gate.CP:
		c, t := g.Qubits[0], g.Qubits[1]
		th := g.Params[0]
		return translateAll(gs, out, depth+1,
			gate.NewRz(th/2, c), gate.NewCX(c, t),
			gate.NewRz(-th/2, t), gate.NewCX(c, t), gate.NewRz(th/2, t))
	case gate.Rzz:
		a, b := g.Qubits[0], g.Qubits[1]
		if gs.Contains(gate.Rxx) && !gs.Contains(gate.CX) {
			// ZZ = (H-like basis change) of XX: Rzz = (Ry(-π/2)⊗Ry(-π/2))·
			// Rxx·(Ry(π/2)⊗Ry(π/2)) since Z = Ry(-π/2)·X·Ry(π/2).
			return translateAll(gs, out, depth+1,
				gate.NewRy(math.Pi/2, a), gate.NewRy(math.Pi/2, b),
				gate.NewRxx(g.Params[0], a, b),
				gate.NewRy(-math.Pi/2, a), gate.NewRy(-math.Pi/2, b))
		}
		return translateAll(gs, out, depth+1,
			gate.NewCX(a, b), gate.NewRz(g.Params[0], b), gate.NewCX(a, b))
	case gate.Rxx:
		a, b := g.Qubits[0], g.Qubits[1]
		return translateAll(gs, out, depth+1,
			gate.NewH(a), gate.NewH(b),
			gate.NewRzz(g.Params[0], a, b),
			gate.NewH(a), gate.NewH(b))
	case gate.CX:
		// Sets without a native CX synthesize it from their entangler:
		// Maslov-style from Rxx (ionq and ion-trap-like custom sets), or
		// H-conjugated CZ for CZ-based superconducting sets.
		c, t := g.Qubits[0], g.Qubits[1]
		switch {
		case gs.Contains(gate.Rxx):
			return translateAll(gs, out, depth+1,
				gate.NewRy(math.Pi/2, c),
				gate.NewRxx(math.Pi/2, c, t),
				gate.NewRx(-math.Pi/2, c),
				gate.NewRx(-math.Pi/2, t),
				gate.NewRy(-math.Pi/2, c))
		case gs.Contains(gate.CZ):
			return translateAll(gs, out, depth+1,
				gate.NewH(t), gate.NewCZ(c, t), gate.NewH(t))
		}
		return fmt.Errorf("no cx lowering for gate set %s", gs.Name)
	}

	if len(g.Qubits) != 1 {
		return fmt.Errorf("no lowering for %d-qubit gate %s", len(g.Qubits), g.Name)
	}
	return translate1Q(g, gs, out)
}

func translateAll(gs *GateSet, out *circuit.Circuit, depth int, seq ...gate.Gate) error {
	for _, g := range seq {
		if err := translateGate(g, gs, out, depth); err != nil {
			return err
		}
	}
	return nil
}

// ccxSeq is the standard 6-CX, 7-T Toffoli decomposition.
func ccxSeq(a, b, t int) []gate.Gate {
	return []gate.Gate{
		gate.NewH(t),
		gate.NewCX(b, t), gate.NewTdg(t),
		gate.NewCX(a, t), gate.NewT(t),
		gate.NewCX(b, t), gate.NewTdg(t),
		gate.NewCX(a, t), gate.NewT(b), gate.NewT(t),
		gate.NewH(t),
		gate.NewCX(a, b), gate.NewT(a), gate.NewTdg(b),
		gate.NewCX(a, b),
	}
}

// translate1Q lowers an arbitrary single-qubit gate into the target set.
func translate1Q(g gate.Gate, gs *GateSet, out *circuit.Circuit) error {
	q := g.Qubits[0]
	if g.Name == gate.I || g.IsIdentityAngle(1e-12) {
		return nil
	}
	switch gs.Name {
	case IBMQ20.Name:
		// Exact cheap forms first, then generic U3 via Euler angles.
		switch g.Name {
		case gate.Rz:
			out.Append(gate.NewU1(g.Params[0], q))
		case gate.Z:
			out.Append(gate.NewU1(math.Pi, q))
		case gate.S:
			out.Append(gate.NewU1(math.Pi/2, q))
		case gate.Sdg:
			out.Append(gate.NewU1(-math.Pi/2, q))
		case gate.T:
			out.Append(gate.NewU1(math.Pi/4, q))
		case gate.Tdg:
			out.Append(gate.NewU1(-math.Pi/4, q))
		case gate.H:
			out.Append(gate.NewU2(0, math.Pi, q))
		default:
			th, ph, la, _ := linalg.U3Angles(gate.Matrix(g))
			out.Append(gate.NewU3(th, ph, la, q))
		}
		return nil

	case IBMEagle.Name:
		switch g.Name {
		case gate.Z:
			out.Append(gate.NewRz(math.Pi, q))
		case gate.S:
			out.Append(gate.NewRz(math.Pi/2, q))
		case gate.Sdg:
			out.Append(gate.NewRz(-math.Pi/2, q))
		case gate.T:
			out.Append(gate.NewRz(math.Pi/4, q))
		case gate.Tdg:
			out.Append(gate.NewRz(-math.Pi/4, q))
		case gate.U1:
			out.Append(gate.NewRz(g.Params[0], q))
		default:
			// Generic ZSXZSXZ: U3(θ,φ,λ) ~ Rz(φ+π)·SX·Rz(θ+π)·SX·Rz(λ).
			th, ph, la, _ := linalg.U3Angles(gate.Matrix(g))
			appendRz(out, la, q)
			out.Append(gate.NewSX(q))
			appendRz(out, th+math.Pi, q)
			out.Append(gate.NewSX(q))
			appendRz(out, ph+math.Pi, q)
		}
		return nil

	case IonQ.Name:
		// ZYZ Euler: U ~ Rz(φ)·Ry(θ)·Rz(λ).
		th, ph, la, _ := linalg.EulerZYZ(gate.Matrix(g))
		appendRz(out, la, q)
		if math.Abs(th) > 1e-12 {
			out.Append(gate.NewRy(th, q))
		}
		appendRz(out, ph, q)
		return nil

	case Nam.Name:
		switch g.Name {
		case gate.Z:
			out.Append(gate.NewRz(math.Pi, q))
		case gate.S:
			out.Append(gate.NewRz(math.Pi/2, q))
		case gate.Sdg:
			out.Append(gate.NewRz(-math.Pi/2, q))
		case gate.T:
			out.Append(gate.NewRz(math.Pi/4, q))
		case gate.Tdg:
			out.Append(gate.NewRz(-math.Pi/4, q))
		case gate.U1:
			out.Append(gate.NewRz(g.Params[0], q))
		case gate.Rx:
			// Rx(θ) = H·Rz(θ)·H.
			out.Append(gate.NewH(q))
			appendRz(out, g.Params[0], q)
			out.Append(gate.NewH(q))
		default:
			// U ~ Rz(φ)·Ry(θ)·Rz(λ) with Ry(θ) = Rz(π/2)·H·Rz(θ)·H·Rz(−π/2).
			th, ph, la, _ := linalg.EulerZYZ(gate.Matrix(g))
			appendRz(out, la-math.Pi/2, q)
			if math.Abs(th) > 1e-12 {
				out.Append(gate.NewH(q))
				appendRz(out, th, q)
				out.Append(gate.NewH(q))
			}
			appendRz(out, ph+math.Pi/2, q)
			// When θ=0 the two half-π z-rotations must still combine.
			return nil
		}
		return nil

	case CliffordT.Name:
		switch g.Name {
		case gate.Z:
			out.Append(gate.NewS(q), gate.NewS(q))
		case gate.Y:
			// Y ~ Z·X up to phase.
			out.Append(gate.NewS(q), gate.NewS(q), gate.NewX(q))
		case gate.SX:
			// SX ~ H·S·H up to phase (both are √X up to phase).
			out.Append(gate.NewH(q), gate.NewS(q), gate.NewH(q))
		case gate.SXdg:
			out.Append(gate.NewH(q), gate.NewSdg(q), gate.NewH(q))
		case gate.Rz, gate.U1:
			return appendCliffordTPhase(out, g.Params[0], q)
		case gate.Rx:
			out.Append(gate.NewH(q))
			if err := appendCliffordTPhase(out, g.Params[0], q); err != nil {
				return err
			}
			out.Append(gate.NewH(q))
		case gate.Ry:
			out.Append(gate.NewS(q), gate.NewH(q))
			if err := appendCliffordTPhase(out, g.Params[0], q); err != nil {
				return err
			}
			out.Append(gate.NewH(q), gate.NewSdg(q))
		default:
			return fmt.Errorf("gate %s not representable in Clifford+T", g.Name)
		}
		return nil
	}
	return translate1QGeneric(g, gs, out)
}

// translate1QGeneric lowers a single-qubit gate into a custom (registered)
// gate set by basis-capability detection, mirroring the curated per-set
// strategies: any universal continuous 1q basis we know an Euler-style
// factorization for, or the Clifford+T vocabulary for finite sets. Sets
// with none of these capabilities must supply a Decompose hook.
func translate1QGeneric(g gate.Gate, gs *GateSet, out *circuit.Circuit) error {
	q := g.Qubits[0]
	u := gate.Matrix(g)

	// Phase-only gates collapse to a single native z-rotation when the set
	// has one, regardless of the general strategy below.
	hasRz, hasU1 := gs.Contains(gate.Rz), gs.Contains(gate.U1)
	emitZ := func(theta float64) {
		theta = linalg.NormAngle(theta)
		if math.Abs(theta) <= 1e-12 {
			return
		}
		if hasRz {
			out.Append(gate.NewRz(theta, q))
		} else {
			out.Append(gate.NewU1(theta, q))
		}
	}

	switch {
	case gs.Contains(gate.U3):
		th, ph, la, _ := linalg.U3Angles(u)
		if th <= 1e-12 && (hasRz || hasU1) {
			emitZ(ph + la)
			return nil
		}
		out.Append(gate.NewU3(th, ph, la, q))
		return nil

	case (hasRz || hasU1) && gs.Contains(gate.SX):
		// ZSXZSXZ: U3(θ,φ,λ) ~ Rz(φ+π)·SX·Rz(θ+π)·SX·Rz(λ).
		th, ph, la, _ := linalg.U3Angles(u)
		if th <= 1e-12 {
			emitZ(ph + la)
			return nil
		}
		emitZ(la)
		out.Append(gate.NewSX(q))
		emitZ(th + math.Pi)
		out.Append(gate.NewSX(q))
		emitZ(ph + math.Pi)
		return nil

	case (hasRz || hasU1) && gs.Contains(gate.Ry):
		// ZYZ Euler: U ~ Rz(φ)·Ry(θ)·Rz(λ).
		th, ph, la, _ := linalg.EulerZYZ(u)
		emitZ(la)
		if math.Abs(th) > 1e-12 {
			out.Append(gate.NewRy(th, q))
		}
		emitZ(ph)
		return nil

	case (hasRz || hasU1) && gs.Contains(gate.Rx):
		// ZXZ via Ry(θ) = Rz(π/2)·Rx(θ)·Rz(−π/2), folded into the ZYZ
		// z-rotations: U ~ Rz(φ+π/2)·Rx(θ)·Rz(λ−π/2).
		th, ph, la, _ := linalg.EulerZYZ(u)
		if math.Abs(th) <= 1e-12 {
			emitZ(ph + la)
			return nil
		}
		emitZ(la - math.Pi/2)
		out.Append(gate.NewRx(th, q))
		emitZ(ph + math.Pi/2)
		return nil

	case (hasRz || hasU1) && gs.Contains(gate.H):
		// Nam-style: Ry(θ) = Rz(π/2)·H·Rz(θ)·H·Rz(−π/2) folded into ZYZ.
		th, ph, la, _ := linalg.EulerZYZ(u)
		if math.Abs(th) <= 1e-12 {
			emitZ(ph + la)
			return nil
		}
		emitZ(la - math.Pi/2)
		out.Append(gate.NewH(q))
		emitZ(th)
		out.Append(gate.NewH(q))
		emitZ(ph + math.Pi/2)
		return nil

	case gs.Contains(gate.H) && gs.Contains(gate.S) && gs.Contains(gate.Sdg) &&
		gs.Contains(gate.T) && gs.Contains(gate.Tdg):
		// Clifford+T-style finite vocabulary over a custom basis (e.g. a
		// CZ-entangler fault-tolerant set): reuse the exact π/4-phase paths.
		return translate1QCliffordT(g, gs, out)
	}
	return fmt.Errorf("no single-qubit lowering for gate set %s (no known 1q basis; set a Decompose hook)", gs.Name)
}

// translate1QCliffordT lowers a single-qubit gate over the {H,S,S†,T,T†}
// vocabulary (plus X when present), shared by the built-in cliffordt path's
// strategy; exact only for π/4-multiple rotations.
func translate1QCliffordT(g gate.Gate, gs *GateSet, out *circuit.Circuit) error {
	q := g.Qubits[0]
	switch g.Name {
	case gate.Z:
		out.Append(gate.NewS(q), gate.NewS(q))
	case gate.Y:
		if !gs.Contains(gate.X) {
			return fmt.Errorf("gate y needs x in the basis of %s", gs.Name)
		}
		out.Append(gate.NewS(q), gate.NewS(q), gate.NewX(q))
	case gate.X:
		// X = H·Z·H for sets that dropped X from the basis.
		out.Append(gate.NewH(q), gate.NewS(q), gate.NewS(q), gate.NewH(q))
	case gate.SX:
		out.Append(gate.NewH(q), gate.NewS(q), gate.NewH(q))
	case gate.SXdg:
		out.Append(gate.NewH(q), gate.NewSdg(q), gate.NewH(q))
	case gate.Rz, gate.U1:
		return appendCliffordTPhase(out, g.Params[0], q)
	case gate.Rx:
		out.Append(gate.NewH(q))
		if err := appendCliffordTPhase(out, g.Params[0], q); err != nil {
			return err
		}
		out.Append(gate.NewH(q))
	case gate.Ry:
		out.Append(gate.NewS(q), gate.NewH(q))
		if err := appendCliffordTPhase(out, g.Params[0], q); err != nil {
			return err
		}
		out.Append(gate.NewH(q), gate.NewSdg(q))
	default:
		return fmt.Errorf("gate %s not representable over a Clifford+T basis", g.Name)
	}
	return nil
}

// appendRz appends an rz unless the angle is an identity rotation.
func appendRz(out *circuit.Circuit, theta float64, q int) {
	theta = linalg.NormAngle(theta)
	if math.Abs(theta) > 1e-12 {
		out.Append(gate.NewRz(theta, q))
	}
}

// appendCliffordTPhase writes a z-rotation by a multiple of π/4 as a minimal
// sequence over {S, S†, T, T†}. Returns an error for non-multiples, which
// cannot be represented exactly in Clifford+T.
func appendCliffordTPhase(out *circuit.Circuit, theta float64, q int) error {
	if !linalg.IsMultipleOf(theta, math.Pi/4, 1e-9) {
		return fmt.Errorf("angle %g is not a multiple of π/4", theta)
	}
	k := int(math.Round(theta/(math.Pi/4))) % 8
	if k < 0 {
		k += 8
	}
	switch k {
	case 0:
	case 1:
		out.Append(gate.NewT(q))
	case 2:
		out.Append(gate.NewS(q))
	case 3:
		out.Append(gate.NewS(q), gate.NewT(q))
	case 4:
		out.Append(gate.NewS(q), gate.NewS(q))
	case 5:
		out.Append(gate.NewSdg(q), gate.NewTdg(q))
	case 6:
		out.Append(gate.NewSdg(q))
	case 7:
		out.Append(gate.NewTdg(q))
	}
	return nil
}
