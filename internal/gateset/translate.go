package gateset

import (
	"fmt"
	"math"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/linalg"
)

// Translate decomposes a circuit into the target gate set, preserving the
// unitary up to global phase. This is the "input circuit is already
// decomposed into the target gate set" preprocessing of §6.
//
// The pipeline first lowers multi-qubit gates to {1q, CX} (plus Rzz for
// ionq), then lowers single-qubit gates per target, and finally lowers CX
// itself for sets without a native CX (ionq).
func Translate(c *circuit.Circuit, gs *GateSet) (*circuit.Circuit, error) {
	out := circuit.New(c.NumQubits)
	for _, g := range c.Gates {
		if err := translateGate(g, gs, out); err != nil {
			return nil, fmt.Errorf("gateset: translate %v to %s: %w", g, gs.Name, err)
		}
	}
	return out, nil
}

// MustTranslate is Translate for callers with statically valid input (e.g.
// the benchmark generators); it panics on error.
func MustTranslate(c *circuit.Circuit, gs *GateSet) *circuit.Circuit {
	out, err := Translate(c, gs)
	if err != nil {
		panic(err)
	}
	return out
}

func translateGate(g gate.Gate, gs *GateSet, out *circuit.Circuit) error {
	if g.Name == gate.I || g.IsIdentityAngle(1e-12) {
		return nil
	}
	if gs.Contains(g.Name) {
		out.Append(g.Clone())
		return nil
	}
	switch g.Name {
	// --- multi-qubit lowering to {1q, cx} ---
	case gate.CCX:
		a, b, t := g.Qubits[0], g.Qubits[1], g.Qubits[2]
		for _, sub := range ccxSeq(a, b, t) {
			if err := translateGate(sub, gs, out); err != nil {
				return err
			}
		}
		return nil
	case gate.CCZ:
		a, b, t := g.Qubits[0], g.Qubits[1], g.Qubits[2]
		seq := []gate.Gate{gate.NewH(t)}
		seq = append(seq, ccxSeq(a, b, t)...)
		seq = append(seq, gate.NewH(t))
		for _, sub := range seq {
			if err := translateGate(sub, gs, out); err != nil {
				return err
			}
		}
		return nil
	case gate.CZ:
		c, t := g.Qubits[0], g.Qubits[1]
		return translateAll(gs, out,
			gate.NewH(t), gate.NewCX(c, t), gate.NewH(t))
	case gate.Swap:
		a, b := g.Qubits[0], g.Qubits[1]
		return translateAll(gs, out,
			gate.NewCX(a, b), gate.NewCX(b, a), gate.NewCX(a, b))
	case gate.CP:
		c, t := g.Qubits[0], g.Qubits[1]
		th := g.Params[0]
		return translateAll(gs, out,
			gate.NewRz(th/2, c), gate.NewCX(c, t),
			gate.NewRz(-th/2, t), gate.NewCX(c, t), gate.NewRz(th/2, t))
	case gate.Rzz:
		a, b := g.Qubits[0], g.Qubits[1]
		if gs.Name == IonQ.Name {
			// ZZ = (H-like basis change) of XX: Rzz = (Ry(-π/2)⊗Ry(-π/2))·
			// Rxx·(Ry(π/2)⊗Ry(π/2)) since Z = Ry(-π/2)·X·Ry(π/2).
			return translateAll(gs, out,
				gate.NewRy(math.Pi/2, a), gate.NewRy(math.Pi/2, b),
				gate.NewRxx(g.Params[0], a, b),
				gate.NewRy(-math.Pi/2, a), gate.NewRy(-math.Pi/2, b))
		}
		return translateAll(gs, out,
			gate.NewCX(a, b), gate.NewRz(g.Params[0], b), gate.NewCX(a, b))
	case gate.Rxx:
		a, b := g.Qubits[0], g.Qubits[1]
		return translateAll(gs, out,
			gate.NewH(a), gate.NewH(b),
			gate.NewRzz(g.Params[0], a, b),
			gate.NewH(a), gate.NewH(b))
	case gate.CX:
		// Only ionq lacks a native CX. Maslov-style decomposition into a
		// single Rxx(π/2) plus single-qubit rotations; verified in tests.
		c, t := g.Qubits[0], g.Qubits[1]
		if gs.Name != IonQ.Name {
			return fmt.Errorf("no cx lowering for gate set %s", gs.Name)
		}
		return translateAll(gs, out,
			gate.NewRy(math.Pi/2, c),
			gate.NewRxx(math.Pi/2, c, t),
			gate.NewRx(-math.Pi/2, c),
			gate.NewRx(-math.Pi/2, t),
			gate.NewRy(-math.Pi/2, c))
	}

	if len(g.Qubits) != 1 {
		return fmt.Errorf("no lowering for %d-qubit gate %s", len(g.Qubits), g.Name)
	}
	return translate1Q(g, gs, out)
}

func translateAll(gs *GateSet, out *circuit.Circuit, seq ...gate.Gate) error {
	for _, g := range seq {
		if err := translateGate(g, gs, out); err != nil {
			return err
		}
	}
	return nil
}

// ccxSeq is the standard 6-CX, 7-T Toffoli decomposition.
func ccxSeq(a, b, t int) []gate.Gate {
	return []gate.Gate{
		gate.NewH(t),
		gate.NewCX(b, t), gate.NewTdg(t),
		gate.NewCX(a, t), gate.NewT(t),
		gate.NewCX(b, t), gate.NewTdg(t),
		gate.NewCX(a, t), gate.NewT(b), gate.NewT(t),
		gate.NewH(t),
		gate.NewCX(a, b), gate.NewT(a), gate.NewTdg(b),
		gate.NewCX(a, b),
	}
}

// translate1Q lowers an arbitrary single-qubit gate into the target set.
func translate1Q(g gate.Gate, gs *GateSet, out *circuit.Circuit) error {
	q := g.Qubits[0]
	if g.Name == gate.I || g.IsIdentityAngle(1e-12) {
		return nil
	}
	switch gs.Name {
	case IBMQ20.Name:
		// Exact cheap forms first, then generic U3 via Euler angles.
		switch g.Name {
		case gate.Rz:
			out.Append(gate.NewU1(g.Params[0], q))
		case gate.Z:
			out.Append(gate.NewU1(math.Pi, q))
		case gate.S:
			out.Append(gate.NewU1(math.Pi/2, q))
		case gate.Sdg:
			out.Append(gate.NewU1(-math.Pi/2, q))
		case gate.T:
			out.Append(gate.NewU1(math.Pi/4, q))
		case gate.Tdg:
			out.Append(gate.NewU1(-math.Pi/4, q))
		case gate.H:
			out.Append(gate.NewU2(0, math.Pi, q))
		default:
			th, ph, la, _ := linalg.U3Angles(gate.Matrix(g))
			out.Append(gate.NewU3(th, ph, la, q))
		}
		return nil

	case IBMEagle.Name:
		switch g.Name {
		case gate.Z:
			out.Append(gate.NewRz(math.Pi, q))
		case gate.S:
			out.Append(gate.NewRz(math.Pi/2, q))
		case gate.Sdg:
			out.Append(gate.NewRz(-math.Pi/2, q))
		case gate.T:
			out.Append(gate.NewRz(math.Pi/4, q))
		case gate.Tdg:
			out.Append(gate.NewRz(-math.Pi/4, q))
		case gate.U1:
			out.Append(gate.NewRz(g.Params[0], q))
		default:
			// Generic ZSXZSXZ: U3(θ,φ,λ) ~ Rz(φ+π)·SX·Rz(θ+π)·SX·Rz(λ).
			th, ph, la, _ := linalg.U3Angles(gate.Matrix(g))
			appendRz(out, la, q)
			out.Append(gate.NewSX(q))
			appendRz(out, th+math.Pi, q)
			out.Append(gate.NewSX(q))
			appendRz(out, ph+math.Pi, q)
		}
		return nil

	case IonQ.Name:
		// ZYZ Euler: U ~ Rz(φ)·Ry(θ)·Rz(λ).
		th, ph, la, _ := linalg.EulerZYZ(gate.Matrix(g))
		appendRz(out, la, q)
		if math.Abs(th) > 1e-12 {
			out.Append(gate.NewRy(th, q))
		}
		appendRz(out, ph, q)
		return nil

	case Nam.Name:
		switch g.Name {
		case gate.Z:
			out.Append(gate.NewRz(math.Pi, q))
		case gate.S:
			out.Append(gate.NewRz(math.Pi/2, q))
		case gate.Sdg:
			out.Append(gate.NewRz(-math.Pi/2, q))
		case gate.T:
			out.Append(gate.NewRz(math.Pi/4, q))
		case gate.Tdg:
			out.Append(gate.NewRz(-math.Pi/4, q))
		case gate.U1:
			out.Append(gate.NewRz(g.Params[0], q))
		case gate.Rx:
			// Rx(θ) = H·Rz(θ)·H.
			out.Append(gate.NewH(q))
			appendRz(out, g.Params[0], q)
			out.Append(gate.NewH(q))
		default:
			// U ~ Rz(φ)·Ry(θ)·Rz(λ) with Ry(θ) = Rz(π/2)·H·Rz(θ)·H·Rz(−π/2).
			th, ph, la, _ := linalg.EulerZYZ(gate.Matrix(g))
			appendRz(out, la-math.Pi/2, q)
			if math.Abs(th) > 1e-12 {
				out.Append(gate.NewH(q))
				appendRz(out, th, q)
				out.Append(gate.NewH(q))
			}
			appendRz(out, ph+math.Pi/2, q)
			// When θ=0 the two half-π z-rotations must still combine.
			return nil
		}
		return nil

	case CliffordT.Name:
		switch g.Name {
		case gate.Z:
			out.Append(gate.NewS(q), gate.NewS(q))
		case gate.Y:
			// Y ~ Z·X up to phase.
			out.Append(gate.NewS(q), gate.NewS(q), gate.NewX(q))
		case gate.SX:
			// SX ~ H·S·H up to phase (both are √X up to phase).
			out.Append(gate.NewH(q), gate.NewS(q), gate.NewH(q))
		case gate.SXdg:
			out.Append(gate.NewH(q), gate.NewSdg(q), gate.NewH(q))
		case gate.Rz, gate.U1:
			return appendCliffordTPhase(out, g.Params[0], q)
		case gate.Rx:
			out.Append(gate.NewH(q))
			if err := appendCliffordTPhase(out, g.Params[0], q); err != nil {
				return err
			}
			out.Append(gate.NewH(q))
		case gate.Ry:
			out.Append(gate.NewS(q), gate.NewH(q))
			if err := appendCliffordTPhase(out, g.Params[0], q); err != nil {
				return err
			}
			out.Append(gate.NewH(q), gate.NewSdg(q))
		default:
			return fmt.Errorf("gate %s not representable in Clifford+T", g.Name)
		}
		return nil
	}
	return fmt.Errorf("unknown target gate set %s", gs.Name)
}

// appendRz appends an rz unless the angle is an identity rotation.
func appendRz(out *circuit.Circuit, theta float64, q int) {
	theta = linalg.NormAngle(theta)
	if math.Abs(theta) > 1e-12 {
		out.Append(gate.NewRz(theta, q))
	}
}

// appendCliffordTPhase writes a z-rotation by a multiple of π/4 as a minimal
// sequence over {S, S†, T, T†}. Returns an error for non-multiples, which
// cannot be represented exactly in Clifford+T.
func appendCliffordTPhase(out *circuit.Circuit, theta float64, q int) error {
	if !linalg.IsMultipleOf(theta, math.Pi/4, 1e-9) {
		return fmt.Errorf("angle %g is not a multiple of π/4", theta)
	}
	k := int(math.Round(theta/(math.Pi/4))) % 8
	if k < 0 {
		k += 8
	}
	switch k {
	case 0:
	case 1:
		out.Append(gate.NewT(q))
	case 2:
		out.Append(gate.NewS(q))
	case 3:
		out.Append(gate.NewS(q), gate.NewT(q))
	case 4:
		out.Append(gate.NewS(q), gate.NewS(q))
	case 5:
		out.Append(gate.NewSdg(q), gate.NewTdg(q))
	case 6:
		out.Append(gate.NewSdg(q))
	case 7:
		out.Append(gate.NewTdg(q))
	}
	return nil
}
