package gateset

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/linalg"
)

func TestRegisterAndLookup(t *testing.T) {
	gs, err := New("reg-cz", "superconducting", gate.Rz, gate.SX, gate.X, gate.CZ)
	if err != nil {
		t.Fatal(err)
	}
	if err := Register(gs); err != nil {
		t.Fatal(err)
	}
	defer Unregister("reg-cz")
	got, err := ByName("reg-cz")
	if err != nil || got != gs {
		t.Fatalf("ByName returned %v, %v", got, err)
	}
	if gs.Builtin() {
		t.Fatal("registered set reports builtin")
	}
	// Re-registering the same pointer is a no-op; a different set under the
	// same name is rejected.
	if err := Register(gs); err != nil {
		t.Fatalf("idempotent re-register failed: %v", err)
	}
	other, _ := New("reg-cz", "", gate.H, gate.CX)
	if err := Register(other); err == nil {
		t.Fatal("conflicting registration accepted")
	}
	// Built-in names cannot be shadowed.
	shadow, _ := New("nam", "", gate.H, gate.CX)
	if err := Register(shadow); err == nil {
		t.Fatal("built-in shadowing accepted")
	}
	names := Names()
	found := false
	for _, n := range names {
		found = found || n == "reg-cz"
	}
	if !found {
		t.Fatalf("Names() = %v misses the registered set", names)
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New("", "", gate.H); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := New("x", ""); err == nil {
		t.Fatal("empty basis accepted")
	}
	if _, err := New("x", "", gate.Name("frobnicate")); err == nil {
		t.Fatal("unknown gate accepted")
	}
}

// TestRegistryConcurrent exercises the registry under the race detector
// (CI runs this package with -race).
func TestRegistryConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("race-%d", i)
			gs, err := New(name, "", gate.Rz, gate.H, gate.X, gate.CX)
			if err != nil {
				t.Error(err)
				return
			}
			if err := Register(gs); err != nil {
				t.Error(err)
			}
			for j := 0; j < 50; j++ {
				if _, err := ByName(name); err != nil {
					t.Error(err)
				}
				Names()
			}
			Unregister(name)
		}(i)
	}
	wg.Wait()
}

// TestTranslateCustomSets: the generic capability-based lowerings must
// preserve the unitary and land inside the basis for a spectrum of custom
// targets — CZ entangler, rz+ry Euler, rz+rx Euler, u3, and a Clifford+T
// vocabulary over CZ.
func TestTranslateCustomSets(t *testing.T) {
	targets := []struct {
		name  string
		gates []gate.Name
	}{
		{"t-cz-sx", []gate.Name{gate.Rz, gate.SX, gate.X, gate.CZ}},
		{"t-zyz", []gate.Name{gate.Rz, gate.Ry, gate.CX}},
		{"t-zxz", []gate.Name{gate.Rz, gate.Rx, gate.CZ}},
		{"t-u3", []gate.Name{gate.U1, gate.U2, gate.U3, gate.CZ}},
		{"t-rzh", []gate.Name{gate.Rz, gate.H, gate.CX}},
	}
	src := circuit.New(3)
	src.Append(
		gate.NewH(0), gate.NewT(1), gate.NewSdg(2),
		gate.NewCX(0, 1), gate.NewCZ(1, 2), gate.NewSwap(0, 2),
		gate.NewRx(0.3, 0), gate.NewRy(-1.2, 1), gate.NewRz(2.1, 2),
		gate.NewU3(0.5, 0.25, -0.75, 0), gate.NewCCX(0, 1, 2),
		gate.NewRzz(0.8, 0, 1), gate.NewCP(0.4, 1, 2),
	)
	want := src.Unitary()
	for _, target := range targets {
		gs, err := New(target.name, "", target.gates...)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Translate(src, gs)
		if err != nil {
			t.Fatalf("%s: %v", target.name, err)
		}
		if !gs.IsNative(out) {
			t.Fatalf("%s: translation emitted non-native gates", target.name)
		}
		if !linalg.EqualUpToPhase(out.Unitary(), want, 1e-9) {
			t.Fatalf("%s: translation changed the unitary", target.name)
		}
	}
}

// TestTranslateCliffordTOverCZ: a finite vocabulary with a CZ entangler
// uses the π/4-exact paths; continuously-parameterized input gates with
// non-π/4 angles are correctly rejected.
func TestTranslateCliffordTOverCZ(t *testing.T) {
	gs, err := New("t-ct-cz", "fault tolerant",
		gate.H, gate.S, gate.Sdg, gate.T, gate.Tdg, gate.X, gate.CZ)
	if err != nil {
		t.Fatal(err)
	}
	src := circuit.New(2)
	src.Append(gate.NewH(0), gate.NewT(0), gate.NewCX(0, 1), gate.NewRz(math.Pi/4, 1))
	out, err := Translate(src, gs)
	if err != nil {
		t.Fatal(err)
	}
	if !gs.IsNative(out) {
		t.Fatal("non-native output")
	}
	if !linalg.EqualUpToPhase(out.Unitary(), src.Unitary(), 1e-9) {
		t.Fatal("unitary changed")
	}
	bad := circuit.New(1)
	bad.Append(gate.NewRz(0.3, 0))
	if _, err := Translate(bad, gs); err == nil {
		t.Fatal("non-π/4 rotation accepted by a finite set")
	}
}

// TestDecomposeHook: a custom hook overrides lowering and is recursively
// translated; hooks that re-emit their own gate are rejected.
func TestDecomposeHook(t *testing.T) {
	gs, err := New("t-hook", "", gate.Rz, gate.Ry, gate.CX)
	if err != nil {
		t.Fatal(err)
	}
	hookHits := 0
	gs.Decompose = func(g gate.Gate) ([]gate.Gate, bool) {
		if g.Name != gate.Swap {
			return nil, false
		}
		hookHits++
		a, b := g.Qubits[0], g.Qubits[1]
		return []gate.Gate{gate.NewCX(a, b), gate.NewCX(b, a), gate.NewCX(a, b)}, true
	}
	src := circuit.New(2)
	src.Append(gate.NewSwap(0, 1), gate.NewH(0))
	out, err := Translate(src, gs)
	if err != nil {
		t.Fatal(err)
	}
	if hookHits != 1 {
		t.Fatalf("hook hit %d times, want 1", hookHits)
	}
	if !gs.IsNative(out) || !linalg.EqualUpToPhase(out.Unitary(), src.Unitary(), 1e-9) {
		t.Fatal("hook-based translation broken")
	}

	gs.Decompose = func(g gate.Gate) ([]gate.Gate, bool) {
		return []gate.Gate{g.Clone()}, true // cyclic: re-emits itself
	}
	if _, err := Translate(src, gs); err == nil {
		t.Fatal("self-emitting hook accepted")
	}
}

// TestModelForCustomWeights: custom error weights flow into the fidelity
// model; built-ins keep the paper's device models untouched.
func TestModelForCustomWeights(t *testing.T) {
	if m := ModelFor(Nam); m.Name != IBMWashington.Name || m.TwoQubitError != IBMWashington.TwoQubitError || m.GateErrors != nil {
		t.Fatal("builtin nam model changed")
	}
	if m := ModelFor(IonQ); m.Name != IonQForte.Name {
		t.Fatal("builtin ionq model changed")
	}
	gs, err := New("t-weights", "superconducting", gate.Rz, gate.SX, gate.X, gate.CZ)
	if err != nil {
		t.Fatal(err)
	}
	gs.TwoQubitError = 0.5
	gs.GateErrors = map[gate.Name]float64{gate.SX: 0.25}
	m := ModelFor(gs)
	if m.Name != "t-weights" {
		t.Fatalf("model name %q", m.Name)
	}
	c := circuit.New(2)
	c.Append(gate.NewCZ(0, 1))
	if f := m.CircuitFidelity(c); f != 0.5 {
		t.Fatalf("cz fidelity %g, want 0.5 (custom two-qubit error)", f)
	}
	c2 := circuit.New(1)
	c2.Append(gate.NewSX(0))
	if f := m.CircuitFidelity(c2); f != 0.75 {
		t.Fatalf("sx fidelity %g, want 0.75 (per-gate override, no spread)", f)
	}
}

// TestTranslateCustomFuzz: random circuits through a custom CZ set keep
// their unitary (the generic lowering composed with multi-qubit chains).
func TestTranslateCustomFuzz(t *testing.T) {
	gs, err := New("t-fuzz-cz", "", gate.Rz, gate.SX, gate.X, gate.CZ)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		src := circuit.Random(3, 20, circuit.DefaultTestVocab, rng)
		out, err := Translate(src, gs)
		if err != nil {
			t.Fatal(err)
		}
		if !gs.IsNative(out) {
			t.Fatal("non-native output")
		}
		if !linalg.EqualUpToPhase(out.Unitary(), src.Unitary(), 1e-8) {
			t.Fatalf("trial %d: unitary drifted", trial)
		}
	}
}
