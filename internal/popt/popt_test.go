package popt

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/opt"
	"github.com/guoq-dev/guoq/internal/verify"
)

// setup builds a circuit large enough to window at the test's WindowGates
// and the IBM Eagle transformation portfolio with short synthesis budgets.
func setup(t *testing.T, seed int64, gates int) (*circuit.Circuit, []opt.Transformation) {
	t.Helper()
	ts, err := opt.Instantiate(gateset.IBMEagle, opt.InstantiateOptions{
		EpsilonF:  1e-8,
		SynthTime: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.Random(6, gates, gateset.IBMEagle.Gates, rand.New(rand.NewSource(seed)))
	return c, ts
}

// small windows so a few-hundred-gate test circuit still partitions.
func testOptions(search opt.Options) Options {
	return Options{
		Search:         search,
		Workers:        4,
		WindowGates:    48,
		MinWindowGates: 12,
		RoundIters:     300,
		MaxRounds:      4,
	}
}

// The metamorphic contract: the stitched output must stay equivalent to the
// input within the summed per-window ε (plus verification tolerance), never
// cost more, and never overdraw the global budget — across seeds, with and
// without async resynthesis.
func TestFixpointMetamorphicEquivalence(t *testing.T) {
	for _, async := range []bool{false, true} {
		for seed := int64(1); seed <= 3; seed++ {
			c, ts := setup(t, seed, 220)
			so := opt.DefaultOptions()
			so.Cost = opt.TwoQubitCost()
			so.Seed = seed * 17
			so.Async = async
			so.TimeBudget = 0
			res := Fixpoint(c, ts, testOptions(so))
			if res.Best == nil {
				t.Fatal("nil result")
			}
			if res.BestError > so.Epsilon {
				t.Fatalf("seed %d async=%v: BestError %g exceeds budget %g", seed, async, res.BestError, so.Epsilon)
			}
			if got, in := so.Cost(res.Best), so.Cost(c); got > in {
				t.Fatalf("seed %d async=%v: cost went up %g -> %g", seed, async, in, got)
			}
			if err := verify.MustBeEquivalent(c, res.Best, res.BestError+1e-6, seed); err != nil {
				t.Fatalf("seed %d async=%v: %v", seed, async, err)
			}
		}
	}
}

// Synchronous iteration-bounded runs must be bit-reproducible: window seeds
// derive deterministically from (seed, round, window) and stitching order
// is the window order, so concurrency cannot leak into the result.
func TestFixpointDeterminism(t *testing.T) {
	c, ts := setup(t, 5, 200)
	run := func() *circuit.Circuit {
		so := opt.DefaultOptions()
		so.Cost = opt.TwoQubitCost()
		so.Seed = 42
		so.Async = false
		so.TimeBudget = 0
		return Fixpoint(c, ts, testOptions(so)).Best
	}
	first := run()
	for i := 0; i < 2; i++ {
		if got := run(); !circuit.Equal(first, got) {
			t.Fatalf("equal-seed fixpoint runs diverged:\n%s\nvs\n%s", first, got)
		}
	}
}

// Per-round progress: every event reports as Worker 0 with nondecreasing
// cumulative counters, and improvement events carry a Best snapshot whose
// cost matches the reported BestCost — the contract the public Session's
// aggregator relies on to observe fixpoint convergence.
func TestFixpointEmitsRoundEvents(t *testing.T) {
	c, ts := setup(t, 6, 220)
	so := opt.DefaultOptions()
	so.Cost = opt.TwoQubitCost()
	so.Seed = 9
	so.Async = false
	so.TimeBudget = 0
	var events []opt.Event
	so.OnEvent = func(e opt.Event) { events = append(events, e) } // rounds are sequential: no locking needed
	res := Fixpoint(c, ts, testOptions(so))
	if len(events) < 2 {
		t.Fatalf("got %d events, want at least one round plus the final", len(events))
	}
	prevIters := 0
	improvements := 0
	for i, e := range events {
		if e.Worker != 0 {
			t.Fatalf("event %d from worker %d, want 0", i, e.Worker)
		}
		if e.Iters < prevIters {
			t.Fatalf("event %d: cumulative iters went backwards %d -> %d", i, prevIters, e.Iters)
		}
		prevIters = e.Iters
		if e.Best != nil {
			improvements++
			if got := so.Cost(e.Best); got != e.BestCost {
				t.Fatalf("event %d: snapshot cost %g != reported BestCost %g", i, got, e.BestCost)
			}
		}
	}
	if improvements == 0 && so.Cost(res.Best) < so.Cost(c) {
		t.Fatal("the run improved but no event carried a Best snapshot")
	}
	last := events[len(events)-1]
	if last.Iters != res.Iters || last.BestErr != res.BestError {
		t.Fatalf("final event (%d iters, ε=%g) disagrees with the result (%d, %g)",
			last.Iters, last.BestErr, res.Iters, res.BestError)
	}
}

// Circuits with no room for two windows must fall back to a portfolio run
// rather than failing or returning the input untouched.
func TestFixpointSmallCircuitFallsBack(t *testing.T) {
	c, ts := setup(t, 7, 40)
	so := opt.DefaultOptions()
	so.Cost = opt.TwoQubitCost()
	so.Seed = 3
	so.Async = false
	so.TimeBudget = 0
	so.MaxIters = 400
	o := testOptions(so)
	o.WindowGates = 256 // swallows the whole circuit: no windows
	res := Fixpoint(c, ts, o)
	if res.Best == nil || res.Iters == 0 {
		t.Fatal("fallback did no work")
	}
	if got, in := so.Cost(res.Best), so.Cost(c); got > in {
		t.Fatalf("fallback cost went up %g -> %g", in, got)
	}
}

// Cancelling mid-run must end the round loop promptly and leak no window
// searchers or pool workers.
func TestFixpointCancelNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	for trial := 0; trial < 3; trial++ {
		c, ts := setup(t, int64(11+trial), 260)
		ctx, cancel := context.WithCancel(context.Background())
		so := opt.DefaultOptions()
		so.Cost = opt.TwoQubitCost()
		so.Seed = int64(trial)
		so.Async = true
		so.TimeBudget = 0
		so.Context = ctx
		o := testOptions(so)
		o.MaxRounds = 0 // run until cancelled
		done := make(chan *opt.Result, 1)
		go func() { done <- Fixpoint(c, ts, o) }()
		time.Sleep(50 * time.Millisecond)
		cancel()
		select {
		case res := <-done:
			if res.Best == nil {
				t.Fatal("cancelled run returned nil")
			}
			if got, in := so.Cost(res.Best), so.Cost(c); got > in {
				t.Fatalf("cancelled run cost went up %g -> %g", in, got)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("cancelled fixpoint did not return")
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after cancelled fixpoint runs: %d -> %d\n%s",
				base, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
