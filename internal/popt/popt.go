// Package popt implements parallel local fixpoint optimization — the
// "huge circuit" strategy of POPQC (Liu et al.) argued for by Arora et al.:
// a global annealing search cannot hold a million-gate circuit, but bounded
// GUOQ searches on sliding windows can, and iterating window rounds to a
// fixpoint recovers most of the global search's quality. Each round
// partitions the current circuit into disjoint windows
// (partition.SizedWindows), optimizes every window concurrently with its
// own bounded GUOQ search, and stitches the improved windows back in one
// transaction (rewrite.Engine.ReplaceRegions), committing only when the
// whole-circuit cost strictly drops. Alternate rounds shift the window
// boundaries by half a window so the seams left by one round fall in the
// interior of the next round's windows. The loop stops after two
// consecutive rounds without improvement — no window can improve at either
// boundary phase — or when the budget runs out.
//
// The ε accounting composes by Thm 4.2: a round with remaining budget R and
// W windows grants each window R/W, only adopted windows are charged their
// achieved (not granted) error, and at most W windows are adopted, so every
// round spends at most R and the summed BestError never exceeds the global
// Epsilon.
package popt

import (
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/opt"
	"github.com/guoq-dev/guoq/internal/partition"
	"github.com/guoq-dev/guoq/internal/rewrite"
)

// Options configures a fixpoint run. Search carries the per-window GUOQ
// configuration and the global budgets: Search.Epsilon is the whole-run
// error budget, Search.TimeBudget the whole-run wall clock, and
// Search.Context cancels between and inside rounds. Search.Seed makes
// synchronous runs (Search.Async false, no TimeBudget) deterministic:
// window seeds are derived from (seed, round, window).
type Options struct {
	// Workers bounds how many window searches run concurrently (≤0 means
	// opt.AutoWorkers). It also sizes the shared resynthesis pool in Async
	// mode.
	Workers int
	// WindowGates is the target gates per window (≤0 means 256) — large
	// enough for rules and resynthesis to find context, small enough that a
	// bounded search converges within RoundIters.
	WindowGates int
	// MinWindowGates is the advisory floor forwarded to
	// partition.SizedWindows (≤0 means 24).
	MinWindowGates int
	// RoundIters bounds each window search's iterations per round (≤0
	// means 2048) — the "bounded local search" of POPQC's fixpoint
	// argument; unbounded window searches would just be slow global ones.
	RoundIters int
	// MaxRounds bounds the number of rounds (0 = until convergence or
	// budget exhaustion).
	MaxRounds int
	// Search is the per-window GUOQ configuration plus global budgets (see
	// the struct comment).
	Search opt.Options
}

// Fixpoint optimizes c by iterated parallel window optimization. Circuits
// with no room for two windows fall back to a portfolio run, so callers can
// treat Fixpoint as the large-circuit strategy without pre-checking sizes.
// The result is never worse than the input and its BestError is within
// Search.Epsilon. Search.MaxIters, when set, bounds the total iterations
// summed across all window searches (checked between rounds, so a run may
// overshoot by at most one round).
func Fixpoint(c *circuit.Circuit, ts []opt.Transformation, o Options) *opt.Result {
	so := o.Search
	if so.Cost == nil {
		so.Cost = opt.TwoQubitCost()
	}
	workers := o.Workers
	if workers <= 0 {
		workers = opt.AutoWorkers()
	}
	window := o.WindowGates
	if window <= 0 {
		window = 256
	}
	minWin := o.MinWindowGates
	if minWin <= 0 {
		minWin = 24
	}
	roundIters := o.RoundIters
	if roundIters <= 0 {
		roundIters = 2048
	}

	if partition.SizedWindows(c, window, minWin, 0) == nil {
		return opt.Portfolio(c, ts, so, workers)
	}

	start := time.Now()
	var deadline time.Time
	if so.TimeBudget > 0 {
		deadline = start.Add(so.TimeBudget)
	}
	done := so.Context
	cancelled := func() bool {
		if done == nil {
			return false
		}
		select {
		case <-done.Done():
			return true
		default:
			return false
		}
	}

	// One shared resynthesis pool for every window search of every round:
	// without it, W concurrent windows in Async mode would each spawn a
	// private synthesis goroutine and admit W simultaneous numerical
	// searches; the pool work-steals across windows and caps concurrency at
	// the worker count. A caller-supplied pool (a portfolio sharing with a
	// fixpoint run) is reused as-is.
	pool := so.Pool
	var hasFast, hasSlow bool
	for _, t := range ts {
		if t.Slow() {
			hasSlow = true
		} else {
			hasFast = true
		}
	}
	if so.Async && hasFast && hasSlow && pool == nil {
		pool = opt.NewResynthPoolMetrics(workers, so.Metrics)
		defer pool.Close()
	}

	eng := rewrite.NewEngine(c.Clone())
	curr := eng.Circuit() // stable pointer to the engine's live circuit
	currCost := so.Cost(curr)
	totalErr := 0.0
	res := &opt.Result{}

	// emit publishes one per-round progress event as Worker 0: counters are
	// cumulative across all rounds' window searches, and Best carries a
	// snapshot only on rounds that improved the stitched circuit — exactly
	// the per-worker contract the Session aggregator expects, so fixpoint
	// convergence is observable round by round through Session.Events.
	emit := func(best *circuit.Circuit) {
		if so.OnEvent == nil {
			return
		}
		so.OnEvent(opt.Event{
			Worker:   0,
			Elapsed:  time.Since(start),
			Iters:    res.Iters,
			Accepted: res.Accepted,
			BestCost: currCost,
			BestErr:  totalErr,
			Best:     best,
		})
	}

	dry := 0
	for round := 0; dry < 2; round++ {
		if o.MaxRounds > 0 && round >= o.MaxRounds {
			break
		}
		if so.MaxIters > 0 && res.Iters >= so.MaxIters {
			break
		}
		if so.TimeBudget > 0 && !time.Now().Before(deadline) {
			break
		}
		if cancelled() {
			break
		}
		// Alternate the boundary phase so last round's seams are interior.
		offset := 0
		if round%2 == 1 {
			offset = window / 2
		}
		wins := partition.SizedWindows(curr, window, minWin, offset)
		if wins == nil {
			break // the circuit shrank below two windows
		}
		if m := so.Metrics; m != nil {
			m.FixpointWindows.Add(int64(len(wins)))
		}
		remaining := so.Epsilon - totalErr
		if remaining < 0 {
			remaining = 0
		}
		epsPer := remaining / float64(len(wins))

		type winOut struct {
			out  *opt.Result
			base float64 // cost of the window's input
		}
		outs := make([]winOut, len(wins))
		sem := make(chan struct{}, workers)
		doneCh := make(chan struct{})
		for i, w := range wins {
			sub := w.Extract(curr)
			wOpts := so
			wOpts.Epsilon = epsPer
			wOpts.Seed = so.Seed + int64(round)*0x3779B97F4A7C15 + int64(i)*0x9E3779B9
			wOpts.MaxIters = roundIters
			if so.TimeBudget > 0 {
				rem := time.Until(deadline)
				if rem <= 0 {
					rem = time.Millisecond
				}
				wOpts.TimeBudget = rem
			}
			wOpts.Exchanger = nil
			wOpts.OnImprove = nil // a window-local best is not a global one
			wOpts.OnEvent = nil   // rounds report as one worker, see emit
			wOpts.Pool = pool
			go func(i int, sub *circuit.Circuit, wo opt.Options) {
				sem <- struct{}{}
				defer func() { <-sem; doneCh <- struct{}{} }()
				outs[i] = winOut{out: opt.GUOQ(sub, ts, wo), base: wo.Cost(sub)}
			}(i, sub, wOpts)
		}
		for range wins {
			<-doneCh
		}

		// Stitch: adopt every window whose search found a strictly cheaper
		// subcircuit, all in one logged transaction, and commit only when
		// the whole circuit got strictly cheaper (for the additive shipped
		// objectives any adopted window guarantees that; the guard keeps
		// exotic caller costs sound).
		var regs []*circuit.Region
		var repls []*circuit.Circuit
		roundErr := 0.0
		for i, w := range wins {
			wo := outs[i]
			res.Iters += wo.out.Iters
			res.Accepted += wo.out.Accepted
			res.MergeRules(wo.out)
			if so.Cost(wo.out.Best) < wo.base {
				regs = append(regs, w)
				repls = append(repls, wo.out.Best)
				roundErr += wo.out.BestError
			}
		}
		improved := false
		if len(regs) > 0 {
			mark := eng.Mark()
			eng.ReplaceRegions(regs, repls)
			if cand := so.Cost(curr); cand < currCost {
				eng.Commit()
				currCost = cand
				totalErr += roundErr
				improved = true
			} else {
				eng.Rollback(mark)
			}
		}
		if improved {
			dry = 0
			if m := so.Metrics; m != nil {
				m.FixpointAdopted.Add(int64(len(regs)))
				m.BestCost.Set(currCost)
				m.EpsilonSpent.Set(totalErr)
			}
			best := eng.Snapshot()
			if so.OnImprove != nil {
				so.OnImprove(time.Since(start), best)
			}
			emit(best)
		} else {
			dry++
			if m := so.Metrics; m != nil {
				m.FixpointDryRounds.Inc()
			}
			emit(nil)
		}
	}

	// The stitch engine's cache counters join the windows' own (each
	// window search flushed its private engine when it returned).
	so.Metrics.AddEngineStats(eng.Stats())
	res.Best = eng.Snapshot()
	res.BestError = totalErr
	if so.Cost(res.Best) > so.Cost(c) {
		// Unreachable for additive costs (commits are strictly improving);
		// keeps the never-worse contract under exotic caller costs.
		res.Best, res.BestError = c, 0
	}
	res.Elapsed = time.Since(start)
	emit(nil)
	return res
}
