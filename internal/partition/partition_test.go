package partition

import (
	"math/rand"
	"testing"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/verify"
)

func randomCircuit(seed int64, n, gates int) *circuit.Circuit {
	return circuit.Random(n, gates, circuit.DefaultTestVocab, rand.New(rand.NewSource(seed)))
}

func TestTimeWindowsDisjointCover(t *testing.T) {
	c := randomCircuit(1, 6, 100)
	windows := TimeWindows(c, 4, 10)
	if len(windows) < 2 {
		t.Fatalf("expected ≥2 windows, got %d", len(windows))
	}
	seen := map[int]bool{}
	for _, w := range windows {
		for _, i := range w.Indices {
			if seen[i] {
				t.Fatalf("gate %d selected by two windows", i)
			}
			seen[i] = true
			if i < w.Lo || i > w.Hi {
				t.Fatalf("index %d outside window [%d,%d]", i, w.Lo, w.Hi)
			}
		}
	}
	if len(seen) != c.Len() {
		t.Fatalf("windows cover %d of %d gates", len(seen), c.Len())
	}
}

func TestTimeWindowsRoundTrip(t *testing.T) {
	// Extracting every window and replacing it unchanged must reproduce the
	// circuit's semantics — the identity case of the stitching step.
	c := randomCircuit(2, 5, 80)
	windows := TimeWindows(c, 3, 10)
	out := c
	for i := len(windows) - 1; i >= 0; i-- {
		sub := windows[i].Extract(c)
		out = windows[i].Replace(out, sub)
	}
	if err := verify.MustBeEquivalent(c, out, 1e-9, 5); err != nil {
		t.Fatal(err)
	}
}

func TestTimeWindowsTooSmall(t *testing.T) {
	c := randomCircuit(3, 4, 15)
	if w := TimeWindows(c, 4, 10); w != nil {
		t.Fatalf("expected nil for a circuit below 2×minGates, got %d windows", len(w))
	}
	if w := TimeWindows(c, 1, 2); w != nil {
		t.Fatal("expected nil for n < 2")
	}
}

func TestTimeWindowsMergesSliver(t *testing.T) {
	// 85 gates over 4 windows of 22: the trailing 19-gate sliver must merge
	// into the previous window rather than form one below minGates.
	c := randomCircuit(4, 6, 85)
	windows := TimeWindows(c, 4, 22)
	total := 0
	for _, w := range windows {
		if len(w.Indices) < 22 {
			t.Fatalf("window of %d gates below minGates", len(w.Indices))
		}
		total += len(w.Indices)
	}
	if total != c.Len() {
		t.Fatalf("windows cover %d of %d gates", total, c.Len())
	}
}

func TestBlocksRespectQubitBound(t *testing.T) {
	c := randomCircuit(5, 8, 120)
	for _, maxQ := range []int{2, 3} {
		for _, b := range Blocks(c, maxQ) {
			if len(b.Qubits) > maxQ {
				t.Fatalf("block spans %d qubits, bound %d", len(b.Qubits), maxQ)
			}
			for _, i := range b.Indices {
				for _, q := range c.Gates[i].Qubits {
					found := false
					for _, bq := range b.Qubits {
						if bq == q {
							found = true
						}
					}
					if !found {
						t.Fatalf("block omits qubit %d of gate %d", q, i)
					}
				}
			}
		}
	}
}
