package partition

import (
	"math/rand"
	"testing"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/verify"
)

func randomCircuit(seed int64, n, gates int) *circuit.Circuit {
	return circuit.Random(n, gates, circuit.DefaultTestVocab, rand.New(rand.NewSource(seed)))
}

func TestTimeWindowsDisjointCover(t *testing.T) {
	c := randomCircuit(1, 6, 100)
	windows := TimeWindows(c, 4, 10)
	if len(windows) < 2 {
		t.Fatalf("expected ≥2 windows, got %d", len(windows))
	}
	seen := map[int]bool{}
	for _, w := range windows {
		for _, i := range w.Indices {
			if seen[i] {
				t.Fatalf("gate %d selected by two windows", i)
			}
			seen[i] = true
			if i < w.Lo || i > w.Hi {
				t.Fatalf("index %d outside window [%d,%d]", i, w.Lo, w.Hi)
			}
		}
	}
	if len(seen) != c.Len() {
		t.Fatalf("windows cover %d of %d gates", len(seen), c.Len())
	}
}

func TestTimeWindowsRoundTrip(t *testing.T) {
	// Extracting every window and replacing it unchanged must reproduce the
	// circuit's semantics — the identity case of the stitching step.
	c := randomCircuit(2, 5, 80)
	windows := TimeWindows(c, 3, 10)
	out := c
	for i := len(windows) - 1; i >= 0; i-- {
		sub := windows[i].Extract(c)
		out = windows[i].Replace(out, sub)
	}
	if err := verify.MustBeEquivalent(c, out, 1e-9, 5); err != nil {
		t.Fatal(err)
	}
}

func TestTimeWindowsTooSmall(t *testing.T) {
	c := randomCircuit(3, 4, 15)
	if w := TimeWindows(c, 4, 10); w != nil {
		t.Fatalf("expected nil for a circuit below 2×minGates, got %d windows", len(w))
	}
	if w := TimeWindows(c, 1, 2); w != nil {
		t.Fatal("expected nil for n < 2")
	}
}

func TestTimeWindowsMergesSliver(t *testing.T) {
	// 85 gates over 4 windows of 22: the trailing 19-gate sliver must merge
	// into the previous window rather than form one below minGates.
	c := randomCircuit(4, 6, 85)
	windows := TimeWindows(c, 4, 22)
	total := 0
	for _, w := range windows {
		if len(w.Indices) < 22 {
			t.Fatalf("window of %d gates below minGates", len(w.Indices))
		}
		total += len(w.Indices)
	}
	if total != c.Len() {
		t.Fatalf("windows cover %d of %d gates", total, c.Len())
	}
}

// checkWindows pins the three window invariants every partition promises:
// pairwise-disjoint selections, full coverage of the gate list, and indices
// confined to their window bounds.
func checkWindows(t *testing.T, c *circuit.Circuit, windows []*circuit.Region) {
	t.Helper()
	seen := map[int]bool{}
	for wi, w := range windows {
		for _, i := range w.Indices {
			if seen[i] {
				t.Fatalf("gate %d selected by two windows", i)
			}
			seen[i] = true
			if i < w.Lo || i > w.Hi {
				t.Fatalf("window %d: index %d outside [%d,%d]", wi, i, w.Lo, w.Hi)
			}
		}
	}
	if len(seen) != c.Len() {
		t.Fatalf("windows cover %d of %d gates", len(seen), c.Len())
	}
}

// The sliver-merge boundary, table-driven: window counts, per-window size
// bounds, coverage, and disjointness must hold exactly at the sizes where
// the trailing (or, with an offset, leading) window degenerates. The old
// merge appended a sliver to its predecessor wholesale, silently emitting
// windows of up to per+minGates-1 gates; the rebalanced construction keeps
// every window within [minGates, per] whenever the pair carries 2×minGates.
func TestTimeWindowsBoundaries(t *testing.T) {
	cases := []struct {
		name               string
		gates, n, min      int
		wantWindows        int
		wantMinW, wantMaxW int // per-window gate-count bounds (0 = skip)
	}{
		// 85 over per=22: trailing 19-gate sliver, pair 41 < 2·20=40? no:
		// min=20 ⇒ 41 ≥ 40 rebalances into 20+21.
		{"rebalance-trailing", 85, 4, 20, 4, 20, 22},
		// min=22: pair carries 41 < 44, must merge (bounded by 2·min-1=43).
		{"merge-trailing", 85, 4, 22, 3, 22, 43},
		// Exactly 2×minGates: the smallest circuit TimeWindows accepts.
		{"exact-two-windows", 48, 2, 24, 2, 24, 24},
		// One below 2×minGates: rejected (hard floor).
		{"below-floor", 47, 2, 24, 0, 0, 0},
		// Pair carries exactly 2×minGates: rebalances, never merges.
		{"rebalance-exact-2min", 97, 3, 32, 3, 32, 33},
		// Pair one short of 2×minGates: merges, bounded by 2×minGates-1.
		{"merge-trailing-bound", 97, 3, 33, 2, 33, 64},
		// Divides evenly: no sliver handling at all.
		{"even", 120, 4, 24, 4, 30, 30},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := randomCircuit(7, 6, tc.gates)
			windows := TimeWindows(c, tc.n, tc.min)
			if tc.wantWindows == 0 {
				if windows != nil {
					t.Fatalf("expected nil, got %d windows", len(windows))
				}
				return
			}
			if len(windows) != tc.wantWindows {
				t.Fatalf("got %d windows, want %d", len(windows), tc.wantWindows)
			}
			checkWindows(t, c, windows)
			for _, w := range windows {
				if n := len(w.Indices); n < tc.wantMinW || n > tc.wantMaxW {
					t.Fatalf("window of %d gates outside [%d,%d]", n, tc.wantMinW, tc.wantMaxW)
				}
			}
		})
	}
}

// SizedWindows adapts the floor to the circuit (the fixpoint mode's need:
// TimeWindows' hard 2×minGates floor rejected the very circuits iterated
// local optimization shrinks toward) and supports a boundary offset for
// seam re-optimization.
func TestSizedWindowsBoundaries(t *testing.T) {
	cases := []struct {
		name                  string
		gates, size, min, off int
		wantWindows           int
	}{
		{"basic", 100, 25, 10, 0, 4},
		{"offset-shifts-seams", 100, 25, 10, 12, 5},
		{"offset-leading-sliver-merges", 100, 25, 24, 5, 3},
		{"below-timewindows-floor-still-splits", 30, 24, 24, 0, 2},
		{"one-gate", 1, 24, 24, 0, 0},
		{"size-swallows-circuit", 40, 64, 8, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := randomCircuit(8, 6, tc.gates)
			windows := SizedWindows(c, tc.size, tc.min, tc.off)
			if tc.wantWindows == 0 {
				if windows != nil {
					t.Fatalf("expected nil, got %d windows", len(windows))
				}
				return
			}
			if len(windows) != tc.wantWindows {
				t.Fatalf("got %d windows, want %d", len(windows), tc.wantWindows)
			}
			checkWindows(t, c, windows)
		})
	}
}

// Alternating the offset must shift every interior seam of the previous
// round strictly inside some window of the next — the property the fixpoint
// optimizer's seam re-optimization rounds rely on.
func TestSizedWindowsOffsetCoversSeams(t *testing.T) {
	c := randomCircuit(9, 6, 200)
	even := SizedWindows(c, 48, 16, 0)
	odd := SizedWindows(c, 48, 16, 24)
	if even == nil || odd == nil {
		t.Fatal("expected windows at both offsets")
	}
	for _, w := range even[:len(even)-1] {
		seam := w.Hi // boundary between w and its successor
		inside := false
		for _, o := range odd {
			if o.Lo <= seam && seam+1 <= o.Hi {
				inside = true
				break
			}
		}
		if !inside {
			t.Fatalf("seam after gate %d not interior to any offset window", seam)
		}
	}
}

// checkBlockInvariant pins the circuit.Region contract on every block:
// each unselected gate inside the block's window acts on qubits disjoint
// from the block (the convexity condition Extract/Replace rely on).
func checkBlockInvariant(t *testing.T, c *circuit.Circuit, blocks []*circuit.Region) {
	t.Helper()
	for bi, b := range blocks {
		sel := map[int]bool{}
		for _, i := range b.Indices {
			sel[i] = true
		}
		qs := map[int]bool{}
		for _, q := range b.Qubits {
			qs[q] = true
		}
		for i := b.Lo; i <= b.Hi; i++ {
			if sel[i] {
				continue
			}
			for _, q := range c.Gates[i].Qubits {
				if qs[q] {
					t.Fatalf("block %d: unselected gate %d shares qubit %d with the block", bi, i, q)
				}
			}
		}
	}
}

// A wide gate on qubits disjoint from the open block must be skipped in
// place, not flush the block — the old force-flush fragmented coverage on
// circuits with interleaved multi-qubit gates.
func TestBlocksSkipDisjointWideGate(t *testing.T) {
	c := circuit.New(5)
	c.Append(
		gate.NewCX(0, 1),
		gate.New(gate.CCX, []int{2, 3, 4}, nil), // wide, disjoint: skip
		gate.NewCX(0, 1),
		gate.NewH(0),
	)
	blocks := Blocks(c, 2)
	if len(blocks) != 1 {
		t.Fatalf("disjoint wide gate fragmented the block: got %d blocks, want 1", len(blocks))
	}
	b := blocks[0]
	if want := []int{0, 2, 3}; len(b.Indices) != len(want) {
		t.Fatalf("block selects %v, want %v", b.Indices, want)
	} else {
		for i, idx := range want {
			if b.Indices[i] != idx {
				t.Fatalf("block selects %v, want %v", b.Indices, want)
			}
		}
	}
	checkBlockInvariant(t, c, blocks)
}

// A wide gate sharing qubits with the open block must still close it: the
// block cannot skip a gate it is entangled with.
func TestBlocksWideGateIntersectingFlushes(t *testing.T) {
	c := circuit.New(4)
	c.Append(
		gate.NewCX(0, 1),
		gate.New(gate.CCX, []int{1, 2, 3}, nil), // shares qubit 1: flush
		gate.NewCX(0, 1),
	)
	blocks := Blocks(c, 2)
	if len(blocks) != 2 {
		t.Fatalf("got %d blocks, want 2", len(blocks))
	}
	if blocks[0].Hi >= 1 {
		t.Fatalf("first block window [%d,%d] swallows the intersecting wide gate", blocks[0].Lo, blocks[0].Hi)
	}
	checkBlockInvariant(t, c, blocks)
}

// Once a wide gate has been skipped, its qubits are blocked: a later gate
// touching them must start a fresh block (absorbing it would put the wide
// gate's qubits inside the selection and break convexity).
func TestBlocksBlockedQubitsStartFreshBlock(t *testing.T) {
	c := circuit.New(5)
	c.Append(
		gate.NewCX(0, 1),
		gate.New(gate.CCX, []int{2, 3, 4}, nil), // skipped; 2,3,4 blocked
		gate.NewCX(2, 3),                        // touches blocked qubits
	)
	blocks := Blocks(c, 2)
	if len(blocks) != 2 {
		t.Fatalf("got %d blocks, want 2", len(blocks))
	}
	if got := blocks[1].Indices; len(got) != 1 || got[0] != 2 {
		t.Fatalf("second block selects %v, want [2]", got)
	}
	checkBlockInvariant(t, c, blocks)
}

// Randomized sweep with 3-qubit gates in the vocabulary: every block stays
// within the qubit bound and satisfies the Region invariant.
func TestBlocksInvariantRandom(t *testing.T) {
	vocab := append([]gate.Name{gate.CCX, gate.CCZ}, circuit.DefaultTestVocab...)
	for seed := int64(0); seed < 8; seed++ {
		c := circuit.Random(6, 80, vocab, rand.New(rand.NewSource(seed)))
		for _, maxQ := range []int{2, 3} {
			blocks := Blocks(c, maxQ)
			for _, b := range blocks {
				if len(b.Qubits) > maxQ {
					t.Fatalf("seed %d: block spans %d qubits, bound %d", seed, len(b.Qubits), maxQ)
				}
			}
			checkBlockInvariant(t, c, blocks)
		}
	}
}

func TestBlocksRespectQubitBound(t *testing.T) {
	c := randomCircuit(5, 8, 120)
	for _, maxQ := range []int{2, 3} {
		for _, b := range Blocks(c, maxQ) {
			if len(b.Qubits) > maxQ {
				t.Fatalf("block spans %d qubits, bound %d", len(b.Qubits), maxQ)
			}
			for _, i := range b.Indices {
				for _, q := range c.Gates[i].Qubits {
					found := false
					for _, bq := range b.Qubits {
						if bq == q {
							found = true
						}
					}
					if !found {
						t.Fatalf("block omits qubit %d of gate %d", q, i)
					}
				}
			}
		}
	}
}
