// Package partition provides circuit partitioning shared by the
// BQSKit/QUEST-style partition baseline and the parallel optimization
// engine: qubit-bounded blocks for per-block resynthesis, and disjoint
// time windows for partition-parallel search. Every partition is a list
// of circuit.Regions whose selections are pairwise disjoint, so replacing
// each window with an ε_i-equivalent subcircuit yields a circuit within
// Σ ε_i of the original (Thm 4.2 composition).
package partition

import "github.com/guoq-dev/guoq/internal/circuit"

// Blocks splits the circuit into consecutive convex blocks spanning at most
// maxQubits qubits each. Consecutive gate runs are trivially convex. Gates
// wider than maxQubits are never selected; a wide gate acting on qubits
// disjoint from the open block is skipped in place (the Region invariant
// allows unselected window gates on disjoint qubits), and only a wide gate
// that shares qubits with the block closes it. The skipped gate's qubits
// stay blocked for the rest of the block: absorbing one later would put the
// wide gate's qubits inside the selection and break convexity, so a gate
// touching them starts a fresh block instead.
func Blocks(c *circuit.Circuit, maxQubits int) []*circuit.Region {
	var blocks []*circuit.Region
	var cur *circuit.Region
	var curQubits map[int]bool
	var blockedQubits map[int]bool // qubits of wide gates skipped inside cur's window
	flush := func() {
		if cur != nil && len(cur.Indices) > 0 {
			blocks = append(blocks, cur)
		}
		cur = nil
		blockedQubits = nil
	}
	for i, g := range c.Gates {
		if len(g.Qubits) > maxQubits {
			if cur != nil {
				touches := false
				for _, q := range g.Qubits {
					if curQubits[q] {
						touches = true
						break
					}
				}
				if touches {
					flush()
					continue
				}
				if blockedQubits == nil {
					blockedQubits = map[int]bool{}
				}
				for _, q := range g.Qubits {
					blockedQubits[q] = true
				}
			}
			continue
		}
		if cur != nil {
			blocked := false
			extra := 0
			for _, q := range g.Qubits {
				if blockedQubits[q] {
					blocked = true
				}
				if !curQubits[q] {
					extra++
				}
			}
			if !blocked && len(curQubits)+extra <= maxQubits {
				cur.Indices = append(cur.Indices, i)
				cur.Hi = i
				for _, q := range g.Qubits {
					curQubits[q] = true
				}
				continue
			}
			flush()
		}
		curQubits = map[int]bool{}
		for _, q := range g.Qubits {
			curQubits[q] = true
		}
		cur = &circuit.Region{Lo: i, Hi: i, Indices: []int{i}}
	}
	flush()
	for _, b := range blocks {
		fillQubits(c, b)
	}
	return blocks
}

// TimeWindows splits the gate list into at most n consecutive windows of
// near-equal gate count. Each window is a Region selecting every gate in
// its index range, so the windows are disjoint, cover the whole circuit,
// and concatenating their (independently optimized) replacements in order
// reproduces the original unitary up to the summed per-window error.
// minGates is a hard floor: no returned window is narrower, and a circuit
// below 2×minGates (or n < 2) yields nil — partitioning is pointless.
// End windows that would fall below the floor are rebalanced with their
// neighbour rather than merged wholesale, so no window silently grows past
// its intended share either (see sized). Callers that need windows on
// smaller circuits — the parallel local fixpoint optimizer — use
// SizedWindows, whose floor adapts to the circuit.
func TimeWindows(c *circuit.Circuit, n, minGates int) []*circuit.Region {
	total := len(c.Gates)
	if n < 2 || total < 2*minGates || total < 2 {
		return nil
	}
	per := (total + n - 1) / n
	if per < minGates {
		per = minGates
	}
	return sized(c, per, minGates, 0)
}

// SizedWindows splits the gate list into consecutive disjoint windows of
// about size gates each, with the first interior boundary shifted to
// offset — alternating the offset between rounds is how the fixpoint
// optimizer re-optimizes the seams left by the previous round's windows.
// Unlike TimeWindows, minGates here is advisory: it is clamped to half the
// circuit so any circuit with at least two gates and room for two windows
// partitions, which is what iterated local optimization needs (a hard
// floor would reject exactly the tail ends of a shrinking circuit).
// Returns nil when fewer than two windows fit.
func SizedWindows(c *circuit.Circuit, size, minGates, offset int) []*circuit.Region {
	total := len(c.Gates)
	if size < 1 || total < 2 {
		return nil
	}
	if minGates > total/2 {
		minGates = total / 2
	}
	if minGates < 1 {
		minGates = 1
	}
	offset %= size
	if offset < 0 {
		offset += size
	}
	return sized(c, size, minGates, offset)
}

// sized builds consecutive windows with boundaries at offset, offset+size,
// offset+2·size, …, then repairs end slivers narrower than minGates: a
// sliver and its neighbour are split evenly when they jointly carry
// 2×minGates gates (both halves stay within [minGates, size] for any
// minGates ≤ size), and merged only when they do not — so a merged window
// is itself below 2×minGates, never the size+minGates−1 the old
// append-to-predecessor merge could silently produce. Requires
// 1 ≤ minGates ≤ total/2, size ≥ 1, 0 ≤ offset < size.
func sized(c *circuit.Circuit, size, minGates, offset int) []*circuit.Region {
	total := len(c.Gates)
	type span struct{ lo, hi int } // inclusive
	var spans []span
	lo := 0
	for cut := offset; cut < total; cut += size {
		if cut > lo {
			spans = append(spans, span{lo, cut - 1})
			lo = cut
		}
	}
	spans = append(spans, span{lo, total - 1})

	// width is the gate count of a span; rebalance repairs spans[i] (an end
	// sliver below minGates) against its inward neighbour spans[j].
	width := func(s span) int { return s.hi - s.lo + 1 }
	rebalance := func(i, j int) {
		if width(spans[i]) >= minGates {
			return
		}
		combined := width(spans[i]) + width(spans[j])
		if combined >= 2*minGates {
			// Split the pair evenly instead of letting one window balloon.
			first, second := i, j
			if first > second {
				first, second = second, first
			}
			mid := spans[first].lo + combined/2
			spans[first].hi = mid - 1
			spans[second].lo = mid
			return
		}
		// Too small to split: merge the pair.
		if i < j {
			spans[j].lo = spans[i].lo
		} else {
			spans[j].hi = spans[i].hi
		}
		spans = append(spans[:i], spans[i+1:]...)
	}
	if len(spans) >= 2 {
		rebalance(0, 1)
	}
	if len(spans) >= 2 {
		rebalance(len(spans)-1, len(spans)-2)
	}
	if len(spans) < 2 {
		return nil
	}

	windows := make([]*circuit.Region, 0, len(spans))
	for _, s := range spans {
		r := &circuit.Region{Lo: s.lo, Hi: s.hi}
		for i := s.lo; i <= s.hi; i++ {
			r.Indices = append(r.Indices, i)
		}
		windows = append(windows, r)
	}
	for _, w := range windows {
		fillQubits(c, w)
	}
	return windows
}

// fillQubits sets the Region's sorted qubit list to the union of the
// selected gates' qubits.
func fillQubits(c *circuit.Circuit, r *circuit.Region) {
	qs := map[int]bool{}
	for _, i := range r.Indices {
		for _, q := range c.Gates[i].Qubits {
			qs[q] = true
		}
	}
	r.Qubits = r.Qubits[:0]
	for q := 0; q < c.NumQubits; q++ {
		if qs[q] {
			r.Qubits = append(r.Qubits, q)
		}
	}
}
