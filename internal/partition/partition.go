// Package partition provides circuit partitioning shared by the
// BQSKit/QUEST-style partition baseline and the parallel optimization
// engine: qubit-bounded blocks for per-block resynthesis, and disjoint
// time windows for partition-parallel search. Every partition is a list
// of circuit.Regions whose selections are pairwise disjoint, so replacing
// each window with an ε_i-equivalent subcircuit yields a circuit within
// Σ ε_i of the original (Thm 4.2 composition).
package partition

import "github.com/guoq-dev/guoq/internal/circuit"

// Blocks splits the circuit into consecutive convex blocks spanning at most
// maxQubits qubits each. Consecutive gate runs are trivially convex. Gates
// wider than maxQubits are left untouched between blocks.
func Blocks(c *circuit.Circuit, maxQubits int) []*circuit.Region {
	var blocks []*circuit.Region
	var cur *circuit.Region
	var curQubits map[int]bool
	flush := func() {
		if cur != nil && len(cur.Indices) > 0 {
			blocks = append(blocks, cur)
		}
		cur = nil
	}
	for i, g := range c.Gates {
		if len(g.Qubits) > maxQubits {
			flush()
			continue // leave wide gates untouched between blocks
		}
		if cur != nil {
			extra := 0
			for _, q := range g.Qubits {
				if !curQubits[q] {
					extra++
				}
			}
			if len(curQubits)+extra <= maxQubits {
				cur.Indices = append(cur.Indices, i)
				cur.Hi = i
				for _, q := range g.Qubits {
					curQubits[q] = true
				}
				continue
			}
			flush()
		}
		curQubits = map[int]bool{}
		for _, q := range g.Qubits {
			curQubits[q] = true
		}
		cur = &circuit.Region{Lo: i, Hi: i, Indices: []int{i}}
	}
	flush()
	for _, b := range blocks {
		fillQubits(c, b)
	}
	return blocks
}

// TimeWindows splits the gate list into at most n consecutive windows of
// near-equal gate count. Each window is a Region selecting every gate in
// its index range, so the windows are disjoint, cover the whole circuit,
// and concatenating their (independently optimized) replacements in order
// reproduces the original unitary up to the summed per-window error.
// Windows narrower than minGates gates are merged into their predecessor;
// fewer than two resulting windows yields nil (partitioning is pointless).
func TimeWindows(c *circuit.Circuit, n, minGates int) []*circuit.Region {
	total := len(c.Gates)
	if n < 2 || total < 2*minGates || total < 2 {
		return nil
	}
	per := (total + n - 1) / n
	if per < minGates {
		per = minGates
	}
	var windows []*circuit.Region
	for lo := 0; lo < total; lo += per {
		hi := lo + per - 1
		if hi >= total {
			hi = total - 1
		}
		// Merge a trailing sliver into the previous window.
		if hi-lo+1 < minGates && len(windows) > 0 {
			prev := windows[len(windows)-1]
			for i := lo; i <= hi; i++ {
				prev.Indices = append(prev.Indices, i)
			}
			prev.Hi = hi
			continue
		}
		r := &circuit.Region{Lo: lo, Hi: hi}
		for i := lo; i <= hi; i++ {
			r.Indices = append(r.Indices, i)
		}
		windows = append(windows, r)
	}
	if len(windows) < 2 {
		return nil
	}
	for _, w := range windows {
		fillQubits(c, w)
	}
	return windows
}

// fillQubits sets the Region's sorted qubit list to the union of the
// selected gates' qubits.
func fillQubits(c *circuit.Circuit, r *circuit.Region) {
	qs := map[int]bool{}
	for _, i := range r.Indices {
		for _, q := range c.Gates[i].Qubits {
			qs[q] = true
		}
	}
	r.Qubits = r.Qubits[:0]
	for q := 0; q < c.NumQubits; q++ {
		if qs[q] {
			r.Qubits = append(r.Qubits, q)
		}
	}
}
